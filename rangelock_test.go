package rangelock_test

import (
	"sync"
	"testing"
	"time"

	rangelock "repro"
)

func TestExclusivePublicAPI(t *testing.T) {
	lk := rangelock.NewExclusive(nil)
	g := lk.Lock(0, 100)
	if _, ok := lk.TryLock(50, 150); ok {
		t.Fatal("TryLock succeeded on conflicting range")
	}
	g2, ok := lk.TryLock(100, 200)
	if !ok {
		t.Fatal("TryLock failed on disjoint range")
	}
	g.Unlock()
	g2.Unlock()
}

func TestRWPublicAPI(t *testing.T) {
	lk := rangelock.NewRW(rangelock.NewDomain(64))
	r1 := lk.RLock(0, 10)
	r2 := lk.RLock(5, 15)
	if _, ok := lk.TryLock(0, 5); ok {
		t.Fatal("writer overlapped readers")
	}
	r1.Unlock()
	r2.Unlock()
	w := lk.LockFull()
	if _, ok := lk.TryRLock(1, 2); ok {
		t.Fatal("reader acquired under a full-range writer")
	}
	w.Unlock()
}

func TestOptionsCompose(t *testing.T) {
	lk := rangelock.NewRW(nil, rangelock.WithFastPath(false), rangelock.WithFairness(true, 32))
	g := lk.Lock(0, 1)
	g.Unlock()
}

func TestGuardRange(t *testing.T) {
	lk := rangelock.NewExclusive(nil)
	g := lk.Lock(7, 21)
	if s, e := g.Range(); s != 7 || e != 21 {
		t.Fatalf("Range = [%d,%d)", s, e)
	}
	if !g.Held() {
		t.Fatal("guard not held")
	}
	g.Unlock()
}

// TestFilePattern is the package's motivating scenario: concurrent writers
// to disjoint regions of one "file" must all proceed.
func TestFilePattern(t *testing.T) {
	lk := rangelock.NewRW(nil)
	file := make([]byte, 1<<16)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := uint64(w * 4096)
			for i := 0; i < 200; i++ {
				g := lk.Lock(lo, lo+4096)
				for b := lo; b < lo+4096; b += 512 {
					file[b]++
				}
				g.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("disjoint writers deadlocked")
	}
	for w := 0; w < 16; w++ {
		if file[w*4096] != 200 {
			t.Fatalf("writer %d lost updates: %d", w, file[w*4096])
		}
	}
}
