// Pfsdemo exercises the parallel-file-system scenario that motivated
// range locks (§1): concurrent producers append records to one shared
// log file while stripe writers update fixed regions and checkers verify
// checksums — all mediated by a single per-file byte-range lock.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pfs"
)

const recSize = 128

func record(producer, seq uint32) []byte {
	rec := make([]byte, recSize)
	binary.LittleEndian.PutUint32(rec, producer)
	binary.LittleEndian.PutUint32(rec[4:], seq)
	for i := 8; i < recSize-4; i++ {
		rec[i] = byte(producer + seq)
	}
	binary.LittleEndian.PutUint32(rec[recSize-4:],
		crc32.ChecksumIEEE(rec[:recSize-4]))
	return rec
}

func main() {
	fs := pfs.New(nil) // list-based range lock per file
	log, err := fs.Create("shared.log")
	if err != nil {
		panic(err)
	}

	var (
		wg       sync.WaitGroup
		appended atomic.Uint64
		verified atomic.Uint64
	)
	start := time.Now()

	// Producers: concurrent appends, each owning a disjoint reservation.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p uint32) {
			defer wg.Done()
			for seq := uint32(0); seq < 3000; seq++ {
				if _, err := log.Append(record(p, seq)); err != nil {
					panic(err)
				}
				appended.Add(1)
			}
		}(uint32(p))
	}

	// Checkers: shared-mode scans verifying CRCs of settled records.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			rec := make([]byte, recSize)
			for i := 0; i < 4000; i++ {
				nrec := log.Size() / recSize
				if nrec == 0 {
					continue
				}
				off := uint64(rng.Int63n(int64(nrec))) * recSize
				if _, err := log.ReadAt(rec, off); err != nil {
					continue
				}
				want := binary.LittleEndian.Uint32(rec[recSize-4:])
				if want == 0 {
					continue // reservation not yet filled: sparse zeros
				}
				if crc := crc32.ChecksumIEEE(rec[:recSize-4]); crc != want {
					panic(fmt.Sprintf("torn record at %d", off))
				}
				verified.Add(1)
			}
		}(int64(c) + 7)
	}

	wg.Wait()
	fmt.Printf("appended %d records, verified %d, file %v in %v\n",
		appended.Load(), verified.Load(), log, time.Since(start).Round(time.Millisecond))
}
