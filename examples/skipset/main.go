// Skipset demonstrates §6: a concurrent ordered set built as a skip list
// whose updates are synchronized by a single range lock instead of
// per-node locks. It compares the original optimistic skip list with the
// range-lock version on a mixed workload and shows both produce identical
// results with comparable throughput.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/lockapi"
	"repro/internal/skiplist"
)

func exercise(name string, s skiplist.Set) {
	const (
		keyRange = 1 << 18
		opsPerG  = 60000
	)
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				key := uint64(rng.Intn(keyRange)) + 1
				switch rng.Intn(10) {
				case 0:
					s.Insert(key)
				case 1:
					s.Remove(key)
				default:
					s.Contains(key)
				}
			}
		}(int64(w) * 888)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * opsPerG
	fmt.Printf("%-12s %8d ops in %7.1fms (%5.2f Mops/s), %d keys resident\n",
		name, total, float64(elapsed.Microseconds())/1000,
		float64(total)/elapsed.Seconds()/1e6, s.Len())
}

func main() {
	fmt.Println("concurrent ordered set: 80% find / 10% insert / 10% remove")
	exercise("orig", skiplist.NewOptimistic())
	exercise("range-list", skiplist.NewRangeLocked(lockapi.NewListEx(nil)))
	exercise("range-lustre", skiplist.NewRangeLocked(lockapi.NewLustreEx()))
	fmt.Println("\nrange-list needs one range acquisition per update (vs. up to one")
	fmt.Println("lock per level) and no per-node lock storage.")
}
