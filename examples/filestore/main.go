// Filestore: byte-range locking of a shared file image — the scenario
// range locks were invented for (§1: multiple writers updating different
// parts of the same file, fcntl-style).
//
// A block store keeps fixed-size records in one backing buffer. Writers
// lock exactly the byte range of the record they update; readers lock
// ranges spanning several records. Checksums verify that no torn reads or
// lost writes occur, while disjoint record updates proceed in parallel.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"

	rangelock "repro"
)

const (
	recordSize = 256
	numRecords = 128
)

// store is a tiny fcntl-flavoured block store.
type store struct {
	lk  *rangelock.RW
	buf []byte
}

func newStore() *store {
	s := &store{
		lk:  rangelock.NewRW(nil),
		buf: make([]byte, recordSize*numRecords),
	}
	for r := 0; r < numRecords; r++ {
		s.writeRecordLocked(r, 0)
	}
	return s
}

// writeRecordLocked formats record r with sequence number seq and a
// trailing CRC. Caller holds the record's range.
func (s *store) writeRecordLocked(r int, seq uint64) {
	rec := s.buf[r*recordSize : (r+1)*recordSize]
	binary.LittleEndian.PutUint64(rec, seq)
	for i := 8; i < recordSize-4; i++ {
		rec[i] = byte(seq + uint64(i))
	}
	crc := crc32.ChecksumIEEE(rec[:recordSize-4])
	binary.LittleEndian.PutUint32(rec[recordSize-4:], crc)
}

// Update locks one record exclusively and rewrites it.
func (s *store) Update(r int, seq uint64) {
	lo := uint64(r * recordSize)
	g := s.lk.Lock(lo, lo+recordSize)
	s.writeRecordLocked(r, seq)
	g.Unlock()
}

// Verify locks a span of records in shared mode and checks every CRC.
func (s *store) Verify(first, count int) error {
	lo := uint64(first * recordSize)
	hi := lo + uint64(count*recordSize)
	g := s.lk.RLock(lo, hi)
	defer g.Unlock()
	for r := first; r < first+count; r++ {
		rec := s.buf[r*recordSize : (r+1)*recordSize]
		want := binary.LittleEndian.Uint32(rec[recordSize-4:])
		if got := crc32.ChecksumIEEE(rec[:recordSize-4]); got != want {
			return fmt.Errorf("record %d: torn read (crc %#x != %#x)", r, got, want)
		}
	}
	return nil
}

func main() {
	s := newStore()
	var (
		wg      sync.WaitGroup
		updates atomic.Uint64
		verify  atomic.Uint64
	)
	errs := make(chan error, 16)

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				if rng.Intn(100) < 70 {
					s.Update(rng.Intn(numRecords), uint64(i))
					updates.Add(1)
				} else {
					first := rng.Intn(numRecords)
					count := 1 + rng.Intn(numRecords-first)
					if err := s.Verify(first, count); err != nil {
						errs <- err
						return
					}
					verify.Add(1)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Println("FAILURE:", err)
		return
	}
	fmt.Printf("ok: %d record updates and %d multi-record verifications, no torn reads\n",
		updates.Load(), verify.Load())
}
