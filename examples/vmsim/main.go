// Vmsim walks through the paper's §5 contribution on the simulated VM
// subsystem: it runs the same GLIBC-arena allocation pattern under the
// stock policy (one big reader-writer semaphore, like mmap_sem) and under
// list-refined (list-based range lock + speculative mprotect + refined
// page-fault ranges), printing the speculation statistics and the
// side-by-side runtimes.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/malloc"
	"repro/internal/vm"
)

func run(kind vm.PolicyKind, workers int) (time.Duration, vm.OpStats) {
	as := vm.NewAddressSpace(kind, nil, nil)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena, err := malloc.NewArena(as, 8<<20)
			if err != nil {
				panic(err)
			}
			// Allocate, touch, and periodically release — the classic
			// malloc arena lifecycle that hammers mprotect + page faults.
			for i := 0; i < 4000; i++ {
				if _, err := arena.Alloc(2048); err != nil {
					panic(err)
				}
				if i%16 == 15 {
					if err := arena.Free(2048 * 8); err != nil {
						panic(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), as.Stats()
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("simulated VM subsystem, %d workers with private arenas\n\n", workers)

	for _, kind := range []vm.PolicyKind{vm.Stock, vm.TreeFull, vm.ListFull, vm.ListRefined} {
		elapsed, st := run(kind, workers)
		fmt.Printf("%-13s %8.2fms   faults=%-6d", kind, float64(elapsed.Microseconds())/1000, st.Faults)
		if total := st.SpecSucceeded + st.SpecFellBack; total > 0 {
			fmt.Printf(" mprotect speculation: %d/%d succeeded (%.1f%%), %d retries",
				st.SpecSucceeded, total,
				100*float64(st.SpecSucceeded)/float64(total), st.SpecRetries)
		}
		fmt.Println()
	}

	fmt.Println("\nlist-refined runs page faults and boundary-move mprotects on")
	fmt.Println("disjoint arenas in parallel; stock serializes them on one semaphore.")
}
