// Quickstart: the smallest useful rangelock program. Four goroutines
// update disjoint quarters of a shared counter array in parallel, while an
// auditor periodically takes a full-range shared snapshot.
package main

import (
	"fmt"
	"sync"

	rangelock "repro"
)

func main() {
	const (
		slots   = 1024
		workers = 4
		rounds  = 1000
	)
	lk := rangelock.NewRW(nil)
	data := make([]int, slots)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := uint64(w * slots / workers)
			hi := uint64((w + 1) * slots / workers)
			for r := 0; r < rounds; r++ {
				// Exclusive access to this worker's quarter only: the
				// other quarters stay concurrently writable.
				g := lk.Lock(lo, hi)
				for i := lo; i < hi; i++ {
					data[i]++
				}
				g.Unlock()
			}
		}(w)
	}

	// Auditor: shared full-range snapshots interleave with the writers.
	audit := make(chan int)
	go func() {
		best := 0
		for i := 0; i < 50; i++ {
			g := lk.RLockFull()
			sum := 0
			for _, v := range data {
				sum += v
			}
			g.Unlock()
			if sum > best {
				best = sum
			}
		}
		audit <- best
	}()

	wg.Wait()
	fmt.Printf("peak mid-run sum observed by auditor: %d\n", <-audit)

	g := lk.RLockFull()
	sum := 0
	for _, v := range data {
		sum += v
	}
	g.Unlock()
	fmt.Printf("final sum: %d (want %d)\n", sum, slots*rounds)
	if sum != slots*rounds {
		panic("lost updates — range lock failed")
	}
}
