// Benchmarks regenerating every figure of the paper's evaluation (§7).
// Each figure has one Benchmark family; sub-benchmarks enumerate the
// series (lock variant / policy / workload) that appear in that figure.
// The CLI tools under cmd/ produce the same data as CSV sweeps over
// explicit thread counts; these benchmarks integrate with `go test
// -bench` and scale with -cpu.
//
// Figures:
//
//	Fig3  ArrBench throughput            (BenchmarkFig3*)
//	Fig4  skip list throughput           (BenchmarkFig4SkipList)
//	Fig5  Metis runtime per policy       (BenchmarkFig5Metis)
//	Fig6  refinement breakdown           (BenchmarkFig6Breakdown)
//	Fig7  range lock wait times          (BenchmarkFig7LockWait)
//	Fig8  range-tree spin lock waits     (BenchmarkFig8SpinWait)
//
// Plus ablations for the paper's §4.3/§4.5 mechanisms left unevaluated
// there (BenchmarkAblation*).
package rangelock_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	rangelock "repro"
	"repro/internal/arrbench"
	"repro/internal/lockapi"
	"repro/internal/metis"
	"repro/internal/skiplist"
	"repro/internal/stats"
	"repro/internal/vm"
)

// fig3Locks builds the Figure 3 lock set fresh per sub-benchmark.
func fig3Locks(slots int) map[string]func() lockapi.Locker {
	return map[string]func() lockapi.Locker{
		"list-ex":   func() lockapi.Locker { return lockapi.NewListEx(nil) },
		"list-rw":   func() lockapi.Locker { return lockapi.NewListRW(nil) },
		"lustre-ex": func() lockapi.Locker { return lockapi.NewLustreEx() },
		"kernel-rw": func() lockapi.Locker { return lockapi.NewKernelRW() },
		"pnova-rw":  func() lockapi.Locker { return arrbench.NewPnovaForArray(slots) },
		"song-rw":   func() lockapi.Locker { return lockapi.NewSongRW() },
	}
}

// benchArr drives one ArrBench operation per iteration under RunParallel.
// Locks with per-operation contexts get one leased per worker for the
// whole run — the paper's per-thread state — so the measured path is
// acquire/release alone.
func benchArr(b *testing.B, mk func() lockapi.Locker, variant arrbench.Variant, readPct int) {
	const slots = arrbench.DefaultSlots
	lk := mk()
	full, hasFull := lk.(lockapi.FullLocker)
	opLk, hasOp := lk.(lockapi.OpLocker)
	arr := make([]uint64, slots*8) // stride 8 = cache-line padding
	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		me := int(tid.Add(1)) - 1
		rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
		var op lockapi.Op
		if hasOp {
			op = opLk.BeginOp()
			defer opLk.EndOp(op)
		}
		for pb.Next() {
			isRead := rng.Intn(100) < readPct
			var lo, hi uint64
			switch variant {
			case arrbench.Full:
				lo, hi = 0, slots
			case arrbench.Disjoint:
				// Partition by parallelism degree (approximated by the
				// number of distinct workers seen so far).
				n := uint64(tid.Load())
				lo = uint64(me) % n * slots / n
				hi = lo + slots/n
				if hi > slots {
					hi = slots
				}
				if hi == lo {
					hi = lo + 1
				}
			default:
				a, c := uint64(rng.Intn(slots)), uint64(rng.Intn(slots))
				if a > c {
					a, c = c, a
				}
				lo, hi = a, c+1
			}
			var rel func()
			var g lockapi.Guard
			switch {
			case hasOp && variant == arrbench.Full:
				g = opLk.AcquireFullOp(op, !isRead)
			case hasOp:
				g = opLk.AcquireOp(op, lo, hi, !isRead)
			case variant == arrbench.Full && hasFull:
				rel = full.AcquireFull(!isRead)
			default:
				rel = lk.Acquire(lo, hi, !isRead)
			}
			if isRead {
				var s uint64
				for i := lo; i < hi; i++ {
					s += arr[i*8]
				}
				_ = s
			} else {
				for i := lo; i < hi; i++ {
					arr[i*8]++
				}
			}
			if hasOp {
				opLk.ReleaseOp(op, g)
			} else {
				rel()
			}
		}
	})
}

func fig3(b *testing.B, variant arrbench.Variant) {
	for _, readPct := range []int{100, 60} {
		for name, mk := range fig3Locks(arrbench.DefaultSlots) {
			b.Run(fmt.Sprintf("reads=%d/%s", readPct, name), func(b *testing.B) {
				benchArr(b, mk, variant, readPct)
			})
		}
	}
}

func BenchmarkFig3FullRange(b *testing.B) { fig3(b, arrbench.Full) }
func BenchmarkFig3Disjoint(b *testing.B)  { fig3(b, arrbench.Disjoint) }
func BenchmarkFig3Random(b *testing.B)    { fig3(b, arrbench.Random) }

// BenchmarkFig4SkipList: 80% find / 20% update over a prefilled set
// (scaled to 1M keys / 512K prefill so setup stays laptop-friendly; use
// cmd/skipbench for the paper's 8M/4M).
func BenchmarkFig4SkipList(b *testing.B) {
	const (
		keyRange = 1 << 20
		prefill  = 1 << 19
	)
	impls := map[string]func() skiplist.Set{
		"orig":         func() skiplist.Set { return skiplist.NewOptimistic() },
		"range-list":   func() skiplist.Set { return skiplist.NewRangeLocked(lockapi.NewListEx(nil)) },
		"range-lustre": func() skiplist.Set { return skiplist.NewRangeLocked(lockapi.NewLustreEx()) },
	}
	for name, mk := range impls {
		b.Run(name, func(b *testing.B) {
			s := mk()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < prefill; i++ {
				s.Insert(uint64(rng.Intn(keyRange)) + 1)
			}
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(tid.Add(1) * 104729))
				for pb.Next() {
					key := uint64(r.Intn(keyRange)) + 1
					op := r.Intn(100)
					switch {
					case op >= 20:
						s.Contains(key)
					case op%2 == 0:
						s.Insert(key)
					default:
						s.Remove(key)
					}
				}
			})
		})
	}
}

// fig5Policies is the Figure 5 variant set.
var fig5Policies = []vm.PolicyKind{vm.Stock, vm.TreeFull, vm.ListFull, vm.TreeRefined, vm.ListRefined}

// benchMetis runs one full (scaled-down) Metis job per iteration.
func benchMetis(b *testing.B, wl metis.Workload, kind vm.PolicyKind, rangeStat, spinStat *stats.LockStat) {
	for i := 0; i < b.N; i++ {
		res, err := metis.Run(metis.Config{
			Workload:   wl,
			Policy:     kind,
			Workers:    4,
			InputBytes: 2 << 20,
			ArenaSize:  16 << 20,
			Seed:       1,
			RangeStat:  rangeStat,
			SpinStat:   spinStat,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFig5Metis: runtime of wr/wc/wrmem per locking policy.
func BenchmarkFig5Metis(b *testing.B) {
	for _, wl := range []metis.Workload{metis.WR, metis.WC, metis.WRMem} {
		for _, kind := range fig5Policies {
			b.Run(fmt.Sprintf("%s/%s", wl, kind), func(b *testing.B) {
				benchMetis(b, wl, kind, nil, nil)
			})
		}
	}
}

// BenchmarkFig6Breakdown: the refinement ablation (list-based variants).
func BenchmarkFig6Breakdown(b *testing.B) {
	for _, kind := range []vm.PolicyKind{vm.ListFull, vm.ListPF, vm.ListMprotect, vm.ListRefined} {
		b.Run(fmt.Sprintf("wrmem/%s", kind), func(b *testing.B) {
			benchMetis(b, metis.WRMem, kind, nil, nil)
		})
	}
}

// BenchmarkFig7LockWait reports the average read/write wait on the
// top-level lock (mmap_sem or range lock) as custom metrics.
func BenchmarkFig7LockWait(b *testing.B) {
	for _, kind := range fig5Policies {
		b.Run(fmt.Sprintf("wc/%s", kind), func(b *testing.B) {
			rs := stats.New()
			benchMetis(b, metis.WC, kind, rs, nil)
			b.ReportMetric(float64(rs.AvgWait(stats.Read).Nanoseconds()), "read-wait-ns")
			b.ReportMetric(float64(rs.AvgWait(stats.Write).Nanoseconds()), "write-wait-ns")
		})
	}
}

// BenchmarkFig8SpinWait reports the average wait on the spin lock that
// protects the range tree in the tree-based policies.
func BenchmarkFig8SpinWait(b *testing.B) {
	for _, kind := range []vm.PolicyKind{vm.TreeFull, vm.TreeRefined} {
		b.Run(fmt.Sprintf("wc/%s", kind), func(b *testing.B) {
			ss := stats.New()
			benchMetis(b, metis.WC, kind, nil, ss)
			b.ReportMetric(float64(ss.AvgWait(stats.Spin).Nanoseconds()), "spin-wait-ns")
			b.ReportMetric(float64(ss.Count(stats.Spin))/float64(b.N), "spin-acq/op")
		})
	}
}

// --- Ablations: the paper's §4.5 fast path and §4.3 fairness, plus
// TryLock, measured on the public API.

func BenchmarkAblationFastPath(b *testing.B) {
	for _, fp := range []bool{true, false} {
		b.Run(fmt.Sprintf("fastpath=%v/single-thread", fp), func(b *testing.B) {
			lk := rangelock.NewExclusive(rangelock.NewDomain(64), rangelock.WithFastPath(fp))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := lk.Lock(0, 100)
				g.Unlock()
			}
		})
	}
}

func BenchmarkAblationFairness(b *testing.B) {
	for _, fair := range []bool{false, true} {
		b.Run(fmt.Sprintf("fairness=%v/contended", fair), func(b *testing.B) {
			lk := rangelock.NewRW(rangelock.NewDomain(256),
				rangelock.WithFairness(fair, 64))
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := uint64(tid.Add(1))
				rng := rand.New(rand.NewSource(int64(me)))
				for pb.Next() {
					s := uint64(rng.Intn(64))
					g := lk.Lock(s, s+8)
					g.Unlock()
				}
			})
		})
	}
	// The §4.3 ablation the mechanism was built for: a storm of small
	// readers sharing one hot block keeps that list position always
	// read-held and always churning, and an occasional wide writer —
	// locking the window around it, as a periodic fsync or truncate
	// would — starves under the default reader preference. Two
	// ingredients make the starvation real: the writer's range starts
	// inside the readers' block, so the start-ordered list puts every
	// fresh reader ahead of the waiting writer (its validation restarts
	// for as long as they keep coming), and the writer arrives paced
	// rather than in a tight loop — back-to-back writers chain
	// writer→writer and never starve. The metric is the writers' wait
	// distribution (p50/p99 via internal/stats histograms), not
	// throughput: it is the tail that the impatient-counter escalation
	// bounds — a small budget escalates within a few restarts — at the
	// throughput price the contended case above shows. Oversubscribed 4×
	// so reader arrivals outnumber cores, as in a request-serving
	// process.
	for _, fair := range []bool{false, true} {
		b.Run(fmt.Sprintf("fairness=%v/writer-starve", fair), func(b *testing.B) {
			const window = 1 << 16
			lk := rangelock.NewRW(rangelock.NewDomain(256),
				rangelock.WithFairness(fair, 2))
			waits := stats.NewHistogram()
			var tid atomic.Int64
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				if me%8 == 0 {
					// 1-in-8 goroutines is an occasional wide writer.
					for pb.Next() {
						t0 := time.Now()
						g := lk.Lock(2048, window)
						waits.Observe(time.Since(t0))
						g.Unlock()
						time.Sleep(20 * time.Microsecond)
					}
					return
				}
				for pb.Next() {
					g := lk.RLock(0, 4096) // everyone reads the hot block
					g.Unlock()
				}
			})
			b.StopTimer()
			if waits.Count() > 0 {
				b.ReportMetric(float64(waits.Quantile(0.50).Nanoseconds()), "writer-p50-wait-ns")
				b.ReportMetric(float64(waits.Quantile(0.99).Nanoseconds()), "writer-p99-wait-ns")
			}
		})
	}
}

// BenchmarkAblationWriterPref compares the default reader preference with
// the §4.2 reversed (writer-preference) validation under a read-mostly
// overlapping mix.
func BenchmarkAblationWriterPref(b *testing.B) {
	for _, wp := range []bool{false, true} {
		b.Run(fmt.Sprintf("writerPref=%v", wp), func(b *testing.B) {
			lk := rangelock.NewRW(rangelock.NewDomain(256),
				rangelock.WithWriterPreference(wp))
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(tid.Add(1) * 48611))
				for pb.Next() {
					s := uint64(rng.Intn(64))
					if rng.Intn(100) < 80 {
						g := lk.RLock(s, s+16)
						g.Unlock()
					} else {
						g := lk.Lock(s, s+16)
						g.Unlock()
					}
				}
			})
		})
	}
}

// BenchmarkAblationUnmapPlanning measures the §5.2 speculative find phase
// for munmap (future work in the paper): mmap+munmap churn with and
// without read-phase planning.
func BenchmarkAblationUnmapPlanning(b *testing.B) {
	for _, plan := range []bool{false, true} {
		b.Run(fmt.Sprintf("plan=%v", plan), func(b *testing.B) {
			as := vm.NewAddressSpace(vm.ListRefined, nil, nil)
			if plan {
				as.EnableSpeculativeUnmapPlanning()
			}
			const sz = 8 * vm.PageSize
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := as.Mmap(sz, vm.ProtRead)
				if err != nil {
					b.Fatal(err)
				}
				if err := as.Munmap(a, sz); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationTryLock(b *testing.B) {
	lk := rangelock.NewExclusive(rangelock.NewDomain(256))
	var tid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := uint64(tid.Add(1))
		rng := rand.New(rand.NewSource(int64(me)))
		for pb.Next() {
			s := uint64(rng.Intn(256))
			if g, ok := lk.TryLock(s, s+4); ok {
				g.Unlock()
			}
		}
	})
}
