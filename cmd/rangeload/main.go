// Command rangeload is a closed-loop load driver for rangestored: it
// opens -workers connections, keeps -pipeline requests in flight on each,
// and reports per-operation-class latency (p50/p90/p99/max) — the lens
// the paper's §8 applications are judged by.
//
//	go run ./cmd/rangeload -addr localhost:7420 -mix mixed-scan -duration 10s
//	go run ./cmd/rangeload -mix append-log -workers 16 -format csv -out run.csv
//
// Mixes: read-heavy, write-heavy, append-log, mixed-scan. File and
// offset hotness are zipf-skewed (-zipf-file / -zipf-off; values <= 1
// select uniform). Against a sharded server, pass the matching -shards
// to see how the zipf skew lands across the server's lock domains, and
// the matching -placement: for "hash" the per-shard report is predicted
// client-side, for "rendezvous"/"map" it is fetched from the server
// (prediction is wrong once placement is weighted or dynamic).
//
// -client-cache-bytes > 0 fronts every worker with a shared
// placement-version-validated read cache; the report gains a cache
// section (hits, misses, invalidations, hit rate). -cache-scenario
// picks cold (default), warm (working set pre-read before measuring),
// or storm (a background loop migrates files mid-run, invalidating the
// cache — needs -placement map and -shards > 1):
//
//	go run ./cmd/rangeload -mix read-heavy -client-cache-bytes 67108864 -cache-scenario warm -format json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/rangestore"
	"repro/internal/rangestore/wload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7420", "rangestored address")
		mixName  = flag.String("mix", "mixed-scan", "workload mix: "+mixNames())
		workers  = flag.Int("workers", 4, "concurrent connections")
		pipeline = flag.Int("pipeline", 1, "requests in flight per connection")
		files    = flag.Int("files", 16, "files in play")
		fileSize = flag.Uint64("filesize", 1<<20, "pre-populated bytes per file")
		ioSize   = flag.Int("iosize", 4096, "bytes per read/write/append")
		duration = flag.Duration("duration", 5*time.Second, "run length (ignored when -ops > 0)")
		ops      = flag.Int64("ops", 0, "total operation budget; 0 = run for -duration")
		shards   = flag.Int("shards", 0, "server shard count; > 1 reports per-shard request counts (skew)")
		place    = flag.String("placement", "hash", "server placement policy; non-hash fetches shard counts from the server")
		zipfFile = flag.Float64("zipf-file", 1.2, "zipf skew across files (<= 1: uniform)")
		zipfOff  = flag.Float64("zipf-off", 1.1, "zipf skew across offsets (<= 1: uniform)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		cacheBy  = flag.Int64("client-cache-bytes", 0, "client-side read cache budget in bytes; 0 disables (> 0 runs workers synchronously, ignoring -pipeline)")
		cacheBk  = flag.Int("cache-block", 0, "cache block size in bytes (default 64KiB)")
		cacheSc  = flag.String("cache-scenario", "cold", "cache scenario: cold, warm (prewarm working set), storm (background migrations; needs map placement and -shards > 1)")
		stormIv  = flag.Duration("storm-interval", 50*time.Millisecond, "migration pacing for -cache-scenario storm")
		format   = flag.String("format", "text", "output format: text, csv, json (json includes the full per-class latency histograms)")
		report   = flag.String("report", "", "alias for -format")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if *report != "" {
		*format = *report
	}

	mix, err := wload.MixByName(*mixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangeload:", err)
		os.Exit(2)
	}
	// Fail on bad output options now, not after minutes of load.
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "rangeload: unknown -format %q (text, csv, json)\n", *format)
		os.Exit(2)
	}
	switch *cacheSc {
	case wload.CacheCold, wload.CacheWarm, wload.CacheStorm:
	default:
		fmt.Fprintf(os.Stderr, "rangeload: unknown -cache-scenario %q (%s)\n", *cacheSc, strings.Join(wload.CacheScenarios, ", "))
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangeload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cfg := wload.Config{
		Mix:       mix,
		Files:     *files,
		FileSize:  *fileSize,
		IOSize:    *ioSize,
		Workers:   *workers,
		Pipeline:  *pipeline,
		Ops:       *ops,
		Duration:  *duration,
		ZipfFile:  *zipfFile,
		ZipfOff:   *zipfOff,
		Seed:      *seed,
		Shards:    *shards,
		Placement: *place,

		CacheBytes:    *cacheBy,
		CacheBlock:    *cacheBk,
		CacheScenario: *cacheSc,
		StormInterval: *stormIv,
	}

	rep, err := wload.Run(cfg, func() (*rangestore.Client, error) {
		return rangestore.Dial(*addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangeload:", err)
		os.Exit(1)
	}

	switch *format {
	case "text":
		fmt.Fprint(w, rep.String())
	case "csv":
		err = rep.WriteCSV(w)
	case "json":
		var raw []byte
		if raw, err = rep.JSON(); err == nil {
			raw = append(raw, '\n')
			_, err = w.Write(raw)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangeload:", err)
		os.Exit(1)
	}
}

func mixNames() string {
	names := make([]string, len(wload.Mixes))
	for i, m := range wload.Mixes {
		names[i] = m.Name
	}
	return strings.Join(names, ", ")
}
