// Command metis regenerates Figures 5–8 of the paper: runtime of the
// Metis-style workloads (wc, wr, wrmem) on the simulated VM subsystem
// under each locking policy, plus the lock-wait statistics.
//
// Default output (Figure 5) is CSV:
//
//	workload,policy,threads,runtime_ms,spec_ok,spec_fallback
//
// With -breakdown (Figure 6) the policy set becomes the list-based
// refinement ablation. With -lockstat (Figures 7 and 8), per-point lock
// wait columns are appended:
//
//	...,read_cnt,read_avg_us,write_cnt,write_avg_us,spin_cnt,spin_avg_us
//
// Example:
//
//	metis -workload wrmem -threads 1,4,16 -input $((32<<20))
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/metis"
	"repro/internal/stats"
	"repro/internal/vm"
)

func main() {
	var (
		workloads = flag.String("workload", "wr,wc,wrmem", "comma-separated workloads")
		policies  = flag.String("policies", "", "comma-separated policies (default: Figure 5 set)")
		threads   = flag.String("threads", "", "comma-separated worker counts (default 1,2,4,...,GOMAXPROCS)")
		input     = flag.Uint64("input", 8<<20, "input bytes per run (paper: full files / 2 GiB for wrmem)")
		arena     = flag.Uint64("arena", 0, "per-worker arena bytes (default 64 MiB)")
		breakdown = flag.Bool("breakdown", false, "run the Figure 6 refinement breakdown policy set")
		lockstat  = flag.Bool("lockstat", false, "collect and print lock wait statistics (Figures 7-8)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	polSet := *policies
	if polSet == "" {
		if *breakdown {
			polSet = "list-full,list-pf,list-mprotect,list-refined"
		} else {
			polSet = "stock,tree-full,list-full,tree-refined,list-refined"
		}
	}

	threadCounts, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}

	header := "workload,policy,threads,runtime_ms,spec_ok,spec_fallback"
	if *lockstat {
		header += ",read_cnt,read_avg_us,write_cnt,write_avg_us,spin_cnt,spin_avg_us"
	}
	fmt.Println(header)

	for _, wname := range strings.Split(*workloads, ",") {
		wl, err := metis.ParseWorkload(strings.TrimSpace(wname))
		if err != nil {
			fatal(err)
		}
		for _, pname := range strings.Split(polSet, ",") {
			kind, err := vm.ParsePolicy(strings.TrimSpace(pname))
			if err != nil {
				fatal(err)
			}
			for _, th := range threadCounts {
				var rangeStat, spinStat *stats.LockStat
				if *lockstat {
					rangeStat, spinStat = stats.New(), stats.New()
				}
				res, err := metis.Run(metis.Config{
					Workload:   wl,
					Policy:     kind,
					Workers:    th,
					InputBytes: *input,
					ArenaSize:  *arena,
					Seed:       *seed,
					RangeStat:  rangeStat,
					SpinStat:   spinStat,
				})
				if err != nil {
					fatal(err)
				}
				row := fmt.Sprintf("%s,%s,%d,%.1f,%d,%d",
					wl, kind, th,
					float64(res.Elapsed.Microseconds())/1000,
					res.VM.SpecSucceeded, res.VM.SpecFellBack)
				if *lockstat {
					row += fmt.Sprintf(",%d,%.2f,%d,%.2f,%d,%.2f",
						rangeStat.Count(stats.Read), avgUS(rangeStat, stats.Read),
						rangeStat.Count(stats.Write), avgUS(rangeStat, stats.Write),
						spinStat.Count(stats.Spin), avgUS(spinStat, stats.Spin))
				}
				fmt.Println(row)
			}
		}
	}
}

func avgUS(s *stats.LockStat, k stats.Kind) float64 {
	return float64(s.AvgWait(k).Nanoseconds()) / 1000
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for t := 1; t < max; t *= 2 {
			out = append(out, t)
		}
		return append(out, max), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, t)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metis:", err)
	os.Exit(2)
}
