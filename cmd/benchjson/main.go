// Command benchjson runs the figure benchmarks and records machine-readable
// results, seeding the performance trajectory future changes are diffed
// against.
//
// It shells out to `go test -bench`, parses the standard benchmark output
// (including custom ReportMetric columns), and appends one labelled
// snapshot to the history kept in BENCH_rangelock.json:
//
//	go run ./cmd/benchjson -label "post-sharded-ebr"
//	go run ./cmd/benchjson -bench 'Fig3|Fig6' -benchtime 2s -out BENCH_rangelock.json
//
// Comparing the last two snapshots:
//
//	go run ./cmd/benchjson -diff
//
// CI regression gate — run the benchmarks fresh and fail (exit 1) if any
// scenario matching -scenarios regressed more than -max-regress percent
// against its most recent committed snapshot (nothing is appended):
//
//	go run ./cmd/benchjson -check -scenarios 'Fig3Disjoint' -benchtime 1000x
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labelled benchmark run.
type Snapshot struct {
	Label      string   `json:"label"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	CPU        string   `json:"cpu,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPUList    string   `json:"cpu_list,omitempty"` // -cpu values the run swept, if set
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

// File is the on-disk shape of BENCH_rangelock.json.
type File struct {
	Description string     `json:"description"`
	History     []Snapshot `json:"history"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_rangelock.json", "output file (history is appended)")
		bench      = flag.String("bench", `Fig3Disjoint/reads=[0-9]+/list-(ex|rw)$|Fig6Breakdown`, "benchmark regex passed to go test -bench")
		benchtime  = flag.String("benchtime", "1s", "benchtime passed to go test")
		cpu        = flag.String("cpu", "", "cpu list passed to go test -cpu (empty: GOMAXPROCS)")
		label      = flag.String("label", "", "snapshot label (default: timestamp)")
		pkg        = flag.String("pkg", "./", "package to benchmark")
		diff       = flag.Bool("diff", false, "compare the last two snapshots in -out and exit")
		check      = flag.Bool("check", false, "run fresh and fail on regression vs the committed -out (appends nothing)")
		scenarios  = flag.String("scenarios", ".", "-check: regex of scenario names that gate")
		maxRegress = flag.Float64("max-regress", 25, "-check: max tolerated ns/op regression, percent")
	)
	flag.Parse()

	if *diff {
		if err := printDiff(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *check {
		if err := runCheck(*out, *bench, *benchtime, *pkg, *cpu, *scenarios, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	snap, err := run(*bench, *benchtime, *pkg, *cpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Label = *label
	if snap.Label == "" {
		snap.Label = snap.Date
	}

	var f File
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not parseable: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if f.Description == "" {
		f.Description = "Benchmark trajectory: ns/op per figure scenario, appended by cmd/benchjson. Diff the last two snapshots with `go run ./cmd/benchjson -diff`."
	}
	f.History = append(f.History, snap)

	enc, _ := json.MarshalIndent(&f, "", "  ")
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d results as %q in %s\n", len(snap.Results), snap.Label, *out)
}

// run executes the benchmarks and parses the output into a snapshot.
func run(bench, benchtime, pkg, cpu string) (Snapshot, error) {
	snap := Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUList:    cpu,
		Benchtime:  benchtime,
	}
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime}
	if cpu != "" {
		args = append(args, "-cpu", cpu)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	cmd.Stderr = os.Stderr
	outBuf := &bytes.Buffer{}
	cmd.Stdout = outBuf
	fmt.Fprintf(os.Stderr, "benchjson: running go test -bench %q -benchtime %s %s\n", bench, benchtime, pkg)
	if err := cmd.Run(); err != nil {
		return snap, fmt.Errorf("go test: %w\n%s", err, outBuf.String())
	}

	sc := bufio.NewScanner(outBuf)
	for sc.Scan() {
		line := sc.Text()
		os.Stdout.WriteString(line + "\n")
		switch {
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			// With a multi-value -cpu sweep the proc-count suffix is the
			// only thing distinguishing the runs, so it stays in the name;
			// single-proc runs strip it so names stay comparable across
			// machines with different GOMAXPROCS.
			if r, ok := parseLine(line, strings.Contains(cpu, ",")); ok {
				snap.Results = append(snap.Results, r)
			}
		}
	}
	if len(snap.Results) == 0 {
		return snap, fmt.Errorf("no benchmark results matched %q", bench)
	}
	return snap, nil
}

// parseLine parses one `BenchmarkX-N  iters  123 ns/op  4.5 unit ...`
// line, keeping the trailing -N proc suffix only when keepProcs is set
// (multi-value -cpu sweeps, where it disambiguates).
func parseLine(line string, keepProcs bool) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 && !keepProcs {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, r.NsPerOp != 0
}

// runCheck runs the benchmarks fresh and compares each scenario matching
// the scenarios regex against its most recent appearance in the committed
// history, failing on any ns/op regression beyond maxRegress percent.
// Scenarios without a committed baseline are reported as new and never
// gate. Nothing is written to the history file.
func runCheck(path, bench, benchtime, pkg, cpu, scenarios string, maxRegress float64) error {
	re, err := regexp.Compile(scenarios)
	if err != nil {
		return fmt.Errorf("bad -scenarios regex: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("no committed baseline: %w", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if len(f.History) == 0 {
		return fmt.Errorf("%s holds no snapshots to check against", path)
	}

	fresh, err := run(bench, benchtime, pkg, cpu)
	if err != nil {
		return err
	}

	var failures []string
	matched := 0
	fmt.Printf("%-55s %12s %12s %8s\n", "scenario", "baseline", "fresh", "delta")
	for _, r := range fresh.Results {
		if !re.MatchString(r.Name) {
			continue
		}
		matched++
		base, label, ok := lastSeen(f.History, r.Name)
		if !ok {
			fmt.Printf("%-55s %12s %12.1f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := (r.NsPerOp - base) / base * 100
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% > %.0f%%, baseline %q)",
					r.Name, base, r.NsPerOp, delta, maxRegress, label))
		}
		fmt.Printf("%-55s %12.1f %12.1f %+7.1f%%%s\n", r.Name, base, r.NsPerOp, delta, mark)
	}
	if matched == 0 {
		// A gate that matches nothing checks nothing — renamed benchmarks
		// or a drifted regex must fail loudly, not pass forever.
		return fmt.Errorf("no fresh result matched -scenarios %q (ran %d); the gate would check nothing", scenarios, len(fresh.Results))
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d scenario(s) regressed past %.0f%%:\n  %s",
			len(failures), maxRegress, strings.Join(failures, "\n  "))
	}
	fmt.Printf("check passed: %d scenario(s) matching %q, none regressed past %.0f%%\n", matched, scenarios, maxRegress)
	return nil
}

// lastSeen finds name's ns/op in the most recent snapshot that recorded
// it, along with that snapshot's label.
func lastSeen(history []Snapshot, name string) (float64, string, bool) {
	for i := len(history) - 1; i >= 0; i-- {
		for _, r := range history[i].Results {
			if r.Name == name {
				return r.NsPerOp, history[i].Label, true
			}
		}
	}
	return 0, "", false
}

// printDiff compares the last two snapshots in the history file.
func printDiff(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if len(f.History) < 2 {
		return fmt.Errorf("%s holds %d snapshot(s); need 2 to diff", path, len(f.History))
	}
	a, b := f.History[len(f.History)-2], f.History[len(f.History)-1]
	base := make(map[string]float64, len(a.Results))
	for _, r := range a.Results {
		base[r.Name] = r.NsPerOp
	}
	fmt.Printf("%-55s %12s %12s %8s\n", "scenario", a.Label, b.Label, "delta")
	for _, r := range b.Results {
		old, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-55s %12s %12.1f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		fmt.Printf("%-55s %12.1f %12.1f %+7.1f%%\n", r.Name, old, r.NsPerOp, (r.NsPerOp-old)/old*100)
	}
	return nil
}
