// Command arrbench regenerates Figure 3 of the paper: throughput of the
// ArrBench microbenchmark under each range-lock implementation, swept over
// thread counts, for the three access variants and read percentages.
//
// Output is CSV: variant,reads,lock,threads,ops_per_sec
//
// Examples:
//
//	arrbench                                   # full sweep, paper defaults
//	arrbench -variant random -reads 60 -threads 1,2,4,8
//	arrbench -locks list-rw,kernel-rw -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/arrbench"
	"repro/internal/lockapi"
)

func main() {
	var (
		variants  = flag.String("variant", "full,disjoint,random", "comma-separated ArrBench variants")
		reads     = flag.String("reads", "100,60", "comma-separated read percentages")
		locksFlag = flag.String("locks", "list-ex,list-rw,lustre-ex,kernel-rw,pnova-rw,song-rw", "comma-separated lock variants")
		threads   = flag.String("threads", "", "comma-separated thread counts (default 1,2,4,...,GOMAXPROCS)")
		duration  = flag.Duration("duration", time.Second, "measurement time per point (paper: 10s)")
		slots     = flag.Int("slots", arrbench.DefaultSlots, "array slots")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	threadCounts, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}

	fmt.Println("variant,reads,lock,threads,ops_per_sec")
	for _, vname := range strings.Split(*variants, ",") {
		variant, err := arrbench.ParseVariant(strings.TrimSpace(vname))
		if err != nil {
			fatal(err)
		}
		for _, rname := range strings.Split(*reads, ",") {
			readPct, err := strconv.Atoi(strings.TrimSpace(rname))
			if err != nil || readPct < 0 || readPct > 100 {
				fatal(fmt.Errorf("bad read percentage %q", rname))
			}
			for _, lname := range strings.Split(*locksFlag, ",") {
				lname = strings.TrimSpace(lname)
				for _, th := range threadCounts {
					lk, err := makeLock(lname, *slots)
					if err != nil {
						fatal(err)
					}
					res := arrbench.Run(arrbench.Config{
						Lock:     lk,
						Variant:  variant,
						Threads:  th,
						ReadPct:  readPct,
						Slots:    *slots,
						Duration: *duration,
						Seed:     *seed,
					})
					fmt.Printf("%s,%d,%s,%d,%.0f\n", variant, readPct, lname, th, res.Throughput)
				}
			}
		}
	}
}

func makeLock(name string, slots int) (lockapi.Locker, error) {
	if name == "pnova-rw" {
		return arrbench.NewPnovaForArray(slots), nil
	}
	return lockapi.New(name)
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for t := 1; t < max; t *= 2 {
			out = append(out, t)
		}
		return append(out, max), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, t)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrbench:", err)
	os.Exit(2)
}
