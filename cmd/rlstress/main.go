// Command rlstress is a stress/validation harness for every range-lock
// implementation in the repository. It hammers one lock with randomized
// overlapping read/write acquisitions from many goroutines while an
// embedded conflict detector checks the two safety properties a range
// lock must provide:
//
//  1. writer exclusivity — no two holders on one unit when either writes;
//  2. reader visibility — a reader never observes a concurrent writer.
//
// It exits non-zero on the first violation, printing the offending unit
// and the colliding goroutines; run it under `-race` (go run -race ...)
// for memory-level checking too.
//
// Usage:
//
//	rlstress [-lock list-rw] [-goroutines 8] [-units 128] [-duration 10s]
//	rlstress -lock all -duration 2s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockapi"
)

func main() {
	var (
		lockName   = flag.String("lock", "all", "lock variant (or 'all')")
		goroutines = flag.Int("goroutines", 8, "concurrent goroutines")
		units      = flag.Int("units", 128, "resource units (range space)")
		writePct   = flag.Int("writes", 30, "write percentage")
		duration   = flag.Duration("duration", 5*time.Second, "stress time per lock")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "random seed")
	)
	flag.Parse()

	names := []string{*lockName}
	if *lockName == "all" {
		names = names[:0]
		for name := range lockapi.Variant {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	ok := true
	for _, name := range names {
		lk, err := lockapi.New(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlstress:", err)
			os.Exit(2)
		}
		fmt.Printf("%-10s goroutines=%d units=%d writes=%d%% duration=%v seed=%d ... ",
			name, *goroutines, *units, *writePct, *duration, *seed)
		res := stress(lk, *goroutines, *units, *writePct, *duration, *seed)
		if res.violations > 0 {
			fmt.Printf("FAIL (%d violations, %d ops)\n", res.violations, res.ops)
			ok = false
		} else {
			fmt.Printf("ok (%d ops, %.0f ops/s)\n", res.ops, res.rate)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

type result struct {
	ops        uint64
	rate       float64
	violations uint64
}

func stress(lk lockapi.Locker, goroutines, units, writePct int, d time.Duration, seed int64) result {
	var (
		writers    = make([]atomic.Int32, units)
		readers    = make([]atomic.Int32, units)
		ops        atomic.Uint64
		violations atomic.Uint64
		stop       atomic.Bool
		wg         sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(me int32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(me)*179426549))
			for !stop.Load() {
				s := uint64(rng.Intn(units))
				e := s + 1 + uint64(rng.Intn(units-int(s)))
				write := rng.Intn(100) < writePct
				rel := lk.Acquire(s, e, write)
				if write {
					for u := s; u < e; u++ {
						if old := writers[u].Swap(me + 1); old != 0 {
							violations.Add(1)
							fmt.Fprintf(os.Stderr,
								"\nVIOLATION: unit %d held by writer %d while writer %d enters [%d,%d)\n",
								u, old-1, me, s, e)
						}
						if r := readers[u].Load(); r != 0 {
							violations.Add(1)
							fmt.Fprintf(os.Stderr,
								"\nVIOLATION: writer %d overlaps %d readers on unit %d\n", me, r, u)
						}
					}
					for u := s; u < e; u++ {
						writers[u].Store(0)
					}
				} else {
					for u := s; u < e; u++ {
						readers[u].Add(1)
						if w := writers[u].Load(); w != 0 {
							violations.Add(1)
							fmt.Fprintf(os.Stderr,
								"\nVIOLATION: reader %d overlaps writer %d on unit %d\n", me, w-1, u)
						}
					}
					for u := s; u < e; u++ {
						readers[u].Add(-1)
					}
				}
				rel()
				ops.Add(1)
			}
		}(int32(g))
	}
	start := time.Now()
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return result{
		ops:        ops.Load(),
		rate:       float64(ops.Load()) / elapsed.Seconds(),
		violations: violations.Load(),
	}
}
