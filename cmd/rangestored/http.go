// The opt-in -http endpoint. Three things hang off it, all read-only:
//
//	/metrics        the server's obs registry in Prometheus text format
//	/healthz        a small JSON document: role, recovery summary, and
//	                replication state (lag on the leader, applied
//	                frontier work on the follower)
//	/debug/pprof/*  net/http/pprof, for profiling the live server
//
// The endpoint binds its own listener so operational scrapes never
// contend with the data-plane protocol port, and it is off unless
// -http is given — the store itself has no HTTP dependency.
package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/rangestore"
)

// health is the /healthz response document. Lag fields are summed over
// shards and only meaningful in the role that produces them (lag on the
// leader, applied/reconnects on the follower); the rest are zero.
type health struct {
	Role           string            `json:"role"`
	Shards         int64             `json:"shards"`
	WAL            bool              `json:"wal"`
	Recovered      *pfs.RecoverStats `json:"recovered,omitempty"`
	LagRecords     int64             `json:"repl_lag_records"`
	LagBytes       int64             `json:"repl_lag_bytes"`
	FollowStreams  int64             `json:"repl_follow_streams"`
	AppliedRecords int64             `json:"repl_applied_records"`
	Reconnects     int64             `json:"repl_reconnects"`
	QuorumSize     int64             `json:"repl_quorum_size"`
	Followers      int64             `json:"repl_followers"`
	Epoch          int64             `json:"repl_epoch"`
	Elections      int64             `json:"elections_total"`
}

// startHTTP serves the observability endpoint on addr until the process
// exits. It returns the bound listener so main can report the actual
// address (addr may carry port 0 in tests).
func startHTTP(addr string, srv *rangestore.Server, shards int, walEnabled bool, stats pfs.RecoverStats, log *obs.Logger) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := srv.MetricsRegistry()
		if reg == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := health{Role: "leader", Shards: int64(shards), WAL: walEnabled}
		if walEnabled {
			h.Recovered = &stats
		}
		if reg := srv.MetricsRegistry(); reg != nil {
			snap := reg.Snapshot()
			if snap.Value("rs_role_follower") == 1 {
				h.Role = "follower"
			}
			for i := range snap.Entries {
				e := &snap.Entries[i]
				switch e.Name {
				case "repl_lag_records":
					h.LagRecords += e.Value
				case "repl_lag_bytes":
					h.LagBytes += e.Value
				case "repl_follow_streams":
					h.FollowStreams = e.Value
				case "repl_applied_records_total":
					h.AppliedRecords = e.Value
				case "repl_reconnects_total":
					h.Reconnects = e.Value
				case "repl_quorum_size":
					h.QuorumSize = e.Value
				case "repl_followers":
					h.Followers = e.Value
				case "repl_epoch":
					h.Epoch = e.Value
				case "elections_total":
					h.Elections = e.Value
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			// Listener closed at shutdown lands here; anything else is
			// worth a line.
			log.Debug("http endpoint stopped", "addr", ln.Addr(), "err", err)
		}
	}()
	return ln, nil
}
