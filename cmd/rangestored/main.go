// Command rangestored serves an in-memory byte-range store over TCP,
// backed by internal/pfs with a selectable range-lock variant — the
// repository's first component that serves request traffic instead of
// running a benchmark loop.
//
//	go run ./cmd/rangestored -addr :7420 -lock list-rw -shards 8
//	go run ./cmd/rangestored -lock pnova-rw -extent 1073741824 -segs 1024
//	go run ./cmd/rangestored -shards 8 -placement map -rebalance 5s -rebalance-topk 4
//	go run ./cmd/rangestored -shards 8 -wal /var/lib/rangestored -fsync batch
//	go run ./cmd/rangestored -addr :7421 -shards 8 -placement map \
//	    -wal /var/lib/rangestored-f -follow leader:7420
//
// With -wal DIR every mutation is journaled to a per-shard write-ahead
// log in DIR and replayed on the next boot: kill the server mid-load
// and restart it, and every acknowledged write is still there. -fsync
// picks the durability point — "batch" (default) group-commits one
// fsync per pipelined batch before its responses flush, "always"
// fsyncs every record, "off" journals without fsync (recovery then
// replays whatever the OS kept). Logs self-compact: past -ckpt-bytes a
// shard snapshots its state and truncates its log.
//
// With -follow ADDR the server runs as a live follower of the leader at
// ADDR (requires -wal and -placement map): it pulls committed WAL
// records per shard, applies and re-journals them locally, and serves
// read-only traffic — writes are answered with a redirect naming the
// leader (-advertise overrides the advertised address when clients
// cannot reach the leader at the -follow one). A PROMOTE request flips
// it into a writable leader after the replication streams drain; the
// client library's FailoverClient does the redial-and-retry dance
// automatically.
//
// With -shards N the store is split into N lock domains, so traffic
// against different files scales with cores instead of contending on
// one slot table. -placement picks how files map to shards: "hash"
// (stateless FNV, the default), "rendezvous" (weighted
// highest-random-weight hashing; shard weights via -weights), or "map"
// (a versioned name→shard table over the hash). Only "map" supports
// online migration: with -rebalance > 0 the server periodically moves
// the hottest files (up to -rebalance-topk per round, chosen by
// request counts) off overloaded shards while serving, and clients'
// MIGRATE requests re-home single files on demand. Drive it with
// cmd/rangeload. On SIGINT/SIGTERM the server shuts down gracefully —
// listeners close, in-flight batches answer, connections drain — and
// prints how many requests it served per operation and per shard; a
// second signal forces an immediate stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lockapi"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/rangestore"
)

func main() {
	var (
		addr      = flag.String("addr", ":7420", "TCP listen address")
		lock      = flag.String("lock", "list-rw", "range-lock variant per file: "+variantNames())
		shards    = flag.Int("shards", 1, "lock domains the store is sharded across")
		placement = flag.String("placement", "hash", "file placement policy: hash, rendezvous, map")
		weights   = flag.String("weights", "", "rendezvous: comma-separated shard weights (default all 1)")
		rebalance = flag.Duration("rebalance", 0, "auto-migrate hot files this often (map placement only; 0 = off)")
		topk      = flag.Int("rebalance-topk", 4, "max files migrated per rebalance round")
		extent    = flag.Uint64("extent", 1<<30, "pnova-rw: covered byte extent per file")
		segs      = flag.Int("segs", 1024, "pnova-rw: segments per file")
		batch     = flag.Int("batch", 64, "max pipelined requests served per lock-context lease")
		grace     = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain budget before connections are force-closed")
		walDir    = flag.String("wal", "", "write-ahead log directory: journal mutations per shard and recover on boot (empty = RAM only)")
		fsync     = flag.String("fsync", "batch", "WAL fsync policy: batch (one fsync per pipelined batch), always (per record), off")
		ckptBytes = flag.Int64("ckpt-bytes", rangestore.DefaultCheckpointBytes, "per-shard log size that triggers a checkpoint/compaction")
		walBuf    = flag.Int64("wal-buffer-bytes", pfs.DefaultWALBufferBytes, "per-shard cap on WAL bytes buffered ahead of the log file; appenders block at the cap (0 = unbounded)")
		walPipe   = flag.Int("wal-pipeline", pfs.DefaultCommitPipeline, "per-shard cap on in-flight WAL fsyncs (commit pipeline depth; 0 = serialized commits)")
		follow    = flag.String("follow", "", "run as a live follower of the leader at this address (requires -wal and -placement map)")
		advertise = flag.String("advertise", "", "leader address told to redirected clients (default: the -follow address)")
		ackWait   = flag.Duration("repl-ack-timeout", rangestore.DefaultReplAckTimeout, "leader: max wait for a follower's ack before a batch commit fails and the follower is dropped")
		nodeID    = flag.String("node-id", "", "this node's advertised address, as it appears in -peers")
		peers     = flag.String("peers", "", "comma-separated cluster addresses (this node included): commits need a majority and followers elect a new leader on silence (requires -wal and -node-id)")
		electWait = flag.Duration("election-timeout", 2*time.Second, "follower: leader silence that triggers an election (needs -peers)")
		heartbeat = flag.Duration("repl-heartbeat", 500*time.Millisecond, "leader: heartbeat interval on idle replication streams (the followers' liveness signal)")
		httpAddr  = flag.String("http", "", "serve /metrics (Prometheus text), /healthz and /debug/pprof on this address (empty = off)")
		traceSlow = flag.Duration("trace-slow", -1, "log a structured per-op breakdown of any batch at least this slow (0 = every batch, negative = off)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	mk, err := factory(*lock, *extent, *segs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}
	w, err := pfs.ParseWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}
	place, err := pfs.NewPlacement(*placement, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}
	if *rebalance > 0 && place.Name() != "map" {
		fmt.Fprintf(os.Stderr, "rangestored: -rebalance needs -placement map (have %s)\n", place.Name())
		os.Exit(2)
	}
	if *follow != "" {
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "rangestored: -follow needs -wal (the follower journals what it applies)")
			os.Exit(2)
		}
		if place.Name() != "map" {
			fmt.Fprintf(os.Stderr, "rangestored: -follow needs -placement map (have %s)\n", place.Name())
			os.Exit(2)
		}
		if *rebalance > 0 {
			fmt.Fprintln(os.Stderr, "rangestored: -follow and -rebalance are mutually exclusive (a follower obeys the leader's placement)")
			os.Exit(2)
		}
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "rangestored: -peers needs -wal (quorum commits and epochs live in the journal)")
			os.Exit(2)
		}
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "rangestored: -peers needs -node-id (this node's own address in the list)")
			os.Exit(2)
		}
		self := false
		for _, p := range peerList {
			self = self || p == *nodeID
		}
		if !self {
			fmt.Fprintf(os.Stderr, "rangestored: -node-id %s does not appear in -peers %s\n", *nodeID, *peers)
			os.Exit(2)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(1)
	}
	opts := []rangestore.ServerOption{
		rangestore.WithMaxBatch(*batch),
		rangestore.WithLogger(logger),
		rangestore.WithSlowTrace(*traceSlow),
	}
	var store *pfs.Sharded
	var journal *rangestore.Journal
	var stats pfs.RecoverStats
	if *walDir != "" {
		mode, err := pfs.ParseSyncMode(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored:", err)
			os.Exit(2)
		}
		dir, err := pfs.OpenOSDir(*walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored:", err)
			os.Exit(1)
		}
		// Flag zero means "off" (unbounded buffer, serialized commits);
		// the config encodes off as negative and reserves zero for the
		// defaults, which the flag defaults already carry.
		bufBytes := *walBuf
		if bufBytes <= 0 {
			bufBytes = -1
		}
		pipe := *walPipe
		if pipe <= 0 {
			pipe = -1
		}
		store, journal, stats, err = rangestore.Recover(dir, rangestore.RecoverConfig{
			Shards:          *shards,
			Lock:            mk,
			Placement:       place,
			Sync:            mode,
			CheckpointBytes: *ckptBytes,
			ReplAckTimeout:  *ackWait,
			WALBufferBytes:  bufBytes,
			CommitPipeline:  pipe,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored: recover:", err)
			os.Exit(1)
		}
		fmt.Printf("rangestored: wal=%s fsync=%s: %v\n", *walDir, mode, stats)
		opts = append(opts, rangestore.WithJournal(journal), rangestore.WithRecovered(stats))
	} else {
		store = pfs.NewShardedPlacement(*shards, mk, place)
	}
	opts = append(opts, rangestore.WithReplHeartbeat(*heartbeat))
	if len(peerList) >= 2 && *follow == "" {
		// Booting as the leader of a declared cluster: every commit
		// needs a majority of it, even before any follower attaches.
		journal.SetClusterSize(len(peerList))
	}
	var replica *rangestore.Replica
	var leaderRef *rangestore.LeaderRef
	if *follow != "" {
		leaderRef = rangestore.NewLeaderRef(*follow)
		var ropts []rangestore.ReplicaOption
		if *nodeID != "" {
			ropts = append(ropts, rangestore.WithReplicaID(*nodeID))
		}
		rep, err := rangestore.StartReplica(store, journal, stats, func() (net.Conn, error) {
			return net.DialTimeout("tcp", leaderRef.Load(), 5*time.Second)
		}, ropts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored: follow:", err)
			os.Exit(1)
		}
		replica = rep
		adv := *advertise
		if adv == "" {
			adv = *follow
		}
		opts = append(opts, rangestore.WithFollower(replica, adv))
	}
	srv := rangestore.NewServerSharded(store, opts...)
	var elector *rangestore.Elector
	if replica != nil && len(peerList) >= 2 {
		elector, err = rangestore.StartElector(srv, rangestore.ElectorConfig{
			Self:  *nodeID,
			Peers: peerList,
			Dial: func(addr string) (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 5*time.Second)
			},
			Timeout: *electWait,
			Leader:  leaderRef,
			Logger:  logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored: elector:", err)
			os.Exit(1)
		}
		fmt.Printf("rangestored: elector armed (self=%s peers=%d election-timeout=%v)\n",
			*nodeID, len(peerList), *electWait)
	}
	role := "leader"
	if replica != nil {
		role = "follower of " + *follow
	}
	fmt.Printf("rangestored: serving on %s (lock=%s shards=%d placement=%s batch=%d role=%s)\n",
		l.Addr(), *lock, store.NumShards(), place.Name(), *batch, role)
	if *httpAddr != "" {
		hl, err := startHTTP(*httpAddr, srv, store.NumShards(), *walDir != "", stats, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored: -http:", err)
			os.Exit(1)
		}
		defer hl.Close()
		fmt.Printf("rangestored: observability on http://%s (/metrics /healthz /debug/pprof)\n", hl.Addr())
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	stopRebalance := make(chan struct{})
	var migrated atomic.Int64
	if *rebalance > 0 {
		go func() {
			tick := time.NewTicker(*rebalance)
			defer tick.Stop()
			for {
				select {
				case <-stopRebalance:
					return
				case <-tick.C:
					migs, err := srv.Rebalance(*topk)
					if err != nil {
						fmt.Printf("rangestored: rebalance: %v\n", err)
						continue
					}
					for _, m := range migs {
						migrated.Add(1)
						fmt.Printf("rangestored: rebalanced %v\n", m)
					}
				}
			}
		}()
	}

	select {
	case s := <-sig:
		fmt.Printf("rangestored: %v, draining (up to %v; signal again to force)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		go func() {
			<-sig
			cancel() // second signal: force-close immediately
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Printf("rangestored: drain cut short: %v\n", err)
		}
		cancel()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored:", err)
			os.Exit(1)
		}
	}
	close(stopRebalance)
	if elector != nil {
		elector.Stop()
	}
	if replica != nil {
		// Sever the replication streams before the journal goes away; a
		// stream mid-apply finishes its batch first (Stop drains).
		replica.Stop()
	}
	if journal != nil {
		// The drain already committed every answered batch; this syncs
		// any unacknowledged tail and closes the log files.
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rangestored: wal close:", err)
		}
	}
	if n := migrated.Load(); n > 0 {
		fmt.Printf("rangestored: %d file(s) auto-migrated\n", n)
	}
	counts := srv.Counts()
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("rangestored: served %-8s %d\n", op, counts[op])
	}
	if sc := srv.ShardCounts(); len(sc) > 1 {
		var total int64
		for _, n := range sc {
			total += n
		}
		for i, n := range sc {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(n) / float64(total)
			}
			fmt.Printf("rangestored: shard %-3d  %d (%.0f%%)\n", i, n, pct)
		}
	}
}

// factory resolves a lock variant name into a per-file, domain-aware
// LockFactory. Only the list-based locks carry domain state; the rest
// ignore the shard's domain but still get per-shard namespaces and
// block tables.
func factory(name string, extent uint64, segs int) (pfs.DomainLockFactory, error) {
	if name == "pnova-rw" {
		return func(*core.Domain) lockapi.Locker { return lockapi.NewPnovaRW(extent, segs) }, nil
	}
	if _, err := lockapi.New(name); err != nil {
		return nil, fmt.Errorf("unknown -lock %q; have %s", name, variantNames())
	}
	return func(dom *core.Domain) lockapi.Locker {
		l, _ := lockapi.NewInDomain(name, dom)
		return l
	}, nil
}

func variantNames() string {
	names := make([]string, 0, len(lockapi.Variant)+1)
	for n := range lockapi.Variant {
		names = append(names, n)
	}
	names = append(names, "pnova-rw")
	sort.Strings(names)
	return strings.Join(names, ", ")
}
