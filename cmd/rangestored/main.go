// Command rangestored serves an in-memory byte-range store over TCP,
// backed by internal/pfs with a selectable range-lock variant — the
// repository's first component that serves request traffic instead of
// running a benchmark loop.
//
//	go run ./cmd/rangestored -addr :7420 -lock list-rw
//	go run ./cmd/rangestored -lock pnova-rw -extent 1073741824 -segs 1024
//
// Drive it with cmd/rangeload. On SIGINT/SIGTERM the server drains and
// prints how many requests it served per operation.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/lockapi"
	"repro/internal/pfs"
	"repro/internal/rangestore"
)

func main() {
	var (
		addr   = flag.String("addr", ":7420", "TCP listen address")
		lock   = flag.String("lock", "list-rw", "range-lock variant per file: "+variantNames())
		extent = flag.Uint64("extent", 1<<30, "pnova-rw: covered byte extent per file")
		segs   = flag.Int("segs", 1024, "pnova-rw: segments per file")
		batch  = flag.Int("batch", 64, "max pipelined requests served per lock-context lease")
	)
	flag.Parse()

	mk, err := factory(*lock, *extent, *segs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(1)
	}
	srv := rangestore.NewServer(pfs.New(mk), rangestore.WithMaxBatch(*batch))
	fmt.Printf("rangestored: serving on %s (lock=%s batch=%d)\n", l.Addr(), *lock, *batch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case s := <-sig:
		fmt.Printf("rangestored: %v, shutting down\n", s)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored:", err)
			os.Exit(1)
		}
	}
	counts := srv.Counts()
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("rangestored: served %-8s %d\n", op, counts[op])
	}
}

// factory resolves a lock variant name into a per-file LockFactory.
func factory(name string, extent uint64, segs int) (pfs.LockFactory, error) {
	if name == "pnova-rw" {
		return func() lockapi.Locker { return lockapi.NewPnovaRW(extent, segs) }, nil
	}
	if _, err := lockapi.New(name); err != nil {
		return nil, fmt.Errorf("unknown -lock %q; have %s", name, variantNames())
	}
	return func() lockapi.Locker {
		l, _ := lockapi.New(name)
		return l
	}, nil
}

func variantNames() string {
	names := make([]string, 0, len(lockapi.Variant)+1)
	for n := range lockapi.Variant {
		names = append(names, n)
	}
	names = append(names, "pnova-rw")
	sort.Strings(names)
	return strings.Join(names, ", ")
}
