// Command rangestored serves an in-memory byte-range store over TCP,
// backed by internal/pfs with a selectable range-lock variant — the
// repository's first component that serves request traffic instead of
// running a benchmark loop.
//
//	go run ./cmd/rangestored -addr :7420 -lock list-rw -shards 8
//	go run ./cmd/rangestored -lock pnova-rw -extent 1073741824 -segs 1024
//
// With -shards N the store is split into N lock domains (files hashed by
// name), so traffic against different files scales with cores instead of
// contending on one slot table. Drive it with cmd/rangeload. On
// SIGINT/SIGTERM the server shuts down gracefully — listeners close,
// in-flight batches answer, connections drain — and prints how many
// requests it served per operation and per shard; a second signal forces
// an immediate stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lockapi"
	"repro/internal/pfs"
	"repro/internal/rangestore"
)

func main() {
	var (
		addr   = flag.String("addr", ":7420", "TCP listen address")
		lock   = flag.String("lock", "list-rw", "range-lock variant per file: "+variantNames())
		shards = flag.Int("shards", 1, "lock domains the store is sharded across (files hashed by name)")
		extent = flag.Uint64("extent", 1<<30, "pnova-rw: covered byte extent per file")
		segs   = flag.Int("segs", 1024, "pnova-rw: segments per file")
		batch  = flag.Int("batch", 64, "max pipelined requests served per lock-context lease")
		grace  = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain budget before connections are force-closed")
	)
	flag.Parse()

	mk, err := factory(*lock, *extent, *segs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rangestored:", err)
		os.Exit(1)
	}
	store := pfs.NewSharded(*shards, mk)
	srv := rangestore.NewServerSharded(store, rangestore.WithMaxBatch(*batch))
	fmt.Printf("rangestored: serving on %s (lock=%s shards=%d batch=%d)\n", l.Addr(), *lock, store.NumShards(), *batch)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case s := <-sig:
		fmt.Printf("rangestored: %v, draining (up to %v; signal again to force)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		go func() {
			<-sig
			cancel() // second signal: force-close immediately
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Printf("rangestored: drain cut short: %v\n", err)
		}
		cancel()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "rangestored:", err)
			os.Exit(1)
		}
	}
	counts := srv.Counts()
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("rangestored: served %-8s %d\n", op, counts[op])
	}
	if sc := srv.ShardCounts(); len(sc) > 1 {
		var total int64
		for _, n := range sc {
			total += n
		}
		for i, n := range sc {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(n) / float64(total)
			}
			fmt.Printf("rangestored: shard %-3d  %d (%.0f%%)\n", i, n, pct)
		}
	}
}

// factory resolves a lock variant name into a per-file, domain-aware
// LockFactory. Only the list-based locks carry domain state; the rest
// ignore the shard's domain but still get per-shard namespaces and
// block tables.
func factory(name string, extent uint64, segs int) (pfs.DomainLockFactory, error) {
	if name == "pnova-rw" {
		return func(*core.Domain) lockapi.Locker { return lockapi.NewPnovaRW(extent, segs) }, nil
	}
	if _, err := lockapi.New(name); err != nil {
		return nil, fmt.Errorf("unknown -lock %q; have %s", name, variantNames())
	}
	return func(dom *core.Domain) lockapi.Locker {
		l, _ := lockapi.NewInDomain(name, dom)
		return l
	}, nil
}

func variantNames() string {
	names := make([]string, 0, len(lockapi.Variant)+1)
	for n := range lockapi.Variant {
		names = append(names, n)
	}
	names = append(names, "pnova-rw")
	sort.Strings(names)
	return strings.Join(names, ", ")
}
