// Command skipbench regenerates Figure 4 of the paper: throughput of the
// Synchrobench-style skip-list workload (80% find / 20% update, 8M key
// range, 4M prefill) for the original optimistic skip list and the
// range-lock-based skip lists.
//
// Output is CSV: impl,threads,ops_per_sec
//
// Example:
//
//	skipbench -threads 1,2,4,8 -range 1048576 -prefill 524288 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/lockapi"
	"repro/internal/skiplist"
)

func main() {
	var (
		impls    = flag.String("impls", "orig,range-list,range-lustre", "comma-separated skip list implementations")
		threads  = flag.String("threads", "", "comma-separated thread counts (default 1,2,4,...,GOMAXPROCS)")
		keyRange = flag.Uint64("range", 1<<23, "key range (paper: 8M)")
		prefill  = flag.Uint64("prefill", 1<<22, "prefilled keys (paper: 4M)")
		updates  = flag.Int("updates", 20, "update percentage (paper: 20)")
		duration = flag.Duration("duration", time.Second, "measurement time per point")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	threadCounts, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}

	fmt.Println("impl,threads,ops_per_sec")
	for _, iname := range strings.Split(*impls, ",") {
		iname = strings.TrimSpace(iname)
		for _, th := range threadCounts {
			set, err := makeSet(iname)
			if err != nil {
				fatal(err)
			}
			res := skiplist.RunWorkload(set, skiplist.WorkloadConfig{
				Threads:   th,
				KeyRange:  *keyRange,
				Prefill:   *prefill,
				UpdatePct: *updates,
				Duration:  *duration,
				Seed:      *seed,
			})
			fmt.Printf("%s,%d,%.0f\n", iname, th, res.Throughput)
		}
	}
}

func makeSet(name string) (skiplist.Set, error) {
	switch name {
	case "orig":
		return skiplist.NewOptimistic(), nil
	case "range-list":
		return skiplist.NewRangeLocked(lockapi.NewListEx(nil)), nil
	case "range-lustre":
		return skiplist.NewRangeLocked(lockapi.NewLustreEx()), nil
	case "range-song":
		return skiplist.NewRangeLocked(lockapi.NewSongRW()), nil
	default:
		return nil, fmt.Errorf("unknown implementation %q (orig, range-list, range-lustre, range-song)", name)
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for t := 1; t < max; t *= 2 {
			out = append(out, t)
		}
		return append(out, max), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, t)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipbench:", err)
	os.Exit(2)
}
