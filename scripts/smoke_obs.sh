#!/usr/bin/env bash
# Observability end-to-end smoke: boot a WAL-backed rangestored with
# -http, drive a rangeload burst, then scrape /metrics and fail on
# missing or NaN core series. CI runs this; it is also a handy local
# sanity check:
#
#   bash scripts/smoke_obs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-7429}
HTTP=${HTTP:-9429}
dir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/rangestored" ./cmd/rangestored
go build -o "$dir/rangeload" ./cmd/rangeload

"$dir/rangestored" -addr "127.0.0.1:$PORT" -shards 4 -placement map \
    -wal "$dir/wal" -fsync batch -http "127.0.0.1:$HTTP" -trace-slow 50ms &
pid=$!

for _ in $(seq 50); do
    if curl -fs "http://127.0.0.1:$HTTP/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

health=$(curl -fs "http://127.0.0.1:$HTTP/healthz")
echo "$health"
if ! echo "$health" | grep -q '"role": "leader"'; then
    echo "FAIL: /healthz does not report role=leader" >&2
    exit 1
fi

"$dir/rangeload" -addr "127.0.0.1:$PORT" -mix write-heavy -workers 4 \
    -pipeline 4 -duration 3s -shards 4 -placement map \
    -report json -out "$dir/report.json"
if ! grep -q '"hist"' "$dir/report.json"; then
    echo "FAIL: rangeload JSON report carries no latency histograms" >&2
    exit 1
fi

metrics=$(curl -fs "http://127.0.0.1:$HTTP/metrics")
if echo "$metrics" | grep -q 'NaN'; then
    echo "FAIL: /metrics contains NaN" >&2
    exit 1
fi
for series in \
    'wal_fsync_ns_count' \
    'wal_commit_batch_records_count' \
    'wal_flushed_bytes_total' \
    'rs_requests_total{op="write"}' \
    'rs_batch_requests_count' \
    'rs_shard_requests_total{shard="0"}' \
    'repl_lag_records'; do
    if ! echo "$metrics" | grep -qF "$series"; then
        echo "FAIL: /metrics missing core series $series" >&2
        echo "$metrics" | head -40 >&2
        exit 1
    fi
done

# A write burst under -fsync batch must have produced real fsyncs and
# real group commits — presence alone is not enough.
for counter in wal_fsyncs_total wal_commit_batch_records_count; do
    val=$(echo "$metrics" | awk -v c="$counter" '$1==c{print $2}')
    if [ -z "$val" ] || [ "$val" -le 0 ]; then
        echo "FAIL: $counter is ${val:-absent} after a write burst" >&2
        exit 1
    fi
done

# pprof must answer on the same listener.
curl -fs "http://127.0.0.1:$HTTP/debug/pprof/cmdline" >/dev/null

# Client-cache smoke: a warm read-heavy run through the client-side
# cache must report real hits and a hit rate above one half in the
# JSON report (keys match the cc_* obs series names).
"$dir/rangeload" -addr "127.0.0.1:$PORT" -mix read-heavy -workers 4 \
    -duration 2s -shards 4 -placement map \
    -client-cache-bytes $((64 * 1024 * 1024)) -cache-scenario warm \
    -report json -out "$dir/cache.json"
cc_hits=$(python3 -c "import json; print(json.load(open('$dir/cache.json'))['cache']['cc_hits_total'])" 2>/dev/null ||
    grep -o '"cc_hits_total": *[0-9]*' "$dir/cache.json" | grep -o '[0-9]*$')
if [ -z "$cc_hits" ] || [ "$cc_hits" -le 0 ]; then
    echo "FAIL: cc_hits_total is ${cc_hits:-absent} after a warm cached run" >&2
    cat "$dir/cache.json" >&2
    exit 1
fi
hit_rate=$(grep -o '"hit_rate": *[0-9.]*' "$dir/cache.json" | grep -o '[0-9.]*$')
if [ -z "$hit_rate" ] || ! awk -v r="$hit_rate" 'BEGIN{exit !(r > 0.5)}'; then
    echo "FAIL: warm cache hit_rate is ${hit_rate:-absent}, want > 0.5" >&2
    cat "$dir/cache.json" >&2
    exit 1
fi
echo "client cache: hits=$cc_hits hit_rate=$hit_rate"

echo "observability smoke OK"
