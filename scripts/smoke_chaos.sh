#!/usr/bin/env bash
# Chaos smoke: the quorum-replication failover path, end to end, twice
# over.
#
# Part 1 runs the in-process chaos scenario under the race detector: a
# 3-node cluster suffers ten kill/revive cycles (leader included) on a
# lossy transport while client load runs; the test fails on any lost
# acked write, any ghost write, or any down-window without commit
# progress.
#
# Part 2 boots three real rangestored processes as a -peers cluster,
# writes through the leader, SIGKILLs it, and requires a follower to
# win the election (role=leader, epoch advanced, elections_total >= 1
# on /healthz) and to accept writes.
#
#   bash scripts/smoke_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== in-process chaos under -race =="
go test -race -count=1 -timeout 300s \
    -run 'TestRunChaosQuorumFailover' ./internal/rangestore/wload/

echo "== process-level election smoke =="
P0=${P0:-7431}; P1=${P1:-7432}; P2=${P2:-7433}
H0=${H0:-9431}; H1=${H1:-9432}; H2=${H2:-9433}
PEERS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"
dir=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/rangestored" ./cmd/rangestored
go build -o "$dir/rangeload" ./cmd/rangeload

# -wal-pipeline 8 is the default, spelled out so the smoke provably
# exercises failover + fencing on top of overlapped fsyncs.
common=(-shards 4 -placement map -fsync batch -peers "$PEERS"
        -election-timeout 1s -repl-heartbeat 200ms -repl-ack-timeout 5s
        -wal-pipeline 8)
"$dir/rangestored" -addr "127.0.0.1:$P0" -node-id "127.0.0.1:$P0" \
    -wal "$dir/wal0" -http "127.0.0.1:$H0" "${common[@]}" &
leader_pid=$!
pids+=("$leader_pid")
for i in 1 2; do
    port=$((P0 + i)); http=$((H0 + i))
    "$dir/rangestored" -addr "127.0.0.1:$port" -node-id "127.0.0.1:$port" \
        -wal "$dir/wal$i" -http "127.0.0.1:$http" \
        -follow "127.0.0.1:$P0" "${common[@]}" &
    pids+=("$!")
done

wait_health() { # port
    for _ in $(seq 100); do
        if curl -fs "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: node on http port $1 never became healthy" >&2
    return 1
}
wait_health "$H0"; wait_health "$H1"; wait_health "$H2"

# Let the followers attach, then put acked writes on the cluster.
sleep 1
"$dir/rangeload" -addr "127.0.0.1:$P0" -mix write-heavy -workers 2 \
    -pipeline 4 -duration 2s -shards 4 -placement map

echo "killing the leader (pid $leader_pid)"
kill -9 "$leader_pid"

new_leader_http=""
new_leader_port=""
for _ in $(seq 100); do
    for pair in "$H1:$P1" "$H2:$P2"; do
        h=${pair%%:*}; p=${pair##*:}
        health=$(curl -fs "http://127.0.0.1:$h/healthz" 2>/dev/null || true)
        if echo "$health" | grep -q '"role": "leader"'; then
            new_leader_http=$h; new_leader_port=$p
            break 2
        fi
    done
    sleep 0.2
done
if [ -z "$new_leader_http" ]; then
    echo "FAIL: no follower won the election within 20s" >&2
    exit 1
fi
echo "new leader on port $new_leader_port"

health=$(curl -fs "http://127.0.0.1:$new_leader_http/healthz")
echo "$health"
epoch=$(echo "$health" | sed -n 's/.*"repl_epoch": \([0-9]*\).*/\1/p')
elections=$(echo "$health" | sed -n 's/.*"elections_total": \([0-9]*\).*/\1/p')
if [ -z "$epoch" ] || [ "$epoch" -lt 1 ]; then
    echo "FAIL: elected leader reports epoch ${epoch:-absent}, want >= 1" >&2
    exit 1
fi
if [ -z "$elections" ] || [ "$elections" -lt 1 ]; then
    echo "FAIL: elected leader reports elections_total ${elections:-absent}, want >= 1" >&2
    exit 1
fi

# The new leader must take writes (the surviving follower supplies the
# majority ack).
"$dir/rangeload" -addr "127.0.0.1:$new_leader_port" -mix write-heavy -workers 2 \
    -pipeline 4 -duration 2s -shards 4 -placement map

echo "chaos smoke OK"
