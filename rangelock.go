// Package rangelock implements scalable range locks: synchronization
// objects that grant concurrent threads access to disjoint parts of a
// shared resource (a file, an address space, a key space), serializing
// only the operations whose ranges actually overlap.
//
// It is a from-scratch Go implementation of
//
//	Kogan, Dice, Issa. "Scalable Range Locks for Scalable Address Spaces
//	and Beyond." EuroSys 2020.
//
// Acquired ranges live in a linked list sorted by range start. Acquiring a
// range inserts a node with a single compare-and-swap; releasing marks the
// node logically deleted with a single fetch-and-add (wait-free), and
// later traversals unlink it. There is no lock around the structure — the
// key advantage over the range locks in the Linux kernel, whose range tree
// is guarded by a spin lock that serializes even non-overlapping
// acquisitions.
//
// Two lock types are provided:
//
//   - Exclusive: only disjoint ranges may be held simultaneously.
//   - RW: ranges are acquired in shared or exclusive mode; overlapping
//     shared holders proceed in parallel, exclusive holders conflict with
//     every overlapping range.
//
// Ranges are half-open intervals [start, end) over uint64. Both types
// offer a full-range acquisition (the whole resource), non-blocking Try
// variants, an empty-list fast path (on by default), and an optional
// anti-starvation mechanism (off by default, matching the paper).
//
// The internal packages reproduce the paper's complete evaluation: the
// kernel's tree-based range locks, the pNOVA segment lock, a simulated
// virtual-memory subsystem with speculative mprotect, Metis-style
// map-reduce workloads, and range-lock-based skip lists. See DESIGN.md
// and EXPERIMENTS.md.
package rangelock

import (
	"repro/internal/core"
)

// MaxEnd is the exclusive upper bound of the full range.
const MaxEnd = core.MaxEnd

// Guard represents one held range. Release it with Unlock (exactly once).
// The zero Guard is invalid.
type Guard = core.Guard

// Domain owns the node arena and reclamation state shared by a family of
// locks. Locks created with a nil domain share the process-wide default.
// Create dedicated domains to isolate benchmark runs or bound slot
// contention.
type Domain = core.Domain

// NewDomain creates an isolated domain serving at most slots concurrent
// lock operations (a slot is held for the duration of one acquisition or
// one explicitly leased Op, not while a range is held).
func NewDomain(slots int) *Domain { return core.NewDomain(slots) }

// Op is a leased per-operation context: one reclamation slot plus the node
// pool attached to it (the paper's per-thread state made explicit). The
// plain Lock/Unlock methods lease one internally per call; callers that
// acquire several ranges per logical operation, or loop over many
// acquisitions, can lease one Op from the domain with BeginOp and thread
// it through the *Op method variants to pay the lease once. Return it
// with End. An Op serves one goroutine at a time, and a domain sustains
// at most as many concurrently held Ops as it has slots.
type Op = core.Op

// Option configures a lock at construction.
type Option = core.Option

// WithFastPath enables or disables the empty-list fast path (§4.5 of the
// paper). Enabled by default.
func WithFastPath(enabled bool) Option { return core.WithFastPath(enabled) }

// WithFairness enables the anti-starvation mechanism (§4.3): a thread
// whose acquisition keeps getting disrupted declares impatience, briefly
// funneling new acquisitions through an auxiliary fair reader-writer lock.
// budget is the number of disruptions tolerated first (<= 0 selects the
// default of 64). Disabled by default.
func WithFairness(enabled bool, budget int) Option { return core.WithFairness(enabled, budget) }

// WithWriterPreference makes conflicting writers stay in the lock's list
// (waiting readers out) while readers back off and retry — the reverse of
// the default reader preference (§4.2). Useful when writer restarts are
// the dominant cost. Exclusive locks ignore the option.
func WithWriterPreference(enabled bool) Option { return core.WithWriterPreference(enabled) }

// Exclusive is a mutual-exclusion range lock: concurrent holders always
// have pairwise-disjoint ranges.
type Exclusive struct {
	lk *core.Exclusive
}

// NewExclusive creates an exclusive range lock. dom may be nil (default
// domain).
func NewExclusive(dom *Domain, opts ...Option) *Exclusive {
	return &Exclusive{lk: core.NewExclusive(dom, opts...)}
}

// Lock acquires [start, end), blocking while any overlapping range is
// held. Requires start < end.
func (l *Exclusive) Lock(start, end uint64) Guard { return l.lk.Lock(start, end) }

// LockFull acquires the entire range.
func (l *Exclusive) LockFull() Guard { return l.lk.LockFull() }

// TryLock acquires [start, end) only if no conflicting range is held,
// reporting success.
func (l *Exclusive) TryLock(start, end uint64) (Guard, bool) { return l.lk.TryLock(start, end) }

// BeginOp leases an operation context from the lock's domain.
func (l *Exclusive) BeginOp() Op { return l.lk.Domain().BeginOp() }

// LockOp is Lock threading a leased operation context.
func (l *Exclusive) LockOp(op Op, start, end uint64) Guard { return l.lk.LockOp(op, start, end) }

// LockFullOp is LockFull threading a leased operation context.
func (l *Exclusive) LockFullOp(op Op) Guard { return l.lk.LockFullOp(op) }

// TryLockOp is TryLock threading a leased operation context.
func (l *Exclusive) TryLockOp(op Op, start, end uint64) (Guard, bool) {
	return l.lk.TryLockOp(op, start, end)
}

// RW is a reader-writer range lock: overlapping shared (reader) ranges
// proceed in parallel; an exclusive (writer) range conflicts with every
// overlapping holder.
type RW struct {
	lk *core.RW
}

// NewRW creates a reader-writer range lock. dom may be nil (default
// domain).
func NewRW(dom *Domain, opts ...Option) *RW {
	return &RW{lk: core.NewRW(dom, opts...)}
}

// Lock acquires [start, end) in exclusive mode.
func (l *RW) Lock(start, end uint64) Guard { return l.lk.Lock(start, end) }

// RLock acquires [start, end) in shared mode.
func (l *RW) RLock(start, end uint64) Guard { return l.lk.RLock(start, end) }

// LockFull acquires the entire range in exclusive mode.
func (l *RW) LockFull() Guard { return l.lk.LockFull() }

// RLockFull acquires the entire range in shared mode.
func (l *RW) RLockFull() Guard { return l.lk.RLockFull() }

// TryLock attempts a non-blocking exclusive acquisition.
func (l *RW) TryLock(start, end uint64) (Guard, bool) { return l.lk.TryLock(start, end) }

// TryRLock attempts a non-blocking shared acquisition.
func (l *RW) TryRLock(start, end uint64) (Guard, bool) { return l.lk.TryRLock(start, end) }

// BeginOp leases an operation context from the lock's domain.
func (l *RW) BeginOp() Op { return l.lk.Domain().BeginOp() }

// LockOp is Lock threading a leased operation context.
func (l *RW) LockOp(op Op, start, end uint64) Guard { return l.lk.LockOp(op, start, end) }

// RLockOp is RLock threading a leased operation context.
func (l *RW) RLockOp(op Op, start, end uint64) Guard { return l.lk.RLockOp(op, start, end) }

// LockFullOp is LockFull threading a leased operation context.
func (l *RW) LockFullOp(op Op) Guard { return l.lk.LockFullOp(op) }

// RLockFullOp is RLockFull threading a leased operation context.
func (l *RW) RLockFullOp(op Op) Guard { return l.lk.RLockFullOp(op) }

// TryLockOp is TryLock threading a leased operation context.
func (l *RW) TryLockOp(op Op, start, end uint64) (Guard, bool) {
	return l.lk.TryLockOp(op, start, end)
}

// TryRLockOp is TryRLock threading a leased operation context.
func (l *RW) TryRLockOp(op Op, start, end uint64) (Guard, bool) {
	return l.lk.TryRLockOp(op, start, end)
}
