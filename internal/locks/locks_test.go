package locks

import (
	"sync"
	"sync/atomic"
	"testing"
)

// exclusionBody hammers a critical section protected by lock/unlock and
// verifies mutual exclusion with a non-atomic shared counter.
func exclusionBody(t *testing.T, lock, unlock func()) {
	t.Helper()
	const (
		goroutines = 8
		iters      = 2000
	)
	var (
		counter int // intentionally non-atomic: the lock must protect it
		inside  atomic.Int32
		wg      sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock()
				if n := inside.Add(1); n != 1 {
					t.Errorf("mutual exclusion violated: %d goroutines inside", n)
				}
				counter++
				inside.Add(-1)
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, goroutines*iters)
	}
}

func TestSpinLockExclusion(t *testing.T) {
	var l SpinLock
	exclusionBody(t, l.Lock, l.Unlock)
}

func TestTicketLockExclusion(t *testing.T) {
	var l TicketLock
	exclusionBody(t, l.Lock, l.Unlock)
}

func TestFairRWExclusion(t *testing.T) {
	var l FairRW
	exclusionBody(t, l.Lock, l.Unlock)
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestFairRWReadersShareWritersExclude(t *testing.T) {
	var (
		l       FairRW
		readers atomic.Int32
		writers atomic.Int32
		wg      sync.WaitGroup
	)
	const n = 6
	for g := 0; g < n; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				readers.Add(-1)
				l.RUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Lock()
				if w := writers.Add(1); w != 1 {
					t.Errorf("two writers inside: %d", w)
				}
				if readers.Load() != 0 {
					t.Error("writer overlapped a reader")
				}
				writers.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestFairRWConcurrentReaders checks that readers can actually overlap
// (i.e. the lock is not accidentally exclusive for readers).
func TestFairRWConcurrentReaders(t *testing.T) {
	var l FairRW
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock() // must not block while another reader holds the lock
		l.RUnlock()
		close(done)
	}()
	<-done
	l.RUnlock()
}

// TestTicketLockFIFO verifies arrival-order service with two waiters.
func TestTicketLockFIFO(t *testing.T) {
	var l TicketLock
	l.Lock()

	order := make(chan int, 2)
	started := make(chan struct{}, 2)

	go func() {
		started <- struct{}{}
		l.Lock()
		order <- 1
		l.Unlock()
	}()
	<-started
	// Give waiter 1 a moment to take its ticket before waiter 2 starts.
	for l.next.Load() != 2 {
	}
	go func() {
		started <- struct{}{}
		l.Lock()
		order <- 2
		l.Unlock()
	}()
	<-started
	for l.next.Load() != 3 {
	}

	l.Unlock()
	if first := <-order; first != 1 {
		t.Fatalf("ticket lock served waiter %d first, want 1", first)
	}
	if second := <-order; second != 2 {
		t.Fatalf("ticket lock served waiter %d second, want 2", second)
	}
}

func TestBackoffResets(t *testing.T) {
	var b Backoff
	for i := 0; i < spinBeforeYield+8; i++ {
		b.Pause()
	}
	if b.spins != spinBeforeYield {
		t.Fatalf("spins = %d, want saturation at %d", b.spins, spinBeforeYield)
	}
	b.Reset()
	if b.spins != 0 {
		t.Fatalf("Reset did not clear spin count")
	}
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkFairRWReadUncontended(b *testing.B) {
	var l FairRW
	for i := 0; i < b.N; i++ {
		l.RLock()
		l.RUnlock()
	}
}
