package locks

import "sync/atomic"

// FairRW is a ticket-based fair (phase-fair-ish, writer-batching) reader-
// writer spin lock. It is the "auxiliary (fair) reader-writer lock" of the
// fairness mechanism in §4.3: an impatient thread acquires it for write,
// draining and blocking regular acquisitions, which hold it for read.
//
// The implementation is the classic ticket reader-writer lock (Mellor-
// Crummey & Scott): a 64-bit word packs reader/writer ticket counters so
// that requests are served strictly in arrival order.
//
// Layout of the ticket word (each field 16 bits):
//
//	[ write ticket | read ticket | write serving | read serving ]
//
// A reader waits until all writers that arrived before it have completed;
// a writer waits until all readers and writers before it have completed.
type FairRW struct {
	// request: upper 32 bits = next write ticket, lower 32 = next read ticket.
	request atomic.Uint64
	// complete: upper 32 bits = completed writers, lower 32 = completed readers.
	complete atomic.Uint64
}

const (
	rwReaderUnit = uint64(1)
	rwWriterUnit = uint64(1) << 32
	rwLowMask    = (uint64(1) << 32) - 1
)

// RLock acquires the lock in shared mode.
func (l *FairRW) RLock() {
	ticket := l.request.Add(rwReaderUnit) - rwReaderUnit
	wantWriters := ticket >> 32 // writers that arrived before us
	var b Backoff
	for l.complete.Load()>>32 != wantWriters {
		b.Pause()
	}
}

// RUnlock releases a shared acquisition.
func (l *FairRW) RUnlock() {
	l.complete.Add(rwReaderUnit)
}

// Lock acquires the lock in exclusive mode.
func (l *FairRW) Lock() {
	ticket := l.request.Add(rwWriterUnit) - rwWriterUnit
	wantWriters := ticket >> 32
	wantReaders := ticket & rwLowMask
	var b Backoff
	for {
		c := l.complete.Load()
		if c>>32 == wantWriters && c&rwLowMask == wantReaders {
			return
		}
		b.Pause()
	}
}

// Unlock releases an exclusive acquisition.
func (l *FairRW) Unlock() {
	l.complete.Add(rwWriterUnit)
}
