// Package locks provides the low-level spin locks and the fair
// reader-writer lock used as substrates by the range-lock implementations:
// a test-and-test-and-set spin lock (the lock the kernel range tree is
// ported with in the paper's user-space study), a ticket spin lock, and a
// ticket-based fair reader-writer lock (the auxiliary lock of the fairness
// mechanism in §4.3).
//
// The package also centralizes the polite busy-wait policy ("Pause()" in
// the paper's pseudo-code): a bounded spin followed by runtime.Gosched, so
// spinning goroutines do not starve the goroutines they are waiting for.
package locks

import "runtime"

// spinBeforeYield is the number of busy iterations performed before the
// waiter yields the processor. On a real CPU each iteration would be an
// x86 PAUSE; in Go the loop body is empty and the cost is dominated by the
// atomic re-check done by the caller.
const spinBeforeYield = 64

// Backoff implements the paper's Pause() with progressively politer
// waiting. The zero value is ready to use; one Backoff instance tracks one
// wait episode and must not be shared between goroutines.
type Backoff struct {
	spins int
}

// Pause performs one unit of polite waiting. The first spinBeforeYield
// calls busy-spin (with procyield-like granularity); subsequent calls yield
// to the scheduler so that the lock holder — possibly a goroutine on this
// very P — can run and release the awaited resource.
func (b *Backoff) Pause() {
	if b.spins < spinBeforeYield {
		b.spins++
		for i := 0; i < 4; i++ {
			// Empty loop: stand-in for the PAUSE instruction.
		}
		return
	}
	runtime.Gosched()
}

// Reset re-arms the backoff for a new wait episode.
func (b *Backoff) Reset() { b.spins = 0 }
