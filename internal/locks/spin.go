package locks

import "sync/atomic"

// SpinLock is a test-and-test-and-set (TTAS) spin lock with polite backoff.
// It is the user-space stand-in for the kernel spin lock protecting the
// range tree in the tree-based range locks (§3, §7.1: "we used a simple
// test-test-and-set lock to implement a spin lock protecting the range
// tree"). The zero value is an unlocked lock.
type SpinLock struct {
	state atomic.Uint32
}

// Lock acquires the spin lock, busy-waiting until it is available.
func (l *SpinLock) Lock() {
	var b Backoff
	for {
		// Test-and-test-and-set: spin on a plain load first so waiters
		// do not generate coherence traffic with failed CASes.
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		b.Pause()
	}
}

// TryLock attempts to acquire the lock without waiting and reports whether
// it succeeded.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the spin lock. It must be called by the goroutine that
// holds the lock.
func (l *SpinLock) Unlock() {
	l.state.Store(0)
}

// TicketLock is a FIFO spin lock: acquisitions are served in arrival
// order. It is used where fairness of the underlying mutual exclusion
// matters (e.g. as an alternative range-tree protector in ablation
// benchmarks; the kernel's qspinlock is likewise FIFO).
type TicketLock struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and waits until it is served.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	var b Backoff
	for l.serving.Load() != t {
		b.Pause()
	}
}

// Unlock serves the next ticket.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}
