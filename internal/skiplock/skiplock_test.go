package skiplock

import (
	"sync"
	"testing"
	"time"
)

func TestBasic(t *testing.T) {
	l := New()
	g := l.Lock(0, 10)
	g2 := l.Lock(10, 20)
	if l.Held() != 2 {
		t.Fatalf("Held = %d, want 2", l.Held())
	}
	g.Unlock()
	g2.Unlock()
	if l.Held() != 0 {
		t.Fatalf("Held = %d, want 0", l.Held())
	}
}

func TestOverlapBlocks(t *testing.T) {
	l := New()
	g := l.Lock(10, 20)
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.Lock(15, 25) }()
	select {
	case <-acquired:
		t.Fatal("overlapping writers ran in parallel")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

func TestReadersShare(t *testing.T) {
	l := New()
	g1 := l.RLock(0, 100)
	g2 := l.RLock(50, 150)
	g1.Unlock()
	g2.Unlock()
}

func TestManyLevelsStress(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := (g*1000 + uint64(i)*7) % 8000
				rel := l.Lock(s, s+5)
				rel.Unlock()
			}
		}(uint64(g))
	}
	wg.Wait()
	if l.Held() != 0 {
		t.Fatalf("Held = %d after drain", l.Held())
	}
}

func TestFullRange(t *testing.T) {
	l := New()
	g := l.LockFull()
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.Lock(1000, 1001) }()
	select {
	case <-acquired:
		t.Fatal("lock acquired while full range held")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

// TestEqualStartChurn regression-tests the unlink path when many nodes
// share one start: a release must unlink its node at every level even
// when taller equal-start neighbours sit between it and its predecessor
// (previously the level walk overshot and left the node linked at lower
// levels, leaking a permanent blocker).
func TestEqualStartChurn(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g := l.LockFull()
				g.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("full-range churn deadlocked")
	}
	if l.Held() != 0 {
		t.Fatalf("Held = %d after drain", l.Held())
	}
}

func TestPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty range did not panic")
		}
	}()
	New().Lock(3, 3)
}
