// Package skiplock implements the range lock of Song et al. (VEE'13,
// "Parallelizing Live Migration of Virtual Machines"): acquired ranges are
// kept in a skip list protected by a spin lock. The paper's related-work
// section notes this design is conceptually identical to the kernel's
// tree-based range lock — and shares its bottleneck, the spin lock guarding
// the structure — so it serves as an additional baseline.
//
// The protocol mirrors treelock's: count blocking overlaps at insert under
// the spin lock, then wait for the count to drain; on release, remove the
// node and decrement the overlapping waiters that counted it. The skip
// list only changes the complexity of the search, not the synchronization
// story.
package skiplock

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/locks"
)

const maxLevel = 16

// MaxEnd is the exclusive upper bound used for full-range acquisitions.
const MaxEnd = ^uint64(0)

type node struct {
	start, end uint64
	writer     bool
	blocked    atomic.Int64
	next       [maxLevel]*node
	level      int
}

// Lock is a skip-list-based range lock with reader-writer semantics.
type Lock struct {
	spin  locks.SpinLock
	head  *node
	level int
	rng   rand.Source64 // guarded by spin
	count int
}

// Guard is a held range.
type Guard struct {
	l *Lock
	n *node
}

// New creates an empty skip-list range lock.
func New() *Lock {
	return &Lock{
		head: &node{},
		rng:  rand.NewSource(0x5ee1).(rand.Source64),
	}
}

func (l *Lock) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

func (l *Lock) acquire(start, end uint64, writer bool) Guard {
	if start >= end {
		panic("skiplock: range lock requires start < end")
	}
	n := &node{start: start, end: end, writer: writer}

	l.spin.Lock()
	// Find predecessors by start and count blocking overlaps. Overlapping
	// ranges have start < end(query); since the list is sorted by start we
	// scan nodes with start < end and test their ends. (No augmentation:
	// Song et al.'s design pays a linear scan over candidates, which is
	// fine — the spin lock is the bottleneck, as §2 observes.)
	var update [maxLevel]*node
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].start < start {
			x = x.next[i]
		}
		update[i] = x
	}
	blocking := int64(0)
	for scan := l.head.next[0]; scan != nil && scan.start < end; scan = scan.next[0] {
		if scan.end > start && (scan.writer || writer) {
			blocking++
		}
	}
	n.level = l.randomLevel()
	if n.level > l.level {
		for i := l.level; i < n.level; i++ {
			update[i] = l.head
		}
		l.level = n.level
	}
	n.blocked.Store(blocking)
	for i := 0; i < n.level; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.count++
	l.spin.Unlock()

	var b locks.Backoff
	for n.blocked.Load() != 0 {
		b.Pause()
	}
	return Guard{l: l, n: n}
}

// Lock acquires [start, end) in exclusive mode.
func (l *Lock) Lock(start, end uint64) Guard { return l.acquire(start, end, true) }

// RLock acquires [start, end) in shared mode.
func (l *Lock) RLock(start, end uint64) Guard { return l.acquire(start, end, false) }

// LockFull acquires the entire range exclusively.
func (l *Lock) LockFull() Guard { return l.acquire(0, MaxEnd, true) }

// Unlock releases the range.
func (g Guard) Unlock() {
	l := g.l
	me := g.n
	l.spin.Lock()
	// Unlink me from every level. x tracks the last node with a strictly
	// smaller start; the equal-start cluster is scanned with a lookahead
	// cursor so that x never overshoots me's position (me may be absent
	// from higher levels while other equal-start nodes are present).
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].start < me.start {
			x = x.next[i]
		}
		y := x
		for y.next[i] != nil && y.next[i] != me && y.next[i].start == me.start {
			y = y.next[i]
		}
		if y.next[i] == me {
			y.next[i] = me.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.count--
	// Decrement every overlapping waiter that counted me.
	for scan := l.head.next[0]; scan != nil && scan.start < me.end; scan = scan.next[0] {
		if scan.end > me.start && (me.writer || scan.writer) {
			scan.blocked.Add(-1)
		}
	}
	l.spin.Unlock()
}

// Held reports the number of ranges currently in the list.
func (l *Lock) Held() int {
	l.spin.Lock()
	n := l.count
	l.spin.Unlock()
	return n
}
