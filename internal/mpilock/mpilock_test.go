package mpilock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBasic(t *testing.T) {
	l := New(4)
	g := l.Lock(0, 10)
	g2 := l.Lock(10, 20)
	if l.Held() != 2 {
		t.Fatalf("Held = %d, want 2", l.Held())
	}
	g.Unlock()
	g2.Unlock()
	if l.Held() != 0 {
		t.Fatalf("Held = %d, want 0", l.Held())
	}
}

func TestOverlapBlocks(t *testing.T) {
	l := New(4)
	g := l.Lock(10, 20)
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.Lock(15, 25) }()
	select {
	case <-acquired:
		t.Fatal("overlapping writers coexisted")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

func TestReadersShare(t *testing.T) {
	l := New(4)
	g1 := l.RLock(0, 100)
	g2 := l.RLock(50, 150)
	g1.Unlock()
	g2.Unlock()
}

func TestSlotExhaustionWaits(t *testing.T) {
	l := New(1)
	g := l.Lock(0, 10)
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.Lock(100, 110) }() // disjoint, but no slot free
	select {
	case <-acquired:
		t.Fatal("second holder acquired without a free slot")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

// TestExclusionStress: the stamped-cell safety check under symmetric
// contention, which also exercises the randomized-backoff livelock
// escape.
func TestExclusionStress(t *testing.T) {
	const units = 32
	l := New(16)
	var cells [units]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(me int32) {
			defer wg.Done()
			for i := 0; i < 1200; i++ {
				s := uint64((int(me)*7 + i) % units)
				e := s + 1 + uint64(i%(units-int(s)))
				guard := l.Lock(s, e)
				for u := s; u < e; u++ {
					if old := cells[u].Swap(me + 1); old != 0 {
						t.Errorf("units %d owned by %d and %d", u, old-1, me)
					}
				}
				for u := s; u < e; u++ {
					cells[u].Store(0)
				}
				guard.Unlock()
			}
		}(int32(g))
	}
	wg.Wait()
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty range did not panic")
		}
	}()
	New(2).Lock(5, 5)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
