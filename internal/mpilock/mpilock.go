// Package mpilock implements the byte-range lock of Thakur, Ross and
// Latham ("Implementing Byte-Range Locks Using MPI One-Sided
// Communication", EuroPVM/MPI 2005), discussed in the paper's related
// work (§2): a flat table with one slot per process. To acquire a range,
// a process (1) publishes its desired range in its own slot, then
// (2) reads a snapshot of every other slot; if no published range
// conflicts, the lock is held. On conflict the process clears its slot,
// backs off and retries.
//
// Safety follows from publish-before-scan with sequentially consistent
// atomics: if two conflicting acquisitions both reach their scan, each
// sees the other's published range and at least one retreats. Liveness is
// only probabilistic (the original needed MPI-level retry too) —
// randomized backoff breaks the symmetric-retreat livelock; the paper's
// §2 notes exactly this weakness, which Aarestad et al.'s tree (and
// ultimately the kernel lock) were designed to fix.
package mpilock

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/locks"
)

// entry is one published range. Entries are immutable once published;
// slots swing atomically between nil and *entry.
type entry struct {
	start, end uint64
	writer     bool
}

// Lock is a slot-table range lock for up to a fixed number of concurrent
// holders ("processes").
type Lock struct {
	slots []atomic.Pointer[entry]
	// free is a Treiber stack of slot indices: (version<<32 | idx+1).
	free     atomic.Uint64
	nextFree []atomic.Uint32
}

// New creates a lock with capacity for procs concurrent acquisitions.
func New(procs int) *Lock {
	if procs < 1 {
		panic("mpilock: need at least one slot")
	}
	l := &Lock{
		slots:    make([]atomic.Pointer[entry], procs),
		nextFree: make([]atomic.Uint32, procs),
	}
	for i := procs - 1; i >= 0; i-- {
		l.pushFree(uint32(i))
	}
	return l
}

func (l *Lock) pushFree(idx uint32) {
	for {
		head := l.free.Load()
		l.nextFree[idx].Store(uint32(head & 0xffffffff))
		if l.free.CompareAndSwap(head, (head>>32+1)<<32|uint64(idx+1)) {
			return
		}
	}
}

func (l *Lock) popFree() (uint32, bool) {
	for {
		head := l.free.Load()
		idxPlus1 := uint32(head & 0xffffffff)
		if idxPlus1 == 0 {
			return 0, false
		}
		next := l.nextFree[idxPlus1-1].Load()
		if l.free.CompareAndSwap(head, (head>>32+1)<<32|uint64(next)) {
			return idxPlus1 - 1, true
		}
	}
}

// Guard is a held range.
type Guard struct {
	l   *Lock
	idx uint32
}

func (l *Lock) acquire(start, end uint64, writer bool) Guard {
	if start >= end {
		panic("mpilock: range lock requires start < end")
	}
	// Lease a slot ("process rank").
	var b locks.Backoff
	var idx uint32
	for {
		var ok bool
		if idx, ok = l.popFree(); ok {
			break
		}
		b.Pause()
	}

	e := &entry{start: start, end: end, writer: writer}
	rng := rand.New(rand.NewSource(int64(idx)*2654435761 + 12345))
	attempt := 0
	for {
		// Step 1: publish the desired range.
		l.slots[idx].Store(e)
		// Step 2: snapshot every other slot.
		conflict := false
		for i := range l.slots {
			if i == int(idx) {
				continue
			}
			o := l.slots[i].Load()
			if o != nil && o.start < end && start < o.end && (o.writer || writer) {
				conflict = true
				break
			}
		}
		if !conflict {
			return Guard{l: l, idx: idx}
		}
		// Retreat, back off randomly (symmetric retreats would livelock).
		l.slots[idx].Store(nil)
		attempt++
		spins := rng.Intn(1 << min(attempt+4, 12))
		var bo locks.Backoff
		for s := 0; s < spins; s++ {
			bo.Pause()
		}
	}
}

// Lock acquires [start, end) in exclusive mode.
func (l *Lock) Lock(start, end uint64) Guard { return l.acquire(start, end, true) }

// RLock acquires [start, end) in shared mode.
func (l *Lock) RLock(start, end uint64) Guard { return l.acquire(start, end, false) }

// LockFull acquires the entire range exclusively.
func (l *Lock) LockFull() Guard { return l.acquire(0, ^uint64(0), true) }

// RLockFull acquires the entire range in shared mode.
func (l *Lock) RLockFull() Guard { return l.acquire(0, ^uint64(0), false) }

// Unlock releases the range and returns the slot.
func (g Guard) Unlock() {
	g.l.slots[g.idx].Store(nil)
	g.l.pushFree(g.idx)
}

// Held counts currently published ranges (tests).
func (l *Lock) Held() int {
	n := 0
	for i := range l.slots {
		if l.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
