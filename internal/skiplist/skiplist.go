// Package skiplist provides the two concurrent skip-list sets compared in
// §6/§7.1 of the paper:
//
//   - Optimistic: the lazy optimistic skip list of Herlihy, Lev, Luchangco
//     and Shavit (SIROCCO'07), with one spin lock per node. Updates lock
//     every predecessor (up to one per level, plus the victim on removal);
//     searches are wait-free.
//   - RangeLocked: the paper's new design — the same lazy structure, but
//     update operations acquire a single *range* on a range lock instead
//     of per-node locks: inserts lock [topPred.key, key], removals lock
//     [topPred.key, key+1]. Because every predecessor of a key lies at or
//     above the top-level predecessor, any two operations that could touch
//     the same pointer have overlapping ranges and serialize; disjoint
//     ranges proceed in parallel. Nodes carry no lock, shrinking the
//     memory footprint.
//
// Keys must lie in [1, MaxKey]: 0 and values above MaxKey are reserved for
// the head and tail sentinels.
package skiplist

import (
	"sync/atomic"

	"repro/internal/locks"
)

// maxLevel bounds the skip list height (2^24 expected elements).
const maxLevel = 24

// MaxKey is the largest storable key (the tail sentinel sits above it and
// removal ranges extend one past the key).
const MaxKey = ^uint64(0) - 3

// Set is the common read/update surface of both skip lists.
type Set interface {
	// Insert adds key, reporting false if it was already present.
	Insert(key uint64) bool
	// Remove deletes key, reporting false if it was absent.
	Remove(key uint64) bool
	// Contains reports whether key is present. Wait-free.
	Contains(key uint64) bool
	// Len counts the elements (linear; for tests).
	Len() int
}

// node is a skip-list node. mu is the per-node spin lock of the optimistic
// variant; the range-locked variant never touches it (the §6 design point
// is precisely that it does not need per-node locks — in a dedicated
// implementation the field would be absent, saving a word per node).
type node struct {
	key         uint64
	next        []atomic.Pointer[node]
	mu          locks.SpinLock
	marked      atomic.Bool
	fullyLinked atomic.Bool
	topLevel    int // number of levels this node occupies (1-based)
}

func newNode(key uint64, topLevel int) *node {
	return &node{key: key, next: make([]atomic.Pointer[node], topLevel), topLevel: topLevel}
}

// list is the shared skeleton: sentinels plus the wait-free search.
type list struct {
	head *node
	tail *node
	seed atomic.Uint64
}

func (l *list) init(seedInit uint64) {
	head := newNode(0, maxLevel)
	tail := newNode(^uint64(0), maxLevel)
	tail.fullyLinked.Store(true)
	for lv := 0; lv < maxLevel; lv++ {
		head.next[lv].Store(tail)
	}
	head.fullyLinked.Store(true)
	l.head, l.tail = head, tail
	l.seed.Store(seedInit)
}

// randomLevel draws a geometric level in [1, maxLevel] (p = 1/2) from a
// contention-light splitmix64 step on a shared counter.
func (l *list) randomLevel() int {
	x := l.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1
	for x&1 == 1 && lvl < maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// find locates key's predecessors and successors at every level, returning
// the highest level at which the key was found (-1 if absent). Wait-free:
// no locks, no retries.
func (l *list) find(key uint64, preds, succs *[maxLevel]*node) int {
	found := -1
	pred := l.head
	for lv := maxLevel - 1; lv >= 0; lv-- {
		cur := pred.next[lv].Load()
		for cur.key < key {
			pred = cur
			cur = pred.next[lv].Load()
		}
		if found == -1 && cur.key == key {
			found = lv
		}
		preds[lv] = pred
		succs[lv] = cur
	}
	return found
}

// contains is the shared wait-free membership test (lazy-list semantics:
// present iff found, fully linked and not logically deleted).
func (l *list) contains(key uint64) bool {
	pred := l.head
	var cur *node
	for lv := maxLevel - 1; lv >= 0; lv-- {
		cur = pred.next[lv].Load()
		for cur.key < key {
			pred = cur
			cur = pred.next[lv].Load()
		}
		if cur.key == key {
			return cur.fullyLinked.Load() && !cur.marked.Load()
		}
	}
	return false
}

// length counts fully linked, unmarked nodes at the bottom level.
func (l *list) length() int {
	n := 0
	for cur := l.head.next[0].Load(); cur != l.tail; cur = cur.next[0].Load() {
		if cur.fullyLinked.Load() && !cur.marked.Load() {
			n++
		}
	}
	return n
}

func checkKey(key uint64) {
	if key == 0 || key > MaxKey {
		panic("skiplist: key out of [1, MaxKey]")
	}
}
