package skiplist

// Optimistic is the lazy optimistic skip list of Herlihy et al. [21] —
// the "orig" baseline of Figure 4. Updates lock each distinct predecessor
// (and the victim on removal), validate, apply, unlock; searches never
// lock. Logical deletion (marked) precedes physical unlinking, keeping
// Contains wait-free and linearizable.
type Optimistic struct {
	l list
}

// NewOptimistic returns an empty optimistic skip list.
func NewOptimistic() *Optimistic {
	s := &Optimistic{}
	s.l.init(0x5ca1ab1e)
	return s
}

// Contains reports membership; wait-free.
func (s *Optimistic) Contains(key uint64) bool {
	checkKey(key)
	return s.l.contains(key)
}

// Len counts the elements (linear, not linearizable; for tests/stats).
func (s *Optimistic) Len() int { return s.l.length() }

// unlockPreds releases the distinct predecessor locks [0, highest].
func unlockPreds(preds *[maxLevel]*node, highest int) {
	var prev *node
	for l := 0; l <= highest; l++ {
		if preds[l] != prev {
			preds[l].mu.Unlock()
			prev = preds[l]
		}
	}
}

// Insert adds key if absent.
func (s *Optimistic) Insert(key uint64) bool {
	checkKey(key)
	topLevel := s.l.randomLevel()
	var preds, succs [maxLevel]*node
	for {
		lFound := s.l.find(key, &preds, &succs)
		if lFound != -1 {
			f := succs[lFound]
			if !f.marked.Load() {
				// Key already present (possibly mid-insert: wait until the
				// inserter finishes so our "false" is linearizable).
				for !f.fullyLinked.Load() {
				}
				return false
			}
			// A marked node with our key is being removed: retry.
			continue
		}

		// Lock all distinct predecessors bottom-up and validate that each
		// still links to the observed successor and neither end is marked.
		valid := true
		highestLocked := -1
		var prevPred *node
		for l := 0; l < topLevel; l++ {
			pred, succ := preds[l], succs[l]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = l
				prevPred = pred
			}
			if pred.marked.Load() || succ.marked.Load() || pred.next[l].Load() != succ {
				valid = false
				break
			}
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		n := newNode(key, topLevel)
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(succs[l])
		}
		for l := 0; l < topLevel; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// Remove deletes key if present.
func (s *Optimistic) Remove(key uint64) bool {
	checkKey(key)
	var preds, succs [maxLevel]*node
	var victim *node
	isMarked := false
	topLevel := -1
	for {
		lFound := s.l.find(key, &preds, &succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			// First round: decide whether this node is removable.
			if lFound == -1 ||
				!victim.fullyLinked.Load() ||
				victim.marked.Load() ||
				victim.topLevel-1 != lFound {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false // someone else removed it first
			}
			victim.marked.Store(true)
			isMarked = true
		}

		// Lock predecessors and validate; then physically unlink.
		valid := true
		highestLocked := -1
		var prevPred *node
		for l := 0; l < topLevel; l++ {
			pred := preds[l]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = l
				prevPred = pred
			}
			if pred.marked.Load() || pred.next[l].Load() != victim {
				valid = false
				break
			}
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue // re-find and retry unlinking
		}

		for l := topLevel - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		return true
	}
}
