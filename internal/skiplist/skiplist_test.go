package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lockapi"
)

// variants returns fresh instances of every skip list under test.
func variants() map[string]func() Set {
	return map[string]func() Set{
		"orig":         func() Set { return NewOptimistic() },
		"range-list":   func() Set { return NewRangeLocked(lockapi.NewListEx(nil)) },
		"range-lustre": func() Set { return NewRangeLocked(lockapi.NewLustreEx()) },
		"range-song":   func() Set { return NewRangeLocked(lockapi.NewSongRW()) },
	}
}

func TestSequentialBasics(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Insert(5) || s.Insert(5) {
				t.Fatal("insert semantics broken")
			}
			if !s.Contains(5) {
				t.Fatal("inserted key missing")
			}
			if !s.Insert(3) || !s.Insert(9) {
				t.Fatal("disjoint inserts failed")
			}
			if s.Len() != 3 {
				t.Fatalf("Len = %d, want 3", s.Len())
			}
			if !s.Remove(5) || s.Remove(5) {
				t.Fatal("remove semantics broken")
			}
			if s.Contains(5) || !s.Contains(3) || !s.Contains(9) {
				t.Fatal("membership wrong after remove")
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
		})
	}
}

func TestAgainstMapModelQuick(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			model := map[uint64]bool{}
			f := func(op uint8, k uint16) bool {
				key := uint64(k%512) + 1
				switch op % 3 {
				case 0:
					return s.Insert(key) == !model[key] && func() bool { model[key] = true; return true }()
				case 1:
					was := model[key]
					delete(model, key)
					return s.Remove(key) == was
				default:
					return s.Contains(key) == model[key]
				}
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
				t.Fatal(err)
			}
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
			}
		})
	}
}

// TestConcurrentDisjointKeySpaces gives each goroutine a private residue
// class of keys; per-thread sequential semantics must survive concurrency.
func TestConcurrentDisjointKeySpaces(t *testing.T) {
	const goroutines = 8
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			expected := make([]map[uint64]bool, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) * 977))
					mine := map[uint64]bool{}
					for i := 0; i < 4000; i++ {
						key := uint64(rng.Intn(2000))*goroutines + uint64(g) + 1
						switch rng.Intn(3) {
						case 0:
							if s.Insert(key) == mine[key] {
								t.Errorf("%s: Insert(%d) inconsistent", name, key)
							}
							mine[key] = true
						case 1:
							if s.Remove(key) != mine[key] {
								t.Errorf("%s: Remove(%d) inconsistent", name, key)
							}
							delete(mine, key)
						default:
							if s.Contains(key) != mine[key] {
								t.Errorf("%s: Contains(%d) inconsistent", name, key)
							}
						}
					}
					expected[g] = mine
				}(g)
			}
			wg.Wait()
			total := 0
			for g, mine := range expected {
				total += len(mine)
				for key := range mine {
					if !s.Contains(key) {
						t.Fatalf("%s: key %d of goroutine %d lost", name, key, g)
					}
				}
			}
			if s.Len() != total {
				t.Fatalf("%s: Len = %d, want %d", name, s.Len(), total)
			}
		})
	}
}

// TestConcurrentSameKeyContention hammers a tiny key space so inserts and
// removes collide constantly; the invariant checked is that every
// operation's return value is consistent with a global history (verified
// via a per-key token count: successful inserts minus successful removes
// for one key must be 0 or 1 at the end, matching Contains).
func TestConcurrentSameKeyContention(t *testing.T) {
	const keys = 4
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var balance [keys + 1]struct{ ins, del int64 }
			var mu sync.Mutex
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					var ins, del [keys + 1]int64
					for i := 0; i < 3000; i++ {
						key := uint64(rng.Intn(keys)) + 1
						if rng.Intn(2) == 0 {
							if s.Insert(key) {
								ins[key]++
							}
						} else {
							if s.Remove(key) {
								del[key]++
							}
						}
					}
					mu.Lock()
					for k := 1; k <= keys; k++ {
						balance[k].ins += ins[k]
						balance[k].del += del[k]
					}
					mu.Unlock()
				}(int64(g) + 31)
			}
			wg.Wait()
			for k := uint64(1); k <= keys; k++ {
				diff := balance[k].ins - balance[k].del
				if diff != 0 && diff != 1 {
					t.Fatalf("%s: key %d has insert/remove balance %d", name, k, diff)
				}
				if (diff == 1) != s.Contains(k) {
					t.Fatalf("%s: key %d balance %d but Contains=%v", name, k, diff, s.Contains(k))
				}
			}
		})
	}
}

func TestKeyBoundsPanics(t *testing.T) {
	s := NewOptimistic()
	for _, bad := range []uint64{0, MaxKey + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d did not panic", bad)
				}
			}()
			s.Insert(bad)
		}()
	}
	if !s.Insert(MaxKey) || !s.Contains(MaxKey) || !s.Remove(MaxKey) {
		t.Fatal("MaxKey not usable")
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	var l list
	l.init(123)
	counts := make([]int, maxLevel+1)
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		lv := l.randomLevel()
		if lv < 1 || lv > maxLevel {
			t.Fatalf("level %d out of range", lv)
		}
		counts[lv]++
	}
	// Roughly half the draws are level 1, a quarter level 2, ...
	if counts[1] < draws/3 || counts[1] > 2*draws/3 {
		t.Fatalf("level-1 fraction off: %d of %d", counts[1], draws)
	}
	if counts[2] < draws/8 || counts[2] > draws/2 {
		t.Fatalf("level-2 fraction off: %d of %d", counts[2], draws)
	}
}
