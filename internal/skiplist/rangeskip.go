package skiplist

import (
	"repro/internal/lockapi"
)

// RangeLocked is the paper's §6 skip list: the lazy optimistic structure
// with the per-node locking protocol replaced by a single range-lock
// acquisition per update.
//
//   - Insert(key) locks [topPred.key, key] — the interval from the
//     highest-level predecessor (the leftmost node whose pointers the
//     insert may rewire) to the new key.
//   - Remove(key) locks [topPred.key, key+1] — one past the key so that
//     concurrent inserts that would rewire pointers *inside* the victim
//     node are excluded too.
//
// Every predecessor of key at any level has a key in [topPred.key, key],
// so two updates that could touch the same pointer always have overlapping
// ranges and serialize; updates in disjoint key intervals run in parallel.
// Searches remain wait-free. The variant "range-list" of Figure 4 plugs in
// the paper's list-based lock; "range-lustre" plugs in the kernel's
// tree-based lock.
type RangeLocked struct {
	l  list
	lk lockapi.Locker
	ol lockapi.OpLocker // non-nil when lk supports per-operation contexts
}

// NewRangeLocked returns an empty skip list synchronized by the given
// range lock (use lockapi.NewListEx for "range-list", lockapi.NewLustreEx
// for "range-lustre"). When the lock supports per-operation contexts, each
// update leases one context for all its lock acquisitions — an update that
// races and retries does not go back through the domain's slot pool.
func NewRangeLocked(lk lockapi.Locker) *RangeLocked {
	s := &RangeLocked{lk: lk}
	s.ol, _ = lk.(lockapi.OpLocker)
	s.l.init(0xdeadbeef)
	return s
}

// acquire locks [lo, hi) through the per-op context when the lock supports
// one. The returned release must be invoked exactly once.
func (s *RangeLocked) acquire(op lockapi.Op, lo, hi uint64) func() {
	if s.ol != nil {
		g := s.ol.AcquireOp(op, lo, hi, true)
		return func() { s.ol.ReleaseOp(op, g) }
	}
	return s.lk.Acquire(lo, hi, true)
}

// Contains reports membership; wait-free.
func (s *RangeLocked) Contains(key uint64) bool {
	checkKey(key)
	return s.l.contains(key)
}

// Len counts the elements (linear; for tests/stats).
func (s *RangeLocked) Len() int { return s.l.length() }

// Insert adds key if absent.
func (s *RangeLocked) Insert(key uint64) bool {
	checkKey(key)
	topLevel := s.l.randomLevel()
	var preds, succs [maxLevel]*node
	var op lockapi.Op
	if s.ol != nil {
		op = s.ol.BeginOp()
		defer s.ol.EndOp(op)
	}
	for {
		lFound := s.l.find(key, &preds, &succs)
		if lFound != -1 {
			f := succs[lFound]
			if !f.marked.Load() {
				for !f.fullyLinked.Load() {
				}
				return false
			}
			continue
		}

		// The range starts at the highest-level predecessor: the leftmost
		// node whose next pointers this insert may modify.
		lo := preds[topLevel-1].key
		rel := s.acquire(op, lo, key+1)

		// Re-find under the lock and validate that the locked range still
		// covers every predecessor; a concurrent structural change may
		// have moved the top predecessor below lo, in which case the lock
		// is insufficient and the attempt restarts.
		lFound = s.l.find(key, &preds, &succs)
		if lFound != -1 {
			rel()
			f := succs[lFound]
			if f.marked.Load() {
				continue // being removed; retry from scratch
			}
			for !f.fullyLinked.Load() {
			}
			return false
		}
		if preds[topLevel-1].key < lo {
			rel()
			continue
		}

		n := newNode(key, topLevel)
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(succs[l])
		}
		for l := 0; l < topLevel; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		rel()
		return true
	}
}

// Remove deletes key if present.
func (s *RangeLocked) Remove(key uint64) bool {
	checkKey(key)
	var preds, succs [maxLevel]*node
	var op lockapi.Op
	if s.ol != nil {
		op = s.ol.BeginOp()
		defer s.ol.EndOp(op)
	}
	for {
		lFound := s.l.find(key, &preds, &succs)
		if lFound == -1 {
			return false
		}
		victim := succs[lFound]
		if !victim.fullyLinked.Load() || victim.marked.Load() || victim.topLevel-1 != lFound {
			if victim.marked.Load() {
				return false
			}
			continue // settle, then retry
		}

		lo := preds[victim.topLevel-1].key
		rel := s.acquire(op, lo, key+2) // key+1 inclusive, per §6

		lFound = s.l.find(key, &preds, &succs)
		if lFound == -1 || succs[lFound] != victim || victim.marked.Load() {
			rel()
			if lFound == -1 || succs[lFound].marked.Load() {
				return false
			}
			continue
		}
		if preds[victim.topLevel-1].key < lo {
			rel()
			continue
		}

		victim.marked.Store(true) // logical deletion: searches stop seeing it
		for l := victim.topLevel - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		rel()
		return true
	}
}
