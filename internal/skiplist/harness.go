package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// WorkloadConfig parametrizes a Synchrobench-style set workload (§7.1,
// Figure 4): a prefilled set hammered with a find/insert/remove mix.
type WorkloadConfig struct {
	Threads int
	// KeyRange is the key universe [1, KeyRange]; the paper uses 8M.
	KeyRange uint64
	// Prefill is the number of random keys inserted before timing; the
	// paper uses KeyRange/2 (4M).
	Prefill uint64
	// UpdatePct is the percentage of update operations (20 in the paper),
	// split evenly between inserts and removes.
	UpdatePct int
	Duration  time.Duration
	Seed      int64
}

// WorkloadResult reports the totals of one run.
type WorkloadResult struct {
	Ops        uint64
	Finds      uint64
	Inserts    uint64 // attempted inserts
	Removes    uint64 // attempted removes
	Throughput float64
}

// RunWorkload prefills the set and drives the configured mix until the
// duration elapses.
func RunWorkload(s Set, cfg WorkloadConfig) WorkloadResult {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 1 << 23 // 8M, as in the paper
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}

	// Parallel prefill (outside the timed window).
	var wg sync.WaitGroup
	fillers := cfg.Threads
	if fillers > 8 {
		fillers = 8
	}
	per := cfg.Prefill / uint64(fillers)
	for f := 0; f < fillers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(f)*7907))
			var inserted uint64
			for inserted < per {
				if s.Insert(uint64(rng.Int63n(int64(cfg.KeyRange))) + 1) {
					inserted++
				}
			}
		}(f)
	}
	wg.Wait()

	var (
		stop    atomic.Bool
		ops     atomic.Uint64
		finds   atomic.Uint64
		inserts atomic.Uint64
		removes atomic.Uint64
	)
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 31 + int64(th)*15485863))
			var lOps, lFinds, lIns, lRem uint64
			for !stop.Load() {
				key := uint64(rng.Int63n(int64(cfg.KeyRange))) + 1
				r := rng.Intn(100)
				switch {
				case r >= cfg.UpdatePct:
					s.Contains(key)
					lFinds++
				case r%2 == 0:
					s.Insert(key)
					lIns++
				default:
					s.Remove(key)
					lRem++
				}
				lOps++
			}
			ops.Add(lOps)
			finds.Add(lFinds)
			inserts.Add(lIns)
			removes.Add(lRem)
		}(th)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	return WorkloadResult{
		Ops:        ops.Load(),
		Finds:      finds.Load(),
		Inserts:    inserts.Load(),
		Removes:    removes.Load(),
		Throughput: float64(ops.Load()) / elapsed.Seconds(),
	}
}
