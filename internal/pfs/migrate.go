package pfs

import (
	"errors"
	"fmt"

	"repro/internal/lockapi"
)

// ErrStaticPlacement is returned by Migrate when the store's placement
// cannot express a per-file route (only MapPlacement can).
var ErrStaticPlacement = errors.New("pfs: placement does not support migration (need map placement)")

// Migrate moves name — its blocks, size watermark and lock state — from
// its current shard to shard dst, while the file is being served. It
// requires a MapPlacement (the only policy that can route one name
// independently of the rest).
//
// The move runs under a two-shard ShardedOp and preserves the
// hold-at-most-one lease invariant: the source shard's leased context
// freezes the file under an exclusive full-range acquisition, the copy
// into the destination file touches only an unpublished object (no
// destination lease needed), and the destination shard is touched only
// through its namespace lock at publish time. While the source is
// frozen, both namespace entries are swapped and the map entry flips —
// so at every instant the name resolves to exactly one live file — and
// a forwarding pointer is left on the old file: operations already in
// flight against stale handles finish by re-acquiring on the moved file
// (see File's forwarding loop), so nothing is lost and nothing blocks
// forever.
//
// Concurrent migrations serialize on the store's migration lock.
func (s *Sharded) Migrate(name string, dst int) error {
	return s.MigrateWith(name, dst, nil)
}

// MigrateWith is Migrate with a journaling hook: emit (if non-nil) is
// called with the frozen source file after the copy completes and
// before the namespace flip publishes the move. The file's full range
// is held exclusively at that point, so emit observes (and may record —
// the WAL journals a MIGRATE record carrying the file's snapshot here)
// a stable, complete pre-flip state, and no same-file mutation can be
// journaled between emit and the flip. An emit error aborts the
// migration with the source untouched.
func (s *Sharded) MigrateWith(name string, dst int, emit func(f *File) error) error {
	mp, ok := s.placement.(*MapPlacement)
	if !ok {
		return ErrStaticPlacement
	}
	if dst < 0 || dst >= len(s.shards) {
		return fmt.Errorf("pfs: migrate %q to shard %d of %d", name, dst, len(s.shards))
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()

	src := s.ShardIndex(name)
	if src == dst {
		return nil
	}
	srcFS, dstFS := s.shards[src], s.shards[dst]
	f, err := srcFS.Open(name)
	if err != nil {
		return err
	}

	// Build the destination file up front: its range lock comes from the
	// destination shard's factory, so its lock state (slots, arena,
	// pools) lives in the destination domain from birth.
	nf, err := dstFS.newUnpublished(name)
	if err != nil {
		return err
	}

	// Freeze the source under an exclusive full-range acquisition,
	// leased through the ShardedOp like any other source-shard work.
	sop := s.BeginOp()
	defer sop.End()
	r := f.lockRange(sop.Op(src), 0, ^uint64(0), true)
	defer r.release()

	f.copyTo(nf)

	if emit != nil {
		if err := emit(f); err != nil {
			return fmt.Errorf("pfs: migrate %q: journal: %w", name, err)
		}
	}

	// Publish atomically with respect to namespace lookups: both
	// namespace locks are held across insert + route flip + delete, so
	// Open/Create/Remove on either shard see the name in exactly one
	// place. (Only Migrate ever holds two namespace locks, and
	// migrations serialize on migMu, so no lock-order cycle exists.)
	srcFS.ns.Lock()
	dstFS.ns.Lock()
	if dstFS.closed {
		dstFS.ns.Unlock()
		srcFS.ns.Unlock()
		return ErrClosed
	}
	dstFS.files[name] = nf
	mp.Set(name, dst) // bumps the placement version: cached routes re-resolve
	delete(srcFS.files, name)
	dstFS.ns.Unlock()
	srcFS.ns.Unlock()

	// Forward stale handles. Set before the full-range lock releases:
	// every operation blocked on (or arriving at) the old file observes
	// it once it acquires, and retries on the moved file.
	f.moved.Store(nf)
	// The orphan's data is now unreachable — every operation redirects
	// before touching blocks (data ops check moved under the lock,
	// Stat/Size/Blocks follow current()) — so drop it rather than keep
	// a full duplicate alive for as long as stale handles pin the
	// orphan; the rebalancer specifically picks hot, often large files.
	f.dropAllBlocks()
	return nil
}

// newUnpublished builds a file wired to this FS (lock factory, Op
// domain) without inserting it into the namespace — Migrate publishes
// it under the namespace lock once the copy is complete.
func (fs *FS) newUnpublished(name string) (*File, error) {
	fs.ns.RLock()
	defer fs.ns.RUnlock()
	if fs.closed {
		return nil, ErrClosed
	}
	lk := fs.mkLock()
	f := newFile(fs, name, lk)
	if fs.opSrc != nil && lockapi.SameOpDomain(fs.opSrc, lk) {
		f.opLk = lk.(lockapi.OpLocker)
		f.opDom = fs.opDom
	}
	return f, nil
}

// dropAllBlocks releases every resident block. Only valid on a
// migration orphan whose forwarding pointer is already published: no
// code path reads or writes an orphan's blocks after that.
func (f *File) dropAllBlocks() {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.blocks = make(map[uint64][]byte)
		s.mu.Unlock()
	}
}

// copyTo clones f's resident blocks and size watermark into nf. The
// caller must hold f's full range exclusively and own nf privately, so
// only the per-block spinlocks (shared with lock-free Stat readers) are
// needed.
func (f *File) copyTo(nf *File) {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx, b := range s.blocks {
			nb := make([]byte, BlockSize)
			copy(nb, b)
			nf.shards[i].blocks[idx] = nb
		}
		s.mu.Unlock()
	}
	nf.size.Store(f.size.Load())
}
