package pfs

import (
	"bytes"
	"io"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lockapi"
)

// TestReadAtSpansEOF pins the short-read contract the rangestore server
// relies on: a read whose range straddles the size watermark returns
// exactly the bytes below it plus io.EOF, at every block-boundary
// alignment of the EOF.
func TestReadAtSpansEOF(t *testing.T) {
	for _, size := range []uint64{1, 100, BlockSize - 1, BlockSize, BlockSize + 1, 3 * BlockSize} {
		fs := New(nil)
		f, _ := fs.Create("f")
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i%251 + 1)
		}
		f.WriteAt(data, 0)
		for _, off := range []uint64{0, size / 2, size - 1} {
			want := size - off
			buf := make([]byte, want+2*BlockSize)
			n, err := f.ReadAt(buf, off)
			if uint64(n) != want || err != io.EOF {
				t.Fatalf("size=%d off=%d: ReadAt = %d, %v; want %d, io.EOF", size, off, n, err, want)
			}
			if !bytes.Equal(buf[:n], data[off:]) {
				t.Fatalf("size=%d off=%d: short read returned wrong bytes", size, off)
			}
		}
		// Exactly at EOF and past it: zero bytes + io.EOF.
		for _, off := range []uint64{size, size + 1, size + BlockSize} {
			if n, err := f.ReadAt(make([]byte, 8), off); n != 0 || err != io.EOF {
				t.Fatalf("size=%d off=%d: ReadAt = %d, %v; want 0, io.EOF", size, off, n, err)
			}
		}
	}
}

// TestTruncateThenReadAt: after a shrink, reads against the old extent
// observe the new EOF, and reads straddling the new size return only the
// surviving prefix — including when the cut lands mid-block.
func TestTruncateThenReadAt(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("f")
	data := bytes.Repeat([]byte{0x5A}, 2*BlockSize)
	f.WriteAt(data, 0)

	cut := uint64(BlockSize + 100) // mid-block shrink
	f.Truncate(cut)
	buf := make([]byte, 2*BlockSize)
	n, err := f.ReadAt(buf, 0)
	if uint64(n) != cut || err != io.EOF {
		t.Fatalf("read after shrink = %d, %v; want %d, io.EOF", n, err, cut)
	}
	for i := 0; i < n; i++ {
		if buf[i] != 0x5A {
			t.Fatalf("surviving byte %d = %#x", i, buf[i])
		}
	}
	// Reads entirely beyond the new size hit EOF even though blocks
	// existed there before the truncate.
	if n, err := f.ReadAt(make([]byte, 16), cut+1); n != 0 || err != io.EOF {
		t.Fatalf("read past new EOF = %d, %v", n, err)
	}
	// Regrow across the cut: the reclaimed region reads as zeros, the
	// prefix is intact.
	f.Truncate(2 * BlockSize)
	if n, err := f.ReadAt(buf, 0); n != 2*BlockSize || err != nil {
		t.Fatalf("read after regrow = %d, %v", n, err)
	}
	for i := 0; i < 2*BlockSize; i++ {
		want := byte(0)
		if uint64(i) < cut {
			want = 0x5A
		}
		if buf[i] != want {
			t.Fatalf("byte %d after regrow = %#x, want %#x", i, buf[i], want)
		}
	}
}

// TestConcurrentAppendOrdering: appends racing from many goroutines
// reserve disjoint, gapless ranges, and each writer's own appends land at
// strictly increasing offsets (per-writer program order is preserved by
// the atomic watermark reservation).
func TestConcurrentAppendOrdering(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("log")
	const (
		writers = 8
		perW    = 150
		recSize = 48
	)
	offs := make([][]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := bytes.Repeat([]byte{byte(w + 1)}, recSize)
			for i := 0; i < perW; i++ {
				off, err := f.Append(rec)
				if err != nil {
					t.Error(err)
					return
				}
				offs[w] = append(offs[w], off)
			}
		}(w)
	}
	wg.Wait()

	var all []uint64
	for w := 0; w < writers; w++ {
		for i := 1; i < len(offs[w]); i++ {
			if offs[w][i] <= offs[w][i-1] {
				t.Fatalf("writer %d: append %d at %d not after append %d at %d",
					w, i, offs[w][i], i-1, offs[w][i-1])
			}
		}
		all = append(all, offs[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, off := range all {
		if off != uint64(i*recSize) {
			t.Fatalf("reservation %d at %d: gap or overlap (want %d)", i, off, i*recSize)
		}
	}
	// Every record is intact (no torn interleaving across the stream).
	rec := make([]byte, recSize)
	for w := 0; w < writers; w++ {
		for _, off := range offs[w] {
			if _, err := f.ReadAt(rec, off); err != nil {
				t.Fatal(err)
			}
			for i, b := range rec {
				if b != byte(w+1) {
					t.Fatalf("writer %d record at %d: byte %d = %d", w, off, i, b)
				}
			}
		}
	}
}

// TestStat covers the new metadata surface.
func TestStat(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("s")
	if fi := f.Stat(); fi.Name != "s" || fi.Size != 0 || fi.Blocks != 0 {
		t.Fatalf("empty Stat = %+v", fi)
	}
	f.WriteAt(make([]byte, BlockSize+1), 0)
	fi, err := fs.Stat("s")
	if err != nil || fi.Size != BlockSize+1 || fi.Blocks != 2 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	if _, err := fs.Stat("missing"); err != ErrNotExist {
		t.Fatalf("Stat missing = %v", err)
	}
}

// TestOpWithForeignDomains: a factory building each lock in its own
// private domain is legal; the FS must detect that its probe lock's Ops
// don't apply to such files and fall back to the per-call path rather
// than panicking in core.
func TestOpWithForeignDomains(t *testing.T) {
	fs := New(func() lockapi.Locker {
		return lockapi.NewListRW(core.NewDomain(16))
	})
	f, _ := fs.Create("f")
	op := fs.BeginOp()
	defer op.End()
	msg := []byte("foreign-domain fallback")
	if n, err := f.WriteAtOp(op, msg, 0); n != len(msg) || err != nil {
		t.Fatalf("WriteAtOp = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := f.ReadAtOp(op, got, 0); n != len(msg) || err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("ReadAtOp = %d, %v, %q", n, err, got)
	}
	f.TruncateOp(op, 4)
	if _, err := f.AppendOp(op, msg); err != nil {
		t.Fatal(err)
	}
}

// TestOpThreadedOps drives every *Op method through a single leased
// context, for a variant with an Op surface and one without (where the
// zero-Op fallback must kick in).
func TestOpThreadedOps(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    LockFactory
	}{
		{"list-rw", nil},
		{"kernel-rw", func() lockapi.Locker { return lockapi.NewKernelRW() }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			fs := New(mk.f)
			f, _ := fs.Create("f")
			op := fs.BeginOp()
			defer op.End()

			msg := []byte("threaded through one op")
			if n, err := f.WriteAtOp(op, msg, 10); n != len(msg) || err != nil {
				t.Fatalf("WriteAtOp = %d, %v", n, err)
			}
			got := make([]byte, len(msg))
			if n, err := f.ReadAtOp(op, got, 10); n != len(msg) || err != nil || !bytes.Equal(got, msg) {
				t.Fatalf("ReadAtOp = %d, %v, %q", n, err, got)
			}
			off, err := f.AppendOp(op, []byte("x"))
			if err != nil || off != 10+uint64(len(msg)) {
				t.Fatalf("AppendOp = %d, %v", off, err)
			}
			f.TruncateOp(op, 12)
			if f.Size() != 12 {
				t.Fatalf("size after TruncateOp = %d", f.Size())
			}
			// The zero Op is always a valid fallback.
			if n, err := f.ReadAtOp(Op{}, got[:2], 10); n != 2 || err != nil {
				t.Fatalf("zero-Op ReadAtOp = %d, %v", n, err)
			}
		})
	}
}
