package pfs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Placement decides which shard owns a file name. It is the pluggable
// policy behind Sharded: the store asks it on every namespace resolution
// (open, create, handle re-resolution), so implementations must be safe
// for concurrent use and cheap on the read path.
//
// Version is how dynamic placements publish changes: it returns a
// counter that increases whenever any name's shard can have changed.
// Static placements (pure functions of the name) return 0 forever, so
// version checks against them compile down to a compare-with-zero and
// routing stays exactly as cheap as the stateless hash was. Callers that
// cache a name→shard resolution (the server's per-connection handle
// table) remember the version they resolved under and re-resolve when it
// moves.
type Placement interface {
	// Name identifies the policy ("hash", "rendezvous", "map").
	Name() string
	// Place maps name to a shard in [0, nshards). It must be stable for
	// a given (name, nshards) between Version changes.
	Place(name string, nshards int) int
	// Version is the current placement generation; 0 forever for static
	// placements.
	Version() uint64
}

// HashPlacement is the stateless FNV-1a placement ShardOf implements —
// the default, and the zero-cost baseline the other policies are
// measured against.
type HashPlacement struct{}

// Name implements Placement.
func (HashPlacement) Name() string { return "hash" }

// Place implements Placement via ShardOf.
func (HashPlacement) Place(name string, nshards int) int { return ShardOf(name, nshards) }

// Version implements Placement; hash placement never changes.
func (HashPlacement) Version() uint64 { return 0 }

// RendezvousPlacement is weighted rendezvous (highest-random-weight)
// hashing: every (name, shard) pair gets an independent pseudo-random
// score and the name goes to the shard with the highest weighted score.
// Unlike modulo hashing, changing one shard's weight only moves names
// into or out of that shard, and uneven weights let heterogeneous shards
// take proportionally uneven shares of the namespace.
type RendezvousPlacement struct {
	weights []float64
}

// NewRendezvous builds a weighted rendezvous placement. weights[i] is
// shard i's relative capacity; missing entries (or a nil slice) default
// to 1, non-positive entries make a shard ineligible for new names.
func NewRendezvous(weights []float64) *RendezvousPlacement {
	return &RendezvousPlacement{weights: append([]float64(nil), weights...)}
}

// Name implements Placement.
func (p *RendezvousPlacement) Name() string { return "rendezvous" }

// Version implements Placement; rendezvous placement is static.
func (p *RendezvousPlacement) Version() uint64 { return 0 }

// Place implements Placement: the classic weighted-rendezvous score
// -w/ln(u) with u drawn per (name, shard) from a 64-bit mix of the
// name hash and the shard index.
func (p *RendezvousPlacement) Place(name string, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	h := fnv64(name)
	best, bestScore := -1, math.Inf(-1)
	for i := 0; i < nshards; i++ {
		w := 1.0
		if i < len(p.weights) {
			w = p.weights[i]
		}
		if !(w > 0) { // also catches NaN
			continue
		}
		// splitmix64 over the name hash xor the shard index gives an
		// independent draw per pair.
		x := h ^ (uint64(i)+1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		// u in (0, 1]: never exactly 0, so ln(u) is finite.
		u := (float64(x>>11) + 1) / (1 << 53)
		score := -w / math.Log(u)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// Every shard was weighted ineligible — a misconfiguration, but
		// routing everything to shard 0 (the likely "disabled" shard)
		// would silently defeat sharding; fall back to the plain hash.
		return ShardOf(name, nshards)
	}
	return best
}

// ParseWeights parses a comma-separated weight list ("1,1,2.5") for
// NewRendezvous; an empty string yields nil (all shards weight 1).
func ParseWeights(s string) ([]float64, error) {
	if s = strings.TrimSpace(s); s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("pfs: bad weight %q", p)
		}
		out[i] = w
	}
	return out, nil
}

// MapPlacement is an explicit, versioned name→shard table over a
// fallback placement: names without an entry place by the fallback
// (default hash, so an empty map behaves exactly like HashPlacement),
// names with one go where the table says. It is the only placement that
// supports online migration — Sharded.Migrate moves a file's data and
// lock state, then flips its entry here, bumping the version so cached
// routes (server handle tables) re-resolve.
type MapPlacement struct {
	fallback Placement
	ver      atomic.Uint64
	mu       sync.RWMutex
	m        map[string]int
}

// NewMapPlacement builds an empty shard map over fallback (nil selects
// HashPlacement).
func NewMapPlacement(fallback Placement) *MapPlacement {
	if fallback == nil {
		fallback = HashPlacement{}
	}
	return &MapPlacement{fallback: fallback, m: make(map[string]int)}
}

// Name implements Placement.
func (p *MapPlacement) Name() string { return "map" }

// Version implements Placement: it increases on every Set.
func (p *MapPlacement) Version() uint64 { return p.ver.Load() }

// Place implements Placement: the table entry when present and in
// range, the fallback otherwise.
func (p *MapPlacement) Place(name string, nshards int) int {
	p.mu.RLock()
	s, ok := p.m[name]
	p.mu.RUnlock()
	if ok && s >= 0 && s < nshards {
		return s
	}
	return p.fallback.Place(name, nshards)
}

// Set pins name to shard and bumps the version. On a live Sharded store
// do not call this directly — Sharded.Migrate moves the file's data and
// lock state first, then calls Set; flipping the route without moving
// the file would send requests to a shard that does not hold it.
func (p *MapPlacement) Set(name string, shard int) {
	p.mu.Lock()
	p.m[name] = shard
	p.ver.Add(1)
	p.mu.Unlock()
}

// Delete drops name's pin, if any, so a later file of the same name
// places by the fallback again; the version bumps when an entry was
// actually removed. Sharded.Remove calls this so a removed-then-
// recreated name does not inherit its dead predecessor's route (and so
// the table does not grow monotonically under namespace churn).
func (p *MapPlacement) Delete(name string) {
	p.mu.Lock()
	if _, ok := p.m[name]; ok {
		delete(p.m, name)
		p.ver.Add(1)
	}
	p.mu.Unlock()
}

// Pinned returns a copy of the explicit entries (debugging/tests).
func (p *MapPlacement) Pinned() map[string]int {
	p.mu.RLock()
	out := make(map[string]int, len(p.m))
	for k, v := range p.m {
		out[k] = v
	}
	p.mu.RUnlock()
	return out
}

// String renders the pinned entries deterministically.
func (p *MapPlacement) String() string {
	pins := p.Pinned()
	names := make([]string, 0, len(pins))
	for n := range pins {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("map{")
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, pins[n])
	}
	b.WriteByte('}')
	return b.String()
}

// NewPlacement builds a placement by policy name: "hash" (or ""),
// "rendezvous" (weights optional), or "map" (weights ignored).
func NewPlacement(policy string, weights []float64) (Placement, error) {
	switch policy {
	case "", "hash":
		return HashPlacement{}, nil
	case "rendezvous":
		return NewRendezvous(weights), nil
	case "map":
		return NewMapPlacement(nil), nil
	}
	return nil, fmt.Errorf("pfs: unknown placement %q (hash, rendezvous, map)", policy)
}
