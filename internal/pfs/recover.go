package pfs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// RecoverStats describes what RecoverSharded found and rebuilt.
type RecoverStats struct {
	Shards     int    // shards scanned
	Files      int    // files in the recovered store
	FromCkpt   int    // files whose base state came from a checkpoint
	Records    int    // log records replayed
	Migrations int    // MIGRATE records among them
	TornBytes  int    // trailing log bytes discarded as torn or corrupt
	MaxLSN     uint64 // highest LSN seen; the reopened WALs continue above it
}

func (s RecoverStats) String() string {
	return fmt.Sprintf("recovered %d file(s) across %d shard(s): %d from checkpoints, %d record(s) replayed (%d migration(s)), %d torn byte(s) dropped, lsn=%d",
		s.Files, s.Shards, s.FromCkpt, s.Records, s.Migrations, s.TornBytes, s.MaxLSN)
}

// shardScan is one shard's durable state as found on disk.
type shardScan struct {
	ckpt  []ckptFile
	floor uint64
	gen   uint64 // max generation across checkpoint and logs
	recs  []Record
	torn  int
	err   error
}

// nameState accumulates one file's timeline across shard logs.
type nameState struct {
	base      []byte // checkpoint snapshot, nil if none
	baseShard int
	floor     uint64
	hasBase   bool
	recs      []Record
}

// RecoverSharded rebuilds a sharded store from the WAL directory d and
// returns it together with one reopened WAL per shard, ready to
// journal. An empty directory recovers an empty store — this is also
// how a WAL-backed store boots the first time.
//
// Each shard's checkpoint and log(s) are scanned in parallel; torn or
// CRC-failing log tails are truncated (within one log a record's LSN
// must exceed its predecessor's, so a tail that resynchronized on
// garbage is cut too). Then each file's timeline is merged across
// shards: base state from the checkpoint holding it (the one with the
// highest LSN floor, if a migration raced a checkpoint into leaving two),
// then every record above that floor in global LSN order — the shared
// LSN counter is what makes records for one file totally ordered even
// when migrations scattered them across shard logs. MIGRATE records
// re-drive the ownership flip: each one re-homes the file and installs
// the full snapshot it carries, so a crash anywhere around a migration
// recovers the file on exactly one shard — the destination when the
// record was durable, the source when it was not — never both, never
// neither. Files are replayed grouped by their final shard, in
// parallel across shards.
//
// Recovery ends by compacting: the rebuilt state is checkpointed and
// every shard starts a fresh log, so a crash loop cannot accrete
// unbounded replay work. When a file's final shard disagrees with
// place's answer, the pin is recorded in place, which must then be a
// *MapPlacement — recovering a migration-bearing log into a static
// placement is refused rather than silently mis-routed.
func RecoverSharded(d Dir, nshards int, mk DomainLockFactory, place Placement) (*Sharded, []*WAL, RecoverStats, error) {
	var stats RecoverStats
	if nshards < 1 {
		nshards = 1
	}
	if place == nil {
		place = HashPlacement{}
	}
	store := NewShardedPlacement(nshards, mk, place)
	stats.Shards = nshards

	// The directory is the source of truth for how many shards the
	// store durably has: recovering with fewer would silently drop
	// every file whose only state lives in a higher shard's checkpoint
	// or log (and mis-replay migrations targeting it), so a shrunk
	// -shards is refused rather than partially honored. The refusal
	// keys on actual *state*, not file existence — recovery itself
	// leaves an empty log and checkpoint behind for every shard it was
	// booted with, so one start with an oversized shard count must not
	// ratchet the directory to it forever.
	dirNames, err := d.List()
	if err != nil {
		return nil, nil, stats, err
	}
	for _, name := range dirNames {
		shard, ok := shardFileIndex(name)
		if !ok || shard < nshards {
			continue
		}
		if shardFileHoldsState(d, name, shard) {
			return nil, nil, stats, fmt.Errorf(
				"pfs: WAL directory holds state for shard %d (%s) but recovery was asked for %d shard(s); restart with at least %d shards",
				shard, name, nshards, shard+1)
		}
	}

	// Parallel scan: checkpoint plus both log incarnations per shard
	// (.log.new survives a crash mid-checkpoint; its records have
	// higher LSNs than the .log it was about to replace).
	scans := make([]shardScan, nshards)
	var wg sync.WaitGroup
	for i := 0; i < nshards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := &scans[i]
			sc.ckpt, sc.gen, sc.floor, sc.err = readCheckpoint(d, i)
			if sc.err != nil {
				return
			}
			base := shardBase(i)
			for _, name := range []string{base + logSuffix, base + logNewSuffx} {
				recs, gen, torn, err := readShardLog(d, name, i)
				if err != nil {
					sc.err = err
					return
				}
				sc.recs = append(sc.recs, recs...)
				sc.torn += torn
				if gen > sc.gen {
					sc.gen = gen
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range scans {
		if scans[i].err != nil {
			return nil, nil, stats, scans[i].err
		}
	}

	// Merge into per-name timelines.
	names := make(map[string]*nameState)
	state := func(name string) *nameState {
		ns, ok := names[name]
		if !ok {
			ns = &nameState{baseShard: -1}
			names[name] = ns
		}
		return ns
	}
	for i := range scans {
		sc := &scans[i]
		stats.TornBytes += sc.torn
		for _, cf := range sc.ckpt {
			ns := state(cf.Name)
			// Two checkpoints can hold one name when a migration raced a
			// checkpoint; the higher floor is the newer truth (the barrier
			// argument in WAL.Checkpoint makes floors comparable).
			if !ns.hasBase || sc.floor > ns.floor ||
				(sc.floor == ns.floor && i > ns.baseShard) {
				ns.base, ns.baseShard, ns.floor, ns.hasBase = cf.Snapshot, i, sc.floor, true
			}
		}
		for _, rec := range sc.recs {
			if rec.LSN > stats.MaxLSN {
				stats.MaxLSN = rec.LSN
			}
			state(rec.Name).recs = append(state(rec.Name).recs, rec)
		}
	}

	// Resolve each file's final shard and group the replay work.
	type job struct {
		name string
		ns   *nameState
	}
	perShard := make([][]job, nshards)
	mp, _ := place.(*MapPlacement)
	for name, ns := range names {
		sort.Slice(ns.recs, func(a, b int) bool { return ns.recs[a].LSN < ns.recs[b].LSN })
		// Drop records the base checkpoint already reflects.
		cut := sort.Search(len(ns.recs), func(i int) bool { return ns.recs[i].LSN > ns.floor })
		ns.recs = ns.recs[cut:]
		if !ns.hasBase && len(ns.recs) == 0 {
			continue
		}
		shard := ns.baseShard
		if shard < 0 {
			// No checkpoint: the file is born where its first record
			// says. Always in range: records are stamped with the log's
			// own shard (scanLog cuts mismatches) and only shards below
			// nshards are scanned (higher ones refuse recovery above).
			shard = int(ns.recs[0].Shard)
		}
		for _, rec := range ns.recs {
			if rec.Kind == RecMigrate {
				shard = int(rec.Dst)
			}
		}
		if shard != place.Place(name, nshards) {
			if mp == nil {
				return nil, nil, stats, fmt.Errorf("pfs: recovering %q onto shard %d needs a map placement (have %s)", name, shard, place.Name())
			}
			mp.Set(name, shard)
		}
		perShard[shard] = append(perShard[shard], job{name, ns})
	}

	// Replay, parallel across final shards (each touches only its own
	// shard's namespace and domain).
	errs := make([]error, nshards)
	for i := 0; i < nshards; i++ {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := store.Shard(i)
			for _, jb := range perShard[i] {
				f, err := fs.Create(jb.name)
				if err != nil {
					errs[i] = fmt.Errorf("pfs: recover %q: %w", jb.name, err)
					return
				}
				if jb.ns.hasBase {
					if err := applyFileSnapshot(f, jb.ns.base); err != nil {
						errs[i] = fmt.Errorf("pfs: recover %q: checkpoint snapshot: %w", jb.name, err)
						return
					}
				}
				for _, rec := range jb.ns.recs {
					switch rec.Kind {
					case RecCreate:
						// Presence is the whole effect.
					case RecWrite, RecAppend:
						f.WriteAt(rec.Data, rec.Off)
					case RecTruncate:
						f.Truncate(rec.Size)
					case RecMigrate:
						if err := applyFileSnapshot(f, rec.Data); err != nil {
							errs[i] = fmt.Errorf("pfs: recover %q: migration snapshot at lsn %d: %w", jb.name, rec.LSN, err)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, stats, err
		}
	}

	for _, ns := range names {
		stats.Records += len(ns.recs)
		for _, rec := range ns.recs {
			if rec.Kind == RecMigrate {
				stats.Migrations++
			}
		}
		if ns.hasBase {
			stats.FromCkpt++
		}
	}
	stats.Files = len(names)

	// Compact: checkpoint the rebuilt state and restart every shard's
	// log, so the next recovery replays nothing that this one already
	// absorbed. Checkpoints land before the logs truncate; a crash in
	// between leaves old records filtered out by the new floors.
	lsn := &atomic.Uint64{}
	lsn.Store(stats.MaxLSN)
	for i := 0; i < nshards; i++ {
		if err := writeCheckpoint(d, i, scans[i].gen+1, stats.MaxLSN, store.Shard(i), nil); err != nil {
			return nil, nil, stats, err
		}
	}
	wals := make([]*WAL, nshards)
	for i := 0; i < nshards; i++ {
		w, err := newWAL(d, i, scans[i].gen+1, lsn, stats.MaxLSN)
		if err != nil {
			return nil, nil, stats, err
		}
		wals[i] = w
		base := shardBase(i)
		if err := d.Remove(base + logNewSuffx); err != nil {
			return nil, nil, stats, err
		}
		if err := d.Remove(base + ckptTmpSufx); err != nil {
			return nil, nil, stats, err
		}
	}
	if err := d.Sync(); err != nil {
		return nil, nil, stats, err
	}
	// Wire the journal hooks last, after the replay above: from here on
	// every mutation of shard i journals to wals[i], from inside the
	// operation while its range (or namespace) lock is held — see
	// FS.jhook. Append errors are sticky in the WAL; commit gates acks.
	for i := range wals {
		store.Shard(i).jhook = JournalHook(wals[i], place)
	}
	return store, wals, stats, nil
}

// JournalHook builds the hook RecoverSharded wires into each shard:
// stamp the record with the current placement version and append it to
// the shard's WAL. Exported so a promoted replica — which unwires the
// hooks while it applies a leader's stream — can rewire them when it
// takes over as leader.
func JournalHook(w *WAL, place Placement) func(*Record) {
	return func(rec *Record) {
		rec.PVer = place.Version()
		w.Append(rec)
	}
}
