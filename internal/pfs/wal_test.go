package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// walRecordEqual compares everything but the payload aliasing.
func walRecordEqual(a, b Record) bool {
	return a.Kind == b.Kind && a.LSN == b.LSN && a.Shard == b.Shard &&
		a.PVer == b.PVer && a.Name == b.Name && a.Off == b.Off &&
		a.Size == b.Size && a.Dst == b.Dst && bytes.Equal(a.Data, b.Data)
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecCreate, LSN: 1, Shard: 3, PVer: 7, Name: "a"},
		{Kind: RecWrite, LSN: 2, Shard: 0, PVer: 0, Name: "file-b", Off: 4097, Data: []byte("hello")},
		{Kind: RecAppend, LSN: 3, Shard: 1, Name: "log", Off: 1 << 40, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: RecTruncate, LSN: 4, Shard: 2, Name: "t", Size: 123456},
		{Kind: RecMigrate, LSN: 5, Shard: 1, PVer: 9, Name: "hot", Dst: 1, Data: []byte{1, 2, 3}},
	}
	var buf []byte
	for i := range recs {
		var err error
		if buf, err = appendRecord(buf, &recs[i]); err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
	}
	b := buf
	for i := range recs {
		got, n, err := decodeRecord(b)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if !walRecordEqual(got, recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got, recs[i])
		}
		b = b[n:]
	}
	if len(b) != 0 {
		t.Fatalf("%d bytes left after decoding all records", len(b))
	}
}

// buildLog assembles a valid shard log image.
func buildLog(shard int, gen uint64, recs ...Record) []byte {
	buf := appendWalHeader(nil, shard, gen)
	for i := range recs {
		var err error
		if buf, err = appendRecord(buf, &recs[i]); err != nil {
			panic(err)
		}
	}
	return buf
}

func TestWALScanStopsAtTorn(t *testing.T) {
	recs := []Record{
		{Kind: RecWrite, LSN: 1, Name: "f", Off: 0, Data: []byte("one")},
		{Kind: RecWrite, LSN: 2, Name: "f", Off: 8, Data: []byte("two")},
		{Kind: RecWrite, LSN: 3, Name: "f", Off: 16, Data: []byte("three")},
	}
	full := buildLog(0, 1, recs...)

	// Every truncation point decodes the longest valid record prefix.
	for cut := 0; cut <= len(full); cut++ {
		got, _, torn, err := scanLog(full[:cut], 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecs := 0
		pos := walHdrLen
		if cut < walHdrLen {
			pos = cut // headerless: scans as empty, all torn
		}
		for wantRecs < len(recs) {
			_, n, derr := decodeRecord(full[pos:cut])
			if derr != nil {
				break
			}
			pos += n
			wantRecs++
		}
		if len(got) != wantRecs {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(got), wantRecs)
		}
		if cut >= walHdrLen && torn != cut-pos {
			t.Fatalf("cut %d: torn %d, want %d", cut, torn, cut-pos)
		}
	}

	// A flipped bit mid-log stops the scan there, keeping the prefix.
	for bit := walHdrLen; bit < len(full); bit += 7 {
		mut := append([]byte(nil), full...)
		mut[bit] ^= 0x10
		got, _, _, err := scanLog(mut, 0)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("bit %d: scan invented records", bit)
		}
		// Records before the flipped byte's frame must survive intact.
		for i, rec := range got {
			if rec.LSN == uint64(i+1) && rec.Name == "f" {
				continue
			}
			t.Fatalf("bit %d: surviving record %d corrupted: %+v", bit, i, rec)
		}
	}

	// A duplicated tail (record re-appended) violates LSN monotonicity
	// and is cut.
	dup := append(append([]byte(nil), full...), full[walHdrLen:]...)
	got, _, torn, err := scanLog(dup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("duplicated tail: got %d records, want %d", len(got), len(recs))
	}
	if torn == 0 {
		t.Fatal("duplicated tail not reported as torn")
	}

	// Wrong shard in the header is corruption, not a crash artifact.
	if _, _, _, err := scanLog(buildLog(5, 1, recs[0]), 0); err == nil {
		t.Fatal("foreign shard header accepted")
	}
}

func TestWALGroupCommit(t *testing.T) {
	d := NewMemDir()
	_, wals, _, err := RecoverSharded(d, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := wals[0]
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				end, err := w.Append(&Record{Kind: RecWrite, Name: fmt.Sprintf("w%d", g), Off: uint64(i), Data: []byte{byte(g)}})
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(end, true); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Everything committed is synced: a clean-cut crash loses nothing.
	content, err := d.CrashCopy(nil).ReadFile(shardBase(0) + logSuffix)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn, err := scanLog(content, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("%d torn bytes after synced commits", torn)
	}
	if len(recs) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(recs), workers*per)
	}
	seen := make(map[uint64]bool, len(recs))
	last := uint64(0)
	for _, rec := range recs {
		if seen[rec.LSN] {
			t.Fatalf("duplicate LSN %d", rec.LSN)
		}
		seen[rec.LSN] = true
		if rec.LSN <= last {
			t.Fatalf("LSN %d out of order after %d", rec.LSN, last)
		}
		last = rec.LSN
	}
}

// syncWALs commits everything the journal hooks appended so far — a
// recovered store journals its own mutations (RecoverSharded wires the
// hooks), so tests only need the durability point.
func syncWALs(t *testing.T, wals []*WAL) {
	t.Helper()
	for _, w := range wals {
		if err := w.CommitAll(true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	d := NewMemDir()
	store, wals, stats, err := RecoverSharded(d, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 0 || stats.Records != 0 {
		t.Fatalf("fresh recovery found state: %+v", stats)
	}
	type want struct {
		name string
		data []byte
		size uint64
	}
	var wants []want
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("rt-%d", i)
		f, err := store.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte('A' + i)}, 100+i*BlockSize/2)
		f.WriteAt(payload, uint64(i*37))
		if i%2 == 0 {
			f.Append([]byte("tail"))
		}
		if i == 3 {
			f.Truncate(50)
		}
		buf := make([]byte, f.Size())
		f.ReadAt(buf, 0)
		wants = append(wants, want{name, buf, f.Size()})
	}
	syncWALs(t, wals)

	store2, _, stats2, err := RecoverSharded(d.CrashCopy(nil), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Files != len(wants) {
		t.Fatalf("recovered %d files, want %d (%v)", stats2.Files, len(wants), stats2)
	}
	for _, w := range wants {
		f, err := store2.Open(w.name)
		if err != nil {
			t.Fatalf("open %q after recovery: %v", w.name, err)
		}
		if f.Size() != w.size {
			t.Fatalf("%q: size %d, want %d", w.name, f.Size(), w.size)
		}
		got := make([]byte, w.size)
		f.ReadAt(got, 0)
		if !bytes.Equal(got, w.data) {
			t.Fatalf("%q: content diverged after recovery", w.name)
		}
	}
}

func TestWALCheckpointCompacts(t *testing.T) {
	d := NewMemDir()
	store, wals, _, err := RecoverSharded(d, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := store.Create("ck")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 1024)
	for i := 0; i < 32; i++ {
		f.WriteAt(payload, uint64(i)*512)
	}
	syncWALs(t, wals)
	pre := wals[0].SinceCheckpoint()
	if pre == 0 {
		t.Fatal("no log growth recorded")
	}
	if err := store.CheckpointShard(wals[0], 0); err != nil {
		t.Fatal(err)
	}
	if got := wals[0].SinceCheckpoint(); got >= pre {
		t.Fatalf("checkpoint did not reset log growth: %d >= %d", got, pre)
	}

	// Post-checkpoint mutations land in the fresh log and recovery
	// layers them over the snapshot.
	f.WriteAt([]byte("after"), 40)
	syncWALs(t, wals)

	store2, _, stats, err := RecoverSharded(d.CrashCopy(nil), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromCkpt != 1 {
		t.Fatalf("file not recovered from checkpoint: %+v", stats)
	}
	if stats.Records != 1 {
		t.Fatalf("checkpointed records replayed again: %+v", stats)
	}
	f2, err := store2.Open("ck")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, f.Size())
	f.ReadAt(want, 0)
	got := make([]byte, f2.Size())
	f2.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("checkpoint + tail replay diverged from live state")
	}
}

// TestRecoverMidCheckpointWindows rebuilds the on-disk states a crash
// can leave between the checkpoint protocol's steps and checks each
// recovers the full state: (a) old ckpt + old log + new log, (b) new
// ckpt + stale old log + new log, (c) after completion.
func TestRecoverMidCheckpointWindows(t *testing.T) {
	base := shardBase(0)
	older := Record{Kind: RecWrite, LSN: 1, Name: "w", Off: 0, Data: []byte("old!")}
	newer := Record{Kind: RecWrite, LSN: 9, Name: "w", Off: 4, Data: []byte("new!")}
	oldLog := buildLog(0, 1, older)
	newLog := buildLog(0, 2, newer)

	// The gen-2 checkpoint reflects everything up to LSN 5 (i.e. the
	// old log's record, already applied as "old!").
	mkCkpt := func(t *testing.T, d *MemDir, floor uint64, content []byte) {
		t.Helper()
		fs := New(nil)
		f, err := fs.Create("w")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(content, 0)
		if err := writeCheckpoint(d, 0, 2, floor, fs, nil); err != nil {
			t.Fatal(err)
		}
	}
	put := func(t *testing.T, d *MemDir, name string, content []byte) {
		t.Helper()
		f, err := d.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(content)
		f.Sync()
	}

	cases := []struct {
		name  string
		setup func(t *testing.T, d *MemDir)
	}{
		{"before-ckpt-rename", func(t *testing.T, d *MemDir) {
			put(t, d, base+logSuffix, oldLog)
			put(t, d, base+logNewSuffx, newLog)
		}},
		{"after-ckpt-before-promote", func(t *testing.T, d *MemDir) {
			put(t, d, base+logSuffix, oldLog)
			put(t, d, base+logNewSuffx, newLog)
			mkCkpt(t, d, 5, []byte("old!"))
		}},
		{"complete", func(t *testing.T, d *MemDir) {
			put(t, d, base+logSuffix, newLog)
			mkCkpt(t, d, 5, []byte("old!"))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewMemDir()
			tc.setup(t, d)
			d.Sync()
			store, _, _, err := RecoverSharded(d, 1, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			f, err := store.Open("w")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 8)
			f.ReadAt(got, 0)
			if string(got) != "old!new!" {
				t.Fatalf("recovered %q, want %q", got, "old!new!")
			}
		})
	}
}

func TestRecoverMigrateAcrossShardLogs(t *testing.T) {
	// File written on shard src, migrated to dst with a snapshot
	// record in dst's log, then written again on dst: recovery must
	// land it on dst, pinned, with all three layers of content.
	const n = 4
	name := "hot-file"
	place := NewMapPlacement(nil)
	src := place.Place(name, n)
	dst := (src + 1) % n

	pre := []byte("pre-migration ")
	post := []byte("post")
	snapFS := New(nil)
	sf, err := snapFS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	sf.WriteAt(pre, 0)

	d := NewMemDir()
	put := func(nm string, content []byte) {
		f, _ := d.Create(nm)
		f.Write(content)
		f.Sync()
	}
	put(shardBase(src)+logSuffix, buildLog(src, 1,
		Record{Kind: RecCreate, LSN: 1, Shard: uint32(src), Name: name},
		Record{Kind: RecWrite, LSN: 2, Shard: uint32(src), Name: name, Off: 0, Data: pre},
	))
	put(shardBase(dst)+logSuffix, buildLog(dst, 1,
		Record{Kind: RecMigrate, LSN: 3, Shard: uint32(dst), Name: name, Dst: uint32(dst), Data: AppendFileSnapshot(nil, sf)},
		Record{Kind: RecWrite, LSN: 4, Shard: uint32(dst), Name: name, Off: uint64(len(pre)), Data: post},
	))
	d.Sync()

	store, _, stats, err := RecoverSharded(d, n, nil, place)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if got := store.ShardIndex(name); got != dst {
		t.Fatalf("placement routes to %d, want %d", got, dst)
	}
	if _, err := store.Shard(src).Open(name); err == nil {
		t.Fatal("file recovered on source shard too")
	}
	f, err := store.Shard(dst).Open(name)
	if err != nil {
		t.Fatalf("file not on destination: %v", err)
	}
	want := append(append([]byte(nil), pre...), post...)
	got := make([]byte, len(want))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered %q, want %q", got, want)
	}

	// The same logs under a static placement are refused: the pin
	// cannot be expressed.
	if _, _, _, err := RecoverSharded(d, n, nil, HashPlacement{}); err == nil {
		t.Fatal("migration-bearing log recovered into a static placement")
	}
}

// TestNameLengthLimits: names are journaled with a u16 length prefix,
// so over-long ones must be refused loudly at every layer — a silently
// truncated length desynchronizes the decoder and costs every record
// behind it on recovery.
func TestNameLengthLimits(t *testing.T) {
	fs := New(nil)
	if _, err := fs.Create(strings.Repeat("n", MaxName+1)); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("Create(MaxName+1) = %v, want ErrNameTooLong", err)
	}
	if _, err := fs.Create(strings.Repeat("n", MaxName)); err != nil {
		t.Fatalf("Create(MaxName): %v", err)
	}

	// The encoder itself refuses rather than truncates, and the WAL
	// makes the failure sticky: the record can never be made durable,
	// so the commit gate must refuse acknowledgements from here on.
	d := NewMemDir()
	_, wals, _, err := RecoverSharded(d, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := wals[0]
	if _, err := w.Append(&Record{Kind: RecCreate, Name: strings.Repeat("x", maxWalName+1)}); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("Append(over-long name) = %v, want ErrNameTooLong", err)
	}
	if err := w.CommitAll(true); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("Commit after refused append = %v, want sticky ErrNameTooLong", err)
	}

	// writeCheckpoint refuses too (the FS here is assembled by hand —
	// pfs.Create would never let the name in).
	long := New(nil)
	long.files[strings.Repeat("c", maxWalName+1)] = newFile(long, "c", long.mkLock())
	if err := writeCheckpoint(NewMemDir(), 0, 1, 0, long, nil); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("writeCheckpoint(over-long name) = %v, want ErrNameTooLong", err)
	}
}

// TestWALCloseSticky: a closed WAL fails Append/Commit/Checkpoint with
// ErrWALClosed instead of buffering records no flush will cover (or
// panicking on the nil file in a later flush round).
func TestWALCloseSticky(t *testing.T) {
	d := NewMemDir()
	store, wals, _, err := RecoverSharded(d, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := wals[0]
	end, err := w.Append(&Record{Kind: RecCreate, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
	if _, err := w.Append(&Record{Kind: RecCreate, Name: "g"}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Append after Close = %v, want ErrWALClosed", err)
	}
	// A late commit of a frontier Close's final flush already made
	// durable truthfully succeeds — the records ARE on disk, and a
	// server shutting down under traffic must not drop an ack recovery
	// will honor. Only a frontier beyond the durable end fails closed.
	if err := w.CommitAll(true); err != nil {
		t.Fatalf("Commit of durable frontier after Close = %v, want nil", err)
	}
	if err := w.Commit(w.AppendEnd()+1, true); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Commit beyond durable frontier after Close = %v, want ErrWALClosed", err)
	}
	if err := store.CheckpointShard(w, 0); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrWALClosed", err)
	}
}

// TestRecoverRefusesFewerShards: restarting with a smaller -shards
// than the WAL directory holds state for must refuse to boot — a
// partial recovery would silently drop every file living only in a
// higher shard's checkpoint or log. But the refusal keys on state,
// not file existence: recovery leaves empty logs and checkpoints
// behind for every shard it booted with, and one start with an
// oversized shard count must not wedge all smaller restarts.
func TestRecoverRefusesFewerShards(t *testing.T) {
	d := NewMemDir()
	store, wals, _, err := RecoverSharded(d, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the file onto the top shard directly, so shrinking below it
	// is guaranteed to exclude its only durable state.
	if _, err := store.Shard(3).Create("shrink-me"); err != nil {
		t.Fatal(err)
	}
	syncWALs(t, wals)
	crashed := d.CrashCopy(nil)
	if _, _, _, err := RecoverSharded(crashed, 2, nil, nil); err == nil {
		t.Fatal("recovery with fewer shards than the directory holds state for was accepted")
	}
	// The matching shard count still recovers everything (map
	// placement: the file lives off its hash shard and needs the pin).
	store2, _, stats, err := RecoverSharded(crashed, 4, nil, NewMapPlacement(nil))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 1 {
		t.Fatalf("recovered %d files, want 1 (%v)", stats.Files, stats)
	}
	if _, err := store2.Open("shrink-me"); err != nil {
		t.Fatal(err)
	}

	// No ratchet: a boot with an oversized shard count writes empty
	// higher-shard logs/checkpoints, which a smaller restart ignores.
	big := NewMemDir()
	if _, _, _, err := RecoverSharded(big, 8, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := RecoverSharded(big.CrashCopy(nil), 2, nil, nil); err != nil {
		t.Fatalf("empty higher-shard files wedged a smaller restart: %v", err)
	}
}

func TestMemDirCrashSemantics(t *testing.T) {
	d := NewMemDir()
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	f.Sync()
	d.Sync()
	f.Write([]byte(" volatile"))

	// Un-synced names vanish, un-synced tails are cut.
	g, _ := d.Create("ghost")
	g.Write([]byte("never synced"))
	g.Sync() // file data synced, but the name never was

	crash := d.CrashCopy(nil)
	if _, err := crash.ReadFile("ghost"); err == nil {
		t.Fatal("un-synced name survived the crash")
	}
	got, err := crash.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("crash kept %q, want %q", got, "durable")
	}

	// With an rng, any prefix of the tail may survive — never more.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 32; i++ {
		got, err := d.CrashCopy(rng).ReadFile("f")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < len("durable") || len(got) > len("durable volatile") {
			t.Fatalf("crash kept %d bytes", len(got))
		}
		if string(got[:7]) != "durable" {
			t.Fatalf("synced prefix corrupted: %q", got)
		}
	}

	// The live dir is unaffected.
	live, _ := d.ReadFile("f")
	if string(live) != "durable volatile" {
		t.Fatalf("live view lost data: %q", live)
	}
}
