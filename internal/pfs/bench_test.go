package pfs

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/lockapi"
)

// benchmark one lock implementation under the pNOVA-style shared-file
// pattern: parallel writers on private stripes plus random readers.
func benchSharedFile(b *testing.B, mk LockFactory) {
	fs := New(mk)
	f, _ := fs.Create("bench")
	const stripe = 16384
	// Pre-extend the file so readers do not hit EOF.
	f.WriteAt(make([]byte, stripe), 63*stripe)

	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		me := int(tid.Add(1)) - 1
		rng := rand.New(rand.NewSource(int64(me) * 2654435761))
		buf := make([]byte, 1024)
		base := uint64(me%64) * stripe
		for pb.Next() {
			if rng.Intn(100) < 50 {
				f.WriteAt(buf, base+uint64(rng.Intn(stripe-1024)))
			} else {
				f.ReadAt(buf, uint64(rng.Intn(63*stripe)))
			}
		}
	})
}

func BenchmarkSharedFileListRW(b *testing.B) {
	benchSharedFile(b, nil)
}

func BenchmarkSharedFileKernelRW(b *testing.B) {
	benchSharedFile(b, func() lockapi.Locker { return lockapi.NewKernelRW() })
}

func BenchmarkSharedFilePnovaRW(b *testing.B) {
	benchSharedFile(b, func() lockapi.Locker { return lockapi.NewPnovaRW(64*16384, 256) })
}

func BenchmarkAppend(b *testing.B) {
	fs := New(nil)
	f, _ := fs.Create("log")
	rec := make([]byte, 128)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := f.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
