package pfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sync/atomic"
)

// Checkpoint file layout — one per shard, written atomically via
// .ckpt.tmp + rename. The current format is streamed:
//
//	header = magic:"PFSCKP2\n" shard:u32 gen:u64 lsnFloor:u64
//	frame  = len:u32 crc:u32 body        (same framing as WAL records)
//	body   = part:u8 <part-specific>
//
//	part 0 (file)  nameLen:u16 name snapshot      (file's first frame)
//	part 1 (cont)  nameLen:u16 name nblocks:u32 (blockIdx:u64 block)…
//	part 2 (end)   nfiles:u32                     (trailer; must be last)
//
//	snapshot = size:u64 nblocks:u32 (blockIdx:u64 block:BlockSize)…
//
// The writer streams frames through a bounded staging buffer instead
// of materializing the whole shard in memory: a large file is split
// into a part-0 frame plus part-1 continuations of roughly
// ckptChunkBytes each, and the buffer is flushed to disk between
// frames. Because frames stream, the file count cannot be backfilled
// into the header; the part-2 trailer carries it instead, and doubles
// as the truncation detector — a checkpoint without a matching trailer
// is damage, not a crash artifact (the tmp+rename protocol never
// publishes a partial file). The v1 format ("PFSCKP1\n", nfiles in the
// header, one frame per file) is still read for directories written by
// older builds.
//
// lsnFloor is the shard LSN read at log rotation: every record with
// LSN ≤ floor is reflected in the snapshot (records are logged after
// their mutation applies, and rotation happens before the snapshot is
// taken), so recovery replays only records above it. The snapshot
// encoding is shared with MIGRATE records, which carry the migrating
// file's full state so the source shard's checkpoint may forget it.

const (
	ckptMagic2  = "PFSCKP2\n"
	ckptHdrLen  = 8 + 4 + 8 + 8 + 4 // v1: magic, shard, gen, floor, nfiles
	ckptHdr2Len = 8 + 4 + 8 + 8     // v2: magic, shard, gen, floor

	ckptPartFile = 0 // first frame of a file: replaces its state
	ckptPartCont = 1 // continuation: more blocks of the same file
	ckptPartEnd  = 2 // trailer: total file count; nothing may follow
)

// ckptChunkBytes is the streaming checkpoint writer's target frame and
// flush granularity: a frame is cut and the staging buffer written out
// once it outgrows this. The buffer can overshoot by one block-shard's
// worth of blocks (frames only cut between block-shard locks — disk
// I/O never runs under a block spinlock), which the peak-buffer gauge
// makes visible.
const ckptChunkBytes = 256 << 10

// AppendFileSnapshot encodes f's state in the snapshot format MIGRATE
// records carry — the journal layer calls it from the MigrateWith emit
// hook, where the file is frozen and the snapshot therefore exact.
func AppendFileSnapshot(dst []byte, f *File) []byte {
	return appendFileSnapshot(dst, f)
}

// appendFileSnapshot encodes f's resident blocks and size watermark.
// Blocks are copied under their spinlocks, so each block is internally
// consistent; a mutation concurrent with the snapshot is in the log and
// replay makes the file whole. For a frozen file (migration) the
// snapshot is exact.
func appendFileSnapshot(dst []byte, f *File) []byte {
	dst = le64(dst, f.size.Load())
	npos := len(dst)
	dst = le32(dst, 0) // nblocks backfilled
	n := uint32(0)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx, b := range s.blocks {
			dst = le64(dst, idx)
			dst = append(dst, b...)
			n++
		}
		s.mu.Unlock()
	}
	putLE32(dst[npos:], n)
	return dst
}

// ApplySnapshot replaces f's state with the snapshot in b (the format
// MIGRATE records and checkpoints carry), under an exclusive full-range
// lock so it is consistent against concurrently served reads — the
// path a replica uses to install leader snapshots on a live store. The
// lock follows migration forwarding, so the bytes land on the file's
// live incarnation.
func (f *File) ApplySnapshot(b []byte) error {
	f, r := f.lockResolved(Op{}, 0, ^uint64(0), true)
	defer r.release()
	return applyFileSnapshot(f, b)
}

// applyFileSnapshot replaces f's state with the snapshot in b. The
// caller owns f exclusively (recovery replay).
func applyFileSnapshot(f *File, b []byte) error {
	c := cur{b: b}
	size := c.u64()
	n := int(c.u32())
	if c.err || size > maxWalOffset {
		return errTorn
	}
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.blocks = make(map[uint64][]byte)
		s.mu.Unlock()
	}
	for i := 0; i < n; i++ {
		idx := c.u64()
		blk := c.take(BlockSize)
		if c.err {
			return errTorn
		}
		nb := make([]byte, BlockSize)
		copy(nb, blk)
		s := f.shard(idx)
		s.mu.Lock()
		s.blocks[idx] = nb
		s.mu.Unlock()
	}
	if len(c.b) != 0 {
		return errTorn
	}
	f.size.Store(size)
	return nil
}

// ckptWriter streams checkpoint frames through a bounded staging
// buffer. Frames are staged in buf and flushed to the log file between
// frames; peak records the high-water buffer size so the journal's
// gauge can prove the bound holds.
type ckptWriter struct {
	f     LogFile
	buf   []byte
	start int // offset of the open frame's header in buf
	peak  int64
}

// beginFrame stages a frame header; part 0/1 carry the file name.
func (w *ckptWriter) beginFrame(part byte, name string) {
	w.start = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0) // len+crc backfilled
	w.buf = append(w.buf, part)
	if part != ckptPartEnd {
		w.buf = le16(w.buf, uint16(len(name)))
		w.buf = append(w.buf, name...)
	}
}

// endFrame backfills the open frame's length and CRC.
func (w *ckptWriter) endFrame() {
	body := w.buf[w.start+walFrameHdr:]
	putLE32(w.buf[w.start:], uint32(len(body)))
	putLE32(w.buf[w.start+4:], crc32.ChecksumIEEE(body))
}

// flush writes the staged bytes out. Only legal between frames.
func (w *ckptWriter) flush() error {
	if n := int64(len(w.buf)); n > w.peak {
		w.peak = n
	}
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// writeFile streams one file as a part-0 frame plus as many part-1
// continuations as its size demands. Frames are cut only between
// block-shard locks, so the staging buffer can overshoot
// ckptChunkBytes by one block-shard's blocks but never holds the
// whole file. Mirrors appendFileSnapshot's locking discipline: each
// block is copied under its spinlock, so it is internally consistent,
// and any mutation racing the snapshot is in the log above the floor.
func (w *ckptWriter) writeFile(name string, f *File) error {
	w.beginFrame(ckptPartFile, name)
	w.buf = le64(w.buf, f.size.Load())
	npos := len(w.buf)
	w.buf = le32(w.buf, 0) // nblocks backfilled at endFrame time
	n := uint32(0)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx, b := range s.blocks {
			w.buf = le64(w.buf, idx)
			w.buf = append(w.buf, b...)
			n++
		}
		s.mu.Unlock()
		if len(w.buf)-w.start >= ckptChunkBytes && i < len(f.shards)-1 {
			putLE32(w.buf[npos:], n)
			w.endFrame()
			if err := w.flush(); err != nil {
				return err
			}
			w.beginFrame(ckptPartCont, name)
			npos = len(w.buf)
			w.buf = le32(w.buf, 0)
			n = 0
		}
	}
	putLE32(w.buf[npos:], n)
	w.endFrame()
	return w.flush()
}

// writeCheckpoint snapshots every file of fs into shard's checkpoint,
// atomically replacing the previous one. The snapshot streams to disk
// through a bounded buffer (see ckptWriter); when peak is non-nil the
// high-water buffer size is folded into it for observability.
func writeCheckpoint(d Dir, shard int, gen, floor uint64, fs *FS, peak *atomic.Int64) error {
	names := fs.List()
	base := shardBase(shard)
	cf, err := d.Create(base + ckptTmpSufx)
	if err != nil {
		return err
	}
	w := &ckptWriter{f: cf, buf: make([]byte, 0, ckptChunkBytes+walFrameHdr)}
	w.buf = append(w.buf, ckptMagic2...)
	w.buf = le32(w.buf, uint32(shard))
	w.buf = le64(w.buf, gen)
	w.buf = le64(w.buf, floor)
	nfiles := uint32(0)
	err = func() error {
		for _, name := range names {
			if len(name) > maxWalName {
				// Unreachable through pfs (Create caps names at MaxName),
				// but never truncate: a wrong u16 length would make this
				// checkpoint restore the wrong name or fail to parse.
				return errNameTooLong(name)
			}
			f, err := fs.Open(name)
			if err != nil {
				continue // removed since List; its absence is the truth
			}
			if err := w.writeFile(name, f); err != nil {
				return err
			}
			nfiles++
		}
		w.beginFrame(ckptPartEnd, "")
		w.buf = le32(w.buf, nfiles)
		w.endFrame()
		if err := w.flush(); err != nil {
			return err
		}
		return cf.Sync()
	}()
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if peak != nil {
		for {
			cur := peak.Load()
			if w.peak <= cur || peak.CompareAndSwap(cur, w.peak) {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	if err := d.Rename(base+ckptTmpSufx, base+ckptSuffix); err != nil {
		return err
	}
	return d.Sync()
}

// CheckpointFile is one file recovered from a checkpoint; Snapshot is
// the raw snapshot bytes, applied via File.ApplySnapshot (or, inside
// recovery, applyFileSnapshot).
type CheckpointFile struct {
	Name     string
	Snapshot []byte
}

// ckptFile is the historical internal name; recovery still uses it.
type ckptFile = CheckpointFile

// ReadCheckpoint loads shard's checkpoint from d: the files it holds
// and the LSN floor they reflect. An absent checkpoint is an empty one
// with floor 0. The replication layer reads it to bootstrap a cold
// follower; callers must serialize against checkpoint writes (the
// journal's per-shard checkpoint mutex).
func ReadCheckpoint(d Dir, shard int) ([]CheckpointFile, uint64, error) {
	files, _, floor, err := readCheckpoint(d, shard)
	return files, floor, err
}

// readCheckpoint loads shard's checkpoint; an absent checkpoint is an
// empty one (fresh shard or never checkpointed). A malformed checkpoint
// is an error: checkpoints are written atomically (tmp + rename), so
// unlike a log tail, a visible-but-corrupt one means real damage the
// operator must see rather than silently serve over.
func readCheckpoint(d Dir, shard int) (files []ckptFile, gen, floor uint64, err error) {
	content, err := d.ReadFile(shardBase(shard) + ckptSuffix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	if len(content) >= ckptHdrLen && string(content[:8]) == ckptMagic {
		return readCheckpointV1(content, shard)
	}
	if len(content) < ckptHdr2Len || string(content[:8]) != ckptMagic2 {
		return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: bad header", shard)
	}
	if got := int(le32get(content[8:])); got != shard {
		return nil, 0, 0, fmt.Errorf("pfs: checkpoint of shard %d found in shard %d's slot", got, shard)
	}
	gen = le64get(content[12:])
	floor = le64get(content[20:])
	b := content[ckptHdr2Len:]
	idx := make(map[string]int) // name → files index, for continuation merges
	frame := 0
	sealed := false
	for len(b) > 0 {
		frame++
		if sealed {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: data after trailer", shard)
		}
		if len(b) < walFrameHdr {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at frame %d", shard, frame)
		}
		ln := int(le32get(b))
		if ln > maxWalRecord || walFrameHdr+ln > len(b) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at frame %d", shard, frame)
		}
		body := b[walFrameHdr : walFrameHdr+ln]
		if crc32.ChecksumIEEE(body) != le32get(b[4:]) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d fails CRC", shard, frame)
		}
		b = b[walFrameHdr+ln:]
		c := cur{b: body}
		switch part := c.u8(); part {
		case ckptPartFile:
			name := string(c.take(int(c.u16())))
			snap := c.rest()
			if c.err {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d malformed", shard, frame)
			}
			if _, dup := idx[name]; dup {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: duplicate file %q", shard, name)
			}
			idx[name] = len(files)
			files = append(files, ckptFile{Name: name, Snapshot: snap})
		case ckptPartCont:
			name := string(c.take(int(c.u16())))
			nb := c.u32()
			ext := c.rest()
			if c.err || len(ext) != int(nb)*(8+BlockSize) {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d malformed", shard, frame)
			}
			i, ok := idx[name]
			if !ok {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: continuation of unknown file %q", shard, name)
			}
			// Merge into the base snapshot. Copy: the base aliases
			// content, and appending in place would stomp the frames
			// that follow it.
			snap := files[i].Snapshot
			if len(snap) < 12 {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d malformed", shard, frame)
			}
			merged := make([]byte, 0, len(snap)+len(ext))
			merged = append(merged, snap...)
			merged = append(merged, ext...)
			putLE32(merged[8:], le32get(snap[8:])+nb)
			files[i].Snapshot = merged
		case ckptPartEnd:
			nfiles := c.u32()
			if c.err || len(c.rest()) != 0 {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d malformed", shard, frame)
			}
			if int(nfiles) != len(files) {
				return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: trailer says %d files, read %d", shard, nfiles, len(files))
			}
			sealed = true
		default:
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: frame %d has unknown part %d", shard, frame, part)
		}
	}
	if !sealed {
		return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: missing trailer", shard)
	}
	return files, gen, floor, nil
}

// readCheckpointV1 parses the pre-streaming checkpoint format: nfiles
// in the header, exactly one frame per file, no trailer.
func readCheckpointV1(content []byte, shard int) (files []ckptFile, gen, floor uint64, err error) {
	if got := int(le32get(content[8:])); got != shard {
		return nil, 0, 0, fmt.Errorf("pfs: checkpoint of shard %d found in shard %d's slot", got, shard)
	}
	gen = le64get(content[12:])
	floor = le64get(content[20:])
	nfiles := int(le32get(content[28:]))
	b := content[ckptHdrLen:]
	for i := 0; i < nfiles; i++ {
		if len(b) < walFrameHdr {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at file %d/%d", shard, i, nfiles)
		}
		ln := int(le32get(b))
		if ln > maxWalRecord || walFrameHdr+ln > len(b) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at file %d/%d", shard, i, nfiles)
		}
		body := b[walFrameHdr : walFrameHdr+ln]
		if crc32.ChecksumIEEE(body) != le32get(b[4:]) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: file %d/%d fails CRC", shard, i, nfiles)
		}
		c := cur{b: body}
		name := string(c.take(int(c.u16())))
		snap := c.rest()
		if c.err {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: file %d/%d malformed", shard, i, nfiles)
		}
		files = append(files, ckptFile{Name: name, Snapshot: snap})
		b = b[walFrameHdr+ln:]
	}
	return files, gen, floor, nil
}
