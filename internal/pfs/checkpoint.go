package pfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
)

// Checkpoint file layout — one per shard, written atomically via
// .ckpt.tmp + rename:
//
//	header = magic:"PFSCKP1\n" shard:u32 gen:u64 lsnFloor:u64 nfiles:u32
//	file   = len:u32 crc:u32 body        (same framing as WAL records)
//	body   = nameLen:u16 name snapshot
//
//	snapshot = size:u64 nblocks:u32 (blockIdx:u64 block:BlockSize)…
//
// lsnFloor is the global LSN read at log rotation: every record with
// LSN ≤ floor is reflected in the snapshot (records are logged after
// their mutation applies, and rotation happens before the snapshot is
// taken), so recovery replays only records above it. The snapshot
// encoding is shared with MIGRATE records, which carry the migrating
// file's full state so the source shard's checkpoint may forget it.

const ckptHdrLen = 8 + 4 + 8 + 8 + 4

// AppendFileSnapshot encodes f's state in the snapshot format MIGRATE
// records carry — the journal layer calls it from the MigrateWith emit
// hook, where the file is frozen and the snapshot therefore exact.
func AppendFileSnapshot(dst []byte, f *File) []byte {
	return appendFileSnapshot(dst, f)
}

// appendFileSnapshot encodes f's resident blocks and size watermark.
// Blocks are copied under their spinlocks, so each block is internally
// consistent; a mutation concurrent with the snapshot is in the log and
// replay makes the file whole. For a frozen file (migration) the
// snapshot is exact.
func appendFileSnapshot(dst []byte, f *File) []byte {
	dst = le64(dst, f.size.Load())
	npos := len(dst)
	dst = le32(dst, 0) // nblocks backfilled
	n := uint32(0)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx, b := range s.blocks {
			dst = le64(dst, idx)
			dst = append(dst, b...)
			n++
		}
		s.mu.Unlock()
	}
	putLE32(dst[npos:], n)
	return dst
}

// ApplySnapshot replaces f's state with the snapshot in b (the format
// MIGRATE records and checkpoints carry), under an exclusive full-range
// lock so it is consistent against concurrently served reads — the
// path a replica uses to install leader snapshots on a live store. The
// lock follows migration forwarding, so the bytes land on the file's
// live incarnation.
func (f *File) ApplySnapshot(b []byte) error {
	f, r := f.lockResolved(Op{}, 0, ^uint64(0), true)
	defer r.release()
	return applyFileSnapshot(f, b)
}

// applyFileSnapshot replaces f's state with the snapshot in b. The
// caller owns f exclusively (recovery replay).
func applyFileSnapshot(f *File, b []byte) error {
	c := cur{b: b}
	size := c.u64()
	n := int(c.u32())
	if c.err || size > maxWalOffset {
		return errTorn
	}
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.blocks = make(map[uint64][]byte)
		s.mu.Unlock()
	}
	for i := 0; i < n; i++ {
		idx := c.u64()
		blk := c.take(BlockSize)
		if c.err {
			return errTorn
		}
		nb := make([]byte, BlockSize)
		copy(nb, blk)
		s := f.shard(idx)
		s.mu.Lock()
		s.blocks[idx] = nb
		s.mu.Unlock()
	}
	if len(c.b) != 0 {
		return errTorn
	}
	f.size.Store(size)
	return nil
}

// writeCheckpoint snapshots every file of fs into shard's checkpoint,
// atomically replacing the previous one.
func writeCheckpoint(d Dir, shard int, gen, floor uint64, fs *FS) error {
	names := fs.List()
	buf := make([]byte, 0, ckptHdrLen+len(names)*(walFrameHdr+64))
	buf = append(buf, ckptMagic...)
	buf = le32(buf, uint32(shard))
	buf = le64(buf, gen)
	buf = le64(buf, floor)
	nfiles := uint32(0)
	npos := len(buf) // nfiles backfilled: a file can vanish mid-iteration
	buf = le32(buf, 0)
	for _, name := range names {
		if len(name) > maxWalName {
			// Unreachable through pfs (Create caps names at MaxName),
			// but never truncate: a wrong u16 length would make this
			// checkpoint restore the wrong name or fail to parse.
			return errNameTooLong(name)
		}
		f, err := fs.Open(name)
		if err != nil {
			continue // removed since List; its absence is the truth
		}
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		buf = le16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = appendFileSnapshot(buf, f)
		body := buf[start+walFrameHdr:]
		putLE32(buf[start:], uint32(len(body)))
		putLE32(buf[start+4:], crc32.ChecksumIEEE(body))
		nfiles++
	}
	putLE32(buf[npos:], nfiles)

	base := shardBase(shard)
	cf, err := d.Create(base + ckptTmpSufx)
	if err != nil {
		return err
	}
	if _, err := cf.Write(buf); err == nil {
		err = cf.Sync()
	}
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := d.Rename(base+ckptTmpSufx, base+ckptSuffix); err != nil {
		return err
	}
	return d.Sync()
}

// CheckpointFile is one file recovered from a checkpoint; Snapshot is
// the raw snapshot bytes, applied via File.ApplySnapshot (or, inside
// recovery, applyFileSnapshot).
type CheckpointFile struct {
	Name     string
	Snapshot []byte
}

// ckptFile is the historical internal name; recovery still uses it.
type ckptFile = CheckpointFile

// ReadCheckpoint loads shard's checkpoint from d: the files it holds
// and the LSN floor they reflect. An absent checkpoint is an empty one
// with floor 0. The replication layer reads it to bootstrap a cold
// follower; callers must serialize against checkpoint writes (the
// journal's per-shard checkpoint mutex).
func ReadCheckpoint(d Dir, shard int) ([]CheckpointFile, uint64, error) {
	files, _, floor, err := readCheckpoint(d, shard)
	return files, floor, err
}

// readCheckpoint loads shard's checkpoint; an absent checkpoint is an
// empty one (fresh shard or never checkpointed). A malformed checkpoint
// is an error: checkpoints are written atomically (tmp + rename), so
// unlike a log tail, a visible-but-corrupt one means real damage the
// operator must see rather than silently serve over.
func readCheckpoint(d Dir, shard int) (files []ckptFile, gen, floor uint64, err error) {
	content, err := d.ReadFile(shardBase(shard) + ckptSuffix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	if len(content) < ckptHdrLen || string(content[:8]) != ckptMagic {
		return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: bad header", shard)
	}
	if got := int(le32get(content[8:])); got != shard {
		return nil, 0, 0, fmt.Errorf("pfs: checkpoint of shard %d found in shard %d's slot", got, shard)
	}
	gen = le64get(content[12:])
	floor = le64get(content[20:])
	nfiles := int(le32get(content[28:]))
	b := content[ckptHdrLen:]
	for i := 0; i < nfiles; i++ {
		if len(b) < walFrameHdr {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at file %d/%d", shard, i, nfiles)
		}
		ln := int(le32get(b))
		if ln > maxWalRecord || walFrameHdr+ln > len(b) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: truncated at file %d/%d", shard, i, nfiles)
		}
		body := b[walFrameHdr : walFrameHdr+ln]
		if crc32.ChecksumIEEE(body) != le32get(b[4:]) {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: file %d/%d fails CRC", shard, i, nfiles)
		}
		c := cur{b: body}
		name := string(c.take(int(c.u16())))
		snap := c.rest()
		if c.err {
			return nil, 0, 0, fmt.Errorf("pfs: shard %d checkpoint: file %d/%d malformed", shard, i, nfiles)
		}
		files = append(files, ckptFile{Name: name, Snapshot: snap})
		b = b[walFrameHdr+ln:]
	}
	return files, gen, floor, nil
}
