package pfs

import (
	"sync"

	"repro/internal/core"
)

// shardSlots bounds the concurrently leased Ops per shard domain. Batch
// servers lease one Op per connection per touched shard, so this is the
// per-shard connection concurrency ceiling, not a request limit.
const shardSlots = 128

// Sharded is a file system split into N independent shards: each shard
// has its own core.Domain (slot table, arena, node pools), its own block
// tables and its own namespace lock, with files placed by a pluggable
// Placement policy (default: FNV hash of the name). Operations on files
// in different shards therefore share no lock state whatsoever — the
// range-lock analogue of per-VMA / per-file sharding: the lock variant
// decides how disjoint ranges of one file interleave, the shards make
// disjoint files scale with cores. With a MapPlacement, Migrate moves a
// hot file's data and lock state between shards while it is being
// served.
type Sharded struct {
	shards    []*FS
	placement Placement
	migMu     sync.Mutex // serializes Migrate/Remove so a route never dangles
}

// NewSharded creates a file system of n shards (n < 1 is treated as 1),
// each with a fresh domain whose locks are built by mk (nil selects
// DefaultDomainLockFactory), placed by the default hash.
func NewSharded(n int, mk DomainLockFactory) *Sharded {
	return NewShardedPlacement(n, mk, nil)
}

// NewShardedPlacement is NewSharded with an explicit placement policy
// (nil selects HashPlacement).
func NewShardedPlacement(n int, mk DomainLockFactory, p Placement) *Sharded {
	if n < 1 {
		n = 1
	}
	if p == nil {
		p = HashPlacement{}
	}
	s := &Sharded{shards: make([]*FS, n), placement: p}
	for i := range s.shards {
		s.shards[i] = NewInDomain(core.NewDomain(shardSlots), mk)
	}
	return s
}

// ShardedFrom wraps existing file systems as the shards of one store,
// in order, placed by the default hash. It panics on an empty argument
// list. Useful for tests and for serving a pre-built single FS through
// the sharded surface.
func ShardedFrom(fss ...*FS) *Sharded {
	if len(fss) == 0 {
		panic("pfs: ShardedFrom of no file systems")
	}
	return &Sharded{shards: fss, placement: HashPlacement{}}
}

// fnv64 is the FNV-1a fold over a file name that every stateless
// placement derives from — one definition, so hash and rendezvous
// placement can never silently diverge on how a name is digested.
func fnv64(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// ShardOf places a file name among nshards shards (FNV-1a). Exported so
// load generators and tests can predict placement without a Sharded.
func ShardOf(name string, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	return int(fnv64(name) % uint64(nshards))
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Placement returns the store's placement policy.
func (s *Sharded) Placement() Placement { return s.placement }

// PlacementVersion is the current placement generation (see
// Placement.Version): callers caching name→shard resolutions re-resolve
// when it moves. Constant 0 for static placements.
func (s *Sharded) PlacementVersion() uint64 { return s.placement.Version() }

// ShardIndex returns the shard owning name under the current placement.
func (s *Sharded) ShardIndex(name string) int {
	return s.placement.Place(name, len(s.shards))
}

// Shard returns the i'th shard file system.
func (s *Sharded) Shard(i int) *FS { return s.shards[i] }

// shardFor routes a name to its owning shard.
func (s *Sharded) shardFor(name string) *FS { return s.shards[s.ShardIndex(name)] }

// Create adds an empty file in the shard owning name. It holds the
// migration lock: resolving the shard and inserting the name are two
// steps, and a migration flipping this very name between them would
// let Create insert a duplicate into the shard the name just left.
// Serializing with Migrate (which holds the lock for its whole
// critical section) closes that window; creation is a namespace op,
// rare next to data traffic, so the store-wide lock does not matter.
//
// Do not call Create, Remove or Migrate while holding a leased context
// (ShardedOp.Op) of this store: Migrate leases a slot while holding
// the migration lock, so a caller blocking here with a slot held is
// half of a hold-and-wait cycle. Release the lease first (the server
// does exactly this in its OPEN+create and MIGRATE paths).
func (s *Sharded) Create(name string) (*File, error) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.shardFor(name).Create(name)
}

// Open returns an existing file from its owning shard.
func (s *Sharded) Open(name string) (*File, error) {
	f, _, err := s.Resolve(name)
	return f, err
}

// Resolve returns an existing file together with the shard it was
// found on, under a placement snapshot that stayed stable across the
// lookup: resolving the shard and searching its namespace are two
// steps, and a migration flipping the name between them would yield a
// spurious not-exist (or a stale shard attribution). Any flip bumps
// the placement version, so a version unchanged around the lookup
// proves the answer consistent; otherwise retry (migrations are rare
// and the loop settles as soon as one isn't mid-flight).
func (s *Sharded) Resolve(name string) (*File, int, error) {
	for {
		v := s.placement.Version()
		i := s.placement.Place(name, len(s.shards))
		f, err := s.shards[i].Open(name)
		if s.placement.Version() == v {
			return f, i, err
		}
	}
}

// Stat returns metadata for an existing file by name.
func (s *Sharded) Stat(name string) (FileInfo, error) {
	f, _, err := s.Resolve(name)
	if err != nil {
		return FileInfo{}, err
	}
	return f.Stat(), nil
}

// Remove deletes a file from its owning shard's namespace. It holds the
// migration lock so a concurrent Migrate cannot resurrect the name from
// its half-moved copy, and drops the name's placement pin so a later
// file of the same name places by the fallback again.
func (s *Sharded) Remove(name string) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	err := s.shardFor(name).Remove(name)
	if err == nil {
		if mp, ok := s.placement.(*MapPlacement); ok {
			mp.Delete(name)
		}
	}
	return err
}

// List returns the file names across all shards (unordered).
func (s *Sharded) List() []string {
	var out []string
	for _, fs := range s.shards {
		out = append(out, fs.List()...)
	}
	return out
}

// Close closes every shard.
func (s *Sharded) Close() {
	for _, fs := range s.shards {
		fs.Close()
	}
}

// ShardedOp threads leased operation contexts through a batch of
// operations spanning shards, leasing lazily and holding at most ONE
// shard's context at a time: the first operation against a shard leases
// its context, further operations on the same shard reuse it, and an
// operation against a different shard releases the current lease before
// taking the new one. A batch that touches one shard — the common case
// under skewed traffic, and the per-connection pattern the rangestore
// server produces — therefore pays exactly one slot lease however many
// operations it issues.
//
// Holding one lease at a time is what makes cross-shard batches
// deadlock-free by construction: Domain.BeginOp blocks when a domain's
// slots are exhausted, so a caller that held shard A's slot while
// blocking for shard B's would be one half of a hold-and-wait cycle
// (another caller holding B while waiting on A). A ShardedOp never
// waits while holding, so every blocked lessee holds nothing and the
// system always makes progress.
//
// A ShardedOp serves one goroutine at a time. End releases the held
// context (if any), so one ShardedOp can be reused batch after batch
// (servers keep one per connection).
type ShardedOp struct {
	s   *Sharded
	op  Op
	cur int // shard op is leased from; -1 when nothing is held
}

// BeginOp returns an empty per-shard Op source; contexts are leased on
// first use of each shard. Return it with End after every batch.
func (s *Sharded) BeginOp() *ShardedOp {
	return &ShardedOp{s: s, cur: -1}
}

// Op returns a leased context for shard i, releasing any context held
// for a different shard first.
func (so *ShardedOp) Op(i int) Op {
	if so.cur != i {
		so.End()
		so.op = so.s.shards[i].BeginOp()
		so.cur = i
	}
	return so.op
}

// End releases the held context, if any. The ShardedOp remains valid
// for further use.
func (so *ShardedOp) End() {
	if so.cur >= 0 {
		so.op.End()
		so.op = Op{}
		so.cur = -1
	}
}
