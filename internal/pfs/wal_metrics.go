// WAL observation hooks. The WAL reports into a WALMetrics — a bundle
// of nil-safe obs handles — instead of owning a registry, so the
// journal layer decides naming and labeling and an unmetered WAL pays
// a single pointer check per flush round. The bundle is shared across
// shard WALs on purpose: fsync latency and group-commit batch size are
// store-wide distributions (obs histograms are concurrent-safe), while
// per-shard positions (buffered bytes, checkpoint backlog, frontiers)
// are exposed as gauge funcs over each WAL's own accessors.
package pfs

import (
	"time"

	"repro/internal/obs"
)

// WALMetrics is the set of observation hooks a WAL reports into. Any
// field may be nil (obs methods on nil receivers no-op); a nil
// *WALMetrics disables even the timing reads around fsync.
type WALMetrics struct {
	FsyncNs        *obs.Histogram // latency of each group-commit fsync
	Fsyncs         *obs.Counter   // fsync calls issued by flush rounds
	BatchRecords   *obs.Histogram // records per write round (group-commit batch size)
	BatchBytes     *obs.Histogram // bytes per write round
	FlushedBytes   *obs.Counter   // total log bytes written
	CheckpointNs   *obs.Histogram // wall time of each successful checkpoint
	Checkpoints    *obs.Counter   // checkpoints completed
	CheckpointErrs *obs.Counter   // checkpoints failed (incl. already-in-progress refusals)
	PipelineDepth  *obs.Histogram // in-flight fsyncs observed as each one is issued
	StallNs        *obs.Histogram // time appenders spent blocked on the buffer cap
	Stalls         *obs.Counter   // appends that hit the buffer cap
}

// SetMetrics installs (or clears) the WAL's observation hooks. Safe
// against concurrent log traffic; metric continuity across a swap is
// the caller's problem.
func (w *WAL) SetMetrics(m *WALMetrics) {
	w.mu.Lock()
	w.m = m
	w.mu.Unlock()
}

// BufferedBytes returns how many appended bytes have not yet reached
// the log file — the group-commit buffer depth a scrape-time gauge
// reports (and what the SetMaxBuffer cap bounds).
func (w *WAL) BufferedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendEnd.Load() - w.writeEnd
}

// SyncLag returns how far the write frontier runs ahead of the sync
// frontier — bytes in the file an fsync has not yet covered, i.e. the
// depth of the commit pipeline in bytes. Zero whenever the pipeline is
// drained (and always, under the serialized baseline, between rounds).
func (w *WAL) SyncLag() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeEnd - w.syncEnd
}

// CheckpointPeakBuffer returns the largest staging buffer any
// checkpoint of this shard has used — the bound the streaming writer
// holds in memory instead of the whole shard snapshot.
func (w *WAL) CheckpointPeakBuffer() int64 { return w.ckptPeak.Load() }

// Checkpoint snapshots fs and truncates the log (see runCheckpoint for
// the full protocol), observing duration and outcome.
func (w *WAL) Checkpoint(fs *FS) error {
	w.mu.Lock()
	m := w.m
	w.mu.Unlock()
	if m == nil {
		return w.runCheckpoint(fs)
	}
	start := time.Now()
	err := w.runCheckpoint(fs)
	if err != nil {
		m.CheckpointErrs.Add(1)
		return err
	}
	m.Checkpoints.Add(1)
	m.CheckpointNs.ObserveDuration(time.Since(start))
	return nil
}
