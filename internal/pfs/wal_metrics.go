// WAL observation hooks. The WAL reports into a WALMetrics — a bundle
// of nil-safe obs handles — instead of owning a registry, so the
// journal layer decides naming and labeling and an unmetered WAL pays
// a single pointer check per flush round. The bundle is shared across
// shard WALs on purpose: fsync latency and group-commit batch size are
// store-wide distributions (obs histograms are concurrent-safe), while
// per-shard positions (buffered bytes, checkpoint backlog, frontiers)
// are exposed as gauge funcs over each WAL's own accessors.
package pfs

import (
	"time"

	"repro/internal/obs"
)

// WALMetrics is the set of observation hooks a WAL reports into. Any
// field may be nil (obs methods on nil receivers no-op); a nil
// *WALMetrics disables even the timing reads around fsync.
type WALMetrics struct {
	FsyncNs        *obs.Histogram // latency of each group-commit fsync
	Fsyncs         *obs.Counter   // fsync calls issued by flush rounds
	BatchRecords   *obs.Histogram // records per flush round (group-commit batch size)
	BatchBytes     *obs.Histogram // bytes per flush round
	FlushedBytes   *obs.Counter   // total log bytes written
	CheckpointNs   *obs.Histogram // wall time of each successful checkpoint
	Checkpoints    *obs.Counter   // checkpoints completed
	CheckpointErrs *obs.Counter   // checkpoints failed (incl. already-in-progress refusals)
}

// SetMetrics installs (or clears) the WAL's observation hooks. Safe
// against concurrent log traffic; metric continuity across a swap is
// the caller's problem.
func (w *WAL) SetMetrics(m *WALMetrics) {
	w.mu.Lock()
	w.m = m
	w.mu.Unlock()
}

// BufferedBytes returns how many appended bytes have not yet reached
// the log file — the group-commit buffer depth a scrape-time gauge
// reports.
func (w *WAL) BufferedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendEnd.Load() - w.writeEnd
}

// Checkpoint snapshots fs and truncates the log (see runCheckpoint for
// the full protocol), observing duration and outcome.
func (w *WAL) Checkpoint(fs *FS) error {
	w.mu.Lock()
	m := w.m
	w.mu.Unlock()
	if m == nil {
		return w.runCheckpoint(fs)
	}
	start := time.Now()
	err := w.runCheckpoint(fs)
	if err != nil {
		m.CheckpointErrs.Add(1)
		return err
	}
	m.Checkpoints.Add(1)
	m.CheckpointNs.ObserveDuration(time.Since(start))
	return nil
}
