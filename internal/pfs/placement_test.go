package pfs

import (
	"fmt"
	"testing"
)

func TestHashPlacementMatchesShardOf(t *testing.T) {
	p := HashPlacement{}
	if p.Name() != "hash" || p.Version() != 0 {
		t.Fatalf("hash placement identity: %q v%d", p.Name(), p.Version())
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("f-%03d", i)
		if p.Place(name, 8) != ShardOf(name, 8) {
			t.Fatalf("Place(%q) != ShardOf", name)
		}
	}
}

func TestRendezvousStableAndSpreads(t *testing.T) {
	p := NewRendezvous(nil)
	const n, files = 8, 512
	var counts [n]int
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("rdv-%04d", i)
		s := p.Place(name, n)
		if s < 0 || s >= n {
			t.Fatalf("Place(%q) = %d out of range", name, s)
		}
		if s != p.Place(name, n) {
			t.Fatalf("Place(%q) not stable", name)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no files: %v", s, counts)
		}
		if c > files/2 {
			t.Fatalf("shard %d got %d of %d files: %v", s, c, files, counts)
		}
	}
	if p.Place("anything", 1) != 0 || p.Place("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

// TestRendezvousWeights: a zero-weight shard takes nothing, and a shard
// with double weight takes roughly double the uniform share.
func TestRendezvousWeights(t *testing.T) {
	const n, files = 4, 4000
	p := NewRendezvous([]float64{1, 2, 1, 0})
	var counts [n]int
	for i := 0; i < files; i++ {
		counts[p.Place(fmt.Sprintf("w-%05d", i), n)]++
	}
	if counts[3] != 0 {
		t.Fatalf("zero-weight shard took %d files: %v", counts[3], counts)
	}
	// Shares among eligible shards should be ~1:2:1 (25%, 50%, 25% of
	// files). Allow wide slack — this is a statistical property.
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("double-weight shard is not the biggest: %v", counts)
	}
	if lo, hi := files/8, files/2; counts[0] < lo || counts[2] < lo || counts[1] > hi+files/8 {
		t.Fatalf("weighted shares far from 1:2:1: %v", counts)
	}
}

// TestRendezvousMinimalDisruption: adding a shard moves names only into
// the new shard, never between old ones — the property modulo hashing
// lacks.
func TestRendezvousMinimalDisruption(t *testing.T) {
	p := NewRendezvous(nil)
	const files = 500
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("md-%04d", i)
		before := p.Place(name, 8)
		after := p.Place(name, 9)
		if after != before && after != 8 {
			t.Fatalf("%q moved %d -> %d when shard 8 was added", name, before, after)
		}
	}
}

func TestMapPlacement(t *testing.T) {
	p := NewMapPlacement(nil)
	if p.Version() != 0 {
		t.Fatalf("fresh map version = %d", p.Version())
	}
	// Empty map behaves like the hash.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("m-%03d", i)
		if p.Place(name, 8) != ShardOf(name, 8) {
			t.Fatalf("empty map diverges from hash for %q", name)
		}
	}
	p.Set("m-000", 5)
	if v := p.Version(); v != 1 {
		t.Fatalf("version after Set = %d", v)
	}
	if s := p.Place("m-000", 8); s != 5 {
		t.Fatalf("pinned placement = %d, want 5", s)
	}
	// An entry out of range for this shard count falls back to the hash.
	if s := p.Place("m-000", 4); s != ShardOf("m-000", 4) {
		t.Fatalf("out-of-range pin placed at %d", s)
	}
	if pins := p.Pinned(); len(pins) != 1 || pins["m-000"] != 5 {
		t.Fatalf("Pinned = %v", pins)
	}
	// Delete drops the pin (version bumps) and is a no-op for strangers.
	p.Delete("m-000")
	if v := p.Version(); v != 2 {
		t.Fatalf("version after Delete = %d", v)
	}
	if s := p.Place("m-000", 8); s != ShardOf("m-000", 8) {
		t.Fatalf("deleted pin still routes to %d", s)
	}
	p.Delete("never-pinned")
	if v := p.Version(); v != 2 {
		t.Fatalf("no-op Delete bumped version to %d", v)
	}
}

func TestNewPlacementAndWeights(t *testing.T) {
	for _, policy := range []string{"", "hash", "rendezvous", "map"} {
		if _, err := NewPlacement(policy, nil); err != nil {
			t.Fatalf("NewPlacement(%q): %v", policy, err)
		}
	}
	if _, err := NewPlacement("nope", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	w, err := ParseWeights(" 1, 2.5 ,0.5")
	if err != nil || len(w) != 3 || w[1] != 2.5 {
		t.Fatalf("ParseWeights = %v, %v", w, err)
	}
	if w, err := ParseWeights(""); err != nil || w != nil {
		t.Fatalf("empty weights = %v, %v", w, err)
	}
	if _, err := ParseWeights("1,x"); err == nil {
		t.Fatal("bad weight accepted")
	}
	if _, err := ParseWeights("2x3,1"); err == nil {
		t.Fatal("weight with trailing garbage accepted")
	}
	for _, bad := range []string{"NaN,1", "1,Inf"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Fatalf("non-finite weight %q accepted", bad)
		}
	}
	// All shards weighted ineligible: fall back to the hash rather than
	// silently routing everything to shard 0.
	dead := NewRendezvous([]float64{0, 0, 0, 0})
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("dead-%02d", i)
		if got, want := dead.Place(name, 4), ShardOf(name, 4); got != want {
			t.Fatalf("all-ineligible Place(%q) = %d, want hash %d", name, got, want)
		}
	}
}
