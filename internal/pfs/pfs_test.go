package pfs

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lockapi"
)

func TestNamespace(t *testing.T) {
	fs := New(nil)
	f, err := fs.Create("a")
	if err != nil || f.Name() != "a" {
		t.Fatalf("Create: %v", err)
	}
	if _, err := fs.Create("a"); err != ErrExist {
		t.Fatalf("duplicate Create = %v, want ErrExist", err)
	}
	if _, err := fs.Open("b"); err != ErrNotExist {
		t.Fatalf("Open missing = %v, want ErrNotExist", err)
	}
	if got, err := fs.Open("a"); err != nil || got != f {
		t.Fatalf("Open = %v, %v", got, err)
	}
	if names := fs.List(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("List = %v", names)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err != ErrNotExist {
		t.Fatalf("double Remove = %v", err)
	}
	fs.Close()
	if _, err := fs.Create("x"); err != ErrClosed {
		t.Fatalf("Create after Close = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("f")
	msg := []byte("hello, range locks")
	if n, err := f.WriteAt(msg, 100); n != len(msg) || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if f.Size() != 100+uint64(len(msg)) {
		t.Fatalf("Size = %d", f.Size())
	}
	got := make([]byte, len(msg))
	if n, err := f.ReadAt(got, 100); n != len(msg) || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	// The hole before offset 100 reads as zeros.
	hole := make([]byte, 100)
	if _, err := f.ReadAt(hole, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("f")
	f.WriteAt([]byte("abcd"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 4 || err != io.EOF {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read past EOF = %v", err)
	}
}

func TestCrossBlockWrites(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("f")
	data := make([]byte, 3*BlockSize+123)
	for i := range data {
		data[i] = byte(i * 31)
	}
	off := uint64(BlockSize - 57) // straddle four blocks
	f.WriteAt(data, off)
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-block round trip corrupted data")
	}
}

func TestTruncate(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("f")
	data := bytes.Repeat([]byte{0xAA}, 2*BlockSize)
	f.WriteAt(data, 0)
	f.Truncate(BlockSize / 2)
	if f.Size() != BlockSize/2 {
		t.Fatalf("Size = %d", f.Size())
	}
	// Regrow: the clipped region must read as zeros, not stale bytes.
	f.Truncate(2 * BlockSize)
	buf := make([]byte, BlockSize)
	if _, err := f.ReadAt(buf, BlockSize/2); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("stale byte %d = %#x after truncate regrow", i, b)
		}
	}
	if f.Blocks() > 1 {
		t.Fatalf("blocks not released: %d", f.Blocks())
	}
}

// TestConcurrentDisjointWriters is the original file-locking motivation:
// many writers stream into disjoint stripes of one file; every stripe
// must survive intact.
func TestConcurrentDisjointWriters(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    LockFactory
	}{
		{"list-rw", nil},
		{"kernel-rw", func() lockapi.Locker { return lockapi.NewKernelRW() }},
		{"pnova-rw", func() lockapi.Locker { return lockapi.NewPnovaRW(1<<30, 1024) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			fs := New(mk.f)
			f, _ := fs.Create("shared")
			const (
				writers    = 8
				stripeSize = 8192
				rounds     = 60
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					stripe := make([]byte, stripeSize)
					for r := 0; r < rounds; r++ {
						for i := range stripe {
							stripe[i] = byte(w)
						}
						f.WriteAt(stripe, uint64(w*stripeSize))
					}
				}(w)
			}
			wg.Wait()
			buf := make([]byte, stripeSize)
			for w := 0; w < writers; w++ {
				if _, err := f.ReadAt(buf, uint64(w*stripeSize)); err != nil {
					t.Fatal(err)
				}
				for i, b := range buf {
					if b != byte(w) {
						t.Fatalf("stripe %d byte %d = %d", w, i, b)
					}
				}
			}
		})
	}
}

// TestConcurrentAppends: every append owns a disjoint reservation; after
// the storm, each record must be present exactly once and intact.
func TestConcurrentAppends(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("log")
	const (
		writers = 8
		perW    = 200
		recSize = 64
	)
	offs := make([][]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := make([]byte, recSize)
			for i := 0; i < perW; i++ {
				binary.LittleEndian.PutUint32(rec, uint32(w))
				binary.LittleEndian.PutUint32(rec[4:], uint32(i))
				crc := crc32.ChecksumIEEE(rec[:recSize-4])
				binary.LittleEndian.PutUint32(rec[recSize-4:], crc)
				off, err := f.Append(rec)
				if err != nil {
					t.Error(err)
					return
				}
				offs[w] = append(offs[w], off)
			}
		}(w)
	}
	wg.Wait()
	if f.Size() != writers*perW*recSize {
		t.Fatalf("Size = %d, want %d", f.Size(), writers*perW*recSize)
	}
	seen := map[uint64]bool{}
	rec := make([]byte, recSize)
	for w := range offs {
		for i, off := range offs[w] {
			if off%recSize != 0 || seen[off] {
				t.Fatalf("bad/duplicate reservation %d", off)
			}
			seen[off] = true
			if _, err := f.ReadAt(rec, off); err != nil {
				t.Fatal(err)
			}
			want := binary.LittleEndian.Uint32(rec[recSize-4:])
			if crc := crc32.ChecksumIEEE(rec[:recSize-4]); crc != want {
				t.Fatalf("record (w=%d,i=%d) torn: crc %#x != %#x", w, i, crc, want)
			}
		}
	}
}

// TestRandomOpsAgainstBuffer cross-checks the file against a flat byte
// slice model via testing/quick-style random sequences (single-threaded:
// semantics, not races).
func TestRandomOpsAgainstBuffer(t *testing.T) {
	fs := New(nil)
	f, _ := fs.Create("m")
	const span = 4 * BlockSize
	model := make([]byte, span)
	modelSize := uint64(0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		off := uint64(rng.Intn(span / 2))
		n := 1 + rng.Intn(span/2)
		switch rng.Intn(4) {
		case 0, 1: // write
			p := make([]byte, n)
			rng.Read(p)
			f.WriteAt(p, off)
			copy(model[off:], p)
			if off+uint64(n) > modelSize {
				modelSize = off + uint64(n)
			}
		case 2: // read & compare
			got := make([]byte, n)
			rn, _ := f.ReadAt(got, off)
			wantN := 0
			if off < modelSize {
				wantN = int(modelSize - off)
				if wantN > n {
					wantN = n
				}
			}
			if rn != wantN {
				t.Fatalf("step %d: read %d bytes, want %d", i, rn, wantN)
			}
			if !bytes.Equal(got[:rn], model[off:off+uint64(rn)]) {
				t.Fatalf("step %d: read mismatch at %d", i, off)
			}
		default: // truncate
			nsz := uint64(rng.Intn(span))
			f.Truncate(nsz)
			if nsz < modelSize {
				for j := nsz; j < modelSize; j++ {
					model[j] = 0
				}
			}
			modelSize = nsz
		}
		if f.Size() != modelSize {
			t.Fatalf("step %d: Size = %d, model %d", i, f.Size(), modelSize)
		}
	}
}

// TestQuickHolesZero: any unwritten byte below size reads zero.
func TestQuickHolesZero(t *testing.T) {
	check := func(writeOff uint16, probe uint16) bool {
		fs := New(nil)
		f, _ := fs.Create("q")
		f.WriteAt([]byte{1}, uint64(writeOff)+1000)
		b := []byte{42}
		n, _ := f.ReadAt(b, uint64(probe))
		if uint64(probe) >= f.Size() {
			return n == 0
		}
		if uint64(probe) == uint64(writeOff)+1000 {
			return b[0] == 1
		}
		return b[0] == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
