package pfs

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func tapWAL(t *testing.T) *WAL {
	t.Helper()
	_, wals, _, err := RecoverSharded(NewMemDir(), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return wals[0]
}

func TestWALTapStreamsCommittedRecords(t *testing.T) {
	w := tapWAL(t)
	tap, err := w.Tap(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	for i := 0; i < 3; i++ {
		rec := &Record{Kind: RecWrite, Name: "f", Off: uint64(i) * 10, Data: []byte{byte(i), byte(i)}}
		end, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(end, true); err != nil {
			t.Fatal(err)
		}
		b, err := tap.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRecord(b)
		if err != nil || n != len(b) {
			t.Fatalf("tap delivered %d bytes, decoded %d: %v", len(b), n, err)
		}
		if got.LSN != rec.LSN || got.Off != rec.Off || !bytes.Equal(got.Data, rec.Data) {
			t.Fatalf("tap record = %+v, want %+v", got, rec)
		}
	}
}

// TestWALTapHoldsUnsyncedBytes: a synced tap must not leak bytes a crash
// could take back — written-but-unsynced records stay pending until the
// fsync that covers them.
func TestWALTapHoldsUnsyncedBytes(t *testing.T) {
	w := tapWAL(t)
	tap, err := w.Tap(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	rec := &Record{Kind: RecWrite, Name: "f", Off: 5, Data: []byte("unsynced")}
	end, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, false); err != nil { // written, not fsynced
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		b, _ := tap.Next(nil)
		got <- b
	}()
	select {
	case <-got:
		t.Fatal("unsynced bytes delivered to a synced tap")
	case <-time.After(50 * time.Millisecond):
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		dec, n, err := DecodeRecord(b)
		if err != nil || n != len(b) || dec.LSN != rec.LSN {
			t.Fatalf("post-sync delivery wrong: %d bytes, %v", len(b), err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("synced bytes never delivered")
	}
}

func TestWALTapLagDetaches(t *testing.T) {
	w := tapWAL(t)
	tap, err := w.Tap(8, true) // absurdly small backlog
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	end, err := w.Append(&Record{Kind: RecWrite, Name: "f", Data: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.Next(nil); !errors.Is(err, ErrTapLagged) {
		t.Fatalf("overflowed tap returned %v, want ErrTapLagged", err)
	}
}

func TestAppendPreparedGuards(t *testing.T) {
	w := tapWAL(t)
	end, err := w.Append(&Record{Kind: RecCreate, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}
	last := w.LastLSN()
	if _, err := w.AppendPrepared(&Record{Kind: RecWrite, Shard: 1, LSN: last + 1, Name: "f"}); err == nil {
		t.Fatal("foreign-shard record accepted")
	}
	if _, err := w.AppendPrepared(&Record{Kind: RecWrite, Shard: 0, LSN: last, Name: "f"}); err == nil {
		t.Fatal("stale-LSN record accepted")
	}
	// A refused prepared record is a validation error, not log damage:
	// the WAL keeps working.
	end, err = w.AppendPrepared(&Record{Kind: RecWrite, Shard: 0, LSN: last + 5, Name: "f", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != last+5 {
		t.Fatalf("LastLSN = %d, want %d", w.LastLSN(), last+5)
	}
	// Locally assigned LSNs continue above the highest replicated one.
	rec := &Record{Kind: RecWrite, Name: "f", Data: []byte("y")}
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if rec.LSN <= last+5 {
		t.Fatalf("local append LSN %d did not outrun replicated %d", rec.LSN, last+5)
	}
}

func TestSetLastLSNKeepsGlobalMonotonic(t *testing.T) {
	w := tapWAL(t)
	r1 := &Record{Kind: RecCreate, Name: "a"}
	if _, err := w.Append(r1); err != nil {
		t.Fatal(err)
	}
	w.SetLastLSN(0) // a re-bootstrapping follower may lower the shard mark
	if w.LastLSN() != 0 {
		t.Fatalf("LastLSN = %d after reset", w.LastLSN())
	}
	r2 := &Record{Kind: RecCreate, Name: "b"}
	if _, err := w.Append(r2); err != nil {
		t.Fatal(err)
	}
	if r2.LSN <= r1.LSN {
		t.Fatalf("global LSN counter went backwards: %d after %d", r2.LSN, r1.LSN)
	}
}
