package pfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Dir is the flat durable directory the write-ahead log lives in. It is
// the narrow waist between the WAL and the host: production uses OSDir
// (a real directory, real fsync), tests use MemDir, whose CrashCopy
// discards everything a power cut would — un-synced file tails and
// un-synced namespace changes — so crash recovery can be exercised
// in-process, deterministically, with injected torn writes.
//
// Durability contract (matching POSIX): bytes written to a LogFile are
// durable only after its Sync returns; Create/Rename/Remove are durable
// only after the directory's Sync returns. A crash may preserve any
// prefix of un-synced writes, including a torn final record.
type Dir interface {
	// Create makes (or truncates) a file open for appending.
	Create(name string) (LogFile, error)
	// ReadFile returns a file's full contents; fs.ErrNotExist if absent.
	ReadFile(name string) ([]byte, error)
	// List returns the current file names (unordered).
	List() ([]string, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file; removing an absent file is not an error.
	Remove(name string) error
	// Sync makes preceding namespace changes durable.
	Sync() error
}

// LogFile is one append-only log or checkpoint file.
type LogFile interface {
	Write(p []byte) (int, error)
	// Sync makes preceding writes durable.
	Sync() error
	Close() error
}

// OSDir is Dir over a real directory.
type OSDir struct{ path string }

// OpenOSDir opens (creating if needed) path as a WAL directory.
func OpenOSDir(path string) (*OSDir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	return &OSDir{path: path}, nil
}

// Path returns the underlying directory path.
func (d *OSDir) Path() string { return d.path }

func (d *OSDir) join(name string) string { return filepath.Join(d.path, filepath.Base(name)) }

// Create implements Dir.
func (d *OSDir) Create(name string) (LogFile, error) {
	return os.OpenFile(d.join(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// ReadFile implements Dir.
func (d *OSDir) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.join(name))
}

// List implements Dir.
func (d *OSDir) List() ([]string, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// Rename implements Dir.
func (d *OSDir) Rename(oldname, newname string) error {
	return os.Rename(d.join(oldname), d.join(newname))
}

// Remove implements Dir.
func (d *OSDir) Remove(name string) error {
	err := os.Remove(d.join(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Sync implements Dir: fsync the directory itself, which is what makes
// renames and creates durable on POSIX file systems.
func (d *OSDir) Sync() error {
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// memFile is one MemDir file: its bytes plus the high-water mark of what
// Sync has made "durable". The pointer is shared between the live and
// durable namespace views, mirroring how an inode outlives directory
// entries: data synced through any name survives a crash under whatever
// name the durable namespace maps to it.
type memFile struct {
	mu     sync.Mutex
	data   []byte
	synced int
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.data = append(f.data, p...)
	f.mu.Unlock()
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.mu.Lock()
	f.synced = len(f.data)
	f.mu.Unlock()
	return nil
}

func (f *memFile) Close() error { return nil }

// MemDir is an in-memory Dir with crash semantics: it tracks which bytes
// and which namespace entries have been made durable by Sync calls, and
// CrashCopy materializes the directory a power cut would leave behind.
// It exists so the kill-and-replay tests can crash a live server without
// killing the test process.
type MemDir struct {
	mu      sync.Mutex
	live    map[string]*memFile
	durable map[string]*memFile
}

// NewMemDir returns an empty in-memory WAL directory.
func NewMemDir() *MemDir {
	return &MemDir{live: make(map[string]*memFile), durable: make(map[string]*memFile)}
}

// Create implements Dir. The new name is durable only after Sync.
func (d *MemDir) Create(name string) (LogFile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &memFile{}
	d.live[name] = f
	return f, nil
}

// ReadFile implements Dir.
func (d *MemDir) ReadFile(name string) ([]byte, error) {
	d.mu.Lock()
	f, ok := d.live[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memdir: %s: %w", name, fs.ErrNotExist)
	}
	f.mu.Lock()
	out := append([]byte(nil), f.data...)
	f.mu.Unlock()
	return out, nil
}

// List implements Dir.
func (d *MemDir) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.live))
	for name := range d.live {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Rename implements Dir.
func (d *MemDir) Rename(oldname, newname string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.live[oldname]
	if !ok {
		return fmt.Errorf("memdir: rename %s: %w", oldname, fs.ErrNotExist)
	}
	d.live[newname] = f
	delete(d.live, oldname)
	return nil
}

// Remove implements Dir.
func (d *MemDir) Remove(name string) error {
	d.mu.Lock()
	delete(d.live, name)
	d.mu.Unlock()
	return nil
}

// Sync implements Dir: the current namespace becomes the durable one.
func (d *MemDir) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.durable = make(map[string]*memFile, len(d.live))
	for name, f := range d.live {
		d.durable[name] = f
	}
	return nil
}

// CrashCopy returns the directory a crash at this instant would leave
// behind: the durable namespace only, each file cut back to its synced
// length. With a non-nil rng, part of the un-synced tail may survive —
// any prefix of it, occasionally with a flipped bit — modelling the torn
// final sector a real power cut produces; recovery must treat all of it
// as untrustworthy. The copy is fully independent of the live MemDir,
// which keeps working (useful for crashing at a precise point while the
// "process" runs on).
func (d *MemDir) CrashCopy(rng *rand.Rand) *MemDir {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := NewMemDir()
	for name, f := range d.durable {
		f.mu.Lock()
		keep := f.synced
		if rng != nil && len(f.data) > keep {
			keep += rng.Intn(len(f.data) - f.synced + 1)
		}
		data := append([]byte(nil), f.data[:keep]...)
		if rng != nil && keep > f.synced && rng.Intn(4) == 0 {
			// Torn sector: flip one bit somewhere in the un-synced tail.
			i := f.synced + rng.Intn(keep-f.synced)
			data[i] ^= 1 << uint(rng.Intn(8))
		}
		f.mu.Unlock()
		nf := &memFile{data: data, synced: len(data)}
		out.live[name] = nf
		out.durable[name] = nf
	}
	return out
}
