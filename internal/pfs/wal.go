// Per-shard write-ahead logging for the sharded store.
//
// Each shard of a pfs.Sharded journals its mutations to its own
// append-only log file, so the log layer scales exactly like the data
// plane: shards share no log state, no log mutex, no fsync queue. A
// record is length-prefixed and CRC32-framed, stamped with the global
// log sequence number (LSN), the shard that wrote it and the placement
// version it executed under:
//
//	frame  = len:u32 crc:u32 body          (crc = CRC32-IEEE of body)
//	body   = kind:u8 lsn:u64 shard:u32 pver:u64 nameLen:u16 name <kind-specific>
//
//	CREATE    (nothing)
//	WRITE     off:u64 data…
//	APPEND    off:u64 data…                (the offset the append landed at)
//	TRUNCATE  size:u64
//	MIGRATE   dst:u32 snapshot…            (full file snapshot, see checkpoint.go)
//
// The LSN is drawn from one atomic counter shared by every shard's WAL,
// which is what lets recovery order one file's records across shard
// logs after migrations; within a single log LSNs are strictly
// increasing (assignment and buffer append happen under the WAL mutex),
// and the scanner treats a non-increasing LSN as corruption.
//
// Commit is a leader-based group commit, and it is pipelined in two
// phases: appenders buffer under the mutex; whoever finds no *write* in
// progress writes the whole buffer for everyone waiting; whoever then
// finds room in the sync pipeline issues an fsync covering everything
// written so far. The write stage and up to maxSyncs fsyncs overlap, so
// batch N+1 buffers, writes and submits while batch N's fsync is in
// flight — but acknowledgements are released strictly by the *sync
// frontier* (syncEnd): Commit(end, true) returns only once some fsync
// issued after end was written has returned. One fsync still amortizes
// across a pipelined batch and across concurrently committing
// connections; overlapping them additionally hides the disk's sync
// latency behind the next batch's work.
package pfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncMode says when the journal fsyncs.
type SyncMode uint8

const (
	// SyncOff never fsyncs: records reach the OS on commit, a crash
	// loses anything the OS had not flushed. Acks imply nothing.
	SyncOff SyncMode = iota
	// SyncBatch fsyncs once per committed batch (the group-commit
	// default): an acknowledged request is durable.
	SyncBatch
	// SyncAlways fsyncs every record as it is logged: same ack
	// guarantee as SyncBatch, but even unacknowledged work is bounded
	// to the single record in flight.
	SyncAlways
)

// ParseSyncMode maps the -fsync flag values onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("pfs: unknown fsync mode %q (off, batch, always)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// RecKind identifies a WAL record type.
type RecKind uint8

// The journaled mutations.
const (
	RecCreate RecKind = iota + 1
	RecWrite
	RecAppend
	RecTruncate
	RecMigrate
)

func (k RecKind) String() string {
	switch k {
	case RecCreate:
		return "CREATE"
	case RecWrite:
		return "WRITE"
	case RecAppend:
		return "APPEND"
	case RecTruncate:
		return "TRUNCATE"
	case RecMigrate:
		return "MIGRATE"
	default:
		return fmt.Sprintf("RecKind(%d)", uint8(k))
	}
}

// Record is one journaled mutation.
type Record struct {
	Kind  RecKind
	LSN   uint64
	Shard uint32 // shard whose log carries the record
	PVer  uint64 // placement version the mutation executed under
	Name  string
	Off   uint64 // WRITE, APPEND
	Size  uint64 // TRUNCATE
	Dst   uint32 // MIGRATE: destination shard
	Data  []byte // WRITE/APPEND payload; MIGRATE file snapshot
}

// maxWalRecord is a sanity bound on one record's frame; real records
// are bounded by the server's request cap and by file snapshot sizes.
const maxWalRecord = 1 << 30

// maxWalOffset bounds replayed offsets and sizes so off+len arithmetic
// can never wrap uint64 downstream (the lock layer panics on inverted
// ranges, and a corrupt or hostile log must not be able to reach that).
const maxWalOffset = 1 << 62

const walFrameHdr = 8 // len + crc

// maxWalName is the encoder's hard ceiling on a record's name: the
// frame carries nameLen as u16. pfs.Create enforces the much tighter
// MaxName at the API boundary, so hitting this is a caller bug — but
// it must be an error, never a silent truncation: a truncated length
// desynchronizes the decoder and a CRC-valid record then either trips
// the torn-tail cut (discarding every acknowledged record behind it)
// or replays garbage offsets parsed out of name bytes.
const maxWalName = 1<<16 - 1

// errNameTooLong reports a record whose name cannot be framed.
func errNameTooLong(name string) error {
	return fmt.Errorf("%w: %d byte record name (encoder limit %d)", ErrNameTooLong, len(name), maxWalName)
}

// appendRecord encodes r as one CRC-framed record appended to dst. A
// name too long for the u16 length prefix is an error; dst is returned
// unextended.
func appendRecord(dst []byte, r *Record) ([]byte, error) {
	if len(r.Name) > maxWalName {
		return dst, errNameTooLong(r.Name)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc backfilled
	dst = append(dst, byte(r.Kind))
	dst = le64(dst, r.LSN)
	dst = le32(dst, r.Shard)
	dst = le64(dst, r.PVer)
	dst = le16(dst, uint16(len(r.Name)))
	dst = append(dst, r.Name...)
	switch r.Kind {
	case RecCreate:
	case RecWrite, RecAppend:
		dst = le64(dst, r.Off)
		dst = append(dst, r.Data...)
	case RecTruncate:
		dst = le64(dst, r.Size)
	case RecMigrate:
		dst = le32(dst, r.Dst)
		dst = append(dst, r.Data...)
	default:
		panic(fmt.Sprintf("pfs: encode of unknown record kind %d", r.Kind))
	}
	body := dst[start+walFrameHdr:]
	putLE32(dst[start:], uint32(len(body)))
	putLE32(dst[start+4:], crc32.ChecksumIEEE(body))
	return dst, nil
}

// decodeRecord decodes the first record framed in b, returning it and
// the number of bytes consumed. Any framing, CRC or bounds violation
// returns an error: the caller treats it as the torn tail and stops.
// rec.Data aliases b.
func decodeRecord(b []byte) (rec Record, n int, err error) {
	if len(b) < walFrameHdr {
		return rec, 0, errTorn
	}
	ln := int(le32get(b))
	if ln > maxWalRecord || walFrameHdr+ln > len(b) {
		return rec, 0, errTorn
	}
	body := b[walFrameHdr : walFrameHdr+ln]
	if crc32.ChecksumIEEE(body) != le32get(b[4:]) {
		return rec, 0, errTorn
	}
	c := cur{b: body}
	rec.Kind = RecKind(c.u8())
	rec.LSN = c.u64()
	rec.Shard = c.u32()
	rec.PVer = c.u64()
	rec.Name = string(c.take(int(c.u16())))
	switch rec.Kind {
	case RecCreate:
	case RecWrite, RecAppend:
		rec.Off = c.u64()
		rec.Data = c.rest()
		if rec.Off > maxWalOffset || uint64(len(rec.Data)) > maxWalOffset {
			return rec, 0, errTorn
		}
	case RecTruncate:
		rec.Size = c.u64()
		if rec.Size > maxWalOffset {
			return rec, 0, errTorn
		}
	case RecMigrate:
		rec.Dst = c.u32()
		rec.Data = c.rest()
	default:
		return rec, 0, errTorn
	}
	if c.err || len(c.b) != 0 {
		return rec, 0, errTorn
	}
	return rec, walFrameHdr + ln, nil
}

var errTorn = errors.New("pfs: torn or corrupt WAL record")

// ErrTornRecord is the exported face of a framing/CRC failure, for
// callers decoding records outside the WAL itself (the replication
// stream re-verifies every shipped frame with DecodeRecord).
var ErrTornRecord = errTorn

// DecodeRecord decodes the first CRC-framed record in b, returning it
// and the bytes consumed. An incomplete frame (more bytes needed) and a
// corrupt one both return ErrTornRecord — stream consumers that can
// tell "short" from "broken" should check len(b) against the frame
// length themselves. rec.Data aliases b.
func DecodeRecord(b []byte) (rec Record, n int, err error) {
	return decodeRecord(b)
}

// EncodeRecord appends r as one CRC-framed record to dst — the exact
// bytes Append would have buffered. The replication path uses it to
// re-frame backfill records read from a scanned log.
func EncodeRecord(dst []byte, r *Record) ([]byte, error) {
	return appendRecord(dst, r)
}

// ErrWALClosed is the sticky error a closed WAL returns from Append,
// Commit and Checkpoint.
var ErrWALClosed = errors.New("pfs: WAL closed")

// Log file layout: a fixed header, then records.
const (
	walMagic    = "PFSWAL1\n"
	ckptMagic   = "PFSCKP1\n"
	walHdrLen   = 8 + 4 + 8 // magic, shard, generation
	logSuffix   = ".log"
	logNewSuffx = ".log.new"
	ckptSuffix  = ".ckpt"
	ckptTmpSufx = ".ckpt.tmp"
)

func shardBase(shard int) string { return fmt.Sprintf("shard-%03d", shard) }

// shardFileIndex parses the shard index out of a WAL-directory file
// name (shard-NNN.log, .log.new, .ckpt, .ckpt.tmp); ok is false for
// names the WAL layer does not own.
func shardFileIndex(name string) (shard int, ok bool) {
	rest, found := strings.CutPrefix(name, "shard-")
	if !found {
		return 0, false
	}
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dot])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func appendWalHeader(dst []byte, shard int, gen uint64) []byte {
	dst = append(dst, walMagic...)
	dst = le32(dst, uint32(shard))
	dst = le64(dst, gen)
	return dst
}

// scanLog validates content as shard's log and returns the records of
// its longest valid prefix plus how many trailing bytes were discarded
// as torn. A missing or headerless log scans as empty (a crash can cut
// a freshly created log anywhere, including inside the header); a log
// carrying another shard's header is an error — that is not a crash
// artifact but a misassembled directory.
func scanLog(content []byte, shard int) (recs []Record, gen uint64, torn int, err error) {
	if len(content) < walHdrLen || string(content[:8]) != walMagic {
		return nil, 0, len(content), nil
	}
	if got := int(le32get(content[8:])); got != shard {
		return nil, 0, 0, fmt.Errorf("pfs: log of shard %d found in shard %d's slot", got, shard)
	}
	gen = le64get(content[12:])
	b := content[walHdrLen:]
	lastLSN := uint64(0)
	for len(b) > 0 {
		rec, n, derr := decodeRecord(b)
		if derr != nil || rec.LSN <= lastLSN || int(rec.Shard) != shard ||
			(rec.Kind == RecMigrate && rec.Dst != rec.Shard) {
			// Torn or corrupt tail: everything from here on is
			// untrustworthy. A duplicated or re-ordered LSN means the
			// frame boundary resynchronized on garbage; a record stamped
			// with another shard — or a MIGRATE not targeting the very
			// shard whose log carries it, when migrations journal only
			// to their destination's log — cannot have been written by
			// this WAL at all.
			return recs, gen, len(b), nil
		}
		lastLSN = rec.LSN
		recs = append(recs, rec)
		b = b[n:]
	}
	return recs, gen, 0, nil
}

// DefaultCommitPipeline is the sync-stage depth a WAL starts with: how
// many fsyncs may be in flight at once before committers queue. Depth 1
// still overlaps one fsync with the next batch's write; deeper
// pipelines let concurrent connections ride the kernel's own journal
// coalescing instead of convoying behind one inode flush.
const DefaultCommitPipeline = 8

// DefaultWALBufferBytes caps a shard's buffered-but-unwritten log bytes
// when nothing overrides it: past the cap, appenders stall until the
// write stage drains — backpressure, never an error — so a SyncOff
// firehose cannot grow the commit buffer without bound.
const DefaultWALBufferBytes = 64 << 20

// WAL is one shard's write-ahead log. Appends buffer under the mutex;
// Commit makes a logical prefix durable via pipelined leader-based
// group commit (see the package comment for the two-phase protocol).
// A WAL is created only by recovery (RecoverSharded), which is also
// what replays it — see recover.go.
type WAL struct {
	dir   Dir
	shard int
	lsn   *atomic.Uint64 // shared across the store's shards

	// lastLSN is the highest LSN this shard's log carries — the
	// per-shard high-water mark, as opposed to the store-global counter
	// above. Checkpoints use it as their floor (everything in this log
	// is ≤ it at rotation) and replication sessions resume from it.
	lastLSN atomic.Uint64

	mu       sync.Mutex
	flushed  sync.Cond // broadcast when a write or sync stage completes
	f        LogFile
	gen      uint64
	rotating bool   // a .log.new is the active file; FinishRotate pending
	buf      []byte // encoded records not yet written
	// appendEnd is the logical end of buf, monotone across rotations.
	// Written under mu; atomic so AppendEnd can report the frontier
	// without the mutex (commit gates read it once per request).
	appendEnd atomic.Int64
	writeEnd  int64 // logical end of what reached the file (write frontier)
	syncEnd   int64 // logical end of what fsync covered (sync frontier)
	sinceCkpt int64 // bytes appended since the last rotation
	pendRecs  int64 // records in buf — one write round's group-commit batch

	// Commit pipeline state. writing marks the single in-flight write
	// stage; syncs counts in-flight fsyncs (bounded by maxSyncs);
	// syncIssued is the highest write frontier any issued fsync is
	// guaranteed to cover, so a committer below it waits instead of
	// issuing a redundant fsync. barriers counts callers (Close, Tap,
	// checkpoint rotation) that need both stages quiesced and the
	// pipeline held shut; maxSyncs <= 0 selects the serialized
	// pre-pipelining path (one combined write+fsync round at a time),
	// kept as the benchmark baseline.
	writing    bool
	syncs      int
	syncIssued int64
	barriers   int
	maxSyncs   int

	// maxBuf caps appendEnd-writeEnd: appenders block (never error) at
	// the cap until the write stage drains. <= 0 is unbounded.
	maxBuf int64

	ckptPeak atomic.Int64 // high-water checkpoint staging buffer, bytes

	m   *WALMetrics // observation hooks; nil = unmetered (see wal_metrics.go)
	err error       // sticky I/O error; the WAL refuses further work
	// lost marks a hole below the frontier: an append was refused, so a
	// mutation applied without its record ever entering the log. Commit
	// must then fail even for ends the durable frontier covers — unlike
	// the close/flush-error cases, where coverage implies durability.
	lost bool

	// Replication taps. tapPend holds flushed-but-undelivered bytes;
	// tapStart is the logical offset of tapPend[0]. Chunks are handed to
	// taps only once the durable frontier covers them, so a follower can
	// never hold a record the leader could still lose.
	taps      []*WALTap
	tapPend   []byte
	tapStart  int64
	tapSynced bool // deliver only fsync-covered bytes (false under SyncOff)
}

func newWAL(dir Dir, shard int, gen uint64, lsn *atomic.Uint64, last uint64) (*WAL, error) {
	w := &WAL{dir: dir, shard: shard, gen: gen, lsn: lsn,
		maxSyncs: DefaultCommitPipeline, maxBuf: DefaultWALBufferBytes}
	w.lastLSN.Store(last)
	w.flushed.L = &w.mu
	f, err := dir.Create(shardBase(shard) + logSuffix)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(appendWalHeader(nil, shard, gen)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	return w, nil
}

// Shard returns the shard this log belongs to.
func (w *WAL) Shard() int { return w.shard }

// SetCommitPipeline bounds how many fsyncs the commit path may have in
// flight at once. n <= 0 selects the serialized pre-pipelining path
// (one combined write+fsync round at a time) — the baseline the
// pipelined benchmarks compare against.
func (w *WAL) SetCommitPipeline(n int) {
	w.mu.Lock()
	w.maxSyncs = n
	w.mu.Unlock()
}

// SetMaxBuffer caps the shard's buffered-but-unwritten log bytes
// (appendEnd - writeEnd). At the cap, appenders block until the write
// stage drains — backpressure, never an error. n <= 0 removes the cap.
func (w *WAL) SetMaxBuffer(n int64) {
	w.mu.Lock()
	w.maxBuf = n
	w.flushed.Broadcast() // a raised cap releases stalled appenders
	w.mu.Unlock()
}

// waitBuffer blocks the calling appender while the buffered backlog is
// at the cap, driving the write stage itself when nobody else is. The
// stall is surfaced as a metric and never as an error: durability work
// is already in motion, the appender just may not outrun it. Caller
// holds w.mu; returns with w.mu held and either room in the buffer or a
// sticky error pending.
func (w *WAL) waitBuffer() {
	if w.maxBuf <= 0 || w.appendEnd.Load()-w.writeEnd < w.maxBuf {
		return
	}
	m := w.m
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	for w.err == nil && w.appendEnd.Load()-w.writeEnd >= w.maxBuf {
		switch {
		case w.writing || w.barriers > 0:
			w.flushed.Wait()
		case w.maxSyncs > 0:
			w.writeRound()
		default:
			w.flushRound(false)
		}
	}
	if m != nil {
		m.Stalls.Add(1)
		m.StallNs.ObserveDuration(time.Since(start))
	}
}

// Append assigns r the next global LSN and buffers it; it returns the
// logical end offset to pass to Commit. r.Data is copied. A full
// buffer (see SetMaxBuffer) blocks until the write stage drains.
func (w *WAL) Append(r *Record) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitBuffer()
	if w.err != nil {
		return 0, w.err
	}
	r.LSN = w.lsn.Add(1)
	r.Shard = uint32(w.shard)
	w.lastLSN.Store(r.LSN)
	before := len(w.buf)
	buf, err := appendRecord(w.buf, r)
	if err != nil {
		// The mutation already applied but can never be journaled, so
		// durability is broken for good: make the error sticky so the
		// commit gate refuses the ack instead of silently dropping the
		// record. (Unreachable through pfs: Create caps names at
		// MaxName, far below the encoder limit.)
		w.err = err
		w.lost = true
		w.failTaps(err)
		return 0, err
	}
	w.buf = buf
	n := int64(len(w.buf) - before)
	end := w.appendEnd.Add(n)
	w.sinceCkpt += n
	w.pendRecs++
	return end, nil
}

// Commit makes the log durable up to logical offset end: it returns
// once end is written to the file and — when sync is set — fsynced.
// Concurrent commits coalesce and pipeline: one leader writes the
// whole buffer for everyone waiting, another issues an fsync covering
// everything written, and up to maxSyncs fsyncs overlap both each
// other and the next batch's write. Acks ride the sync frontier only —
// a committer returns when syncEnd covers its end, never when the
// write frontier does. An I/O error is sticky and fails all pending
// and future work.
//
// The durable-frontier check runs before the sticky-error check on
// purpose: a server shutting down under traffic closes the journal
// while late batch commits race in, and Close's final flush may already
// have made such a batch's records durable. Reporting ErrWALClosed for
// a frontier the log actually covers would make the server drop an ack
// for a write that recovery will replay — a spurious failure the
// opposite order avoids. A frontier the final flush did not cover still
// fails with the sticky error, which is the honest answer.
//
// The one exception is a refused append (w.lost): the log then has a
// hole below the frontier — a mutation applied whose record never
// entered the buffer — and no coverage can promise its durability, so
// every commit fails.
func (w *WAL) Commit(end int64, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if !w.lost && w.writeEnd >= end && (!sync || w.syncEnd >= end) {
			return nil
		}
		if w.err != nil {
			return w.err
		}
		if w.barriers > 0 {
			// Close, Tap or a checkpoint rotation holds the pipeline
			// shut; its own flush will cover us or fail us.
			w.flushed.Wait()
			continue
		}
		if w.maxSyncs <= 0 {
			// Serialized baseline: one combined write+fsync round at a
			// time, every committer behind it. (A pipeline turned off
			// mid-flight still waits out straggler fsyncs.)
			if w.writing || w.syncs > 0 {
				w.flushed.Wait()
				continue
			}
			w.flushRound(sync)
			continue
		}
		if w.writeEnd < end {
			if w.writing {
				w.flushed.Wait()
				continue
			}
			w.writeRound()
			continue
		}
		// Written but not yet sync-covered: ride an fsync already
		// issued past our end, else issue one if the pipeline has room.
		if w.syncIssued >= end || w.syncs >= w.maxSyncs {
			w.flushed.Wait()
			continue
		}
		w.syncRound()
	}
}

// writeRound runs the write stage: it takes the buffer and writes it to
// the file with the mutex dropped, then publishes the write frontier.
// fsyncs may be in flight throughout — that is the pipeline. Caller
// holds w.mu with w.writing false; returns with w.mu held.
func (w *WAL) writeRound() {
	w.writing = true
	buf := w.buf
	w.buf = nil
	recs := w.pendRecs
	w.pendRecs = 0
	target := w.appendEnd.Load()
	f := w.f
	m := w.m
	w.mu.Unlock()
	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
	}
	if m != nil && recs > 0 {
		// One write round is one group commit: every record buffered
		// since the last round rides a single write (and, downstream,
		// a single fsync covers one or more rounds).
		m.BatchRecords.Observe(recs)
		m.BatchBytes.Observe(int64(len(buf)))
		m.FlushedBytes.Add(int64(len(buf)))
	}
	w.mu.Lock()
	if err != nil {
		w.err = err
		w.failTaps(err)
	} else {
		w.writeEnd = target
		w.feedTaps(buf)
	}
	w.writing = false
	w.flushed.Broadcast()
}

// syncRound runs one sync stage: it captures the write frontier, fsyncs
// with the mutex dropped, and publishes the captured frontier as
// sync-covered. An fsync guarantees exactly the bytes written before
// the call, which is why the target is read before the mutex drops and
// why out-of-order completions (a later, higher-target fsync returning
// first) are resolved with max, not assignment. Caller holds w.mu with
// w.syncs < w.maxSyncs; returns with w.mu held.
func (w *WAL) syncRound() {
	target := w.writeEnd
	w.syncs++
	if target > w.syncIssued {
		w.syncIssued = target
	}
	f := w.f
	m := w.m
	if m != nil {
		m.PipelineDepth.Observe(int64(w.syncs))
	}
	w.mu.Unlock()
	var err error
	if m == nil {
		err = f.Sync()
	} else {
		start := time.Now()
		err = f.Sync()
		m.Fsyncs.Add(1)
		m.FsyncNs.ObserveDuration(time.Since(start))
	}
	w.mu.Lock()
	w.syncs--
	if err != nil {
		w.err = err
		w.failTaps(err)
	} else if target > w.syncEnd {
		w.syncEnd = target
		w.feedTaps(nil)
	}
	w.flushed.Broadcast()
}

// flushRound is the serialized combined round — write the buffer, then
// optionally fsync, as one exclusive step. It is the whole commit path
// when the pipeline is off (maxSyncs <= 0) and the quiesced final
// flush for Close, Tap and checkpoint rotation, which hold a barrier
// so no pipelined stage can start around it. Caller holds w.mu;
// flushRound waits out any in-flight stage itself (two barrier holders
// may both reach it) and no-ops on a sticky error. Returns with w.mu
// held.
func (w *WAL) flushRound(sync bool) {
	for w.writing || w.syncs > 0 {
		w.flushed.Wait()
	}
	if w.err != nil {
		return
	}
	w.writing = true
	buf := w.buf
	w.buf = nil
	recs := w.pendRecs
	w.pendRecs = 0
	target := w.appendEnd.Load()
	f := w.f
	m := w.m
	w.mu.Unlock()
	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
	}
	if err == nil && sync {
		if m == nil {
			err = f.Sync()
		} else {
			start := time.Now()
			err = f.Sync()
			m.Fsyncs.Add(1)
			m.FsyncNs.ObserveDuration(time.Since(start))
		}
	}
	if m != nil && recs > 0 {
		m.BatchRecords.Observe(recs)
		m.BatchBytes.Observe(int64(len(buf)))
		m.FlushedBytes.Add(int64(len(buf)))
	}
	w.mu.Lock()
	if err != nil {
		w.err = err
		w.failTaps(err)
	} else {
		w.writeEnd = target
		if sync {
			w.syncEnd = target
			if target > w.syncIssued {
				w.syncIssued = target
			}
		}
		w.feedTaps(buf)
	}
	w.writing = false
	w.flushed.Broadcast()
}

// beginBarrier holds the commit pipeline shut — no new write or sync
// stage may start — and waits out the in-flight ones, so the caller
// observes (and may advance) the frontiers with nothing racing the
// file. Barriers nest: each holder re-checks quiescence around its own
// exclusive work. Caller holds w.mu; returns with w.mu held.
func (w *WAL) beginBarrier() {
	w.barriers++
	for w.writing || w.syncs > 0 {
		w.flushed.Wait()
	}
}

// endBarrier reopens the pipeline and wakes queued committers. Caller
// holds w.mu.
func (w *WAL) endBarrier() {
	w.barriers--
	w.flushed.Broadcast()
}

// feedTaps hands newly durable log bytes to every registered tap.
// Called under w.mu from the write stage (with the bytes it just
// wrote) and from the sync stage (with nil, after the sync frontier
// advanced); the durable frontier (syncEnd, or writeEnd for unsynced
// journals) decides how much of the pending run ships. Under the
// pipelined commit this gate earns its keep: written-but-unsynced
// bytes sit in tapPend until the fsync that covers them returns, so a
// follower can never hold a record the leader could still lose.
func (w *WAL) feedTaps(wrote []byte) {
	if len(w.taps) == 0 {
		return
	}
	if len(wrote) > 0 {
		w.tapPend = append(w.tapPend, wrote...)
	}
	frontier := w.syncEnd
	if !w.tapSynced {
		frontier = w.writeEnd
	}
	n := frontier - w.tapStart
	if n <= 0 {
		return
	}
	chunk := w.tapPend[:n]
	live := w.taps[:0]
	for _, t := range w.taps {
		if t.feed(chunk) {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(w.taps); i++ {
		w.taps[i] = nil
	}
	w.taps = live
	w.tapPend = w.tapPend[n:]
	w.tapStart = frontier
}

// failTaps wakes and detaches every tap with err. Called under w.mu.
func (w *WAL) failTaps(err error) {
	for i, t := range w.taps {
		t.fail(err)
		w.taps[i] = nil
	}
	w.taps = w.taps[:0]
	w.tapPend = nil
}

// AppendEnd returns the current logical append frontier — everything
// this WAL has been handed so far, including records the pfs journal
// hooks appended from inside operations. Callers snapshot it after
// their request executes and pass it to Commit: committing to a
// frontier read *now* would also wait out other connections\' future
// appends, a convoy the precise end avoids.
func (w *WAL) AppendEnd() int64 { return w.appendEnd.Load() }

// CommitAll is Commit(AppendEnd()): the shutdown/teardown path, where
// waiting out every appended record is the point.
func (w *WAL) CommitAll(sync bool) error {
	return w.Commit(w.appendEnd.Load(), sync)
}

// LastLSN returns the highest LSN this shard's log carries — the
// per-shard replication/checkpoint high-water mark.
func (w *WAL) LastLSN() uint64 { return w.lastLSN.Load() }

// SetLastLSN resets the shard's high-water mark to lsn and raises the
// store-global counter to at least lsn. A replica calls it after a
// snapshot bootstrap: the shard's state now reflects the leader's
// checkpoint floor, and subsequently streamed records continue above
// it. The mark may move down (a restarted follower re-bootstraps below
// its stale local maximum); the global counter only ever moves up, so
// post-promote appends always outrun everything ever replicated.
func (w *WAL) SetLastLSN(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastLSN.Store(lsn)
	for {
		cur := w.lsn.Load()
		if cur >= lsn || w.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// AppendPrepared buffers a record that already carries its LSN — a
// leader-assigned record a replica journals verbatim so its own log
// stays recoverable. The record must belong to this shard and extend
// the log (LSN above the high-water mark); the store-global counter is
// raised to cover it. Returns the logical end offset for Commit, like
// Append.
func (w *WAL) AppendPrepared(r *Record) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitBuffer()
	if w.err != nil {
		return 0, w.err
	}
	if int(r.Shard) != w.shard {
		return 0, fmt.Errorf("pfs: prepared record for shard %d appended to shard %d's log", r.Shard, w.shard)
	}
	if last := w.lastLSN.Load(); r.LSN <= last {
		return 0, fmt.Errorf("pfs: prepared record lsn %d does not extend shard %d's log (at %d)", r.LSN, w.shard, last)
	}
	before := len(w.buf)
	buf, err := appendRecord(w.buf, r)
	if err != nil {
		w.err = err
		w.lost = true
		w.failTaps(err)
		return 0, err
	}
	w.buf = buf
	w.lastLSN.Store(r.LSN)
	for {
		cur := w.lsn.Load()
		if cur >= r.LSN || w.lsn.CompareAndSwap(cur, r.LSN) {
			break
		}
	}
	n := int64(len(w.buf) - before)
	end := w.appendEnd.Add(n)
	w.sinceCkpt += n
	w.pendRecs++
	return end, nil
}

// WALTap is a subscription to one shard's durable log suffix: every
// byte that becomes durable after registration is delivered, in order,
// exactly once. The buffer is bounded — a consumer that falls more than
// max bytes behind is detached with ErrTapLagged rather than allowed to
// wedge the log's memory (the replication session then reconnects and
// resumes from its acked LSN). Taps fail with the WAL's sticky error
// when the log dies or closes, after the final flush's bytes are
// delivered.
type WALTap struct {
	w   *WAL
	max int

	mu   sync.Mutex
	cond sync.Cond
	buf  []byte
	err  error
}

// ErrTapLagged detaches a tap whose consumer fell too far behind.
var ErrTapLagged = errors.New("pfs: WAL tap overflowed (consumer too slow)")

// ErrTapClosed is the error a tap's Next returns after Close.
var ErrTapClosed = errors.New("pfs: WAL tap closed")

// Tap registers a subscription delivering every byte that becomes
// durable from now on. max bounds the undelivered backlog; synced
// selects the durable frontier (fsync-covered bytes — pass false only
// for SyncOff journals, where nothing is ever fsynced). The
// registration point is exact: a barrier waits out the in-flight write
// and every in-flight fsync, and for a synced tap any
// written-but-unsynced gap is flushed closed, so the caller can pair
// the tap with a read of the log file and miss nothing in between.
func (w *WAL) Tap(max int, synced bool) (*WALTap, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.beginBarrier()
	defer w.endBarrier()
	if w.err == nil && synced && w.syncEnd < w.writeEnd {
		// The pipelined commit lets the write frontier run ahead of the
		// sync frontier; bytes in that gap predate this tap and would
		// never enter its pending run. Close the gap before
		// registering: tapStart then equals both frontiers.
		w.flushRound(true)
	}
	if w.err != nil {
		return nil, w.err
	}
	t := &WALTap{w: w, max: max}
	t.cond.L = &t.mu
	if len(w.taps) == 0 {
		w.tapSynced = synced
		w.tapStart = w.writeEnd
		w.tapPend = nil
	}
	w.taps = append(w.taps, t)
	return t, nil
}

// feed appends b to the tap's buffer, detaching the tap (returns false)
// on overflow or when it is already dead. Called under w.mu; t.mu nests
// inside it and is never held while taking w.mu, so no cycle exists.
func (t *WALTap) feed(b []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return false
	}
	if len(t.buf)+len(b) > t.max {
		t.err = ErrTapLagged
		t.cond.Broadcast()
		return false
	}
	t.buf = append(t.buf, b...)
	t.cond.Broadcast()
	return true
}

// fail wakes the consumer with a terminal error. Delivered bytes stay
// readable: Next drains the buffer before reporting the error.
func (t *WALTap) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Next blocks until log bytes are available and returns them appended
// to dst. After a failure it first drains what was already delivered,
// then returns the terminal error.
func (t *WALTap) Next(dst []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.buf) == 0 {
		if t.err != nil {
			return dst, t.err
		}
		t.cond.Wait()
	}
	dst = append(dst, t.buf...)
	t.buf = t.buf[:0]
	return dst, nil
}

// Close detaches the tap: Next returns ErrTapClosed (after draining)
// and the WAL stops buffering for it.
func (t *WALTap) Close() {
	t.fail(ErrTapClosed)
	t.w.removeTap(t)
}

func (w *WAL) removeTap(t *WALTap) {
	w.mu.Lock()
	for i, o := range w.taps {
		if o == t {
			w.taps = append(w.taps[:i], w.taps[i+1:]...)
			break
		}
	}
	if len(w.taps) == 0 {
		w.tapPend = nil
	}
	w.mu.Unlock()
}

// SinceCheckpoint returns how many log bytes have accumulated since the
// last checkpoint rotation — the size trigger for the next one.
func (w *WAL) SinceCheckpoint() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sinceCkpt
}

// Checkpoint snapshots fs — which must be the shard file system this
// WAL journals — and truncates the log, bounding recovery work:
//
//  1. Rotate: flush + fsync the current log, then switch appends to a
//     fresh .log.new of the next generation. Every record in the old
//     log was appended — and therefore applied, records are logged
//     after their mutation applies — before this point, so the
//     snapshot about to be taken covers them all.
//  2. Snapshot every file (blocks + size watermark) into .ckpt.tmp,
//     fsync it, rename over .ckpt, fsync the directory. The checkpoint
//     carries the LSN floor read at rotation: recovery replays only
//     records above it.
//  3. Rename .log.new over .log (the old log's records are all in the
//     checkpoint now) and fsync the directory.
//
// A crash anywhere in between leaves a combination recovery handles:
// records are replayed over whichever checkpoint generation survived,
// from whichever of .log/.log.new exist, merged by LSN (see
// recover.go). Mutations concurrent with the snapshot land in the new
// log and replay idempotently over whatever slice of them the snapshot
// caught. One checkpoint runs at a time per shard (the journal layer
// guards this); appends stay live throughout.
//
// The exported Checkpoint (wal_metrics.go) wraps this with duration
// and outcome observation.
func (w *WAL) runCheckpoint(fs *FS) error {
	w.mu.Lock()
	// The barrier holds the commit pipeline shut across the rotation:
	// in-flight writes and fsyncs (which target the old file) are
	// waited out, and none may start until the swap below publishes the
	// new one — an fsync racing the old file's Close would turn the
	// rotation into a spurious sticky error.
	w.beginBarrier()
	if w.err != nil {
		w.endBarrier()
		w.mu.Unlock()
		return w.err
	}
	if w.rotating {
		w.endBarrier()
		w.mu.Unlock()
		return fmt.Errorf("pfs: shard %d checkpoint already in progress", w.shard)
	}
	// Flush + sync the old log inline (the barrier keeps stages out).
	w.flushRound(true)
	if w.err != nil {
		w.endBarrier()
		w.mu.Unlock()
		return w.err
	}
	// The floor is this shard's high-water mark, not the global counter:
	// every record in the rotated log is ≤ it (strictly increasing LSNs
	// within one log), and every record in any *other* shard's log for a
	// file this snapshot holds is older still — the file is here, so any
	// cross-shard records predate the MIGRATE that brought it, which is
	// itself ≤ the mark (checkpoints and migrations serialize on the
	// store's migration lock). A global floor would be equivalent on a
	// leader but wrong on a replica, where a lagging shard's global
	// counter runs ahead of what the shard has applied and a global
	// floor would filter out records journaled after this checkpoint.
	floor := w.lastLSN.Load()
	gen := w.gen + 1
	base := shardBase(w.shard)
	nf, err := w.dir.Create(base + logNewSuffx)
	if err != nil {
		w.endBarrier()
		w.mu.Unlock()
		return err
	}
	if _, err := nf.Write(appendWalHeader(nil, w.shard, gen)); err == nil {
		err = nf.Sync()
	}
	if err == nil {
		// The .log.new NAME must be durable before any record lands in
		// it: a synced record in an unreachable file is lost all the
		// same, and records committed from here on are acknowledged.
		err = w.dir.Sync()
	}
	if err != nil {
		nf.Close()
		w.endBarrier()
		w.mu.Unlock()
		return err
	}
	old := w.f
	w.f = nf
	w.gen = gen
	w.rotating = true
	w.sinceCkpt = 0
	// The swap is published: reopen the pipeline so appends and commits
	// run against the new log while the snapshot streams out below.
	w.endBarrier()
	w.mu.Unlock()
	old.Close()

	if err := writeCheckpoint(w.dir, w.shard, gen, floor, fs, &w.ckptPeak); err != nil {
		return w.fail(err)
	}
	// The old log is now redundant; promote the new one into its name.
	if err := w.dir.Rename(base+logNewSuffx, base+logSuffix); err != nil {
		return w.fail(err)
	}
	if err := w.dir.Sync(); err != nil {
		return w.fail(err)
	}
	w.mu.Lock()
	w.rotating = false
	w.mu.Unlock()
	return nil
}

// CheckpointShard checkpoints shard i's file system into w under the
// store's migration lock. The lock is what keeps checkpoint membership
// and migration coherent: a MIGRATE record is appended and committed
// inside Migrate's critical section, before the namespace flip, so a
// checkpoint serialized against that section either ran before it
// (file still in the source's namespace, snapshotted there) or after
// (flip complete: the destination's listing sees the file, and the
// source's may forget it — its state is durable in the destination's
// log). Unserialized, a checkpoint could read its LSN floor and list
// the namespace *around* the flip, producing a checkpoint whose floor
// covers the MIGRATE record while holding the file on neither side —
// and the subsequent log truncation would drop the only copy.
//
// The price is that creates and migrations stall while a checkpoint
// runs; both are namespace-rate events, checkpoints are size-rate, so
// the store-wide lock does not show up in the data plane. Lock order
// is migMu → WAL mutex in both this path and Migrate's journal hook,
// so no cycle exists.
func (s *Sharded) CheckpointShard(w *WAL, i int) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return w.Checkpoint(s.shards[i])
}

// fail records a sticky error from the checkpoint path.
func (w *WAL) fail(err error) error {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.failTaps(err)
	w.mu.Unlock()
	return err
}

// Close flushes and fsyncs outstanding records and closes the file.
// The barrier first waits out the in-flight write and every in-flight
// fsync — closing the file under a pipelined fsync would fail it
// spuriously — then a final combined round makes the remaining buffer
// durable. The WAL is left with a sticky ErrWALClosed, so a racing or
// late Append/Commit fails cleanly instead of buffering records no
// flush will ever cover (or dereferencing the closed file). Closing
// twice is a no-op.
func (w *WAL) Close() error {
	w.mu.Lock()
	w.beginBarrier()
	if errors.Is(w.err, ErrWALClosed) {
		w.endBarrier()
		w.mu.Unlock()
		return nil
	}
	if w.err == nil {
		w.flushRound(true)
	}
	err := w.err
	f := w.f
	w.f = nil
	if w.err == nil {
		w.err = ErrWALClosed
	}
	// Taps learn of the close only after the final flush above fed them
	// its bytes: a replication session sees the log's complete durable
	// suffix, then the terminal error.
	w.failTaps(ErrWALClosed)
	w.endBarrier()
	w.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// shardFileHoldsState reports whether a WAL-directory file belonging
// to shard carries durable user state — any checkpointed file or any
// log record. Recovery consults it for shards beyond the configured
// count: empty logs and checkpoints are exactly what a previous boot
// with a larger shard count left behind, and must not wedge a smaller
// restart. An unreadable or foreign file counts as state: refusing
// loudly beats guessing.
func shardFileHoldsState(d Dir, name string, shard int) bool {
	switch {
	case strings.HasSuffix(name, ckptTmpSufx):
		return false // pre-rename scratch, never durable state
	case strings.HasSuffix(name, ckptSuffix):
		files, _, _, err := readCheckpoint(d, shard)
		return err != nil || len(files) > 0
	case strings.HasSuffix(name, logSuffix), strings.HasSuffix(name, logNewSuffx):
		recs, _, _, err := readShardLog(d, name, shard)
		return err != nil || len(recs) > 0
	}
	return true
}

// ReadLogRecords reads and scans shard's active log in d, returning
// its valid records. The replication layer uses it to backfill a
// follower from the log tail the leader still has on disk; callers
// must serialize against checkpoint rotation (the journal's per-shard
// checkpoint mutex) or the active log may be mid-swap. Record Data
// aliases the read buffer.
func ReadLogRecords(d Dir, shard int) ([]Record, error) {
	recs, _, _, err := readShardLog(d, shardBase(shard)+logSuffix, shard)
	return recs, err
}

// readShardLog reads and scans one shard's log file; absent files scan
// as empty.
func readShardLog(d Dir, name string, shard int) (recs []Record, gen uint64, torn int, err error) {
	content, err := d.ReadFile(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	return scanLog(content, shard)
}

// Little-endian helpers shared by the WAL and checkpoint codecs.

func le16(dst []byte, v uint16) []byte { return append(dst, byte(v), byte(v>>8)) }

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func putLE32(dst []byte, v uint32) {
	dst[0], dst[1], dst[2], dst[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func le32get(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64get(b []byte) uint64 {
	return uint64(le32get(b)) | uint64(le32get(b[4:]))<<32
}

// cur is a bounds-checked reader over one record body.
type cur struct {
	b   []byte
	err bool
}

func (c *cur) u8() uint8 {
	if len(c.b) < 1 {
		c.err = true
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cur) u16() uint16 {
	if len(c.b) < 2 {
		c.err = true
		return 0
	}
	v := uint16(c.b[0]) | uint16(c.b[1])<<8
	c.b = c.b[2:]
	return v
}

func (c *cur) u32() uint32 {
	if len(c.b) < 4 {
		c.err = true
		return 0
	}
	v := le32get(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cur) u64() uint64 {
	if len(c.b) < 8 {
		c.err = true
		return 0
	}
	v := le64get(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cur) take(n int) []byte {
	if n < 0 || len(c.b) < n {
		c.err = true
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cur) rest() []byte {
	v := c.b
	c.b = nil
	return v
}
