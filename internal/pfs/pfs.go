// Package pfs is an in-memory parallel file system in the spirit of the
// paper's motivating context (§1: range locks were conceived so multiple
// writers could update different parts of one file; §2: pNOVA applies
// them to per-file I/O on NVM file systems; §8 names parallel file
// systems as the natural next application).
//
// Every file's data plane is mediated by a byte-range lock — pluggable,
// so the paper's list-based lock can be compared against the tree-based
// or segment-based ones on identical file workloads:
//
//	ReadAt      shared lock on [off, off+len)
//	WriteAt     exclusive lock on [off, off+len)
//	Append      atomic reservation + exclusive lock on the reserved tail
//	Truncate    exclusive lock on [newSize, MaxEnd)
//
// File content is stored in 4 KiB blocks inside a sharded block table, so
// writers to disjoint ranges touch disjoint blocks and really do proceed
// in parallel once the range lock admits them. The namespace (directory
// of files) is protected separately by a reader-writer semaphore — names
// are not ranges.
package pfs

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lockapi"
	"repro/internal/locks"
	"repro/internal/rwsem"
)

// BlockSize is the content block granularity.
const BlockSize = 4096

// MaxName bounds a file name's length in bytes. Names are journaled
// into WAL records and checkpoints with a u16 length prefix, so the
// encoding's hard ceiling is 64 KiB - 1; the API cap is far tighter so
// a name can never come close to it — an over-long name silently
// truncated in the log would desynchronize the decoder and cost every
// record behind it on recovery.
const MaxName = 4096

// Errors returned by the file system.
var (
	ErrNotExist    = errors.New("pfs: file does not exist")
	ErrExist       = errors.New("pfs: file already exists")
	ErrClosed      = errors.New("pfs: file system closed")
	ErrNameTooLong = errors.New("pfs: file name exceeds MaxName")
)

// LockFactory builds the byte-range lock protecting one file's data.
type LockFactory func() lockapi.Locker

// DefaultLockFactory uses the paper's reader-writer list-based lock.
func DefaultLockFactory() lockapi.Locker { return lockapi.NewListRW(nil) }

// DomainLockFactory builds a file's byte-range lock with its per-operation
// state (reclamation slots, node pools) in an explicit domain, so callers
// can place different files' locks in different domains. Variants without
// domain state ignore the argument.
type DomainLockFactory func(dom *core.Domain) lockapi.Locker

// DefaultDomainLockFactory is the reader-writer list-based lock in dom.
func DefaultDomainLockFactory(dom *core.Domain) lockapi.Locker {
	return lockapi.NewListRW(dom)
}

// NewInDomain creates a file system whose files lease all per-operation
// lock state from dom (nil selects the process-wide default domain; nil
// mk selects DefaultDomainLockFactory). Two file systems built over
// distinct domains share no lock state at all — the building block of
// Sharded.
func NewInDomain(dom *core.Domain, mk DomainLockFactory) *FS {
	if mk == nil {
		mk = DefaultDomainLockFactory
	}
	if dom == nil {
		dom = core.DefaultDomain()
	}
	return New(func() lockapi.Locker { return mk(dom) })
}

// FS is an in-memory file system.
type FS struct {
	ns     rwsem.RWSem // namespace lock
	files  map[string]*File
	mkLock LockFactory
	opSrc  lockapi.OpLocker // probe lock Ops are leased from; nil if unsupported
	opDom  *core.Domain     // the probe lock's domain
	closed bool

	// jhook, when set (RecoverSharded wires it to the shard's WAL),
	// journals every mutation. It is invoked while the mutation's
	// range lock (or, for Create, the namespace lock) is still held,
	// so the log order of conflicting operations equals their apply
	// order — released-lock journaling could log an overwritten write
	// after its overwriter and replay the loser on recovery. Set
	// before the file system serves writes; never changed while it
	// does (a replica swaps it only across a promotion barrier that
	// orders the store's first writes after the swap).
	jhook func(*Record)
}

// SetJournalHook installs (nil: removes) the journal hook. A replica
// removes the recovery-wired hooks while it applies the leader's
// stream — streamed records are journaled verbatim via AppendPrepared,
// not re-journaled with fresh LSNs — and rewires them on promotion.
// Callers must not change the hook while the store serves writes; the
// replica's promotion path publishes the swap through the server's
// leader flag before any write is accepted.
func (fs *FS) SetJournalHook(h func(*Record)) { fs.jhook = h }

// New creates an empty file system whose files use locks from mk (nil
// selects DefaultLockFactory).
func New(mk LockFactory) *FS {
	if mk == nil {
		mk = DefaultLockFactory
	}
	fs := &FS{files: make(map[string]*File), mkLock: mk}
	// Probe whether the variant supports leased operation contexts. Ops
	// are leased from this probe lock's domain; each file checks at
	// creation time that its own lock shares that domain (stock factories
	// do: nil-domain list locks share the process default domain) and
	// falls back to the plain per-call path otherwise.
	if ol, ok := mk().(lockapi.OpLocker); ok {
		fs.opSrc = ol
		fs.opDom = lockapi.OpDomain(ol)
	}
	return fs
}

// Op is a leased per-operation lock context threaded through the *Op
// file methods: callers issuing many file operations per logical unit of
// work (a server request batch, a tight benchmark loop) lease one Op and
// pay the reclamation-slot lease once instead of per call. The zero Op
// is valid and selects the plain per-call path, as does any Op on a file
// whose lock variant has no Op surface — so callers can thread an Op
// unconditionally.
type Op struct {
	ol  lockapi.OpLocker
	op  lockapi.Op
	dom *core.Domain // the domain op was leased from; guards cross-domain use
}

// BeginOp leases an operation context shared by every file of this FS
// whose lock supports it. The returned Op serves one goroutine at a time
// and must be returned with End.
func (fs *FS) BeginOp() Op {
	if fs.opSrc == nil {
		return Op{}
	}
	return Op{ol: fs.opSrc, op: fs.opSrc.BeginOp(), dom: fs.opDom}
}

// End returns the context to its domain. The zero Op's End is a no-op.
func (op Op) End() {
	if op.ol != nil {
		op.ol.EndOp(op.op)
	}
}

// Create adds an empty file, failing if the name exists or exceeds
// MaxName (names are journaled with a bounded length prefix, so the
// namespace is where over-long ones must be stopped).
func (fs *FS) Create(name string) (*File, error) {
	if len(name) > MaxName {
		return nil, ErrNameTooLong
	}
	fs.ns.Lock()
	defer fs.ns.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if _, ok := fs.files[name]; ok {
		return nil, ErrExist
	}
	lk := fs.mkLock()
	f := newFile(fs, name, lk)
	// The Op fast path is valid only when this file's lock leases from
	// the same domain as the FS probe lock; otherwise AcquireOp would
	// panic on the foreign context, so the file opts out up front.
	if fs.opSrc != nil && lockapi.SameOpDomain(fs.opSrc, lk) {
		f.opLk = lk.(lockapi.OpLocker)
		f.opDom = fs.opDom
	}
	fs.files[name] = f
	if fs.jhook != nil {
		// Under the namespace lock: an empty file's only durable trace
		// is this record, and the lock orders it against a re-create.
		fs.jhook(&Record{Kind: RecCreate, Name: name})
	}
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.ns.RLock()
	defer fs.ns.RUnlock()
	if fs.closed {
		return nil, ErrClosed
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return f, nil
}

// Stat returns metadata for an existing file by name.
func (fs *FS) Stat(name string) (FileInfo, error) {
	f, err := fs.Open(name)
	if err != nil {
		return FileInfo{}, err
	}
	return f.Stat(), nil
}

// Remove deletes a file from the namespace. Ongoing operations on open
// handles complete against the orphaned file.
func (fs *FS) Remove(name string) error {
	fs.ns.Lock()
	defer fs.ns.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if _, ok := fs.files[name]; !ok {
		return ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// List returns the current file names (unordered).
func (fs *FS) List() []string {
	fs.ns.RLock()
	defer fs.ns.RUnlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	return out
}

// Close marks the file system closed; subsequent namespace operations fail.
func (fs *FS) Close() {
	fs.ns.Lock()
	fs.closed = true
	fs.ns.Unlock()
}

// blockShards must be a power of two.
const blockShards = 64

type blockShard struct {
	_      [8]uint64
	mu     locks.SpinLock
	blocks map[uint64][]byte // block index -> BlockSize bytes
}

// File is one file: a sparse block store plus its byte-range lock.
type File struct {
	name   string
	fs     *FS // owning file system; its journal hook logs this file's mutations
	lk     lockapi.Locker
	opLk   lockapi.OpLocker // non-nil iff lk accepts leased Ops
	opDom  *core.Domain     // the domain opLk leases from; Ops from others fall back
	moved  atomic.Pointer[File]
	size   atomic.Uint64
	shards [blockShards]blockShard
}

func newFile(fs *FS, name string, lk lockapi.Locker) *File {
	f := &File{name: name, fs: fs, lk: lk}
	for i := range f.shards {
		f.shards[i].blocks = make(map[uint64][]byte)
	}
	return f
}

// journal logs one applied mutation through the owning FS's hook. The
// caller must still hold the range that serialized the mutation, so
// conflicting operations append in apply order; after a migration the
// live file belongs to the destination FS and journals to its shard's
// log automatically. Append errors are sticky in the WAL and surface
// at commit time, which is what gates acknowledgements.
func (f *File) journal(rec *Record) {
	if h := f.fs.jhook; h != nil {
		rec.Name = f.name
		h(rec)
	}
}

// Name returns the file's name at creation time.
func (f *File) Name() string { return f.name }

// current follows migration forwarding to the file's live incarnation:
// after Sharded.Migrate moves a file to another shard, the orphaned
// original points at the copy, so stale handles keep observing (and,
// through the forwarding loop in each operation, mutating) live state.
func (f *File) current() *File {
	for {
		nf := f.moved.Load()
		if nf == nil {
			return f
		}
		f = nf
	}
}

// Size returns the current file size (highest written offset).
func (f *File) Size() uint64 { return f.current().size.Load() }

func (f *File) shard(block uint64) *blockShard {
	return &f.shards[block&(blockShards-1)]
}

// block returns the storage for one block, allocating it if create is set.
func (f *File) block(idx uint64, create bool) []byte {
	s := f.shard(idx)
	s.mu.Lock()
	b := s.blocks[idx]
	if b == nil && create {
		b = make([]byte, BlockSize)
		s.blocks[idx] = b
	}
	s.mu.Unlock()
	return b
}

// dropBlocksFrom releases whole blocks at or beyond byte offset off.
func (f *File) dropBlocksFrom(off uint64) {
	first := (off + BlockSize - 1) / BlockSize
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx := range s.blocks {
			if idx >= first {
				delete(s.blocks, idx)
			}
		}
		s.mu.Unlock()
	}
}

// growSize raises the size watermark to at least n.
func (f *File) growSize(n uint64) {
	for {
		cur := f.size.Load()
		if cur >= n || f.size.CompareAndSwap(cur, n) {
			return
		}
	}
}

// rangeRel is a held range acquired through lockRange; release with
// release(). It carries either a plain release closure or an Op-path
// guard, so the Op-threaded file methods avoid per-call closures when the
// lock variant supports leased contexts.
type rangeRel struct {
	rel func()
	ol  lockapi.OpLocker
	op  lockapi.Op
	g   lockapi.Guard
}

func (r rangeRel) release() {
	if r.rel != nil {
		r.rel()
		return
	}
	r.ol.ReleaseOp(r.op, r.g)
}

// lockRange acquires [start, end) on the file's lock, through op's leased
// context when the op and the lock lease from the same domain. The
// domain comparison is what makes dynamic placement safe: a caller can
// hold a handle whose file has migrated to another shard and thread an
// Op leased for either shard — a mismatched pair silently takes the
// plain per-call path instead of panicking on a foreign context.
func (f *File) lockRange(op Op, start, end uint64, write bool) rangeRel {
	if op.ol != nil && f.opLk != nil && op.dom == f.opDom {
		return rangeRel{ol: f.opLk, op: op.op, g: f.opLk.AcquireOp(op.op, start, end, write)}
	}
	return rangeRel{rel: f.lk.Acquire(start, end, write)}
}

// lockResolved is lockRange following migration forwarding: a file can
// move to another shard while the caller waits for the range, in which
// case the acquisition lands on a frozen orphan — Migrate sets the
// forwarding pointer before it releases its full-range freeze, so the
// check under the held lock is race-free. The held range is then
// released and re-acquired on the moved file (lockRange's domain check
// routes the op: foreign to the new shard it falls back to the plain
// path, matching again after a ping-pong it rides the fast path).
// Returns the live file and the held range.
func (f *File) lockResolved(op Op, start, end uint64, write bool) (*File, rangeRel) {
	for {
		r := f.lockRange(op, start, end, write)
		nf := f.moved.Load()
		if nf == nil {
			return f, r
		}
		r.release()
		f = nf
	}
}

// WriteAt writes p at offset off under an exclusive range lock, growing
// the file as needed. It never fails for valid input; the returned count
// is always len(p).
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	return f.WriteAtOp(Op{}, p, off)
}

// WriteAtOp is WriteAt threading a leased operation context.
func (f *File) WriteAtOp(op Op, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	end := off + uint64(len(p))
	f, r := f.lockResolved(op, off, end, true)
	defer r.release()
	f.writeLocked(p, off)
	f.growSize(end)
	f.journal(&Record{Kind: RecWrite, Off: off, Data: p})
	return len(p), nil
}

func (f *File) writeLocked(p []byte, off uint64) {
	for len(p) > 0 {
		idx := off / BlockSize
		bo := off % BlockSize
		n := f.writeBlock(idx, bo, p)
		p = p[n:]
		off += uint64(n)
	}
}

// writeBlock copies what fits of p into block idx at offset bo under
// the block-shard spinlock. Overlap with other writers is excluded by
// the range lock; the spinlock is for whole-block readers that hold no
// range — checkpoint snapshots copy every block's bytes under it, so a
// snapshot taken while writers run sees each block torn only at record
// boundaries the WAL replay repairs, never mid-byte.
func (f *File) writeBlock(idx, bo uint64, p []byte) int {
	s := f.shard(idx)
	s.mu.Lock()
	b := s.blocks[idx]
	if b == nil {
		b = make([]byte, BlockSize)
		s.blocks[idx] = b
	}
	n := copy(b[bo:], p)
	s.mu.Unlock()
	return n
}

// ReadAt reads into p from offset off under a shared range lock. Reads
// beyond the current size return io.EOF with a short count; holes read as
// zero bytes.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	return f.ReadAtOp(Op{}, p, off)
}

// ReadAtOp is ReadAt threading a leased operation context.
func (f *File) ReadAtOp(op Op, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	end := off + uint64(len(p))
	f, r := f.lockResolved(op, off, end, false)
	defer r.release()
	size := f.size.Load()
	var eof error
	if end > size {
		if off >= size {
			return 0, io.EOF
		}
		p = p[:size-off]
		eof = io.EOF
	}
	read := 0
	for len(p) > 0 {
		idx := off / BlockSize
		bo := off % BlockSize
		var n int
		if b := f.block(idx, false); b != nil {
			n = copy(p, b[bo:])
		} else {
			// Hole: zero fill.
			n = len(p)
			if rem := BlockSize - int(bo); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += uint64(n)
		read += n
	}
	return read, eof
}

// Append atomically reserves the tail of the file for p and writes it
// under an exclusive lock on just the reserved range: concurrent appends
// reserve disjoint ranges and proceed in parallel — exactly the
// shared-file pattern pNOVA optimizes. Returns the offset written.
func (f *File) Append(p []byte) (uint64, error) {
	return f.AppendOp(Op{}, p)
}

// AppendOp is Append threading a leased operation context.
func (f *File) AppendOp(op Op, p []byte) (uint64, error) {
	n := uint64(len(p))
	if n == 0 {
		return f.current().size.Load(), nil
	}
	for {
		// Reserve: the watermark moves first, so each append owns a disjoint
		// range; readers past the old size see zeros until the write lands,
		// as with any sparse file.
		off := f.size.Add(n) - n
		r := f.lockRange(op, off, off+n, true)
		nf := f.moved.Load()
		if nf == nil {
			f.writeLocked(p, off)
			// The record carries the offset the reservation landed at,
			// so replay is a deterministic WriteAt however appends raced.
			f.journal(&Record{Kind: RecAppend, Off: off, Data: p})
			r.release()
			return off, nil
		}
		// The file moved while we waited: the reservation belongs to the
		// orphaned copy, so restart on the moved file — reservation and
		// write must land on the same watermark, or two appends could be
		// granted overlapping ranges. If the migration copy caught the
		// abandoned reservation in the watermark, the moved file keeps a
		// zero-filled gap there, like any sparse hole; nothing is lost or
		// written twice.
		r.release()
		f = nf
	}
}

// Truncate shrinks or grows the file to size n, holding the exclusive
// range [n, MaxEnd) so it cannot race with writes past the new end.
func (f *File) Truncate(n uint64) {
	f.TruncateOp(Op{}, n)
}

// TruncateOp is Truncate threading a leased operation context.
func (f *File) TruncateOp(op Op, n uint64) {
	f, r := f.lockResolved(op, n, ^uint64(0), true)
	defer r.release()
	defer f.journal(&Record{Kind: RecTruncate, Size: n})
	cur := f.size.Load()
	if n < cur {
		f.dropBlocksFrom(n)
		// Clear the partial block tail so regrowth reads zeros; under
		// the spinlock, like all content writes (see writeBlock).
		if bo := n % BlockSize; bo != 0 {
			s := f.shard(n / BlockSize)
			s.mu.Lock()
			if b := s.blocks[n/BlockSize]; b != nil {
				for i := bo; i < BlockSize; i++ {
					b[i] = 0
				}
			}
			s.mu.Unlock()
		}
		f.size.Store(n)
		return
	}
	f.growSize(n)
}

// FileInfo is a point-in-time snapshot of file metadata.
type FileInfo struct {
	Name   string
	Size   uint64
	Blocks int
}

// Stat returns the file's metadata without taking the range lock: size is
// a single atomic watermark and the block count is advisory, so a Stat
// concurrent with writes sees some consistent recent state, as with any
// live file system. It follows migration forwarding, so a stale handle
// stats the live file, not the frozen orphan.
func (f *File) Stat() FileInfo {
	f = f.current()
	return FileInfo{Name: f.name, Size: f.size.Load(), Blocks: f.Blocks()}
}

// Blocks reports how many blocks are resident (tests/stats).
func (f *File) Blocks() int {
	f = f.current()
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n += len(s.blocks)
		s.mu.Unlock()
	}
	return n
}

// String implements fmt.Stringer.
func (f *File) String() string {
	return fmt.Sprintf("pfs.File(%q, %d bytes, %d blocks)", f.name, f.Size(), f.Blocks())
}
