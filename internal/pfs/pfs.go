// Package pfs is an in-memory parallel file system in the spirit of the
// paper's motivating context (§1: range locks were conceived so multiple
// writers could update different parts of one file; §2: pNOVA applies
// them to per-file I/O on NVM file systems; §8 names parallel file
// systems as the natural next application).
//
// Every file's data plane is mediated by a byte-range lock — pluggable,
// so the paper's list-based lock can be compared against the tree-based
// or segment-based ones on identical file workloads:
//
//	ReadAt      shared lock on [off, off+len)
//	WriteAt     exclusive lock on [off, off+len)
//	Append      atomic reservation + exclusive lock on the reserved tail
//	Truncate    exclusive lock on [newSize, MaxEnd)
//
// File content is stored in 4 KiB blocks inside a sharded block table, so
// writers to disjoint ranges touch disjoint blocks and really do proceed
// in parallel once the range lock admits them. The namespace (directory
// of files) is protected separately by a reader-writer semaphore — names
// are not ranges.
package pfs

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/lockapi"
	"repro/internal/locks"
	"repro/internal/rwsem"
)

// BlockSize is the content block granularity.
const BlockSize = 4096

// Errors returned by the file system.
var (
	ErrNotExist = errors.New("pfs: file does not exist")
	ErrExist    = errors.New("pfs: file already exists")
	ErrClosed   = errors.New("pfs: file system closed")
)

// LockFactory builds the byte-range lock protecting one file's data.
type LockFactory func() lockapi.Locker

// DefaultLockFactory uses the paper's reader-writer list-based lock.
func DefaultLockFactory() lockapi.Locker { return lockapi.NewListRW(nil) }

// FS is an in-memory file system.
type FS struct {
	ns     rwsem.RWSem // namespace lock
	files  map[string]*File
	mkLock LockFactory
	closed bool
}

// New creates an empty file system whose files use locks from mk (nil
// selects DefaultLockFactory).
func New(mk LockFactory) *FS {
	if mk == nil {
		mk = DefaultLockFactory
	}
	return &FS{files: make(map[string]*File), mkLock: mk}
}

// Create adds an empty file, failing if the name exists.
func (fs *FS) Create(name string) (*File, error) {
	fs.ns.Lock()
	defer fs.ns.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if _, ok := fs.files[name]; ok {
		return nil, ErrExist
	}
	f := newFile(name, fs.mkLock())
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.ns.RLock()
	defer fs.ns.RUnlock()
	if fs.closed {
		return nil, ErrClosed
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return f, nil
}

// Remove deletes a file from the namespace. Ongoing operations on open
// handles complete against the orphaned file.
func (fs *FS) Remove(name string) error {
	fs.ns.Lock()
	defer fs.ns.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if _, ok := fs.files[name]; !ok {
		return ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// List returns the current file names (unordered).
func (fs *FS) List() []string {
	fs.ns.RLock()
	defer fs.ns.RUnlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	return out
}

// Close marks the file system closed; subsequent namespace operations fail.
func (fs *FS) Close() {
	fs.ns.Lock()
	fs.closed = true
	fs.ns.Unlock()
}

// blockShards must be a power of two.
const blockShards = 64

type blockShard struct {
	_      [8]uint64
	mu     locks.SpinLock
	blocks map[uint64][]byte // block index -> BlockSize bytes
}

// File is one file: a sparse block store plus its byte-range lock.
type File struct {
	name   string
	lk     lockapi.Locker
	size   atomic.Uint64
	shards [blockShards]blockShard
}

func newFile(name string, lk lockapi.Locker) *File {
	f := &File{name: name, lk: lk}
	for i := range f.shards {
		f.shards[i].blocks = make(map[uint64][]byte)
	}
	return f
}

// Name returns the file's name at creation time.
func (f *File) Name() string { return f.name }

// Size returns the current file size (highest written offset).
func (f *File) Size() uint64 { return f.size.Load() }

func (f *File) shard(block uint64) *blockShard {
	return &f.shards[block&(blockShards-1)]
}

// block returns the storage for one block, allocating it if create is set.
func (f *File) block(idx uint64, create bool) []byte {
	s := f.shard(idx)
	s.mu.Lock()
	b := s.blocks[idx]
	if b == nil && create {
		b = make([]byte, BlockSize)
		s.blocks[idx] = b
	}
	s.mu.Unlock()
	return b
}

// dropBlocksFrom releases whole blocks at or beyond byte offset off.
func (f *File) dropBlocksFrom(off uint64) {
	first := (off + BlockSize - 1) / BlockSize
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for idx := range s.blocks {
			if idx >= first {
				delete(s.blocks, idx)
			}
		}
		s.mu.Unlock()
	}
}

// growSize raises the size watermark to at least n.
func (f *File) growSize(n uint64) {
	for {
		cur := f.size.Load()
		if cur >= n || f.size.CompareAndSwap(cur, n) {
			return
		}
	}
}

// WriteAt writes p at offset off under an exclusive range lock, growing
// the file as needed. It never fails for valid input; the returned count
// is always len(p).
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	end := off + uint64(len(p))
	rel := f.lk.Acquire(off, end, true)
	defer rel()
	f.writeLocked(p, off)
	f.growSize(end)
	return len(p), nil
}

func (f *File) writeLocked(p []byte, off uint64) {
	for len(p) > 0 {
		idx := off / BlockSize
		bo := off % BlockSize
		n := copy(f.block(idx, true)[bo:], p)
		p = p[n:]
		off += uint64(n)
	}
}

// ReadAt reads into p from offset off under a shared range lock. Reads
// beyond the current size return io.EOF with a short count; holes read as
// zero bytes.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	end := off + uint64(len(p))
	rel := f.lk.Acquire(off, end, false)
	defer rel()
	size := f.size.Load()
	var eof error
	if end > size {
		if off >= size {
			return 0, io.EOF
		}
		p = p[:size-off]
		eof = io.EOF
	}
	read := 0
	for len(p) > 0 {
		idx := off / BlockSize
		bo := off % BlockSize
		var n int
		if b := f.block(idx, false); b != nil {
			n = copy(p, b[bo:])
		} else {
			// Hole: zero fill.
			n = len(p)
			if rem := BlockSize - int(bo); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += uint64(n)
		read += n
	}
	return read, eof
}

// Append atomically reserves the tail of the file for p and writes it
// under an exclusive lock on just the reserved range: concurrent appends
// reserve disjoint ranges and proceed in parallel — exactly the
// shared-file pattern pNOVA optimizes. Returns the offset written.
func (f *File) Append(p []byte) (uint64, error) {
	n := uint64(len(p))
	if n == 0 {
		return f.size.Load(), nil
	}
	// Reserve: the watermark moves first, so each append owns a disjoint
	// range; readers past the old size see zeros until the write lands,
	// as with any sparse file.
	off := f.size.Add(n) - n
	rel := f.lk.Acquire(off, off+n, true)
	defer rel()
	f.writeLocked(p, off)
	return off, nil
}

// Truncate shrinks or grows the file to size n, holding the exclusive
// range [n, MaxEnd) so it cannot race with writes past the new end.
func (f *File) Truncate(n uint64) {
	rel := f.lk.Acquire(n, ^uint64(0), true)
	defer rel()
	cur := f.size.Load()
	if n < cur {
		f.dropBlocksFrom(n)
		// Clear the partial block tail so regrowth reads zeros.
		if bo := n % BlockSize; bo != 0 {
			if b := f.block(n/BlockSize, false); b != nil {
				for i := bo; i < BlockSize; i++ {
					b[i] = 0
				}
			}
		}
		f.size.Store(n)
		return
	}
	f.growSize(n)
}

// Blocks reports how many blocks are resident (tests/stats).
func (f *File) Blocks() int {
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n += len(s.blocks)
		s.mu.Unlock()
	}
	return n
}

// String implements fmt.Stringer.
func (f *File) String() string {
	return fmt.Sprintf("pfs.File(%q, %d bytes, %d blocks)", f.name, f.Size(), f.Blocks())
}
