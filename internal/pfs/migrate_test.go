package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestMigrateBasic(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	const name = "hot-file"
	f, err := s.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3*BlockSize/2)
	if _, err := f.WriteAt(payload, 100); err != nil {
		t.Fatal(err)
	}

	src := s.ShardIndex(name)
	dst := (src + 1) % 4
	v0 := s.PlacementVersion()
	if err := s.Migrate(name, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if s.PlacementVersion() == v0 {
		t.Fatal("placement version did not move")
	}
	if got := s.ShardIndex(name); got != dst {
		t.Fatalf("ShardIndex after migrate = %d, want %d", got, dst)
	}
	// The namespace swapped: the destination shard owns the name, the
	// source no longer knows it.
	if _, err := s.Shard(dst).Open(name); err != nil {
		t.Fatalf("dst shard Open: %v", err)
	}
	if _, err := s.Shard(src).Open(name); !errors.Is(err, ErrNotExist) {
		t.Fatalf("src shard Open = %v, want ErrNotExist", err)
	}
	// Content survived the move.
	nf, err := s.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := nf.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content lost in migration")
	}
	if nf.Size() != f.Size() {
		t.Fatalf("sizes diverge: live %d, stale handle %d", nf.Size(), f.Size())
	}
	// Migrating to the shard the file is already on is a no-op.
	if err := s.Migrate(name, dst); err != nil {
		t.Fatalf("same-shard Migrate: %v", err)
	}
}

// TestMigrateStaleHandle: a handle opened before the migration keeps
// working — reads see the moved content, writes and appends land on the
// live file where fresh handles observe them.
func TestMigrateStaleHandle(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	const name = "stale"
	stale, err := s.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stale.WriteAt([]byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	dst := (s.ShardIndex(name) + 2) % 4
	if err := s.Migrate(name, dst); err != nil {
		t.Fatal(err)
	}

	// Write through the stale handle, threading an Op leased for the old
	// shard — the forwarding path must drop it rather than panic on the
	// foreign domain.
	sop := s.BeginOp()
	if _, err := stale.WriteAtOp(sop.Op((dst+3)%4), []byte("after"), 16); err != nil {
		t.Fatal(err)
	}
	sop.End()
	off, err := stale.Append([]byte("tail"))
	if err != nil {
		t.Fatal(err)
	}

	live, err := s.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if live == stale {
		t.Fatal("Open after migrate returned the stale file")
	}
	buf := make([]byte, 5)
	if _, err := live.ReadAt(buf, 16); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "after" {
		t.Fatalf("stale-handle write lost: %q", buf)
	}
	if _, err := live.ReadAt(buf[:4], off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:4]) != "tail" {
		t.Fatalf("stale-handle append lost: %q", buf[:4])
	}
	// Reads through the stale handle see the live content.
	if _, err := stale.ReadAt(buf, 16); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "after" {
		t.Fatalf("stale-handle read of live content: %q", buf)
	}
}

func TestMigrateErrors(t *testing.T) {
	// Static placements cannot migrate.
	s := NewSharded(4, nil)
	if _, err := s.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Migrate("f", 1); !errors.Is(err, ErrStaticPlacement) {
		t.Fatalf("Migrate on hash placement = %v", err)
	}
	// Unknown names and out-of-range shards fail cleanly.
	m := NewShardedPlacement(4, nil, NewMapPlacement(nil))
	if err := m.Migrate("ghost", 1); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Migrate of missing file = %v", err)
	}
	if _, err := m.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := m.Migrate("f", 4); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := m.Migrate("f", -1); err == nil {
		t.Fatal("negative destination accepted")
	}
}

// TestMigrateRemoveRace: removing a file serializes with migration, so
// the name cannot resurrect from a half-moved copy.
func TestMigrateRemoveRace(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	for round := 0; round < 20; round++ {
		name := fmt.Sprintf("rr-%02d", round)
		if _, err := s.Create(name); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for d := 0; d < 4; d++ {
				s.Migrate(name, d) // ErrNotExist once removed: fine
			}
		}()
		go func() {
			defer wg.Done()
			s.Remove(name)
		}()
		wg.Wait()
		// However the race resolved, the name must be gone from every
		// shard (Remove ran; Migrate must not have resurrected it) —
		// unless Remove lost by running before a migration landed the
		// file elsewhere... which cannot happen, because both hold the
		// migration lock. So: gone, everywhere.
		if _, err := s.Open(name); !errors.Is(err, ErrNotExist) {
			t.Fatalf("round %d: %q survived Remove: %v", round, name, err)
		}
		for i := 0; i < 4; i++ {
			if _, err := s.Shard(i).Open(name); !errors.Is(err, ErrNotExist) {
				t.Fatalf("round %d: %q resurrected on shard %d", round, name, i)
			}
		}
	}
}

// TestRemoveDropsPin: a removed file's shard-map pin dies with it, so
// recreating the name places by the fallback hash, not the dead file's
// route.
func TestRemoveDropsPin(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	const name = "pinned"
	if _, err := s.Create(name); err != nil {
		t.Fatal(err)
	}
	dst := (ShardOf(name, 4) + 1) % 4
	if err := s.Migrate(name, dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(name); err != nil {
		t.Fatal(err)
	}
	if pins := mp.Pinned(); len(pins) != 0 {
		t.Fatalf("pins survive Remove: %v", pins)
	}
	if _, err := s.Create(name); err != nil {
		t.Fatal(err)
	}
	if got, want := s.ShardIndex(name), ShardOf(name, 4); got != want {
		t.Fatalf("recreated file placed at %d, want fallback %d", got, want)
	}
}

// TestOpenCreateDuringMigration races namespace operations against a
// migration churn on the same names: Open must never spuriously
// not-exist and Create must never split-brain a name into two shards.
func TestOpenCreateDuringMigration(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	const name = "ns-race"
	if _, err := s.Create(name); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 200; i++ {
			if err := s.Migrate(name, i%4); err != nil {
				t.Errorf("Migrate: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Open(name); err != nil {
					t.Errorf("Open during migration: %v", err)
					return
				}
				if _, err := s.Create(name); !errors.Is(err, ErrExist) {
					t.Errorf("Create during migration = %v, want ErrExist", err)
					return
				}
				if _, err := s.Stat(name); err != nil {
					t.Errorf("Stat during migration: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Exactly one shard holds the name.
	holders := 0
	for i := 0; i < 4; i++ {
		if _, err := s.Shard(i).Open(name); err == nil {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d shards hold %q after the churn", holders, name)
	}
}

// TestMigrateUnderLoad is the migration race test: readers and writers
// hammer one file through stale handles (never re-resolving) while it
// ping-pongs across all shards, and appenders do the same to a second
// migrating file. Every write must be observable at its range and every
// append at its returned offset once the dust settles. Run under -race.
func TestMigrateUnderLoad(t *testing.T) {
	mp := NewMapPlacement(nil)
	s := NewShardedPlacement(4, nil, mp)
	const (
		hot     = "hot"
		hotLog  = "hot-log"
		writers = 4
		readers = 2
		appends = 120
		span    = 2048
	)
	f, err := s.Create(hot)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := s.Create(hotLog)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Every load goroutine checks in after its first operation, so the
	// migrator provably races against live traffic.
	var ready sync.WaitGroup
	ready.Add(writers + 2)

	// The migrator ping-pongs both files across the shards, then stops
	// the load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		ready.Wait()
		for i := 0; i < 60; i++ {
			if err := s.Migrate(hot, i%4); err != nil {
				t.Errorf("Migrate(%s): %v", hot, err)
				return
			}
			if err := s.Migrate(hotLog, (i+2)%4); err != nil {
				t.Errorf("Migrate(%s): %v", hotLog, err)
				return
			}
		}
	}()

	// Writers: constant per-worker pattern into a fixed disjoint range,
	// through the stale handle, threading an Op leased for whatever
	// shard the placement names right now (racy on purpose — exactly the
	// server's exposure between version check and execution).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var once sync.Once
			defer once.Do(ready.Done)
			payload := bytes.Repeat([]byte{byte(w + 1)}, span)
			base := uint64(1<<20) + uint64(w)*span
			sop := s.BeginOp()
			defer sop.End()
			for {
				op := sop.Op(s.ShardIndex(hot))
				if _, err := f.WriteAtOp(op, payload, base); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				sop.End()
				once.Do(ready.Done)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Readers: a worker's range is all-zero before its first write and
	// all-pattern after — the range lock makes each write atomic, so any
	// mix of the two bytes is a lost-atomicity bug.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, span)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := (r + i) % writers
				base := uint64(1<<20) + uint64(w)*span
				n, err := f.ReadAt(buf, base)
				if err != nil && err != io.EOF {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for j := 0; j < n; j++ {
					if buf[j] != 0 && buf[j] != byte(w+1) {
						t.Errorf("reader %d: byte %d of worker %d range = %#x", r, j, w, buf[j])
						return
					}
				}
			}
		}(r)
	}

	// Appenders: fixed record count, each verified later at its returned
	// offset.
	type landed struct {
		off uint64
		rec []byte
	}
	appendLog := make([][]landed, 2)
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			var once sync.Once
			defer once.Do(ready.Done)
			for i := 0; i < appends; i++ {
				rec := bytes.Repeat([]byte{byte(0xA0 + a)}, 64)
				off, err := lg.Append(rec)
				if err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
				appendLog[a] = append(appendLog[a], landed{off, rec})
				once.Do(ready.Done)
			}
		}(a)
	}

	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle: verify through fresh handles.
	live, err := s.Open(hot)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, span)
	for w := 0; w < writers; w++ {
		base := uint64(1<<20) + uint64(w)*span
		if _, err := live.ReadAt(buf, base); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		for j, b := range buf {
			if b != byte(w+1) {
				t.Fatalf("writer %d range byte %d = %#x after settle", w, j, b)
			}
		}
	}
	liveLog, err := s.Open(hotLog)
	if err != nil {
		t.Fatal(err)
	}
	for a, lands := range appendLog {
		for i, l := range lands {
			got := make([]byte, len(l.rec))
			if _, err := liveLog.ReadAt(got, l.off); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, l.rec) {
				t.Fatalf("appender %d record %d at %d corrupted", a, i, l.off)
			}
		}
	}
}
