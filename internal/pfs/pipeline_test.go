package pfs

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedWAL builds a single-shard WAL over a MemDir whose log fsyncs
// block on gate once armed — the harness for crashing with an fsync in
// flight. Returns the MemDir (for CrashCopy), the WAL, the arm switch
// and the gate (close it to let every blocked and future sync through).
func gatedWAL(t *testing.T) (*MemDir, *WAL, *atomic.Bool, chan struct{}) {
	t.Helper()
	md := NewMemDir()
	var armed atomic.Bool
	gate := make(chan struct{})
	sd := &SlowDir{Dir: md, OnSync: func(string) {
		if armed.Load() {
			<-gate
		}
	}}
	_, wals, _, err := RecoverSharded(sd, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return md, wals[0], &armed, gate
}

// waitSyncInFlight polls until w's write frontier runs ahead of its
// sync frontier — an fsync is in flight (ours is parked on the gate).
func waitSyncInFlight(t *testing.T, w *WAL) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for w.SyncLag() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sync never went in flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCrashMidFsyncAckedPrefixIsSyncFrontier crashes the store with an
// fsync in flight: the record is written (write frontier covers it)
// but not durable (sync frontier does not), so Commit must still be
// blocked — the acked prefix is the sync frontier, never the write
// frontier. Recovery of the crash image must keep everything below the
// sync frontier and at most a replayable prefix above it; once the
// fsync completes and Commit returns, a second crash must keep the
// record.
func TestCrashMidFsyncAckedPrefixIsSyncFrontier(t *testing.T) {
	md, w, armed, gate := gatedWAL(t)
	rng := rand.New(rand.NewSource(42))

	if _, err := w.Append(&Record{Kind: RecCreate, Name: "f"}); err != nil {
		t.Fatal(err)
	}
	end, err := w.Append(&Record{Kind: RecWrite, Name: "f", Off: 0, Data: []byte("durable!")})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end, true); err != nil {
		t.Fatal(err)
	}

	armed.Store(true)
	end2, err := w.Append(&Record{Kind: RecWrite, Name: "f", Off: 8, Data: []byte("pending!")})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Commit(end2, true) }()
	waitSyncInFlight(t, w)

	// The crash: snapshot the directory while the fsync is parked on
	// the gate. The commit must not have returned an ack.
	select {
	case err := <-done:
		t.Fatalf("Commit returned (%v) with its fsync still in flight", err)
	default:
	}
	crashed := md.CrashCopy(rng)

	store, _, _, err := RecoverSharded(crashed, 1, nil, nil)
	if err != nil {
		t.Fatalf("recovery mid-fsync: %v", err)
	}
	f, err := store.Open("f")
	if err != nil {
		t.Fatalf("sync-frontier record lost: %v", err)
	}
	got := make([]byte, 16)
	f.ReadAt(got, 0)
	if !bytes.Equal(got[:8], []byte("durable!")) {
		t.Fatalf("acked bytes lost across mid-fsync crash: %q", got[:8])
	}
	// The in-flight record may survive (it is in the file, a crash can
	// keep any prefix of the unsynced tail) — but only as exactly
	// itself or nothing, never torn into the applied state.
	if !bytes.Equal(got[8:], []byte("pending!")) && !bytes.Equal(got[8:], make([]byte, 8)) {
		t.Fatalf("unacked record half-applied: %q", got[8:])
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Commit after fsync completed: %v", err)
	}
	if w.SyncLag() != 0 {
		t.Fatalf("SyncLag = %d after a drained commit", w.SyncLag())
	}
	// Now the record is acked, so it must survive any crash.
	store2, _, _, err := RecoverSharded(md.CrashCopy(rng), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := store2.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, 16)
	f2.ReadAt(got2, 0)
	if !bytes.Equal(got2, []byte("durable!pending!")) {
		t.Fatalf("acked record lost after fsync completed: %q", got2)
	}
}

// TestWALTapHoldsMidFsyncBytes: a synced tap must not deliver a record
// whose fsync is still in flight — replication acks must never outrun
// the sync frontier, even though the bytes are already in the file.
// The sibling of TestWALTapHoldsUnsyncedBytes, with the fsync issued
// but parked instead of never requested.
func TestWALTapHoldsMidFsyncBytes(t *testing.T) {
	md, w, armed, gate := gatedWAL(t)
	_ = md
	tap, err := w.Tap(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	armed.Store(true)
	rec := &Record{Kind: RecWrite, Name: "f", Off: 5, Data: []byte("inflight")}
	end, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Commit(end, true) }()
	waitSyncInFlight(t, w)

	got := make(chan []byte, 1)
	go func() {
		b, _ := tap.Next(nil)
		got <- b
	}()
	select {
	case <-got:
		t.Fatal("mid-fsync bytes delivered to a synced tap")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		dec, n, err := DecodeRecord(b)
		if err != nil || n != len(b) || dec.LSN != rec.LSN {
			t.Fatalf("post-sync delivery wrong: %d bytes, %v", len(b), err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("synced bytes never delivered")
	}
}

// TestCommitPipelineOverlapsFsyncs proves the pipeline actually
// overlaps: with the gate holding one commit's fsync, a second
// commit's fsync must still be issued (two in flight at once) — and
// under the serialized baseline it must not be.
func TestCommitPipelineOverlapsFsyncs(t *testing.T) {
	md := NewMemDir()
	var armed atomic.Bool
	var inflight, peak atomic.Int32
	var releaseMu sync.Mutex
	release := make(chan struct{})
	getRelease := func() chan struct{} {
		releaseMu.Lock()
		defer releaseMu.Unlock()
		return release
	}
	sd := &SlowDir{Dir: md, OnSync: func(string) {
		if !armed.Load() {
			return // recovery's own checkpoint fsync passes through
		}
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-getRelease()
		inflight.Add(-1)
	}}
	_, wals, _, err := RecoverSharded(sd, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := wals[0]
	armed.Store(true)

	commit := func(done chan<- error) {
		end, err := w.Append(&Record{Kind: RecCreate, Name: "f"})
		if err != nil {
			done <- err
			return
		}
		go func() { done <- w.Commit(end, true) }()
	}
	waitInflight := func(want int32, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for peak.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s (peak %d, want %d)", what, peak.Load(), want)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	d1, d2 := make(chan error, 1), make(chan error, 1)
	commit(d1)
	waitInflight(1, "first fsync never issued")
	commit(d2)
	waitInflight(2, "pipelined WAL never overlapped fsyncs")
	close(release)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	if err := <-d2; err != nil {
		t.Fatal(err)
	}

	// Serialized baseline: the same dance must keep fsyncs one at a
	// time — the second commit waits out the first's round.
	inflight.Store(0)
	peak.Store(0)
	hold := make(chan struct{})
	releaseMu.Lock()
	release = hold
	releaseMu.Unlock()
	w.SetCommitPipeline(0)
	d3, d4 := make(chan error, 1), make(chan error, 1)
	commit(d3)
	waitInflight(1, "serialized fsync never issued")
	commit(d4)
	time.Sleep(20 * time.Millisecond) // give a buggy overlap time to show
	if p := peak.Load(); p > 1 {
		t.Fatalf("serialized WAL overlapped %d fsyncs", p)
	}
	close(hold)
	if err := <-d3; err != nil {
		t.Fatal(err)
	}
	if err := <-d4; err != nil {
		t.Fatal(err)
	}
}
