package pfs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lockapi"
)

func TestShardOfStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 64} {
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("file-%04d", i)
			s := ShardOf(name, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", name, n, s)
			}
			if s != ShardOf(name, n) {
				t.Fatalf("ShardOf(%q, %d) not stable", name, n)
			}
		}
	}
	if ShardOf("anything", 0) != 0 || ShardOf("anything", 1) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

func TestShardOfSpreads(t *testing.T) {
	// 256 sequential names across 8 shards: no shard may be empty and
	// none may hold more than half the files — a weak bound, but it
	// catches a broken hash (everything on one shard) immediately.
	const n, files = 8, 256
	var counts [n]int
	for i := 0; i < files; i++ {
		counts[ShardOf(fmt.Sprintf("wload-%04d", i), n)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no files: %v", s, counts)
		}
		if c > files/2 {
			t.Fatalf("shard %d got %d of %d files: %v", s, c, files, counts)
		}
	}
}

func TestShardedNamespace(t *testing.T) {
	s := NewSharded(4, nil)
	const files = 32
	for i := 0; i < files; i++ {
		if _, err := s.Create(fmt.Sprintf("f%02d", i)); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	// Each file opens from its owning shard and from the top-level API.
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%02d", i)
		f, err := s.Open(name)
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		if g, err := s.Shard(s.ShardIndex(name)).Open(name); err != nil || g != f {
			t.Fatalf("shard-local Open(%s) = %v, %v; want the same file", name, g, err)
		}
		// No other shard knows the name.
		for i := 0; i < s.NumShards(); i++ {
			if i == s.ShardIndex(name) {
				continue
			}
			if _, err := s.Shard(i).Open(name); err != ErrNotExist {
				t.Fatalf("foreign shard %d Open(%s) = %v, want ErrNotExist", i, name, err)
			}
		}
	}
	// List is the union of the shards.
	names := s.List()
	if len(names) != files {
		t.Fatalf("List returned %d names, want %d", len(names), files)
	}
	sort.Strings(names)
	for i, name := range names {
		if want := fmt.Sprintf("f%02d", i); name != want {
			t.Fatalf("List[%d] = %q, want %q", i, name, want)
		}
	}
	if err := s.Remove("f00"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := s.Open("f00"); err != ErrNotExist {
		t.Fatalf("Open removed = %v", err)
	}
	s.Close()
	if _, err := s.Create("late"); err != ErrClosed {
		t.Fatalf("Create after Close = %v", err)
	}
}

// TestShardedOpLazyLease: a batch touching one shard leases exactly one
// context, crossing shards swaps the lease, and End resets the set for
// reuse. Leases are observable through domain slot exhaustion: a 1-slot
// domain admits one Op, so a second lease against the same shard inside
// one batch would deadlock if the ShardedOp did not reuse the first,
// and holding shard 0's slot across the shard 1 operations would
// deadlock a later batch that needed shard 0 back.
func TestShardedOpLazyLease(t *testing.T) {
	doms := []*core.Domain{core.NewDomain(1), core.NewDomain(1)}
	s := ShardedFrom(
		NewInDomain(doms[0], nil),
		NewInDomain(doms[1], nil),
	)
	var files []*File
	for i := 0; files == nil || len(files) < 2; i++ {
		name := fmt.Sprintf("f%d", i)
		if ShardOf(name, 2) == len(files)%2 {
			f, err := s.Create(name)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
	}

	sop := s.BeginOp()
	data := []byte("abc")
	for round := 0; round < 3; round++ {
		// Many operations against shard 0 under one batch: one lease,
		// reused — with a 1-slot domain, a second lease would hang.
		for i := 0; i < 10; i++ {
			if _, err := files[0].WriteAtOp(sop.Op(0), data, uint64(i)*8); err != nil {
				t.Fatal(err)
			}
		}
		// Crossing to the second shard swaps the lease (shard 0's slot is
		// released first)...
		if _, err := files[1].WriteAtOp(sop.Op(1), data, 0); err != nil {
			t.Fatal(err)
		}
		// ...which is provable by crossing back mid-batch: re-leasing
		// shard 0's only slot hangs unless Op(1) released it.
		if _, err := files[0].WriteAtOp(sop.Op(0), data, 128); err != nil {
			t.Fatal(err)
		}
		sop.End()
	}
	// After End the slots are free again: plain per-call paths proceed.
	if _, err := files[0].WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrent hammers disjoint files across shards from many
// goroutines, each threading a per-worker ShardedOp — the server's
// access pattern — and verifies the data planes stayed independent.
func TestShardedConcurrent(t *testing.T) {
	s := NewSharded(4, nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%02d", w)
			f, err := s.Create(name)
			if err != nil {
				t.Errorf("Create(%s): %v", name, err)
				return
			}
			shard := s.ShardIndex(name)
			payload := bytes.Repeat([]byte{byte(w + 1)}, 512)
			sop := s.BeginOp()
			for r := 0; r < 50; r++ {
				op := sop.Op(shard)
				if _, err := f.WriteAtOp(op, payload, uint64(r)*512); err != nil {
					t.Errorf("WriteAtOp: %v", err)
					return
				}
				got := make([]byte, 512)
				if _, err := f.ReadAtOp(op, got, uint64(r)*512); err != nil {
					t.Errorf("ReadAtOp: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d round %d: read back wrong bytes", w, r)
					return
				}
				sop.End()
			}
		}(w)
	}
	wg.Wait()
}

// TestForeignDomainFallback: a file whose lock leases from a different
// domain than the FS probe lock must opt out of the Op fast path
// (SameOpDomain false) and take the plain per-call path — threading a
// leased Op through it must neither panic nor race. The factory below
// gives every lock its own domain, so no file ever matches the probe.
func TestForeignDomainFallback(t *testing.T) {
	mk := func() lockapi.Locker {
		return lockapi.NewListRW(core.NewDomain(8))
	}
	fs := New(mk)
	f, err := fs.Create("foreign")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker threads an Op leased from the probe lock's
			// domain; the file's foreign lock must ignore it safely.
			op := fs.BeginOp()
			defer op.End()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 256)
			base := uint64(w) * 4096
			for r := 0; r < 100; r++ {
				if _, err := f.WriteAtOp(op, payload, base); err != nil {
					t.Errorf("WriteAtOp: %v", err)
					return
				}
				got := make([]byte, 256)
				if _, err := f.ReadAtOp(op, got, base); err != nil {
					t.Errorf("ReadAtOp: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d: read back wrong bytes", w)
					return
				}
				if _, err := f.AppendOp(op, payload[:16]); err != nil {
					t.Errorf("AppendOp: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
