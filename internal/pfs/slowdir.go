package pfs

import "time"

// SlowDir wraps a Dir to make every log-file Sync cost SyncDelay and,
// when OnSync is set, announce itself first. It exists for the test
// and bench suites: the delay models a disk whose flush latency
// dwarfs its write latency (the regime the pipelined commit path is
// built for — overlapped fsyncs amortize the delay, serialized ones
// pay it per round), and the hook gives crash tests a place to stall
// an fsync mid-flight and cut power around it. Directory-level Sync
// (namespace durability) passes through undelayed: it is off the
// commit hot path and slowing it only drags checkpoint rotation into
// every measurement.
type SlowDir struct {
	Dir
	SyncDelay time.Duration
	// OnSync, when set, runs at the start of every log-file Sync with
	// the file's name, before the delay and the underlying sync. It
	// may block — that is the point: a crash test holds the sync here
	// while it snapshots the directory.
	OnSync func(name string)
}

// Create implements Dir, wrapping the file so its Syncs slow down.
func (d *SlowDir) Create(name string) (LogFile, error) {
	f, err := d.Dir.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{f: f, d: d, name: name}, nil
}

type slowFile struct {
	f    LogFile
	d    *SlowDir
	name string
}

func (f *slowFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *slowFile) Close() error                { return f.f.Close() }

func (f *slowFile) Sync() error {
	if hook := f.d.OnSync; hook != nil {
		hook(f.name)
	}
	if f.d.SyncDelay > 0 {
		time.Sleep(f.d.SyncDelay)
	}
	return f.f.Sync()
}
