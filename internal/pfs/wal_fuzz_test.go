package pfs

import (
	"bytes"
	"testing"
)

// fuzzPrefix is a known-good log prefix: whatever the fuzzer appends,
// these records must survive the scan untouched.
func fuzzPrefix() ([]byte, []Record) {
	recs := []Record{
		{Kind: RecCreate, LSN: 1, Shard: 0, Name: "f"},
		{Kind: RecWrite, LSN: 2, Shard: 0, Name: "f", Off: 100, Data: []byte("stable")},
		{Kind: RecAppend, LSN: 3, Shard: 0, Name: "f", Off: 106, Data: []byte("tail")},
	}
	return buildLog(0, 1, recs...), recs
}

// FuzzWALReplay feeds the log decoder arbitrary tails after a valid
// prefix: truncated, bit-flipped, duplicated or wholly synthetic
// records. Recovery must never panic, must keep every record of the
// valid prefix, and must stop scanning at the last valid record —
// anything it does accept must re-encode to what it read (no record is
// half-parsed).
func FuzzWALReplay(f *testing.F) {
	prefix, _ := fuzzPrefix()
	extra, err := appendRecord(nil, &Record{Kind: RecWrite, LSN: 4, Shard: 0, Name: "f", Off: 0, Data: []byte("x")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})                            // clean log
	f.Add(extra)                               // valid continuation
	f.Add(extra[:len(extra)-1])                // torn tail
	f.Add(extra[:walFrameHdr+3])               // torn mid-header
	f.Add(append([]byte(nil), prefix[20:]...)) // duplicated records (LSN replay)
	flip := append([]byte(nil), extra...)
	flip[walFrameHdr+9] ^= 0x40 // bit flip inside the body
	f.Add(flip)
	huge := append([]byte(nil), extra...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // absurd length
	f.Add(huge)
	// Pipelined-commit crash shapes: the write frontier can run several
	// complete records past the sync frontier, so a crash may leave a
	// whole unsynced batch (replayable), or such a batch with its last
	// frame torn mid-record.
	batch, err := appendRecord(append([]byte(nil), extra...),
		&Record{Kind: RecAppend, LSN: 5, Shard: 0, Name: "f", Off: 110, Data: []byte("pipelined")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)                // complete-but-unsynced batch beyond the sync frontier
	f.Add(batch[:len(batch)-4]) // …with the final record torn mid-fsync

	f.Fuzz(func(t *testing.T, tail []byte) {
		content := append(append([]byte(nil), prefix...), tail...)
		recs, _, torn, err := scanLog(content, 0)
		if err != nil {
			t.Fatalf("scan of shard-0 log errored: %v", err)
		}
		if len(recs) < 3 {
			t.Fatalf("valid prefix lost: %d records", len(recs))
		}
		// Stop-at-last-valid: re-encoding what the scan accepted must
		// reproduce the log up to exactly len(content)-torn bytes.
		reenc := appendWalHeader(nil, 0, 1)
		lastLSN := uint64(0)
		for i := range recs {
			if recs[i].LSN <= lastLSN {
				t.Fatalf("record %d: LSN %d not increasing", i, recs[i].LSN)
			}
			lastLSN = recs[i].LSN
			var encErr error
			if reenc, encErr = appendRecord(reenc, &recs[i]); encErr != nil {
				t.Fatalf("record %d accepted by the scan but refuses to re-encode: %v", i, encErr)
			}
		}
		if len(reenc) != len(content)-torn || !bytes.Equal(reenc, content[:len(reenc)]) {
			t.Fatalf("scan accepted %d records but they re-encode to %d bytes; content %d, torn %d",
				len(recs), len(reenc), len(content), torn)
		}

		// Full recovery over the same image must not panic and must
		// yield a servable store; the fuzzed records may reference any
		// name, offset or snapshot bytes.
		d := NewMemDir()
		lf, err := d.Create(shardBase(0) + logSuffix)
		if err != nil {
			t.Fatal(err)
		}
		lf.Write(content)
		lf.Sync()
		d.Sync()
		store, _, _, err := RecoverSharded(d, 2, nil, NewMapPlacement(nil))
		if err != nil {
			// Structural refusals (e.g. a record body that decodes but
			// whose snapshot is malformed) are fine; panics are not.
			return
		}
		// The prefix's file must exist with its stable byte intact
		// unless a fuzzed later record legitimately overwrote it.
		if _, err := store.Open("f"); err != nil {
			t.Fatalf("prefix file lost: %v", err)
		}
	})
}
