// Package ebr implements epoch-based memory reclamation (Fraser 2004) for
// lock-less data structures, as required by the list-based range locks of
// §4.4: threads traverse list nodes concurrently with threads unlinking
// them, so an unlinked node may only be recycled once no traversal can
// still hold a reference to it.
//
// The paper's user-space scheme couples per-thread epoch counters with
// per-thread node pools and a *blocking* barrier that waits for every
// in-flight operation to finish. A blocking barrier can deadlock in the
// range-lock setting (the barrier caller may hold a range that a spinning,
// epoch-active thread is waiting for), so this package implements the
// standard non-blocking variant: a global epoch, per-slot pinned epochs,
// and retire lists that become reclaimable two epoch advances after the
// retiring epoch. When nothing is reclaimable the caller falls back to
// fresh allocation instead of waiting.
//
// Go has no thread-local storage, so "per-thread" state becomes per-slot
// state: a goroutine leases a Slot for the duration of one operation (or
// as long as it likes) and returns it afterwards. Values under management
// are opaque uint64 handles (the range-lock arena addresses nodes by
// handle, see internal/core).
//
// Two design points keep the lease path off shared cache lines, so that
// operations on disjoint ranges — which the lock-free list lets proceed in
// parallel — do not re-serialize on the reclamation layer:
//
//   - The free-slot pool is sharded into GOMAXPROCS-sized stripes. Each
//     stripe holds a one-slot "box" (exchanged with a single atomic RMW —
//     the common case for a goroutine cycling one slot) plus a Treiber
//     overflow stack. A goroutine picks its stripe by hashing its stack
//     address and steals from neighbouring stripes only when its own runs
//     dry, so concurrent leases touch disjoint words.
//
//   - Epoch advancement is incremental: a watermark tracks the highest
//     slot index ever leased, and tryAdvance scans only [0, watermark)
//     instead of the domain's full capacity. Because stripes hand out low
//     indices first, the watermark settles near the peak number of
//     concurrently leased slots, making an advance attempt O(active), not
//     O(capacity). Attempts stay amortized (every 64th retire plus each
//     collect) and race benignly on the final epoch CAS.
package ebr

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/locks"
)

// gracePeriod is the number of global epoch advances after which a retired
// value is guaranteed unreachable: a value retired in epoch e is reclaimable
// once the global epoch reaches e+2 (every operation pinned before the
// unlink has unpinned by then).
const gracePeriod = 2

// maxStripes bounds the free-pool sharding (and thus the cost of a
// worst-case steal scan).
const maxStripes = 64

// stripe is one shard of the free-slot pool, padded so that neighbouring
// stripes never share a cache line.
type stripe struct {
	// box caches one free slot as idx+1 (0 = empty). It is the fast path:
	// leased with a single Swap, returned with a single CompareAndSwap.
	box atomic.Uint64

	// stack is the overflow Treiber stack: (version<<32) | (idx+1), linked
	// through slot.nextFree. The version tag prevents ABA reuse.
	stack atomic.Uint64

	_ [14]uint64 // pad to 2 cache lines
}

// Domain is an independent reclamation domain. All goroutines operating on
// one lock-less structure (or family of structures sharing an arena) must
// use the same Domain.
type Domain struct {
	epoch atomic.Uint64 // global epoch, starts at gracePeriod so subtraction never underflows
	_     [7]uint64     // keep the hot epoch word off the advance-state line

	// hi is the watermark: one past the highest slot index ever leased.
	// Slots at or above hi have never been pinned, so tryAdvance can skip
	// them entirely.
	hi atomic.Uint32

	// advAttempts / advScanned count epoch-advance attempts and the total
	// slot states they examined — the observable proof that advancement
	// work scales with active slots, not capacity (see AdvanceStats).
	advAttempts atomic.Uint64
	advScanned  atomic.Uint64
	_           [5]uint64

	stripes []stripe
	mask    uint32 // len(stripes)-1; len is a power of two
	slots   []slot
}

type retired struct {
	val   uint64
	epoch uint64
}

type slot struct {
	// state encodes (pinnedEpoch << 1) | active.
	state atomic.Uint64

	// nextFree links the slot into a stripe's overflow stack while unleased.
	nextFree atomic.Uint32

	// home is the stripe the current lease was issued for; the release
	// returns the slot there. Written only by the lessee (the lease
	// transfer through the stripe atomics orders the accesses).
	home uint32

	// limbo holds values retired through this slot, oldest first. It is
	// accessed only by the goroutine currently leasing the slot.
	limbo []retired

	_ [11]uint64 // pad to 2 cache lines
}

// Slot is a leased per-operation context. A Slot must be used by one
// goroutine at a time.
type Slot struct {
	d   *Domain
	idx uint32
}

// NewDomain creates a reclamation domain with capacity for n concurrently
// leased slots. n must be at least 1. The free pool is sharded across
// min(GOMAXPROCS, 64) stripes (rounded up to a power of two).
func NewDomain(n int) *Domain {
	return NewDomainStripes(n, 0)
}

// NewDomainStripes is NewDomain with an explicit stripe count (rounded up
// to a power of two, capped at 64); stripes <= 0 selects the GOMAXPROCS
// default. Exposed for tests and tools that need a deterministic layout.
func NewDomainStripes(n, stripes int) *Domain {
	if n < 1 {
		panic(fmt.Sprintf("ebr: invalid slot count %d", n))
	}
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
	}
	if stripes > maxStripes {
		stripes = maxStripes
	}
	ns := 1
	for ns < stripes {
		ns <<= 1
	}
	d := &Domain{
		stripes: make([]stripe, ns),
		mask:    uint32(ns - 1),
		slots:   make([]slot, n),
	}
	d.epoch.Store(gracePeriod)
	// Seed the pool round-robin: slot i belongs to stripe i&mask, boxes get
	// the lowest indices, overflow stacks are pushed high-to-low so that
	// low indices surface first. Handing out low indices first is what
	// keeps the watermark — and with it the advance scan — near the number
	// of slots actually in circulation.
	for i := n - 1; i >= 0; i-- {
		idx := uint32(i)
		st := idx & d.mask
		d.slots[i].home = st
		if uint32(i) < uint32(ns) {
			d.stripes[st].box.Store(uint64(idx + 1))
		} else {
			d.pushStack(st, idx)
		}
	}
	return d
}

// ghash hashes the calling goroutine's identity (approximated by a stack
// address — distinct goroutines occupy distinct stacks) into a stripe
// selector. Stability across calls is a performance matter only; any value
// is correct.
func ghash() uint32 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h *= 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

func (d *Domain) pushStack(st, idx uint32) {
	s := &d.stripes[st]
	for {
		head := s.stack.Load()
		d.slots[idx].nextFree.Store(uint32(head & 0xffffffff))
		next := (head>>32+1)<<32 | uint64(idx+1)
		if s.stack.CompareAndSwap(head, next) {
			return
		}
	}
}

func (d *Domain) popStack(st uint32) (uint32, bool) {
	s := &d.stripes[st]
	for {
		head := s.stack.Load()
		idxPlus1 := uint32(head & 0xffffffff)
		if idxPlus1 == 0 {
			return 0, false
		}
		idx := idxPlus1 - 1
		next := (head>>32+1)<<32 | uint64(d.slots[idx].nextFree.Load())
		if s.stack.CompareAndSwap(head, next) {
			return idx, true
		}
	}
}

// AcquireSlot leases a slot, waiting politely if all slots are in use.
// Callers typically cache the slot for the duration of one operation (or
// one worker's lifetime); holding more slots than the domain's capacity
// concurrently blocks forever.
func (d *Domain) AcquireSlot() Slot {
	h := ghash() & d.mask
	// Fast path: the calling goroutine's own box.
	if v := d.stripes[h].box.Swap(0); v != 0 {
		return d.leased(uint32(v-1), h)
	}
	var b locks.Backoff
	for {
		// All boxes first (they hold the lowest indices, preserving the
		// low-indices-first invariant the watermark depends on), then the
		// overflow stacks; own stripe first in both sweeps. The own box
		// must be rechecked each round: a release may land there while we
		// wait, and skipping it would spin forever on a 1-slot handoff.
		// Boxes are probed with a read before the Swap so that waiters do
		// not bounce every stripe's cache line around while spinning.
		for i := uint32(0); i <= d.mask; i++ {
			st := (h + i) & d.mask
			if d.stripes[st].box.Load() != 0 {
				if v := d.stripes[st].box.Swap(0); v != 0 {
					return d.leased(uint32(v-1), h)
				}
			}
		}
		for i := uint32(0); i <= d.mask; i++ {
			if idx, ok := d.popStack((h + i) & d.mask); ok {
				return d.leased(idx, h)
			}
		}
		b.Pause()
	}
}

// TryAcquireSlot is AcquireSlot without the wait: one sweep over the
// boxes and overflow stacks, reporting failure when every slot is leased.
// For callers that can fall back to a slot-free path instead of blocking
// (e.g. a release while the caller itself holds the domain's slots).
func (d *Domain) TryAcquireSlot() (Slot, bool) {
	h := ghash() & d.mask
	if v := d.stripes[h].box.Swap(0); v != 0 {
		return d.leased(uint32(v-1), h), true
	}
	for i := uint32(0); i <= d.mask; i++ {
		st := (h + i) & d.mask
		if d.stripes[st].box.Load() != 0 {
			if v := d.stripes[st].box.Swap(0); v != 0 {
				return d.leased(uint32(v-1), h), true
			}
		}
	}
	for i := uint32(0); i <= d.mask; i++ {
		if idx, ok := d.popStack((h + i) & d.mask); ok {
			return d.leased(idx, h), true
		}
	}
	return Slot{}, false
}

// leased finalizes a lease: records the lessee's home stripe and raises the
// watermark if this slot index has never circulated before.
func (d *Domain) leased(idx, home uint32) Slot {
	d.slots[idx].home = home
	for {
		h := d.hi.Load()
		if idx < h {
			break
		}
		if d.hi.CompareAndSwap(h, idx+1) {
			break
		}
	}
	return Slot{d: d, idx: idx}
}

// ReleaseSlot returns a leased slot to the domain. The slot must be
// unpinned. Any values still in its limbo list stay attached to the slot
// and will be collected by a future lessee.
func (d *Domain) ReleaseSlot(s Slot) {
	if s.d != d {
		panic("ebr: slot released to wrong domain")
	}
	home := d.slots[s.idx].home
	if !d.stripes[home].box.CompareAndSwap(0, uint64(s.idx+1)) {
		d.pushStack(home, s.idx)
	}
}

// Epoch returns the current global epoch (useful for tests and stats).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Capacity returns the domain's slot capacity.
func (d *Domain) Capacity() int { return len(d.slots) }

// Watermark returns one past the highest slot index ever leased — the
// number of slot states an epoch-advance attempt currently examines.
func (d *Domain) Watermark() int { return int(d.hi.Load()) }

// AdvanceStats reports how many epoch-advance attempts ran and how many
// slot states they examined in total. The ratio scanned/attempts is the
// per-attempt scan cost, which stays proportional to the peak number of
// concurrently leased slots rather than the domain capacity.
func (d *Domain) AdvanceStats() (attempts, scanned uint64) {
	return d.advAttempts.Load(), d.advScanned.Load()
}

// Index returns the slot's dense index in [0, n); callers use it to attach
// their own per-slot state (e.g. the node pools of internal/core).
func (s Slot) Index() int { return int(s.idx) }

func (s Slot) slot() *slot { return &s.d.slots[s.idx] }

// Pin marks the slot active at the current global epoch. Every traversal
// of a protected structure must happen between Pin and Unpin.
func (s Slot) Pin() {
	e := s.d.epoch.Load()
	s.slot().state.Store(e<<1 | 1)
}

// Unpin marks the slot quiescent.
func (s Slot) Unpin() {
	st := s.slot().state.Load()
	s.slot().state.Store(st &^ 1)
}

// Retire records that val has been unlinked from the protected structure
// and may be handed back to the allocator after a grace period. Retire may
// be called pinned or unpinned.
func (s Slot) Retire(val uint64) {
	sl := s.slot()
	sl.limbo = append(sl.limbo, retired{val: val, epoch: s.d.epoch.Load()})
	// Nudge the epoch forward periodically so that reclamation keeps pace
	// with retirement even when Collect is called rarely. (Advancing while
	// pinned is safe: the pinned slot merely blocks the *next* advance.)
	if len(sl.limbo)&63 == 0 {
		s.d.tryAdvance()
	}
}

// LimboLen reports how many values are awaiting reclamation on this slot.
func (s Slot) LimboLen() int { return len(s.slot().limbo) }

// tryAdvance attempts to advance the global epoch by one. The epoch can
// advance only when every active slot has observed the current epoch; only
// slots below the lease watermark can ever have been active, so the scan
// stops there. Concurrent attempts race benignly on the final CAS —
// deliberately no mutual exclusion, so a preempted attempt cannot stall
// everyone else's.
func (d *Domain) tryAdvance() {
	e := d.epoch.Load()
	hi := int(d.hi.Load())
	scanned := 0
	ok := true
	for i := 0; i < hi; i++ {
		st := d.slots[i].state.Load()
		scanned++
		if st&1 == 1 && st>>1 != e {
			ok = false // an operation is still running in an older epoch
			break
		}
	}
	d.advAttempts.Add(1)
	d.advScanned.Add(uint64(scanned))
	if ok {
		d.epoch.CompareAndSwap(e, e+1)
	}
}

// Collect attempts to reclaim values retired through this slot, appending
// at most max of them to dst and returning the extended slice. It advances
// the global epoch opportunistically. Collect never blocks: if no value
// has cleared its grace period, dst is returned unchanged.
//
// The caller must not be pinned (a pinned slot would block the epoch
// advance it is asking for).
func (s Slot) Collect(dst []uint64, max int) []uint64 {
	d := s.d
	d.tryAdvance()
	safe := d.epoch.Load() // values retired at epoch <= safe-gracePeriod are free
	sl := s.slot()
	n := 0
	for n < len(sl.limbo) && n < max && sl.limbo[n].epoch+gracePeriod <= safe {
		dst = append(dst, sl.limbo[n].val)
		n++
	}
	if n > 0 {
		rest := copy(sl.limbo, sl.limbo[n:])
		sl.limbo = sl.limbo[:rest]
	}
	return dst
}
