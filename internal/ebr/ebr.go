// Package ebr implements epoch-based memory reclamation (Fraser 2004) for
// lock-less data structures, as required by the list-based range locks of
// §4.4: threads traverse list nodes concurrently with threads unlinking
// them, so an unlinked node may only be recycled once no traversal can
// still hold a reference to it.
//
// The paper's user-space scheme couples per-thread epoch counters with
// per-thread node pools and a *blocking* barrier that waits for every
// in-flight operation to finish. A blocking barrier can deadlock in the
// range-lock setting (the barrier caller may hold a range that a spinning,
// epoch-active thread is waiting for), so this package implements the
// standard non-blocking variant: a global epoch, per-slot pinned epochs,
// and retire lists that become reclaimable two epoch advances after the
// retiring epoch. When nothing is reclaimable the caller falls back to
// fresh allocation instead of waiting.
//
// Go has no thread-local storage, so "per-thread" state becomes per-slot
// state: a goroutine leases a Slot for the duration of one operation (or
// longer) from a Treiber free-list. Values under management are opaque
// uint64 handles (the range-lock arena addresses nodes by handle, see
// internal/core).
package ebr

import (
	"fmt"
	"sync/atomic"

	"repro/internal/locks"
)

// gracePeriod is the number of global epoch advances after which a retired
// value is guaranteed unreachable: a value retired in epoch e is reclaimable
// once the global epoch reaches e+2 (every operation pinned before the
// unlink has unpinned by then).
const gracePeriod = 2

// Domain is an independent reclamation domain. All goroutines operating on
// one lock-less structure (or family of structures sharing an arena) must
// use the same Domain.
type Domain struct {
	epoch atomic.Uint64 // global epoch, starts at gracePeriod so subtraction never underflows
	free  atomic.Uint64 // Treiber stack head: (version<<32) | (slot index + 1)
	slots []slot
}

type retired struct {
	val   uint64
	epoch uint64
}

type slot struct {
	_ [8]uint64 // cache-line padding between slots

	// state encodes (pinnedEpoch << 1) | active.
	state atomic.Uint64

	// nextFree links the slot into the Domain free stack while unleased.
	nextFree atomic.Uint32

	// limbo holds values retired through this slot, oldest first. It is
	// accessed only by the goroutine currently leasing the slot.
	limbo []retired
}

// Slot is a leased per-operation context. A Slot must be used by one
// goroutine at a time.
type Slot struct {
	d   *Domain
	idx uint32
}

// NewDomain creates a reclamation domain with capacity for n concurrently
// leased slots. n must be at least 1.
func NewDomain(n int) *Domain {
	if n < 1 {
		panic(fmt.Sprintf("ebr: invalid slot count %d", n))
	}
	d := &Domain{slots: make([]slot, n)}
	d.epoch.Store(gracePeriod)
	// Push every slot onto the free stack.
	for i := n - 1; i >= 0; i-- {
		d.pushFree(uint32(i))
	}
	return d
}

func (d *Domain) pushFree(idx uint32) {
	for {
		head := d.free.Load()
		d.slots[idx].nextFree.Store(uint32(head & 0xffffffff))
		next := (head>>32+1)<<32 | uint64(idx+1)
		if d.free.CompareAndSwap(head, next) {
			return
		}
	}
}

func (d *Domain) popFree() (uint32, bool) {
	for {
		head := d.free.Load()
		idxPlus1 := uint32(head & 0xffffffff)
		if idxPlus1 == 0 {
			return 0, false
		}
		idx := idxPlus1 - 1
		next := (head>>32+1)<<32 | uint64(d.slots[idx].nextFree.Load())
		if d.free.CompareAndSwap(head, next) {
			return idx, true
		}
	}
}

// AcquireSlot leases a slot, waiting politely if all slots are in use.
// Callers typically cache the slot for the duration of one lock operation.
func (d *Domain) AcquireSlot() Slot {
	var b locks.Backoff
	for {
		if idx, ok := d.popFree(); ok {
			return Slot{d: d, idx: idx}
		}
		b.Pause()
	}
}

// ReleaseSlot returns a leased slot to the domain. The slot must be
// unpinned. Any values still in its limbo list stay attached to the slot
// and will be collected by a future lessee.
func (d *Domain) ReleaseSlot(s Slot) {
	if s.d != d {
		panic("ebr: slot released to wrong domain")
	}
	d.pushFree(s.idx)
}

// Epoch returns the current global epoch (useful for tests and stats).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Index returns the slot's dense index in [0, n); callers use it to attach
// their own per-slot state (e.g. the node pools of internal/core).
func (s Slot) Index() int { return int(s.idx) }

func (s Slot) slot() *slot { return &s.d.slots[s.idx] }

// Pin marks the slot active at the current global epoch. Every traversal
// of a protected structure must happen between Pin and Unpin.
func (s Slot) Pin() {
	e := s.d.epoch.Load()
	s.slot().state.Store(e<<1 | 1)
}

// Unpin marks the slot quiescent.
func (s Slot) Unpin() {
	st := s.slot().state.Load()
	s.slot().state.Store(st &^ 1)
}

// Retire records that val has been unlinked from the protected structure
// and may be handed back to the allocator after a grace period. Retire may
// be called pinned or unpinned.
func (s Slot) Retire(val uint64) {
	sl := s.slot()
	sl.limbo = append(sl.limbo, retired{val: val, epoch: s.d.epoch.Load()})
	// Nudge the epoch forward periodically so that reclamation keeps pace
	// with retirement even when Collect is called rarely. (Advancing while
	// pinned is safe: the pinned slot merely blocks the *next* advance.)
	if len(sl.limbo)&63 == 0 {
		s.d.tryAdvance()
	}
}

// LimboLen reports how many values are awaiting reclamation on this slot.
func (s Slot) LimboLen() int { return len(s.slot().limbo) }

// tryAdvance attempts to advance the global epoch by one. The epoch can
// advance only when every active slot has observed the current epoch.
func (d *Domain) tryAdvance() {
	e := d.epoch.Load()
	for i := range d.slots {
		st := d.slots[i].state.Load()
		if st&1 == 1 && st>>1 != e {
			return // an operation is still running in an older epoch
		}
	}
	d.epoch.CompareAndSwap(e, e+1)
}

// Collect attempts to reclaim values retired through this slot, appending
// at most max of them to dst and returning the extended slice. It advances
// the global epoch opportunistically. Collect never blocks: if no value
// has cleared its grace period, dst is returned unchanged.
//
// The caller must not be pinned (a pinned slot would block the epoch
// advance it is asking for).
func (s Slot) Collect(dst []uint64, max int) []uint64 {
	d := s.d
	d.tryAdvance()
	safe := d.epoch.Load() // values retired at epoch <= safe-gracePeriod are free
	sl := s.slot()
	n := 0
	for n < len(sl.limbo) && n < max && sl.limbo[n].epoch+gracePeriod <= safe {
		dst = append(dst, sl.limbo[n].val)
		n++
	}
	if n > 0 {
		rest := copy(sl.limbo, sl.limbo[n:])
		sl.limbo = sl.limbo[:rest]
	}
	return dst
}
