package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireReleaseRoundTrip(t *testing.T) {
	d := NewDomain(2)
	s1 := d.AcquireSlot()
	s2 := d.AcquireSlot()
	if s1.idx == s2.idx {
		t.Fatalf("two leases returned the same slot %d", s1.idx)
	}
	d.ReleaseSlot(s2)
	s3 := d.AcquireSlot()
	if s3.idx != s2.idx {
		t.Fatalf("released slot %d not reused, got %d", s2.idx, s3.idx)
	}
	d.ReleaseSlot(s1)
	d.ReleaseSlot(s3)
}

func TestCollectRequiresGracePeriod(t *testing.T) {
	d := NewDomain(4)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)

	s.Retire(42)
	// Immediately after retiring, the value must not be reclaimable even
	// with repeated collects in an otherwise idle domain until the epoch
	// has advanced twice past the retire epoch.
	got := s.Collect(nil, 16)
	if len(got) != 0 {
		t.Fatalf("value reclaimed immediately after retire: %v", got)
	}
	// Idle domain: each Collect advances the epoch once. After two more
	// advances the value clears its grace period.
	got = s.Collect(nil, 16)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("after grace period Collect = %v, want [42]", got)
	}
	if s.LimboLen() != 0 {
		t.Fatalf("limbo not drained: %d", s.LimboLen())
	}
}

func TestPinnedSlotBlocksAdvance(t *testing.T) {
	d := NewDomain(4)
	reader := d.AcquireSlot()
	writer := d.AcquireSlot()
	defer d.ReleaseSlot(reader)
	defer d.ReleaseSlot(writer)

	reader.Pin() // an in-flight traversal
	e0 := d.Epoch()

	writer.Retire(7)
	for i := 0; i < 10; i++ {
		if got := writer.Collect(nil, 16); len(got) != 0 {
			t.Fatalf("reclaimed %v while a traversal was pinned", got)
		}
	}
	// A slot pinned at e0 permits one advance (to e0+1, since it is
	// current at e0) but blocks the advance to e0+2 — which is exactly
	// why the grace period is two epochs.
	if e := d.Epoch(); e > e0+1 {
		t.Fatalf("epoch advanced from %d to %d despite stale pinned slot", e0, e)
	}

	reader.Unpin()
	got := writer.Collect(nil, 16)
	got = writer.Collect(got, 16)
	got = writer.Collect(got, 16)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("after unpin Collect = %v, want [7]", got)
	}
}

func TestRepinnedSlotAllowsAdvance(t *testing.T) {
	d := NewDomain(4)
	reader := d.AcquireSlot()
	writer := d.AcquireSlot()
	defer d.ReleaseSlot(reader)
	defer d.ReleaseSlot(writer)

	writer.Retire(9)
	for i := 0; i < 6; i++ {
		// A well-behaved reader re-pins between operations; each re-pin
		// observes the current epoch, so reclamation proceeds.
		reader.Pin()
		reader.Unpin()
		if got := writer.Collect(nil, 16); len(got) == 1 {
			return // reclaimed — success
		}
	}
	t.Fatal("value never reclaimed despite quiescent reader")
}

func TestCollectMaxBound(t *testing.T) {
	d := NewDomain(2)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)
	for i := uint64(0); i < 10; i++ {
		s.Retire(i)
	}
	var got []uint64
	for i := 0; i < 8; i++ { // plenty of epoch advances
		got = s.Collect(got, 3)
		if len(got) > 3 {
			break
		}
	}
	// max applies per call; ensure the first reclaiming call returned at
	// most 3 and order is FIFO.
	if len(got) < 3 {
		t.Fatalf("reclaimed too few: %v", got)
	}
	for i := 0; i < 3; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("out-of-order reclamation: %v", got)
		}
	}
}

func TestSlotExhaustionAndHandoff(t *testing.T) {
	d := NewDomain(1)
	s := d.AcquireSlot()
	released := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		<-released
		s2 := d.AcquireSlot() // must eventually succeed after release
		d.ReleaseSlot(s2)
		close(acquired)
	}()
	d.ReleaseSlot(s)
	close(released)
	<-acquired
}

// TestConcurrentStress exercises lease/pin/retire/collect from many
// goroutines; correctness is "no value reclaimed twice or lost".
func TestConcurrentStress(t *testing.T) {
	d := NewDomain(16)
	const (
		goroutines = 8
		perG       = 3000
	)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	record := func(vals []uint64) {
		mu.Lock()
		defer mu.Unlock()
		for _, v := range vals {
			if seen[v] {
				t.Errorf("value %d reclaimed twice", v)
			}
			seen[v] = true
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []uint64
			for i := 0; i < perG; i++ {
				s := d.AcquireSlot()
				s.Pin()
				// Simulate a traversal touching shared state.
				s.Unpin()
				s.Retire(uint64(g*perG + i))
				buf = s.Collect(buf[:0], 64)
				record(buf)
				d.ReleaseSlot(s)
			}
			// Drain what remains attached to whatever slots we can lease.
			for i := 0; i < 64; i++ {
				s := d.AcquireSlot()
				buf = s.Collect(buf[:0], 1<<20)
				record(buf)
				d.ReleaseSlot(s)
			}
		}(g)
	}
	wg.Wait()

	// Final drain across all slots from a single goroutine.
	var buf []uint64
	for i := 0; i < len(d.slots)*4; i++ {
		s := d.AcquireSlot()
		buf = s.Collect(buf[:0], 1<<20)
		record(buf)
		d.ReleaseSlot(s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != goroutines*perG {
		t.Fatalf("reclaimed %d distinct values, want %d", len(seen), goroutines*perG)
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	d := NewDomain(8)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pin()
		s.Unpin()
	}
}

func BenchmarkAcquireRelease(b *testing.B) {
	d := NewDomain(64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := d.AcquireSlot()
			d.ReleaseSlot(s)
		}
	})
}

// TestOversubscription leases far more goroutines than slots: acquisition
// must degrade to waiting (never deadlock) and no slot may be leased by
// two goroutines at once.
func TestOversubscription(t *testing.T) {
	const slots = 4
	d := NewDomainStripes(slots, 8) // more stripes than slots
	var inUse [slots]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := d.AcquireSlot()
				if n := inUse[s.Index()].Add(1); n != 1 {
					t.Errorf("slot %d double-leased (%d holders)", s.Index(), n)
				}
				s.Pin()
				s.Retire(uint64(g*1000 + i))
				s.Unpin()
				_ = s.Collect(nil, 8)
				inUse[s.Index()].Add(-1)
				d.ReleaseSlot(s)
			}
		}(g)
	}
	wg.Wait()
}

// TestAdvanceScanScalesWithActiveSlots is the observable contract of the
// incremental design: epoch-advance attempts examine slots up to the lease
// watermark, not the domain's full capacity. With a 1024-slot domain and
// two workers, the per-attempt scan must stay near 2, not 1024.
func TestAdvanceScanScalesWithActiveSlots(t *testing.T) {
	const capacity = 1024
	d := NewDomain(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.AcquireSlot()
			defer d.ReleaseSlot(s)
			var buf []uint64
			for i := 0; i < 20000; i++ {
				s.Pin()
				s.Unpin()
				s.Retire(uint64(i))
				if i&255 == 0 {
					buf = s.Collect(buf[:0], 256)
				}
			}
		}()
	}
	wg.Wait()

	attempts, scanned := d.AdvanceStats()
	if attempts == 0 {
		t.Fatal("no epoch-advance attempts recorded")
	}
	perAttempt := float64(scanned) / float64(attempts)
	if wm := d.Watermark(); wm > 64 {
		t.Fatalf("watermark %d for 2 concurrent lessees (capacity %d)", wm, capacity)
	}
	// The strict bound is watermark slots per attempt; assert with slack
	// that we are nowhere near a full-capacity scan.
	if perAttempt > 64 {
		t.Fatalf("advance scans %.1f slots/attempt; want O(active), capacity is %d", perAttempt, capacity)
	}
}

// TestStripedReleasePrefersHome exercises the stripe box round-trip: a
// goroutine cycling acquire/release must converge onto a few slots instead
// of walking the whole pool (which would defeat both cache locality and
// the watermark). ghash only promises best-effort stability (a GC stack
// move can change the stripe), so the assertion allows a couple of
// migrations rather than demanding one slot forever.
func TestStripedReleasePrefersHome(t *testing.T) {
	d := NewDomain(64)
	distinct := make(map[int]bool)
	maxIdx := 0
	for i := 0; i < 100; i++ {
		s := d.AcquireSlot()
		distinct[s.Index()] = true
		if s.Index() > maxIdx {
			maxIdx = s.Index()
		}
		d.ReleaseSlot(s)
	}
	if len(distinct) > 3 {
		t.Fatalf("100 acquire/release cycles circulated %d distinct slots, want convergence onto a few", len(distinct))
	}
	if wm := d.Watermark(); wm != maxIdx+1 {
		t.Fatalf("watermark %d after cycling slots up to %d, want %d", wm, maxIdx, maxIdx+1)
	}
}

// TestStealFromForeignStripe drains every stripe but one and verifies a
// goroutine hashed elsewhere still finds the free slot.
func TestStealFromForeignStripe(t *testing.T) {
	d := NewDomainStripes(8, 8)
	// Lease all 8 slots, then return exactly one.
	held := make([]Slot, 0, 8)
	for i := 0; i < 8; i++ {
		held = append(held, d.AcquireSlot())
	}
	d.ReleaseSlot(held[5])
	// Whatever stripe this goroutine hashes to, the lone free slot must be
	// found without blocking.
	s := d.AcquireSlot()
	if s.Index() != held[5].Index() {
		t.Fatalf("leased slot %d, want the released slot %d", s.Index(), held[5].Index())
	}
}

// TestAcquireSeesBoxReleaseWhileWaiting regression-tests the 1-slot
// handoff: a goroutine already inside AcquireSlot's wait loop must observe
// a slot released into its own stripe's box (not only into the overflow
// stack), or a two-party handoff hangs forever.
func TestAcquireSeesBoxReleaseWhileWaiting(t *testing.T) {
	d := NewDomainStripes(1, 1)
	s := d.AcquireSlot()
	got := make(chan Slot)
	go func() { got <- d.AcquireSlot() }()
	// Let the waiter pass its fast-path box check and enter the loop.
	time.Sleep(50 * time.Millisecond)
	d.ReleaseSlot(s)
	select {
	case s2 := <-got:
		d.ReleaseSlot(s2)
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never observed the released slot")
	}
}
