package ebr

import (
	"sync"
	"testing"
)

func TestAcquireReleaseRoundTrip(t *testing.T) {
	d := NewDomain(2)
	s1 := d.AcquireSlot()
	s2 := d.AcquireSlot()
	if s1.idx == s2.idx {
		t.Fatalf("two leases returned the same slot %d", s1.idx)
	}
	d.ReleaseSlot(s2)
	s3 := d.AcquireSlot()
	if s3.idx != s2.idx {
		t.Fatalf("released slot %d not reused, got %d", s2.idx, s3.idx)
	}
	d.ReleaseSlot(s1)
	d.ReleaseSlot(s3)
}

func TestCollectRequiresGracePeriod(t *testing.T) {
	d := NewDomain(4)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)

	s.Retire(42)
	// Immediately after retiring, the value must not be reclaimable even
	// with repeated collects in an otherwise idle domain until the epoch
	// has advanced twice past the retire epoch.
	got := s.Collect(nil, 16)
	if len(got) != 0 {
		t.Fatalf("value reclaimed immediately after retire: %v", got)
	}
	// Idle domain: each Collect advances the epoch once. After two more
	// advances the value clears its grace period.
	got = s.Collect(nil, 16)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("after grace period Collect = %v, want [42]", got)
	}
	if s.LimboLen() != 0 {
		t.Fatalf("limbo not drained: %d", s.LimboLen())
	}
}

func TestPinnedSlotBlocksAdvance(t *testing.T) {
	d := NewDomain(4)
	reader := d.AcquireSlot()
	writer := d.AcquireSlot()
	defer d.ReleaseSlot(reader)
	defer d.ReleaseSlot(writer)

	reader.Pin() // an in-flight traversal
	e0 := d.Epoch()

	writer.Retire(7)
	for i := 0; i < 10; i++ {
		if got := writer.Collect(nil, 16); len(got) != 0 {
			t.Fatalf("reclaimed %v while a traversal was pinned", got)
		}
	}
	// A slot pinned at e0 permits one advance (to e0+1, since it is
	// current at e0) but blocks the advance to e0+2 — which is exactly
	// why the grace period is two epochs.
	if e := d.Epoch(); e > e0+1 {
		t.Fatalf("epoch advanced from %d to %d despite stale pinned slot", e0, e)
	}

	reader.Unpin()
	got := writer.Collect(nil, 16)
	got = writer.Collect(got, 16)
	got = writer.Collect(got, 16)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("after unpin Collect = %v, want [7]", got)
	}
}

func TestRepinnedSlotAllowsAdvance(t *testing.T) {
	d := NewDomain(4)
	reader := d.AcquireSlot()
	writer := d.AcquireSlot()
	defer d.ReleaseSlot(reader)
	defer d.ReleaseSlot(writer)

	writer.Retire(9)
	for i := 0; i < 6; i++ {
		// A well-behaved reader re-pins between operations; each re-pin
		// observes the current epoch, so reclamation proceeds.
		reader.Pin()
		reader.Unpin()
		if got := writer.Collect(nil, 16); len(got) == 1 {
			return // reclaimed — success
		}
	}
	t.Fatal("value never reclaimed despite quiescent reader")
}

func TestCollectMaxBound(t *testing.T) {
	d := NewDomain(2)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)
	for i := uint64(0); i < 10; i++ {
		s.Retire(i)
	}
	var got []uint64
	for i := 0; i < 8; i++ { // plenty of epoch advances
		got = s.Collect(got, 3)
		if len(got) > 3 {
			break
		}
	}
	// max applies per call; ensure the first reclaiming call returned at
	// most 3 and order is FIFO.
	if len(got) < 3 {
		t.Fatalf("reclaimed too few: %v", got)
	}
	for i := 0; i < 3; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("out-of-order reclamation: %v", got)
		}
	}
}

func TestSlotExhaustionAndHandoff(t *testing.T) {
	d := NewDomain(1)
	s := d.AcquireSlot()
	released := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		<-released
		s2 := d.AcquireSlot() // must eventually succeed after release
		d.ReleaseSlot(s2)
		close(acquired)
	}()
	d.ReleaseSlot(s)
	close(released)
	<-acquired
}

// TestConcurrentStress exercises lease/pin/retire/collect from many
// goroutines; correctness is "no value reclaimed twice or lost".
func TestConcurrentStress(t *testing.T) {
	d := NewDomain(16)
	const (
		goroutines = 8
		perG       = 3000
	)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	record := func(vals []uint64) {
		mu.Lock()
		defer mu.Unlock()
		for _, v := range vals {
			if seen[v] {
				t.Errorf("value %d reclaimed twice", v)
			}
			seen[v] = true
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []uint64
			for i := 0; i < perG; i++ {
				s := d.AcquireSlot()
				s.Pin()
				// Simulate a traversal touching shared state.
				s.Unpin()
				s.Retire(uint64(g*perG + i))
				buf = s.Collect(buf[:0], 64)
				record(buf)
				d.ReleaseSlot(s)
			}
			// Drain what remains attached to whatever slots we can lease.
			for i := 0; i < 64; i++ {
				s := d.AcquireSlot()
				buf = s.Collect(buf[:0], 1<<20)
				record(buf)
				d.ReleaseSlot(s)
			}
		}(g)
	}
	wg.Wait()

	// Final drain across all slots from a single goroutine.
	var buf []uint64
	for i := 0; i < len(d.slots)*4; i++ {
		s := d.AcquireSlot()
		buf = s.Collect(buf[:0], 1<<20)
		record(buf)
		d.ReleaseSlot(s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != goroutines*perG {
		t.Fatalf("reclaimed %d distinct values, want %d", len(seen), goroutines*perG)
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	d := NewDomain(8)
	s := d.AcquireSlot()
	defer d.ReleaseSlot(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pin()
		s.Unpin()
	}
}

func BenchmarkAcquireRelease(b *testing.B) {
	d := NewDomain(64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := d.AcquireSlot()
			d.ReleaseSlot(s)
		}
	})
}
