package lockapi

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const confUnits = 64

// variants under conformance test. pnova-rw is constructed with one
// segment per unit so range semantics are exact at unit granularity.
func confVariants() []Locker {
	return []Locker{
		NewListEx(nil),
		NewListRW(nil),
		NewLustreEx(),
		NewKernelRW(),
		NewSongRW(),
		NewPnovaRW(confUnits, confUnits),
		NewThakurRW(16),
		NewRWSem(),
	}
}

// exclusiveOnly reports whether the variant serializes readers too.
func exclusiveOnly(name string) bool {
	return name == "list-ex" || name == "lustre-ex"
}

// rangeOblivious reports whether the variant ignores ranges entirely.
func rangeOblivious(name string) bool { return name == "rwsem" }

// TestConformanceExclusion runs the same stamped-cell exclusion stress
// against every variant: writers must be alone on every covered unit;
// readers must never see a writer.
func TestConformanceExclusion(t *testing.T) {
	for _, lk := range confVariants() {
		lk := lk
		t.Run(lk.Name(), func(t *testing.T) {
			t.Parallel()
			var (
				writers [confUnits]atomic.Int32
				readers [confUnits]atomic.Int32
				wg      sync.WaitGroup
			)
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(me int32) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) * 1315423911))
					for i := 0; i < 1200; i++ {
						s := uint64(rng.Intn(confUnits))
						e := s + 1 + uint64(rng.Intn(confUnits-int(s)))
						write := rng.Intn(100) < 30
						rel := lk.Acquire(s, e, write)
						if write {
							for u := s; u < e; u++ {
								if old := writers[u].Swap(me + 1); old != 0 {
									t.Errorf("%s: writers %d and %d overlap on unit %d", lk.Name(), old-1, me, u)
								}
								if r := readers[u].Load(); r != 0 {
									t.Errorf("%s: writer %d overlaps readers on unit %d", lk.Name(), me, u)
								}
							}
							for u := s; u < e; u++ {
								writers[u].Store(0)
							}
						} else {
							for u := s; u < e; u++ {
								readers[u].Add(1)
								if w := writers[u].Load(); w != 0 {
									t.Errorf("%s: reader %d overlaps writer %d on unit %d", lk.Name(), me, w-1, u)
								}
							}
							for u := s; u < e; u++ {
								readers[u].Add(-1)
							}
						}
						rel()
					}
				}(int32(g))
			}
			wg.Wait()
		})
	}
}

// TestConformanceDisjointParallel verifies that disjoint writers truly run
// in parallel on range-aware variants: with two goroutines on disjoint
// ranges rendezvousing inside their critical sections, completion is only
// possible if both hold their ranges at once.
func TestConformanceDisjointParallel(t *testing.T) {
	for _, lk := range confVariants() {
		lk := lk
		if rangeOblivious(lk.Name()) {
			continue
		}
		t.Run(lk.Name(), func(t *testing.T) {
			t.Parallel()
			var barrier sync.WaitGroup
			barrier.Add(2)
			done := make(chan struct{})
			go func() {
				rel := lk.Acquire(0, 10, true)
				barrier.Done()
				barrier.Wait() // blocks unless the other holder is inside too
				rel()
				done <- struct{}{}
			}()
			go func() {
				rel := lk.Acquire(20, 30, true)
				barrier.Done()
				barrier.Wait()
				rel()
				done <- struct{}{}
			}()
			timeout := time.After(5 * time.Second)
			for i := 0; i < 2; i++ {
				select {
				case <-done:
				case <-timeout:
					t.Fatalf("%s: disjoint writers did not run in parallel", lk.Name())
				}
			}
		})
	}
}

// TestConformanceSharedParallel verifies overlapping readers proceed in
// parallel on reader-writer variants.
func TestConformanceSharedParallel(t *testing.T) {
	for _, lk := range confVariants() {
		lk := lk
		if exclusiveOnly(lk.Name()) {
			continue
		}
		t.Run(lk.Name(), func(t *testing.T) {
			t.Parallel()
			var barrier sync.WaitGroup
			barrier.Add(2)
			done := make(chan struct{})
			for i := 0; i < 2; i++ {
				go func() {
					rel := lk.Acquire(0, confUnits, false)
					barrier.Done()
					barrier.Wait()
					rel()
					done <- struct{}{}
				}()
			}
			timeout := time.After(5 * time.Second)
			for i := 0; i < 2; i++ {
				select {
				case <-done:
				case <-timeout:
					t.Fatalf("%s: overlapping readers did not run in parallel", lk.Name())
				}
			}
		})
	}
}

// TestConformanceFullRange verifies the full-range path conflicts with
// everything.
func TestConformanceFullRange(t *testing.T) {
	for _, lk := range confVariants() {
		fl, ok := lk.(FullLocker)
		if !ok {
			continue
		}
		t.Run(lk.Name(), func(t *testing.T) {
			t.Parallel()
			rel := fl.AcquireFull(true)
			acquired := make(chan func(), 1)
			go func() { acquired <- lk.Acquire(5, 6, true) }()
			select {
			case <-acquired:
				t.Fatalf("%s: range acquired while full range held", lk.Name())
			case <-time.After(20 * time.Millisecond):
			}
			rel()
			select {
			case rel2 := <-acquired:
				rel2()
			case <-time.After(5 * time.Second):
				t.Fatalf("%s: waiter starved after full-range release", lk.Name())
			}
		})
	}
}

func TestNewByName(t *testing.T) {
	for name := range Variant {
		lk, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if lk.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, lk.Name())
		}
		rel := lk.Acquire(0, 8, true)
		rel()
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("New with bogus name succeeded")
	}
}
