// Package lockapi defines the uniform range-lock interface used by the
// benchmarks (ArrBench, skip lists, the VM subsystem) to drive every lock
// implementation interchangeably, plus adapters for each variant evaluated
// in the paper:
//
//	list-ex    — exclusive list-based lock (§4.1, internal/core)
//	list-rw    — reader-writer list-based lock (§4.2, internal/core)
//	lustre-ex  — exclusive tree-based kernel lock (internal/treelock)
//	kernel-rw  — reader-writer tree-based kernel lock (internal/treelock)
//	pnova-rw   — segment-based lock of Kim et al. (internal/seglock)
//	song-rw    — skip-list + spin lock of Song et al. (internal/skiplock)
//	rwsem      — plain reader-writer semaphore, ranges ignored (mmap_sem)
package lockapi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpilock"
	"repro/internal/rwsem"
	"repro/internal/seglock"
	"repro/internal/skiplock"
	"repro/internal/treelock"
)

// Locker is the minimal range-lock surface. Acquire blocks until
// [start, end) is held in the requested mode and returns the release
// function. Implementations with exclusive-only semantics treat shared
// requests as exclusive.
type Locker interface {
	// Name returns the variant label used in the paper's figures.
	Name() string
	// Acquire locks [start, end); write selects exclusive mode.
	Acquire(start, end uint64, write bool) (release func())
}

// FullLocker is implemented by variants with a dedicated full-range
// acquisition path.
type FullLocker interface {
	Locker
	// AcquireFull locks the lock's entire range.
	AcquireFull(write bool) (release func())
}

// Op is a leased per-operation context (see core.Op): one reclamation slot
// plus its node pool, reusable across any number of acquisitions.
type Op = core.Op

// Guard is a held range, released with ReleaseOp.
type Guard = core.Guard

// OpLocker is implemented by variants whose hot path leases a
// per-operation context (the list-based locks). Callers that perform
// several acquisitions per logical operation — or many operations per
// worker — lease one Op and thread it through, instead of paying one slot
// lease per lock call; the Acquire/Guard pair also avoids the per-call
// closure of the plain Locker surface. Ops may be held as long as the
// caller likes (e.g. one per worker goroutine) but serve one goroutine at
// a time.
type OpLocker interface {
	FullLocker
	// BeginOp leases an operation context; return it with EndOp.
	BeginOp() Op
	// EndOp returns a context leased by BeginOp.
	EndOp(op Op)
	// AcquireOp locks [start, end) using op's context.
	AcquireOp(op Op, start, end uint64, write bool) Guard
	// AcquireFullOp locks the entire range using op's context.
	AcquireFullOp(op Op, write bool) Guard
	// ReleaseOp releases a guard returned by AcquireOp/AcquireFullOp.
	ReleaseOp(op Op, g Guard)
}

// domainHolder is implemented by the Op-capable adapters so callers can
// check whether two locks lease Op contexts from one domain.
type domainHolder interface{ lockDomain() *core.Domain }

// SameOpDomain reports whether a and b both support the Op API and lease
// their contexts from the same domain — i.e. an Op begun on one is valid
// for acquisitions on the other. False whenever either lacks an Op
// surface.
func SameOpDomain(a, b Locker) bool {
	da, ok := a.(domainHolder)
	if !ok {
		return false
	}
	db, ok := b.(domainHolder)
	return ok && da.lockDomain() == db.lockDomain()
}

// OpDomain returns the domain l leases Op contexts from, or nil when l
// has no Op surface. Callers that must route an Op to the right lock at
// runtime (a store whose files can migrate between domains) cache this
// pointer and compare, instead of paying a type assertion per call.
func OpDomain(l Locker) *core.Domain {
	if d, ok := l.(domainHolder); ok {
		return d.lockDomain()
	}
	return nil
}

// --- list-based locks (the paper's contribution) ---

type listEx struct{ l *core.Exclusive }

// NewListEx returns the exclusive list-based range lock ("list-ex").
// The paper's user-space study runs without the fast path; pass opts to
// change defaults.
func NewListEx(dom *core.Domain, opts ...core.Option) Locker {
	return listEx{l: core.NewExclusive(dom, opts...)}
}

func (a listEx) Name() string { return "list-ex" }
func (a listEx) Acquire(start, end uint64, _ bool) func() {
	g := a.l.Lock(start, end)
	return g.Unlock
}
func (a listEx) AcquireFull(_ bool) func() {
	g := a.l.LockFull()
	return g.Unlock
}
func (a listEx) BeginOp() Op { return a.l.Domain().BeginOp() }
func (a listEx) EndOp(op Op) { op.End() }
func (a listEx) AcquireOp(op Op, start, end uint64, _ bool) Guard {
	return a.l.LockOp(op, start, end)
}
func (a listEx) AcquireFullOp(op Op, _ bool) Guard { return a.l.LockFullOp(op) }
func (a listEx) ReleaseOp(op Op, g Guard)          { g.UnlockOp(op) }
func (a listEx) lockDomain() *core.Domain          { return a.l.Domain() }

type listRW struct{ l *core.RW }

// NewListRW returns the reader-writer list-based range lock ("list-rw").
func NewListRW(dom *core.Domain, opts ...core.Option) Locker {
	return listRW{l: core.NewRW(dom, opts...)}
}

func (a listRW) Name() string { return "list-rw" }
func (a listRW) Acquire(start, end uint64, write bool) func() {
	var g core.Guard
	if write {
		g = a.l.Lock(start, end)
	} else {
		g = a.l.RLock(start, end)
	}
	return g.Unlock
}
func (a listRW) AcquireFull(write bool) func() {
	var g core.Guard
	if write {
		g = a.l.LockFull()
	} else {
		g = a.l.RLockFull()
	}
	return g.Unlock
}
func (a listRW) BeginOp() Op { return a.l.Domain().BeginOp() }
func (a listRW) EndOp(op Op) { op.End() }
func (a listRW) AcquireOp(op Op, start, end uint64, write bool) Guard {
	if write {
		return a.l.LockOp(op, start, end)
	}
	return a.l.RLockOp(op, start, end)
}
func (a listRW) AcquireFullOp(op Op, write bool) Guard {
	if write {
		return a.l.LockFullOp(op)
	}
	return a.l.RLockFullOp(op)
}
func (a listRW) ReleaseOp(op Op, g Guard) { g.UnlockOp(op) }
func (a listRW) lockDomain() *core.Domain { return a.l.Domain() }

// --- tree-based kernel locks ---

type tree struct {
	l  *treelock.Lock
	nm string
}

// NewLustreEx returns the exclusive tree-based lock ("lustre-ex").
func NewLustreEx() Locker { return tree{l: treelock.NewExclusive(), nm: "lustre-ex"} }

// NewKernelRW returns the reader-writer tree-based lock ("kernel-rw").
func NewKernelRW() Locker { return tree{l: treelock.NewRW(), nm: "kernel-rw"} }

// WrapTreeRW adapts an existing tree-based lock — used when the caller
// needs to attach statistics to the underlying lock first.
func WrapTreeRW(l *treelock.Lock) FullLocker { return tree{l: l, nm: "kernel-rw"} }

func (a tree) Name() string { return a.nm }
func (a tree) Acquire(start, end uint64, write bool) func() {
	var g treelock.Guard
	if write {
		g = a.l.Lock(start, end)
	} else {
		g = a.l.RLock(start, end)
	}
	return g.Unlock
}
func (a tree) AcquireFull(write bool) func() {
	var g treelock.Guard
	if write {
		g = a.l.LockFull()
	} else {
		g = a.l.RLockFull()
	}
	return g.Unlock
}

// --- segment lock (pNOVA) ---

type seg struct{ l *seglock.Lock }

// NewPnovaRW returns the segment-based lock ("pnova-rw") covering
// [0, extent) with nsegs segments. The segment table is statically sized
// (the design's limitation §2 calls out), so requests reaching past the
// extent — open-ended truncates, appends beyond the covered range — are
// clamped onto the last segment, where they conservatively serialize.
func NewPnovaRW(extent uint64, nsegs int) Locker {
	return seg{l: seglock.New(extent, nsegs)}
}

func (a seg) Name() string { return "pnova-rw" }

// clamp maps [start, end) into the covered extent, folding any wholly
// out-of-range request onto the extent's final byte.
func (a seg) clamp(start, end uint64) (uint64, uint64) {
	ext := a.l.Extent()
	if end > ext {
		end = ext
	}
	if start >= end {
		start, end = ext-1, ext
	}
	return start, end
}

func (a seg) Acquire(start, end uint64, write bool) func() {
	start, end = a.clamp(start, end)
	var g seglock.Guard
	if write {
		g = a.l.Lock(start, end)
	} else {
		g = a.l.RLock(start, end)
	}
	return g.Unlock
}
func (a seg) AcquireFull(write bool) func() {
	var g seglock.Guard
	if write {
		g = a.l.LockFull()
	} else {
		g = a.l.RLockFull()
	}
	return g.Unlock
}

// --- skip-list lock (Song et al.) ---

type skip struct{ l *skiplock.Lock }

// NewSongRW returns the skip-list-based lock ("song-rw").
func NewSongRW() Locker { return skip{l: skiplock.New()} }

func (a skip) Name() string { return "song-rw" }
func (a skip) Acquire(start, end uint64, write bool) func() {
	var g skiplock.Guard
	if write {
		g = a.l.Lock(start, end)
	} else {
		g = a.l.RLock(start, end)
	}
	return g.Unlock
}
func (a skip) AcquireFull(write bool) func() {
	var g skiplock.Guard
	if write {
		g = a.l.LockFull()
	} else {
		g = a.l.RLock(0, skiplock.MaxEnd)
	}
	return g.Unlock
}

// --- slot-table lock (Thakur et al.) ---

type mpi struct{ l *mpilock.Lock }

// NewThakurRW returns the slot-table byte-range lock of Thakur et al.
// ("thakur-rw") with capacity for procs concurrent holders.
func NewThakurRW(procs int) Locker { return mpi{l: mpilock.New(procs)} }

func (a mpi) Name() string { return "thakur-rw" }
func (a mpi) Acquire(start, end uint64, write bool) func() {
	var g mpilock.Guard
	if write {
		g = a.l.Lock(start, end)
	} else {
		g = a.l.RLock(start, end)
	}
	return g.Unlock
}
func (a mpi) AcquireFull(write bool) func() {
	var g mpilock.Guard
	if write {
		g = a.l.LockFull()
	} else {
		g = a.l.RLockFull()
	}
	return g.Unlock
}

// --- plain reader-writer semaphore (mmap_sem) ---

type sem struct{ s *rwsem.RWSem }

// NewRWSem returns the range-oblivious reader-writer semaphore ("rwsem"):
// every acquisition locks the whole resource, like mmap_sem.
func NewRWSem() Locker { return sem{s: new(rwsem.RWSem)} }

func (a sem) Name() string { return "rwsem" }
func (a sem) Acquire(_, _ uint64, write bool) func() {
	if write {
		a.s.Lock()
		return a.s.Unlock
	}
	a.s.RLock()
	return a.s.RUnlock
}
func (a sem) AcquireFull(write bool) func() { return a.Acquire(0, 1, write) }

// Variant names every adapter constructor by figure label.
var Variant = map[string]func() Locker{
	"list-ex":   func() Locker { return NewListEx(nil) },
	"list-rw":   func() Locker { return NewListRW(nil) },
	"lustre-ex": NewLustreEx,
	"kernel-rw": NewKernelRW,
	"song-rw":   NewSongRW,
	"thakur-rw": func() Locker { return NewThakurRW(64) },
	"rwsem":     NewRWSem,
	// pnova-rw needs an extent; benchmark drivers construct it directly.
}

// New constructs a variant by name, or returns an error listing valid
// names.
func New(name string) (Locker, error) {
	if f, ok := Variant[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("lockapi: unknown variant %q", name)
}

// NewInDomain constructs a variant by name with its per-operation state
// (reclamation slots, node pools) in dom. Only the list-based locks keep
// domain state; every other variant ignores dom, so callers can place
// any variant behind a domain-sharded store uniformly.
func NewInDomain(name string, dom *core.Domain) (Locker, error) {
	switch name {
	case "list-ex":
		return NewListEx(dom), nil
	case "list-rw":
		return NewListRW(dom), nil
	}
	return New(name)
}
