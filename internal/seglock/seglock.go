// Package seglock implements the segment-based range lock of Kim et al.
// (pNOVA, APSys'19), following Quinson & Vernier: the entire range is
// statically divided into a preset number of segments, each protected by
// its own reader-writer lock ("pnova-rw" in the paper's evaluation).
//
// Acquiring [start, end) acquires the per-segment locks of every covered
// segment, in ascending order (a global order, so no deadlock). The design
// has two costs the paper highlights: full-range acquisitions must take
// every segment lock, and granularity is fixed — too few segments causes
// false conflicts, too many makes wide acquisitions expensive. It is
// only applicable when the protected range's extent is known up front.
package seglock

import "sync"

// Lock is a segment-based range lock over the fixed range [0, Extent).
type Lock struct {
	segSize  uint64
	extent   uint64
	segments []sync.RWMutex
}

// New creates a segment lock covering [0, extent) with nsegs segments.
// extent must be a positive multiple of nsegs.
func New(extent uint64, nsegs int) *Lock {
	if nsegs <= 0 || extent == 0 || extent%uint64(nsegs) != 0 {
		panic("seglock: extent must be a positive multiple of nsegs")
	}
	return &Lock{
		segSize:  extent / uint64(nsegs),
		extent:   extent,
		segments: make([]sync.RWMutex, nsegs),
	}
}

// Extent returns the covered range's exclusive upper bound.
func (l *Lock) Extent() uint64 { return l.extent }

// Segments returns the number of segments.
func (l *Lock) Segments() int { return len(l.segments) }

// Guard is a held range; release with Unlock.
type Guard struct {
	l      *Lock
	lo, hi int // segment index range [lo, hi]
	writer bool
}

func (l *Lock) span(start, end uint64) (lo, hi int) {
	if start >= end || end > l.extent {
		panic("seglock: range out of bounds")
	}
	return int(start / l.segSize), int((end - 1) / l.segSize)
}

// Lock acquires [start, end) in exclusive mode.
func (l *Lock) Lock(start, end uint64) Guard {
	lo, hi := l.span(start, end)
	for i := lo; i <= hi; i++ {
		l.segments[i].Lock()
	}
	return Guard{l: l, lo: lo, hi: hi, writer: true}
}

// RLock acquires [start, end) in shared mode.
func (l *Lock) RLock(start, end uint64) Guard {
	lo, hi := l.span(start, end)
	for i := lo; i <= hi; i++ {
		l.segments[i].RLock()
	}
	return Guard{l: l, lo: lo, hi: hi, writer: false}
}

// LockFull acquires the whole extent in exclusive mode: every segment
// lock, in order — the expensive case called out in §2.
func (l *Lock) LockFull() Guard { return l.Lock(0, l.extent) }

// RLockFull acquires the whole extent in shared mode.
func (l *Lock) RLockFull() Guard { return l.RLock(0, l.extent) }

// Unlock releases all covered segments in reverse acquisition order.
func (g Guard) Unlock() {
	for i := g.hi; i >= g.lo; i-- {
		if g.writer {
			g.l.segments[i].Unlock()
		} else {
			g.l.segments[i].RUnlock()
		}
	}
}
