package seglock

import (
	"sync"
	"testing"
	"time"
)

func TestBasic(t *testing.T) {
	l := New(256, 16) // 16-byte segments
	g := l.Lock(0, 16)
	g2 := l.Lock(16, 32) // next segment: disjoint
	g.Unlock()
	g2.Unlock()
}

func TestFalseSharingWithinSegment(t *testing.T) {
	// Two disjoint ranges inside the same segment conflict — the
	// granularity limitation §2 describes.
	l := New(256, 16)
	g := l.Lock(0, 4)
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.Lock(8, 12) }()
	select {
	case <-acquired:
		t.Fatal("ranges in the same segment did not conflict")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

func TestReadersShare(t *testing.T) {
	l := New(256, 16)
	g1 := l.RLock(0, 256)
	g2 := l.RLock(0, 256)
	g1.Unlock()
	g2.Unlock()
}

func TestFullRangeTakesAllSegments(t *testing.T) {
	l := New(256, 16)
	g := l.Lock(240, 256) // hold the last segment
	acquired := make(chan Guard, 1)
	go func() { acquired <- l.LockFull() }()
	select {
	case <-acquired:
		t.Fatal("full-range lock acquired while a segment was held")
	case <-time.After(20 * time.Millisecond):
	}
	g.Unlock()
	(<-acquired).Unlock()
}

func TestSpanBoundaries(t *testing.T) {
	l := New(256, 16)
	lo, hi := l.span(0, 16)
	if lo != 0 || hi != 0 {
		t.Fatalf("span(0,16) = [%d,%d], want [0,0]", lo, hi)
	}
	lo, hi = l.span(15, 17)
	if lo != 0 || hi != 1 {
		t.Fatalf("span(15,17) = [%d,%d], want [0,1]", lo, hi)
	}
	lo, hi = l.span(255, 256)
	if lo != 15 || hi != 15 {
		t.Fatalf("span(255,256) = [%d,%d], want [15,15]", lo, hi)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, c := range []struct {
		extent uint64
		nsegs  int
	}{{0, 4}, {100, 0}, {100, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.extent, c.nsegs)
				}
			}()
			New(c.extent, c.nsegs)
		}()
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	l := New(256, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds range did not panic")
		}
	}()
	l.Lock(250, 300)
}

func TestNoDeadlockUnderContention(t *testing.T) {
	l := New(1024, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s := (g*64 + uint64(i)*13) % 960
				rel := l.Lock(s, s+64)
				rel.Unlock()
			}
		}(uint64(g))
	}
	wg.Wait()
}
