// Package rbtree implements an augmented red-black tree keyed by uint64.
//
// It is the substrate for two kernel structures the paper's evaluation
// depends on:
//
//   - the range tree inside the kernel's tree-based range lock (§3), which
//     is an *interval tree*: the augmentation tracks the maximum range end
//     in each subtree so overlap queries prune whole subtrees; and
//   - mm_rb, the red-black tree of VMA structures in the simulated virtual
//     memory subsystem (§5), which needs ordered search (find_vma),
//     predecessor/successor and in-order iteration.
//
// The tree stores one value of type V per node and allows duplicate keys
// (duplicates order after existing equal keys, preserving FIFO among equal
// range starts — relevant for lock fairness in treelock). An optional
// Metric function enables the max-augmentation.
package rbtree

import "sync/atomic"

const (
	red   = false
	black = true
)

// Node is a tree node exposed so callers can keep handles for O(1)
// deletion and walk the structure (interval search in treelock).
type Node[V any] struct {
	// key is atomic because the VM subsystem updates a VMA's start (= its
	// key) in place under a refined range lock while concurrent find_vma
	// traversals, holding only disjoint refined locks, read keys. Order-
	// preserving in-place updates keep the BST valid; atomicity keeps the
	// reads untorn. See UpdateKey.
	key                 atomic.Uint64
	val                 V
	left, right, parent *Node[V]
	color               bool

	// maxAug is max(Metric(val), left.maxAug, right.maxAug) when the tree
	// has a Metric; unused otherwise.
	maxAug uint64
}

// Key returns the node's key.
func (n *Node[V]) Key() uint64 { return n.key.Load() }

// Value returns the node's stored value.
func (n *Node[V]) Value() V { return n.val }

// SetValue replaces the stored value. If the tree is augmented and the
// metric of the value changed, the caller must use Tree.FixAug(n).
func (n *Node[V]) SetValue(v V) { n.val = v }

// Left returns the left child, or nil.
func (n *Node[V]) Left() *Node[V] { return n.left }

// Right returns the right child, or nil.
func (n *Node[V]) Right() *Node[V] { return n.right }

// MaxAug returns the subtree's maximum metric (augmented trees only).
func (n *Node[V]) MaxAug() uint64 { return n.maxAug }

// Tree is an intrusive red-black tree. The zero value is an empty,
// unaugmented tree; use New/NewAugmented for clarity.
type Tree[V any] struct {
	root *Node[V]
	len  int

	// Metric, when non-nil, turns the tree into a max-augmented interval
	// tree: maxAug of every node is maintained across inserts, deletes and
	// rotations.
	metric func(V) uint64
}

// New returns an empty tree without augmentation.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// NewAugmented returns an empty tree whose nodes maintain the maximum of
// metric over their subtree.
func NewAugmented[V any](metric func(V) uint64) *Tree[V] {
	return &Tree[V]{metric: metric}
}

// Len returns the number of nodes.
func (t *Tree[V]) Len() int { return t.len }

// Root returns the root node (nil if empty); used by interval searches.
func (t *Tree[V]) Root() *Node[V] { return t.root }

func (t *Tree[V]) nodeAug(n *Node[V]) uint64 {
	m := t.metric(n.val)
	if n.left != nil && n.left.maxAug > m {
		m = n.left.maxAug
	}
	if n.right != nil && n.right.maxAug > m {
		m = n.right.maxAug
	}
	return m
}

// fixAugUp recomputes maxAug from n to the root, stopping as soon as a
// node's value is unchanged. Valid after an insertion (the change is
// monotone along the path); deletions must use fixAugUpFull because a
// transplanted successor above the start node may be stale even when a
// lower node's value already matches.
func (t *Tree[V]) fixAugUp(n *Node[V]) {
	if t.metric == nil {
		return
	}
	for ; n != nil; n = n.parent {
		m := t.nodeAug(n)
		if n.maxAug == m {
			break
		}
		n.maxAug = m
	}
}

// fixAugUpFull recomputes maxAug from n all the way to the root.
func (t *Tree[V]) fixAugUpFull(n *Node[V]) {
	if t.metric == nil {
		return
	}
	for ; n != nil; n = n.parent {
		n.maxAug = t.nodeAug(n)
	}
}

// FixAug restores augmentation invariants after a caller mutated a node's
// value in place (e.g. a VMA boundary move that changes the metric).
func (t *Tree[V]) FixAug(n *Node[V]) { t.fixAugUp(n) }

// UpdateKey changes a node's key in place without rebalancing. The caller
// must guarantee the new key preserves in-order position (strictly between
// the neighbours' keys) — exactly the property of a VMA boundary move
// within its locked window. Safe against concurrent readers: the store is
// atomic and the structure does not change.
func (t *Tree[V]) UpdateKey(n *Node[V], key uint64) { n.key.Store(key) }

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	if t.metric != nil {
		y.maxAug = x.maxAug // y now covers x's old subtree
		x.maxAug = t.nodeAug(x)
	}
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	if t.metric != nil {
		y.maxAug = x.maxAug
		x.maxAug = t.nodeAug(x)
	}
}

// Insert adds a new node with the given key and value and returns it.
// Equal keys are placed after existing ones (stable arrival order).
func (t *Tree[V]) Insert(key uint64, val V) *Node[V] {
	n := &Node[V]{val: val, color: red}
	n.key.Store(key)
	if t.metric != nil {
		n.maxAug = t.metric(val)
	}
	var parent *Node[V]
	link := &t.root
	for *link != nil {
		parent = *link
		if key < parent.key.Load() {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	n.parent = parent
	*link = n
	t.len++
	t.fixAugUp(parent)
	t.insertFixup(n)
	return n
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

// Min returns the node with the smallest key, or nil.
func (t *Tree[V]) Min() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// Max returns the node with the largest key, or nil.
func (t *Tree[V]) Max() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// Next returns the in-order successor of n, or nil.
func (t *Tree[V]) Next(n *Node[V]) *Node[V] {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// Prev returns the in-order predecessor of n, or nil.
func (t *Tree[V]) Prev(n *Node[V]) *Node[V] {
	if n.left != nil {
		n = n.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.left {
		n, p = p, p.parent
	}
	return p
}

// Floor returns the last node with key <= k, or nil.
func (t *Tree[V]) Floor(k uint64) *Node[V] {
	var best *Node[V]
	n := t.root
	for n != nil {
		if n.key.Load() <= k {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// Ceil returns the first node with key >= k, or nil.
func (t *Tree[V]) Ceil(k uint64) *Node[V] {
	var best *Node[V]
	n := t.root
	for n != nil {
		if n.key.Load() >= k {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// Ascend calls fn for every node in key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(*Node[V]) bool) {
	for n := t.Min(); n != nil; n = t.Next(n) {
		if !fn(n) {
			return
		}
	}
}

// transplant replaces subtree u with subtree v (v may be nil).
func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// Delete removes node z from the tree. z must belong to this tree.
func (t *Tree[V]) Delete(z *Node[V]) {
	t.len--
	var (
		x          *Node[V] // node that moves into y's old position (may be nil)
		xParent    *Node[V] // x's parent after the splice (needed when x is nil)
		y          = z
		yOrigColor = y.color
	)
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yOrigColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	t.fixAugUpFull(xParent)
	if yOrigColor == black {
		t.deleteFixup(x, xParent)
	}
	z.left, z.right, z.parent = nil, nil, nil
}

func (t *Tree[V]) deleteFixup(x, parent *Node[V]) {
	for x != t.root && (x == nil || x.color == black) {
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if (w.left == nil || w.left.color == black) &&
				(w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if w.right == nil || w.right.color == black {
				if w.left != nil {
					w.left.color = black
				}
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			if w.right != nil {
				w.right.color = black
			}
			t.rotateLeft(parent)
			x = t.root
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if (w.left == nil || w.left.color == black) &&
				(w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if w.left == nil || w.left.color == black {
				if w.right != nil {
					w.right.color = black
				}
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			if w.left != nil {
				w.left.color = black
			}
			t.rotateRight(parent)
			x = t.root
		}
	}
	if x != nil {
		x.color = black
	}
}
