package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkInvariants verifies the red-black properties, the BST ordering, the
// parent links and (if augmented) the max metric. Returns the black height.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	if tr.root == nil {
		return
	}
	if tr.root.color != black {
		t.Fatal("root is red")
	}
	var walk func(n *Node[V], min, max uint64) int
	walk = func(n *Node[V], min, max uint64) int {
		if n == nil {
			return 1
		}
		if n.Key() < min || n.Key() > max {
			t.Fatalf("BST violation: key %d outside [%d,%d]", n.Key(), min, max)
		}
		if n.color == red {
			if (n.left != nil && n.left.color == red) || (n.right != nil && n.right.color == red) {
				t.Fatal("red node with red child")
			}
		}
		if n.left != nil && n.left.parent != n {
			t.Fatal("broken parent link (left)")
		}
		if n.right != nil && n.right.parent != n {
			t.Fatal("broken parent link (right)")
		}
		if tr.metric != nil {
			if got, want := n.maxAug, tr.nodeAug(n); got != want {
				t.Fatalf("augmentation stale at key %d: maxAug=%d want %d", n.Key(), got, want)
			}
		}
		lh := walk(n.left, min, n.Key())
		rh := walk(n.right, n.Key(), max)
		if lh != rh {
			t.Fatalf("black-height mismatch at key %d: %d vs %d", n.Key(), lh, rh)
		}
		if n.color == black {
			return lh + 1
		}
		return lh
	}
	walk(tr.root, 0, ^uint64(0))
}

func TestInsertDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	nodes := make(map[*Node[int]]uint64)
	for i := 0; i < 4000; i++ {
		if len(nodes) == 0 || rng.Intn(3) != 0 {
			k := uint64(rng.Intn(500))
			nodes[tr.Insert(k, i)] = k
		} else {
			for n := range nodes {
				tr.Delete(n)
				delete(nodes, n)
				break
			}
		}
		if i%97 == 0 {
			checkInvariants(t, tr)
			if tr.Len() != len(nodes) {
				t.Fatalf("Len=%d, model=%d", tr.Len(), len(nodes))
			}
		}
	}
	checkInvariants(t, tr)
}

func TestOrderedIteration(t *testing.T) {
	tr := New[int]()
	keys := []uint64{5, 3, 9, 1, 7, 3, 5, 100, 0}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	tr.Ascend(func(n *Node[int]) bool {
		got = append(got, n.Key())
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestFloorCeil(t *testing.T) {
	tr := New[int]()
	for _, k := range []uint64{10, 20, 30} {
		tr.Insert(k, 0)
	}
	cases := []struct {
		q           uint64
		floor, ceil int64 // -1 = nil
	}{
		{5, -1, 10}, {10, 10, 10}, {15, 10, 20}, {30, 30, 30}, {35, 30, -1},
	}
	for _, c := range cases {
		f := tr.Floor(c.q)
		if c.floor == -1 && f != nil || c.floor >= 0 && (f == nil || f.Key() != uint64(c.floor)) {
			t.Errorf("Floor(%d) wrong", c.q)
		}
		cl := tr.Ceil(c.q)
		if c.ceil == -1 && cl != nil || c.ceil >= 0 && (cl == nil || cl.Key() != uint64(c.ceil)) {
			t.Errorf("Ceil(%d) wrong", c.q)
		}
	}
}

func TestNextPrev(t *testing.T) {
	tr := New[int]()
	for k := uint64(0); k < 50; k += 2 {
		tr.Insert(k, 0)
	}
	n := tr.Min()
	prev := uint64(0)
	count := 1
	for nx := tr.Next(n); nx != nil; nx = tr.Next(nx) {
		if nx.Key() <= prev && count > 1 {
			t.Fatalf("Next not increasing: %d after %d", nx.Key(), prev)
		}
		if p := tr.Prev(nx); p == nil || p.Key() != nx.Key()-2 {
			t.Fatalf("Prev(%d) wrong", nx.Key())
		}
		prev = nx.Key()
		count++
	}
	if count != 25 {
		t.Fatalf("visited %d nodes, want 25", count)
	}
	if tr.Max().Key() != 48 {
		t.Fatalf("Max = %d, want 48", tr.Max().Key())
	}
}

type ival struct{ start, end uint64 }

func TestAugmentedInterval(t *testing.T) {
	tr := NewAugmented[ival](func(v ival) uint64 { return v.end })
	rng := rand.New(rand.NewSource(7))
	var model []ival
	var handles []*Node[ival]
	for i := 0; i < 2000; i++ {
		if len(handles) == 0 || rng.Intn(3) != 0 {
			s := uint64(rng.Intn(1000))
			iv := ival{s, s + 1 + uint64(rng.Intn(50))}
			handles = append(handles, tr.Insert(iv.start, iv))
			model = append(model, iv)
		} else {
			j := rng.Intn(len(handles))
			tr.Delete(handles[j])
			handles = append(handles[:j], handles[j+1:]...)
			model = append(model[:j], model[j+1:]...)
		}
		if i%59 == 0 {
			checkInvariants(t, tr)
			// Cross-check an overlap count against brute force using the
			// augmented pruning search.
			qs := uint64(rng.Intn(1000))
			qe := qs + 1 + uint64(rng.Intn(100))
			want := 0
			for _, iv := range model {
				if iv.start < qe && qs < iv.end {
					want++
				}
			}
			got := 0
			var search func(n *Node[ival])
			search = func(n *Node[ival]) {
				if n == nil || n.MaxAug() <= qs {
					return // no range in this subtree ends after qs
				}
				search(n.Left())
				if n.Key() < qe {
					if iv := n.Value(); iv.start < qe && qs < iv.end {
						got++
					}
					search(n.Right())
				}
			}
			search(tr.Root())
			if got != want {
				t.Fatalf("overlap count via augmentation = %d, brute force = %d", got, want)
			}
		}
	}
}

func TestFixAugAfterInPlaceUpdate(t *testing.T) {
	tr := NewAugmented[ival](func(v ival) uint64 { return v.end })
	n1 := tr.Insert(10, ival{10, 20})
	tr.Insert(5, ival{5, 8})
	tr.Insert(30, ival{30, 35})
	n1.SetValue(ival{10, 100})
	tr.FixAug(n1)
	checkInvariants(t, tr)
	if tr.Root().MaxAug() != 100 {
		t.Fatalf("root maxAug = %d, want 100", tr.Root().MaxAug())
	}
}

// TestQuickSequences drives random insert/delete sequences from quick and
// verifies invariants plus model equality at the end.
func TestQuickSequences(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New[uint64]()
		var live []*Node[uint64]
		model := map[*Node[uint64]]uint64{}
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				k := uint64(op % 128)
				n := tr.Insert(k, k)
				live = append(live, n)
				model[n] = k
			} else {
				i := int(op) % len(live)
				tr.Delete(live[i])
				delete(model, live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		checkInvariants(t, tr)
		count := 0
		ok := true
		tr.Ascend(func(n *Node[uint64]) bool {
			if model[n] != n.Key() {
				ok = false
			}
			count++
			return true
		})
		return ok && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := New[int]()
	rng := rand.New(rand.NewSource(3))
	handles := make([]*Node[int], 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(handles) < 1024 {
			handles = append(handles, tr.Insert(uint64(rng.Intn(1<<20)), i))
		} else {
			j := rng.Intn(len(handles))
			tr.Delete(handles[j])
			handles[j] = tr.Insert(uint64(rng.Intn(1<<20)), i)
		}
	}
}
