package metis

import (
	"math/rand"
	"sync"

	"repro/internal/malloc"
	"repro/internal/vm"
)

// MM is the matrix-multiply Metis benchmark — the paper's negative
// control: it allocates its (dense) inputs up front and then only
// computes, so it exercises mprotect barely at all and "the impact of
// range locks was negligible" (§7.2). Reproducing the null result is part
// of reproducing the paper.
const MM Workload = 3

// mmDim returns the square-matrix dimension for an input budget of n
// bytes (two input matrices of float64).
func mmDim(n uint64) int {
	d := 16
	for uint64((d+16)*(d+16))*16 <= n {
		d += 16
	}
	return d
}

// runMM executes the matrix multiply over the shared address space and
// returns (words processed ~ multiply-adds, unique ~ dimension).
func runMM(cfg Config, as *vm.AddressSpace) (Result, error) {
	dim := mmDim(cfg.InputBytes)

	// One arena per worker; the matrices are partitioned row-wise. Each
	// worker allocates its slice of A, B and C once — a handful of grow
	// mprotects total, in stark contrast to wc/wr's constant churn.
	a := make([]float64, dim*dim)
	bm := make([]float64, dim*dim)
	c := make([]float64, dim*dim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range a {
		a[i] = rng.Float64()
		bm[i] = rng.Float64()
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	rowsPer := (dim + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena, err := malloc.NewArena(as, cfg.ArenaSize)
			if err != nil {
				errs <- err
				return
			}
			lo := w * rowsPer
			hi := lo + rowsPer
			if hi > dim {
				hi = dim
			}
			if lo >= hi {
				return
			}
			// Mirror the worker's matrix slices as arena allocations
			// (touched once — the only VM traffic in the whole phase).
			rows := uint64(hi - lo)
			if _, err := arena.Alloc(rows * uint64(dim) * 8 * 3); err != nil {
				errs <- err
				return
			}
			for i := lo; i < hi; i++ {
				for k := 0; k < dim; k++ {
					aik := a[i*dim+k]
					for j := 0; j < dim; j++ {
						c[i*dim+j] += aik * bm[k*dim+j]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	return Result{
		Words:  uint64(dim) * uint64(dim) * uint64(dim),
		Unique: uint64(dim),
	}, nil
}
