package metis

import (
	"bytes"
	"testing"

	"repro/internal/vm"
)

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(7, 1<<16)
	b := GenerateCorpus(7, 1<<16)
	if !bytes.Equal(a, b) {
		t.Fatal("corpus not deterministic for equal seeds")
	}
	c := GenerateCorpus(8, 1<<16)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
	if uint64(len(a)) < 1<<16 {
		t.Fatalf("corpus too small: %d", len(a))
	}
}

func TestWordsIteration(t *testing.T) {
	var got []string
	var offs []uint32
	words([]byte("  foo bar  baz"), func(w []byte, off uint32) {
		got = append(got, string(w))
		offs = append(offs, off)
	})
	want := []string{"foo", "bar", "baz"}
	if len(got) != 3 {
		t.Fatalf("words = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("words = %v, want %v", got, want)
		}
	}
	if offs[0] != 2 || offs[1] != 6 || offs[2] != 11 {
		t.Fatalf("offsets = %v", offs)
	}
}

func TestSegmentCoversCorpus(t *testing.T) {
	corpus := GenerateCorpus(3, 1<<14)
	total := 0
	countWords := func(b []byte) int {
		n := 0
		words(b, func([]byte, uint32) { n++ })
		return n
	}
	for i := 0; i < 4; i++ {
		total += countWords(segment(corpus, i, 4))
	}
	if whole := countWords(corpus); total != whole {
		t.Fatalf("segments count %d words, corpus has %d", total, whole)
	}
}

func TestParseWorkload(t *testing.T) {
	for _, w := range []Workload{WC, WR, WRMem} {
		got, err := ParseWorkload(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWorkload(%q) = %v, %v", w.String(), got, err)
		}
	}
	if _, err := ParseWorkload("nope"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

// runSmall executes a scaled-down run for tests.
func runSmall(t *testing.T, wl Workload, kind vm.PolicyKind, workers int) Result {
	t.Helper()
	res, err := Run(Config{
		Workload:   wl,
		Policy:     kind,
		Workers:    workers,
		InputBytes: 1 << 19, // 512 KiB
		ArenaSize:  16 << 20,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkloadsProduceSameAnswerAcrossPolicies: the locking policy must
// not change the computation's result.
func TestWorkloadsProduceSameAnswerAcrossPolicies(t *testing.T) {
	for _, wl := range []Workload{WC, WR, WRMem} {
		t.Run(wl.String(), func(t *testing.T) {
			base := runSmall(t, wl, vm.Stock, 4)
			if base.Words == 0 || base.Unique == 0 {
				t.Fatalf("degenerate run: %+v", base)
			}
			for _, kind := range []vm.PolicyKind{vm.ListRefined, vm.TreeRefined, vm.ListFull} {
				got := runSmall(t, wl, kind, 4)
				if got.Words != base.Words || got.Unique != base.Unique {
					t.Fatalf("%s/%s: words=%d unique=%d, stock says words=%d unique=%d",
						wl, kind, got.Words, got.Unique, base.Words, base.Unique)
				}
			}
		})
	}
}

// TestVMActivity checks the workloads actually stress the VM subsystem:
// faults, grows and shrinks must all occur, and under a refined policy
// speculation must dominate (the paper reports >99% success).
func TestVMActivity(t *testing.T) {
	res := runSmall(t, WC, vm.ListRefined, 4)
	if res.VM.Faults == 0 {
		t.Fatal("no page faults recorded")
	}
	if res.Arena.Grows == 0 || res.Arena.Shrinks == 0 {
		t.Fatalf("expected grow and shrink mprotects, got %+v", res.Arena)
	}
	total := res.VM.SpecSucceeded + res.VM.SpecFellBack
	if total == 0 {
		t.Fatal("no mprotects went through the speculative path")
	}
	// Fallbacks should be limited to each worker's one-time arena split
	// (the first commit of a fresh PROT_NONE reservation is structural);
	// everything after that is a boundary move. Long runs approach the
	// paper's >99% success rate.
	if res.VM.SpecFellBack > 4+1 {
		t.Fatalf("too many speculation fallbacks: %d of %d (want <= workers)", res.VM.SpecFellBack, total)
	}
}

func TestWRMemSkipsSharedInput(t *testing.T) {
	res := runSmall(t, WRMem, vm.ListRefined, 2)
	if res.Words == 0 {
		t.Fatal("wrmem processed no words")
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := Run(Config{Workload: WC, Policy: vm.Stock, Workers: 2, InputBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time measured")
	}
}

// TestMMNegativeControl reproduces §7.2's null result: the compute-bound
// mm benchmark generates almost no mprotect traffic, so the locking
// policy cannot matter much.
func TestMMNegativeControl(t *testing.T) {
	res, err := Run(Config{
		Workload:   MM,
		Policy:     vm.ListRefined,
		Workers:    4,
		InputBytes: 1 << 20,
		ArenaSize:  16 << 20,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Words == 0 {
		t.Fatal("mm did no work")
	}
	total := res.VM.SpecSucceeded + res.VM.SpecFellBack
	// One initial split + at most one grow per worker: single digits,
	// versus hundreds for wc/wr at the same input size.
	if total > 16 {
		t.Fatalf("mm produced %d mprotects; expected almost none", total)
	}
	stock, err := Run(Config{Workload: MM, Policy: vm.Stock, Workers: 4,
		InputBytes: 1 << 20, ArenaSize: 16 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stock.Words != res.Words {
		t.Fatalf("mm result differs across policies: %d vs %d", stock.Words, res.Words)
	}
}
