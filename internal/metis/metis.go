// Package metis re-implements the three Metis map-reduce benchmarks the
// paper uses to stress the VM subsystem (§7.2): wc (word count), wr
// (inverted index) and wrmem (wr over generated in-memory input). The
// computation is real map-reduce over a synthetic corpus; what matters for
// the reproduction is the memory-system traffic it generates, which
// mirrors Metis + GLIBC faithfully:
//
//   - every worker allocates its hash tables from a private GLIBC-style
//     arena (internal/malloc), so table growth produces the boundary-move
//     mprotects of §5.2;
//   - scratch buffers are released in phases, producing shrink mprotects;
//   - first touches of input and table pages take simulated page faults;
//   - all of it runs against one shared simulated address space whose
//     locking policy is the experiment variable.
package metis

import (
	"fmt"
	"hash/maphash"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/malloc"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Workload selects the benchmark.
type Workload int

// The Metis benchmarks that exercise mprotect (§7.2).
const (
	// WC counts word occurrences.
	WC Workload = iota
	// WR builds an inverted index (word -> positions).
	WR
	// WRMem is WR over input generated into arena memory by each worker.
	WRMem
)

func (w Workload) String() string {
	switch w {
	case WC:
		return "wc"
	case WR:
		return "wr"
	case WRMem:
		return "wrmem"
	case MM:
		return "mm"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// ParseWorkload resolves a workload name.
func ParseWorkload(name string) (Workload, error) {
	for _, w := range []Workload{WC, WR, WRMem, MM} {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("metis: unknown workload %q", name)
}

// Config parametrizes one run.
type Config struct {
	Workload Workload
	Policy   vm.PolicyKind
	Workers  int
	// InputBytes is the corpus size for wc/wr, or the per-run total
	// generated size for wrmem. Zero selects 8 MiB (scaled-down from the
	// paper's inputs; see DESIGN.md).
	InputBytes uint64
	// ArenaSize is each worker's arena reservation (0 = 64 MiB).
	ArenaSize uint64
	Seed      int64
	// RangeStat/SpinStat attach lock accounting (Figures 7 and 8).
	RangeStat, SpinStat *stats.LockStat
}

// Result reports a run's outcome.
type Result struct {
	Elapsed time.Duration
	Words   uint64 // total words processed
	Unique  uint64 // distinct words found
	VM      vm.OpStats
	Arena   malloc.Stats // summed over workers
}

// entry mirrors one hash-table record: its simulated allocation address
// plus the real payload used by the computation.
type entry struct {
	addr      uint64
	count     uint64
	positions []uint32
	posAddr   uint64 // simulated address of the positions block
}

// scratchBytes is the per-phase scratch buffer each worker allocates and
// releases, generating the shrink mprotects Metis produces when map-phase
// buffers are returned.
const scratchBytes = 256 << 10

// churnWords is how often (in words) a worker cycles its scratch buffer.
const churnWords = 8192

// Run executes the configured benchmark and returns its wall time and
// counters. The address space (and hence the lock under test) is created
// fresh for each run.
func Run(cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.InputBytes == 0 {
		cfg.InputBytes = 8 << 20
	}
	if cfg.ArenaSize == 0 {
		cfg.ArenaSize = malloc.DefaultArenaSize
	}

	as := vm.NewAddressSpace(cfg.Policy, cfg.RangeStat, cfg.SpinStat)

	if cfg.Workload == MM {
		// The negative control takes a separate, compute-bound path.
		start := time.Now()
		res, err := runMM(cfg, as)
		if err != nil {
			return Result{}, err
		}
		res.Elapsed = time.Since(start)
		res.VM = as.Stats()
		return res, nil
	}

	// Input preparation happens outside the timed section. wc/wr read a
	// shared corpus through a read-only file mapping; wrmem workers
	// generate their input into their own arenas inside the timed run.
	var corpus []byte
	var inputBase uint64
	if cfg.Workload != WRMem {
		corpus = GenerateCorpus(cfg.Seed, cfg.InputBytes)
		base, err := as.Mmap(uint64(len(corpus)), vm.ProtRead)
		if err != nil {
			return Result{}, err
		}
		inputBase = base
	}

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		a, err := malloc.NewArena(as, cfg.ArenaSize)
		if err != nil {
			return Result{}, err
		}
		workers[i] = &worker{
			id:        i,
			cfg:       cfg,
			as:        as,
			arena:     a,
			table:     make(map[string]*entry),
			inputBase: inputBase,
		}
	}

	start := time.Now()

	// --- Map phase.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			var err error
			if cfg.Workload == WRMem {
				err = w.mapGenerated()
			} else {
				err = w.mapCorpus(segment(corpus, i, cfg.Workers))
			}
			if err != nil {
				errs <- err
			}
		}(i, w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	// --- Reduce phase: hash-partitioned parallel merge; each reducer
	// allocates its merged table from its own arena.
	reduced := make([]map[string]uint64, cfg.Workers)
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make(map[string]uint64)
			for _, w := range workers {
				for word, e := range w.table {
					if int(hashString(word))%cfg.Workers != i {
						continue
					}
					if _, ok := out[word]; !ok {
						if _, err := workers[i].arena.Alloc(uint64(48 + len(word))); err != nil {
							errs <- err
							return
						}
					}
					out[word] += e.count
				}
			}
			reduced[i] = out
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	res := Result{Elapsed: time.Since(start), VM: as.Stats()}
	for _, w := range workers {
		res.Words += w.words
		st := w.arena.Stats()
		res.Arena.Allocs += st.Allocs
		res.Arena.Frees += st.Frees
		res.Arena.Grows += st.Grows
		res.Arena.Shrinks += st.Shrinks
		res.Arena.Faults += st.Faults
	}
	for _, m := range reduced {
		res.Unique += uint64(len(m))
	}
	return res, nil
}

var hashSeed = maphash.MakeSeed()

func hashString(s string) uint64 { return maphash.String(hashSeed, s) }

// segment splits buf into worker-count chunks on word boundaries.
func segment(buf []byte, i, n int) []byte {
	lo := len(buf) * i / n
	hi := len(buf) * (i + 1) / n
	for lo > 0 && lo < len(buf) && buf[lo-1] != ' ' {
		lo++
	}
	for hi > 0 && hi < len(buf) && buf[hi-1] != ' ' {
		hi++
	}
	if lo >= hi {
		return nil
	}
	return buf[lo:hi]
}

type worker struct {
	id        int
	cfg       Config
	as        *vm.AddressSpace
	arena     *malloc.Arena
	table     map[string]*entry
	inputBase uint64
	words     uint64

	scratch uint64 // live scratch bytes
}

// mapCorpus processes one segment of the shared corpus (wc and wr).
func (w *worker) mapCorpus(seg []byte) error {
	if err := w.allocScratch(); err != nil {
		return err
	}
	var err error
	sinceChurn := 0
	words(seg, func(word []byte, off uint32) {
		if err != nil {
			return
		}
		// Reading the input faults the shared mapping's pages in (once
		// per page process-wide; racy dedupe like a hardware TLB refill).
		if w.inputBase != 0 {
			addr := w.inputBase + uint64(off)
			if !w.as.PageTable().Present(addr) {
				if ferr := w.as.PageFault(addr, false); ferr != nil {
					err = ferr
					return
				}
			}
		}
		if e := w.consume(word, off); e != nil {
			err = e
			return
		}
		sinceChurn++
		if sinceChurn >= churnWords {
			sinceChurn = 0
			if e := w.churnScratch(); e != nil {
				err = e
			}
		}
	})
	if err != nil {
		return err
	}
	return w.freeScratch()
}

// mapGenerated is wrmem's map phase: generate random words into arena
// memory (faulting each page on first write), then index them.
func (w *worker) mapGenerated() error {
	size := w.cfg.InputBytes / uint64(w.cfg.Workers)
	addr, err := w.arena.Alloc(size)
	if err != nil {
		return err
	}
	// Generating writes through every page; Alloc already touched them,
	// but the generation itself is the real work here.
	rng := rand.New(rand.NewSource(w.cfg.Seed + int64(w.id)))
	zipf := rand.NewZipf(rng, zipfS, zipfV, vocabSize-1)
	vocab := vocabulary()
	buf := make([]byte, 0, size)
	for uint64(len(buf)) < size {
		buf = append(buf, vocab[zipf.Uint64()]...)
		buf = append(buf, ' ')
	}
	_ = addr
	if err := w.allocScratch(); err != nil {
		return err
	}
	var werr error
	sinceChurn := 0
	words(buf, func(word []byte, off uint32) {
		if werr != nil {
			return
		}
		if e := w.consume(word, off); e != nil {
			werr = e
			return
		}
		sinceChurn++
		if sinceChurn >= churnWords {
			sinceChurn = 0
			if e := w.churnScratch(); e != nil {
				werr = e
			}
		}
	})
	if werr != nil {
		return werr
	}
	return w.freeScratch()
}

// consume feeds one word into the worker's table, mirroring every real
// allocation with an arena allocation.
func (w *worker) consume(word []byte, off uint32) error {
	w.words++
	e, ok := w.table[string(word)]
	if !ok {
		addr, err := w.arena.Alloc(uint64(48 + len(word)))
		if err != nil {
			return err
		}
		e = &entry{addr: addr}
		w.table[string(word)] = e
	}
	e.count++
	if w.cfg.Workload != WC {
		// Inverted index: append the position, growing the mirrored
		// positions block geometrically like a realloc.
		if len(e.positions) == cap(e.positions) {
			newCap := cap(e.positions) * 2
			if newCap == 0 {
				newCap = 4
			}
			addr, err := w.arena.Alloc(uint64(8 * newCap))
			if err != nil {
				return err
			}
			e.posAddr = addr
			grown := make([]uint32, len(e.positions), newCap)
			copy(grown, e.positions)
			e.positions = grown
		}
		e.positions = append(e.positions, off)
	}
	return nil
}

func (w *worker) allocScratch() error {
	if _, err := w.arena.Alloc(scratchBytes); err != nil {
		return err
	}
	w.scratch = scratchBytes
	return nil
}

func (w *worker) freeScratch() error {
	if w.scratch == 0 {
		return nil
	}
	w.scratch = 0
	return w.arena.Free(scratchBytes)
}

// churnScratch releases and re-allocates the scratch buffer, producing the
// shrink/grow mprotect pairs Metis generates between map-phase chunks.
func (w *worker) churnScratch() error {
	if err := w.freeScratch(); err != nil {
		return err
	}
	return w.allocScratch()
}
