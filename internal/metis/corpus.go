package metis

import (
	"math/rand"
	"strconv"
)

// vocabSize is the number of distinct words in the synthetic corpus.
// Metis's wc/wr inputs are natural-language-ish files; a Zipf-distributed
// vocabulary reproduces the skewed key popularity that shapes the hash
// tables (few hot keys, long tail).
const vocabSize = 8192

// zipfS and zipfV parametrize the Zipf sampler (mildly skewed).
const (
	zipfS = 1.2
	zipfV = 1.0
)

// vocabulary builds the word list once; words are 3–11 bytes.
func vocabulary() []string {
	words := make([]string, vocabSize)
	for i := range words {
		words[i] = "w" + strconv.FormatUint(uint64(i*2654435761), 36)
	}
	return words
}

// GenerateCorpus produces approximately size bytes of space-separated
// Zipf-distributed words, deterministically from seed. It stands in for
// the Metis input files (see DESIGN.md substitutions).
func GenerateCorpus(seed int64, size uint64) []byte {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, zipfV, vocabSize-1)
	vocab := vocabulary()
	out := make([]byte, 0, size+16)
	for uint64(len(out)) < size {
		w := vocab[zipf.Uint64()]
		out = append(out, w...)
		out = append(out, ' ')
	}
	return out
}

// words iterates the space-separated words of buf, calling fn with each
// word and its byte offset.
func words(buf []byte, fn func(word []byte, off uint32)) {
	start := -1
	for i, b := range buf {
		if b == ' ' {
			if start >= 0 {
				fn(buf[start:i], uint32(start))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fn(buf[start:], uint32(start))
	}
}
