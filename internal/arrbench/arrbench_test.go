package arrbench

import (
	"testing"
	"time"

	"repro/internal/lockapi"
)

func shortRun(t *testing.T, lk lockapi.Locker, v Variant, readPct int) Result {
	t.Helper()
	return Run(Config{
		Lock:     lk,
		Variant:  v,
		Threads:  4,
		ReadPct:  readPct,
		Duration: 50 * time.Millisecond,
		Seed:     1,
	})
}

// TestWriteIntegrity: the final array sum must equal the number of slot
// increments performed — any lost update means the lock failed.
func TestWriteIntegrity(t *testing.T) {
	locks := map[string]lockapi.Locker{
		"list-ex":   lockapi.NewListEx(nil),
		"list-rw":   lockapi.NewListRW(nil),
		"lustre-ex": lockapi.NewLustreEx(),
		"kernel-rw": lockapi.NewKernelRW(),
		"song-rw":   lockapi.NewSongRW(),
		"pnova-rw":  NewPnovaForArray(DefaultSlots),
		"rwsem":     lockapi.NewRWSem(),
	}
	for name, lk := range locks {
		for _, v := range []Variant{Full, Disjoint, Random} {
			res := shortRun(t, lk, v, 60)
			if res.Ops == 0 {
				t.Fatalf("%s/%s: no operations completed", name, v)
			}
			if res.SlotSum != res.WriteUnits {
				t.Fatalf("%s/%s: slot sum %d != %d write units (lost updates)",
					name, v, res.SlotSum, res.WriteUnits)
			}
		}
	}
}

func TestReadOnlyWorkloadWritesNothing(t *testing.T) {
	res := shortRun(t, lockapi.NewListRW(nil), Random, 100)
	if res.Writes != 0 || res.SlotSum != 0 {
		t.Fatalf("read-only run wrote: %+v", res)
	}
	if res.Reads != res.Ops {
		t.Fatalf("reads %d != ops %d", res.Reads, res.Ops)
	}
}

func TestDisjointPartitionsCoverAllThreads(t *testing.T) {
	// More threads than slots still works (partitions clamp to >=1 slot).
	res := Run(Config{
		Lock:     lockapi.NewListEx(nil),
		Variant:  Disjoint,
		Threads:  8,
		ReadPct:  0,
		Slots:    4,
		Duration: 30 * time.Millisecond,
	})
	if res.Ops == 0 {
		t.Fatal("no ops with threads > slots")
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range []Variant{Full, Disjoint, Random} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("nah"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func TestThroughputPositive(t *testing.T) {
	res := shortRun(t, lockapi.NewListRW(nil), Full, 60)
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
}
