// Package arrbench implements the ArrBench microbenchmark of §7.1:
// threads acquire ranges of a shared, cache-line-padded array under a
// range lock and read or increment the covered slots, with a random amount
// of non-critical spin work between operations. Its three variants map to
// the three rows of Figure 3:
//
//	Full     — every thread locks and traverses the entire array;
//	Disjoint — thread i locks its own slots/threads partition, traversing
//	           it threads times so the work per acquisition is constant;
//	Random   — uniformly random [start, end) per operation.
package arrbench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockapi"
)

// Variant selects the access pattern (Figure 3 rows).
type Variant int

// The ArrBench variants.
const (
	// Full locks the entire range every operation (Fig. 3 a,b).
	Full Variant = iota
	// Disjoint gives every thread a private partition (Fig. 3 c,d).
	Disjoint
	// Random draws operation ranges uniformly (Fig. 3 e,f).
	Random
)

func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case Disjoint:
		return "disjoint"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant resolves a variant name.
func ParseVariant(name string) (Variant, error) {
	for _, v := range []Variant{Full, Disjoint, Random} {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("arrbench: unknown variant %q", name)
}

// DefaultSlots is the array size used in the paper (256 slots).
const DefaultSlots = 256

// DefaultMaxWork is the paper's bound on non-critical no-op work (2048).
const DefaultMaxWork = 2048

// Config parametrizes one ArrBench run.
type Config struct {
	Lock     lockapi.Locker
	Variant  Variant
	Threads  int
	ReadPct  int // percentage of read operations (100, 80, 60 in the paper)
	Slots    int // 0 = DefaultSlots
	MaxWork  int // 0 = DefaultMaxWork
	Duration time.Duration
	Seed     int64
}

// Result reports a run's totals.
type Result struct {
	Ops        uint64  // completed operations
	Reads      uint64  // of which reads
	Writes     uint64  // of which writes
	Throughput float64 // operations per second
	SlotSum    uint64  // final sum over the array (writes verification)
	WriteUnits uint64  // total slot increments performed (must equal SlotSum)
}

// slot is one array element padded to a cache line.
type slot struct {
	v uint64
	_ [7]uint64
}

// Run executes ArrBench and returns its counters.
func Run(cfg Config) Result {
	if cfg.Slots == 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.MaxWork == 0 {
		cfg.MaxWork = DefaultMaxWork
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	arr := make([]slot, cfg.Slots)
	var (
		stop   atomic.Bool
		wg     sync.WaitGroup
		ops    atomic.Uint64
		reads  atomic.Uint64
		writes atomic.Uint64
		units  atomic.Uint64
	)
	full, hasFull := cfg.Lock.(lockapi.FullLocker)
	opLk, hasOp := cfg.Lock.(lockapi.OpLocker)

	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*104729))
			// One per-operation context per worker — the paper's
			// per-thread pools — when the lock supports it.
			var op lockapi.Op
			if hasOp {
				op = opLk.BeginOp()
				defer opLk.EndOp(op)
			}
			n := uint64(cfg.Slots)
			partLo := uint64(th) * n / uint64(cfg.Threads)
			partHi := uint64(th+1) * n / uint64(cfg.Threads)
			if partHi == partLo {
				partHi = partLo + 1
			}
			var localOps, localReads, localWrites, localUnits uint64
			for !stop.Load() {
				isRead := rng.Intn(100) < cfg.ReadPct

				var lo, hi uint64
				passes := 1
				switch cfg.Variant {
				case Full:
					lo, hi = 0, n
				case Disjoint:
					lo, hi = partLo, partHi
					// Constant work per acquisition: traverse the private
					// slice once per thread in the system.
					passes = cfg.Threads
				case Random:
					a, b := uint64(rng.Intn(cfg.Slots)), uint64(rng.Intn(cfg.Slots))
					if a > b {
						a, b = b, a
					}
					lo, hi = a, b+1
				}

				var rel func()
				var g lockapi.Guard
				switch {
				case hasOp && cfg.Variant == Full:
					g = opLk.AcquireFullOp(op, !isRead)
				case hasOp:
					g = opLk.AcquireOp(op, lo, hi, !isRead)
				case cfg.Variant == Full && hasFull:
					rel = full.AcquireFull(!isRead)
				default:
					rel = cfg.Lock.Acquire(lo, hi, !isRead)
				}
				if isRead {
					var sink uint64
					for p := 0; p < passes; p++ {
						for i := lo; i < hi; i++ {
							sink += arr[i].v
						}
					}
					_ = sink
					localReads++
				} else {
					for p := 0; p < passes; p++ {
						for i := lo; i < hi; i++ {
							arr[i].v++
							localUnits++
						}
					}
					localWrites++
				}
				if hasOp {
					opLk.ReleaseOp(op, g)
				} else {
					rel()
				}
				localOps++

				// Non-critical section: uniformly random no-op work.
				for w := rng.Intn(cfg.MaxWork); w > 0; w-- {
					_ = w
				}
			}
			ops.Add(localOps)
			reads.Add(localReads)
			writes.Add(localWrites)
			units.Add(localUnits)
		}(th)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Ops:        ops.Load(),
		Reads:      reads.Load(),
		Writes:     writes.Load(),
		WriteUnits: units.Load(),
		Throughput: float64(ops.Load()) / elapsed.Seconds(),
	}
	for i := range arr {
		res.SlotSum += arr[i].v
	}
	return res
}

// NewPnovaForArray builds the pnova-rw lock configured as in §7.1: one
// segment per array slot.
func NewPnovaForArray(slots int) lockapi.Locker {
	if slots == 0 {
		slots = DefaultSlots
	}
	return lockapi.NewPnovaRW(uint64(slots), slots)
}
