// Package obs is the repository's observability layer: a dependency-free
// metrics registry (sharded lock-free counters, gauges, log2 latency
// histograms) with snapshot semantics, plus a small leveled key=value
// logger (log.go).
//
// The layer exists so the live server is legible: the same per-class
// latency/size breakdowns the offline benchmarks report (and the paper's
// own evaluation is built on per-lock wait/acquire metrics) become
// scrapeable series on a running rangestored. Everything here is built
// for hot paths:
//
//   - Counter is striped across padded cache lines, stripe picked by a
//     goroutine-stack hash (the ebr free-pool idiom), so concurrent Adds
//     from different connections touch disjoint words.
//   - Histogram is the log2-bucket design of internal/stats plus a sum
//     word, so snapshots can report both quantile bounds and means.
//   - All observation methods are nil-safe: a component handed no
//     metrics pays one predictable branch, which is what lets the
//     overhead acceptance (≤5% on the sharded server bench) hold.
//
// Snapshot consistency rules — what a Snapshot() promises and what it
// does not:
//
//   - Every individual word (a counter stripe, a gauge, one histogram
//     bucket, the histogram sum) is read atomically; no torn values.
//   - Per series, counters and histogram buckets are monotone: a later
//     snapshot never reports a smaller value than an earlier one.
//   - Across words there is no transaction. A striped counter or a
//     histogram is summed stripe-by-stripe while writers keep writing,
//     so a concurrent observation may appear in a histogram's count but
//     not yet in its sum (or vice versa), and two series touched by one
//     request may disagree by the requests in flight. Skew is bounded
//     by in-flight operations — it never grows with time.
//   - Func-backed series (CounterFunc/GaugeFunc) are evaluated at
//     snapshot time, in registration order, with no registry lock held.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterStripes is the number of stripes per Counter — a power of two.
// 16 padded stripes cover the oversubscribed-server case (4 conns/core
// at 8 cores share 16 lines) at 1 KiB per counter.
const counterStripes = 16

// cstripe is one cacheline-padded counter shard.
type cstripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone, striped counter. Adds from concurrent
// goroutines land on (usually) disjoint cache lines; Load sums the
// stripes. All methods are nil-safe.
type Counter struct {
	stripes [counterStripes]cstripe
}

// ghash hashes the calling goroutine's identity (approximated by a
// stack address — distinct goroutines occupy distinct stacks) into a
// stripe selector. Stability across calls is a performance matter only.
func ghash() uint32 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h *= 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.stripes[ghash()&(counterStripes-1)].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Gauge is a settable instantaneous value. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (up or down).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumHistBuckets is the number of log2 histogram buckets: bucket i
// counts observations in [2^i, 2^(i+1)) ns; bucket 0 additionally
// absorbs zero, the last bucket absorbs everything above ~1.15 s.
const NumHistBuckets = 31

// HistBucketBound returns bucket i's exclusive upper bound in the
// histogram's unit (nanoseconds for latency histograms).
func HistBucketBound(i int) int64 { return int64(1) << uint(i+1) }

// Histogram is a lock-free log2 histogram with a sum word, so snapshots
// report quantile upper bounds and exact means. The unit is whatever
// the caller observes — latency histograms record nanoseconds, size
// histograms record bytes or record counts. All methods are nil-safe.
type Histogram struct {
	sum     atomic.Int64
	buckets [NumHistBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 63 - leadingZeros64(uint64(v))
	if b >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// snapshot reads the histogram into hs (per-word atomic reads; see the
// package comment for the cross-word rules).
func (h *Histogram) snapshot() *HistSnapshot {
	hs := &HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		hs.Buckets[i] = h.buckets[i].Load()
	}
	return hs
}

// Kind classifies a registered series.
type Kind uint8

// The series kinds. Func-backed series snapshot as their value kind.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// metric is one registered series.
type metric struct {
	name   string // base name, no labels
	labels string // pre-rendered `{k="v",...}` or ""
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64 // func-backed counter/gauge
}

func (m *metric) full() string { return m.name + m.labels }

// Registry holds named series. Registration takes the registry mutex;
// observation never does — the returned Counter/Gauge/Histogram are the
// hot-path handles. A full series name is a base name plus an optional
// pre-rendered label suffix: `wal_fsync_ns` or
// `rs_requests_total{op="read"}`. Registering an existing full name
// returns the existing handle (func-backed series are replaced — a
// component restarting inside one process re-wires its closure).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// splitName cuts a full series name into base and label suffix.
func splitName(full string) (name, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], full[i:]
	}
	return full, ""
}

// register adds or finds a series under its full name.
func (r *Registry) register(full string, kind Kind, mk func(name, labels string) *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[full]; ok {
		if m.fn != nil || (kind != m.kind) {
			// Func-backed series are replaced in place; a kind clash is a
			// programming error made loud by replacing the series too.
			name, labels := splitName(full)
			nm := mk(name, labels)
			*m = *nm
		}
		return m
	}
	name, labels := splitName(full)
	m := mk(name, labels)
	r.metrics = append(r.metrics, m)
	r.byName[full] = m
	return m
}

// Counter registers (or finds) a striped counter series.
func (r *Registry) Counter(full string) *Counter {
	m := r.register(full, KindCounter, func(name, labels string) *metric {
		return &metric{name: name, labels: labels, kind: KindCounter, c: &Counter{}}
	})
	return m.c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(full string) *Gauge {
	m := r.register(full, KindGauge, func(name, labels string) *metric {
		return &metric{name: name, labels: labels, kind: KindGauge, g: &Gauge{}}
	})
	return m.g
}

// Histogram registers (or finds) a histogram series.
func (r *Registry) Histogram(full string) *Histogram {
	m := r.register(full, KindHistogram, func(name, labels string) *metric {
		return &metric{name: name, labels: labels, kind: KindHistogram, h: &Histogram{}}
	})
	return m.h
}

// CounterFunc registers a counter series evaluated at snapshot time —
// the bridge for components that already keep their own monotone
// atomics (the server's per-op tallies, the WAL's LSN frontiers).
// f must be safe to call from any goroutine and should be monotone.
func (r *Registry) CounterFunc(full string, f func() int64) {
	r.register(full, KindCounter, func(name, labels string) *metric {
		return &metric{name: name, labels: labels, kind: KindCounter, fn: f}
	})
}

// GaugeFunc registers a gauge series evaluated at snapshot time.
func (r *Registry) GaugeFunc(full string, f func() int64) {
	r.register(full, KindGauge, func(name, labels string) *metric {
		return &metric{name: name, labels: labels, kind: KindGauge, fn: f}
	})
}

// HistSnapshot is one histogram's state at snapshot time.
type HistSnapshot struct {
	Sum     int64
	Buckets [NumHistBuckets]int64
}

// Count returns the snapshot's total observations.
func (h *HistSnapshot) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Mean returns the snapshot's mean observation (0 when empty).
func (h *HistSnapshot) Mean() int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum / n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) at
// bucket resolution, 0 for an empty snapshot.
func (h *HistSnapshot) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, b := range h.Buckets {
		seen += b
		if seen >= target {
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(NumHistBuckets - 1)
}

// Entry is one series in a Snapshot.
type Entry struct {
	Name   string // base name
	Labels string // `{k="v",...}` or ""
	Kind   Kind
	Value  int64         // counter/gauge value
	Hist   *HistSnapshot // histogram state; nil otherwise
}

// Full returns the entry's full series name (base + labels).
func (e *Entry) Full() string { return e.Name + e.Labels }

// Snapshot is a point-in-time read of a registry, sorted by full name.
type Snapshot struct {
	Entries []Entry
}

// Snapshot reads every registered series (see the package comment for
// the consistency rules) and returns the entries sorted by full name.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	s := &Snapshot{Entries: make([]Entry, 0, len(metrics))}
	for _, m := range metrics {
		e := Entry{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch {
		case m.fn != nil:
			e.Value = m.fn()
		case m.c != nil:
			e.Value = m.c.Load()
		case m.g != nil:
			e.Value = m.g.Load()
		case m.h != nil:
			e.Hist = m.h.snapshot()
		}
		s.Entries = append(s.Entries, e)
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		a, b := &s.Entries[i], &s.Entries[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return s
}

// Get returns the entry with the given full name.
func (s *Snapshot) Get(full string) (Entry, bool) {
	for i := range s.Entries {
		if s.Entries[i].Full() == full {
			return s.Entries[i], true
		}
	}
	return Entry{}, false
}

// Value returns a counter/gauge series' value (0 when absent — absent
// and zero are deliberately indistinguishable for alarm math; use Get
// when presence matters).
func (s *Snapshot) Value(full string) int64 {
	e, _ := s.Get(full)
	return e.Value
}

// HistOf returns a histogram series' snapshot, nil when absent.
func (s *Snapshot) HistOf(full string) *HistSnapshot {
	if e, ok := s.Get(full); ok {
		return e.Hist
	}
	return nil
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Histograms render as cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`; the le bounds are in the histogram's native
// unit (nanoseconds for `_ns` series). Every value is an integer — the
// endpoint can never serve NaN.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastTyped := ""
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.Name, e.Kind); err != nil {
				return err
			}
			lastTyped = e.Name
		}
		if e.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.Name, e.Labels, e.Value); err != nil {
				return err
			}
			continue
		}
		var cum int64
		for b, n := range e.Hist.Buckets {
			cum += n
			if n == 0 && b != NumHistBuckets-1 {
				continue // sparse: emit only occupied bounds (plus +Inf)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.Name, mergeLabels(e.Labels, fmt.Sprintf(`le="%d"`, HistBucketBound(b))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.Name, mergeLabels(e.Labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", e.Name, e.Labels, e.Hist.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.Name, e.Labels, cum); err != nil {
			return err
		}
	}
	return nil
}

// mergeLabels folds an extra label into a pre-rendered label suffix.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
