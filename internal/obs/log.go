// Leveled key=value logging. One Logger instance is shared across the
// server, replica, and failover client so every line carries the same
// stable keys (shard=, conn=, role=) and a grep over a mixed log can
// follow one shard or one connection across components. With() binds
// fields once per component (role=follower, conn=N) so hot-path call
// sites pay only for the line they emit; a nil *Logger discards
// everything, which is the default for library users who construct a
// Server without one.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// The levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// ParseLevel resolves a flag value into a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (have debug, info, warn, error)", s)
}

// Logger writes timestamped, leveled key=value lines. Loggers derived
// with With share one writer and mutex, so lines from every component
// interleave whole. All methods are nil-safe: a nil *Logger drops
// everything without formatting it.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	prefix string // pre-rendered " k=v k=v" bound by With
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min}
}

// With returns a logger that prepends the given key-value pairs to
// every line. The fields are rendered once, here, not per line.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(l.prefix)
	appendKV(&b, kv)
	return &Logger{mu: l.mu, w: l.w, min: l.min, prefix: b.String()}
}

// Enabled reports whether lines at lv would be written — the guard for
// call sites that would otherwise build expensive arguments.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	b.WriteString(l.prefix)
	appendKV(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKV renders alternating key, value pairs as " k=v". A trailing
// odd value is rendered under the key "!MISSING" rather than dropped.
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if s, ok := kv[i].(string); ok {
			b.WriteString(s)
		} else {
			b.WriteString(fmt.Sprint(kv[i]))
		}
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		} else {
			// Key without value: re-render the stray as the value.
			b.WriteString("!MISSING")
		}
	}
}

// formatValue renders one value; strings with spaces or '=' are quoted
// so lines stay machine-splittable on whitespace.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " =\"\n") || x == "" {
			return strconv.Quote(x)
		}
		return x
	case time.Duration:
		return x.String()
	case error:
		return strconv.Quote(x.Error())
	case fmt.Stringer:
		return formatValue(x.String())
	default:
		return fmt.Sprint(v)
	}
}
