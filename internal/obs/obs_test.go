package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Fatalf("Load = %d, want 6", got)
	}
	var nilC *Counter
	nilC.Add(1) // must not panic
	nilC.Inc()
	if nilC.Load() != 0 {
		t.Fatal("nil counter loads non-zero")
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Load() != 0 {
		t.Fatal("nil gauge loads non-zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1023, 9}, {1024, 10}, {1 << 40, NumHistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", got, len(cases))
	}
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveDuration(time.Second)
	if nilH.Count() != 0 {
		t.Fatal("nil histogram counts non-zero")
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	var h Histogram
	// 90 observations in [2^4, 2^5), 10 in [2^10, 2^11).
	for i := 0; i < 90; i++ {
		h.Observe(20)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	s := h.snapshot()
	if got := s.Count(); got != 100 {
		t.Fatalf("snapshot Count = %d, want 100", got)
	}
	if got := s.Quantile(0.5); got != HistBucketBound(4) {
		t.Errorf("p50 = %d, want %d", got, HistBucketBound(4))
	}
	if got := s.Quantile(0.99); got != HistBucketBound(10) {
		t.Errorf("p99 = %d, want %d", got, HistBucketBound(10))
	}
	wantMean := (90*int64(20) + 10*int64(1500)) / 100
	if got := s.Mean(); got != wantMean {
		t.Errorf("Mean = %d, want %d", got, wantMean)
	}
}

func TestRegistryReRegisterReturnsSame(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`x_total{op="read"}`)
	b := r.Counter(`x_total{op="read"}`)
	if a != b {
		t.Fatal("re-registering the same series returned a different counter")
	}
	if r.Counter(`x_total{op="write"}`) == a {
		t.Fatal("different labels returned the same counter")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Histogram("c_ns").Observe(100)
	r.GaugeFunc("d_func", func() int64 { return 42 })
	s := r.Snapshot()
	if len(s.Entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(s.Entries))
	}
	for i := 1; i < len(s.Entries); i++ {
		if s.Entries[i-1].Full() > s.Entries[i].Full() {
			t.Fatalf("snapshot not sorted: %q > %q", s.Entries[i-1].Full(), s.Entries[i].Full())
		}
	}
	if got := s.Value("b_total"); got != 2 {
		t.Errorf("b_total = %d, want 2", got)
	}
	if got := s.Value("d_func"); got != 42 {
		t.Errorf("d_func = %d, want 42", got)
	}
	if h := s.HistOf("c_ns"); h == nil || h.Count() != 1 {
		t.Errorf("c_ns histogram missing or wrong count: %+v", h)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{op="read"}`).Add(3)
	r.Counter(`req_total{op="write"}`).Add(1)
	r.Gauge("depth").Set(5)
	r.Histogram("lat_ns").Observe(100) // bucket 6, bound 128
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`req_total{op="read"} 3`,
		`req_total{op="write"} 1`,
		"depth 5",
		`lat_ns_bucket{le="128"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_sum 100",
		"lat_ns_count 1",
		"# TYPE req_total counter",
		"# TYPE lat_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("exposition contains NaN:\n%s", out)
	}
}

// TestSnapshotMonotoneUnderLoad is the registry's race test: writers
// hammer every metric type while readers snapshot, asserting the
// per-series monotonicity the package comment promises. Run it with
// -race -cpu=2,8.
func TestSnapshotMonotoneUnderLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("w_total")
	g := r.Gauge("w_gauge")
	h := r.Histogram("w_ns")
	r.CounterFunc("w_func", c.Load)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(int64(i))
				h.Observe(int64(i%4096 + 1))
			}
		}(w)
	}

	var lastCount, lastHist int64
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := r.Snapshot()
		n := s.Value("w_total")
		if n < lastCount {
			t.Errorf("counter went backwards: %d -> %d", lastCount, n)
			break
		}
		lastCount = n
		hs := s.HistOf("w_ns")
		if hc := hs.Count(); hc < lastHist {
			t.Errorf("histogram count went backwards: %d -> %d", lastHist, hc)
			break
		} else {
			lastHist = hc
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: every cross-word relation must now hold exactly.
	s := r.Snapshot()
	if s.Value("w_total") != s.Value("w_func") {
		t.Errorf("quiesced counter %d != func view %d", s.Value("w_total"), s.Value("w_func"))
	}
	if hs := s.HistOf("w_ns"); hs.Count() == 0 || hs.Sum == 0 {
		t.Errorf("histogram lost observations: count=%d sum=%d", hs.Count(), hs.Sum)
	}
}

// TestRegistryConcurrentRegister races registration itself: many
// goroutines asking for overlapping names must converge on one metric
// per name.
func TestRegistryConcurrentRegister(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter(fmt.Sprintf("c_%d_total", i%10)).Inc()
				r.Histogram(fmt.Sprintf("h_%d_ns", i%10)).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if len(s.Entries) != 20 {
		t.Fatalf("got %d series, want 20", len(s.Entries))
	}
	for i := 0; i < 10; i++ {
		if got := s.Value(fmt.Sprintf("c_%d_total", i)); got != 80 {
			t.Errorf("c_%d_total = %d, want 80", i, got)
		}
	}
}

func TestLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden", "k", 1)
	l.Info("visible", "shard", 3, "msg", "two words")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line leaked through info-level logger")
	}
	if !strings.Contains(out, "INFO visible shard=3") {
		t.Errorf("line missing expected content: %q", out)
	}
	if !strings.Contains(out, `msg="two words"`) {
		t.Errorf("multi-word value not quoted: %q", out)
	}

	buf.Reset()
	l.With("role", "follower").Warn("late", "lsn", 9)
	if !strings.Contains(buf.String(), "WARN late role=follower lsn=9") {
		t.Errorf("With prefix missing: %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing", "k", "v")
	l.Error("nothing")
	if l.With("a", 1) != nil {
		t.Fatal("nil.With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
