package malloc

import (
	"sync"
	"testing"

	"repro/internal/vm"
)

func newArena(t *testing.T, kind vm.PolicyKind, size uint64) (*vm.AddressSpace, *Arena) {
	t.Helper()
	as := vm.NewAddressSpace(kind, nil, nil)
	a, err := NewArena(as, size)
	if err != nil {
		t.Fatal(err)
	}
	return as, a
}

func TestAllocGrowsCommit(t *testing.T) {
	_, a := newArena(t, vm.ListRefined, 1<<20)
	if a.Committed() != 0 {
		t.Fatalf("fresh arena committed %d", a.Committed())
	}
	addr, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if addr != a.Base() {
		t.Fatalf("first alloc at %#x, want base %#x", addr, a.Base())
	}
	if a.Committed() == 0 || a.Committed()%vm.PageSize != 0 {
		t.Fatalf("commit after alloc = %d", a.Committed())
	}
	st := a.Stats()
	if st.Grows != 1 || st.Faults == 0 {
		t.Fatalf("stats after first alloc: %+v", st)
	}
}

func TestAllocAlignment(t *testing.T) {
	_, a := newArena(t, vm.Stock, 1<<20)
	a1, _ := a.Alloc(1)
	a2, _ := a.Alloc(1)
	if a2-a1 != 16 {
		t.Fatalf("allocations not 16-byte aligned: %#x then %#x", a1, a2)
	}
}

func TestFaultOncePerPage(t *testing.T) {
	as, a := newArena(t, vm.ListRefined, 1<<20)
	if _, err := a.Alloc(3 * vm.PageSize); err != nil {
		t.Fatal(err)
	}
	f0 := as.Stats().Faults
	// Re-touching the same pages must not fault again (TLB hit).
	if err := a.Touch(a.Base(), 3*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Faults != f0 {
		t.Fatal("re-touch faulted despite TLB")
	}
}

func TestFreeShrinksCommit(t *testing.T) {
	_, a := newArena(t, vm.ListRefined, 4<<20)
	big := (trimThreshold + 8) * vm.PageSize
	if _, err := a.Alloc(big); err != nil {
		t.Fatal(err)
	}
	pre := a.Committed()
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
	if a.Committed() >= pre {
		t.Fatalf("commit did not shrink: %d -> %d", pre, a.Committed())
	}
	if a.Stats().Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", a.Stats().Shrinks)
	}
	// Reallocate: pages must fault again after the shrink zapped them.
	if _, err := a.Alloc(big); err != nil {
		t.Fatal(err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	_, a := newArena(t, vm.Stock, 2*vm.PageSize)
	if _, err := a.Alloc(vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(2 * vm.PageSize); err == nil {
		t.Fatal("over-allocation succeeded")
	}
}

func TestFreeUnderflow(t *testing.T) {
	_, a := newArena(t, vm.Stock, 1<<20)
	a.Alloc(16)
	if err := a.Free(64); err == nil {
		t.Fatal("freeing more than live succeeded")
	}
}

func TestUnalignedSizeRejected(t *testing.T) {
	as := vm.NewAddressSpace(vm.Stock, nil, nil)
	if _, err := NewArena(as, 1000); err == nil {
		t.Fatal("unaligned arena size accepted")
	}
}

func TestDestroy(t *testing.T) {
	as, a := newArena(t, vm.Stock, 1<<20)
	if _, err := a.Alloc(vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	if n := as.VMACount(); n != 0 {
		t.Fatalf("VMACount after destroy = %d", n)
	}
}

// TestConcurrentArenas is the GLIBC pattern end-to-end: one arena per
// goroutine over a shared address space, allocating and freeing
// concurrently under the refined policy. The speculation success rate
// must match the paper's observation (>99% once warmed up; we accept 90%
// to absorb startup splits).
func TestConcurrentArenas(t *testing.T) {
	as := vm.NewAddressSpace(vm.ListRefined, nil, nil)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := NewArena(as, 4<<20)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 300; i++ {
				if _, err := a.Alloc(3000); err != nil {
					errs <- err
					return
				}
				if i%7 == 6 {
					if err := a.Free(3000 * 4); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- a.Destroy()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := as.Stats()
	total := st.SpecSucceeded + st.SpecFellBack
	if total == 0 || st.SpecSucceeded*100/total < 90 {
		t.Fatalf("speculation success too low: %+v", st)
	}
}
