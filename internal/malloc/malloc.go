// Package malloc simulates the GLIBC per-thread arena allocator, the
// user-space pattern that motivates the paper's speculative mprotect
// (§1, §5.2): each thread's arena is created by mmapping a large
// PROT_NONE chunk; the prefix holding live objects is committed with
// mprotect(PROT_READ|PROT_WRITE) and grows or shrinks at page granularity
// as the heap top moves. Those grow/shrink calls are exactly the
// boundary-move mprotects the speculative path executes without the
// full-range lock.
//
// Allocation is a bump pointer with LIFO frees (sufficient for the Metis
// workloads, which build data structures monotonically and release
// scratch buffers in stack order). First touches of committed pages go
// through the simulated page-fault handler once per page, mirroring
// hardware behaviour via a private "TLB" bitmap.
package malloc

import (
	"fmt"

	"repro/internal/vm"
)

// DefaultArenaSize mirrors GLIBC's 64 MiB thread-arena reservation.
const DefaultArenaSize uint64 = 64 << 20

// growSlack is how many extra pages a grow commits beyond the immediate
// need, amortizing mprotect traffic (GLIBC pads similarly).
const growSlack uint64 = 8

// trimThreshold is how many committed-but-unused pages are tolerated
// before the arena shrinks (cf. M_TRIM_THRESHOLD).
const trimThreshold uint64 = 32

// Arena is one simulated GLIBC heap arena bound to one goroutine.
// It is not safe for concurrent use — per-thread by construction.
type Arena struct {
	as   *vm.AddressSpace
	base uint64
	size uint64

	top       uint64 // bump offset of the next free byte
	committed uint64 // bytes committed read-write from base

	// tlb tracks pages this "thread" has already faulted in, one bit per
	// page. Hardware would not trap again on a present page.
	tlb []uint64

	// Stats.
	allocs, frees  uint64
	grows, shrinks uint64
	faults         uint64
}

// NewArena reserves a PROT_NONE region of the given size (0 selects
// DefaultArenaSize) in the address space.
func NewArena(as *vm.AddressSpace, size uint64) (*Arena, error) {
	if size == 0 {
		size = DefaultArenaSize
	}
	if size%vm.PageSize != 0 {
		return nil, fmt.Errorf("malloc: arena size %d not page-aligned", size)
	}
	base, err := as.Mmap(size, vm.ProtNone)
	if err != nil {
		return nil, err
	}
	return &Arena{
		as:   as,
		base: base,
		size: size,
		tlb:  make([]uint64, (size/vm.PageSize+63)/64),
	}, nil
}

// Base returns the arena's base address.
func (a *Arena) Base() uint64 { return a.base }

// Used returns the number of live bytes.
func (a *Arena) Used() uint64 { return a.top }

// Committed returns the number of committed (read-write) bytes.
func (a *Arena) Committed() uint64 { return a.committed }

const allocAlign = 16

// Alloc carves n bytes out of the arena, committing pages and faulting
// them in as needed, and returns the simulated address.
func (a *Arena) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		n = allocAlign
	}
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	if a.top+n > a.size {
		return 0, fmt.Errorf("malloc: arena exhausted (%d used, %d requested, %d reserved)", a.top, n, a.size)
	}
	if a.top+n > a.committed {
		// Grow the committed prefix: mprotect(RW) on the head of the
		// PROT_NONE remainder — the Figure 2 boundary move.
		newCommit := a.top + n + growSlack*vm.PageSize
		if newCommit > a.size {
			newCommit = a.size
		}
		newCommit = pageAlignUp(newCommit)
		if err := a.as.Mprotect(a.base+a.committed, newCommit-a.committed, vm.ProtRead|vm.ProtWrite); err != nil {
			return 0, err
		}
		a.committed = newCommit
		a.grows++
	}
	addr := a.base + a.top
	a.top += n
	a.allocs++
	if err := a.touch(addr, n); err != nil {
		return 0, err
	}
	return addr, nil
}

// Free releases the most recent n bytes (LIFO). When the committed slack
// beyond the heap top exceeds trimThreshold pages, the tail is returned to
// PROT_NONE — the shrink boundary move.
func (a *Arena) Free(n uint64) error {
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	if n > a.top {
		return fmt.Errorf("malloc: freeing %d bytes with only %d live", n, a.top)
	}
	a.top -= n
	a.frees++
	usedPages := pageAlignUp(a.top)
	if a.committed > usedPages+trimThreshold*vm.PageSize {
		// Keep one page of slack so an immediate re-alloc does not bounce.
		keep := usedPages + vm.PageSize
		if err := a.as.Mprotect(a.base+keep, a.committed-keep, vm.ProtNone); err != nil {
			return err
		}
		// The zapped pages will fault again if recommitted.
		a.clearTLB(a.base+keep, a.committed-keep)
		a.committed = keep
		a.shrinks++
	}
	return nil
}

// Touch simulates a memory access to [addr, addr+n), faulting once per
// page not yet in this thread's TLB.
func (a *Arena) Touch(addr, n uint64) error { return a.touch(addr, n) }

func (a *Arena) touch(addr, n uint64) error {
	if n == 0 {
		return nil
	}
	first := (addr - a.base) / vm.PageSize
	last := (addr + n - 1 - a.base) / vm.PageSize
	for p := first; p <= last; p++ {
		if a.tlb[p/64]&(1<<(p%64)) != 0 {
			continue
		}
		if err := a.as.PageFault(a.base+p*vm.PageSize, true); err != nil {
			return fmt.Errorf("malloc: fault at %#x: %w", a.base+p*vm.PageSize, err)
		}
		a.tlb[p/64] |= 1 << (p % 64)
		a.faults++
	}
	return nil
}

func (a *Arena) clearTLB(addr, n uint64) {
	first := (addr - a.base) / vm.PageSize
	last := (addr + n - 1 - a.base) / vm.PageSize
	for p := first; p <= last; p++ {
		a.tlb[p/64] &^= 1 << (p % 64)
	}
}

// Stats reports the arena's operation counters.
type Stats struct {
	Allocs, Frees  uint64
	Grows, Shrinks uint64
	Faults         uint64
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	return Stats{
		Allocs: a.allocs, Frees: a.frees,
		Grows: a.grows, Shrinks: a.shrinks,
		Faults: a.faults,
	}
}

// Destroy unmaps the arena's reservation.
func (a *Arena) Destroy() error {
	return a.as.Munmap(a.base, a.size)
}

func pageAlignUp(v uint64) uint64 {
	return (v + vm.PageSize - 1) &^ (vm.PageSize - 1)
}
