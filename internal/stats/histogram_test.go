package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{time.Second, 29}, {10 * time.Second, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.bucket)
		}
	}
}

func TestLeadingZerosAgainstStdlib(t *testing.T) {
	f := func(x uint64) bool {
		got := leadingZeros64(x)
		want := 0
		for i := 63; i >= 0; i-- {
			if x&(1<<uint(i)) != 0 {
				break
			}
			want++
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Nanosecond) // bucket 3, upper bound 16ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if q := h.Quantile(0.5); q > 16*time.Nanosecond {
		t.Fatalf("p50 = %v, want <= 16ns", q)
	}
	if q := h.Quantile(0.99); q < time.Millisecond {
		t.Fatalf("p99 = %v, want >= 1ms", q)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("nil histogram not inert")
	}
	if !strings.Contains(h.String(), "nil") {
		t.Fatal("nil histogram String wrong")
	}
}

func TestAttachToLockStat(t *testing.T) {
	s := New()
	if s.Histogram(Read) != nil {
		t.Fatal("histogram present before attach")
	}
	s.AttachHistograms()
	s.Record(Read, 100*time.Nanosecond)
	s.Record(Read, 200*time.Nanosecond)
	s.Record(Write, time.Microsecond)
	if got := s.Histogram(Read).Count(); got != 2 {
		t.Fatalf("read histogram count = %d, want 2", got)
	}
	if got := s.Histogram(Write).Count(); got != 1 {
		t.Fatalf("write histogram count = %d, want 1", got)
	}
	if s.Histogram(Spin).Count() != 0 {
		t.Fatal("spurious spin observations")
	}
	if !strings.Contains(s.Histogram(Write).String(), ": 1") {
		t.Fatalf("String output missing bucket: %q", s.Histogram(Write).String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", h.Count())
	}
}
