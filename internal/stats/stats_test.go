package stats

import (
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var s *LockStat
	s.Record(Read, time.Second) // must not panic
	if s.Enabled() {
		t.Fatal("nil stat reports enabled")
	}
	if s.Count(Read) != 0 || s.AvgWait(Write) != 0 || s.TotalWait(Spin) != 0 {
		t.Fatal("nil stat reports nonzero values")
	}
	if s.Snapshots() != nil {
		t.Fatal("nil stat returns snapshots")
	}
	s.Reset()
}

func TestRecordAndAverages(t *testing.T) {
	s := New()
	s.Record(Read, 10*time.Microsecond)
	s.Record(Read, 30*time.Microsecond)
	s.Record(Write, 100*time.Microsecond)
	if got := s.Count(Read); got != 2 {
		t.Fatalf("Count(Read) = %d, want 2", got)
	}
	if got := s.AvgWait(Read); got != 20*time.Microsecond {
		t.Fatalf("AvgWait(Read) = %v, want 20µs", got)
	}
	if got := s.TotalWait(Write); got != 100*time.Microsecond {
		t.Fatalf("TotalWait(Write) = %v", got)
	}
	if got := s.AvgWait(Spin); got != 0 {
		t.Fatalf("AvgWait(Spin) = %v, want 0", got)
	}
}

func TestSnapshots(t *testing.T) {
	s := New()
	s.Record(Write, time.Millisecond)
	s.Record(Spin, time.Microsecond)
	snaps := s.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Kind != Write || snaps[1].Kind != Spin {
		t.Fatalf("unexpected snapshot kinds: %+v", snaps)
	}
}

func TestResetClears(t *testing.T) {
	s := New()
	s.Record(Read, time.Second)
	s.Reset()
	if s.Count(Read) != 0 || s.TotalWait(Read) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestConcurrentRecording(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				s.Record(Read, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(Read); got != 80000 {
		t.Fatalf("Count(Read) = %d, want 80000", got)
	}
	if got := s.TotalWait(Read); got != 80000*time.Nanosecond {
		t.Fatalf("TotalWait(Read) = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Spin.String() != "spin" {
		t.Fatal("Kind.String labels wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown kind label wrong")
	}
}
