// Package stats provides lock_stat-style wait-time accounting, the
// instrumentation behind Figures 7 and 8 of the paper: average wait time
// per read/write acquisition of mmap_sem or a range lock, and average wait
// time on the spin lock protecting the tree-based range lock's range tree.
//
// All methods are nil-safe: a nil *LockStat records nothing, so the
// instrumented code paths pay a single predictable branch when statistics
// are disabled (the paper likewise enables lock_stat only for dedicated
// runs because of its probe effect).
package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind labels what kind of wait is being recorded.
type Kind int

const (
	// Read is a shared-mode acquisition of the top-level lock.
	Read Kind = iota
	// Write is an exclusive-mode acquisition of the top-level lock.
	Write
	// Spin is an acquisition of an internal spin lock (the range-tree
	// protector in the tree-based range locks).
	Spin
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Spin:
		return "spin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

type counter struct {
	count  atomic.Int64
	waitNs atomic.Int64
	_      [6]uint64 // pad to keep kinds on separate cache lines
}

// LockStat accumulates wait times for one lock instance (or one lock role
// within a composite, e.g. "the range lock" vs "its internal spin lock").
type LockStat struct {
	counters [numKinds]counter
	hist     *histogramSet // optional distributions; see AttachHistograms
}

// New returns an enabled LockStat. Callers wanting statistics off simply
// pass a nil *LockStat.
func New() *LockStat { return &LockStat{} }

// Enabled reports whether recording is active.
func (s *LockStat) Enabled() bool { return s != nil }

// Record adds one acquisition of the given kind with the given wait.
func (s *LockStat) Record(k Kind, wait time.Duration) {
	if s == nil {
		return
	}
	c := &s.counters[k]
	c.count.Add(1)
	c.waitNs.Add(int64(wait))
	if s.hist != nil {
		s.hist.hists[k].Observe(wait)
	}
}

// Count returns the number of recorded acquisitions of kind k.
func (s *LockStat) Count(k Kind) int64 {
	if s == nil {
		return 0
	}
	return s.counters[k].count.Load()
}

// TotalWait returns the cumulative wait of kind k.
func (s *LockStat) TotalWait(k Kind) time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.counters[k].waitNs.Load())
}

// AvgWait returns the mean wait per acquisition of kind k (0 if none).
func (s *LockStat) AvgWait(k Kind) time.Duration {
	if s == nil {
		return 0
	}
	n := s.counters[k].count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.counters[k].waitNs.Load() / n)
}

// Reset zeroes all counters.
func (s *LockStat) Reset() {
	if s == nil {
		return
	}
	for i := range s.counters {
		s.counters[i].count.Store(0)
		s.counters[i].waitNs.Store(0)
	}
}

// Snapshot is an immutable view of one kind's totals.
type Snapshot struct {
	Kind      Kind
	Count     int64
	TotalWait time.Duration
	AvgWait   time.Duration
}

// Snapshots returns a view of every kind with at least one acquisition.
func (s *LockStat) Snapshots() []Snapshot {
	if s == nil {
		return nil
	}
	var out []Snapshot
	for k := Kind(0); k < numKinds; k++ {
		if n := s.Count(k); n > 0 {
			out = append(out, Snapshot{Kind: k, Count: n, TotalWait: s.TotalWait(k), AvgWait: s.AvgWait(k)})
		}
	}
	return out
}
