package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets: bucket i counts
// waits in [2^i ns, 2^(i+1) ns); bucket 0 additionally absorbs sub-ns
// (i.e. zero) waits, the last bucket absorbs everything above ~1.15 s.
const histBuckets = 31

// Histogram is a lock-free log2 latency histogram, the distribution
// companion to LockStat's averages (the kernel's lock_stat reports
// min/max/avg; distributions expose the contention tail that averages
// hide). All methods are nil-safe.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := 63 - leadingZeros64(uint64(ns))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one wait.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed waits, at bucket resolution. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(int64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(int64(1) << histBuckets)
}

// NumBuckets is the histogram's bucket count, for callers exporting the
// raw distribution (see Buckets).
const NumBuckets = histBuckets

// BucketBound returns bucket i's exclusive upper bound in nanoseconds:
// bucket i counts observations in [2^i, 2^(i+1)) ns.
func BucketBound(i int) int64 { return int64(1) << uint(i+1) }

// Buckets returns a copy of the per-bucket counts (index i counts
// observations in [2^i ns, 2^(i+1) ns)), nil for a nil histogram. The
// copy is a point-in-time read per bucket, not an atomic snapshot of
// the whole histogram — concurrent observers may land between reads.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, histBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// String renders the non-empty buckets as "[lo,hi): count" lines.
func (h *Histogram) String() string {
	if h == nil {
		return "<nil histogram>"
	}
	var b strings.Builder
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := time.Duration(int64(1) << uint(i))
		if i == 0 {
			lo = 0
		}
		hi := time.Duration(int64(1) << uint(i+1))
		fmt.Fprintf(&b, "[%v,%v): %d\n", lo, hi, n)
	}
	return b.String()
}

// histograms extends LockStat with per-kind distributions; attached
// lazily via WithHistograms.
type histogramSet struct {
	hists [numKinds]Histogram
}

// AttachHistograms enables distribution recording on the stat. Call
// before sharing the LockStat.
func (s *LockStat) AttachHistograms() {
	if s == nil {
		return
	}
	s.hist = &histogramSet{}
}

// Histogram returns the distribution for kind k, or nil if histograms
// were not attached.
func (s *LockStat) Histogram(k Kind) *Histogram {
	if s == nil || s.hist == nil {
		return nil
	}
	return &s.hist.hists[k]
}
