package rangestore

import (
	"io"
	"net"
	"sync"
	"time"
)

// Pipe returns an in-process, full-duplex connection pair for plugging a
// Client straight into Server.ServeConn without a network stack — the
// benchmark transport. Unlike net.Pipe it is buffered, modelling a TCP
// socket's kernel buffers: writes complete without a rendezvous, so a
// pipelining client and a batching server can both be mid-write without
// deadlocking (with net.Pipe, two simultaneous writers that are not yet
// reading stall forever).
func Pipe() (net.Conn, net.Conn) {
	ab := newPipeBuf()
	ba := newPipeBuf()
	return &pipeConn{r: ba, w: ab}, &pipeConn{r: ab, w: ba}
}

// pipeBuf is one direction: an unbounded FIFO of bytes with closed-state
// tracking. Unbounded is safe here because the protocol's framing caps
// outstanding data at (pipeline depth × maxFrame) per direction.
type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
}

func newPipeBuf() *pipeBuf {
	b := &pipeBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 {
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
	n := copy(p, b.data)
	rest := len(b.data) - n
	copy(b.data, b.data[n:])
	b.data = b.data[:rest]
	return n, nil
}

func (b *pipeBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// pipeConn glues a read buffer and a write buffer into a net.Conn.
// Deadlines are accepted and ignored — so Server.Shutdown's read
// deadline cannot wake a pipe conn blocked in Read, and idle pipe conns
// drain only through Shutdown's ctx force-close path.
type pipeConn struct {
	r, w      *pipeBuf
	closeOnce sync.Once
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.r.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.w.write(p) }

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() {
		c.w.close()
		c.r.close()
	})
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (c *pipeConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (c *pipeConn) SetDeadline(time.Time) error      { return nil }
func (c *pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *pipeConn) SetWriteDeadline(time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "rangestore-pipe" }
