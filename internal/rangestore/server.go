package rangestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/pfs"
)

// maxHandles bounds the per-connection handle table.
const maxHandles = 1 << 16

// defaultMaxBatch is how many pipelined requests one connection serves
// under a single leased Op before releasing it and flushing responses.
const defaultMaxBatch = 64

// Server serves one pfs file system over the rangestore protocol. Each
// connection runs a pipelined request loop: the first request of a batch
// is read blocking, then every further request already sitting in the
// connection buffer (up to MaxBatch) is served under the same leased
// pfs.Op — the request-traffic analogue of the paper's per-thread lock
// contexts: one reclamation-slot lease pays for the whole batch.
type Server struct {
	fs       *pfs.FS
	maxBatch int

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
	wg        sync.WaitGroup

	ops [numOps]atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBatch sets how many pipelined requests are served per Op lease
// (minimum 1).
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n >= 1 {
			s.maxBatch = n
		}
	}
}

// NewServer wraps fs. The fs's lock variant decides the range-locking
// behaviour every request experiences.
func NewServer(fs *pfs.FS, opts ...ServerOption) *Server {
	s := &Server{
		fs:        fs,
		maxBatch:  defaultMaxBatch,
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Counts returns the number of requests served per operation.
func (s *Server) Counts() map[string]int64 {
	out := make(map[string]int64, numOps)
	for i := range s.ops {
		if n := s.ops[i].Load(); n > 0 {
			out[OpCode(i+1).String()] = n
		}
	}
	return out
}

// Serve accepts connections from l until it is closed, serving each on
// its own goroutine. It returns nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		l.Close()
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops serving: registered connections are closed and in-flight
// handlers are waited out. Connections served after Close are refused.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// register admits a connection and joins it to the shutdown WaitGroup;
// the wg.Add happens under the same lock Close takes before wg.Wait, so
// every admitted handler — Serve-spawned or direct ServeConn — is waited
// out.
func (s *Server) register(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) unregister(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

// conn is the per-connection state.
type conn struct {
	srv     *Server
	br      *bufio.Reader
	bw      *bufio.Writer
	files   []*pfs.File
	frame   []byte // request decode buffer
	out     []byte // response encode buffer
	readBuf []byte // READ payload buffer
}

// ServeConn serves one established connection until EOF, a protocol
// error, or Server.Close. It is exported so in-process transports can
// plug a client straight into the server, as the benchmarks do — use
// this package's Pipe() for that, not net.Pipe, which is unbuffered and
// deadlocks a pipelining client against the batching server.
func (s *Server) ServeConn(c net.Conn) error {
	if !s.register(c) {
		c.Close()
		return ErrClosed
	}
	defer s.unregister(c)
	defer c.Close()

	cn := &conn{
		srv: s,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
	}
	for {
		// Blocking read of the batch's first request.
		body, err := ReadFrame(cn.br, cn.frame)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		cn.frame = body[:0]

		op := s.fs.BeginOp()
		err = cn.handle(body, op)
		// Serve whatever is already buffered under the same Op lease, but
		// never block for more input while holding it.
		for n := 1; err == nil && n < s.maxBatch; n++ {
			body, ok, berr := cn.buffered()
			if berr != nil {
				err = berr
				break
			}
			if !ok {
				break
			}
			err = cn.handle(body, op)
		}
		op.End()
		// Flush even on a fatal batch error: requests already served get
		// their responses before the connection dies.
		if ferr := cn.bw.Flush(); err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
	}
}

// buffered returns the next frame body only if it can be read without
// blocking (header and body already sit in the connection buffer). A
// non-nil error is fatal to the connection: once any frame is malformed
// the stream can no longer be trusted, so it must not be silently left
// for the next blocking read to misparse.
func (cn *conn) buffered() ([]byte, bool, error) {
	if cn.br.Buffered() < 4 {
		return nil, false, nil
	}
	hdr, err := cn.br.Peek(4)
	if err != nil {
		return nil, false, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, false, fmt.Errorf("%w: frame of %d bytes", ErrTooBig, n)
	}
	if cn.br.Buffered() < 4+int(n) {
		return nil, false, nil
	}
	body, err := ReadFrame(cn.br, cn.frame)
	if err != nil {
		return nil, false, err
	}
	cn.frame = body[:0]
	return body, true, nil
}

// handle decodes, executes and answers one request. A decode failure is
// fatal to the connection (framing can no longer be trusted); execution
// failures are answered with an error response.
func (cn *conn) handle(body []byte, op pfs.Op) error {
	var req Request
	if err := ParseRequest(body, &req); err != nil {
		return err
	}
	cn.srv.ops[int(req.Op)-1].Add(1)
	resp := Response{Op: req.Op, Seq: req.Seq}
	cn.exec(&req, op, &resp)
	out, err := AppendResponse(cn.out[:0], &resp)
	if err != nil {
		return err
	}
	cn.out = out[:0]
	_, err = cn.bw.Write(out)
	return err
}

// exec runs one request against the file system, filling resp.
func (cn *conn) exec(req *Request, op pfs.Op, resp *Response) {
	// OPEN is the only op without a handle.
	if req.Op == OpOpen {
		cn.execOpen(req, resp)
		return
	}
	// Client-controlled offsets are capped well below the uint64 wrap
	// point: pfs computes off+len and the lock layer panics on inverted
	// ranges, so unchecked offsets would be a remote crash.
	if req.Off > MaxOffset || req.Size > MaxOffset {
		resp.Status = StatusBadRequest
		return
	}
	if req.Handle >= uint32(len(cn.files)) {
		resp.Status = StatusBadHandle
		return
	}
	f := cn.files[req.Handle]
	switch req.Op {
	case OpRead:
		if req.Length > MaxData {
			resp.Status = StatusTooBig
			return
		}
		if cap(cn.readBuf) < int(req.Length) {
			cn.readBuf = make([]byte, req.Length)
		}
		buf := cn.readBuf[:req.Length]
		n, err := f.ReadAtOp(op, buf, req.Off)
		resp.EOF = err == io.EOF
		resp.Data = buf[:n]
	case OpWrite:
		if len(req.Data) > MaxData {
			resp.Status = StatusTooBig
			return
		}
		n, _ := f.WriteAtOp(op, req.Data, req.Off)
		resp.N = uint32(n)
	case OpAppend:
		if len(req.Data) > MaxData {
			resp.Status = StatusTooBig
			return
		}
		off, _ := f.AppendOp(op, req.Data)
		resp.Off = off
	case OpTruncate:
		f.TruncateOp(op, req.Size)
	case OpStat:
		fi := f.Stat()
		resp.Size = fi.Size
		resp.Blocks = uint32(fi.Blocks)
	default:
		resp.Status = StatusBadRequest
	}
}

func (cn *conn) execOpen(req *Request, resp *Response) {
	if len(cn.files) >= maxHandles {
		resp.Status = StatusError
		resp.Msg = fmt.Sprintf("handle table full (%d)", maxHandles)
		return
	}
	var f *pfs.File
	var err error
	if req.Flags&OpenCreate != 0 {
		f, err = cn.srv.fs.Create(req.Name)
		if errors.Is(err, pfs.ErrExist) {
			f, err = cn.srv.fs.Open(req.Name)
		}
	} else {
		f, err = cn.srv.fs.Open(req.Name)
	}
	if err != nil {
		fillError(resp, err)
		return
	}
	cn.files = append(cn.files, f)
	resp.Handle = uint32(len(cn.files) - 1)
}

// fillError maps pfs errors onto wire statuses.
func fillError(resp *Response, err error) {
	switch {
	case errors.Is(err, pfs.ErrNotExist):
		resp.Status = StatusNotExist
	case errors.Is(err, pfs.ErrExist):
		resp.Status = StatusExist
	case errors.Is(err, pfs.ErrClosed):
		resp.Status = StatusClosed
	default:
		resp.Status = StatusError
		resp.Msg = err.Error()
	}
}
