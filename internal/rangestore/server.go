package rangestore

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// maxHandles bounds the per-connection handle table.
const maxHandles = 1 << 16

// defaultMaxBatch is how many pipelined requests one connection serves
// under a single leased Op set before releasing it and flushing
// responses.
const defaultMaxBatch = 64

// Server serves one pfs store over the rangestore protocol. Each
// connection runs a pipelined request loop: the first request of a batch
// is read blocking, then every further request already sitting in the
// connection buffer (up to MaxBatch) is served under the same leased
// per-shard Op set — the request-traffic analogue of the paper's
// per-thread lock contexts: one reclamation-slot lease per touched shard
// pays for the whole batch.
//
// The store may be sharded (NewServerSharded): every request is routed
// to the shard owning its file, so requests against files in different
// shards share no lock-domain state and scale with cores.
type Server struct {
	store    *pfs.Sharded
	maxBatch int

	// journal, when set, write-ahead logs every mutation and is
	// committed per batch before responses flush — an acknowledged
	// request is durable (per the journal's sync mode). recovered is
	// what boot-time replay rebuilt, served by the RECOVERED op.
	journal   *Journal
	recovered pfs.RecoverStats

	// notLeader, when set, answers mutations with StatusNotLeader
	// carrying the leader address — the follower role. replica is the
	// replication pull loop feeding this server's store; PROMOTE drains
	// it and clears notLeader, flipping the server writable. leaderp
	// (an atomic string) is mutable at runtime: elections re-point it.
	notLeader atomic.Bool
	leaderp   atomic.Value
	replica   *Replica

	// replHeartbeat is the leader→follower heartbeat period for FOLLOW
	// sessions (0: defaultReplHeartbeat) — the lease elections run on.
	replHeartbeat time.Duration

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
	draining  bool
	wg        sync.WaitGroup

	drain atomic.Bool // mirrors draining for lock-free batch-loop checks

	ops      [numOps]atomic.Int64
	shardOps []shardCount
	fileOps  sync.Map // file name -> *atomic.Int64 requests served (rebalancer input)

	// metrics is the obs wiring (metrics.go); nil only under
	// WithoutMetrics. logger receives structured server logs; nil
	// discards. slowTrace arms the slow-batch tracer (trace.go) when
	// non-negative; connSeq numbers connections for log correlation.
	metrics   *serverMetrics
	noMetrics bool
	logger    *obs.Logger
	slowTrace time.Duration
	connSeq   atomic.Int64

	// Rebalance judges per-round deltas: snapshots of the counters at
	// the previous call, guarded by rebMu (one rebalancer at a time).
	// The deltas feed EWMAs (rebEWShard/rebEWFile) so one noisy round
	// cannot trigger a move the next round would undo; rebAlpha and
	// rebHyst are the smoothing factor and hysteresis margin.
	rebMu        sync.Mutex
	rebPrevShard []int64
	rebPrevFile  map[string]int64
	rebEWShard   []float64
	rebEWFile    map[string]float64
	rebAlpha     float64
	rebHyst      float64
}

// shardCount is a cacheline-padded request tally: adjacent shards'
// counters must not share a line, or the per-request Add would put a
// contended cacheline back between shards — the very thing the domain
// sharding removes.
type shardCount struct {
	n atomic.Int64
	_ [56]byte
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBatch sets how many pipelined requests are served per Op lease
// (minimum 1).
func WithMaxBatch(n int) ServerOption {
	return func(s *Server) {
		if n >= 1 {
			s.maxBatch = n
		}
	}
}

// WithJournal attaches a write-ahead journal (from Recover): every
// mutating request is logged to its shard's WAL and committed before
// its response flushes.
func WithJournal(j *Journal) ServerOption {
	return func(s *Server) { s.journal = j }
}

// WithRecovered records what boot-time recovery replayed, for the
// RECOVERED protocol op.
func WithRecovered(st pfs.RecoverStats) ServerOption {
	return func(s *Server) { s.recovered = st }
}

// WithFollower makes the server a replication follower: mutations are
// refused with StatusNotLeader carrying leaderAddr, reads are served
// from the replicated store, and PROMOTE flips it writable by draining
// r. The caller starts r (StartReplica) against the same store and
// journal this server was built with.
func WithFollower(r *Replica, leaderAddr string) ServerOption {
	return func(s *Server) {
		s.replica = r
		s.setLeaderAddr(leaderAddr)
		s.notLeader.Store(true)
	}
}

// WithReplHeartbeat sets the leader→follower heartbeat period for
// replication sessions. Followers treat heartbeat (or record) silence
// beyond their election timeout as a dead leader, so this must be well
// under the cluster's election timeout.
func WithReplHeartbeat(d time.Duration) ServerOption {
	return func(s *Server) { s.replHeartbeat = d }
}

// setLeaderAddr publishes the leader address NotLeader redirects carry.
func (s *Server) setLeaderAddr(a string) { s.leaderp.Store(a) }

// LeaderAddr returns the leader address this server currently believes
// in ("" when unknown).
func (s *Server) LeaderAddr() string {
	if v := s.leaderp.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// stepDown records that a later epoch exists: the node adopts it
// durably and, if it was the leader, goes read-only on the spot — its
// late acks and streams are fenced by the epoch stamp either way, this
// just stops it wasting work. A deposed leader has no replica to
// re-follow with; it serves reads and redirects until restarted as a
// follower of the new regime.
func (s *Server) stepDown(epoch uint64, leader string) {
	if s.journal != nil {
		if _, err := s.journal.AdvanceEpoch(epoch); err != nil {
			s.logger.Warn("epoch adoption failed", "epoch", epoch, "err", err)
		}
	}
	if !s.notLeader.Swap(true) {
		if leader != "" {
			s.setLeaderAddr(leader)
		}
		s.logger.Warn("stepping down: deposed by later epoch", "epoch", epoch, "role", "leader")
	}
}

// promoteSelf flips a follower into the leader after winning an
// election: the replica is drained and its journal hooks rewired, the
// ack quorum armed at the full cluster size, and only then is the
// server made writable — no write can slip through ungated.
func (s *Server) promoteSelf(epoch uint64, self string, cluster int) error {
	if s.replica == nil {
		return errors.New("rangestore: no replica to promote")
	}
	if err := s.replica.Promote(); err != nil {
		return err
	}
	if s.journal != nil && cluster >= 2 {
		s.journal.SetClusterSize(cluster)
	}
	s.setLeaderAddr(self)
	s.notLeader.Store(false)
	if m := s.metrics; m != nil {
		m.elections.Add(1)
	}
	s.logger.Info("promoted to leader by election", "epoch", epoch, "role", "leader")
	return nil
}

// vote answers one VOTE request: the epoch advance is the grant (and
// the durable promise), deposing this node if it was leading. The
// response carries the voter's committed per-shard frontier — a granted
// vote is a catch-up source contract, so the LSNs must be on disk
// before they are spoken.
func (s *Server) vote(epoch uint64, candidate string) (*VoteInfo, error) {
	granted, err := s.journal.AdvanceEpoch(epoch)
	if err != nil {
		return nil, err
	}
	if granted && s.notLeader.CompareAndSwap(false, true) {
		s.setLeaderAddr(candidate)
		s.logger.Warn("stepping down: granted vote", "epoch", epoch, "candidate", candidate, "role", "leader")
	}
	v := &VoteInfo{Granted: granted, Epoch: s.journal.Epoch(), Fresh: true}
	if r := s.replica; r != nil {
		v.Fresh = r.Fresh()
	}
	lsns, err := s.journal.DurableLSNs()
	if err != nil {
		return nil, err
	}
	v.LSNs = lsns
	return v, nil
}

// NewServer wraps a single-shard store over fs. The fs's lock variant
// decides the range-locking behaviour every request experiences.
func NewServer(fs *pfs.FS, opts ...ServerOption) *Server {
	return NewServerSharded(pfs.ShardedFrom(fs), opts...)
}

// NewServerSharded wraps a sharded store: requests are routed to the
// shard owning their file, and each connection's batch loop leases one
// Op per shard its batch actually touches.
func NewServerSharded(store *pfs.Sharded, opts ...ServerOption) *Server {
	s := &Server{
		store:     store,
		maxBatch:  defaultMaxBatch,
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
		shardOps:  make([]shardCount, store.NumShards()),
		rebAlpha:  defaultRebalanceAlpha,
		rebHyst:   defaultRebalanceHysteresis,
		slowTrace: -1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.noMetrics {
		s.metrics = nil
	} else if s.metrics == nil {
		s.metrics = &serverMetrics{reg: obs.NewRegistry()}
	}
	s.wireMetrics()
	if s.replica != nil {
		s.replica.setLogger(s.logger)
	}
	return s
}

// Counts returns the number of requests served per operation.
func (s *Server) Counts() map[string]int64 {
	out := make(map[string]int64, numOps)
	for i := range s.ops {
		if n := s.ops[i].Load(); n > 0 {
			out[OpCode(i+1).String()] = n
		}
	}
	return out
}

// ShardCounts returns the number of requests routed to each shard, the
// server-side view of placement skew.
func (s *Server) ShardCounts() []int64 {
	out := make([]int64, len(s.shardOps))
	for i := range s.shardOps {
		out[i] = s.shardOps[i].n.Load()
	}
	return out
}

// FileCounts returns the number of requests served per file name — the
// per-file refinement of ShardCounts that tells the rebalancer which
// files make a shard hot.
func (s *Server) FileCounts() map[string]int64 {
	out := make(map[string]int64)
	s.fileOps.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// resetCounters zeroes the per-shard and per-file request tallies and
// the rebalancer's round snapshots (benchmarks isolate a measurement
// phase with it). Not transactional against in-flight adds; the
// tallies are advisory.
func (s *Server) resetCounters() {
	s.rebMu.Lock()
	s.rebPrevShard = nil
	s.rebPrevFile = nil
	s.rebEWShard = nil
	s.rebEWFile = nil
	s.rebMu.Unlock()
	for i := range s.shardOps {
		s.shardOps[i].n.Store(0)
	}
	s.fileOps.Range(func(k, v any) bool {
		v.(*atomic.Int64).Store(0)
		return true
	})
}

// Serve accepts connections from l until it is closed, serving each on
// its own goroutine. It returns nil after Close or Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		l.Close()
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops serving immediately: registered connections are closed and
// in-flight handlers are waited out. Connections served after Close are
// refused. For an orderly stop that lets in-flight batches answer first,
// use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Shutdown stops the server gracefully: listeners close, new connections
// are refused, and every established connection answers every request
// that reached it — the batch it is serving plus any frames already
// sitting in its read buffer — flushing responses before closing, so no
// received request dies unanswered. Connections idle in a blocking read
// are woken via a read deadline. If ctx expires first, remaining
// connections are force-closed as in Close and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.drain.Store(true)
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		// Wake reads blocked waiting for a batch's first request. Ignored
		// by conns without deadline support (in-process pipes); those are
		// covered by the ctx force-close path.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
}

// register admits a connection and joins it to the shutdown WaitGroup;
// the wg.Add happens under the same lock Close takes before wg.Wait, so
// every admitted handler — Serve-spawned or direct ServeConn — is waited
// out.
func (s *Server) register(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) unregister(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

// conn is the per-connection state. The handle table caches each open
// file's object, owning shard and per-file counter, stamped with the
// placement version it was resolved under: when the store's placement
// moves (a migration flipped a shard-map entry), the stamp goes stale
// and the next request through the handle re-resolves instead of
// hitting the old shard. Static placements never bump the version, so
// the check stays a compare-of-equal-integers and hash-placed serving
// pays nothing for the indirection.
type conn struct {
	srv     *Server
	id      int64       // server-unique, for log correlation (conn=N)
	nreq    uint64      // requests served, drives latency sampling
	tr      *batchTrace // non-nil while slow-batch tracing is armed
	nc      net.Conn    // raw connection; the FOLLOW hijack closes it to kill the stream
	br      *bufio.Reader
	bw      *bufio.Writer
	files   []*pfs.File
	shards  []int32         // owning shard per handle, parallel to files
	names   []string        // file name per handle (re-resolution key)
	vers    []uint64        // placement version each handle resolved under
	cnt     []*atomic.Int64 // per-file request counter per handle
	sop     *pfs.ShardedOp
	jc      *journalConn // per-batch WAL tracker; nil without a journal
	frame   []byte       // request decode buffer
	out     []byte       // response encode buffer
	readBuf []byte       // READ payload buffer
}

// ServeConn serves one established connection until EOF, a protocol
// error, or Server.Close/Shutdown. It is exported so in-process
// transports can plug a client straight into the server, as the
// benchmarks do — use this package's Pipe() for that, not net.Pipe,
// which is unbuffered and deadlocks a pipelining client against the
// batching server.
func (s *Server) ServeConn(c net.Conn) error {
	if !s.register(c) {
		c.Close()
		return ErrClosed
	}
	defer s.unregister(c)
	defer c.Close()

	m := s.metrics
	if m != nil {
		m.conns.Add(1)
		m.openConns.Add(1)
		defer m.openConns.Add(-1)
	}
	cn := &conn{
		srv: s,
		id:  s.connSeq.Add(1),
		nc:  c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		sop: s.store.BeginOp(),
	}
	if s.slowTrace >= 0 && s.logger != nil {
		cn.tr = &batchTrace{}
	}
	if s.journal != nil {
		cn.jc = s.journal.Begin()
	}
	for {
		// Blocking read of the batch's first request — except while
		// draining, when only frames that already reached the connection
		// buffer are served: nothing new is awaited, nothing received is
		// dropped. (Requests still in a TCP kernel buffer when the drain
		// deadline fires are the one loss: an expired deadline fails
		// reads even with data available, so only the client's
		// retransmit-on-reconnect can recover those.)
		var body []byte
		if s.drain.Load() {
			b, ok, berr := cn.buffered()
			if berr != nil || !ok {
				return berr // nil: drained clean
			}
			body = b
		} else {
			b, err := ReadFrame(cn.br, cn.frame)
			if err != nil {
				if err == io.EOF {
					return nil
				}
				if s.drain.Load() && isTimeout(err) {
					// The Shutdown deadline woke this read; loop into the
					// buffered-only path to answer what already arrived.
					continue
				}
				return err
			}
			cn.frame = b[:0]
			body = b
		}

		// FOLLOW converts the connection into a replication stream: the
		// batch machinery is wound down (leases returned, pending records
		// committed, pending responses flushed) and the connection never
		// returns to request/response service.
		if len(body) > 0 && OpCode(body[0]) == OpFollow {
			return cn.hijackFollow(body)
		}
		if cn.tr != nil {
			cn.tr.beginBatch()
		}
		if m != nil {
			m.inflight.Add(1)
		}
		served := 1
		err := cn.handle(body)
		// Serve whatever is already buffered under the same Op leases, but
		// never block for more input while holding them.
		for ; err == nil && served < s.maxBatch; served++ {
			body, ok, berr := cn.buffered()
			if berr != nil {
				err = berr
				break
			}
			if !ok {
				break
			}
			if len(body) > 0 && OpCode(body[0]) == OpFollow {
				if m != nil {
					m.inflight.Add(-1)
				}
				return cn.hijackFollow(body)
			}
			err = cn.handle(body)
		}
		cn.sop.End()
		// Commit the batch's WAL records before any response escapes: an
		// acknowledged request must be durable, so if the commit fails
		// the batch's responses are dropped and the connection dies —
		// the client sees a broken connection, not a false ack.
		if cn.jc != nil {
			var jstart time.Time
			if cn.tr != nil {
				jstart = time.Now()
			}
			jerr := cn.jc.Commit()
			if cn.tr != nil {
				cn.tr.journal = time.Since(jstart)
			}
			if jerr != nil {
				s.logger.Warn("batch commit failed", "conn", cn.id, "err", jerr)
				if m != nil {
					m.inflight.Add(-1)
				}
				if err == nil {
					err = jerr
				}
				return err
			}
		}
		// Flush even on a fatal batch error: requests already served get
		// their responses before the connection dies.
		var fstart time.Time
		if cn.tr != nil {
			fstart = time.Now()
		}
		ferr := cn.bw.Flush()
		if cn.tr != nil {
			cn.tr.flush = time.Since(fstart)
		}
		if err == nil {
			err = ferr
		}
		if m != nil {
			m.inflight.Add(-1)
			m.batchSize.Observe(int64(served))
		}
		if cn.tr != nil {
			if total := time.Since(cn.tr.start); total >= s.slowTrace {
				cn.emitTrace(total)
			}
		}
		if err != nil {
			return err
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry — the only
// error the drain path may treat as "done waiting" rather than a broken
// or untrustworthy stream.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// buffered returns the next frame body only if it can be read without
// blocking (header and body already sit in the connection buffer). A
// non-nil error is fatal to the connection: once any frame is malformed
// the stream can no longer be trusted, so it must not be silently left
// for the next blocking read to misparse.
func (cn *conn) buffered() ([]byte, bool, error) {
	if cn.br.Buffered() < 4 {
		return nil, false, nil
	}
	hdr, err := cn.br.Peek(4)
	if err != nil {
		return nil, false, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, false, fmt.Errorf("%w: frame of %d bytes", ErrTooBig, n)
	}
	if cn.br.Buffered() < 4+int(n) {
		return nil, false, nil
	}
	body, err := ReadFrame(cn.br, cn.frame)
	if err != nil {
		return nil, false, err
	}
	cn.frame = body[:0]
	return body, true, nil
}

// handle decodes, executes and answers one request. A decode failure is
// fatal to the connection (framing can no longer be trusted); execution
// failures are answered with an error response.
func (cn *conn) handle(body []byte) error {
	m := cn.srv.metrics
	// Latency is sampled 1-in-16 per connection: two clock reads plus a
	// shared histogram word per request would alone blow the ≤5%
	// overhead budget, and a 1/16 systematic sample of a closed-loop
	// stream preserves the distribution. Counts and byte volumes stay
	// exact. Tracing, when armed, times every request.
	sampled := cn.tr != nil || (m != nil && cn.nreq&latencySampleMask == 0)
	cn.nreq++
	var start time.Time
	if sampled {
		start = time.Now()
	}
	var req Request
	if err := ParseRequest(body, &req); err != nil {
		return err
	}
	var t *opTrace
	if cn.tr != nil {
		t = &opTrace{op: req.Op, seq: req.Seq, shard: -1, decode: time.Since(start)}
		cn.tr.cur = t
	}
	cn.srv.ops[int(req.Op)-1].Add(1)
	resp := Response{Op: req.Op, Seq: req.Seq}
	var execStart time.Time
	if t != nil {
		execStart = time.Now()
	}
	if err := cn.exec(&req, &resp); err != nil {
		// Journal append failure: the mutation applied but can never be
		// made durable, so its response must not be sent. Fatal to the
		// connection.
		return err
	}
	// Stamp the response with the placement version (protocol v6) so
	// client-side caches can validate entries without extra round trips.
	// The version is read after execution, so a migration that completed
	// during the request is already visible in the stamp. READ stamps
	// only on request (ReadWantVer) — its variable tail makes an
	// unconditional stamp ambiguous for older clients.
	if resp.Status == StatusOK {
		switch req.Op {
		case OpOpen, OpWrite, OpAppend, OpTruncate, OpStat, OpMigrate:
			resp.Ver, resp.VerSet = cn.srv.store.PlacementVersion(), true
		case OpRead:
			if req.Flags&ReadWantVer != 0 {
				resp.Ver, resp.VerSet = cn.srv.store.PlacementVersion(), true
			}
		}
	}
	var encStart time.Time
	if t != nil {
		// exec filled t.lock through tr.cur; apply is the rest of it.
		t.apply = time.Since(execStart) - t.lock
		t.status = resp.Status
		encStart = time.Now()
	}
	out, err := AppendResponse(cn.out[:0], &resp)
	if err != nil {
		return err
	}
	cn.out = out[:0]
	if cn.jc != nil && cn.bw.Available() < len(out) {
		// This response will overflow the write buffer, so bufio is
		// about to push earlier responses (and possibly this one) to
		// the wire before the batch-end commit. Commit first: no ack
		// may escape ahead of its record's durability. The current
		// request's record is already appended (pfs journals inside
		// the operation), so this commit covers it too.
		if err := cn.jc.Commit(); err != nil {
			return err
		}
	}
	_, err = cn.bw.Write(out)
	if t != nil {
		t.encode = time.Since(encStart)
		cn.tr.ops = append(cn.tr.ops, *t)
		cn.tr.cur = nil
	}
	if m != nil {
		i := int(req.Op) - 1
		if sampled {
			m.reqNs[i].ObserveDuration(time.Since(start))
		}
		switch req.Op {
		case OpRead:
			m.dataBytes[i].Add(int64(len(resp.Data)))
		case OpWrite, OpAppend:
			m.dataBytes[i].Add(int64(len(req.Data)))
		}
	}
	return err
}

// exec runs one request against the owning shard, filling resp. A
// non-nil error is a journal failure, fatal to the connection (the
// mutation applied but cannot be made durable, so it must not be
// acknowledged); everything else is reported through resp.
func (cn *conn) exec(req *Request, resp *Response) error {
	// A follower refuses mutations outright, pointing at the leader.
	// OPEN is handled in execOpen — its open-or-create flavor is only a
	// mutation when the file is actually missing.
	if cn.srv.notLeader.Load() {
		switch req.Op {
		case OpWrite, OpAppend, OpTruncate, OpMigrate:
			resp.Status = StatusNotLeader
			resp.Msg = cn.srv.LeaderAddr()
			return nil
		}
	}
	// OPEN, MIGRATE, SHARDS and RECOVERED carry no handle.
	switch req.Op {
	case OpOpen:
		return cn.execOpen(req, resp)
	case OpMigrate:
		if req.Dst >= uint32(cn.srv.store.NumShards()) || len(req.Name) > pfs.MaxName {
			resp.Status = StatusBadRequest
			return nil
		}
		// Migrate leases the source shard's context through its own
		// ShardedOp, so the batch's lease must be returned first —
		// holding one slot while Migrate blocks for another is the
		// hold-and-wait cycle the one-lease-at-a-time rule forbids.
		cn.sop.End()
		if err := cn.srv.migrate(req.Name, int(req.Dst)); err != nil {
			fillError(resp, err)
		}
		return nil
	case OpShards:
		resp.Shards = cn.srv.ShardCounts()
		return nil
	case OpRecovered:
		st := cn.srv.recovered
		resp.Recovered = RecoveredInfo{
			WAL:        cn.srv.journal != nil,
			Shards:     uint32(st.Shards),
			Files:      uint32(st.Files),
			FromCkpt:   uint32(st.FromCkpt),
			Migrations: uint32(st.Migrations),
			Records:    uint64(st.Records),
			TornBytes:  uint64(st.TornBytes),
			MaxLSN:     st.MaxLSN,
		}
		return nil
	case OpPromote:
		if cn.srv.replica == nil {
			resp.Status = StatusBadRequest
			return nil
		}
		if err := cn.srv.replica.Promote(); err != nil {
			fillError(resp, err)
			return nil
		}
		// Writable only after Promote returns: the apply queue is
		// drained and the journal hooks rewired, so every write from
		// here on journals locally.
		cn.srv.notLeader.Store(false)
		cn.srv.logger.Info("promoted to leader", "conn", cn.id, "role", "leader")
		return nil
	case OpStats:
		resp.Stats = cn.srv.statsSnapshot()
		return nil
	case OpState:
		st := &StateInfo{Leader: !cn.srv.notLeader.Load(), Fresh: true, Addr: cn.srv.LeaderAddr()}
		if r := cn.srv.replica; r != nil {
			st.Fresh = r.Fresh()
		}
		if j := cn.srv.journal; j != nil {
			st.Epoch = j.Epoch()
			lsns := make([]uint64, len(j.wals))
			for i, w := range j.wals {
				lsns[i] = w.LastLSN()
			}
			st.LSNs = lsns
		}
		resp.State = st
		return nil
	case OpVote:
		if cn.srv.journal == nil {
			resp.Status = StatusBadRequest
			return nil
		}
		v, err := cn.srv.vote(req.Epoch, req.Name)
		if err != nil {
			fillError(resp, err)
			return nil
		}
		resp.Vote = v
		return nil
	}
	// Client-controlled offsets are capped well below the uint64 wrap
	// point: pfs computes off+len and the lock layer panics on inverted
	// ranges, so unchecked offsets would be a remote crash.
	if req.Off > MaxOffset || req.Size > MaxOffset {
		resp.Status = StatusBadRequest
		return nil
	}
	if req.Handle >= uint32(len(cn.files)) {
		resp.Status = StatusBadHandle
		return nil
	}
	if v := cn.srv.store.PlacementVersion(); cn.vers[req.Handle] != v {
		// The placement moved since this handle resolved: re-route by
		// name so the request executes on the live file under the right
		// shard's lease, not against the migrated-away copy. (A move
		// that lands between this check and execution is still safe —
		// the file's own forwarding redirects — but re-resolving keeps
		// the shard accounting honest and the fast path on the right
		// domain.) Resolve returns the file and its shard from one
		// placement-consistent lookup; the version is read before it so
		// a flip during it only causes one more harmless re-resolution.
		f, shard, err := cn.srv.store.Resolve(cn.names[req.Handle])
		if err != nil {
			fillError(resp, err)
			return nil
		}
		cn.files[req.Handle] = f
		cn.shards[req.Handle] = int32(shard)
		cn.vers[req.Handle] = v
	}
	f := cn.files[req.Handle]
	shard := int(cn.shards[req.Handle])
	cn.srv.shardOps[shard].n.Add(1)
	cn.cnt[req.Handle].Add(1)
	var op pfs.Op
	if req.Op != OpStat {
		// STAT is lock-free; everything else runs under the owning
		// shard's leased context.
		if t := cn.trCur(); t != nil {
			t.shard = int32(shard)
			lockStart := time.Now()
			op = cn.sop.Op(shard)
			t.lock = time.Since(lockStart)
		} else {
			op = cn.sop.Op(shard)
		}
	}
	switch req.Op {
	case OpRead:
		if req.Length > MaxData {
			resp.Status = StatusTooBig
			return nil
		}
		if cap(cn.readBuf) < int(req.Length) {
			cn.readBuf = make([]byte, req.Length)
		}
		buf := cn.readBuf[:req.Length]
		n, err := f.ReadAtOp(op, buf, req.Off)
		resp.EOF = err == io.EOF
		resp.Data = buf[:n]
	case OpWrite:
		if len(req.Data) > MaxData {
			resp.Status = StatusTooBig
			return nil
		}
		n, _ := f.WriteAtOp(op, req.Data, req.Off)
		resp.N = uint32(n)
		if cn.jc != nil && n > 0 {
			return cn.touchJournal(req.Handle, shard)
		}
	case OpAppend:
		if len(req.Data) > MaxData {
			resp.Status = StatusTooBig
			return nil
		}
		off, _ := f.AppendOp(op, req.Data)
		resp.Off = off
		if cn.jc != nil && len(req.Data) > 0 {
			return cn.touchJournal(req.Handle, shard)
		}
	case OpTruncate:
		f.TruncateOp(op, req.Size)
		if cn.jc != nil {
			return cn.touchJournal(req.Handle, shard)
		}
	case OpStat:
		fi := f.Stat()
		resp.Size = fi.Size
		resp.Blocks = uint32(fi.Blocks)
	default:
		resp.Status = StatusBadRequest
	}
	return nil
}

// touchJournal marks the shards whose WAL this request's record can
// have landed in, for the batch commit that gates its response.
// Normally that is the handle's shard. If the file migrated while the
// request was in flight, the forwarded operation journaled to the
// destination shard's log instead — and any such move bumped the
// placement version before publishing its forwarding pointer, so a
// version still matching the handle's stamp proves the record went to
// the expected shard, and a moved one re-resolves to cover the
// destination too (over-marking just commits an extra WAL, harmless).
func (cn *conn) touchJournal(handle uint32, shard int) error {
	if err := cn.jc.touch(shard); err != nil {
		return err
	}
	if cn.srv.store.PlacementVersion() != cn.vers[handle] {
		if _, s2, err := cn.srv.store.Resolve(cn.names[handle]); err == nil && s2 != shard {
			return cn.jc.touch(s2)
		}
	}
	return nil
}

// migrate re-homes a file, journaling the move when a WAL is attached:
// the MIGRATE record (carrying the file's frozen snapshot) is durable
// before the namespace flip publishes the move, so a crash leaves the
// file on exactly one shard.
func (s *Server) migrate(name string, dst int) error {
	if s.journal == nil {
		err := s.store.Migrate(name, dst)
		if err == nil {
			if m := s.metrics; m != nil {
				m.migrations.Add(1)
			}
		}
		return err
	}
	var lsn uint64
	err := s.store.MigrateWith(name, dst, func(f *pfs.File) error {
		l, err := s.journal.LogMigrate(dst, name, f)
		lsn = l
		return err
	})
	if err != nil {
		return err
	}
	if m := s.metrics; m != nil {
		m.migrations.Add(1)
	}
	// The record is durable locally; what remains is the follower's
	// copy, waited for outside the store's migration lock so a slow
	// follower stalls only this request, not every create and move.
	return s.journal.replWait(dst, lsn)
}

func (cn *conn) execOpen(req *Request, resp *Response) error {
	if len(cn.files) >= maxHandles {
		resp.Status = StatusError
		resp.Msg = fmt.Sprintf("handle table full (%d)", maxHandles)
		return nil
	}
	// Names are client-controlled up to the frame cap but are journaled
	// with a bounded length prefix; pfs.Create enforces the same limit,
	// this check just refuses over-long names at the protocol boundary
	// with a proper status instead of a create error.
	if len(req.Name) > pfs.MaxName {
		resp.Status = StatusBadRequest
		return nil
	}
	// The version is read before resolving, so a migration landing
	// mid-open leaves the handle conservatively stale (next request
	// re-resolves), never wrongly fresh.
	ver := cn.srv.store.PlacementVersion()
	shard := cn.srv.store.ShardIndex(req.Name)
	cn.srv.shardOps[shard].n.Add(1)
	var f *pfs.File
	var err error
	created := false
	switch {
	case req.Flags&OpenCreate != 0 && cn.srv.notLeader.Load():
		// Open-or-create on a follower serves the open half; only an
		// actual create is a mutation the leader must perform.
		f, err = cn.srv.store.Open(req.Name)
		if errors.Is(err, pfs.ErrNotExist) {
			resp.Status = StatusNotLeader
			resp.Msg = cn.srv.LeaderAddr()
			return nil
		}
	case req.Flags&OpenCreate != 0:
		// Create serializes on the store's migration lock, and Migrate
		// holds that lock while leasing a slot — so the batch's slot
		// lease must be returned first, or 128 connections blocked here
		// while holding slots would complete Migrate's hold-and-wait
		// cycle (same rule as the OpMigrate case).
		cn.sop.End()
		f, err = cn.srv.store.Create(req.Name)
		created = err == nil
		if errors.Is(err, pfs.ErrExist) {
			f, err = cn.srv.store.Open(req.Name)
		}
	default:
		f, err = cn.srv.store.Open(req.Name)
	}
	if err != nil {
		fillError(resp, err)
		return nil
	}
	if cn.jc != nil && created {
		// The CREATE record was journaled by pfs under the namespace
		// lock; only a new name creates, and new names cannot be
		// mid-migration, so the shard computed above is where it went.
		if err := cn.jc.touch(shard); err != nil {
			return err
		}
	}
	c, _ := cn.srv.fileOps.LoadOrStore(req.Name, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
	cn.files = append(cn.files, f)
	cn.shards = append(cn.shards, int32(shard))
	cn.names = append(cn.names, req.Name)
	cn.vers = append(cn.vers, ver)
	cn.cnt = append(cn.cnt, c.(*atomic.Int64))
	resp.Handle = uint32(len(cn.files) - 1)
	return nil
}

// fillError maps pfs errors onto wire statuses.
func fillError(resp *Response, err error) {
	switch {
	case errors.Is(err, ErrNotReady):
		resp.Status = StatusNotReady
	case errors.Is(err, pfs.ErrNotExist):
		resp.Status = StatusNotExist
	case errors.Is(err, pfs.ErrExist):
		resp.Status = StatusExist
	case errors.Is(err, pfs.ErrClosed):
		resp.Status = StatusClosed
	case errors.Is(err, pfs.ErrNameTooLong):
		resp.Status = StatusBadRequest
	default:
		resp.Status = StatusError
		resp.Msg = err.Error()
	}
}
