// Server-side metrics wiring: what the live server measures and under
// which names. The obs registry is the single source all three exposure
// paths read from — the STATS protocol op, cmd/rangestored's /metrics
// endpoint, and tests via Server.MetricsRegistry().
//
// Naming scheme (units are in the name, Prometheus-style):
//
//	rs_*    server request loop and placement
//	wal_*   write-ahead log (fsync, group commit, checkpoints)
//	repl_*  replication, both leader-side (lag, ack waits) and
//	        follower-side (reconnects, bootstraps, applied records)
//
// Per-shard series carry a {shard="N"} label; per-op-class series carry
// {op="read"} etc. Counters marked _total are monotone; histograms
// ending in _ns observe nanoseconds, in _bytes byte sizes, in _records
// record counts.
//
// The replication lag gauges deserve a caveat: LSNs are drawn from one
// store-global counter interleaved across shards, so
// repl_lag_records{shard} — leader frontier minus acked frontier — is
// an upper bound on the shard's outstanding records, not an exact
// count. It is exact at 0 (acked == frontier means fully drained),
// which is what alerting and the e2e drain test key on.
// repl_lag_bytes is bounded the same way: the acked byte frontier only
// advances when a shard is fully drained, so between drains it reports
// the bytes appended since the follower last caught up.
package rangestore

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// latencySampleMask drives the 1-in-16 per-connection sampling of
// rs_request_ns (see conn.handle): request counts and byte volumes are
// exact, the latency distribution is a systematic sample.
const latencySampleMask = 15

// serverMetrics holds the server's pre-resolved hot-path handles into
// its obs registry. A nil *serverMetrics means metrics are disabled;
// the individual handles are nil-safe per obs's contract.
type serverMetrics struct {
	reg *obs.Registry

	reqNs     [numOps]*obs.Histogram // per-op service time (decode+exec+encode)
	dataBytes [numOps]*obs.Counter   // payload bytes (READ out, WRITE/APPEND in)
	batchSize *obs.Histogram         // requests served per batch
	inflight  *obs.Gauge             // batches being served right now
	openConns *obs.Gauge
	conns     *obs.Counter

	migrations     *obs.Counter
	rebalanceMoves *obs.Counter

	snapshotsServed *obs.Counter // FOLLOW sessions bootstrapped from checkpoint
	followStreams   *obs.Gauge   // live leader-side replication streams
	elections       *obs.Counter // elections this node has won (promoteSelf)
}

// WithMetrics has the server record into reg — the option cmd/rangestored
// uses to share one registry between the server, /metrics and STATS.
// Without it (and without WithoutMetrics) the server creates its own.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = &serverMetrics{reg: reg} }
}

// WithoutMetrics disables metrics entirely — the no-op-registry
// baseline the overhead benchmark compares against.
func WithoutMetrics() ServerOption {
	return func(s *Server) { s.noMetrics = true }
}

// WithLogger routes the server's structured logs (and the slow-batch
// tracer's output) through l. A nil logger (the default) discards.
func WithLogger(l *obs.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithSlowTrace arms the slow-batch tracer: any batch whose total
// service time (first decode to response flush) reaches d is logged
// with a structured per-op breakdown (see trace.go). d == 0 traces
// every batch; a negative d (the default) disables tracing.
func WithSlowTrace(d time.Duration) ServerOption {
	return func(s *Server) { s.slowTrace = d }
}

// MetricsRegistry returns the registry the server records into, nil
// when metrics are disabled.
func (s *Server) MetricsRegistry() *obs.Registry {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.reg
}

// wireMetrics resolves the hot-path handles and registers the
// func-backed series over state the server already tracks (request
// tallies, placement version, WAL frontiers, replication gates). Called
// once from NewServerSharded after the options ran, so it sees the
// final journal/replica configuration.
func (s *Server) wireMetrics() {
	m := s.metrics
	if m == nil {
		return
	}
	reg := m.reg
	for i := 0; i < numOps; i++ {
		op := OpCode(i + 1)
		label := fmt.Sprintf(`{op=%q}`, opLabel(op))
		c := &s.ops[i]
		reg.CounterFunc("rs_requests_total"+label, c.Load)
		m.reqNs[i] = reg.Histogram("rs_request_ns" + label)
		switch op {
		case OpRead, OpWrite, OpAppend:
			m.dataBytes[i] = reg.Counter("rs_data_bytes_total" + label)
		}
	}
	for i := range s.shardOps {
		c := &s.shardOps[i].n
		reg.CounterFunc(fmt.Sprintf(`rs_shard_requests_total{shard="%d"}`, i), c.Load)
	}
	m.batchSize = reg.Histogram("rs_batch_requests")
	m.inflight = reg.Gauge("rs_inflight_batches")
	m.openConns = reg.Gauge("rs_open_conns")
	m.conns = reg.Counter("rs_conns_total")
	m.migrations = reg.Counter("rs_migrations_total")
	m.rebalanceMoves = reg.Counter("rs_rebalance_moves_total")
	m.snapshotsServed = reg.Counter("repl_snapshots_served_total")
	m.followStreams = reg.Gauge("repl_follow_streams")
	m.elections = reg.Counter("elections_total")
	reg.GaugeFunc("rs_placement_version", func() int64 {
		return int64(s.store.PlacementVersion())
	})
	reg.GaugeFunc("rs_role_follower", func() int64 {
		if s.notLeader.Load() {
			return 1
		}
		return 0
	})
	if s.journal != nil {
		s.journal.setMetrics(reg)
	}
	if s.replica != nil {
		s.replica.setMetrics(reg)
	}
}

// opLabel is the lower-case label value for an op class.
func opLabel(op OpCode) string {
	switch op {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAppend:
		return "append"
	case OpTruncate:
		return "truncate"
	case OpStat:
		return "stat"
	case OpMigrate:
		return "migrate"
	case OpShards:
		return "shards"
	case OpRecovered:
		return "recovered"
	case OpFollow:
		return "follow"
	case OpPromote:
		return "promote"
	case OpStats:
		return "stats"
	case OpState:
		return "state"
	case OpVote:
		return "vote"
	default:
		return "unknown"
	}
}

// statsSnapshot answers the STATS op: the registry's snapshot, or an
// empty one when metrics are disabled (a typed nothing, not an error —
// clients can always ask).
func (s *Server) statsSnapshot() *obs.Snapshot {
	if s.metrics == nil {
		return &obs.Snapshot{}
	}
	return s.metrics.reg.Snapshot()
}

// setMetrics wires the journal's WALs and replication gates into reg.
// The WALMetrics bundle is shared across shards — fsync latency and
// group-commit size are store-wide distributions — while positions
// (buffered bytes, checkpoint backlog, frontiers, lag) register per
// shard.
func (j *Journal) setMetrics(reg *obs.Registry) {
	wm := &pfs.WALMetrics{
		FsyncNs:        reg.Histogram("wal_fsync_ns"),
		Fsyncs:         reg.Counter("wal_fsyncs_total"),
		BatchRecords:   reg.Histogram("wal_commit_batch_records"),
		BatchBytes:     reg.Histogram("wal_commit_batch_bytes"),
		FlushedBytes:   reg.Counter("wal_flushed_bytes_total"),
		CheckpointNs:   reg.Histogram("wal_checkpoint_ns"),
		Checkpoints:    reg.Counter("wal_checkpoints_total"),
		CheckpointErrs: reg.Counter("wal_checkpoint_errors_total"),
		PipelineDepth:  reg.Histogram("wal_commit_pipeline_depth"),
		StallNs:        reg.Histogram("wal_backpressure_stall_ns"),
		Stalls:         reg.Counter("wal_backpressure_stalls_total"),
	}
	j.ackWaitNs = reg.Histogram("repl_ack_wait_ns")
	j.ackTimeouts = reg.Counter("repl_ack_timeouts_total")
	for i := range j.wals {
		w := j.wals[i]
		g := &j.gates[i]
		w.SetMetrics(wm)
		shard := fmt.Sprintf(`{shard="%d"}`, i)
		reg.GaugeFunc("wal_buffered_bytes"+shard, w.BufferedBytes)
		reg.GaugeFunc("wal_sync_frontier_lag_bytes"+shard, w.SyncLag)
		reg.GaugeFunc("wal_checkpoint_peak_buffer_bytes"+shard, w.CheckpointPeakBuffer)
		reg.GaugeFunc("wal_since_checkpoint_bytes"+shard, w.SinceCheckpoint)
		reg.GaugeFunc("wal_last_lsn"+shard, func() int64 { return int64(w.LastLSN()) })
		reg.GaugeFunc("repl_lag_records"+shard, func() int64 { return lagRecords(w, g, int(j.cluster.Load())) })
		reg.GaugeFunc("repl_lag_bytes"+shard, func() int64 { return lagBytes(w, g, int(j.cluster.Load())) })
	}
	reg.GaugeFunc("repl_quorum_size", func() int64 {
		size, _, _ := j.QuorumInfo()
		return int64(size)
	})
	reg.GaugeFunc("repl_followers", func() int64 {
		_, _, followers := j.QuorumInfo()
		return int64(followers)
	})
	reg.GaugeFunc("repl_epoch", func() int64 { return int64(j.Epoch()) })
}

// lagRecords is the leader's view of one shard's replication debt in
// LSN units: shard frontier minus the quorum-acked frontier while the
// gate is armed (a follower registered or a cluster size configured),
// 0 otherwise. An upper bound except at 0 — see the package comment.
func lagRecords(w *pfs.WAL, g *replGate, cluster int) int64 {
	g.mu.Lock()
	acked := g.quorumAcked(cluster)
	g.mu.Unlock()
	if acked == ^uint64(0) {
		return 0 // unarmed
	}
	last := w.LastLSN()
	if last <= acked {
		return 0
	}
	return int64(last - acked)
}

// lagBytes is the byte-unit companion: log bytes appended past the
// point where the quorum last fully caught up.
func lagBytes(w *pfs.WAL, g *replGate, cluster int) int64 {
	g.mu.Lock()
	armed := g.need(cluster) > 0
	ackedEnd := g.ackedEnd
	g.mu.Unlock()
	if !armed {
		return 0
	}
	if end := w.AppendEnd(); end > ackedEnd {
		return end - ackedEnd
	}
	return 0
}

// setMetrics wires the follower-side counters (published atomically —
// the pull loops are already live when the server wires them).
func (r *Replica) setMetrics(reg *obs.Registry) {
	r.obsp.Store(&replicaObs{
		reconnects:   reg.Counter("repl_reconnects_total"),
		bootstraps:   reg.Counter("repl_snapshot_bootstraps_total"),
		applied:      reg.Counter("repl_applied_records_total"),
		appliedBytes: reg.Counter("repl_applied_bytes_total"),
	})
}
