package rangestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lockapi"
	"repro/internal/pfs"
)

// TestServerSharded drives a 4-shard store from concurrent connections,
// one file per worker, and checks both data integrity and that the
// requests actually spread across shards.
func TestServerSharded(t *testing.T) {
	store := pfs.NewSharded(4, nil)
	srv := NewServerSharded(store)
	defer srv.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := pipeClient(t, srv)
			name := fmt.Sprintf("shard-file-%02d", w)
			h, err := cl.Open(name, true)
			if err != nil {
				t.Errorf("Open(%s): %v", name, err)
				return
			}
			payload := bytes.Repeat([]byte{byte(w + 1)}, 1024)
			for r := 0; r < 20; r++ {
				if _, err := cl.WriteAt(h, payload, uint64(r)*1024); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
				got := make([]byte, 1024)
				if _, err := cl.ReadAt(h, got, uint64(r)*1024); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d: round-tripped wrong bytes", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	counts := srv.ShardCounts()
	if len(counts) != 4 {
		t.Fatalf("ShardCounts len = %d, want 4", len(counts))
	}
	var total int64
	touched := 0
	for _, n := range counts {
		total += n
		if n > 0 {
			touched++
		}
	}
	// workers * (1 open + 20 writes + 20 reads)
	if want := int64(workers * 41); total != want {
		t.Fatalf("shard counts sum to %d, want %d (%v)", total, want, counts)
	}
	if touched < 2 {
		t.Fatalf("all traffic landed on one shard: %v", counts)
	}
	// Placement agrees with the exported hash.
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("shard-file-%02d", w)
		if _, err := store.Shard(pfs.ShardOf(name, 4)).Open(name); err != nil {
			t.Fatalf("file %s not in its hash shard: %v", name, err)
		}
	}
}

// TestServerShardedBatch sends one pipelined batch touching files in
// every shard over a single connection, so the batch loop must lease one
// Op per shard (the per-shard sub-batch path) and answer in order.
func TestServerShardedBatch(t *testing.T) {
	store := pfs.NewSharded(4, nil)
	srv := NewServerSharded(store)
	defer srv.Close()
	cl := pipeClient(t, srv)

	const files = 16
	handles := make([]uint32, files)
	for i := range handles {
		h, err := cl.Open(fmt.Sprintf("batch-%02d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	// One batch: a write to every file, then a read of every file.
	for i, h := range handles {
		if _, err := cl.Send(&Request{Op: OpWrite, Handle: h, Off: 7, Data: []byte{byte(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range handles {
		if _, err := cl.Send(&Request{Op: OpRead, Handle: h, Off: 7, Length: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp Response
	for i := 0; i < files; i++ {
		if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
			t.Fatalf("write resp %d: %v / %v", i, err, resp.Err())
		}
	}
	for i := 0; i < files; i++ {
		if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
			t.Fatalf("read resp %d: %v / %v", i, err, resp.Err())
		}
		if len(resp.Data) != 1 || resp.Data[0] != byte(i+1) {
			t.Fatalf("file %d read back %v", i, resp.Data)
		}
	}
}

// TestServerForeignDomainFiles serves traffic against a store whose
// files lease locks from per-file domains foreign to the FS probe lock:
// every request must take the plain per-call path without panicking,
// including under -race with real parallelism (CI runs -cpu=2,8).
func TestServerForeignDomainFiles(t *testing.T) {
	mk := func() lockapi.Locker { return lockapi.NewListRW(core.NewDomain(8)) }
	srv := newTestServer(t, mk)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := pipeClient(t, srv)
			h, err := cl.Open("shared-foreign", true)
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			payload := bytes.Repeat([]byte{byte(w + 1)}, 512)
			base := uint64(w) * 4096
			for r := 0; r < 30; r++ {
				if _, err := cl.WriteAt(h, payload, base); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
				got := make([]byte, 512)
				if _, err := cl.ReadAt(h, got, base); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d read back wrong bytes", w)
					return
				}
				if _, err := cl.Append(h, payload[:8]); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShutdownDrainsBatch: requests that reach a draining server are
// still answered in full before the connection closes — including when
// they span several server batches (depth > MaxBatch), so graceful
// shutdown neither kills a connection mid-batch nor drops frames that
// were already buffered behind the first batch.
func TestShutdownDrainsBatch(t *testing.T) {
	// The drain flag can land in the instant between the server
	// finishing the Open batch and re-entering its blocking read; the
	// draining server then closes the idle, empty connection before the
	// batch below is even sent — legal, but not the interleaving under
	// test. Retry until the batch reaches a draining server's buffer
	// (the overwhelmingly common schedule).
	for attempt := 0; ; attempt++ {
		if shutdownDrainsBatchAttempt(t) {
			return
		}
		if attempt == 9 {
			t.Fatal("batch never reached a draining server")
		}
	}
}

// shutdownDrainsBatchAttempt runs one shutdown-drain scenario. It
// returns false — retry — only when the server closed the connection
// before the batch was sent; any served-but-wrong outcome is fatal.
func shutdownDrainsBatchAttempt(t *testing.T) bool {
	t.Helper()
	srv := newTestServer(t, nil, WithMaxBatch(3))
	cl := pipeClient(t, srv)
	h, err := cl.Open("drain", true)
	if err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	// Wait for the drain flag so the batch below is served by an
	// already-draining server (the interesting interleaving).
	for !srv.drain.Load() {
		time.Sleep(time.Millisecond)
	}

	const depth = 8
	for i := 0; i < depth; i++ {
		if _, err := cl.Send(&Request{Op: OpAppend, Handle: h, Data: []byte{byte(i)}}); err != nil {
			return false // closed before the batch got out: retry
		}
	}
	if err := cl.Flush(); err != nil {
		return false
	}
	var resp Response
	for i := 0; i < depth; i++ {
		if err := cl.Recv(&resp); err != nil {
			if i == 0 {
				// The close raced past the flush; no request was served.
				return false
			}
			t.Fatalf("drained batch resp %d: %v", i, err)
		}
		if resp.Err() != nil {
			t.Fatalf("drained batch resp %d: %v", i, resp.Err())
		}
	}
	// After the batch the server closes the connection and Shutdown
	// completes without force-closing.
	if err := cl.Recv(&resp); err == nil {
		t.Fatal("connection stayed open after drain")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	// A drained server refuses fresh connections.
	c1, c2 := Pipe()
	defer c1.Close()
	if err := srv.ServeConn(c2); err != ErrClosed {
		t.Fatalf("ServeConn after Shutdown = %v", err)
	}
	return true
}

// TestShutdownWakesIdleTCPConn: over TCP, Shutdown must not wait for an
// idle connection to send another request — the read deadline wakes it
// and the drain completes promptly.
func TestShutdownWakesIdleTCPConn(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := newTestServer(t, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Open("idle", true); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown of an idle conn took %v", d)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	// The drained listener is closed: new dials fail or die immediately.
	if cl2, err := Dial(l.Addr().String()); err == nil {
		if _, err := cl2.Open("nope", true); err == nil {
			t.Fatal("server accepted traffic after Shutdown")
		}
		cl2.Close()
	}
}

// TestShutdownForceClosesOnDeadline: a connection that cannot be woken
// (the in-process pipe ignores read deadlines) is force-closed when the
// context expires, and Shutdown reports the context error.
func TestShutdownForceClosesOnDeadline(t *testing.T) {
	srv := newTestServer(t, nil)
	cl := pipeClient(t, srv)
	if _, err := cl.Open("stuck", true); err != nil {
		t.Fatal(err)
	}
	// Let the handler re-enter its blocking read: if the drain flag beats
	// it back to the loop top, the connection drains cleanly (nothing
	// buffered) and no force-close is needed — a correct but different
	// interleaving than the one this test pins.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	var resp Response
	if err := cl.Recv(&resp); err == nil {
		t.Fatal("force-closed connection still answered")
	}
}
