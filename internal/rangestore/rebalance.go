package rangestore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/pfs"
)

// Migration records one file move performed by Rebalance.
type Migration struct {
	Name     string `json:"name"`
	From, To int
	Ops      int64 // requests the file had absorbed when it was chosen
}

func (m Migration) String() string {
	return fmt.Sprintf("%s: shard %d -> %d (%d ops)", m.Name, m.From, m.To, m.Ops)
}

// Rebalance migrates up to k of the hottest files (by requests served,
// FileCounts) off their shards onto the least-loaded ones, driven by
// the same ShardCounts tally the skew reports come from. Each call
// judges the traffic since the previous call — per-round deltas, not
// lifetime totals — so a periodic rebalancer follows the workload's
// current hot set instead of its history, and a formerly-hot file
// stops being re-blamed for load it absorbed on a shard it already
// left. A file moves only when the move strictly improves the spread —
// its shard carried more of the round's load than the emptiest shard
// would even after absorbing the file — so a store whose recent
// traffic is balanced performs no migrations. Requires map placement
// (pfs.ErrStaticPlacement otherwise). Safe to call while the store is
// serving: each move is an online pfs migration.
//
// This is the measure-then-move loop closed: the counters say where
// zipf-hot traffic landed, Rebalance moves the files it blames, and the
// flipped shard map makes every connection's handle table re-resolve.
func (s *Server) Rebalance(k int) ([]Migration, error) {
	if k <= 0 {
		return nil, nil
	}
	s.rebMu.Lock()
	defer s.rebMu.Unlock()
	curShard := s.ShardCounts()
	curFile := s.FileCounts()
	load := deltaShards(curShard, s.rebPrevShard)
	type hot struct {
		name string
		ops  int64
	}
	files := make([]hot, 0, len(curFile))
	for name, n := range curFile {
		if d := n - s.rebPrevFile[name]; d > 0 {
			files = append(files, hot{name, d})
		}
	}
	s.rebPrevShard = curShard
	s.rebPrevFile = curFile
	if len(load) < 2 {
		return nil, nil
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].ops != files[j].ops {
			return files[i].ops > files[j].ops
		}
		return files[i].name < files[j].name // deterministic on ties
	})

	var out []Migration
	for _, f := range files {
		if len(out) >= k {
			break
		}
		src := s.store.ShardIndex(f.name)
		dst := 0
		for i := range load {
			if load[i] < load[dst] {
				dst = i
			}
		}
		// Move only if it improves: source stays heavier than the
		// destination becomes, i.e. the file is not just sloshing.
		if src == dst || load[src] <= load[dst]+f.ops {
			continue
		}
		if err := s.store.Migrate(f.name, dst); err != nil {
			if errors.Is(err, pfs.ErrStaticPlacement) {
				return out, err
			}
			// A file can disappear between tally and move; skip it.
			continue
		}
		load[src] -= f.ops
		load[dst] += f.ops
		out = append(out, Migration{Name: f.name, From: src, To: dst, Ops: f.ops})
	}
	return out, nil
}

// deltaShards returns cur-prev per shard, clamped at zero (a counter
// reset mid-round would otherwise go negative).
func deltaShards(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		d := cur[i]
		if i < len(prev) {
			d -= prev[i]
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}
