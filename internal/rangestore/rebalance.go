package rangestore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/pfs"
)

// Rebalance smoothing knobs (see WithRebalancePolicy).
const (
	// defaultRebalanceAlpha is the EWMA smoothing factor over per-round
	// deltas: 0.5 means a one-round spike contributes half its weight,
	// then a quarter, and so on — two calm rounds mostly forget it.
	defaultRebalanceAlpha = 0.5
	// defaultRebalanceHysteresis is the minimum improvement a move must
	// buy, as a fraction of the round's total traffic: moves that would
	// shave less than 1% of the round are churn, not balancing.
	defaultRebalanceHysteresis = 0.01
)

// WithRebalancePolicy overrides the rebalancer's smoothing: alpha in
// (0, 1] is the EWMA factor applied to per-round traffic deltas (1
// reproduces the unsmoothed per-round behaviour), hysteresis >= 0 is
// the fraction of a round's total traffic a move must improve the
// spread by before it is worth performing.
func WithRebalancePolicy(alpha, hysteresis float64) ServerOption {
	return func(s *Server) {
		if alpha > 0 && alpha <= 1 {
			s.rebAlpha = alpha
		}
		if hysteresis >= 0 {
			s.rebHyst = hysteresis
		}
	}
}

// Migration records one file move performed by Rebalance.
type Migration struct {
	Name     string `json:"name"`
	From, To int
	Ops      int64 // smoothed per-round requests the file was charged with
}

func (m Migration) String() string {
	return fmt.Sprintf("%s: shard %d -> %d (%d ops)", m.Name, m.From, m.To, m.Ops)
}

// Rebalance migrates up to k of the hottest files (by requests served,
// FileCounts) off their shards onto the least-loaded ones, driven by
// the same ShardCounts tally the skew reports come from. Each call
// judges the traffic since the previous call — per-round deltas, not
// lifetime totals — so a periodic rebalancer follows the workload's
// current hot set instead of its history, and a formerly-hot file
// stops being re-blamed for load it absorbed on a shard it already
// left.
//
// Two mechanisms keep a single noisy round from triggering a move the
// next round would undo. The deltas are smoothed by an EWMA (factor
// alpha, default 0.5): a one-round burst is discounted against the
// rounds before it, so sustained skew moves files and measurement
// noise does not. And a hysteresis margin demands that the move
// actually pay: the source's smoothed load must exceed the
// destination's even after the destination absorbs the file, by more
// than a fraction (default 1%) of the round's raw traffic. A store
// whose recent traffic is balanced — or only twitching — performs no
// migrations. Requires map placement (pfs.ErrStaticPlacement
// otherwise). Safe to call while the store is serving: each move is an
// online pfs migration, journaled when the server has a WAL.
//
// This is the measure-then-move loop closed: the counters say where
// zipf-hot traffic landed, Rebalance moves the files it blames, and the
// flipped shard map makes every connection's handle table re-resolve.
func (s *Server) Rebalance(k int) ([]Migration, error) {
	if k <= 0 {
		return nil, nil
	}
	s.rebMu.Lock()
	defer s.rebMu.Unlock()
	curShard := s.ShardCounts()
	curFile := s.FileCounts()
	delta := deltaShards(curShard, s.rebPrevShard)
	var total float64
	for _, d := range delta {
		total += float64(d)
	}

	// Fold this round into the EWMAs. Files absent this round decay
	// toward zero and are dropped once negligible, so the map tracks
	// the live hot set, not every name ever served.
	alpha := s.rebAlpha
	if s.rebEWShard == nil {
		s.rebEWShard = make([]float64, len(delta))
		for i, d := range delta {
			s.rebEWShard[i] = float64(d)
		}
	} else {
		for i, d := range delta {
			s.rebEWShard[i] = alpha*float64(d) + (1-alpha)*s.rebEWShard[i]
		}
	}
	if s.rebEWFile == nil {
		s.rebEWFile = make(map[string]float64)
		for name, n := range curFile {
			if d := n - s.rebPrevFile[name]; d > 0 {
				s.rebEWFile[name] = float64(d)
			}
		}
	} else {
		for name, ew := range s.rebEWFile {
			d := curFile[name] - s.rebPrevFile[name]
			ew = alpha*float64(d) + (1-alpha)*ew
			if ew < 0.5 {
				delete(s.rebEWFile, name)
			} else {
				s.rebEWFile[name] = ew
			}
		}
		for name, n := range curFile {
			if _, ok := s.rebEWFile[name]; ok {
				continue
			}
			// Admit a newcomer only above the same threshold decay
			// evicts at, or trickle-traffic files would be dropped and
			// re-added every round and the map would never shed them.
			if d := n - s.rebPrevFile[name]; d > 0 {
				if ew := alpha * float64(d); ew >= 0.5 {
					s.rebEWFile[name] = ew
				}
			}
		}
	}
	s.rebPrevShard = curShard
	s.rebPrevFile = curFile

	load := append([]float64(nil), s.rebEWShard...)
	if len(load) < 2 {
		return nil, nil
	}
	type hot struct {
		name string
		ops  float64
	}
	files := make([]hot, 0, len(s.rebEWFile))
	for name, ew := range s.rebEWFile {
		files = append(files, hot{name, ew})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].ops != files[j].ops {
			return files[i].ops > files[j].ops
		}
		return files[i].name < files[j].name // deterministic on ties
	})
	margin := s.rebHyst * total

	var out []Migration
	for _, f := range files {
		if len(out) >= k {
			break
		}
		src := s.store.ShardIndex(f.name)
		dst := 0
		for i := range load {
			if load[i] < load[dst] {
				dst = i
			}
		}
		// Move only if it pays past the hysteresis margin: the source
		// stays heavier than the destination becomes, by more than a
		// noise-sized slice of the round — i.e. the file is not just
		// sloshing.
		if src == dst || load[src] <= load[dst]+f.ops+margin {
			continue
		}
		if err := s.migrate(f.name, dst); err != nil {
			if errors.Is(err, pfs.ErrStaticPlacement) {
				return out, err
			}
			// A file can disappear between tally and move; skip it.
			continue
		}
		load[src] -= f.ops
		load[dst] += f.ops
		if m := s.metrics; m != nil {
			m.rebalanceMoves.Add(1)
		}
		s.logger.Info("rebalanced", "file", f.name, "from", src, "to", dst)
		out = append(out, Migration{Name: f.name, From: src, To: dst, Ops: int64(f.ops)})
	}
	return out, nil
}

// deltaShards returns cur-prev per shard, clamped at zero (a counter
// reset mid-round would otherwise go negative).
func deltaShards(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		d := cur[i]
		if i < len(prev) {
			d -= prev[i]
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}
