package rangestore

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/pfs"
)

// rebBump charges n requests to name on shard, as served traffic would.
func rebBump(srv *Server, shard int, name string, n int64) {
	srv.shardOps[shard].n.Add(n)
	c, _ := srv.fileOps.LoadOrStore(name, new(atomic.Int64))
	c.(*atomic.Int64).Add(n)
}

// nameOnShard probes for a name the placement fallback puts on shard.
func nameOnShard(t *testing.T, store interface{ ShardIndex(string) int }, shard int, tag string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		n := fmt.Sprintf("%s-%d", tag, i)
		if store.ShardIndex(n) == shard {
			return n
		}
	}
	t.Fatalf("no name found on shard %d", shard)
	return ""
}

// TestRebalanceSmoothing: a single noisy round no longer triggers a
// move — the EWMA discounts it against the calm rounds before — while
// the same imbalance sustained over several rounds still does, and a
// persistent but sub-hysteresis imbalance never does.
func TestRebalanceSmoothing(t *testing.T) {
	srv, store := mapServer(t, 2)
	// Shard 0 carries a small file a and a big file c; shard 1 carries
	// b. All exist so a warranted move can actually execute.
	a := nameOnShard(t, store, 0, "smooth-a")
	c := nameOnShard(t, store, 0, "smooth-c")
	b := nameOnShard(t, store, 1, "smooth-b")
	for _, n := range []string{a, c, b} {
		if _, err := store.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	round := func(na, nc, nb int64) []Migration {
		t.Helper()
		rebBump(srv, 0, a, na)
		rebBump(srv, 0, c, nc)
		rebBump(srv, 1, b, nb)
		migs, err := srv.Rebalance(1)
		if err != nil {
			t.Fatal(err)
		}
		return migs
	}

	// Calm, balanced rounds: never a move.
	for i := 0; i < 3; i++ {
		if migs := round(100, 800, 900); len(migs) != 0 {
			t.Fatalf("balanced round %d migrated %v", i, migs)
		}
	}

	// One noisy round: c bursts +150, tilting the raw deltas to
	// [1050, 900]. The unsmoothed greedy would move a (1050 > 900+100);
	// the EWMA sees [975, 900] and a move that cannot pay.
	if migs := round(100, 950, 900); len(migs) != 0 {
		t.Fatalf("single noisy round triggered %v", migs)
	}
	// The next calm round must not move either (no echo of the burst).
	if migs := round(100, 800, 900); len(migs) != 0 {
		t.Fatalf("round after the noise migrated %v", migs)
	}

	// The same tilt sustained: the EWMA converges onto it and the move
	// becomes real. It must pick a — the small file whose departure
	// pays — not the big one.
	moved := false
	for i := 0; i < 6; i++ {
		migs := round(100, 950, 900)
		if len(migs) > 0 {
			if migs[0].Name != a || migs[0].To != 1 {
				t.Fatalf("sustained skew moved %v, want %s to shard 1", migs, a)
			}
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("sustained skew never triggered a move")
	}

	// A persistent imbalance below the hysteresis margin is churn, not
	// skew: moving a (4 ops) would improve [504, 496] by 4 — a strict
	// improvement the unsmoothed greedy would take every round — but
	// 4 < 1% of the round's 1000 ops, so it must never move.
	srv2, store2 := mapServer(t, 2)
	a2 := nameOnShard(t, store2, 0, "hyst-a")
	c2 := nameOnShard(t, store2, 0, "hyst-c")
	b2 := nameOnShard(t, store2, 1, "hyst-b")
	for _, n := range []string{a2, c2, b2} {
		if _, err := store2.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		rebBump(srv2, 0, a2, 4)
		rebBump(srv2, 0, c2, 500)
		rebBump(srv2, 1, b2, 496)
		migs, err := srv2.Rebalance(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(migs) != 0 {
			t.Fatalf("sub-hysteresis imbalance migrated %v on round %d", migs, i)
		}
	}
}

// TestRebalancePolicyOverride: alpha=1 + zero hysteresis reproduces the
// old per-round greedy, so the knob really is the smoothing.
func TestRebalancePolicyOverride(t *testing.T) {
	store := pfs.NewShardedPlacement(2, nil, pfs.NewMapPlacement(nil))
	srv := NewServerSharded(store, WithRebalancePolicy(1, 0))
	t.Cleanup(func() { srv.Close() })
	a := nameOnShard(t, store, 0, "raw-a")
	c := nameOnShard(t, store, 0, "raw-c")
	b := nameOnShard(t, store, 1, "raw-b")
	for _, n := range []string{a, c, b} {
		if _, err := store.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	// Balanced history, then the same single noisy round that
	// smoothing suppressed: with alpha=1 and no margin it moves.
	rebBump(srv, 0, a, 100)
	rebBump(srv, 0, c, 800)
	rebBump(srv, 1, b, 900)
	if migs, err := srv.Rebalance(1); err != nil || len(migs) != 0 {
		t.Fatalf("balanced round: %v, %v", migs, err)
	}
	rebBump(srv, 0, a, 100)
	rebBump(srv, 0, c, 950)
	rebBump(srv, 1, b, 900)
	migs, err := srv.Rebalance(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(migs) != 1 || migs[0].Name != a {
		t.Fatalf("unsmoothed policy did not move on the noisy round: %v", migs)
	}
}
