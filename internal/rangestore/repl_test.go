package rangestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
)

// replPair wires a live leader/follower pair over in-process pipes.
// wrap, when non-nil, wraps the leader's end of each replication
// connection — the fault-injection hook.
type replPair struct {
	srvL, srvF     *Server
	storeL, storeF *pfs.Sharded
	jL, jF         *Journal
	dL, dF         pfs.Dir
	rep            *Replica
	dial           func() (net.Conn, error)
}

func newReplPair(t testing.TB, cfg RecoverConfig, wrap func(net.Conn) net.Conn) *replPair {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.ReplAckTimeout == 0 {
		cfg.ReplAckTimeout = 5 * time.Second
	}
	p := &replPair{dL: pfs.NewMemDir(), dF: pfs.NewMemDir()}
	cfgL := cfg
	cfgL.Placement = pfs.NewMapPlacement(nil)
	p.srvL, p.storeL, p.jL, _ = walServer(t, p.dL, cfgL)
	cfgF := cfg
	cfgF.Placement = pfs.NewMapPlacement(nil)
	storeF, jF, statsF, err := Recover(p.dF, cfgF)
	if err != nil {
		t.Fatalf("Recover follower: %v", err)
	}
	p.storeF, p.jF = storeF, jF
	p.dial = func() (net.Conn, error) {
		c1, c2 := Pipe()
		var lc net.Conn = c2
		if wrap != nil {
			lc = wrap(c2)
		}
		go p.srvL.ServeConn(lc)
		return c1, nil
	}
	p.rep, err = StartReplica(storeF, jF, statsF, p.dial)
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	p.srvF = NewServerSharded(storeF, WithJournal(jF), WithRecovered(statsF), WithFollower(p.rep, "leader"))
	t.Cleanup(func() {
		p.rep.Stop()
		p.srvF.Close()
	})
	return p
}

// pairDialer maps the symbolic addresses "leader"/"follower" onto the
// pair's in-process servers, for FailoverClient tests.
func (p *replPair) pairDialer() func(addr string) (*Client, error) {
	return func(addr string) (*Client, error) {
		srv := p.srvL
		if addr == "follower" {
			srv = p.srvF
		}
		c1, c2 := Pipe()
		go srv.ServeConn(c2)
		return NewClient(c1), nil
	}
}

// readFull reads name's whole content out of store.
func readFull(t testing.TB, store *pfs.Sharded, name string) []byte {
	t.Helper()
	fi, err := store.Stat(name)
	if err != nil {
		t.Fatalf("Stat %s: %v", name, err)
	}
	if fi.Size == 0 {
		return nil
	}
	f, err := store.Open(name)
	if err != nil {
		t.Fatalf("Open %s: %v", name, err)
	}
	buf := make([]byte, fi.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt %s: %v", name, err)
	}
	return buf
}

// TestReplicationBasicFailover: acked writes are immediately readable on
// the follower (semi-sync), mutations on the follower redirect to the
// leader, and after the leader dies a PROMOTE makes the follower serve
// writes with all replicated state intact.
func TestReplicationBasicFailover(t *testing.T) {
	p := newReplPair(t, RecoverConfig{Sync: pfs.SyncBatch}, nil)
	if err := p.rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	clL := pipeClient(t, p.srvL)
	clF := pipeClient(t, p.srvF)

	const files = 8
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 512) }
	for i := 0; i < files; i++ {
		h, err := clL.Open(fmt.Sprintf("rf-%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := clL.WriteAt(h, payload(i), uint64(i)*64); err != nil {
			t.Fatalf("leader write %d: %v", i, err)
		}
	}
	// The writes above were acknowledged, so the follower must already
	// hold them — no settling sleep allowed.
	for i := 0; i < files; i++ {
		h, err := clF.Open(fmt.Sprintf("rf-%d", i), false)
		if err != nil {
			t.Fatalf("follower open %d: %v", i, err)
		}
		got := make([]byte, 512)
		if _, err := clF.ReadAt(h, got, uint64(i)*64); err != nil {
			t.Fatalf("follower read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("follower file %d diverges", i)
		}
	}

	// Mutations against the follower are redirected, naming the leader.
	h0, err := clF.Open("rf-0", false)
	if err != nil {
		t.Fatal(err)
	}
	var nl *NotLeaderError
	if _, err := clF.WriteAt(h0, []byte("x"), 0); !errors.As(err, &nl) || nl.Leader != "leader" {
		t.Fatalf("follower write error = %v, want NotLeaderError(leader)", err)
	}
	if err := clF.Truncate(h0, 1); !errors.As(err, &nl) {
		t.Fatalf("follower truncate error = %v", err)
	}
	if _, err := clF.Open("rf-new", true); !errors.As(err, &nl) {
		t.Fatalf("follower create error = %v", err)
	}
	// Open-or-create of an existing file is a read: served locally.
	if _, err := clF.Open("rf-0", true); err != nil {
		t.Fatalf("follower open-or-create existing: %v", err)
	}

	// Kill the leader; promote; the follower serves writes.
	p.srvL.Close()
	if err := clF.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := clF.WriteAt(h0, []byte("post-failover"), 4096); err != nil {
		t.Fatalf("post-promote write: %v", err)
	}
	if _, err := clF.Open("rf-new", true); err != nil {
		t.Fatalf("post-promote create: %v", err)
	}
	got := make([]byte, 512)
	if _, err := clF.ReadAt(h0, got, 0); err != nil || !bytes.Equal(got, payload(0)) {
		t.Fatalf("replicated state lost across promote: %v", err)
	}
	// Promote is idempotent.
	if err := clF.Promote(); err != nil {
		t.Fatalf("second promote: %v", err)
	}
}

// TestReplicaBootstrapFromCheckpoint: a cold follower whose fromLSN
// predates the leader's checkpoint floor takes the snapshot path, and a
// follower crash right after the bootstrap recovers to the same state.
func TestReplicaBootstrapFromCheckpoint(t *testing.T) {
	dL := pfs.NewMemDir()
	cfg := RecoverConfig{
		Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		CheckpointBytes: 1, ReplAckTimeout: 5 * time.Second,
	}
	srvL, _, jL, _ := walServer(t, dL, cfg)
	clL := pipeClient(t, srvL)

	want := map[string][]byte{}
	handles := map[string]uint32{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("ck-%d", i)
		h, err := clL.Open(name, true)
		if err != nil {
			t.Fatal(err)
		}
		handles[name] = h
		data := bytes.Repeat([]byte{byte(i + 1)}, 300)
		if _, err := clL.WriteAt(h, data, 7); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 7+len(data))
		copy(buf[7:], data)
		want[name] = buf
	}
	jL.WaitCheckpoints()
	// The tiny threshold means every shard with records has checkpointed:
	// the log floor is past zero and a cold follower cannot backfill.
	var maxFloor uint64
	for s := 0; s < 2; s++ {
		if _, floor, err := pfs.ReadCheckpoint(dL, s); err == nil && floor > maxFloor {
			maxFloor = floor
		}
	}
	if maxFloor == 0 {
		t.Fatal("no checkpoint floor advanced; snapshot path not exercised")
	}

	dF := pfs.NewMemDir()
	cfgF := RecoverConfig{Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch}
	storeF, jF, statsF, err := Recover(dF, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	dial := func() (net.Conn, error) {
		c1, c2 := Pipe()
		go srvL.ServeConn(c2)
		return c1, nil
	}
	rep, err := StartReplica(storeF, jF, statsF, dial)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Attach alone does not order the pre-attach writes against this
	// test's reads — they were acknowledged before any follower existed.
	// One acked write per file does: a shard's stream applies in order,
	// so the ack proves everything earlier landed too.
	for name, h := range handles {
		if _, err := clL.WriteAt(h, []byte{0xEE}, uint64(len(want[name]))); err != nil {
			t.Fatal(err)
		}
		want[name] = append(want[name], 0xEE)
	}
	for name, data := range want {
		if got := readFull(t, storeF, name); !bytes.Equal(got, data) {
			t.Fatalf("%s after bootstrap: %d bytes, want %d", name, len(got), len(data))
		}
	}

	// Crash the follower right here and recover from its directory: the
	// bootstrap wrote a local checkpoint, so nothing is lost.
	rep.Stop()
	jF.Close()
	storeF2, _, _, err := Recover(dF, RecoverConfig{Shards: 2, Placement: pfs.NewMapPlacement(nil)})
	if err != nil {
		t.Fatalf("recover follower dir: %v", err)
	}
	for name, data := range want {
		if got := readFull(t, storeF2, name); !bytes.Equal(got, data) {
			t.Fatalf("%s lost across follower crash after bootstrap", name)
		}
	}
}

// TestReplicaJoinsMidTraffic: a follower that joins while the leader is
// serving writes — and checkpointing under a tiny threshold — converges
// to the leader's exact contents.
func TestReplicaJoinsMidTraffic(t *testing.T) {
	dL := pfs.NewMemDir()
	cfg := RecoverConfig{
		Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		CheckpointBytes: 2 << 10, ReplAckTimeout: 10 * time.Second,
	}
	srvL, storeL, _, _ := walServer(t, dL, cfg)
	clL := pipeClient(t, srvL)

	const files, rounds = 6, 30
	names := make([]string, files)
	handles := make([]uint32, files)
	for i := range names {
		names[i] = fmt.Sprintf("mid-%d", i)
		h, err := clL.Open(names[i], true)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	var rep *Replica
	var storeF *pfs.Sharded
	for r := 0; r < rounds; r++ {
		if r == rounds/3 {
			dF := pfs.NewMemDir()
			cfgF := RecoverConfig{Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch}
			sF, jF, statsF, err := Recover(dF, cfgF)
			if err != nil {
				t.Fatal(err)
			}
			storeF = sF
			rep, err = StartReplica(sF, jF, statsF, func() (net.Conn, error) {
				c1, c2 := Pipe()
				go srvL.ServeConn(c2)
				return c1, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rep.Stop()
		}
		for i := range names {
			data := bytes.Repeat([]byte{byte(r + 1)}, 512)
			off := uint64((r * 977) % (16 << 10))
			if _, err := clL.WriteAt(handles[i], data, off); err != nil {
				t.Fatalf("round %d file %d: %v", r, i, err)
			}
		}
	}
	if err := rep.WaitAttached(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// One more acked write per file: its ack proves that file's shard
	// stream has applied everything before it.
	for i := range names {
		if _, err := clL.WriteAt(handles[i], []byte{0xFF}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		if !bytes.Equal(readFull(t, storeL, name), readFull(t, storeF, name)) {
			t.Fatalf("%s diverges between leader and mid-join follower", name)
		}
	}
}

// TestReplicationFaultInjection: the replication link drops, duplicates
// and reorders frames; clients retry through FailoverClient. Every
// acknowledged write must end up intact on the follower, exactly once in
// its journal.
func TestReplicationFaultInjection(t *testing.T) {
	var attempt int
	var amu sync.Mutex
	wrap := func(c net.Conn) net.Conn {
		amu.Lock()
		attempt++
		seed := int64(42 + attempt) // a fresh schedule per reconnect: no deterministic livelock
		amu.Unlock()
		return FaultWrap(c, FaultConfig{
			Seed: seed, Drop: 0.03, Dup: 0.05, Delay: 0.1,
			MaxDelay: 2 * time.Millisecond, SkipFirst: 8,
		})
	}
	p := newReplPair(t, RecoverConfig{Shards: 1, Sync: pfs.SyncBatch, ReplAckTimeout: 500 * time.Millisecond}, wrap)
	if err := p.rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fc, err := NewFailoverClient(FailoverConfig{
		Addrs: []string{"leader", "follower"}, Dial: p.pairDialer(), MaxWait: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	h, err := fc.Open("faulty", true)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 60
	for i := 0; i < writes; i++ {
		pat := bytes.Repeat([]byte{byte(i + 1)}, 256)
		if _, err := fc.WriteAt(h, pat, uint64(i)*256); err != nil {
			t.Fatalf("write %d under faults: %v", i, err)
		}
	}
	// The last write's ack covers the whole (single-shard) stream.
	for i := 0; i < writes; i++ {
		got := make([]byte, 256)
		f, err := p.storeF.Open("faulty")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(got, uint64(i)*256); err != nil {
			t.Fatalf("follower read %d: %v", i, err)
		}
		if want := bytes.Repeat([]byte{byte(i + 1)}, 256); !bytes.Equal(got, want) {
			t.Fatalf("write %d corrupt on follower under faults", i)
		}
	}
	// Duplicated and replayed frames must not double-journal: the
	// follower's log carries strictly increasing LSNs.
	p.rep.Stop()
	if err := p.jF.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := pfs.ReadLogRecords(p.dF, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for _, rec := range recs {
		if rec.LSN <= last {
			t.Fatalf("follower journal LSN %d after %d: duplicate or reordered apply", rec.LSN, last)
		}
		last = rec.LSN
	}
}

// TestReplicaSeverResume: the link is hard-cut mid-stream, twice; the
// follower reconnects and resumes from its acked LSN. The follower's
// journal must end up record-for-record identical to the leader's — no
// gaps, no double-applies.
func TestReplicaSeverResume(t *testing.T) {
	var attempt int
	var amu sync.Mutex
	wrap := func(c net.Conn) net.Conn {
		amu.Lock()
		attempt++
		a := attempt
		amu.Unlock()
		if a > 2 {
			return c // later sessions run clean so the stream can finish
		}
		return FaultWrap(c, FaultConfig{Seed: int64(a), SeverAfter: 12})
	}
	p := newReplPair(t, RecoverConfig{Shards: 1, Sync: pfs.SyncBatch}, wrap)
	if err := p.rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	clL := pipeClient(t, p.srvL)
	h, err := clL.Open("sever", true)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 60
	for i := 0; i < writes; i++ {
		if _, err := clL.WriteAt(h, bytes.Repeat([]byte{byte(i)}, 128), uint64(i)*128); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	amu.Lock()
	got := attempt
	amu.Unlock()
	if got < 3 {
		t.Fatalf("only %d replication sessions; the sever never bit", got)
	}
	p.rep.Stop()
	if err := p.jF.Close(); err != nil {
		t.Fatal(err)
	}
	lRecs, err := pfs.ReadLogRecords(p.dL, 0)
	if err != nil {
		t.Fatal(err)
	}
	fRecs, err := pfs.ReadLogRecords(p.dF, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lRecs) != len(fRecs) {
		t.Fatalf("leader journal has %d records, follower %d", len(lRecs), len(fRecs))
	}
	for i := range lRecs {
		if lRecs[i].LSN != fRecs[i].LSN || lRecs[i].Kind != fRecs[i].Kind ||
			lRecs[i].Off != fRecs[i].Off || !bytes.Equal(lRecs[i].Data, fRecs[i].Data) {
			t.Fatalf("journals diverge at record %d: leader LSN %d, follower LSN %d",
				i, lRecs[i].LSN, fRecs[i].LSN)
		}
	}
}

// TestFollowerRestartReset: a follower that crashes and restarts over
// its old state demands a snapshot bootstrap (FollowReset) rather than
// trusting stale files, then tracks the leader again.
func TestFollowerRestartReset(t *testing.T) {
	p := newReplPair(t, RecoverConfig{Shards: 2, Sync: pfs.SyncBatch}, nil)
	if err := p.rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	clL := pipeClient(t, p.srvL)
	handles := make([]uint32, 4)
	for i := range handles {
		h, err := clL.Open(fmt.Sprintf("rs-%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		if _, err := clL.WriteAt(h, bytes.Repeat([]byte{byte(i + 1)}, 256), 0); err != nil {
			t.Fatal(err)
		}
	}

	// Crash the follower.
	p.rep.Stop()
	p.srvF.Close()
	if err := p.jF.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart it over the same directory: recovery finds state, so the
	// replica must demand a reset on its first attach.
	storeF2, jF2, stats2, err := Recover(p.dF, RecoverConfig{Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Files == 0 && stats2.Records == 0 {
		t.Fatal("follower restart found no state; reset path not exercised")
	}
	rep2, err := StartReplica(storeF2, jF2, stats2, p.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Stop()
	if err := rep2.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// New acked writes land on the restarted follower; old state intact.
	for i := range handles {
		if _, err := clL.WriteAt(handles[i], []byte("v2"), 1024); err != nil {
			t.Fatalf("post-restart write %d: %v", i, err)
		}
	}
	for i := range handles {
		name := fmt.Sprintf("rs-%d", i)
		got := readFull(t, storeF2, name)
		if len(got) != 1026 || got[0] != byte(i+1) || !bytes.Equal(got[1024:], []byte("v2")) {
			t.Fatalf("%s wrong after restart+reset: %d bytes", name, len(got))
		}
	}
}

// TestFailoverPingPong: the replicated torture harness. Kill the leader,
// promote the follower, restart the old leader as the new follower,
// kill again, promote back. Every acknowledged write must survive every
// handover.
func TestFailoverPingPong(t *testing.T) {
	p := newReplPair(t, RecoverConfig{Shards: 2, Sync: pfs.SyncBatch}, nil)
	if err := p.rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	writeSet := func(cl *Client, tag string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("pp-%s-%d", tag, i)
			h, err := cl.Open(name, true)
			if err != nil {
				t.Fatalf("set %s open: %v", tag, err)
			}
			data := bytes.Repeat([]byte(tag), 64)
			if _, err := cl.WriteAt(h, data, 0); err != nil {
				t.Fatalf("set %s write: %v", tag, err)
			}
			want[name] = data
		}
	}

	clA := pipeClient(t, p.srvL)
	writeSet(clA, "one", 4)

	// Handover 1: A dies, B takes over.
	p.srvL.Close()
	p.jL.Close()
	clB := pipeClient(t, p.srvF)
	if err := clB.Promote(); err != nil {
		t.Fatalf("promote B: %v", err)
	}
	writeSet(clB, "two", 4)

	// Restart A over its old directory as B's follower.
	storeA2, jA2, statsA2, err := Recover(p.dL, RecoverConfig{Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	repA, err := StartReplica(storeA2, jA2, statsA2, func() (net.Conn, error) {
		c1, c2 := Pipe()
		go p.srvF.ServeConn(c2)
		return c1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srvA2 := NewServerSharded(storeA2, WithJournal(jA2), WithRecovered(statsA2), WithFollower(repA, "follower"))
	t.Cleanup(func() { repA.Stop(); srvA2.Close() })
	if err := repA.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	writeSet(clB, "three", 4)

	// Handover 2: B dies, A takes over again.
	p.srvF.Close()
	clA2 := pipeClient(t, srvA2)
	if err := clA2.Promote(); err != nil {
		t.Fatalf("promote A: %v", err)
	}
	writeSet(clA2, "four", 4)

	for name, data := range want {
		if got := readFull(t, storeA2, name); !bytes.Equal(got, data) {
			t.Fatalf("%s lost or corrupted across handovers", name)
		}
	}
}

// TestShutdownUnderTraffic: closing the journal while connections are
// still hammering the server must neither panic nor corrupt the log —
// stragglers fail their commits cleanly and the directory recovers.
func TestShutdownUnderTraffic(t *testing.T) {
	d := pfs.NewMemDir()
	srv, _, j, _ := walServer(t, d, RecoverConfig{Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch})
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c1, c2 := Pipe()
			go srv.ServeConn(c2)
			cl := NewClient(c1)
			defer cl.Close()
			h, err := cl.Open(fmt.Sprintf("shut-%d", w), true)
			if err != nil {
				return
			}
			buf := bytes.Repeat([]byte{byte(w)}, 512)
			for i := 0; ; i++ {
				if _, err := cl.WriteAt(h, buf, uint64(i%64)*512); err != nil {
					return // the shutdown cut us off: expected
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv.Shutdown(ctx) // pipes ignore read deadlines; the ctx force-close is a legal drain outcome
	cancel()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close after drain: %v", err)
	}
	wg.Wait()
	if _, _, _, err := Recover(d, RecoverConfig{Shards: 4, Placement: pfs.NewMapPlacement(nil)}); err != nil {
		t.Fatalf("recover after shutdown under traffic: %v", err)
	}
}
