// Leader-side WAL replication: the FOLLOW session.
//
// A FOLLOW request converts its connection into a one-shard replication
// stream. After the FOLLOW response the request/response protocol ends
// and the connection carries length-prefixed replication frames:
//
//	frame = len:u32 body               (little-endian, like the protocol)
//	body  = kind:u8 <kind-specific>
//
//	repSnapFile  nameLen:u16 name snapshot      (leader → follower)
//	repRec       prevlsn:u64 record             (leader → follower)
//	repAck       lsn:u64 epoch:u64              (follower → leader)
//	repHeartbeat epoch:u64                      (leader → follower)
//	repEnd       lsn:u64                        (leader → follower, FollowFetch only)
//
// A repRec's record field is a raw WAL record frame — the exact
// len/crc/body bytes the leader's log holds — so the follower re-runs
// the CRC and can journal the bytes verbatim. prevlsn is the LSN of the
// record the leader streamed immediately before this one (the stream's
// resume point for the first): a follower seeing prevlsn above its own
// applied frontier knows frames were lost and reconnects, seeing a
// record at or below it knows the frame is a duplicate and skips it.
// Gap detection needs the chain because shard LSNs are sparse — the
// store-global counter interleaves shards, so consecutive records of
// one shard have non-consecutive LSNs.
//
// The session is semi-synchronous: the moment a follower attaches to a
// shard, batch commits touching that shard wait (bounded by the
// journal's ack timeout) for repAcks from a majority of the cluster
// covering their records before responses flush. Acks are sent after
// the follower has applied AND committed the records to its own log, so
// an acknowledged write survives the death of a minority of nodes.
//
// Epoch fencing: every ack carries the epoch the follower is acking
// under (adopted from the FOLLOW response, raised by votes it grants).
// A leader that sees an ack or a FOLLOW request stamped with a later
// epoch has been deposed — it steps down to read-only on the spot, so a
// network that delivers a stale leader's frames late can never count
// them toward a commit under the new regime. Heartbeat frames push the
// leader's epoch (and liveness) to followers between records; a
// follower whose own epoch has moved past the session's severs it.
package rangestore

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/pfs"
)

// Replication stream frame kinds.
const (
	repSnapFile  = 1
	repRec       = 2
	repAck       = 3
	repHeartbeat = 4
	repEnd       = 5
)

// defaultReplHeartbeat is the leader→follower heartbeat period when the
// server option leaves it zero: the lease followers base elections on.
const defaultReplHeartbeat = 500 * time.Millisecond

// maxReplFrame bounds replication stream frames: a whole-file snapshot
// or MIGRATE record (up to pfs's 1 GiB record cap) plus header slack.
const maxReplFrame = 1<<30 + 96

// defaultTapMax bounds the per-follower undelivered log backlog; a
// follower lagging further is detached (it reconnects and resumes from
// its acked LSN, which may then require a snapshot bootstrap).
const defaultTapMax = 64 << 20

// appendSnapFrame encodes one checkpoint file for bootstrap.
func appendSnapFrame(dst []byte, name string, snap []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+2+len(name)+len(snap)))
	dst = append(dst, repSnapFile)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = append(dst, snap...)
	return dst
}

// appendRecFrame encodes one raw WAL record frame with its chain link.
func appendRecFrame(dst []byte, prevLSN uint64, raw []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+8+len(raw)))
	dst = append(dst, repRec)
	dst = binary.LittleEndian.AppendUint64(dst, prevLSN)
	dst = append(dst, raw...)
	return dst
}

// appendAckFrame encodes the follower's applied-and-durable frontier,
// stamped with the epoch it acks under.
func appendAckFrame(dst []byte, lsn, epoch uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 17)
	dst = append(dst, repAck)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return dst
}

// appendHeartbeatFrame encodes a leader liveness beacon with its epoch.
func appendHeartbeatFrame(dst []byte, epoch uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 9)
	dst = append(dst, repHeartbeat)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return dst
}

// appendEndFrame terminates a FollowFetch stream at the frontier lsn.
func appendEndFrame(dst []byte, lsn uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 9)
	dst = append(dst, repEnd)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return dst
}

// hijackFollow winds down the batch machinery (leases, pending commits,
// buffered responses) and hands the connection to serveFollow, never to
// return to request/response service.
func (cn *conn) hijackFollow(body []byte) error {
	if cn.srv.drain.Load() {
		// A draining server is going away; a replication stream that
		// never ends would wedge the shutdown.
		return ErrClosed
	}
	cn.sop.End()
	if cn.jc != nil {
		if err := cn.jc.Commit(); err != nil {
			return err
		}
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	return cn.srv.serveFollow(cn, body)
}

// answer encodes and flushes one response — the FOLLOW handshake runs
// outside the batch loop's write path.
func (cn *conn) answer(resp *Response) error {
	out, err := AppendResponse(cn.out[:0], resp)
	if err != nil {
		return err
	}
	cn.out = out[:0]
	if _, err := cn.bw.Write(out); err != nil {
		return err
	}
	return cn.bw.Flush()
}

// serveFollow runs one shard's replication stream until either side
// dies. The sequence — arm the ack gate, cut (checkpoint, log, tap)
// atomically under the shard's checkpoint mutex, bootstrap, backfill,
// tail — guarantees every record the leader ever acknowledges is either
// in what was sent or will reach the tap. A FollowFetch session skips
// the gate and the tail: it streams the durable cut and terminates with
// an end frame — the election winner's read-only catch-up pull.
func (s *Server) serveFollow(cn *conn, body []byte) error {
	var req Request
	if err := ParseRequest(body, &req); err != nil {
		return err
	}
	s.ops[int(OpFollow)-1].Add(1)
	resp := Response{Op: OpFollow, Seq: req.Seq}
	shard := int(req.Dst)
	if s.journal == nil || shard >= s.store.NumShards() {
		resp.Status = StatusBadRequest
		return cn.answer(&resp)
	}
	fetch := req.Flags&FollowFetch != 0
	if req.Epoch > s.journal.Epoch() {
		// The requester has promised a later epoch than we have seen: if
		// we thought we were the leader, we no longer are. Adopt the
		// epoch either way so it propagates.
		s.stepDown(req.Epoch, "")
	}
	if !fetch {
		if s.notLeader.Load() {
			// Only the leader arms ack gates; a follower serves fetches
			// (reads of its durable cut) but never a live session.
			resp.Status = StatusNotLeader
			resp.Msg = s.LeaderAddr()
			return cn.answer(&resp)
		}
		// Arm the gate before the response escapes: once the follower
		// hears success, every leader ack from that instant on waits
		// for it.
		s.journal.replRequire(shard, req.Name)
	}
	tap, files, floor, recs, err := s.journal.attachTap(shard, defaultTapMax)
	if err != nil {
		fillError(&resp, err)
		return cn.answer(&resp)
	}
	defer tap.Close()
	epoch := s.journal.Epoch()
	resp.Epoch = epoch
	if m := s.metrics; m != nil {
		m.followStreams.Add(1)
		defer m.followStreams.Add(-1)
	}
	s.logger.Info("follower attached", "conn", cn.id, "shard", shard, "fromlsn", req.Off,
		"node", req.Name, "epoch", epoch, "fetch", fetch, "role", "leader")

	// The follower bootstraps from the checkpoint when it asks for
	// records the log no longer holds (checkpointed away below floor)
	// or explicitly requests a reset (its local state may be stale in
	// ways log replay cannot fix, e.g. files the leader removed).
	snap := req.Flags&FollowReset != 0 || req.Off < floor
	lastSent := req.Off
	if snap {
		lastSent = floor
		resp.N = uint32(len(files))
		if m := s.metrics; m != nil {
			m.snapshotsServed.Add(1)
		}
	}
	resp.EOF = snap
	resp.Off = floor
	if err := cn.answer(&resp); err != nil {
		return err
	}

	out := cn.out[:0]
	if snap {
		for _, cf := range files {
			out = appendSnapFrame(out[:0], cf.Name, cf.Snapshot)
			if _, err := cn.bw.Write(out); err != nil {
				return err
			}
		}
	}
	// Backfill committed records above the resume point from the log
	// read under the attach cut; the tap then carries everything later.
	// Records seen on both sides of the cut are deduped by LSN here and
	// by the follower again (frames in flight during a reconnect).
	var raw []byte
	for i := range recs {
		rec := &recs[i]
		if rec.LSN <= lastSent {
			continue
		}
		if raw, err = pfs.EncodeRecord(raw[:0], rec); err != nil {
			return err
		}
		out = appendRecFrame(out[:0], lastSent, raw)
		if _, err := cn.bw.Write(out); err != nil {
			return err
		}
		lastSent = rec.LSN
	}
	if fetch {
		// Finite catch-up: everything durable at the attach cut has been
		// sent; mark the frontier and return the connection to die.
		out = appendEndFrame(out[:0], lastSent)
		if _, err := cn.bw.Write(out); err != nil {
			return err
		}
		return cn.bw.Flush()
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}

	// Ack pump. It owns the read half; on any read failure it kills the
	// connection and the tap so the streaming loop below wakes too —
	// without the tap close, a quiet shard would leave this session
	// blocked in Next forever after the follower vanished. Acks stamped
	// with a later epoch mean a new leader has been elected: step down
	// and kill the session instead of counting them.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var abuf []byte
		for {
			b, err := ReadFrameMax(cn.br, abuf, 64)
			if err != nil {
				break
			}
			abuf = b[:0]
			if len(b) == 17 && b[0] == repAck {
				lsn := binary.LittleEndian.Uint64(b[1:9])
				ae := binary.LittleEndian.Uint64(b[9:17])
				if ae > epoch {
					s.stepDown(ae, "")
					break
				}
				if ae == epoch {
					s.journal.replAck(shard, req.Name, lsn)
				}
			}
		}
		cn.nc.Close()
		tap.Close()
	}()
	defer func() {
		cn.nc.Close()
		<-done
	}()

	// Heartbeats share the write half with the tail loop below (wmu):
	// they carry the leader's epoch and liveness between records, the
	// lease followers base election timeouts on. A deposed leader's
	// heartbeater kills the session instead of beating under a dead
	// epoch.
	var wmu sync.Mutex
	hb := s.replHeartbeat
	if hb <= 0 {
		hb = defaultReplHeartbeat
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		var hout []byte
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
			}
			if s.notLeader.Load() {
				cn.nc.Close()
				return
			}
			hout = appendHeartbeatFrame(hout[:0], s.journal.Epoch())
			wmu.Lock()
			_, werr := cn.bw.Write(hout)
			if werr == nil {
				werr = cn.bw.Flush()
			}
			wmu.Unlock()
			if werr != nil {
				return
			}
		}
	}()

	// Tail the tap: it delivers the shard's durable log suffix as raw
	// record frames, re-cut on record boundaries here (a flush round
	// always ends on one, but a lagged consumer may get several rounds
	// fused). Only records above lastSent ship — the tap attach point
	// and the log read overlap by design.
	var buf []byte
	for {
		b, err := tap.Next(buf)
		if err != nil {
			return err
		}
		buf = b
		off := 0
		wmu.Lock()
		for off < len(buf) {
			rec, n, derr := pfs.DecodeRecord(buf[off:])
			if derr != nil {
				break // incomplete frame: need the next delivery
			}
			if rec.LSN > lastSent {
				out = appendRecFrame(out[:0], lastSent, buf[off:off+n])
				if _, err := cn.bw.Write(out); err != nil {
					wmu.Unlock()
					return err
				}
				lastSent = rec.LSN
			}
			off += n
		}
		buf = append(buf[:0], buf[off:]...)
		if err := cn.bw.Flush(); err != nil {
			wmu.Unlock()
			return err
		}
		wmu.Unlock()
	}
}
