package rangestore

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pfs"
)

// stallConn throttles a conn's write side: the first budget bytes pass
// through, then every write blocks until release closes (or the test
// ends). It freezes a leader mid-snapshot so tests can observe a
// follower stuck in bootstrap.
type stallConn struct {
	net.Conn
	mu      sync.Mutex
	budget  int
	release <-chan struct{}
}

func (c *stallConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		c.mu.Lock()
		b := c.budget
		c.mu.Unlock()
		if b == 0 {
			<-c.release
			n, err := c.Conn.Write(p[written:])
			return written + n, err
		}
		n := len(p) - written
		if n > b {
			n = b
		}
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		c.mu.Lock()
		c.budget -= m
		c.mu.Unlock()
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// snapshotLeader boots a single-shard leader whose every record has
// been checkpointed (CheckpointBytes: 1), so any cold follower must
// take the snapshot path; returns the leader and the content a correct
// follower must converge to.
func snapshotLeader(t *testing.T) (*Server, map[string][]byte, *Client) {
	t.Helper()
	dL := pfs.NewMemDir()
	srvL, _, jL, _ := walServer(t, dL, RecoverConfig{
		Shards: 1, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		CheckpointBytes: 1, ReplAckTimeout: 2 * time.Second,
	})
	clL := pipeClient(t, srvL)
	want := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("snap-%d", i)
		h, err := clL.Open(name, true)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 8<<10)
		if _, err := clL.WriteAt(h, data, 0); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	jL.WaitCheckpoints()
	if _, floor, err := pfs.ReadCheckpoint(dL, 0); err != nil || floor == 0 {
		t.Fatalf("no checkpoint floor (err %v); snapshot path not armed", err)
	}
	return srvL, want, clL
}

// booting reports whether any shard of r is mid-snapshot-bootstrap.
func booting(r *Replica) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.booting {
		if b {
			return true
		}
	}
	return false
}

// TestPromoteRefusedMidBootstrap: a follower whose snapshot install is
// still in flight must refuse promotion with ErrNotReady — both on the
// Replica API and through the server's PROMOTE op — and accept it once
// the bootstrap completes.
func TestPromoteRefusedMidBootstrap(t *testing.T) {
	srvL, want, _ := snapshotLeader(t)

	release := make(chan struct{})
	var releaseOnce sync.Once
	free := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(free)

	dF := pfs.NewMemDir()
	storeF, jF, statsF, err := Recover(dF, RecoverConfig{
		Shards: 1, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is ~48 KiB; 1 KiB of budget delivers the FOLLOW
	// response (so bootstrap begins) but starves the file payload.
	rep, err := StartReplica(storeF, jF, statsF, func() (net.Conn, error) {
		c1, c2 := Pipe()
		go srvL.ServeConn(&stallConn{Conn: c2, budget: 1024, release: release})
		return c1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	srvF := NewServerSharded(storeF, WithJournal(jF), WithRecovered(statsF),
		WithFollower(rep, "leader"))
	defer srvF.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !booting(rep) {
		if !time.Now().Before(deadline) {
			t.Fatal("follower never entered snapshot bootstrap")
		}
		time.Sleep(time.Millisecond)
	}

	if err := rep.Promote(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Promote mid-bootstrap: err %v, want ErrNotReady", err)
	}
	clF := pipeClient(t, srvF)
	if err := clF.Promote(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("PROMOTE op mid-bootstrap: err %v, want ErrNotReady", err)
	}

	// Unfreeze: the bootstrap finishes and the same promotion lands.
	free()
	if err := rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := clF.Promote(); err != nil {
		t.Fatalf("PROMOTE after bootstrap: %v", err)
	}
	for name, data := range want {
		if got := readFull(t, storeF, name); !bytes.Equal(got, data) {
			t.Fatalf("%s diverged after promote: %d bytes, want %d", name, len(got), len(data))
		}
	}
}

// TestFollowerRestartMidSnapshot: a follower killed mid-snapshot and
// restarted from its crash-surviving state discards the truncated
// install and re-requests the snapshot cleanly — it converges to the
// leader's exact contents and tracks new writes.
func TestFollowerRestartMidSnapshot(t *testing.T) {
	srvL, want, clL := snapshotLeader(t)

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	var stall atomic.Bool
	stall.Store(true)
	dial := func() (net.Conn, error) {
		c1, c2 := Pipe()
		var lc net.Conn = c2
		if stall.Load() {
			lc = &stallConn{Conn: c2, budget: 1024, release: release}
		}
		go srvL.ServeConn(lc)
		return c1, nil
	}

	dF := pfs.NewMemDir()
	storeF, jF, statsF, err := Recover(dF, RecoverConfig{
		Shards: 1, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := StartReplica(storeF, jF, statsF, dial)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !booting(rep) {
		if !time.Now().Before(deadline) {
			t.Fatal("follower never entered snapshot bootstrap")
		}
		time.Sleep(time.Millisecond)
	}

	// Crash the follower mid-install: stop it and keep only what its
	// directory had synced — a truncated, partial bootstrap.
	rep.Stop()
	jF.Close()
	snap := dF.CrashCopy(nil)

	// Restart over the wreckage with a healthy link.
	stall.Store(false)
	storeF2, jF2, statsF2, err := Recover(snap, RecoverConfig{
		Shards: 1, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	if err != nil {
		t.Fatalf("recover over truncated bootstrap: %v", err)
	}
	rep2, err := StartReplica(storeF2, jF2, statsF2, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Stop()
	defer jF2.Close()
	if err := rep2.WaitAttached(5 * time.Second); err != nil {
		t.Fatalf("re-requested bootstrap never attached: %v", err)
	}

	// One acked write per file orders the snapshot against our reads
	// and proves the stream tracks past the re-install.
	for name := range want {
		h, err := clL.Open(name, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := clL.WriteAt(h, []byte{0xAB}, uint64(len(want[name]))); err != nil {
			t.Fatal(err)
		}
		want[name] = append(want[name], 0xAB)
	}
	for name, data := range want {
		if got := readFull(t, storeF2, name); !bytes.Equal(got, data) {
			t.Fatalf("%s after restart mid-snapshot: %d bytes, want %d", name, len(got), len(data))
		}
	}
}

// TestFailoverClientClusterUnavailable: when every address stays dead
// past MaxWait, the client surfaces a typed ClusterUnavailableError
// wrapping the last transport error, with the attempt count.
func TestFailoverClientClusterUnavailable(t *testing.T) {
	dead := errors.New("connection refused")
	fc, err := NewFailoverClient(FailoverConfig{
		Addrs:   []string{"a", "b"},
		Dial:    func(addr string) (*Client, error) { return nil, dead },
		MaxWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fc.Open("nope", true)
	var cu *ClusterUnavailableError
	if !errors.As(err, &cu) {
		t.Fatalf("err %v, want *ClusterUnavailableError", err)
	}
	if cu.Attempts == 0 {
		t.Fatal("ClusterUnavailableError carries no attempt count")
	}
	if !errors.Is(err, dead) {
		t.Fatalf("err %v does not wrap the last dial error", err)
	}
}
