package rangestore

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// statsTestSnapshot builds a registry with every metric kind populated
// and snapshots it.
func statsTestSnapshot() *obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter(`rs_requests_total{op="read"}`).Add(123)
	reg.Counter(`rs_requests_total{op="write"}`).Add(7)
	reg.Gauge("rs_open_conns").Set(-2) // gauges may go negative on the wire
	h := reg.Histogram("wal_fsync_ns")
	h.Observe(1)
	h.Observe(900)
	h.Observe(1 << 40) // lands in the overflow bucket
	reg.GaugeFunc(`repl_lag_records{shard="0"}`, func() int64 { return 55 })
	return reg.Snapshot()
}

func TestStatsRoundTrip(t *testing.T) {
	want := statsTestSnapshot()
	resp := Response{Op: OpStats, Seq: 42, Stats: want}
	buf, err := AppendResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := ParseResponse(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != OpStats || got.Seq != 42 || got.Status != StatusOK {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Stats == nil {
		t.Fatal("decoded Stats is nil")
	}
	if !reflect.DeepEqual(got.Stats.Entries, want.Entries) {
		t.Fatalf("snapshot did not round-trip:\ngot  %+v\nwant %+v", got.Stats.Entries, want.Entries)
	}
	// Derived views must survive the trip too.
	if got.Stats.Value(`rs_requests_total{op="read"}`) != 123 {
		t.Error("counter value lost")
	}
	if hs := got.Stats.HistOf("wal_fsync_ns"); hs == nil || hs.Count() != 3 || hs.Sum != want.HistOf("wal_fsync_ns").Sum {
		t.Errorf("histogram lost state: %+v", hs)
	}
}

func TestStatsRoundTripEmpty(t *testing.T) {
	for _, snap := range []*obs.Snapshot{nil, {}} {
		resp := Response{Op: OpStats, Seq: 1, Stats: snap}
		buf, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatal(err)
		}
		body, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatal(err)
		}
		var got Response
		if err := ParseResponse(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Stats == nil || len(got.Stats.Entries) != 0 {
			t.Fatalf("empty snapshot decoded as %+v", got.Stats)
		}
	}
}

func TestStatsParseRejectsTruncation(t *testing.T) {
	resp := Response{Op: OpStats, Seq: 9, Stats: statsTestSnapshot()}
	full, err := AppendResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	body := full[4:] // strip the length prefix
	// Cut inside the stats payload (the fixed response header is 8
	// bytes); every truncation must be rejected, never mis-decoded.
	for cut := 9; cut < len(body); cut++ {
		var r Response
		if err := ParseResponse(body[:cut], &r); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStatsOverServer(t *testing.T) {
	srv := NewServerSharded(pfs.NewSharded(2, nil))
	defer srv.Close()
	cl := pipeClient(t, srv)

	if _, err := cl.Open("stats-probe", true); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) == 0 {
		t.Fatal("server snapshot is empty — metrics should default on")
	}
	if got := snap.Value(`rs_requests_total{op="open"}`); got < 1 {
		t.Errorf(`rs_requests_total{op="open"} = %d, want >= 1`, got)
	}
	// The STATS request itself is counted by the next snapshot.
	snap2, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap2.Value(`rs_requests_total{op="stats"}`); got < 1 {
		t.Errorf(`rs_requests_total{op="stats"} = %d, want >= 1`, got)
	}
}
