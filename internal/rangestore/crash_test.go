package rangestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pfs"
)

// The crash-and-replay torture harness: a mixed workload runs against a
// WAL-backed in-process server, the server is hard-stopped at a random
// point mid-batch (Close, no drain), the WAL directory is crash-cut at
// its durable frontier (with randomly torn, occasionally bit-flipped
// un-synced tails), and recovery is checked against a shadow model:
//
//   - every acknowledged request must be present, and
//   - the recovered file must equal the shadow after some prefix of
//     the issued request stream at least as long as the acked prefix —
//     a crash may keep un-acked suffix work, but never reorder, drop
//     from the middle, or invent.
//
// Each worker drives its own file over its own pipelined connection, so
// the per-file request stream is totally ordered and the prefix
// property is exact.

// tortureOp is one issued request, enough to replay against the shadow.
type tortureOp struct {
	kind byte // 'w' write, 'a' append, 't' truncate, 'r' read
	off  uint64
	size uint64 // truncate target
	data []byte
}

// shadowApply applies op to the shadow byte image, mirroring pfs
// semantics: sparse growth zero-fills, truncate cuts or zero-extends,
// appends land at the current size watermark.
func shadowApply(state []byte, op tortureOp) []byte {
	switch op.kind {
	case 'w':
		end := op.off + uint64(len(op.data))
		for uint64(len(state)) < end {
			state = append(state, 0)
		}
		copy(state[op.off:end], op.data)
	case 'a':
		state = append(state, op.data...)
	case 't':
		for uint64(len(state)) < op.size {
			state = append(state, 0)
		}
		state = state[:op.size]
	}
	return state
}

// tortureWorker drives one file with a pipelined mixed workload until
// the connection dies under it. ops is the issued stream; acked counts
// responses received (FIFO order makes that a prefix) and is atomic so
// the killer can read it at the crash instant: an ack observed before
// the crash copy was durably committed before it, so the snapshot of
// the counter is a sound floor for what recovery must reproduce.
type tortureWorker struct {
	ops    []tortureOp
	acked  atomic.Int64
	opened bool
}

func (tw *tortureWorker) run(srv *Server, name string, seed int64) {
	const (
		depth  = 4
		extent = 16 << 10
		maxLen = 256
	)
	c1, c2 := Pipe()
	go srv.ServeConn(c2)
	cl := NewClient(c1)
	defer cl.Close()
	h, err := cl.Open(name, true)
	if err != nil {
		// The kill can land before this worker's goroutine ever ran —
		// in a 5–45 ms round the scheduler may not get to everyone.
		// Nothing was issued, so nothing is owed.
		return
	}
	tw.opened = true
	rng := rand.New(rand.NewSource(seed))
	var resp Response
	inflight := 0
	for i := 0; i < 4096; i++ {
		var op tortureOp
		var req Request
		switch p := rng.Intn(100); {
		case p < 40:
			data := bytes.Repeat([]byte{byte(seed) ^ byte(i)}, 1+rng.Intn(maxLen))
			op = tortureOp{kind: 'w', off: uint64(rng.Intn(extent)), data: data}
			req = Request{Op: OpWrite, Handle: h, Off: op.off, Data: data}
		case p < 70:
			data := bytes.Repeat([]byte{0x80 | byte(i)}, 1+rng.Intn(maxLen))
			op = tortureOp{kind: 'a', data: data}
			req = Request{Op: OpAppend, Handle: h, Data: data}
		case p < 80:
			op = tortureOp{kind: 't', size: uint64(rng.Intn(extent))}
			req = Request{Op: OpTruncate, Handle: h, Size: op.size}
		default:
			op = tortureOp{kind: 'r'}
			req = Request{Op: OpRead, Handle: h, Off: uint64(rng.Intn(extent)), Length: 128}
		}
		tw.ops = append(tw.ops, op)
		if _, err := cl.Send(&req); err != nil {
			return
		}
		inflight++
		if inflight == depth {
			if err := cl.Flush(); err != nil {
				return
			}
			for ; inflight > 0; inflight-- {
				if err := cl.Recv(&resp); err != nil || resp.Status != StatusOK {
					return
				}
				tw.acked.Add(1)
			}
		}
	}
	cl.Flush()
	for ; inflight > 0; inflight-- {
		if err := cl.Recv(&resp); err != nil || resp.Status != StatusOK {
			return
		}
		tw.acked.Add(1)
	}
}

func TestCrashReplayTorture(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		round := round
		// Most rounds run the batch-fsync journal, where an ack is a
		// durability promise recovery must honor. Every third round runs
		// fsync=off: nothing is synced, so the crash copy tears large
		// un-synced tails — the scanner's torn-prefix handling under
		// full load — and the only promise left is the prefix property.
		mode := pfs.SyncBatch
		if round%3 == 2 {
			mode = pfs.SyncOff
		}
		// Odd rounds stretch every fsync to 200µs, so the crash snapshot
		// routinely lands between the commit pipeline's write and sync
		// phases — records on the write frontier but not the sync
		// frontier. Round 1 also runs the serialized (pre-pipelining)
		// commit path so its crash windows stay covered.
		slow := round%2 == 1
		pipeline := 0 // 0: the pipelined default
		if round == 1 {
			pipeline = -1
		}
		t.Run(fmt.Sprintf("seed=%d,fsync=%s,slow=%v", round, mode, slow), func(t *testing.T) {
			seed := int64(round)*2654435761 + 99
			rng := rand.New(rand.NewSource(seed))
			md := pfs.NewMemDir()
			var d pfs.Dir = md
			if slow {
				d = &pfs.SlowDir{Dir: md, SyncDelay: 200 * time.Microsecond}
			}
			store, j, _, err := Recover(d, RecoverConfig{
				Shards:    4,
				Placement: pfs.NewMapPlacement(nil),
				Sync:      mode,
				// Tiny threshold: checkpoints and log rotations race the
				// kill for real.
				CheckpointBytes: 16 << 10,
				CommitPipeline:  pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServerSharded(store, WithJournal(j))

			const nworkers = 4
			workers := make([]*tortureWorker, nworkers)
			var wg sync.WaitGroup
			for w := 0; w < nworkers; w++ {
				workers[w] = &tortureWorker{}
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					workers[w].run(srv, fmt.Sprintf("torture-%d-%d", round, w), seed+int64(w))
				}(w)
			}
			// The crash: the WAL directory is snapshotted while the
			// server is still serving — mid-batch, mid-commit, possibly
			// mid-checkpoint — with the un-synced tails randomly torn.
			// The acked floors are read first: an ack counted here was
			// durable before the snapshot (commit happens before the
			// response flushes), so the snapshot can only contain more.
			time.Sleep(time.Duration(5+rng.Intn(40)) * time.Millisecond)
			ackedAt := make([]int, nworkers)
			for w := range workers {
				if mode != pfs.SyncOff {
					ackedAt[w] = int(workers[w].acked.Load())
				}
				// fsync=off promises nothing for acks; the floor stays 0
				// and only the prefix property is enforced.
			}
			crashed := md.CrashCopy(rng)
			srv.Close()
			wg.Wait()
			store2, _, stats, err := Recover(crashed, RecoverConfig{
				Shards:    4,
				Placement: pfs.NewMapPlacement(nil),
				Sync:      mode,
			})
			if err != nil {
				t.Fatalf("recovery after crash: %v", err)
			}
			totalAcked := 0
			for w, tw := range workers {
				acked := ackedAt[w]
				totalAcked += acked
				name := fmt.Sprintf("torture-%d-%d", round, w)
				f, err := store2.Open(name)
				if errors.Is(err, pfs.ErrNotExist) {
					if acked > 0 {
						t.Fatalf("worker %d: %d acked ops but file did not recover", w, acked)
					}
					continue // a create unacked at the crash may be lost
				}
				if err != nil {
					t.Fatal(err)
				}
				got := make([]byte, f.Size())
				f.ReadAt(got, 0)

				// Find the prefix of the issued stream the recovered
				// state corresponds to; it must be ≥ the acked prefix.
				var state []byte
				matched := -1
				for k := 0; k <= len(tw.ops); k++ {
					if k >= acked && uint64(len(state)) == f.Size() && bytes.Equal(state, got) {
						matched = k
						break
					}
					if k < len(tw.ops) {
						state = shadowApply(state, tw.ops[k])
					}
				}
				if matched < 0 {
					t.Fatalf("worker %d: recovered state (size %d) matches no prefix ≥ %d acked of %d issued ops",
						w, f.Size(), acked, len(tw.ops))
				}
			}
			if testing.Verbose() {
				t.Logf("round %d: %d acked ops, recovery %v", round, totalAcked, stats)
			}
		})
	}
}

// TestMigrationCrashOneOwner kills the store around Sharded.Migrate's
// dangerous window — after the freeze+copy, before the namespace flip —
// and asserts replay leaves the file served by exactly one shard with
// intact contents: the source while the MIGRATE record is not yet
// durable, the destination from the instant it is.
func TestMigrationCrashOneOwner(t *testing.T) {
	const name = "mig-crash"
	content := bytes.Repeat([]byte("owner!"), 700) // spans two blocks

	setup := func(t *testing.T) (*pfs.MemDir, *Server, *pfs.Sharded, *Journal, int, int) {
		d := pfs.NewMemDir()
		srv, store, j, _ := walServer(t, d, RecoverConfig{
			Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		})
		cl := pipeClient(t, srv)
		h, err := cl.Open(name, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.WriteAt(h, content, 0); err != nil {
			t.Fatal(err)
		}
		src := store.ShardIndex(name)
		return d, srv, store, j, src, 1 - src
	}

	verify := func(t *testing.T, crashed *pfs.MemDir, wantShard int) {
		t.Helper()
		store2, _, _, err := Recover(crashed, RecoverConfig{
			Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		owners := 0
		for i := 0; i < 2; i++ {
			if _, err := store2.Shard(i).Open(name); err == nil {
				owners++
				if i != wantShard {
					t.Fatalf("file recovered on shard %d, want %d", i, wantShard)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("file recovered on %d shards, want exactly 1", owners)
		}
		if got := store2.ShardIndex(name); got != wantShard {
			t.Fatalf("placement routes to %d, want %d", got, wantShard)
		}
		f, err := store2.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(content))
		f.ReadAt(got, 0)
		if f.Size() != uint64(len(content)) || !bytes.Equal(got, content) {
			t.Fatal("recovered contents diverged")
		}
	}

	t.Run("record-not-durable", func(t *testing.T) {
		d, _, store, j, src, dst := setup(t)
		var crashed *pfs.MemDir
		err := store.MigrateWith(name, dst, func(f *pfs.File) error {
			// The record is appended but never committed: the crash
			// hits between freeze/copy and durability, so the move
			// must roll back to the source on replay.
			if _, _, err := j.appendMigrate(dst, name, f); err != nil {
				return err
			}
			crashed = d.CrashCopy(nil)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		verify(t, crashed, src)
	})

	t.Run("record-durable-before-flip", func(t *testing.T) {
		d, _, store, j, _, dst := setup(t)
		var crashed *pfs.MemDir
		err := store.MigrateWith(name, dst, func(f *pfs.File) error {
			// The journal's real emit path: record durable. The crash
			// hits after durability but still before the map flip —
			// replay must land the file on the destination.
			if _, err := j.LogMigrate(dst, name, f); err != nil {
				return err
			}
			crashed = d.CrashCopy(nil)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		verify(t, crashed, dst)
	})

	t.Run("after-flip", func(t *testing.T) {
		d, srv, _, _, src, dst := setup(t)
		cl := pipeClient(t, srv)
		if err := cl.Migrate(name, dst); err != nil {
			t.Fatal(err)
		}
		_ = src
		verify(t, d.CrashCopy(nil), dst)
	})
}
