// FailoverClient: a synchronous client that survives the death of its
// server. On any connection failure it redials — preferring the leader
// address a StatusNotLeader response named, otherwise cycling its
// configured addresses — with bounded exponential backoff, re-opens
// every handle by name, and retries the interrupted call.
//
// The price of retrying writes is at-least-once execution: a write
// whose response was lost may have applied, and the retry applies it
// again. WriteAt with a fixed offset and payload is idempotent, so
// failover workloads built on it (like wload's) see exactly-once
// *effects*; Append is not idempotent across retries and callers who
// mix it with failover must tolerate duplicates.
package rangestore

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Failover retry pacing.
const (
	failoverBackoffMin  = 10 * time.Millisecond
	failoverBackoffMax  = 1 * time.Second
	defaultFailoverWait = 30 * time.Second
	defaultDialTimeout  = 2 * time.Second
)

// FailoverConfig configures a FailoverClient.
type FailoverConfig struct {
	// Addrs are the candidate servers (leader and followers), tried in
	// rotation when no leader hint is known.
	Addrs []string
	// Dial connects to one address (nil: DialTimeout with a 2 s cap).
	// Tests inject in-process transports and fault wrappers here.
	Dial func(addr string) (*Client, error)
	// MaxWait bounds one call's total retry budget, connection attempts
	// included (0: 30 s). When it runs out the call fails with a
	// *ClusterUnavailableError wrapping the last transport error.
	MaxWait time.Duration
	// OpTimeout is applied to every connection via SetOpTimeout (0:
	// block indefinitely — then only connection death triggers
	// failover, not a hung server).
	OpTimeout time.Duration
	// Logger, when set, records failover events (dial failures,
	// condemned connections, leader hints) with the same key scheme the
	// server and replica use. Nil discards.
	Logger *obs.Logger
}

// fcHandle is one client-side handle: the re-open key plus the server
// handle it currently maps to.
type fcHandle struct {
	name   string
	create bool
	remote uint32
}

// FailoverClient issues synchronous calls against whichever configured
// server currently accepts them. Handles are client-side and stable
// across failover; they are re-opened by name on every new connection.
// Like Client, it serves one goroutine at a time.
type FailoverClient struct {
	cfg     FailoverConfig
	c       *Client
	hint    string // leader address learned from StatusNotLeader
	next    int    // rotation cursor over cfg.Addrs
	handles []fcHandle
	log     *obs.Logger

	// ver is the highest placement version learned across every
	// connection this client has used; gen counts successful
	// (re)connects. Both feed client-side caches: a version bump drops
	// stale entries, a generation bump (failover happened — the new
	// leader may hold writes this client never saw) drops everything.
	ver uint64
	gen uint64
}

// NewFailoverClient returns a client over cfg. No connection is made
// until the first call.
func NewFailoverClient(cfg FailoverConfig) (*FailoverClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("rangestore: failover client needs at least one address")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (*Client, error) { return DialTimeout(addr, defaultDialTimeout) }
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultFailoverWait
	}
	return &FailoverClient{cfg: cfg, log: cfg.Logger.With("role", "client")}, nil
}

// Close drops the current connection, if any.
func (fc *FailoverClient) Close() error {
	if fc.c != nil {
		err := fc.c.Close()
		fc.c = nil
		return err
	}
	return nil
}

// ClusterUnavailableError reports that a call exhausted its MaxWait
// retry budget without finding a server that would take it — every
// configured address was down, unreachable, or redirecting in circles.
// Callers distinguish it from semantic errors with errors.As and decide
// whether to give up or re-issue with a fresh budget.
type ClusterUnavailableError struct {
	// Attempts is how many connection or call attempts were burned.
	Attempts int
	// LastErr is the final underlying error.
	LastErr error
}

func (e *ClusterUnavailableError) Error() string {
	return fmt.Sprintf("rangestore: cluster unavailable after %d attempts: %v", e.Attempts, e.LastErr)
}

func (e *ClusterUnavailableError) Unwrap() error { return e.LastErr }

// jitter spreads a backoff sleep over [d/2, d): clients condemned by
// the same leader death would otherwise redial in lockstep and hammer
// the next candidate together.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2))
}

// semantic reports whether err is a definitive answer from a healthy
// server — retrying elsewhere cannot change it.
func semantic(err error) bool {
	return errors.Is(err, ErrNotExist) || errors.Is(err, ErrExist) ||
		errors.Is(err, ErrBadHandle) || errors.Is(err, ErrBadRequest) ||
		errors.Is(err, ErrTooBig)
}

// pickAddr returns the next address to try: the leader hint once (it is
// consumed — a wrong or dead hint must not be retried forever), then
// the configured rotation.
func (fc *FailoverClient) pickAddr() string {
	if fc.hint != "" {
		a := fc.hint
		fc.hint = ""
		return a
	}
	a := fc.cfg.Addrs[fc.next%len(fc.cfg.Addrs)]
	fc.next++
	return a
}

// connect dials until a server accepts and every handle re-opens, or
// the deadline passes. attempts counts every dial across the whole
// call, so the exhaustion error can report the real work burned.
// Semantic reopen failures — a healthy server definitively refusing a
// handle's name (ErrNotExist with create=false, ErrBadRequest on an
// over-long name) — surface immediately: no amount of redialing changes
// a correct answer, and burning the MaxWait budget on one would
// misreport it as cluster unavailability.
func (fc *FailoverClient) connect(deadline time.Time, attempts *int) error {
	backoff := failoverBackoffMin
	var lastErr error = ErrClosed
	for {
		addr := fc.pickAddr()
		*attempts++
		c, err := fc.cfg.Dial(addr)
		if err == nil {
			if fc.cfg.OpTimeout > 0 {
				c.SetOpTimeout(fc.cfg.OpTimeout)
			}
			if err = fc.reopen(c); err == nil {
				fc.c = c
				fc.gen++
				fc.absorbVer()
				fc.log.Info("connected", "addr", addr, "handles", len(fc.handles))
				return nil
			}
			c.Close()
			if semantic(err) {
				fc.log.Info("reopen refused", "addr", addr, "err", err)
				return fmt.Errorf("rangestore: reopen handles on %s: %w", addr, err)
			}
		}
		lastErr = err
		fc.log.Debug("connect failed", "addr", addr, "err", err)
		var nl *NotLeaderError
		if errors.As(err, &nl) && nl.Leader != "" {
			fc.hint = nl.Leader
			fc.log.Info("leader hint", "addr", addr, "leader", nl.Leader)
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return &ClusterUnavailableError{Attempts: *attempts, LastErr: lastErr}
		}
		time.Sleep(jitter(backoff))
		backoff = min(backoff*2, failoverBackoffMax)
	}
}

// reopen rebuilds the handle table on a fresh connection.
func (fc *FailoverClient) reopen(c *Client) error {
	for i := range fc.handles {
		h, err := c.Open(fc.handles[i].name, fc.handles[i].create)
		if err != nil {
			return err
		}
		fc.handles[i].remote = h
	}
	return nil
}

// absorbVer folds the live connection's learned placement version into
// the client-wide maximum.
func (fc *FailoverClient) absorbVer() {
	if fc.c != nil {
		if v := fc.c.PlacementVersion(); v > fc.ver {
			fc.ver = v
		}
	}
}

// PlacementVersion returns the highest placement version any response —
// on any connection this client has used — has carried. 0 until a
// stamped response arrives.
func (fc *FailoverClient) PlacementVersion() uint64 { return fc.ver }

// ConnGen counts successful (re)connects. A caching layer that sees it
// advance must assume a failover happened and drop everything: the node
// now answering may hold acknowledged writes this client's cache never
// observed.
func (fc *FailoverClient) ConnGen() uint64 { return fc.gen }

// retry runs op against the current connection, reconnecting and
// retrying on transport errors until MaxWait runs out. Semantic errors
// (not-exist, too-big, ...) surface immediately.
func (fc *FailoverClient) retry(op func(c *Client) error) error {
	deadline := time.Now().Add(fc.cfg.MaxWait)
	backoff := failoverBackoffMin
	attempts := 0
	for {
		if fc.c == nil {
			if err := fc.connect(deadline, &attempts); err != nil {
				return err
			}
		}
		attempts++
		err := op(fc.c)
		fc.absorbVer()
		if err == nil {
			return nil
		}
		if semantic(err) {
			return err
		}
		var nl *NotLeaderError
		if errors.As(err, &nl) {
			fc.hint = nl.Leader
		}
		// Anything else — broken pipe, timeout, store closed mid-
		// shutdown — condemns the connection: the pipeline may be
		// desynchronized, so the only safe continuation is a redial.
		fc.log.Info("connection condemned", "err", err)
		fc.c.Close()
		fc.c = nil
		if !time.Now().Add(backoff).Before(deadline) {
			return &ClusterUnavailableError{Attempts: attempts, LastErr: err}
		}
		time.Sleep(jitter(backoff))
		backoff = min(backoff*2, failoverBackoffMax)
	}
}

// Open returns a stable client-side handle for name, created if asked.
// Opens are deduplicated by (name, create): re-opening a name this
// client already holds returns the existing handle instead of growing
// the handle table — long-lived clients would otherwise leak an entry
// per call, and every reconnect's reopen loop would replay the whole
// accumulated history against the new server.
func (fc *FailoverClient) Open(name string, create bool) (uint32, error) {
	for i := range fc.handles {
		if fc.handles[i].name == name && fc.handles[i].create == create {
			return uint32(i), nil
		}
	}
	var remote uint32
	err := fc.retry(func(c *Client) error {
		h, err := c.Open(name, create)
		remote = h
		return err
	})
	if err != nil {
		return 0, err
	}
	fc.handles = append(fc.handles, fcHandle{name: name, create: create, remote: remote})
	return uint32(len(fc.handles) - 1), nil
}

// ReadAt fills p from offset off of handle h.
func (fc *FailoverClient) ReadAt(h uint32, p []byte, off uint64) (int, error) {
	if int(h) >= len(fc.handles) {
		return 0, ErrBadHandle
	}
	var n int
	var eof bool
	err := fc.retry(func(c *Client) error {
		m, err := c.ReadAt(fc.handles[h].remote, p, off)
		if err == io.EOF {
			n, eof = m, true
			return nil
		}
		n = m
		return err
	})
	if err != nil {
		return n, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at offset off of handle h. Retried writes are
// at-least-once; fixed-offset writes are idempotent.
func (fc *FailoverClient) WriteAt(h uint32, p []byte, off uint64) (int, error) {
	if int(h) >= len(fc.handles) {
		return 0, ErrBadHandle
	}
	var n int
	err := fc.retry(func(c *Client) error {
		m, err := c.WriteAt(fc.handles[h].remote, p, off)
		n = m
		return err
	})
	return n, err
}

// Truncate sets handle h's size to size. At-least-once but idempotent.
func (fc *FailoverClient) Truncate(h uint32, size uint64) error {
	if int(h) >= len(fc.handles) {
		return ErrBadHandle
	}
	return fc.retry(func(c *Client) error { return c.Truncate(fc.handles[h].remote, size) })
}

// Stat returns handle h's size and resident block count.
func (fc *FailoverClient) Stat(h uint32) (size uint64, blocks uint32, err error) {
	if int(h) >= len(fc.handles) {
		return 0, 0, ErrBadHandle
	}
	err = fc.retry(func(c *Client) error {
		s, b, err := c.Stat(fc.handles[h].remote)
		size, blocks = s, b
		return err
	})
	return size, blocks, err
}

// Promote asks whichever server currently answers to promote itself —
// the failover test's coordinator aims it at the surviving follower.
func (fc *FailoverClient) Promote() error {
	return fc.retry(func(c *Client) error { return c.Promote() })
}
