// Fault injection for replication links: a net.Conn wrapper that
// drops, duplicates, delays and severs length-prefixed frames on its
// write side, deterministically from a seed.
//
// The wrapper is frame-aware on purpose: protocol-level faults (a lost
// record frame, a duplicated ack) are what the replication layer's
// LSN chaining and dedup must survive, and tearing the byte stream
// mid-frame would only test the framing layer's (already fatal)
// response to garbage. Bytes that do not parse as frames fail open and
// pass through untouched.
package rangestore

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig parameterizes a fault-injected link. Probabilities are
// per frame in [0, 1]; zero values inject nothing.
type FaultConfig struct {
	Seed       int64         // RNG seed; same seed, same fault schedule
	Drop       float64       // probability a frame vanishes
	Dup        float64       // probability a frame is delivered twice
	Delay      float64       // probability a frame is held back (reordering)
	MaxDelay   time.Duration // upper bound for the hold-back
	SeverAfter int           // hard-close the link after this many frames (0: never)
	// SkipFirst exempts the first N frames from the schedule — it lets a
	// test protect the FOLLOW handshake and snapshot bootstrap while
	// tormenting the steady-state stream behind them.
	SkipFirst int
}

// FaultWrap wraps c's write side with cfg's fault schedule. Reads pass
// through untouched — wrap the end whose outgoing traffic should
// suffer (the leader's end to torment the record stream, the
// follower's to torment acks).
func FaultWrap(c net.Conn, cfg FaultConfig) net.Conn {
	return &faultConn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

type faultConn struct {
	net.Conn
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	buf     []byte // partial-frame accumulator
	sent    int
	severed bool
}

func (f *faultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.severed {
		return 0, io.ErrClosedPipe
	}
	f.buf = append(f.buf, p...)
	off := 0
	for {
		if len(f.buf)-off < 4 {
			break
		}
		n := binary.LittleEndian.Uint32(f.buf[off:])
		if n > maxReplFrame {
			// Not frame traffic; fail open with everything buffered.
			if _, err := f.Conn.Write(f.buf[off:]); err != nil {
				return 0, err
			}
			off = len(f.buf)
			break
		}
		if len(f.buf)-off < 4+int(n) {
			break
		}
		frame := append([]byte(nil), f.buf[off:off+4+int(n)]...)
		off += 4 + int(n)
		if err := f.deliver(frame); err != nil {
			return 0, err
		}
	}
	f.buf = append(f.buf[:0], f.buf[off:]...)
	return len(p), nil
}

// deliver applies the fault schedule to one frame. Called under mu, so
// frames (including delayed ones, which retake the lock) never
// interleave partially on the underlying conn.
func (f *faultConn) deliver(frame []byte) error {
	f.sent++
	if f.cfg.SeverAfter > 0 && f.sent > f.cfg.SeverAfter {
		f.severed = true
		f.Conn.Close()
		return io.ErrClosedPipe
	}
	if f.sent <= f.cfg.SkipFirst {
		_, err := f.Conn.Write(frame)
		return err
	}
	if f.rng.Float64() < f.cfg.Drop {
		return nil
	}
	dup := f.rng.Float64() < f.cfg.Dup
	if f.cfg.MaxDelay > 0 && f.rng.Float64() < f.cfg.Delay {
		d := time.Duration(f.rng.Int63n(int64(f.cfg.MaxDelay)) + 1)
		time.AfterFunc(d, func() {
			f.mu.Lock()
			if !f.severed {
				f.Conn.Write(frame)
				if dup {
					f.Conn.Write(frame)
				}
			}
			f.mu.Unlock()
		})
		return nil
	}
	if _, err := f.Conn.Write(frame); err != nil {
		return err
	}
	if dup {
		if _, err := f.Conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}
