// Follower-side WAL replication: Replica pulls committed records from a
// leader and applies them to a live local store.
//
// One goroutine per shard dials the leader, FOLLOWs its shard, and
// applies the stream: snapshot frames install checkpoint files wholesale
// (after wiping the shard — stale local files the leader has since
// removed cannot be fixed by log replay), record frames run through the
// same mutations recovery replays, and every applied batch is journaled
// to the follower's own WAL (verbatim, leader-assigned LSNs) and
// committed before it is acknowledged — so an acked record survives a
// follower crash too, and a restart resumes from a recoverable state.
//
// Cross-shard ordering is the one place per-shard streams are not
// enough: a migration's effects live in the destination shard's stream,
// while the file's older records sit in the source's, and the two
// streams race on the follower. Per-name apply floors close it — a
// snapshot or MIGRATE install raises the name's floor to its LSN, and
// any straggler record at or below the floor is skipped (its effect is
// already inside the installed image, exactly like recovery's
// floor-cut).
package rangestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// Replica reconnect pacing.
const (
	replicaBackoffMin = 10 * time.Millisecond
	replicaBackoffMax = 1 * time.Second
)

// Replica keeps a local store in sync with a leader. Build the store
// and journal with Recover (the follower journals what it applies),
// then StartReplica, then serve the store read-only via a Server with
// WithFollower.
type Replica struct {
	store *pfs.Sharded
	j     *Journal
	mp    *pfs.MapPlacement
	dial  func() (net.Conn, error)
	id    string // node id registered in the leader's ack quorum

	last      []uint64 // per-shard applied LSN; owned by that shard's loop
	needReset []bool   // force snapshot bootstrap on next attach (writes under mu; the shard loop reads its own slot)

	// lastContact is when any stream last heard from the leader
	// (handshake, record, or heartbeat) — the lease the elector watches.
	lastContact atomic.Int64

	fmu    sync.Mutex
	floors map[string]uint64 // per-name apply floor

	mu        sync.Mutex
	cond      sync.Cond
	conns     map[net.Conn]struct{}
	attached  []bool
	booting   []bool // per-shard: snapshot bootstrap in flight
	promoting bool   // Promote committed to running; refuses new bootstraps
	stopped   bool
	promoted  bool
	stopCh    chan struct{}
	wg        sync.WaitGroup

	// Observation hooks, wired by the owning server. setMetrics and
	// setLogger run in NewServerSharded — after StartReplica's pull
	// loops are already live — so both publish atomically.
	obsp atomic.Pointer[replicaObs]
	logp atomic.Pointer[obs.Logger]
}

// replicaObs bundles the follower-side counters so they publish as one
// pointer swap.
type replicaObs struct {
	reconnects   *obs.Counter
	bootstraps   *obs.Counter
	applied      *obs.Counter
	appliedBytes *obs.Counter
}

// setLogger publishes the logger the pull loops report through.
func (r *Replica) setLogger(l *obs.Logger) {
	if l != nil {
		r.logp.Store(l.With("role", "follower"))
	}
}

// logger returns the current logger (nil discards, per obs.Logger).
func (r *Replica) logger() *obs.Logger { return r.logp.Load() }

// ReplicaOption configures StartReplica.
type ReplicaOption func(*Replica)

// WithReplicaID sets the node id the replica registers under in the
// leader's ack quorum — its advertised address, shared with the
// elector. Required for clusters with more than one follower: anonymous
// followers collapse into a single quorum member.
func WithReplicaID(id string) ReplicaOption {
	return func(r *Replica) { r.id = id }
}

// StartReplica begins pulling from the leader reached by dial, one
// stream per shard of store. j must be the journal Recover returned for
// store; stats tells the replica whether it restarted over existing
// state (then every shard's first attach demands a snapshot bootstrap —
// local state may contain files the leader has since dropped). The
// store must use a MapPlacement: replicated creates and migrations pin
// names to the leader's chosen shards.
func StartReplica(store *pfs.Sharded, j *Journal, stats pfs.RecoverStats, dial func() (net.Conn, error), opts ...ReplicaOption) (*Replica, error) {
	mp, ok := store.Placement().(*pfs.MapPlacement)
	if !ok {
		return nil, errors.New("rangestore: replica requires a map placement")
	}
	if j == nil {
		return nil, errors.New("rangestore: replica requires a journal")
	}
	r := &Replica{
		store:     store,
		j:         j,
		mp:        mp,
		dial:      dial,
		last:      make([]uint64, store.NumShards()),
		needReset: make([]bool, store.NumShards()),
		floors:    make(map[string]uint64),
		conns:     make(map[net.Conn]struct{}),
		attached:  make([]bool, store.NumShards()),
		booting:   make([]bool, store.NumShards()),
		stopCh:    make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	r.cond.L = &r.mu
	r.touchContact()
	restarted := stats.Files > 0 || stats.MaxLSN > 0 || stats.Records > 0
	for i := 0; i < store.NumShards(); i++ {
		// The replica journals leader records itself; the local hooks
		// would double-journal every replayed mutation (with wrong,
		// locally assigned LSNs). Promote rewires them.
		store.Shard(i).SetJournalHook(nil)
		r.needReset[i] = restarted
	}
	r.wg.Add(store.NumShards())
	for i := 0; i < store.NumShards(); i++ {
		go r.run(i)
	}
	return r, nil
}

// stopping reports whether Stop or Promote has been called.
func (r *Replica) stopping() bool {
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

// sleep waits d or until the replica stops, whichever is first.
func (r *Replica) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.stopCh:
		return false
	case <-t.C:
		return true
	}
}

// track registers a live connection so Stop/Promote can sever it (the
// stream loop blocks in reads; only a close wakes it). Returns false
// when the replica is already stopping — the caller must drop the conn.
func (r *Replica) track(nc net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	r.conns[nc] = struct{}{}
	return true
}

func (r *Replica) untrack(nc net.Conn) {
	r.mu.Lock()
	delete(r.conns, nc)
	r.mu.Unlock()
}

// run is shard's pull loop: dial, stream, reconnect with bounded
// exponential backoff for as long as the replica lives.
func (r *Replica) run(shard int) {
	defer r.wg.Done()
	log := r.logger
	backoff := replicaBackoffMin
	connected := false
	for !r.stopping() {
		if connected {
			// Not the first attach attempt: whatever follows is a
			// reconnect, whether the last session died or never dialed.
			if o := r.obsp.Load(); o != nil {
				o.reconnects.Add(1)
			}
		}
		nc, err := r.dial()
		if err != nil {
			log().Debug("leader dial failed", "shard", shard, "err", err)
			if !r.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, replicaBackoffMax)
			continue
		}
		connected = true
		if !r.track(nc) {
			nc.Close()
			return
		}
		progressed := r.stream(shard, nc)
		nc.Close()
		r.untrack(nc)
		if !r.stopping() {
			log().Info("replication stream ended", "shard", shard, "lsn", r.last[shard], "progressed", progressed)
		}
		if progressed {
			backoff = replicaBackoffMin
		} else {
			backoff = min(backoff*2, replicaBackoffMax)
		}
		if !r.sleep(backoff) {
			return
		}
	}
}

// markAttached records that shard completed a FOLLOW handshake (and
// bootstrap, when one ran) — the signal WaitAttached watches.
func (r *Replica) markAttached(shard int) {
	r.mu.Lock()
	r.attached[shard] = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// touchContact stamps now as the last time a leader was heard from.
func (r *Replica) touchContact() { r.lastContact.Store(time.Now().UnixNano()) }

// LastContact returns when any stream last heard from the leader — the
// lease the elector's timeout runs against.
func (r *Replica) LastContact() time.Time { return time.Unix(0, r.lastContact.Load()) }

// setNeedReset flips shard's pending-snapshot flag under mu so Fresh
// can read it from other goroutines; the shard's own loop reads its
// slot without the lock (it is the only writer's goroutine).
func (r *Replica) setNeedReset(shard int, v bool) {
	r.mu.Lock()
	r.needReset[shard] = v
	r.mu.Unlock()
}

// beginBootstrap claims shard's bootstrap slot; it refuses when a
// promotion has been committed to — a snapshot wipe must never race a
// promotion, or the new leader would serve a half-installed shard.
func (r *Replica) beginBootstrap(shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoting || r.stopped {
		return false
	}
	r.booting[shard] = true
	return true
}

func (r *Replica) endBootstrap(shard int) {
	r.mu.Lock()
	r.booting[shard] = false
	r.mu.Unlock()
}

// Fresh reports whether the replica is election-grade: every shard
// attached at least once, no shard owed a snapshot wipe, no bootstrap
// in flight. Only fresh replicas stand as candidates. A non-fresh
// replica is still a safe catch-up source — its WAL durably holds
// everything it ever acked — it just must not lead until its own state
// converges.
func (r *Replica) Fresh() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return true
	}
	if r.stopped {
		return false
	}
	for i := range r.attached {
		if !r.attached[i] || r.needReset[i] || r.booting[i] {
			return false
		}
	}
	return true
}

// WaitAttached blocks until every shard's stream has attached to the
// leader at least once, or d elapses.
func (r *Replica) WaitAttached(d time.Duration) error {
	deadline := time.Now().Add(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		all := true
		for _, a := range r.attached {
			all = all && a
		}
		if all {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return errors.New("rangestore: replica attach timed out")
		}
		t := time.AfterFunc(remain, func() {
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
		r.cond.Wait()
		t.Stop()
	}
}

// stream runs one FOLLOW session for shard over nc; it returns whether
// the session made progress (handshake completed), which resets the
// reconnect backoff.
func (r *Replica) stream(shard int, nc net.Conn) bool {
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)

	req := Request{Op: OpFollow, Dst: uint32(shard), Off: r.last[shard], Epoch: r.j.Epoch(), Name: r.id}
	if r.needReset[shard] {
		req.Flags = FollowReset
	}
	buf, err := AppendRequest(nil, &req)
	if err != nil {
		return false
	}
	if _, err := bw.Write(buf); err != nil {
		return false
	}
	if err := bw.Flush(); err != nil {
		return false
	}
	body, err := ReadFrame(br, nil)
	if err != nil {
		return false
	}
	var resp Response
	if err := ParseResponse(body, &resp); err != nil || resp.Op != OpFollow || resp.Err() != nil {
		return false
	}
	// Epoch handshake: never follow a leader behind an epoch this node
	// has promised (its acks would resurrect a deposed regime); adopt a
	// later one so the new epoch propagates through the cluster.
	sessE := resp.Epoch
	if sessE < r.j.Epoch() {
		return false
	}
	if sessE > r.j.Epoch() {
		if _, err := r.j.AdvanceEpoch(sessE); err != nil {
			return false
		}
	}
	r.touchContact()

	if resp.EOF {
		// Snapshot bootstrap: wipe, install the checkpoint image, and
		// persist the cut — resetShard floors the local WAL at the
		// leader's checkpoint floor and writes a local checkpoint, so a
		// follower crash right here recovers to this exact state. The
		// begin/end pair fences promotion: a half-installed shard must
		// never be promoted.
		if !r.beginBootstrap(shard) {
			return false
		}
		ok := r.bootstrap(shard, br, resp.Off, int(resp.N))
		r.endBootstrap(shard)
		if !ok {
			return false
		}
		if o := r.obsp.Load(); o != nil {
			o.bootstraps.Add(1)
		}
		r.logger().Info("snapshot bootstrap installed", "shard", shard, "floor", resp.Off, "files", resp.N)
		r.last[shard] = resp.Off
		r.setNeedReset(shard, false)
	}
	r.markAttached(shard)

	// The attach itself must be acknowledged: after a snapshot bootstrap
	// the shard provably holds everything at or below the floor, and on
	// a plain resume the previous session's tail may be applied and
	// journaled with its ack lost in the reconnect. Either way the
	// leader's gate can be waiting on an LSN this stream will never
	// carry again — acking the applied frontier now is the only thing
	// that unblocks it. Committed first: an ack promises durability.
	if err := r.j.wals[shard].CommitAll(r.j.mode != pfs.SyncOff); err != nil {
		return true
	}
	var frame []byte
	ack := appendAckFrame(nil, r.last[shard], sessE)
	if _, err := bw.Write(ack); err != nil {
		return true
	}
	if err := bw.Flush(); err != nil {
		return true
	}
	frame = ack[:0]

	// Apply loop. Records are applied and journaled one by one, but
	// committed and acknowledged per network batch: while more frames
	// sit in the read buffer, the fsync and the ack wait. Duplicates
	// (stream overlap after a reconnect) are skipped, but still reach
	// the batch boundary below — a batch ending in duplicates must
	// re-ack the frontier, or a leader resending a record whose ack was
	// lost would wait on a confirmation that never comes. Heartbeats
	// refresh the lease and carry the leader's epoch; the moment this
	// node's own epoch moves past the session's (it granted a vote), the
	// stream severs — acking a deposed leader is how splits happen.
	var pendEnd int64
	for {
		b, err := ReadFrameMax(br, frame, maxReplFrame)
		if err != nil {
			return true
		}
		frame = b[:0]
		r.touchContact()
		if len(b) == 9 && b[0] == repHeartbeat {
			if he := binary.LittleEndian.Uint64(b[1:]); he > sessE {
				if _, err := r.j.AdvanceEpoch(he); err != nil {
					return true
				}
				sessE = he
			}
		} else {
			if len(b) < 9 || b[0] != repRec {
				return true // unknown frame: stream out of sync, reconnect
			}
			prev := binary.LittleEndian.Uint64(b[1:])
			raw := b[9:]
			rec, n, err := pfs.DecodeRecord(raw)
			if err != nil || n != len(raw) {
				return true // corrupt or trailing garbage: reconnect re-syncs
			}
			if int(rec.Shard) != shard {
				return true
			}
			if rec.LSN > r.last[shard] {
				if prev != r.last[shard] {
					// Gap: the chain link names a record this replica never
					// applied. Reconnect resumes from last, which re-streams
					// the missing span.
					return true
				}
				if err := r.applyRecord(&rec); err != nil {
					// Divergence the log cannot fix; force a snapshot rebuild.
					r.setNeedReset(shard, true)
					return true
				}
				end, err := r.j.wals[shard].AppendPrepared(&rec)
				if err != nil {
					return true
				}
				if o := r.obsp.Load(); o != nil {
					o.applied.Add(1)
					o.appliedBytes.Add(int64(len(raw)))
				}
				pendEnd = end
				r.last[shard] = rec.LSN
			}
		}
		if br.Buffered() > 0 {
			continue
		}
		if pendEnd != 0 {
			if err := r.j.commitShard(shard, pendEnd); err != nil {
				return true
			}
			pendEnd = 0
		}
		if r.j.Epoch() > sessE {
			return true // promised a later epoch: stop acking this leader
		}
		ack := appendAckFrame(frame[:0], r.last[shard], sessE)
		frame = ack[:0]
		if _, err := bw.Write(ack); err != nil {
			return true
		}
		if err := bw.Flush(); err != nil {
			return true
		}
	}
}

// Fetch pulls shard's records beyond this replica's frontier from the
// node at nc — the election winner's pre-promotion catch-up, run after
// halt() has quiesced the shard loops (the replica then owns its
// frontiers). The source serves its durable cut and terminates with an
// end frame; Fetch fails on any gap, leaving promotion to be abandoned
// rather than serving holes.
func (r *Replica) Fetch(shard int, nc net.Conn, timeout time.Duration) error {
	defer nc.Close()
	if timeout > 0 {
		if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	req := Request{Op: OpFollow, Dst: uint32(shard), Off: r.last[shard],
		Flags: FollowFetch, Epoch: r.j.Epoch(), Name: r.id}
	if r.needReset[shard] {
		req.Flags |= FollowReset
	}
	buf, err := AppendRequest(nil, &req)
	if err != nil {
		return err
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	body, err := ReadFrame(br, nil)
	if err != nil {
		return err
	}
	var resp Response
	if err := ParseResponse(body, &resp); err != nil {
		return err
	}
	if resp.Op != OpFollow {
		return fmt.Errorf("rangestore: fetch: unexpected %s response", resp.Op)
	}
	if err := resp.Err(); err != nil {
		return err
	}
	if resp.EOF {
		if !r.bootstrap(shard, br, resp.Off, int(resp.N)) {
			return fmt.Errorf("rangestore: fetch: shard %d snapshot bootstrap failed", shard)
		}
		r.last[shard] = resp.Off
		r.setNeedReset(shard, false)
	}
	var pendEnd int64
	var frame []byte
	for {
		b, err := ReadFrameMax(br, frame, maxReplFrame)
		if err != nil {
			return err
		}
		frame = b[:0]
		if len(b) == 9 && b[0] == repEnd {
			endLSN := binary.LittleEndian.Uint64(b[1:])
			if r.last[shard] < endLSN {
				return fmt.Errorf("rangestore: fetch: shard %d ended at lsn %d, applied %d", shard, endLSN, r.last[shard])
			}
			if pendEnd != 0 {
				return r.j.commitShard(shard, pendEnd)
			}
			return nil
		}
		if len(b) < 9 || b[0] != repRec {
			return fmt.Errorf("rangestore: fetch: shard %d unexpected frame", shard)
		}
		prev := binary.LittleEndian.Uint64(b[1:])
		raw := b[9:]
		rec, n, err := pfs.DecodeRecord(raw)
		if err != nil || n != len(raw) {
			return fmt.Errorf("rangestore: fetch: shard %d corrupt record frame", shard)
		}
		if int(rec.Shard) != shard {
			return fmt.Errorf("rangestore: fetch: record for shard %d on shard %d stream", rec.Shard, shard)
		}
		if rec.LSN <= r.last[shard] {
			continue
		}
		if prev != r.last[shard] {
			return fmt.Errorf("rangestore: fetch: shard %d gap at lsn %d (chain %d, applied %d)", shard, rec.LSN, prev, r.last[shard])
		}
		if err := r.applyRecord(&rec); err != nil {
			return err
		}
		end, err := r.j.wals[shard].AppendPrepared(&rec)
		if err != nil {
			return err
		}
		if o := r.obsp.Load(); o != nil {
			o.applied.Add(1)
			o.appliedBytes.Add(int64(len(raw)))
		}
		pendEnd = end
		r.last[shard] = rec.LSN
	}
}

// bootstrap wipes shard and installs the leader's checkpoint image.
func (r *Replica) bootstrap(shard int, br *bufio.Reader, floor uint64, nfiles int) bool {
	fs := r.store.Shard(shard)
	for _, name := range fs.List() {
		fs.Remove(name)
		r.mp.Delete(name)
		r.fmu.Lock()
		delete(r.floors, name)
		r.fmu.Unlock()
	}
	var frame []byte
	for i := 0; i < nfiles; i++ {
		b, err := ReadFrameMax(br, frame, maxReplFrame)
		if err != nil {
			return false
		}
		frame = b[:0]
		if len(b) < 3 || b[0] != repSnapFile {
			return false
		}
		nameLen := int(binary.LittleEndian.Uint16(b[1:]))
		if 3+nameLen > len(b) {
			return false
		}
		name := string(b[3 : 3+nameLen])
		f, err := r.createIn(shard, name)
		if err != nil {
			return false
		}
		if err := f.ApplySnapshot(b[3+nameLen:]); err != nil {
			return false
		}
		r.setFloor(name, floor)
	}
	return r.j.resetShard(shard, floor) == nil
}

// createIn opens-or-creates name pinned to shard — the follower obeys
// the leader's placement, not its own hash.
func (r *Replica) createIn(shard int, name string) (*pfs.File, error) {
	if r.store.ShardIndex(name) != shard {
		r.mp.Set(name, shard)
	}
	f, err := r.store.Create(name)
	if errors.Is(err, pfs.ErrExist) {
		f, err = r.store.Open(name)
	}
	return f, err
}

func (r *Replica) floor(name string) uint64 {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	return r.floors[name]
}

func (r *Replica) setFloor(name string, lsn uint64) {
	r.fmu.Lock()
	if lsn > r.floors[name] {
		r.floors[name] = lsn
	}
	r.fmu.Unlock()
}

// applyRecord replays one leader record against the local store — the
// live-traffic analogue of recovery's replay, with the per-name floor
// standing in for recovery's global ordering.
func (r *Replica) applyRecord(rec *pfs.Record) error {
	if rec.Kind != pfs.RecMigrate && rec.LSN <= r.floor(rec.Name) {
		return nil // already inside an installed snapshot image
	}
	switch rec.Kind {
	case pfs.RecCreate:
		_, err := r.createIn(int(rec.Shard), rec.Name)
		return err
	case pfs.RecWrite, pfs.RecAppend:
		f, err := r.store.Open(rec.Name)
		if err != nil {
			return err
		}
		_, err = f.WriteAt(rec.Data, rec.Off)
		return err
	case pfs.RecTruncate:
		f, err := r.store.Open(rec.Name)
		if err != nil {
			return err
		}
		f.Truncate(rec.Size)
		return nil
	case pfs.RecMigrate:
		if rec.LSN <= r.floor(rec.Name) {
			return nil
		}
		dst := int(rec.Dst)
		f, cur, err := r.store.Resolve(rec.Name)
		switch {
		case errors.Is(err, pfs.ErrNotExist):
			// The create may still be in flight on the source shard's
			// stream; the snapshot carries the full state regardless.
			if f, err = r.createIn(dst, rec.Name); err != nil {
				return err
			}
		case err != nil:
			return err
		case cur != dst:
			if err := r.store.Migrate(rec.Name, dst); err != nil {
				return err
			}
			if f, err = r.store.Open(rec.Name); err != nil {
				return err
			}
		}
		if err := f.ApplySnapshot(rec.Data); err != nil {
			return err
		}
		r.setFloor(rec.Name, rec.LSN)
		return nil
	default:
		return fmt.Errorf("rangestore: replica: unknown record kind %d", rec.Kind)
	}
}

// halt severs every stream and waits the loops out. Shared by Stop and
// Promote; idempotent.
func (r *Replica) halt() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stopCh)
	}
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Stop severs the streams and stops the replica without promoting it —
// teardown, not failover.
func (r *Replica) Stop() {
	r.halt()
}

// Promote flips the replica into a writable store: streams are severed
// and drained (every record already received is applied, journaled and
// committed), and the store's journal hooks are rewired so subsequent
// local mutations write ahead to the local WAL. The caller makes the
// server writable only after Promote returns (WithFollower's server
// does this in its PROMOTE handler). A replica mid-snapshot-bootstrap
// refuses with ErrNotReady — promoting a half-installed shard would
// serve partial state as truth; the caller retries once the bootstrap
// finishes (or dies). Idempotent once it has succeeded.
func (r *Replica) Promote() error {
	r.mu.Lock()
	for i, b := range r.booting {
		if b {
			r.mu.Unlock()
			return fmt.Errorf("%w: shard %d", ErrNotReady, i)
		}
	}
	r.promoting = true
	r.mu.Unlock()
	r.halt()
	r.mu.Lock()
	already := r.promoted
	r.promoted = true
	r.mu.Unlock()
	if already {
		return nil
	}
	var first error
	for i := 0; i < r.store.NumShards(); i++ {
		// The stream loops commit per batch; a loop killed between
		// journaling and committing leaves a tail this sweep makes
		// durable. Applied-but-unjournaled records cannot exist (the
		// loop journals before advancing), so after this the local log
		// covers everything the store holds.
		if err := r.j.wals[i].CommitAll(r.j.mode != pfs.SyncOff); err != nil && first == nil {
			first = err
		}
	}
	place := r.store.Placement()
	for i := 0; i < r.store.NumShards(); i++ {
		r.store.Shard(i).SetJournalHook(pfs.JournalHook(r.j.wals[i], place))
	}
	return first
}
