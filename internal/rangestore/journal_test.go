package rangestore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pfs"
)

// walServer boots a WAL-backed server over d (an empty dir boots empty).
func walServer(t testing.TB, d pfs.Dir, cfg RecoverConfig, opts ...ServerOption) (*Server, *pfs.Sharded, *Journal, pfs.RecoverStats) {
	t.Helper()
	store, j, stats, err := Recover(d, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	opts = append(opts, WithJournal(j), WithRecovered(stats))
	srv := NewServerSharded(store, opts...)
	t.Cleanup(func() { srv.Close() })
	return srv, store, j, stats
}

// TestJournalServeRecoverServe drives the full life cycle over every
// sync mode: serve mutations, crash (clean cut at the durable
// frontier), recover into a fresh server, verify every acknowledged
// mutation, and keep serving — including re-journaling the second life.
func TestJournalServeRecoverServe(t *testing.T) {
	for _, mode := range []pfs.SyncMode{pfs.SyncOff, pfs.SyncBatch, pfs.SyncAlways} {
		t.Run("fsync="+mode.String(), func(t *testing.T) {
			d := pfs.NewMemDir()
			cfg := RecoverConfig{Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: mode}
			srv, _, j, _ := walServer(t, d, cfg)
			cl := pipeClient(t, srv)

			h, err := cl.Open("journal-f", true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.WriteAt(h, []byte("written"), 10); err != nil {
				t.Fatal(err)
			}
			off, err := cl.Append(h, []byte("+appended"))
			if err != nil {
				t.Fatal(err)
			}
			if off != 17 {
				t.Fatalf("append landed at %d, want 17", off)
			}
			if err := cl.Truncate(h, 20); err != nil {
				t.Fatal(err)
			}
			// An empty created file must survive on its CREATE record alone.
			if _, err := cl.Open("journal-empty", true); err != nil {
				t.Fatal(err)
			}
			// Under SyncOff nothing is fsynced; close the journal to
			// flush so the "crash" models a clean shutdown instead.
			if mode == pfs.SyncOff {
				srv.Close()
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			}

			d2 := d.CrashCopy(nil)
			srv2, store2, _, stats := walServer(t, d2, RecoverConfig{
				Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: mode,
			})
			if stats.Files != 2 {
				t.Fatalf("recovered %d files, want 2 (%v)", stats.Files, stats)
			}
			fi, err := store2.Stat("journal-f")
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size != 20 {
				t.Fatalf("size %d after recovery, want 20", fi.Size)
			}
			cl2 := pipeClient(t, srv2)
			h2, err := cl2.Open("journal-f", false)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 20)
			if _, err := cl2.ReadAt(h2, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			want := make([]byte, 20)
			copy(want[10:], "written+ap")
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered %q, want %q", got, want)
			}
			if _, err := cl2.Open("journal-empty", false); err != nil {
				t.Fatalf("empty file lost: %v", err)
			}

			// Second life journals too: mutate, crash again, recover again.
			if _, err := cl2.WriteAt(h2, []byte("again"), 0); err != nil {
				t.Fatal(err)
			}
			if mode == pfs.SyncOff {
				return // nothing promised without fsync; stop here
			}
			store3, _, _, err := pfs.RecoverSharded(d2.CrashCopy(nil), 4, nil, pfs.NewMapPlacement(nil))
			if err != nil {
				t.Fatal(err)
			}
			f3, err := store3.Open("journal-f")
			if err != nil {
				t.Fatal(err)
			}
			head := make([]byte, 5)
			f3.ReadAt(head, 0)
			if string(head) != "again" {
				t.Fatalf("second-life write lost: %q", head)
			}
		})
	}
}

// TestJournalCheckpointUnderTraffic serves enough writes through a tiny
// checkpoint threshold that several compactions fire mid-traffic, then
// recovers and verifies the final state — checkpoint + live log tail.
func TestJournalCheckpointUnderTraffic(t *testing.T) {
	d := pfs.NewMemDir()
	srv, _, j, _ := walServer(t, d, RecoverConfig{
		Shards: 2, Sync: pfs.SyncBatch, CheckpointBytes: 8 << 10,
	})
	cl := pipeClient(t, srv)
	const files = 4
	handles := make([]uint32, files)
	for i := range handles {
		h, err := cl.Open(fmt.Sprintf("ckpt-%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	payload := bytes.Repeat([]byte{0xEE}, 512)
	for round := 0; round < 128; round++ {
		h := handles[round%files]
		if _, err := cl.WriteAt(h, payload, uint64(round)*64); err != nil {
			t.Fatal(err)
		}
		payload[0] = byte(round) // vary content so replay order matters
	}
	// Checkpoints run on background goroutines; wait them out so the
	// crash snapshot deterministically contains at least one.
	j.WaitCheckpoints()

	store2, _, stats, err := pfs.RecoverSharded(d.CrashCopy(nil), 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromCkpt == 0 {
		t.Fatalf("no checkpoint fired despite %d writes past an 8 KiB threshold (%v)", 128, stats)
	}
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("ckpt-%d", i)
		fi, err := store2.Stat(name)
		if err != nil {
			t.Fatalf("%s lost: %v", name, err)
		}
		// Last write to this file was at round 124+i → offset (124+i)*64.
		wantSize := uint64(124+i)*64 + 512
		if fi.Size != wantSize {
			t.Fatalf("%s: size %d, want %d", name, fi.Size, wantSize)
		}
	}
}

// TestServerRejectsLongNames: OPEN/MIGRATE names past pfs.MaxName are
// refused at the protocol boundary — names are journaled with a
// bounded length prefix, and an over-long one reaching the WAL encoder
// would otherwise poison the journal (see pfs.ErrNameTooLong).
func TestServerRejectsLongNames(t *testing.T) {
	d := pfs.NewMemDir()
	srv, _, _, _ := walServer(t, d, RecoverConfig{
		Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	cl := pipeClient(t, srv)
	long := strings.Repeat("n", pfs.MaxName+1)
	if _, err := cl.Open(long, true); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("OPEN with %d-byte name = %v, want ErrBadRequest", len(long), err)
	}
	if err := cl.Migrate(long, 1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("MIGRATE with %d-byte name = %v, want ErrBadRequest", len(long), err)
	}
	// At the cap the name serves, journals and recovers normally.
	capped := strings.Repeat("n", pfs.MaxName)
	h, err := cl.Open(capped, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteAt(h, []byte("fits"), 0); err != nil {
		t.Fatal(err)
	}
	store2, _, _, err := pfs.RecoverSharded(d.CrashCopy(nil), 2, nil, pfs.NewMapPlacement(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Open(capped); err != nil {
		t.Fatalf("max-length name lost across recovery: %v", err)
	}
}

// TestRecoveredProtocolOp: the RECOVERED stat reports replay over the
// wire, and a journal-less server answers WAL=false.
func TestRecoveredProtocolOp(t *testing.T) {
	d := pfs.NewMemDir()
	cfg := RecoverConfig{Shards: 2, Sync: pfs.SyncBatch}
	srv, _, _, _ := walServer(t, d, cfg)
	cl := pipeClient(t, srv)
	h, err := cl.Open("rec", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteAt(h, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}

	srv2, _, _, _ := walServer(t, d.CrashCopy(nil), cfg)
	info, err := pipeClient(t, srv2).Recovered()
	if err != nil {
		t.Fatal(err)
	}
	if !info.WAL || info.Shards != 2 || info.Files != 1 || info.Records != 2 {
		t.Fatalf("RECOVERED = %+v", info)
	}

	plain := newTestServer(t, nil)
	info, err = pipeClient(t, plain).Recovered()
	if err != nil {
		t.Fatal(err)
	}
	if info.WAL || info.Files != 0 {
		t.Fatalf("journal-less RECOVERED = %+v", info)
	}
}

// TestJournalMigrateServed: a served MIGRATE is journaled durably and a
// post-crash recovery lands the file on the destination with intact
// contents.
func TestJournalMigrateServed(t *testing.T) {
	d := pfs.NewMemDir()
	cfg := RecoverConfig{Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch}
	srv, store, _, _ := walServer(t, d, cfg)
	cl := pipeClient(t, srv)
	const name = "migrate-me"
	h, err := cl.Open(name, true)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("contents that must survive the move")
	if _, err := cl.WriteAt(h, content, 64); err != nil {
		t.Fatal(err)
	}
	src := store.ShardIndex(name)
	dst := (src + 1) % 4
	if err := cl.Migrate(name, dst); err != nil {
		t.Fatal(err)
	}
	// Post-migration traffic journals against the new shard's log.
	if _, err := cl.WriteAt(h, []byte("after"), 0); err != nil {
		t.Fatal(err)
	}

	store2, _, stats, err := pfs.RecoverSharded(d.CrashCopy(nil), 4, nil, pfs.NewMapPlacement(nil))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if got := store2.ShardIndex(name); got != dst {
		t.Fatalf("recovered onto shard %d, want %d", got, dst)
	}
	if _, err := store2.Shard(src).Open(name); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatalf("source shard still holds the file: %v", err)
	}
	f, err := store2.Shard(dst).Open(name)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64+len(content))
	f.ReadAt(got, 0)
	if !bytes.Equal(got[64:], content) || string(got[:5]) != "after" {
		t.Fatalf("recovered content diverged: %q", got)
	}
}

// TestAckWaitsForSyncFrontier parks a batch's fsync mid-flight and
// asserts the client response is withheld until the sync frontier
// covers the batch — the served-path regression test for "ack ⇒
// durable" under the pipelined commit: acks (and therefore replication
// acks, which ride the same commit gate) never outrun the frontier.
func TestAckWaitsForSyncFrontier(t *testing.T) {
	var armed atomic.Bool
	gate := make(chan struct{})
	md := pfs.NewMemDir()
	sd := &pfs.SlowDir{Dir: md, OnSync: func(string) {
		if armed.Load() {
			<-gate
		}
	}}
	srv, store, j, _ := walServer(t, sd, RecoverConfig{
		Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	cl := pipeClient(t, srv)
	h, err := cl.Open("ack-gate", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteAt(h, []byte("pre"), 0); err != nil {
		t.Fatal(err)
	}

	armed.Store(true)
	if _, err := cl.Send(&Request{Op: OpAppend, Handle: h, Data: []byte("gated")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	acked := make(chan error, 1)
	go func() {
		var resp Response
		if err := cl.Recv(&resp); err != nil {
			acked <- err
			return
		}
		acked <- resp.Err()
	}()

	// Prove the batch reached the sync stage: its record is on the
	// write frontier with the covering fsync parked on the gate.
	shard := store.ShardIndex("ack-gate")
	deadline := time.Now().Add(5 * time.Second)
	for j.wals[shard].SyncLag() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch fsync never went in flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case err := <-acked:
		t.Fatalf("response flushed (%v) with the batch's fsync still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	select {
	case err := <-acked:
		if err != nil {
			t.Fatalf("post-sync ack: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack never arrived after the fsync completed")
	}
}
