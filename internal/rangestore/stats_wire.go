// Wire codec for the STATS response: an obs.Snapshot as a typed,
// compact binary payload.
//
//	stats  = n:u32 entry ×n
//	entry  = kind:u8 nameLen:u16 name labelsLen:u16 labels <kind-specific>
//	counter/gauge  value:i64
//	histogram      sum:i64 nbuckets:u8 count:u64 ×nbuckets
//
// The bucket count is carried per entry so a snapshot survives a
// histogram resolution change on either side: a decoder keeps the
// buckets both sides know about and drops (encoder-side) or zeroes
// (decoder-side) the rest — quantiles degrade, nothing misparses.
package rangestore

import (
	"encoding/binary"

	"repro/internal/obs"
)

// maxStatsEntries caps a decoded snapshot. Entries are ≥ 6 bytes on the
// wire, so this also keeps a hostile frame from ballooning memory.
const maxStatsEntries = 1 << 16

// appendStats encodes snap (nil encodes as empty).
func appendStats(dst []byte, snap *obs.Snapshot) []byte {
	if snap == nil {
		return binary.LittleEndian.AppendUint32(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(snap.Entries)))
	for i := range snap.Entries {
		e := &snap.Entries[i]
		dst = append(dst, byte(e.Kind))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Labels)))
		dst = append(dst, e.Labels...)
		if e.Kind == obs.KindHistogram && e.Hist != nil {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Hist.Sum))
			dst = append(dst, byte(obs.NumHistBuckets))
			for _, b := range e.Hist.Buckets {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(b))
			}
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Value))
		}
	}
	return dst
}

// parseStats decodes a snapshot from c; on malformed input it flags
// c.err (the caller turns that into ErrBadRequest) and returns nil.
func parseStats(c *cursor) *obs.Snapshot {
	n := c.u32()
	if c.err || n > maxStatsEntries {
		c.err = true
		return nil
	}
	snap := &obs.Snapshot{Entries: make([]obs.Entry, 0, n)}
	for i := uint32(0); i < n && !c.err; i++ {
		e := obs.Entry{Kind: obs.Kind(c.u8())}
		e.Name = string(c.take(int(c.u16())))
		e.Labels = string(c.take(int(c.u16())))
		if e.Kind == obs.KindHistogram {
			h := &obs.HistSnapshot{Sum: int64(c.u64())}
			nb := int(c.u8())
			for b := 0; b < nb; b++ {
				v := int64(c.u64())
				if b < obs.NumHistBuckets {
					h.Buckets[b] = v
				}
			}
			e.Hist = h
		} else {
			e.Value = int64(c.u64())
		}
		snap.Entries = append(snap.Entries, e)
	}
	if c.err {
		return nil
	}
	return snap
}
