package rangestore

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// syncBuffer lets the test read what the server's logger wrote after
// the connection goroutines are done.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowTraceEmitsBreakdown drives a server with -trace-slow=0
// semantics (every batch traced) and checks the structured breakdown
// lines come out with their stage keys.
func TestSlowTraceEmitsBreakdown(t *testing.T) {
	var out syncBuffer
	srv := NewServerSharded(pfs.NewSharded(2, nil),
		WithLogger(obs.NewLogger(&out, obs.LevelInfo)),
		WithSlowTrace(0))
	defer srv.Close()

	cl := pipeClient(t, srv)
	h, err := cl.Open("traced", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteAt(h, []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 7)
	if _, err := cl.ReadAt(h, p, 0); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close() // drain so every trace line is flushed

	log := out.String()
	if !strings.Contains(log, "slow-batch") {
		t.Fatalf("no slow-batch line at -trace-slow=0:\n%s", log)
	}
	for _, key := range []string{"slow-op", "op=write", "op=read", "decode=", "lock=", "apply=", "encode=", "journal=", "flush=", "shard=", "status=OK"} {
		if !strings.Contains(log, key) {
			t.Errorf("trace output missing %q:\n%s", key, log)
		}
	}
}

// TestSlowTraceOffByDefault: a server without WithSlowTrace must log no
// per-batch lines even with a logger attached.
func TestSlowTraceOffByDefault(t *testing.T) {
	var out syncBuffer
	srv := NewServerSharded(pfs.NewSharded(2, nil),
		WithLogger(obs.NewLogger(&out, obs.LevelInfo)))
	defer srv.Close()

	cl := pipeClient(t, srv)
	if _, err := cl.Open("quiet", true); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()
	if log := out.String(); strings.Contains(log, "slow-batch") {
		t.Fatalf("tracing fired without being armed:\n%s", log)
	}
}
