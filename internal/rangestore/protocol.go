// Package rangestore is a concurrent network byte-range store: a server
// exposing one pfs file system over a compact length-prefixed binary
// protocol, and a client speaking it. It is the first component in this
// repository where the paper's range locks are exercised by request
// traffic instead of a benchmark loop (§8 names parallel file I/O as the
// natural next application).
//
// Wire format — every frame is a 32-bit little-endian body length
// followed by the body:
//
//	request  = op:u8 seq:u32 <op-specific>
//	response = op:u8 seq:u32 status:u8 <op-specific | error message>
//
// Op-specific request payloads:
//
//	OPEN      flags:u8 name:bytes
//	READ      handle:u32 off:u64 length:u32
//	WRITE     handle:u32 off:u64 data:bytes
//	APPEND    handle:u32 data:bytes
//	TRUNCATE  handle:u32 size:u64
//	STAT      handle:u32
//	MIGRATE   dst:u32 name:bytes
//	SHARDS    (empty)
//	RECOVERED (empty)
//	FOLLOW    shard:u32 fromlsn:u64 flags:u8 epoch:u64 node:bytes
//	PROMOTE   (empty)
//	STATS     (empty)
//	STATE     (empty)
//	VOTE      epoch:u64 candidate:bytes
//
// Op-specific response payloads (status == StatusOK):
//
//	OPEN      handle:u32
//	READ      eof:u8 data:bytes
//	WRITE     n:u32
//	APPEND    off:u64
//	TRUNCATE  (empty)
//	STAT      size:u64 blocks:u32
//	MIGRATE   (empty)
//	SHARDS    n:u32 count:u64 ×n
//	RECOVERED wal:u8 shards:u32 files:u32 fromckpt:u32 migrations:u32 records:u64 torn:u64 maxlsn:u64
//	FOLLOW    snap:u8 floor:u64 nfiles:u32 epoch:u64
//	PROMOTE   (empty)
//	STATS     n:u32 entry ×n                (see stats_wire.go for the entry layout)
//	STATE     leader:u8 fresh:u8 epoch:u64 n:u32 lsn:u64 ×n leaderaddr:bytes
//	VOTE      granted:u8 fresh:u8 epoch:u64 n:u32 lsn:u64 ×n
//
// OPEN and MIGRATE names are limited to pfs.MaxName (4 KiB) bytes —
// names are journaled to the write-ahead log with a bounded length
// prefix — and longer ones are answered with StatusBadRequest.
//
// MIGRATE and SHARDS are the placement admin surface: MIGRATE re-homes
// a file onto shard dst (map placement only — the server refuses it
// under static placements), SHARDS returns the per-shard request tally
// so load generators can report server-observed placement skew instead
// of predicting it client-side (a prediction that dynamic placement
// invalidates).
//
// RECOVERED (protocol v2, added with the write-ahead log) reports what
// the server's boot-time recovery replayed: whether a WAL is attached
// at all, and the file/record/migration/torn-byte counts of the replay.
// A v1 server answers it with a bad-request status, which v2 clients
// surface as ErrBadRequest — the version bump is observable without a
// handshake.
//
// FOLLOW and PROMOTE (protocol v3) are the replication surface. FOLLOW
// converts the connection into a one-shard replication stream: the
// follower names the shard and the LSN it already holds (fromlsn = its
// last applied record, 0 when cold; FollowReset forces a snapshot
// bootstrap regardless). The leader answers with snap=1 when the
// follower must bootstrap from the leader's checkpoint — fromlsn lies
// below the checkpoint floor, or a reset was requested — followed by
// nfiles snapshot frames, then the record stream. After the FOLLOW
// response the connection leaves request/response framing: the leader
// sends length-prefixed replication frames (see repl.go for the frame
// kinds) and concurrently reads ACK frames from the follower, until
// either side closes. Each ACK carries the highest LSN the follower has
// both applied and made durable; the leader releases commits waiting on
// that shard up to it. PROMOTE flips a follower into a writable leader
// after its apply queue drains; on a server that is not a follower it
// is answered with StatusBadRequest.
//
// STATS (protocol v4) returns the server's metrics registry as a typed
// snapshot — every counter, gauge and histogram the live server tracks
// (request rates, WAL group-commit and fsync behaviour, replication
// lag), encoded per stats_wire.go. A server running without metrics
// answers with an empty snapshot; older servers answer StatusBadRequest,
// which clients surface as ErrBadRequest.
//
// Placement-version stamps (protocol v6) let clients cache read results
// and validate them without extra round trips: every OPEN, WRITE,
// APPEND, TRUNCATE, STAT and MIGRATE response carries a trailing
// ver:u64 — the store's placement version at execution time. The stamp
// is additive twice over: the cursor ignores trailing bytes it does not
// know, so a v5 client parses a v6 response unchanged, and a v6 client
// reads the stamp only when at least 8 bytes remain, so a v5 response
// parses as "no stamp" (Response.VerSet false). READ is the one layout
// whose tail is variable (data), so its stamp is negotiated per
// request: a READ request may append a trailing flags byte (ignored by
// older servers) with ReadWantVer set, and the server then folds a
// ver-present bit into the response's eof byte and emits ver:u64
// between it and the data. A v5 server never sets the bit, so a v6
// client cannot misread data bytes as a stamp. Client-side caches
// (CachingClient) drop their entries whenever a response's stamp
// exceeds the highest version they have seen — the same placement
// generation the server itself uses to re-resolve stale handles.
//
// STATE and VOTE (protocol v5) are the election surface. STATE is a
// cheap read-only probe: role, election epoch, whether the node's
// replica is fresh (fully attached, no pending snapshot reset), the
// per-shard durable LSN frontier, and the leader address the node
// believes in. VOTE carries a candidate's epoch and identity; the
// server grants iff the epoch exceeds every epoch it has ever seen
// (granting persists the promise — a restart cannot forget it), and the
// response reports the voter's per-shard durable LSN frontier so the
// winner can catch up from the most advanced granting voter before
// serving writes. FOLLOW requests additionally carry the follower's
// node id (its advertised address — the ack-quorum membership key) and
// epoch; the response carries the leader's epoch, which the follower
// adopts and stamps into every ack, so a deposed leader recognizes its
// own staleness from the first ack it receives. FollowFetch turns a
// FOLLOW session into a finite catch-up read: snapshot and backfill up
// to the current frontier, terminated by an end-of-stream frame, with
// no ack gate armed — the election winner's pre-promotion data pull.
//
// Writes sent to a follower are answered with StatusNotLeader; the
// message carries the leader's advertised address so clients can
// redirect without out-of-band discovery.
//
// seq is a client-chosen pipelining identifier echoed back verbatim; the
// server answers requests of one connection in arrival order, so clients
// may keep any number of requests in flight and match responses FIFO.
package rangestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// MaxData bounds READ lengths and WRITE/APPEND payloads.
const MaxData = 1 << 20

// MaxOffset bounds request offsets and truncate sizes. Far beyond any
// realistic file, it exists so off+length arithmetic can never wrap
// uint64 anywhere downstream (the lock layer panics on inverted ranges,
// and a panic must not be remotely reachable).
const MaxOffset = 1 << 62

// maxFrame bounds a whole frame body; the slack over MaxData covers the
// largest fixed header.
const maxFrame = MaxData + 64

// OpCode identifies a request type.
type OpCode uint8

// The protocol operations.
const (
	OpOpen OpCode = iota + 1
	OpRead
	OpWrite
	OpAppend
	OpTruncate
	OpStat
	OpMigrate
	OpShards
	OpRecovered
	OpFollow
	OpPromote
	OpStats
	OpState
	OpVote
	numOps = int(OpVote)
)

func (o OpCode) String() string {
	switch o {
	case OpOpen:
		return "OPEN"
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpAppend:
		return "APPEND"
	case OpTruncate:
		return "TRUNCATE"
	case OpStat:
		return "STAT"
	case OpMigrate:
		return "MIGRATE"
	case OpShards:
		return "SHARDS"
	case OpRecovered:
		return "RECOVERED"
	case OpFollow:
		return "FOLLOW"
	case OpPromote:
		return "PROMOTE"
	case OpStats:
		return "STATS"
	case OpState:
		return "STATE"
	case OpVote:
		return "VOTE"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// OpenCreate makes OPEN create the file when it does not exist (open
// succeeds either way: open-or-create).
const OpenCreate uint8 = 1 << 0

// FollowReset makes FOLLOW bootstrap from the leader's checkpoint even
// when fromlsn would allow log tailing. A restarted follower sends it:
// its on-disk state may hold files the leader has since removed, and
// only a snapshot wipe re-converges them.
const FollowReset uint8 = 1 << 0

// ReadWantVer, set in a READ request's optional trailing flags byte
// (protocol v6), asks the server to stamp the response with the current
// placement version: the response's eof byte gains the readVerBit and a
// ver:u64 follows it, ahead of the data. Servers predating v6 ignore
// the trailing byte and answer the unstamped layout.
const ReadWantVer uint8 = 1 << 0

// readVerBit marks a READ response's eof byte as "ver:u64 follows";
// readEOFBit is the EOF flag itself (the whole byte, pre-v6).
const (
	readEOFBit uint8 = 1 << 0
	readVerBit uint8 = 1 << 1
)

// FollowFetch makes FOLLOW a finite catch-up read: the server streams
// the snapshot (if needed) and records up to its current frontier, then
// sends an end-of-stream frame and returns the connection to
// request/response framing being closed. No ack gate is armed and no
// acks are read — an election winner uses it to pull records it is
// missing from the most advanced voter before promoting itself.
const FollowFetch uint8 = 1 << 1

// Status is the response outcome.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota
	StatusNotExist
	StatusExist
	StatusClosed
	StatusBadHandle
	StatusBadRequest
	StatusTooBig
	StatusError     // generic failure; message carried in the response
	StatusNotLeader // mutation sent to a follower; message carries the leader address
	StatusNotReady  // PROMOTE refused: snapshot bootstrap in flight, state would be partial
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotExist:
		return "NotExist"
	case StatusExist:
		return "Exist"
	case StatusClosed:
		return "Closed"
	case StatusBadHandle:
		return "BadHandle"
	case StatusBadRequest:
		return "BadRequest"
	case StatusTooBig:
		return "TooBig"
	case StatusError:
		return "Error"
	case StatusNotLeader:
		return "NotLeader"
	case StatusNotReady:
		return "NotReady"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Errors a client surfaces for non-OK statuses.
var (
	ErrNotExist   = errors.New("rangestore: file does not exist")
	ErrExist      = errors.New("rangestore: file already exists")
	ErrClosed     = errors.New("rangestore: store closed")
	ErrBadHandle  = errors.New("rangestore: invalid file handle")
	ErrBadRequest = errors.New("rangestore: malformed request")
	ErrTooBig     = errors.New("rangestore: payload exceeds MaxData")
	ErrNotReady   = errors.New("rangestore: follower not ready (snapshot bootstrap in flight)")
)

// NotLeaderError is the error for StatusNotLeader: the server is a
// replication follower and refuses mutations. Leader is the leader's
// advertised address ("" when the follower does not know one); failover
// clients extract it with errors.As and redial.
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "rangestore: not the leader"
	}
	return "rangestore: not the leader (leader at " + e.Leader + ")"
}

// Err maps a status to its sentinel error (nil for StatusOK); msg is
// attached to generic failures and carries the leader address for
// StatusNotLeader.
func (s Status) Err(msg string) error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotExist:
		return ErrNotExist
	case StatusExist:
		return ErrExist
	case StatusClosed:
		return ErrClosed
	case StatusBadHandle:
		return ErrBadHandle
	case StatusBadRequest:
		return ErrBadRequest
	case StatusTooBig:
		return ErrTooBig
	case StatusNotLeader:
		return &NotLeaderError{Leader: msg}
	case StatusNotReady:
		return ErrNotReady
	default:
		return fmt.Errorf("rangestore: remote error: %s", msg)
	}
}

// Request is one decoded client request. Data and Name alias the decode
// buffer and are valid until the next decode into the same buffer.
type Request struct {
	Op     OpCode
	Seq    uint32
	Handle uint32 // all handle ops
	Off    uint64 // READ, WRITE; FOLLOW: fromlsn
	Length uint32 // READ
	Size   uint64 // TRUNCATE
	Flags  uint8  // OPEN, FOLLOW
	Dst    uint32 // MIGRATE: destination shard; FOLLOW: shard
	Epoch  uint64 // FOLLOW: follower's epoch; VOTE: candidate's epoch
	Name   string // OPEN, MIGRATE; FOLLOW: follower node id; VOTE: candidate id
	Data   []byte // WRITE, APPEND
}

// RecoveredInfo is the RECOVERED response: what the server's boot-time
// WAL replay rebuilt. WAL is false when the server runs without a
// journal (the remaining fields are then zero).
type RecoveredInfo struct {
	WAL        bool
	Shards     uint32
	Files      uint32
	FromCkpt   uint32 // files whose base state came from a checkpoint
	Migrations uint32
	Records    uint64
	TornBytes  uint64
	MaxLSN     uint64
}

// StateInfo is the STATE response: one node's view of the election.
// LSNs is the per-shard durable LSN frontier (what the node's journal
// holds); Leader is true when the node serves writes; Fresh is true
// when its replica is fully attached with no pending snapshot reset
// (or it has no replica at all); Addr is the leader address it believes
// in ("" when unknown or when it is the leader itself).
type StateInfo struct {
	Leader bool
	Fresh  bool
	Epoch  uint64
	LSNs   []uint64
	Addr   string
}

// VoteInfo is the VOTE response. Granted reports whether the voter
// accepted the candidate's epoch (a durable promise — the voter will
// never grant that epoch again, nor ack a lower-epoch leader). Epoch is
// the voter's epoch after the request (≥ the candidate's when granted);
// LSNs is the voter's per-shard durable frontier, committed before
// encoding, so a winning candidate can catch up from its voters.
type VoteInfo struct {
	Granted bool
	Fresh   bool
	Epoch   uint64
	LSNs    []uint64
}

// Response is one decoded server response. Data and Msg alias the decode
// buffer and are valid until the next decode into the same buffer.
type Response struct {
	Op        OpCode
	Seq       uint32
	Status    Status
	Handle    uint32        // OPEN
	N         uint32        // WRITE; FOLLOW: snapshot file count
	Off       uint64        // APPEND; FOLLOW: checkpoint floor
	Size      uint64        // STAT
	Blocks    uint32        // STAT
	EOF       bool          // READ; FOLLOW: snapshot bootstrap follows
	Epoch     uint64        // FOLLOW: leader's epoch
	Data      []byte        // READ
	Shards    []int64       // SHARDS: per-shard request counts (allocated, not aliased)
	Recovered RecoveredInfo // RECOVERED
	Stats     *obs.Snapshot // STATS: metrics snapshot (allocated, not aliased)
	State     *StateInfo    // STATE (allocated, not aliased)
	Vote      *VoteInfo     // VOTE (allocated, not aliased)
	Msg       string        // non-OK statuses

	// Ver is the placement-version stamp (protocol v6); VerSet reports
	// whether the response carried one (older servers do not stamp, and
	// READ responses are stamped only when the request asked via
	// ReadWantVer).
	Ver    uint64
	VerSet bool
}

// Err maps the response status to an error (nil when OK).
func (r *Response) Err() error { return r.Status.Err(r.Msg) }

// frameHeader reserves the length prefix; finishFrame backfills it.
func frameHeader(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0), start
}

func finishFrame(dst []byte, start int) ([]byte, error) {
	body := len(dst) - start - 4
	if body > maxFrame {
		return dst[:start], ErrTooBig
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// AppendRequest encodes r as one frame appended to dst.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	dst, start := frameHeader(dst)
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint32(dst, r.Seq)
	switch r.Op {
	case OpOpen:
		dst = append(dst, r.Flags)
		dst = append(dst, r.Name...)
	case OpRead:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
		dst = binary.LittleEndian.AppendUint64(dst, r.Off)
		dst = binary.LittleEndian.AppendUint32(dst, r.Length)
		if r.Flags != 0 {
			// Trailing flags byte (v6): older servers ignore it.
			dst = append(dst, r.Flags)
		}
	case OpWrite:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
		dst = binary.LittleEndian.AppendUint64(dst, r.Off)
		dst = append(dst, r.Data...)
	case OpAppend:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
		dst = append(dst, r.Data...)
	case OpTruncate:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
		dst = binary.LittleEndian.AppendUint64(dst, r.Size)
	case OpStat:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
	case OpMigrate:
		dst = binary.LittleEndian.AppendUint32(dst, r.Dst)
		dst = append(dst, r.Name...)
	case OpFollow:
		dst = binary.LittleEndian.AppendUint32(dst, r.Dst)
		dst = binary.LittleEndian.AppendUint64(dst, r.Off)
		dst = append(dst, r.Flags)
		dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
		dst = append(dst, r.Name...)
	case OpVote:
		dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
		dst = append(dst, r.Name...)
	case OpShards, OpRecovered, OpPromote, OpStats, OpState:
	default:
		return dst[:start], fmt.Errorf("rangestore: encode unknown op %d", r.Op)
	}
	return finishFrame(dst, start)
}

// AppendResponse encodes r as one frame appended to dst.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	dst, start := frameHeader(dst)
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint32(dst, r.Seq)
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		dst = append(dst, r.Msg...)
		return finishFrame(dst, start)
	}
	switch r.Op {
	case OpOpen:
		dst = binary.LittleEndian.AppendUint32(dst, r.Handle)
		dst = appendVer(dst, r)
	case OpRead:
		eof := byte(0)
		if r.EOF {
			eof |= readEOFBit
		}
		if r.VerSet {
			eof |= readVerBit
		}
		dst = append(dst, eof)
		if r.VerSet {
			dst = binary.LittleEndian.AppendUint64(dst, r.Ver)
		}
		dst = append(dst, r.Data...)
	case OpWrite:
		dst = binary.LittleEndian.AppendUint32(dst, r.N)
		dst = appendVer(dst, r)
	case OpAppend:
		dst = binary.LittleEndian.AppendUint64(dst, r.Off)
		dst = appendVer(dst, r)
	case OpTruncate:
		dst = appendVer(dst, r)
	case OpStat:
		dst = binary.LittleEndian.AppendUint64(dst, r.Size)
		dst = binary.LittleEndian.AppendUint32(dst, r.Blocks)
		dst = appendVer(dst, r)
	case OpMigrate:
		dst = appendVer(dst, r)
	case OpShards:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Shards)))
		for _, n := range r.Shards {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(n))
		}
	case OpRecovered:
		wal := byte(0)
		if r.Recovered.WAL {
			wal = 1
		}
		dst = append(dst, wal)
		dst = binary.LittleEndian.AppendUint32(dst, r.Recovered.Shards)
		dst = binary.LittleEndian.AppendUint32(dst, r.Recovered.Files)
		dst = binary.LittleEndian.AppendUint32(dst, r.Recovered.FromCkpt)
		dst = binary.LittleEndian.AppendUint32(dst, r.Recovered.Migrations)
		dst = binary.LittleEndian.AppendUint64(dst, r.Recovered.Records)
		dst = binary.LittleEndian.AppendUint64(dst, r.Recovered.TornBytes)
		dst = binary.LittleEndian.AppendUint64(dst, r.Recovered.MaxLSN)
	case OpFollow:
		snap := byte(0)
		if r.EOF {
			snap = 1
		}
		dst = append(dst, snap)
		dst = binary.LittleEndian.AppendUint64(dst, r.Off)
		dst = binary.LittleEndian.AppendUint32(dst, r.N)
		dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	case OpPromote:
	case OpStats:
		dst = appendStats(dst, r.Stats)
	case OpState:
		st := r.State
		if st == nil {
			st = &StateInfo{}
		}
		dst = append(dst, b2u8(st.Leader), b2u8(st.Fresh))
		dst = binary.LittleEndian.AppendUint64(dst, st.Epoch)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.LSNs)))
		for _, l := range st.LSNs {
			dst = binary.LittleEndian.AppendUint64(dst, l)
		}
		dst = append(dst, st.Addr...)
	case OpVote:
		v := r.Vote
		if v == nil {
			v = &VoteInfo{}
		}
		dst = append(dst, b2u8(v.Granted), b2u8(v.Fresh))
		dst = binary.LittleEndian.AppendUint64(dst, v.Epoch)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.LSNs)))
		for _, l := range v.LSNs {
			dst = binary.LittleEndian.AppendUint64(dst, l)
		}
	default:
		return dst[:start], fmt.Errorf("rangestore: encode unknown op %d", r.Op)
	}
	return finishFrame(dst, start)
}

// appendVer appends the trailing placement-version stamp (protocol v6)
// to a fixed-layout response. Unstamped responses (VerSet false, e.g.
// re-encoding a response parsed from a v5 server) keep the v5 layout.
func appendVer(dst []byte, r *Response) []byte {
	if !r.VerSet {
		return dst
	}
	return binary.LittleEndian.AppendUint64(dst, r.Ver)
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// cursor is a bounds-checked little-endian reader over one frame body.
type cursor struct {
	b   []byte
	err bool
}

func (c *cursor) u8() uint8 {
	if len(c.b) < 1 {
		c.err = true
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if len(c.b) < 2 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if len(c.b) < 4 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if len(c.b) < 8 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// take consumes exactly n bytes (aliasing the frame body).
func (c *cursor) take(n int) []byte {
	if n < 0 || len(c.b) < n {
		c.err = true
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// rest consumes the remainder of the body.
func (c *cursor) rest() []byte {
	v := c.b
	c.b = nil
	return v
}

// ParseRequest decodes one frame body into r. r.Name and r.Data alias
// body.
func ParseRequest(body []byte, r *Request) error {
	c := cursor{b: body}
	*r = Request{Op: OpCode(c.u8()), Seq: c.u32()}
	switch r.Op {
	case OpOpen:
		r.Flags = c.u8()
		r.Name = string(c.rest())
	case OpRead:
		r.Handle = c.u32()
		r.Off = c.u64()
		r.Length = c.u32()
		if len(c.b) > 0 {
			// Optional trailing flags byte (v6, ReadWantVer).
			r.Flags = c.u8()
		}
	case OpWrite:
		r.Handle = c.u32()
		r.Off = c.u64()
		r.Data = c.rest()
	case OpAppend:
		r.Handle = c.u32()
		r.Data = c.rest()
	case OpTruncate:
		r.Handle = c.u32()
		r.Size = c.u64()
	case OpStat:
		r.Handle = c.u32()
	case OpMigrate:
		r.Dst = c.u32()
		r.Name = string(c.rest())
	case OpFollow:
		r.Dst = c.u32()
		r.Off = c.u64()
		r.Flags = c.u8()
		r.Epoch = c.u64()
		r.Name = string(c.rest())
	case OpVote:
		r.Epoch = c.u64()
		r.Name = string(c.rest())
	case OpShards, OpRecovered, OpPromote, OpStats, OpState:
	default:
		return fmt.Errorf("%w: unknown op %d", ErrBadRequest, uint8(r.Op))
	}
	if c.err {
		return fmt.Errorf("%w: truncated %s frame", ErrBadRequest, r.Op)
	}
	return nil
}

// ParseResponse decodes one frame body into r. r.Data and r.Msg alias
// body.
func ParseResponse(body []byte, r *Response) error {
	c := cursor{b: body}
	*r = Response{Op: OpCode(c.u8()), Seq: c.u32(), Status: Status(c.u8())}
	if c.err {
		return fmt.Errorf("%w: truncated response header", ErrBadRequest)
	}
	if r.Status != StatusOK {
		r.Msg = string(c.rest())
		return nil
	}
	switch r.Op {
	case OpOpen:
		r.Handle = c.u32()
		parseVer(&c, r)
	case OpRead:
		fl := c.u8()
		r.EOF = fl&readEOFBit != 0
		if fl&readVerBit != 0 {
			r.Ver = c.u64()
			r.VerSet = true
		}
		r.Data = c.rest()
	case OpWrite:
		r.N = c.u32()
		parseVer(&c, r)
	case OpAppend:
		r.Off = c.u64()
		parseVer(&c, r)
	case OpTruncate:
		parseVer(&c, r)
	case OpStat:
		r.Size = c.u64()
		r.Blocks = c.u32()
		parseVer(&c, r)
	case OpMigrate:
		parseVer(&c, r)
	case OpShards:
		n := c.u32()
		if uint64(n)*8 > uint64(len(c.b)) {
			return fmt.Errorf("%w: truncated SHARDS response", ErrBadRequest)
		}
		r.Shards = make([]int64, n)
		for i := range r.Shards {
			r.Shards[i] = int64(c.u64())
		}
	case OpRecovered:
		r.Recovered.WAL = c.u8() != 0
		r.Recovered.Shards = c.u32()
		r.Recovered.Files = c.u32()
		r.Recovered.FromCkpt = c.u32()
		r.Recovered.Migrations = c.u32()
		r.Recovered.Records = c.u64()
		r.Recovered.TornBytes = c.u64()
		r.Recovered.MaxLSN = c.u64()
	case OpFollow:
		r.EOF = c.u8() != 0
		r.Off = c.u64()
		r.N = c.u32()
		r.Epoch = c.u64()
	case OpPromote:
	case OpStats:
		r.Stats = parseStats(&c)
	case OpState:
		st := &StateInfo{Leader: c.u8() != 0, Fresh: c.u8() != 0, Epoch: c.u64()}
		st.LSNs = parseLSNs(&c)
		st.Addr = string(c.rest())
		r.State = st
	case OpVote:
		v := &VoteInfo{Granted: c.u8() != 0, Fresh: c.u8() != 0, Epoch: c.u64()}
		v.LSNs = parseLSNs(&c)
		r.Vote = v
	default:
		return fmt.Errorf("%w: unknown op %d in response", ErrBadRequest, uint8(r.Op))
	}
	if c.err {
		return fmt.Errorf("%w: truncated %s response", ErrBadRequest, r.Op)
	}
	return nil
}

// parseVer reads the optional trailing placement-version stamp of a
// fixed-layout response: present when at least 8 bytes remain (a v6
// server), absent otherwise (a v5 one). Reading it only when available
// is what makes the stamp additive in both directions.
func parseVer(c *cursor, r *Response) {
	if len(c.b) >= 8 {
		r.Ver = c.u64()
		r.VerSet = true
	}
}

// parseLSNs decodes a u32-counted list of u64 LSNs, bounds-checked
// against the remaining body so a corrupt count cannot drive a huge
// allocation.
func parseLSNs(c *cursor) []uint64 {
	n := c.u32()
	if uint64(n)*8 > uint64(len(c.b)) {
		c.err = true
		return nil
	}
	lsns := make([]uint64, n)
	for i := range lsns {
		lsns[i] = c.u64()
	}
	return lsns
}

// ReadFrame reads one length-prefixed frame body from r, reusing buf when
// it has capacity. It returns the body slice (valid until the next call
// with the same buf).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	return ReadFrameMax(r, buf, maxFrame)
}

// ReadFrameMax is ReadFrame with a caller-chosen frame-size cap. The
// replication stream uses it: snapshot and MIGRATE frames carry whole
// file images, which outgrow the request/response cap by design.
func ReadFrameMax(r io.Reader, buf []byte, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if uint64(n) > uint64(max) {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooBig, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
