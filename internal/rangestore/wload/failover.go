// Kill-the-leader scenario: workers write deterministic payloads
// through rangestore.FailoverClient, a coordinator murders the leader
// after a configured number of acknowledged writes and promotes the
// follower, and a verification pass proves every acknowledged write is
// readable from the survivor.
//
// The payload for (worker, write index) is a pure function of the
// seed, so verification regenerates expected bytes instead of keeping
// them — the scenario's memory stays O(1) in write count.
package wload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rangestore"
)

// FailoverConfig drives RunFailover.
type FailoverConfig struct {
	// Addrs are the candidate servers, leader first, handed to every
	// FailoverClient.
	Addrs []string
	// Dial connects to one address; tests inject in-process transports
	// (and fault wrappers) here. Nil uses the client default.
	Dial func(addr string) (*rangestore.Client, error)

	Workers int // concurrent writers, one file each (default 4)
	Writes  int // writes per worker (default 128)
	IOSize  int // bytes per write (default 1024)

	// KillAfter fires the kill once this many writes (across all
	// workers) have been acknowledged (default: a quarter of the total).
	KillAfter int
	// Kill stops the leader. Required.
	Kill func()
	// Promote flips the follower to writable; retried until it succeeds
	// or MaxWait runs out. Required.
	Promote func() error

	// MaxWait bounds each client call's retry budget and the promote
	// retry loop (default 30 s) — it must cover the failover window.
	MaxWait time.Duration
	Seed    int64 // payload/schedule seed (default 1)
}

// FailoverReport summarizes one scenario run.
type FailoverReport struct {
	Acked           int64 // writes acknowledged over the whole run
	AckedBeforeKill int64 // writes acknowledged before the kill fired
	Verified        int   // writes read back and byte-compared on the survivor
}

func (cfg *FailoverConfig) withDefaults() {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Writes <= 0 {
		cfg.Writes = 128
	}
	if cfg.IOSize <= 0 {
		cfg.IOSize = 1024
	}
	if cfg.KillAfter <= 0 {
		cfg.KillAfter = cfg.Workers * cfg.Writes / 4
		if cfg.KillAfter == 0 {
			cfg.KillAfter = 1
		}
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

func failoverFileName(w int) string { return fmt.Sprintf("wfail-%02d", w) }

// failoverPayload regenerates the bytes worker w's i-th write carries.
func failoverPayload(seed int64, w, i, size int) []byte {
	p := make([]byte, size)
	rand.New(rand.NewSource(seed ^ int64(w)<<32 ^ int64(i))).Read(p)
	return p
}

// RunFailover runs the scenario and verifies it. The returned error is
// non-nil if any worker failed, promotion never succeeded, or any
// acknowledged write did not read back intact from the survivor.
func RunFailover(cfg FailoverConfig) (*FailoverReport, error) {
	cfg.withDefaults()
	if cfg.Kill == nil || cfg.Promote == nil {
		return nil, fmt.Errorf("wload: RunFailover needs Kill and Promote hooks")
	}

	newClient := func() (*rangestore.FailoverClient, error) {
		return rangestore.NewFailoverClient(rangestore.FailoverConfig{
			Addrs:   cfg.Addrs,
			Dial:    cfg.Dial,
			MaxWait: cfg.MaxWait,
		})
	}

	var (
		rep      FailoverReport
		acked    atomic.Int64
		before   atomic.Int64    // writes acked while the leader still lived
		killed   atomic.Bool     // set before Kill runs; gates the before-kill tally
		killCh   = make(chan struct{}) // closed when KillAfter is reached
		killOnce sync.Once
	)

	// Coordinator: wait for the threshold, kill the leader, promote the
	// follower with retry — the workers stall in their failover backoff
	// until promotion lands.
	var promoteErr error
	var coord sync.WaitGroup
	coord.Add(1)
	go func() {
		defer coord.Done()
		<-killCh
		killed.Store(true)
		cfg.Kill()
		deadline := time.Now().Add(cfg.MaxWait)
		for {
			if promoteErr = cfg.Promote(); promoteErr == nil {
				return
			}
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fc, err := newClient()
			if err != nil {
				errs[w] = err
				return
			}
			defer fc.Close()
			h, err := fc.Open(failoverFileName(w), true)
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < cfg.Writes; i++ {
				p := failoverPayload(cfg.Seed, w, i, cfg.IOSize)
				if _, err := fc.WriteAt(h, p, uint64(i)*uint64(cfg.IOSize)); err != nil {
					errs[w] = fmt.Errorf("wload: worker %d write %d: %w", w, i, err)
					return
				}
				if !killed.Load() {
					before.Add(1)
				}
				if acked.Add(1) >= int64(cfg.KillAfter) {
					killOnce.Do(func() { close(killCh) })
				}
			}
		}(w)
	}
	wg.Wait()
	// A run too short to reach the threshold must not leave the
	// coordinator waiting forever.
	killOnce.Do(func() { close(killCh) })
	coord.Wait()
	rep.Acked = acked.Load()
	rep.AckedBeforeKill = before.Load()

	for w := range errs {
		if errs[w] != nil {
			return &rep, errs[w]
		}
	}
	if promoteErr != nil {
		return &rep, fmt.Errorf("wload: promote never succeeded: %w", promoteErr)
	}

	// Verification: every acknowledged write — which, the workers having
	// finished, is every write — must read back intact from whichever
	// node still answers (the promoted follower).
	vc, err := newClient()
	if err != nil {
		return &rep, err
	}
	defer vc.Close()
	buf := make([]byte, cfg.IOSize)
	for w := 0; w < cfg.Workers; w++ {
		h, err := vc.Open(failoverFileName(w), false)
		if err != nil {
			return &rep, fmt.Errorf("wload: verify open %s: %w", failoverFileName(w), err)
		}
		for i := 0; i < cfg.Writes; i++ {
			n, err := vc.ReadAt(h, buf, uint64(i)*uint64(cfg.IOSize))
			if err != nil && n != cfg.IOSize {
				return &rep, fmt.Errorf("wload: verify read %s write %d: %w", failoverFileName(w), i, err)
			}
			if want := failoverPayload(cfg.Seed, w, i, cfg.IOSize); !bytes.Equal(buf[:n], want) {
				return &rep, fmt.Errorf("wload: worker %d write %d corrupt after failover", w, i)
			}
			rep.Verified++
		}
	}
	return &rep, nil
}
