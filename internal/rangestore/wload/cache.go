// Client-cache workload support: the cached synchronous worker behind
// Run's CacheBytes mode, its cold/warm/storm scenario hooks, and
// RunCacheStorm — the verification scenario that proves the cache never
// serves a stale read while a migration loop bumps the placement
// version and writers overwrite hot blocks.
package wload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rangestore"
	"repro/internal/rangestore/ccache"
)

// The cache scenarios, selecting what Run does around the measured
// window when CacheBytes > 0.
const (
	// CacheCold measures with an empty cache — hits come only from
	// locality inside the run.
	CacheCold = "cold"
	// CacheWarm pre-reads the whole working set through the cache
	// before measurement (prewarm traffic is excluded from the
	// reported counters).
	CacheWarm = "warm"
	// CacheStorm runs a background migration loop that re-homes
	// workload files mid-run, bumping the placement version and
	// invalidating the cache — the worst case for hit rate, the test
	// case for coherence.
	CacheStorm = "storm"
)

// CacheScenarios lists the valid Config.CacheScenario values.
var CacheScenarios = []string{CacheCold, CacheWarm, CacheStorm}

// CacheReport is the cache section of a Report, counters as deltas over
// the measured window. JSON keys match the obs series names so scripts
// grep one vocabulary.
type CacheReport struct {
	Scenario      string  `json:"scenario"`
	BlockSize     int     `json:"block_size"`
	MaxBytes      int64   `json:"max_bytes"`
	Hits          int64   `json:"cc_hits_total"`
	Misses        int64   `json:"cc_misses_total"`
	Invalidations int64   `json:"cc_invalidations_total"`
	Evictions     int64   `json:"cc_evictions_total"`
	Bytes         int64   `json:"cc_bytes"`
	HitRate       float64 `json:"hit_rate"`
	Migrations    int64   `json:"migrations,omitempty"`
}

// opFatal reports whether a cached worker must redial after err: any
// error that is not a definitive per-request answer condemned the
// connection (mirrors the failover client's semantic test).
func opFatal(err error) bool {
	return !(errors.Is(err, rangestore.ErrNotExist) || errors.Is(err, rangestore.ErrExist) ||
		errors.Is(err, rangestore.ErrBadHandle) || errors.Is(err, rangestore.ErrBadRequest) ||
		errors.Is(err, rangestore.ErrTooBig))
}

// prewarmCache reads every block of every workload file (and stats each
// file) through the cache, as far as the byte budget lets it.
func prewarmCache(cfg Config, dial Dialer, cache *ccache.Cache) error {
	cl, err := dial()
	if err != nil {
		return err
	}
	cc := rangestore.NewCachingClient(cl, cache)
	defer cc.Close()
	bs := cache.BlockSize()
	// Largest block-aligned span one READ carries: fewer round trips,
	// same cache content.
	chunk := (uint64(rangestore.MaxData) / bs) * bs
	if chunk == 0 {
		chunk = bs
	}
	buf := make([]byte, chunk)
	for i := 0; i < cfg.Files; i++ {
		h, err := cc.Open(fileName(i), false)
		if err != nil {
			return fmt.Errorf("wload: prewarm %s: %w", fileName(i), err)
		}
		for off := uint64(0); off < cfg.FileSize; off += chunk {
			n := chunk
			if off+n > cfg.FileSize {
				n = cfg.FileSize - off
			}
			if _, err := cc.ReadAt(h, buf[:n], off); err != nil && err != io.EOF {
				return fmt.Errorf("wload: prewarm read %s@%d: %w", fileName(i), off, err)
			}
		}
		if _, _, err := cc.Stat(h); err != nil {
			return err
		}
	}
	return nil
}

// stormMigrator re-homes a random workload file onto a random shard
// every interval until stop closes, counting successful migrations.
// Each migration bumps the store's placement version; every cached
// client drops its cache when the bump reaches it.
func stormMigrator(cfg Config, dial Dialer, migrations *atomic.Int64, stop <-chan struct{}) {
	if cfg.Shards < 2 {
		return
	}
	cl, err := dial()
	if err != nil {
		return
	}
	defer func() { cl.Close() }()
	rng := rand.New(rand.NewSource(cfg.Seed*31 + 7))
	tick := time.NewTicker(cfg.StormInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		name := fileName(rng.Intn(cfg.Files))
		if err := cl.Migrate(name, rng.Intn(cfg.Shards)); err != nil {
			if !opFatal(err) {
				// A definitive refusal (hash placement, bad shard) will
				// not change on retry.
				return
			}
			cl.Close()
			if cl, err = dial(); err != nil {
				return
			}
			continue
		}
		migrations.Add(1)
	}
}

// runCachedWorker is runWorker's synchronous, cache-fronted sibling:
// every op goes through a CachingClient over the shared cache, so reads
// can be served locally and writes invalidate for the whole worker
// fleet. Pipelining does not apply — the cache needs each response
// before the next decision.
func runCachedWorker(cfg Config, dial Dialer, cache *ccache.Cache, recs []*classRec, remaining *atomic.Int64, deadline time.Time, seed int64) error {
	cl, err := dial()
	if err != nil {
		return err
	}
	cc := rangestore.NewCachingClient(cl, cache)
	// cc is rebound on redial; the closure closes whichever is live.
	defer func() { cc.Close() }()

	handles := make([]uint32, cfg.Files)
	openAll := func() error {
		for i := range handles {
			h, err := cc.Open(fileName(i), false)
			if err != nil {
				return err
			}
			handles[i] = h
		}
		return nil
	}
	if err := openAll(); err != nil {
		return err
	}

	pick := newPicker(cfg, seed)
	payload := make([]byte, cfg.IOSize)
	pick.rng.Read(payload)
	rbuf := make([]byte, rangestore.MaxData)

	var cum [numClasses]int
	t := 0
	for c := 0; c < int(numClasses); c++ {
		t += cfg.Mix.Weights[c]
		cum[c] = t
	}
	pickClass := func() Class {
		n := pick.rng.Intn(t)
		for c := 0; c < int(numClasses); c++ {
			if n < cum[c] {
				return Class(c)
			}
		}
		return ClassRead
	}

	opBound := cfg.Ops > 0
	done := func(sent int64) bool {
		if opBound {
			return remaining.Add(-1) < 0
		}
		return sent%64 == 0 && time.Now().After(deadline)
	}

	// redial replaces a condemned connection, keeping the shared cache —
	// but resetting it first: the fresh connection may reach a different
	// node holding writes this cache never observed.
	redial := func(cause error) error {
		if !cfg.Redial {
			return cause
		}
		cc.Close()
		backoff := 10 * time.Millisecond
		limit := time.Now().Add(10 * time.Second)
		if !opBound && deadline.Before(limit) {
			limit = deadline
		}
		for {
			c2, err := dial()
			if err == nil {
				cache.Reset()
				cc = rangestore.NewCachingClient(c2, cache)
				if err = openAll(); err == nil {
					return nil
				}
				cc.Close()
			}
			if time.Now().Add(backoff).After(limit) {
				return cause
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, 500*time.Millisecond)
		}
	}

	var sent int64
	for {
		if done(sent) {
			return nil
		}
		class := pickClass()
		fi := pick.file()
		h := handles[fi]
		bytes := 0
		t0 := time.Now()
		var err error
		switch class {
		case ClassRead:
			length := cfg.IOSize
			if m := cfg.Mix.MaxScanBlocks; m > 1 {
				length *= 1 + pick.rng.Intn(m)
				if length > rangestore.MaxData {
					length = rangestore.MaxData
				}
			}
			var n int
			n, err = cc.ReadAt(h, rbuf[:length], pick.offset(cfg.IOSize))
			if err == io.EOF {
				err = nil // EOF is service, not failure
			}
			bytes = n
		case ClassWrite:
			bytes = len(payload)
			_, err = cc.WriteAt(h, payload, pick.offset(cfg.IOSize))
		case ClassAppend:
			bytes = len(payload)
			_, err = cc.Append(h, payload)
		case ClassTruncate:
			err = cc.Truncate(h, cfg.FileSize/2+uint64(pick.rng.Int63n(int64(cfg.FileSize/2+1))))
		case ClassStat:
			_, _, err = cc.Stat(h)
		}
		recs[class].observe(time.Since(t0), bytes, err != nil)
		sent++
		if err != nil && opFatal(err) {
			if err = redial(err); err != nil {
				return err
			}
		}
	}
}

// --- RunCacheStorm: the coherence verification scenario ---

// stormHeader is the verifiable prefix of every storm block: which
// (file, block) the payload claims to be and the write sequence it
// carries.
const stormHeader = 16

// stormFill writes the deterministic payload for (file, blk, seq) into
// p: the header plus an xorshift stream seeded by the triple, so
// verification regenerates expected bytes instead of storing them.
func stormFill(p []byte, file, blk int, seq uint64) {
	binary.LittleEndian.PutUint32(p[0:], uint32(file))
	binary.LittleEndian.PutUint32(p[4:], uint32(blk))
	binary.LittleEndian.PutUint64(p[8:], seq)
	x := seq*0x9E3779B97F4A7C15 ^ uint64(file)<<32 ^ uint64(blk) ^ 0xD1B54A32D192ED03
	for i := stormHeader; i < len(p); i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
}

// StormReport summarizes one RunCacheStorm.
type StormReport struct {
	Reads         int64 // verified reads
	Writes        int64 // acknowledged writes
	Migrations    int64 // successful placement moves during the run
	Hits          int64 // cache hits across all workers
	Misses        int64
	Invalidations int64
	StaleReads    int64 // reads that returned data older than the acked floor
}

// RunCacheStorm drives cached readers and writers against the store
// while a migration loop re-homes the files, and proves no read — hit
// or miss — ever returns data older than what the reader already knew
// was acknowledged.
//
// The proof scheme: each block is owned by exactly one writer, which
// stamps every write with a monotone sequence and publishes the acked
// floor only after the write (and its cache invalidation) completed. A
// reader loads the floor, then reads: decoding a sequence below that
// floor, or bytes that do not match the sequence's deterministic
// payload, is a coherence violation. Single-writer blocks make the
// floor monotone; writes-through-the-cache make acked implies
// invalidated; version bumps from migrations only ever drop more.
//
// Uses Config.Files, FileSize, IOSize (the verify block — also forced
// as the cache block size), Workers (split between writers and
// readers), Duration, CacheBytes, StormInterval, Shards, Seed. The
// returned error is non-nil on any worker failure or stale read.
func RunCacheStorm(cfg Config, dial Dialer) (*StormReport, error) {
	cfg = cfg.withDefaults()
	if cfg.IOSize < stormHeader {
		return nil, fmt.Errorf("wload: storm IOSize %d below header %d", cfg.IOSize, stormHeader)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 20
	}
	bs := uint64(cfg.IOSize)
	blocks := int(cfg.FileSize / bs)
	if blocks == 0 {
		blocks = 1
	}
	writers := cfg.Workers / 2
	if writers == 0 {
		writers = 1
	}
	readers := cfg.Workers - writers
	if readers == 0 {
		readers = 1
	}

	cache := ccache.New(ccache.Config{MaxBytes: cfg.CacheBytes, BlockSize: cfg.IOSize})

	// floors[f*blocks+b] is the highest acked sequence for that block —
	// written only by the block's single owner, after the write's cache
	// invalidation ran.
	floors := make([]atomic.Uint64, cfg.Files*blocks)

	// Seed every block at sequence 1 so readers always verify full
	// deterministic content (a never-written block would read as hole
	// zeroes and be unverifiable).
	seedCl, err := dial()
	if err != nil {
		return nil, err
	}
	seedCC := rangestore.NewCachingClient(seedCl, cache)
	buf := make([]byte, cfg.IOSize)
	for f := 0; f < cfg.Files; f++ {
		h, err := seedCC.Open(fileName(f), true)
		if err != nil {
			seedCC.Close()
			return nil, fmt.Errorf("wload: storm seed %s: %w", fileName(f), err)
		}
		for b := 0; b < blocks; b++ {
			stormFill(buf, f, b, 1)
			if _, err := seedCC.WriteAt(h, buf, uint64(b)*bs); err != nil {
				seedCC.Close()
				return nil, fmt.Errorf("wload: storm seed %s blk %d: %w", fileName(f), b, err)
			}
			floors[f*blocks+b].Store(1)
		}
	}
	seedCC.Close()

	rep := &StormReport{}
	var stale atomic.Int64
	var staleMu sync.Mutex
	var staleErr error // first violation, for the error message
	recordStale := func(e error) {
		stale.Add(1)
		staleMu.Lock()
		if staleErr == nil {
			staleErr = e
		}
		staleMu.Unlock()
	}
	var reads, writes, migs atomic.Int64
	stop := make(chan struct{})
	deadline := time.Now().Add(cfg.Duration)

	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		stormMigrator(cfg, dial, &migs, stop)
	}()

	errs := make([]error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dial()
			if err != nil {
				errs[w] = err
				return
			}
			cc := rangestore.NewCachingClient(cl, cache)
			defer cc.Close()
			handles := make([]uint32, cfg.Files)
			for f := range handles {
				if handles[f], err = cc.Open(fileName(f), false); err != nil {
					errs[w] = err
					return
				}
			}
			// The blocks this writer owns, round-robin over the flat index.
			var owned []int
			for i := w; i < len(floors); i += writers {
				owned = append(owned, i)
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			p := make([]byte, cfg.IOSize)
			for time.Now().Before(deadline) {
				idx := owned[rng.Intn(len(owned))]
				f, b := idx/blocks, idx%blocks
				seq := floors[idx].Load() + 1
				stormFill(p, f, b, seq)
				if _, err := cc.WriteAt(handles[f], p, uint64(b)*bs); err != nil {
					// The write may or may not have applied; the floor
					// stays — the next attempt re-writes the same seq.
					errs[w] = fmt.Errorf("wload: storm writer %d: %w", w, err)
					return
				}
				// Publish only after the ack: the write went through the
				// cache, so its invalidation already ran for every client.
				floors[idx].Store(seq)
				writes.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl, err := dial()
			if err != nil {
				errs[writers+r] = err
				return
			}
			cc := rangestore.NewCachingClient(cl, cache)
			defer cc.Close()
			handles := make([]uint32, cfg.Files)
			for f := range handles {
				if handles[f], err = cc.Open(fileName(f), false); err != nil {
					errs[writers+r] = err
					return
				}
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919 + 3))
			got := make([]byte, cfg.IOSize)
			want := make([]byte, cfg.IOSize)
			for time.Now().Before(deadline) {
				idx := rng.Intn(len(floors))
				f, b := idx/blocks, idx%blocks
				floor := floors[idx].Load()
				n, err := cc.ReadAt(handles[f], got, uint64(b)*bs)
				if err != nil && err != io.EOF {
					errs[writers+r] = fmt.Errorf("wload: storm reader %d: %w", r, err)
					return
				}
				if n != cfg.IOSize {
					errs[writers+r] = fmt.Errorf("wload: storm reader %d: short read %d at %s blk %d", r, n, fileName(f), b)
					return
				}
				gf := binary.LittleEndian.Uint32(got[0:])
				gb := binary.LittleEndian.Uint32(got[4:])
				seq := binary.LittleEndian.Uint64(got[8:])
				stormFill(want, f, b, seq)
				switch {
				case int(gf) != f || int(gb) != b || !bytes.Equal(got, want):
					recordStale(fmt.Errorf("wload: storm %s blk %d: corrupt payload (claims file %d blk %d seq %d)", fileName(f), b, gf, gb, seq))
				case seq < floor:
					recordStale(fmt.Errorf("wload: storm %s blk %d: stale read seq %d < acked floor %d", fileName(f), b, seq, floor))
				}
				reads.Add(1)
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	migWG.Wait()

	rep.Reads = reads.Load()
	rep.Writes = writes.Load()
	rep.Migrations = migs.Load()
	rep.StaleReads = stale.Load()
	rep.Hits, rep.Misses, rep.Invalidations, _, _ = cache.Stats()
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	if rep.StaleReads > 0 {
		return rep, staleErr
	}
	return rep, nil
}
