package wload

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rangestore"
)

// TestMetricsUnderReplicatedLoad is the observability acceptance
// scenario end to end: a leader/follower pair under a wload write burst
// must expose non-zero fsync-latency, group-commit batch-size and
// follower-lag series through the STATS op, the burst's report must
// carry full latency histograms, and once the load stops the follower
// lag must drain to exactly 0.
func TestMetricsUnderReplicatedLoad(t *testing.T) {
	dL, dF := pfs.NewMemDir(), pfs.NewMemDir()
	storeL, jL, statsL, err := rangestore.Recover(dL, rangestore.RecoverConfig{
		Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		ReplAckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvL := rangestore.NewServerSharded(storeL,
		rangestore.WithJournal(jL), rangestore.WithRecovered(statsL))
	defer srvL.Close()

	storeF, jF, statsF, err := rangestore.Recover(dF, rangestore.RecoverConfig{
		Shards: 2, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rangestore.StartReplica(storeF, jF, statsF, func() (net.Conn, error) {
		c1, c2 := rangestore.Pipe()
		go srvL.ServeConn(c2)
		return c1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	srvF := rangestore.NewServerSharded(storeF,
		rangestore.WithJournal(jF), rangestore.WithRecovered(statsF),
		rangestore.WithFollower(rep, "leader"))
	defer srvF.Close()
	if err := rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	dialLeader := func() (*rangestore.Client, error) {
		c1, c2 := rangestore.Pipe()
		go srvL.ServeConn(c2)
		return rangestore.NewClient(c1), nil
	}

	mix, err := MixByName("write-heavy")
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(Config{
		Mix: mix, Files: 4, FileSize: 64 << 10, IOSize: 1024,
		Workers: 2, Pipeline: 4, Ops: 400, Seed: 11,
	}, dialLeader)
	if err != nil {
		t.Fatalf("wload burst: %v", err)
	}
	if report.TotalErrs != 0 {
		t.Fatalf("burst saw %d errors", report.TotalErrs)
	}
	// Satellite check: the JSON report carries the full distribution,
	// consistent with the op count it summarizes.
	for _, c := range report.Classes {
		if len(c.Hist) == 0 {
			t.Errorf("class %s: report has no histogram buckets", c.Class)
		}
		var n int64
		for _, b := range c.Hist {
			n += b.Count
		}
		if n != c.Ops {
			t.Errorf("class %s: histogram holds %d ops, report says %d", c.Class, n, c.Ops)
		}
	}

	cl, err := dialLeader()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if h := snap.HistOf("wal_fsync_ns"); h.Count() == 0 {
		t.Error("wal_fsync_ns saw no observations under SyncBatch load")
	}
	if h := snap.HistOf("wal_commit_batch_records"); h.Count() == 0 {
		t.Error("wal_commit_batch_records saw no observations")
	}
	if got := snap.Value(`rs_requests_total{op="write"}`); got == 0 {
		t.Error("rs_requests_total{op=write} is zero after a write burst")
	}
	// The lag series must exist per shard (value may already be 0).
	lagSeries := 0
	for i := range snap.Entries {
		if snap.Entries[i].Name == "repl_lag_records" {
			lagSeries++
		}
	}
	if lagSeries != 2 {
		t.Errorf("got %d repl_lag_records series, want one per shard (2)", lagSeries)
	}

	// Load has stopped; semi-sync commits already waited for acks, so
	// the lag must drain to exactly 0 (the bound is exact at 0).
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err = cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		var lagRecs, lagBytes int64
		for i := range snap.Entries {
			switch snap.Entries[i].Name {
			case "repl_lag_records":
				lagRecs += snap.Entries[i].Value
			case "repl_lag_bytes":
				lagBytes += snap.Entries[i].Value
			}
		}
		if lagRecs == 0 && lagBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower lag never drained: %d records, %d bytes outstanding",
				lagRecs, lagBytes)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The follower's own STATS must show it applied the stream.
	clF := func() *rangestore.Client {
		c1, c2 := rangestore.Pipe()
		go srvF.ServeConn(c2)
		return rangestore.NewClient(c1)
	}()
	defer clF.Close()
	snapF, err := clF.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := snapF.Value("repl_applied_records_total"); got == 0 {
		t.Error("follower applied no records according to its own metrics")
	}
	if got := snapF.Value("rs_role_follower"); got != 1 {
		t.Errorf("rs_role_follower = %d on the follower, want 1", got)
	}

	// And the leader's registry renders cleanly for the scrape path.
	var sb strings.Builder
	if err := srvL.MetricsRegistry().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"wal_fsync_ns_count", "repl_lag_records", "rs_requests_total"} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("prometheus exposition missing %s", series)
		}
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("prometheus exposition contains NaN")
	}
}
