package wload

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rangestore"
)

const chaosShards = 4

// chaosNode is one in-process cluster member. Everything behind mu is
// replaced wholesale on revive — a killed node's server, replica and
// elector are gone; only its crash-copied directory carries over.
type chaosNode struct {
	name string

	mu      sync.Mutex
	up      bool
	dir     *pfs.MemDir
	snap    *pfs.MemDir // crash copy taken at kill time; revive boots from it
	srv     *rangestore.Server
	j       *rangestore.Journal
	rep     *rangestore.Replica
	el      *rangestore.Elector
	leader  *rangestore.LeaderRef
	attempt int // replication dial counter; fresh fault schedule each
}

// chaosCluster is the three-node in-process cluster: a routing table
// from node name to live server, with replication links fault-wrapped
// and control-plane links clean.
type chaosCluster struct {
	t     *testing.T
	names []string

	mu    sync.Mutex
	nodes map[string]*chaosNode
	rng   *rand.Rand // crash-copy torn-tail schedule
}

func newChaosCluster(t *testing.T, names []string, seed int64) *chaosCluster {
	cl := &chaosCluster{
		t:     t,
		names: names,
		nodes: make(map[string]*chaosNode),
		rng:   rand.New(rand.NewSource(seed)),
	}
	for _, n := range names {
		cl.nodes[n] = &chaosNode{name: n}
	}
	return cl
}

func (cl *chaosCluster) node(addr string) *chaosNode {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.nodes[addr]
}

// dialNode is the clean control-plane dial: clients, elector probes,
// verification. Down nodes refuse.
func (cl *chaosCluster) dialNode(addr string) (net.Conn, error) {
	n := cl.node(addr)
	if n == nil {
		return nil, fmt.Errorf("chaos: unknown node %s", addr)
	}
	n.mu.Lock()
	srv, up := n.srv, n.up
	n.mu.Unlock()
	if !up {
		return nil, fmt.Errorf("chaos: node %s is down", addr)
	}
	c1, c2 := rangestore.Pipe()
	go srv.ServeConn(c2)
	return c1, nil
}

func (cl *chaosCluster) dialClient(addr string) (*rangestore.Client, error) {
	nc, err := cl.dialNode(addr)
	if err != nil {
		return nil, err
	}
	return rangestore.NewClient(nc), nil
}

// replDial builds a follower's replication dial: it chases the node's
// LeaderRef and suffers the fault schedule on the leader's write side
// (records, snapshots, heartbeats — the traffic LSN chaining must
// survive).
func (cl *chaosCluster) replDial(n *chaosNode, leader *rangestore.LeaderRef) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		addr := leader.Load()
		if addr == "" || addr == n.name {
			return nil, errors.New("chaos: no leader known")
		}
		target := cl.node(addr)
		if target == nil {
			return nil, fmt.Errorf("chaos: unknown leader %s", addr)
		}
		target.mu.Lock()
		srv, up := target.srv, target.up
		target.mu.Unlock()
		if !up {
			return nil, fmt.Errorf("chaos: leader %s is down", addr)
		}
		n.mu.Lock()
		n.attempt++
		seed := int64(n.attempt)
		for _, c := range n.name {
			seed = seed*131 + int64(c)
		}
		n.mu.Unlock()
		c1, c2 := rangestore.Pipe()
		go srv.ServeConn(rangestore.FaultWrap(c2, rangestore.FaultConfig{
			Seed: seed, Drop: 0.02, Dup: 0.03, Delay: 0.05,
			MaxDelay: time.Millisecond, SkipFirst: 8,
		}))
		return c1, nil
	}
}

func chaosRecoverConfig() rangestore.RecoverConfig {
	return rangestore.RecoverConfig{
		Shards: chaosShards, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		ReplAckTimeout: 1 * time.Second,
	}
}

// startLeader boots addr as the initial epoch-0 leader: journal, a
// declared 3-node cluster (commits need a majority even before any
// follower attaches), no replica, no elector.
func (cl *chaosCluster) startLeader(addr string) error {
	n := cl.node(addr)
	dir := pfs.NewMemDir()
	store, j, stats, err := rangestore.Recover(dir, chaosRecoverConfig())
	if err != nil {
		return err
	}
	j.SetClusterSize(len(cl.names))
	srv := rangestore.NewServerSharded(store,
		rangestore.WithJournal(j), rangestore.WithRecovered(stats),
		rangestore.WithReplHeartbeat(50*time.Millisecond))
	n.mu.Lock()
	n.dir, n.j, n.srv, n.rep, n.el, n.leader = dir, j, srv, nil, nil, nil
	n.up = true
	n.mu.Unlock()
	return nil
}

// startFollower boots addr over dir as a follower pointed at
// leaderHint, with an elector watching the stream. Revive passes the
// crash copy as dir; the hint may be stale — the elector re-points.
func (cl *chaosCluster) startFollower(addr string, dir *pfs.MemDir, leaderHint string) error {
	n := cl.node(addr)
	store, j, stats, err := rangestore.Recover(dir, chaosRecoverConfig())
	if err != nil {
		return err
	}
	leader := rangestore.NewLeaderRef(leaderHint)
	rep, err := rangestore.StartReplica(store, j, stats, cl.replDial(n, leader),
		rangestore.WithReplicaID(addr))
	if err != nil {
		return err
	}
	srv := rangestore.NewServerSharded(store,
		rangestore.WithJournal(j), rangestore.WithRecovered(stats),
		rangestore.WithFollower(rep, leaderHint),
		rangestore.WithReplHeartbeat(50*time.Millisecond))
	el, err := rangestore.StartElector(srv, rangestore.ElectorConfig{
		Self: addr, Peers: cl.names, Dial: cl.dialNode,
		Timeout: 300 * time.Millisecond, OpTimeout: time.Second,
		Leader: leader,
	})
	if err != nil {
		rep.Stop()
		srv.Close()
		return err
	}
	n.mu.Lock()
	n.dir, n.j, n.srv, n.rep, n.el, n.leader = dir, j, srv, rep, el, leader
	n.up = true
	n.mu.Unlock()
	return nil
}

// kill crashes addr: the crash copy is snapshotted while everything
// still runs (what a power cut would leave — synced bytes plus maybe a
// torn tail), then the routing entry dies and the process is torn down.
func (cl *chaosCluster) kill(addr string) {
	n := cl.node(addr)
	n.mu.Lock()
	if !n.up {
		n.mu.Unlock()
		return
	}
	cl.mu.Lock()
	n.snap = n.dir.CrashCopy(cl.rng)
	cl.mu.Unlock()
	n.up = false
	srv, rep, el, j := n.srv, n.rep, n.el, n.j
	n.mu.Unlock()
	if el != nil {
		el.Stop()
	}
	srv.Close()
	if rep != nil {
		rep.Stop()
	}
	j.Close()
}

// revive restarts addr from its crash copy, always as a follower —
// whoever leads now, the elector will find it (or this node will win
// an election if nobody does).
func (cl *chaosCluster) revive(addr string) error {
	n := cl.node(addr)
	n.mu.Lock()
	snap := n.snap
	n.mu.Unlock()
	hint := ""
	for _, p := range cl.names {
		if p != addr {
			hint = p
			break
		}
	}
	return cl.startFollower(addr, snap, hint)
}

func (cl *chaosCluster) teardown() {
	for _, addr := range cl.names {
		cl.kill(addr)
	}
}

// TestRunChaosQuorumFailover is the acceptance scenario: a 3-node
// cluster (1 leader + 2 followers, majority-ack commits) survives ten
// kill/revive cycles — the current leader on even cycles, a follower
// on odd ones — under a lossy, reordering replication transport, with
// client load running throughout. After every cycle, every
// acknowledged write must read back intact from the elected leader, no
// unacknowledged slot may exist, and writes must have kept committing
// while the victim was down.
func TestRunChaosQuorumFailover(t *testing.T) {
	cl := newChaosCluster(t, []string{"n0", "n1", "n2"}, 41)
	defer cl.teardown()
	if err := cl.startLeader("n0"); err != nil {
		t.Fatal(err)
	}
	if err := cl.startFollower("n1", pfs.NewMemDir(), "n0"); err != nil {
		t.Fatal(err)
	}
	if err := cl.startFollower("n2", pfs.NewMemDir(), "n0"); err != nil {
		t.Fatal(err)
	}

	report, err := RunChaos(ChaosConfig{
		Addrs:   cl.names,
		Dial:    cl.dialClient,
		Kill:    cl.kill,
		Revive:  cl.revive,
		Cycles:  10,
		Workers: 3,
		IOSize:  256,
		MaxWait: 30 * time.Second,
		Seed:    11,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos scenario: %v (report %+v)", err, report)
	}
	if report.Cycles != 10 {
		t.Fatalf("completed %d cycles, want 10", report.Cycles)
	}
	if report.LeaderKills < 5 {
		t.Fatalf("killed the leader %d times, want >= 5", report.LeaderKills)
	}
	if report.FollowerKills < 5 {
		t.Fatalf("killed followers %d times, want >= 5", report.FollowerKills)
	}
	if report.Acked == 0 || report.Verified == 0 {
		t.Fatalf("no load flowed: %+v", report)
	}
	t.Logf("chaos report: %+v", report)
}
