package wload

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rangestore"
)

// pipeDialer serves every dialed connection from one in-process server.
func pipeDialer(t *testing.T, srv *rangestore.Server) Dialer {
	t.Helper()
	return func() (*rangestore.Client, error) {
		c1, c2 := rangestore.Pipe()
		go srv.ServeConn(c2)
		return rangestore.NewClient(c1), nil
	}
}

func TestMixByName(t *testing.T) {
	for _, want := range []string{"read-heavy", "write-heavy", "append-log", "mixed-scan"} {
		m, err := MixByName(want)
		if err != nil || m.Name != want {
			t.Fatalf("MixByName(%q) = %+v, %v", want, m, err)
		}
		if m.total() == 0 {
			t.Fatalf("mix %q has zero weight", want)
		}
	}
	if _, err := MixByName("nope"); err == nil || !strings.Contains(err.Error(), "read-heavy") {
		t.Fatalf("unknown mix error = %v", err)
	}
}

// TestRunAllMixes drives each canonical mix op-bounded through the pipe
// transport and sanity-checks the report shape.
func TestRunAllMixes(t *testing.T) {
	for _, mix := range Mixes {
		t.Run(mix.Name, func(t *testing.T) {
			srv := rangestore.NewServer(pfs.New(nil))
			defer srv.Close()
			cfg := Config{
				Mix:      mix,
				Files:    4,
				FileSize: 64 << 10,
				IOSize:   1024,
				Workers:  3,
				Pipeline: 4,
				Ops:      600,
				ZipfFile: 1.2,
				ZipfOff:  1.1,
			}
			rep, err := Run(cfg, pipeDialer(t, srv))
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalOps != cfg.Ops {
				t.Fatalf("TotalOps = %d, want %d", rep.TotalOps, cfg.Ops)
			}
			if rep.TotalErrs != 0 {
				t.Fatalf("errors: %d\n%s", rep.TotalErrs, rep)
			}
			var gotOps int64
			seen := map[string]bool{}
			for _, c := range rep.Classes {
				gotOps += c.Ops
				seen[c.Class] = true
				if c.Ops > 0 && (c.P50Ns == 0 || c.P99Ns < c.P50Ns || c.MeanNs <= 0) {
					t.Fatalf("degenerate latency for %s: %+v", c.Class, c)
				}
			}
			if gotOps != rep.TotalOps {
				t.Fatalf("class ops %d != total %d", gotOps, rep.TotalOps)
			}
			// Every nonzero-weight class should appear in a 600-op run
			// (smallest weight is 2/100).
			for c := Class(0); c < numClasses; c++ {
				if mix.Weights[c] > 0 && !seen[c.String()] {
					t.Fatalf("mix %s: class %s missing from report", mix.Name, c)
				}
			}
		})
	}
}

func TestRunDurationBound(t *testing.T) {
	srv := rangestore.NewServer(pfs.New(nil))
	defer srv.Close()
	cfg := Config{
		Mix:      Mixes[0],
		Files:    2,
		FileSize: 32 << 10,
		Workers:  2,
		Duration: 100 * time.Millisecond,
	}
	start := time.Now()
	rep, err := Run(cfg, pipeDialer(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no ops in duration-bound run")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("duration-bound run took %v", elapsed)
	}
}

func TestReportOutputs(t *testing.T) {
	srv := rangestore.NewServer(pfs.New(nil))
	defer srv.Close()
	rep, err := Run(Config{Mix: Mixes[3], Files: 2, FileSize: 16 << 10, Workers: 2, Ops: 200},
		pipeDialer(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.TotalOps != rep.TotalOps || len(back.Classes) != len(rep.Classes) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(rep.Classes) {
		t.Fatalf("CSV rows = %d, want %d\n%s", len(lines), 1+len(rep.Classes), csv.String())
	}
	if !strings.HasPrefix(lines[0], "mix,class,ops") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(rep.String(), "p99") {
		t.Fatalf("text report missing p99 column:\n%s", rep)
	}
}

// TestShardCounts: against a sharded server, the report's per-shard
// request counts must cover every operation and agree with the server's
// own routing tally.
func TestShardCounts(t *testing.T) {
	const shards = 4
	store := pfs.NewSharded(shards, nil)
	srv := rangestore.NewServerSharded(store)
	defer srv.Close()
	cfg := Config{
		Mix:      Mixes[3],
		Files:    16,
		FileSize: 32 << 10,
		Workers:  3,
		Pipeline: 2,
		Ops:      600,
		Shards:   shards,
	}
	rep, err := Run(cfg, pipeDialer(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ShardOps) != shards {
		t.Fatalf("ShardOps len = %d, want %d", len(rep.ShardOps), shards)
	}
	var total int64
	for _, n := range rep.ShardOps {
		total += n
	}
	if total != rep.TotalOps {
		t.Fatalf("shard ops sum to %d, want %d", total, rep.TotalOps)
	}
	// Client-side placement must agree with the server's routing: the
	// server also counts opens/populate traffic, so every shard the
	// client hit must be at least as busy server-side.
	sc := srv.ShardCounts()
	for i, n := range rep.ShardOps {
		if sc[i] < n {
			t.Fatalf("shard %d: client counted %d, server only %d", i, n, sc[i])
		}
	}
	if !strings.Contains(rep.String(), "shards:") {
		t.Fatalf("text report missing shard counts:\n%s", rep)
	}
}

// TestShardCountsServerReported: under a non-hash placement the report
// must carry the server's own tally (delta across the run), since
// client-side ShardOf prediction no longer describes where requests
// land.
func TestShardCountsServerReported(t *testing.T) {
	const shards = 4
	store := pfs.NewShardedPlacement(shards, nil, pfs.NewMapPlacement(nil))
	srv := rangestore.NewServerSharded(store)
	defer srv.Close()
	cfg := Config{
		Mix:       Mixes[0],
		Files:     8,
		FileSize:  32 << 10,
		Workers:   3,
		Pipeline:  2,
		Ops:       500,
		Shards:    shards,
		Placement: "map",
	}
	rep, err := Run(cfg, pipeDialer(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShardSource != "server" {
		t.Fatalf("ShardSource = %q, want server", rep.ShardSource)
	}
	if len(rep.ShardOps) != shards {
		t.Fatalf("ShardOps len = %d", len(rep.ShardOps))
	}
	var total int64
	for _, n := range rep.ShardOps {
		total += n
	}
	// The server tallies every routed request: the measured ops plus
	// each worker's per-file opens.
	want := rep.TotalOps + int64(cfg.Workers*cfg.Files)
	if total != want {
		t.Fatalf("server-reported shard ops sum to %d, want %d (%v)", total, want, rep.ShardOps)
	}
	if !strings.Contains(rep.String(), "[server, map placement]") {
		t.Fatalf("text report missing shard source:\n%s", rep)
	}
}

// TestRunRedial: every live connection is cut mid-run. With Redial the
// workers charge the lost in-flight requests as errors, reconnect, and
// finish the run; without it the first cut aborts the run.
func TestRunRedial(t *testing.T) {
	for _, redial := range []bool{true, false} {
		name := "redial=off"
		if redial {
			name = "redial=on"
		}
		t.Run(name, func(t *testing.T) {
			srv := rangestore.NewServer(pfs.New(nil))
			defer srv.Close()
			var mu sync.Mutex
			var conns []net.Conn
			dial := func() (*rangestore.Client, error) {
				c1, c2 := rangestore.Pipe()
				mu.Lock()
				conns = append(conns, c1)
				mu.Unlock()
				go srv.ServeConn(c2)
				return rangestore.NewClient(c1), nil
			}
			go func() {
				time.Sleep(150 * time.Millisecond)
				mu.Lock()
				for _, c := range conns {
					c.Close()
				}
				mu.Unlock()
			}()
			rep, err := Run(Config{
				Mix: Mixes[1], Files: 4, FileSize: 32 << 10, IOSize: 512,
				Workers: 3, Pipeline: 4, Duration: 400 * time.Millisecond,
				Redial: redial,
			}, dial)
			if redial {
				if err != nil {
					t.Fatalf("redial run failed: %v", err)
				}
				if rep.TotalOps == 0 {
					t.Fatal("no ops completed across the sever")
				}
			} else if err == nil {
				t.Fatal("run without redial survived a severed connection")
			}
		})
	}
}

// TestZipfSkew: with strong file skew, the hottest file must absorb more
// traffic than an average one. Observable through per-file append growth.
func TestZipfSkew(t *testing.T) {
	fs := pfs.New(nil)
	srv := rangestore.NewServer(fs)
	defer srv.Close()
	cfg := Config{
		Mix:      Mix{Name: "append-only", Weights: [numClasses]int{0, 0, 100, 0, 0}},
		Files:    8,
		FileSize: 1, // appends start near zero
		IOSize:   64,
		Workers:  2,
		Ops:      800,
		ZipfFile: 2.0,
	}
	if _, err := Run(cfg, pipeDialer(t, srv)); err != nil {
		t.Fatal(err)
	}
	hot, err := fs.Stat(fileName(0))
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i := 0; i < cfg.Files; i++ {
		fi, err := fs.Stat(fileName(i))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size
	}
	if hot.Size*uint64(cfg.Files) <= total {
		t.Fatalf("zipf skew absent: hot file %d bytes of %d total across %d files",
			hot.Size, total, cfg.Files)
	}
}
