package wload

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rangestore"
)

// TestRunFailoverKillsLeader is the acceptance scenario: leader and
// follower both journal with -fsync batch semantics, the replication
// link suffers drops, duplicates and reordering, the leader is killed
// mid-run, the follower is promoted — and every acknowledged write must
// be readable, intact, from the survivor.
func TestRunFailoverKillsLeader(t *testing.T) {
	dL, dF := pfs.NewMemDir(), pfs.NewMemDir()
	storeL, jL, statsL, err := rangestore.Recover(dL, rangestore.RecoverConfig{
		Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
		ReplAckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvL := rangestore.NewServerSharded(storeL, rangestore.WithJournal(jL), rangestore.WithRecovered(statsL))
	defer srvL.Close()

	storeF, jF, statsF, err := rangestore.Recover(dF, rangestore.RecoverConfig{
		Shards: 4, Placement: pfs.NewMapPlacement(nil), Sync: pfs.SyncBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	var amu sync.Mutex
	var attempt int
	rep, err := rangestore.StartReplica(storeF, jF, statsF, func() (net.Conn, error) {
		c1, c2 := rangestore.Pipe()
		amu.Lock()
		attempt++
		seed := int64(attempt) // fresh fault schedule per reconnect
		amu.Unlock()
		go srvL.ServeConn(rangestore.FaultWrap(c2, rangestore.FaultConfig{
			Seed: seed, Drop: 0.02, Dup: 0.03, Delay: 0.05,
			MaxDelay: time.Millisecond, SkipFirst: 8,
		}))
		return c1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	srvF := rangestore.NewServerSharded(storeF,
		rangestore.WithJournal(jF), rangestore.WithRecovered(statsF),
		rangestore.WithFollower(rep, "leader"))
	defer srvF.Close()
	if err := rep.WaitAttached(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	dial := func(addr string) (*rangestore.Client, error) {
		srv := srvL
		if addr == "follower" {
			srv = srvF
		}
		c1, c2 := rangestore.Pipe()
		go srv.ServeConn(c2)
		return rangestore.NewClient(c1), nil
	}
	promoter, err := rangestore.NewFailoverClient(rangestore.FailoverConfig{
		Addrs: []string{"follower"}, Dial: dial, MaxWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer promoter.Close()

	const workers, writes = 4, 40
	report, err := RunFailover(FailoverConfig{
		Addrs:     []string{"leader", "follower"},
		Dial:      dial,
		Workers:   workers,
		Writes:    writes,
		IOSize:    1024,
		KillAfter: workers * writes / 4,
		Kill:      func() { srvL.Close() },
		Promote:   func() error { return promoter.Promote() },
		MaxWait:   30 * time.Second,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("failover scenario: %v (report %+v)", err, report)
	}
	if report.Acked != int64(workers*writes) {
		t.Fatalf("acked %d writes, want %d", report.Acked, workers*writes)
	}
	if report.Verified != workers*writes {
		t.Fatalf("verified %d writes on the survivor, want %d", report.Verified, workers*writes)
	}
	if report.AckedBeforeKill == 0 {
		t.Fatal("the kill fired before any write was acknowledged")
	}
}
