// Chaos scenario: a kill/revive loop over a replicated cluster under
// continuous client load. Workers write deterministic payloads through
// FailoverClient while the harness repeatedly crashes a node — the
// leader on even cycles, a follower on odd ones — revives it from its
// crash-surviving state, and verifies after every cycle that
//
//   - every write acknowledged to a client reads back intact from the
//     current leader (no acked write is ever lost, across elections),
//   - no slot beyond the issued frontier exists (no ghost write was
//     ever applied and exposed), and
//   - writes kept committing while the node was down (a dead minority
//     must not stall the quorum).
//
// The harness owns the schedule and the invariants; node lifecycle
// (what "kill" and "revive" mean — process death, crash-copy restarts,
// fault-injected transports) is injected by the caller, so the same
// scenario drives in-process tests and the smoke script.
package wload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rangestore"
)

// ChaosConfig drives RunChaos.
type ChaosConfig struct {
	// Addrs are every node in the cluster. Clients rotate over all of
	// them; the harness probes them to find the current leader.
	Addrs []string
	// Dial opens a control-plane connection to one node: client
	// traffic, leader probes and verification reads. Down nodes must
	// return an error. Required.
	Dial func(addr string) (*rangestore.Client, error)

	// Kill crashes the named node: it must stop answering Dial and
	// lose everything non-durable. Required.
	Kill func(addr string)
	// Revive restarts the named node from its crash-surviving state as
	// a follower. Required.
	Revive func(addr string) error

	Cycles  int // kill/revive cycles (default 10)
	Workers int // concurrent writers, one file each (default 3)
	IOSize  int // bytes per write (default 256)

	// WriteGap throttles each worker between writes so per-cycle
	// verification stays proportional to the run, not to raw client
	// throughput (default 5 ms).
	WriteGap time.Duration
	// ProgressWrites is how many new acks each down-window must
	// produce before the node is revived — the liveness half of the
	// scenario (default 5).
	ProgressWrites int
	// MaxWait bounds each client call's retry budget and every
	// harness wait: leader discovery, down-window progress (default 30 s).
	MaxWait time.Duration
	Seed    int64 // payload seed (default 1)

	// Logf, when set, narrates the schedule (cycle, victim, leader).
	Logf func(format string, args ...any)
}

// ChaosReport summarizes one chaos run.
type ChaosReport struct {
	Cycles        int   // kill/revive cycles completed
	LeaderKills   int   // cycles whose victim was the current leader
	FollowerKills int   // cycles whose victim was a follower
	Acked         int64 // writes acknowledged over the whole run
	Verified      int64 // slot reads byte-compared against regenerated payloads
}

func (cfg *ChaosConfig) withDefaults() {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.IOSize <= 0 {
		cfg.IOSize = 256
	}
	if cfg.WriteGap <= 0 {
		cfg.WriteGap = 5 * time.Millisecond
	}
	if cfg.ProgressWrites <= 0 {
		cfg.ProgressWrites = 5
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

func chaosFileName(w int) string { return fmt.Sprintf("chaos-%02d", w) }

// chaosPayload regenerates the bytes worker w's slot i carries — a
// pure function of the seed, so verification keeps no write log.
func chaosPayload(seed int64, w, i, size int) []byte {
	p := make([]byte, size)
	rand.New(rand.NewSource(seed ^ int64(w)<<32 ^ int64(i))).Read(p)
	return p
}

// chaosWorker is one writer's frontier: issued is bumped before a
// write is attempted, acked after it is acknowledged. A worker holds
// the pause read-lock across the whole attempt, so under the
// verifier's write-lock the two are equal — every issued write has
// been acked (possibly after failover retries) and the verifiable
// prefix is exactly [0, acked).
type chaosWorker struct {
	issued atomic.Int64
	acked  atomic.Int64
	err    error
}

// RunChaos runs the scenario. The returned error is non-nil if any
// invariant broke: a lost acked write, a ghost write, a down-window
// without commit progress, a worker that exhausted its retry budget,
// or a cluster that never converged on a leader.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg.withDefaults()
	if cfg.Dial == nil || cfg.Kill == nil || cfg.Revive == nil {
		return nil, fmt.Errorf("wload: RunChaos needs Dial, Kill and Revive hooks")
	}

	rep := &ChaosReport{}
	workers := make([]*chaosWorker, cfg.Workers)
	for i := range workers {
		workers[i] = &chaosWorker{}
	}
	var pause sync.RWMutex
	stopCh := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workers[w]
			fc, err := rangestore.NewFailoverClient(rangestore.FailoverConfig{
				Addrs:     cfg.Addrs,
				Dial:      cfg.Dial,
				MaxWait:   cfg.MaxWait,
				OpTimeout: 2 * time.Second,
			})
			if err != nil {
				st.err = err
				return
			}
			defer fc.Close()
			pause.RLock()
			h, err := fc.Open(chaosFileName(w), true)
			pause.RUnlock()
			if err != nil {
				st.err = err
				return
			}
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				pause.RLock()
				i := st.issued.Add(1) - 1
				p := chaosPayload(cfg.Seed, w, int(i), cfg.IOSize)
				_, err := fc.WriteAt(h, p, uint64(i)*uint64(cfg.IOSize))
				if err != nil {
					st.err = fmt.Errorf("wload: chaos worker %d slot %d: %w", w, i, err)
					pause.RUnlock()
					return
				}
				st.acked.Add(1)
				pause.RUnlock()
				time.Sleep(cfg.WriteGap)
			}
		}(w)
	}
	stop := func() {
		select {
		case <-stopCh:
		default:
			close(stopCh)
		}
		wg.Wait()
	}
	defer stop()

	ackedSum := func() int64 {
		var s int64
		for _, st := range workers {
			s += st.acked.Load()
		}
		return s
	}
	workerErr := func() error {
		for _, st := range workers {
			if st.err != nil {
				return st.err
			}
		}
		return nil
	}

	followerCursor := 0
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		leader, err := findLeader(&cfg, nil)
		if err != nil {
			return rep, fmt.Errorf("wload: cycle %d: %w", cycle, err)
		}
		victim := leader
		if cycle%2 == 0 {
			rep.LeaderKills++
		} else {
			// Round-robin over the non-leaders so both followers get
			// their turn dying.
			cands := []string{}
			for _, a := range cfg.Addrs {
				if a != leader {
					cands = append(cands, a)
				}
			}
			victim = cands[followerCursor%len(cands)]
			followerCursor++
			rep.FollowerKills++
		}
		cfg.Logf("cycle %d: leader=%s killing %s", cycle, leader, victim)

		base := ackedSum()
		cfg.Kill(victim)

		// Liveness: the surviving majority must keep committing while
		// the victim is down (for a leader kill, after electing).
		deadline := time.Now().Add(cfg.MaxWait)
		for ackedSum() < base+int64(cfg.ProgressWrites) {
			if err := workerErr(); err != nil {
				return rep, fmt.Errorf("wload: cycle %d (victim %s): %w", cycle, victim, err)
			}
			if !time.Now().Before(deadline) {
				return rep, fmt.Errorf("wload: cycle %d: no commit progress while %s was down (%d acked, want +%d)",
					cycle, victim, ackedSum()-base, cfg.ProgressWrites)
			}
			time.Sleep(10 * time.Millisecond)
		}

		if err := cfg.Revive(victim); err != nil {
			return rep, fmt.Errorf("wload: cycle %d: revive %s: %w", cycle, victim, err)
		}

		// Safety: freeze the writers and audit the whole acked history
		// against the current leader.
		pause.Lock()
		cur, err := findLeader(&cfg, &victim)
		if err == nil {
			err = verifyChaos(&cfg, workers, cur, rep)
		}
		pause.Unlock()
		if err != nil {
			return rep, fmt.Errorf("wload: cycle %d: %w", cycle, err)
		}
		rep.Cycles++
	}

	stop()
	if err := workerErr(); err != nil {
		return rep, err
	}
	rep.Acked = ackedSum()

	// Final sweep, writers stopped for good.
	leader, err := findLeader(&cfg, nil)
	if err != nil {
		return rep, err
	}
	if err := verifyChaos(&cfg, workers, leader, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// findLeader probes every node for STATE until exactly a live leader
// answers, preferring the highest epoch when a deposed leader has not
// yet learned of its successor. skip, when set, names a node to leave
// alone (the just-revived victim may still be bootstrapping).
func findLeader(cfg *ChaosConfig, skip *string) (string, error) {
	deadline := time.Now().Add(cfg.MaxWait)
	for {
		best := ""
		var bestEpoch uint64
		for _, addr := range cfg.Addrs {
			if skip != nil && addr == *skip {
				continue
			}
			c, err := cfg.Dial(addr)
			if err != nil {
				continue
			}
			c.SetOpTimeout(2 * time.Second)
			st, err := c.State()
			c.Close()
			if err != nil || !st.Leader {
				continue
			}
			if best == "" || st.Epoch > bestEpoch {
				best, bestEpoch = addr, st.Epoch
			}
		}
		if best != "" {
			return best, nil
		}
		if !time.Now().Before(deadline) {
			return "", fmt.Errorf("no leader emerged within %v", cfg.MaxWait)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// verifyChaos audits every worker file on the leader: the acked prefix
// must read back byte-identical to the regenerated payloads, and the
// file must not extend past the issued frontier (a slot nobody was
// ever acked for must not exist).
func verifyChaos(cfg *ChaosConfig, workers []*chaosWorker, leader string, rep *ChaosReport) error {
	c, err := cfg.Dial(leader)
	if err != nil {
		return fmt.Errorf("verify dial %s: %w", leader, err)
	}
	defer c.Close()
	c.SetOpTimeout(5 * time.Second)
	buf := make([]byte, cfg.IOSize)
	for w, st := range workers {
		acked, issued := st.acked.Load(), st.issued.Load()
		if acked == 0 {
			continue
		}
		h, err := c.Open(chaosFileName(w), false)
		if err != nil {
			return fmt.Errorf("verify open %s on %s: %w", chaosFileName(w), leader, err)
		}
		size, _, err := c.Stat(h)
		if err != nil {
			return fmt.Errorf("verify stat %s: %w", chaosFileName(w), err)
		}
		if size > uint64(issued)*uint64(cfg.IOSize) {
			return fmt.Errorf("ghost write: %s is %d bytes on %s, beyond the issued frontier %d",
				chaosFileName(w), size, leader, issued)
		}
		for i := int64(0); i < acked; i++ {
			n, err := c.ReadAt(h, buf, uint64(i)*uint64(cfg.IOSize))
			if err != nil && n != cfg.IOSize {
				return fmt.Errorf("lost acked write: worker %d slot %d on %s: %w", w, i, leader, err)
			}
			if want := chaosPayload(cfg.Seed, w, int(i), cfg.IOSize); !bytes.Equal(buf[:n], want) {
				return fmt.Errorf("corrupt acked write: worker %d slot %d on %s", w, i, leader)
			}
			rep.Verified++
		}
	}
	return nil
}
