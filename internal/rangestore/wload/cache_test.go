package wload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/rangestore"
)

// mapDialer serves dialed connections from one in-process map-placement
// sharded server — the placement MIGRATE needs.
func mapDialer(t *testing.T, shards int) Dialer {
	t.Helper()
	store := pfs.NewShardedPlacement(shards, nil, pfs.NewMapPlacement(nil))
	srv := rangestore.NewServerSharded(store)
	t.Cleanup(func() { srv.Close() })
	return pipeDialer(t, srv)
}

// TestRunCachedWarmHitRate: a warm zipf read-heavy run over a budget
// that holds the working set must report a hit rate above one half —
// the ISSUE's acceptance bar for the cache being real.
func TestRunCachedWarmHitRate(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Mix:      Mixes[0], // read-heavy
		Files:    4,
		FileSize: 64 << 10,
		IOSize:   1024,
		Workers:  3,
		Ops:      900,
		ZipfFile: 1.2,
		ZipfOff:  1.1,

		CacheBytes:    1 << 20, // holds all 4 x 64KiB files
		CacheBlock:    4096,
		CacheScenario: CacheWarm,
		Metrics:       reg,
	}
	srv := rangestore.NewServer(pfs.New(nil))
	defer srv.Close()
	rep, err := Run(cfg, pipeDialer(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cache
	if c == nil {
		t.Fatal("cached run produced no cache report")
	}
	if c.Scenario != CacheWarm || c.Hits == 0 {
		t.Fatalf("cache report: %+v", c)
	}
	if c.HitRate <= 0.5 {
		t.Fatalf("warm hit rate %.2f, want > 0.5 (%+v)", c.HitRate, c)
	}
	if rep.TotalOps != cfg.Ops || rep.TotalErrs != 0 {
		t.Fatalf("ops=%d errs=%d", rep.TotalOps, rep.TotalErrs)
	}
	// The obs series are registered and live.
	var hits int64
	for _, e := range reg.Snapshot().Entries {
		if e.Name == "cc_hits_total" {
			hits = e.Value
		}
	}
	if hits == 0 {
		t.Fatal("cc_hits_total not threaded through the registry")
	}
	// The JSON report speaks the same vocabulary the smoke script greps.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cc_hits_total", "cc_misses_total", "cc_invalidations_total", "cc_bytes", "hit_rate"} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("JSON report missing %q", key)
		}
	}
}

// TestRunCacheScenarioStorm: the storm scenario migrates files mid-run
// and the report records both the migrations and the invalidations
// they caused.
func TestRunCacheScenarioStorm(t *testing.T) {
	cfg := Config{
		Mix:      Mixes[0],
		Files:    4,
		FileSize: 32 << 10,
		IOSize:   1024,
		Workers:  2,
		Duration: 400 * time.Millisecond,
		Shards:   4,

		CacheBytes:    1 << 20,
		CacheBlock:    4096,
		CacheScenario: CacheStorm,
		StormInterval: 20 * time.Millisecond,
	}
	cfg.Placement = "map"
	rep, err := Run(cfg, mapDialer(t, cfg.Shards))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cache
	if c == nil || c.Migrations == 0 {
		t.Fatalf("storm run recorded no migrations: %+v", c)
	}
	if c.Invalidations == 0 {
		t.Fatalf("migrations bumped the version but nothing invalidated: %+v", c)
	}
}

// TestRunCacheStormNoStaleReads is the coherence acceptance test:
// cached readers and single-writer-per-block writers race a migration
// loop, and no read may return data older than the acked floor the
// reader saw before reading.
func TestRunCacheStormNoStaleReads(t *testing.T) {
	cfg := Config{
		Files:    3,
		FileSize: 16 << 10,
		IOSize:   1024,
		Workers:  4,
		Duration: 600 * time.Millisecond,
		Shards:   4,
		Seed:     42,

		CacheBytes:    4 << 20,
		StormInterval: 15 * time.Millisecond,
	}
	rep, err := RunCacheStorm(cfg, mapDialer(t, cfg.Shards))
	if err != nil {
		t.Fatalf("storm verify failed: %v (report %+v)", err, rep)
	}
	if rep.StaleReads != 0 {
		t.Fatalf("stale reads: %d", rep.StaleReads)
	}
	if rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if rep.Migrations == 0 {
		t.Fatalf("no migrations fired — the storm never stormed: %+v", rep)
	}
	if rep.Hits == 0 {
		t.Fatalf("no cache hits — the scenario never exercised the cache: %+v", rep)
	}
}
