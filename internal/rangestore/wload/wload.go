// Package wload generates rangestore request traffic and measures it the
// way servers are judged: per-operation-class latency distributions
// (p50/p90/p99/max), not just aggregate throughput. Workers are
// closed-loop clients — each keeps a fixed number of requests in flight
// on its own connection — with zipf-skewed file and offset hotness so a
// minority of files and blocks absorb most of the traffic, as in real
// stores.
package wload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/rangestore"
	"repro/internal/rangestore/ccache"
	"repro/internal/stats"
)

// Class is an operation class, the unit of latency accounting.
type Class int

// The operation classes.
const (
	ClassRead Class = iota
	ClassWrite
	ClassAppend
	ClassTruncate
	ClassStat
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassAppend:
		return "append"
	case ClassTruncate:
		return "truncate"
	case ClassStat:
		return "stat"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Mix is a weighted blend of operation classes.
type Mix struct {
	Name    string
	Weights [numClasses]int
	// MaxScanBlocks > 1 makes reads span up to that many IO-size blocks
	// (scan traffic); 0 and 1 mean single-block reads.
	MaxScanBlocks int
}

// The canonical mixes. Weights are per-mille-agnostic — only ratios
// matter.
var Mixes = []Mix{
	{Name: "read-heavy", Weights: [numClasses]int{90, 8, 0, 0, 2}},
	{Name: "write-heavy", Weights: [numClasses]int{24, 70, 0, 4, 2}},
	{Name: "append-log", Weights: [numClasses]int{10, 0, 86, 2, 2}},
	{Name: "mixed-scan", Weights: [numClasses]int{50, 25, 10, 5, 10}, MaxScanBlocks: 16},
}

// MixByName resolves one of the canonical mixes.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, len(Mixes))
	for i, m := range Mixes {
		names[i] = m.Name
	}
	return Mix{}, fmt.Errorf("wload: unknown mix %q (have %s)", name, strings.Join(names, ", "))
}

func (m Mix) total() int {
	t := 0
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// Config parameterizes a run.
type Config struct {
	Mix      Mix
	Files    int           // files in play (default 16)
	FileSize uint64        // pre-populated size per file (default 1 MiB)
	IOSize   int           // bytes per read/write/append (default 4096)
	Workers  int           // concurrent connections (default 4)
	Pipeline int           // requests in flight per worker (default 1)
	Ops      int64         // total operations; 0 = run for Duration
	Duration time.Duration // wall-clock budget when Ops == 0 (default 2s)
	ZipfFile float64       // zipf s for file choice; <= 1 means uniform
	ZipfOff  float64       // zipf s for offset blocks; <= 1 means uniform
	Seed     int64         // base RNG seed (default 1)
	Shards   int           // server shard count; > 1 adds per-shard request counts
	// Placement names the server's placement policy. For "hash" (or
	// empty) the per-shard counts are predicted client-side from the
	// exported pfs.ShardOf, as before. For any other policy — placement
	// is dynamic or at least not the client's hash — prediction is
	// wrong, so the counts are fetched from the server (SHARDS op)
	// before and after the run and reported as the delta.
	Placement string
	// Redial makes workers survive connection loss: in-flight requests
	// are counted as errors, the connection is re-dialed with bounded
	// exponential backoff, handles re-open by name, and the workload
	// continues — the load-generator view of a server restart or
	// failover. Off, any connection error aborts the run (the strict
	// default benchmarks want).
	Redial bool

	// CacheBytes > 0 fronts every worker with a shared client-side read
	// cache (rangestore.CachingClient) of that byte budget. Cached
	// workers run synchronously — Pipeline is ignored — and the report
	// gains a Cache section with hit/miss/invalidation deltas for the
	// measured window.
	CacheBytes int64
	// CacheBlock is the cache's alignment unit (default
	// ccache.DefaultBlockSize, capped at one request's payload).
	CacheBlock int
	// CacheScenario selects what happens around the measured window:
	// CacheCold (default), CacheWarm (working set pre-read), or
	// CacheStorm (background migration loop bumps the placement version
	// mid-run; needs Shards > 1 and map placement).
	CacheScenario string
	// StormInterval paces CacheStorm's migrations (default 50ms).
	StormInterval time.Duration
	// Metrics, when set with CacheBytes > 0, registers the cache's
	// cc_* series (cc_hits_total, cc_misses_total,
	// cc_invalidations_total, cc_evictions_total, cc_bytes) there.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Files <= 0 {
		c.Files = 16
	}
	if c.FileSize == 0 {
		c.FileSize = 1 << 20
	}
	if c.IOSize <= 0 {
		c.IOSize = 4096
	}
	if c.IOSize > rangestore.MaxData {
		c.IOSize = rangestore.MaxData
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Ops == 0 && c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mix.total() == 0 {
		c.Mix = Mixes[0]
	}
	if c.CacheBlock <= 0 {
		c.CacheBlock = ccache.DefaultBlockSize
	}
	if c.CacheBlock > rangestore.MaxData {
		c.CacheBlock = rangestore.MaxData
	}
	if c.CacheScenario == "" {
		c.CacheScenario = CacheCold
	}
	if c.StormInterval <= 0 {
		c.StormInterval = 50 * time.Millisecond
	}
	return c
}

// classRec accumulates one class's latency and volume; the histogram is
// the quantile source.
type classRec struct {
	ops   atomic.Int64
	errs  atomic.Int64
	bytes atomic.Int64
	sumNs atomic.Int64
	maxNs atomic.Int64
	hist  *stats.Histogram
}

func (r *classRec) observe(d time.Duration, n int, failed bool) {
	r.ops.Add(1)
	r.bytes.Add(int64(n))
	r.sumNs.Add(int64(d))
	if failed {
		r.errs.Add(1)
	}
	for {
		cur := r.maxNs.Load()
		if int64(d) <= cur || r.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	r.hist.Observe(d)
}

// ClassReport is the per-class slice of a Report. Latencies are log2-
// bucket upper bounds from internal/stats histograms, except Max which
// is exact. Hist is the full latency distribution the quantiles were
// cut from — sparse (empty buckets omitted), each bucket counting
// observations in [LeNs/2, LeNs) nanoseconds.
type ClassReport struct {
	Class  string       `json:"class"`
	Ops    int64        `json:"ops"`
	Errors int64        `json:"errors"`
	Bytes  int64        `json:"bytes"`
	MeanNs int64        `json:"mean_ns"`
	P50Ns  int64        `json:"p50_ns"`
	P90Ns  int64        `json:"p90_ns"`
	P99Ns  int64        `json:"p99_ns"`
	MaxNs  int64        `json:"max_ns"`
	OpsSec float64      `json:"ops_per_sec"`
	Hist   []HistBucket `json:"hist,omitempty"`
}

// HistBucket is one non-empty latency bucket: Count observations below
// the exclusive upper bound LeNs (and at or above LeNs/2).
type HistBucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// histBuckets flattens a stats histogram into the report's sparse form.
func histBuckets(h *stats.Histogram) []HistBucket {
	counts := h.Buckets()
	var out []HistBucket
	for i, n := range counts {
		if n > 0 {
			out = append(out, HistBucket{LeNs: stats.BucketBound(i), Count: n})
		}
	}
	return out
}

// Report is the outcome of one Run.
type Report struct {
	Mix       string        `json:"mix"`
	Workers   int           `json:"workers"`
	Pipeline  int           `json:"pipeline"`
	Files     int           `json:"files"`
	IOSize    int           `json:"io_size"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	TotalOps  int64         `json:"total_ops"`
	TotalErrs int64         `json:"total_errors"`
	OpsSec    float64       `json:"ops_per_sec"`
	Classes   []ClassReport `json:"classes"`
	// ShardOps is how many requests landed on each server shard when
	// Config.Shards > 1 — the placement-skew view next to the latency
	// numbers. ShardSource says where the numbers came from:
	// "predicted" (client-side pfs.ShardOf, exact for hash placement,
	// counts only the measured ops) or "server" (SHARDS-op delta across
	// the run, authoritative under any placement, includes the workers'
	// opens).
	ShardOps    []int64 `json:"shard_ops,omitempty"`
	ShardSource string  `json:"shard_source,omitempty"`
	Placement   string  `json:"placement,omitempty"`
	// Cache is present when the run used a client-side cache
	// (Config.CacheBytes > 0): counter deltas over the measured window.
	Cache *CacheReport `json:"cache,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// WriteCSV writes one header plus one row per class.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "mix,class,ops,errors,bytes,ops_per_sec,mean_ns,p50_ns,p90_ns,p99_ns,max_ns"); err != nil {
		return err
	}
	for _, c := range r.Classes {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.1f,%d,%d,%d,%d,%d\n",
			r.Mix, c.Class, c.Ops, c.Errors, c.Bytes, c.OpsSec, c.MeanNs, c.P50Ns, c.P90Ns, c.P99Ns, c.MaxNs); err != nil {
			return err
		}
	}
	return nil
}

// String renders a human-readable latency table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix=%s workers=%d pipeline=%d files=%d iosize=%d elapsed=%v\n",
		r.Mix, r.Workers, r.Pipeline, r.Files, r.IOSize, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "total: %d ops (%0.f ops/s), %d errors\n", r.TotalOps, r.OpsSec, r.TotalErrs)
	if len(r.ShardOps) > 0 {
		var total int64
		for _, n := range r.ShardOps {
			total += n
		}
		b.WriteString("shards:")
		for i, n := range r.ShardOps {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(n) / float64(total)
			}
			fmt.Fprintf(&b, " %d=%d(%.0f%%)", i, n, pct)
		}
		if r.ShardSource != "" {
			fmt.Fprintf(&b, " [%s", r.ShardSource)
			if r.Placement != "" {
				fmt.Fprintf(&b, ", %s placement", r.Placement)
			}
			b.WriteByte(']')
		}
		b.WriteByte('\n')
	}
	if c := r.Cache; c != nil {
		fmt.Fprintf(&b, "cache[%s]: hit_rate=%.1f%% hits=%d misses=%d invalidations=%d evictions=%d bytes=%d",
			c.Scenario, 100*c.HitRate, c.Hits, c.Misses, c.Invalidations, c.Evictions, c.Bytes)
		if c.Migrations > 0 {
			fmt.Fprintf(&b, " migrations=%d", c.Migrations)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-9s %10s %10s %9s %9s %9s %9s %9s\n",
		"class", "ops", "ops/s", "mean", "p50", "p90", "p99", "max")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-9s %10d %10.0f %9v %9v %9v %9v %9v\n",
			c.Class, c.Ops, c.OpsSec,
			time.Duration(c.MeanNs).Round(time.Microsecond),
			time.Duration(c.P50Ns), time.Duration(c.P90Ns),
			time.Duration(c.P99Ns), time.Duration(c.MaxNs))
	}
	return b.String()
}

// Dialer opens one fresh connection to the store under test.
type Dialer func() (*rangestore.Client, error)

// picker turns a rand source into file/offset choices, zipf-skewed when
// configured.
type picker struct {
	rng      *rand.Rand
	fileZipf *rand.Zipf
	offZipf  *rand.Zipf
	files    int
	blocks   uint64
}

func newPicker(cfg Config, seed int64) *picker {
	rng := rand.New(rand.NewSource(seed))
	p := &picker{rng: rng, files: cfg.Files, blocks: cfg.FileSize / uint64(cfg.IOSize)}
	if p.blocks == 0 {
		p.blocks = 1
	}
	if cfg.ZipfFile > 1 && cfg.Files > 1 {
		p.fileZipf = rand.NewZipf(rng, cfg.ZipfFile, 1, uint64(cfg.Files-1))
	}
	if cfg.ZipfOff > 1 && p.blocks > 1 {
		p.offZipf = rand.NewZipf(rng, cfg.ZipfOff, 1, p.blocks-1)
	}
	return p
}

func (p *picker) file() int {
	if p.fileZipf != nil {
		return int(p.fileZipf.Uint64())
	}
	return p.rng.Intn(p.files)
}

func (p *picker) offset(ioSize int) uint64 {
	var blk uint64
	if p.offZipf != nil {
		blk = p.offZipf.Uint64()
	} else {
		blk = uint64(p.rng.Int63n(int64(p.blocks)))
	}
	return blk * uint64(ioSize)
}

// fileName names the i'th workload file.
func fileName(i int) string { return fmt.Sprintf("wload-%04d", i) }

// Run drives the configured workload against the store reached through
// dial and reports per-class latency. The store is pre-populated with
// cfg.Files sparse files of cfg.FileSize bytes.
func Run(cfg Config, dial Dialer) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := populate(cfg, dial); err != nil {
		return nil, err
	}

	recs := make([]*classRec, numClasses)
	for i := range recs {
		recs[i] = &classRec{hist: stats.NewHistogram()}
	}
	// Client-side shard prediction only holds for hash placement; under
	// any other policy the server's own tally is the truth, snapshotted
	// around the run. A client cache also voids prediction: reads served
	// locally never land on a shard.
	predicted := (cfg.Placement == "" || cfg.Placement == "hash") && cfg.CacheBytes <= 0
	var shardOps []atomic.Int64
	var baseCounts []int64
	if cfg.Shards > 1 {
		if predicted {
			shardOps = make([]atomic.Int64, cfg.Shards)
		} else {
			var err error
			if baseCounts, err = serverShardCounts(dial); err != nil {
				return nil, fmt.Errorf("wload: server shard counts: %w", err)
			}
		}
	}

	// Cache mode: one shared cache fronts every worker; prewarm and
	// storm hooks run around the measured window, and counter baselines
	// exclude setup traffic from the reported deltas.
	var cache *ccache.Cache
	var baseHits, baseMisses, baseInval, baseEvict int64
	var migrations atomic.Int64
	var stopStorm chan struct{}
	var stormWG sync.WaitGroup
	if cfg.CacheBytes > 0 {
		cache = ccache.New(ccache.Config{MaxBytes: cfg.CacheBytes, BlockSize: cfg.CacheBlock})
		if cfg.Metrics != nil {
			cache.SetMetrics(cfg.Metrics)
		}
		if cfg.CacheScenario == CacheWarm {
			if err := prewarmCache(cfg, dial, cache); err != nil {
				return nil, err
			}
		}
		baseHits, baseMisses, baseInval, baseEvict, _ = cache.Stats()
		if cfg.CacheScenario == CacheStorm {
			stopStorm = make(chan struct{})
			stormWG.Add(1)
			go func() {
				defer stormWG.Done()
				stormMigrator(cfg, dial, &migrations, stopStorm)
			}()
		}
	}

	var remaining atomic.Int64
	remaining.Store(cfg.Ops) // <= 0 means duration-bound
	deadline := time.Time{}
	if cfg.Ops <= 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var err error
			if cache != nil {
				err = runCachedWorker(cfg, dial, cache, recs, &remaining, deadline, cfg.Seed+int64(w)*7919)
			} else {
				err = runWorker(cfg, dial, recs, shardOps, &remaining, deadline, cfg.Seed+int64(w)*7919)
			}
			if err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	if stopStorm != nil {
		close(stopStorm)
		stormWG.Wait()
	}
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	rep := &Report{
		Mix:      cfg.Mix.Name,
		Workers:  cfg.Workers,
		Pipeline: cfg.Pipeline,
		Files:    cfg.Files,
		IOSize:   cfg.IOSize,
		Elapsed:  elapsed,
	}
	secs := elapsed.Seconds()
	for c := Class(0); c < numClasses; c++ {
		r := recs[c]
		ops := r.ops.Load()
		if ops == 0 {
			continue
		}
		cr := ClassReport{
			Class:  c.String(),
			Ops:    ops,
			Errors: r.errs.Load(),
			Bytes:  r.bytes.Load(),
			MeanNs: r.sumNs.Load() / ops,
			P50Ns:  int64(r.hist.Quantile(0.50)),
			P90Ns:  int64(r.hist.Quantile(0.90)),
			P99Ns:  int64(r.hist.Quantile(0.99)),
			MaxNs:  r.maxNs.Load(),
			OpsSec: float64(ops) / secs,
			Hist:   histBuckets(r.hist),
		}
		rep.TotalOps += ops
		rep.TotalErrs += cr.Errors
		rep.Classes = append(rep.Classes, cr)
	}
	rep.OpsSec = float64(rep.TotalOps) / secs
	rep.Placement = cfg.Placement
	switch {
	case shardOps != nil:
		rep.ShardOps = make([]int64, len(shardOps))
		for i := range shardOps {
			rep.ShardOps[i] = shardOps[i].Load()
		}
		rep.ShardSource = "predicted"
	case baseCounts != nil:
		// The measured run is complete; losing the closing skew
		// snapshot (server draining, transient dial failure) must not
		// throw its latency data away — degrade to a report without
		// shard counts instead.
		end, err := serverShardCounts(dial)
		if err != nil || len(end) != len(baseCounts) {
			rep.ShardSource = "server (final snapshot unavailable)"
			break
		}
		rep.ShardOps = make([]int64, len(end))
		for i := range end {
			rep.ShardOps[i] = end[i] - baseCounts[i]
		}
		rep.ShardSource = "server"
	}
	if cache != nil {
		hits, misses, inval, evict, bytes := cache.Stats()
		cr := &CacheReport{
			Scenario:      cfg.CacheScenario,
			BlockSize:     cfg.CacheBlock,
			MaxBytes:      cfg.CacheBytes,
			Hits:          hits - baseHits,
			Misses:        misses - baseMisses,
			Invalidations: inval - baseInval,
			Evictions:     evict - baseEvict,
			Bytes:         bytes,
			Migrations:    migrations.Load(),
		}
		if lookups := cr.Hits + cr.Misses; lookups > 0 {
			cr.HitRate = float64(cr.Hits) / float64(lookups)
		}
		rep.Cache = cr
	}
	return rep, nil
}

// serverShardCounts fetches the server's per-shard request tally over a
// fresh connection.
func serverShardCounts(dial Dialer) ([]int64, error) {
	cl, err := dial()
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.ShardCounts()
}

// populate creates and sparsely extends the workload files.
func populate(cfg Config, dial Dialer) error {
	cl, err := dial()
	if err != nil {
		return err
	}
	defer cl.Close()
	one := []byte{0}
	for i := 0; i < cfg.Files; i++ {
		h, err := cl.Open(fileName(i), true)
		if err != nil {
			return fmt.Errorf("wload: populate %s: %w", fileName(i), err)
		}
		if size, _, err := cl.Stat(h); err != nil {
			return err
		} else if size < cfg.FileSize {
			// One byte at the tail extends the watermark; holes read zero.
			if _, err := cl.WriteAt(h, one, cfg.FileSize-1); err != nil {
				return err
			}
		}
	}
	return nil
}

// inflightOp tracks one pipelined request from send to response.
type inflightOp struct {
	class Class
	t0    time.Time
	bytes int
}

func runWorker(cfg Config, dial Dialer, recs []*classRec, shardOps []atomic.Int64, remaining *atomic.Int64, deadline time.Time, seed int64) error {
	cl, err := dial()
	if err != nil {
		return err
	}
	// cl is rebound on redial; the closure closes whichever connection
	// is live at return.
	defer func() { cl.Close() }()

	handles := make([]uint32, cfg.Files)
	for i := range handles {
		h, err := cl.Open(fileName(i), false)
		if err != nil {
			return err
		}
		handles[i] = h
	}
	// Precompute each file's owning shard (the store's name hash) so the
	// hot loop's shard accounting is one table lookup.
	var shardOf []int
	if shardOps != nil {
		shardOf = make([]int, cfg.Files)
		for i := range shardOf {
			shardOf[i] = pfs.ShardOf(fileName(i), len(shardOps))
		}
	}

	pick := newPicker(cfg, seed)
	payload := make([]byte, cfg.IOSize)
	pick.rng.Read(payload)

	// cum turns mix weights into a cumulative table for O(classes) picks.
	var cum [numClasses]int
	t := 0
	for c := 0; c < int(numClasses); c++ {
		t += cfg.Mix.Weights[c]
		cum[c] = t
	}
	pickClass := func() Class {
		n := pick.rng.Intn(t)
		for c := 0; c < int(numClasses); c++ {
			if n < cum[c] {
				return Class(c)
			}
		}
		return ClassRead
	}

	// budget: one token per op when op-bound; time check when
	// duration-bound (polled cheaply every few ops).
	opBound := cfg.Ops > 0
	done := func(sent int64) bool {
		if opBound {
			return remaining.Add(-1) < 0
		}
		return sent%64 == 0 && time.Now().After(deadline)
	}

	queue := make([]inflightOp, 0, cfg.Pipeline)
	var resp rangestore.Response

	// recvOne pops the oldest in-flight request and records its latency.
	recvOne := func() error {
		if err := cl.Recv(&resp); err != nil {
			return err
		}
		op := queue[0]
		queue = queue[1:]
		err := resp.Err()
		// A read ending at EOF is service, not failure.
		failed := err != nil
		n := op.bytes
		if resp.Op == rangestore.OpRead {
			n = len(resp.Data)
		}
		recs[op.class].observe(time.Since(op.t0), n, failed)
		return nil
	}

	sendOne := func() error {
		class := pickClass()
		fi := pick.file()
		h := handles[fi]
		if shardOps != nil {
			shardOps[shardOf[fi]].Add(1)
		}
		req := rangestore.Request{Handle: h}
		bytes := 0
		switch class {
		case ClassRead:
			req.Op = rangestore.OpRead
			req.Off = pick.offset(cfg.IOSize)
			length := cfg.IOSize
			if m := cfg.Mix.MaxScanBlocks; m > 1 {
				length *= 1 + pick.rng.Intn(m)
				if length > rangestore.MaxData {
					length = rangestore.MaxData
				}
			}
			req.Length = uint32(length)
		case ClassWrite:
			req.Op = rangestore.OpWrite
			req.Off = pick.offset(cfg.IOSize)
			req.Data = payload
			bytes = len(payload)
		case ClassAppend:
			req.Op = rangestore.OpAppend
			req.Data = payload
			bytes = len(payload)
		case ClassTruncate:
			req.Op = rangestore.OpTruncate
			req.Size = cfg.FileSize/2 + uint64(pick.rng.Int63n(int64(cfg.FileSize/2+1)))
		case ClassStat:
			req.Op = rangestore.OpStat
		}
		if _, err := cl.Send(&req); err != nil {
			return err
		}
		queue = append(queue, inflightOp{class: class, t0: time.Now(), bytes: bytes})
		return nil
	}

	// reconnect charges the queue's in-flight requests as errors (their
	// responses died with the connection) and re-dials with bounded
	// backoff, re-opening every handle by name. Returns the original
	// error when redial is off or reconnection gives out.
	reconnect := func(cause error) error {
		if !cfg.Redial {
			return cause
		}
		for _, op := range queue {
			recs[op.class].observe(time.Since(op.t0), 0, true)
		}
		queue = queue[:0]
		cl.Close()
		backoff := 10 * time.Millisecond
		limit := time.Now().Add(10 * time.Second)
		if !opBound && deadline.Before(limit) {
			limit = deadline
		}
		for {
			c2, err := dial()
			if err == nil {
				ok := true
				for i := range handles {
					h, err := c2.Open(fileName(i), false)
					if err != nil {
						c2.Close()
						ok = false
						break
					}
					handles[i] = h
				}
				if ok {
					cl = c2
					return nil
				}
			}
			if time.Now().Add(backoff).After(limit) {
				return cause
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, 500*time.Millisecond)
		}
	}

	var sent int64
	for {
		if done(sent) {
			break
		}
		if err := sendOne(); err != nil {
			if err = reconnect(err); err != nil {
				return err
			}
			continue
		}
		sent++
		if len(queue) < cfg.Pipeline {
			continue
		}
		if err := cl.Flush(); err != nil {
			if err = reconnect(err); err != nil {
				return err
			}
			continue
		}
		if err := recvOne(); err != nil {
			if err = reconnect(err); err != nil {
				return err
			}
		}
	}
	// Drain.
	if err := cl.Flush(); err != nil {
		return reconnect(err)
	}
	for len(queue) > 0 {
		if err := recvOne(); err != nil {
			// The lost responses were charged by reconnect; nothing left
			// to drain on the fresh connection.
			return reconnect(err)
		}
	}
	return nil
}
