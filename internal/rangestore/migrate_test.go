package rangestore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/pfs"
)

// mapServer builds a server over a map-placed sharded store.
func mapServer(t testing.TB, shards int) (*Server, *pfs.Sharded) {
	t.Helper()
	store := pfs.NewShardedPlacement(shards, nil, pfs.NewMapPlacement(nil))
	srv := NewServerSharded(store)
	t.Cleanup(func() { srv.Close() })
	return srv, store
}

// TestServedMigrateStaleHandle: a handle opened before a MIGRATE keeps
// working across it — the server re-resolves the stale route on the
// next request, post-migration traffic is attributed to the new shard,
// and the data written through the old route is visible through the new
// one.
func TestServedMigrateStaleHandle(t *testing.T) {
	srv, store := mapServer(t, 4)
	cl := pipeClient(t, srv)

	const name = "served-hot"
	h, err := cl.Open(name, true)
	if err != nil {
		t.Fatal(err)
	}
	before := []byte("written before the move")
	if _, err := cl.WriteAt(h, before, 64); err != nil {
		t.Fatal(err)
	}

	src := store.ShardIndex(name)
	dst := (src + 1) % 4
	// Migrate over a second connection, as an operator would.
	admin := pipeClient(t, srv)
	if err := admin.Migrate(name, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if _, err := store.Shard(dst).Open(name); err != nil {
		t.Fatalf("file not on destination shard: %v", err)
	}
	if _, err := store.Shard(src).Open(name); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatalf("file still on source shard: %v", err)
	}

	// The stale handle serves reads of the moved content...
	got := make([]byte, len(before))
	if _, err := cl.ReadAt(h, got, 64); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, before) {
		t.Fatalf("read through stale handle = %q", got)
	}
	// ...and writes through it land on the live file, attributed to the
	// destination shard.
	preCounts := srv.ShardCounts()
	after := []byte("written after the move")
	if _, err := cl.WriteAt(h, after, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadAt(h, got[:len(after)], 4096); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(after)], after) {
		t.Fatalf("post-migration write = %q", got[:len(after)])
	}
	postCounts := srv.ShardCounts()
	if postCounts[dst] != preCounts[dst]+2 {
		t.Fatalf("post-migration requests not attributed to shard %d: %v -> %v", dst, preCounts, postCounts)
	}
	if postCounts[src] != preCounts[src] {
		t.Fatalf("post-migration requests still hit shard %d: %v -> %v", src, preCounts, postCounts)
	}
	// A fresh open sees everything.
	cl2 := pipeClient(t, srv)
	h2, err := cl2.Open(name, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.ReadAt(h2, got, 64); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, before) {
		t.Fatalf("fresh handle read = %q", got)
	}
}

// TestServedMigrateErrors: static placements refuse MIGRATE, and a
// destination beyond the shard count is a bad request.
func TestServedMigrateErrors(t *testing.T) {
	hashSrv := NewServerSharded(pfs.NewSharded(4, nil))
	defer hashSrv.Close()
	cl := pipeClient(t, hashSrv)
	if _, err := cl.Open("f", true); err != nil {
		t.Fatal(err)
	}
	err := cl.Migrate("f", 1)
	if err == nil || !strings.Contains(err.Error(), "placement") {
		t.Fatalf("MIGRATE on hash placement = %v", err)
	}

	srv, _ := mapServer(t, 4)
	cl2 := pipeClient(t, srv)
	if _, err := cl2.Open("f", true); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Migrate("f", 4); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("MIGRATE to shard 4 of 4 = %v", err)
	}
	if err := cl2.Migrate("ghost", 1); !errors.Is(err, ErrNotExist) {
		t.Fatalf("MIGRATE of missing file = %v", err)
	}
}

// TestMigrateMidBatch: a pipelined batch that interleaves data ops and
// MIGRATEs on one connection must complete — the batch loop returns its
// shard lease before Migrate takes its own (hold-at-most-one), and the
// answers come back in order.
func TestMigrateMidBatch(t *testing.T) {
	srv, store := mapServer(t, 4)
	cl := pipeClient(t, srv)
	const name = "batched"
	h, err := cl.Open(name, true)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	for i := 0; i < rounds; i++ {
		if _, err := cl.Send(&Request{Op: OpWrite, Handle: h, Off: uint64(i) * 64, Data: []byte{byte(i + 1)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Send(&Request{Op: OpMigrate, Name: name, Dst: uint32(i % 4)}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Send(&Request{Op: OpRead, Handle: h, Off: uint64(i) * 64, Length: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp Response
	for i := 0; i < rounds; i++ {
		for j := 0; j < 3; j++ {
			if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
				t.Fatalf("round %d resp %d: %v / %v", i, j, err, resp.Err())
			}
		}
		if len(resp.Data) != 1 || resp.Data[0] != byte(i+1) {
			t.Fatalf("round %d read back %v across the migration", i, resp.Data)
		}
	}
	if got := store.ShardIndex(name); got != (rounds-1)%4 {
		t.Fatalf("final shard = %d, want %d", got, (rounds-1)%4)
	}
}

// TestClientShardCounts: the SHARDS op reports the server-side tally.
func TestClientShardCounts(t *testing.T) {
	srv, _ := mapServer(t, 4)
	cl := pipeClient(t, srv)
	h, err := cl.Open("sc", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.WriteAt(h, []byte("x"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := cl.ShardCounts()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 4 {
		t.Fatalf("ShardCounts len = %d", len(counts))
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	// 1 open + 5 writes (the SHARDS op itself is not shard-routed).
	if total != 6 {
		t.Fatalf("counts sum to %d, want 6: %v", total, counts)
	}
	want := srv.ShardCounts()
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("wire counts %v != server counts %v", counts, want)
		}
	}
}

// TestServedMigrateUnderLoad races concurrent served READ/WRITE/APPEND
// traffic against repeated migrations of the same files over the admin
// surface. Run under -race (CI: -cpu=2,8).
func TestServedMigrateUnderLoad(t *testing.T) {
	srv, _ := mapServer(t, 4)
	const (
		hot     = "served-load"
		hotLog  = "served-load-log"
		workers = 4
		span    = 1024
	)
	setup := pipeClient(t, srv)
	if _, err := setup.Open(hot, true); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Open(hotLog, true); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ready, wg sync.WaitGroup
	ready.Add(workers)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		admin := pipeClient(t, srv)
		ready.Wait()
		for i := 0; i < 40; i++ {
			if err := admin.Migrate(hot, i%4); err != nil {
				t.Errorf("Migrate(%s): %v", hot, err)
				return
			}
			if err := admin.Migrate(hotLog, (i+2)%4); err != nil {
				t.Errorf("Migrate(%s): %v", hotLog, err)
				return
			}
		}
	}()

	type landed struct {
		off uint64
		rec []byte
	}
	appendLog := make([][]landed, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var once sync.Once
			defer once.Do(ready.Done)
			cl := pipeClient(t, srv)
			h, err := cl.Open(hot, false)
			if err != nil {
				t.Errorf("worker %d open: %v", w, err)
				return
			}
			lh, err := cl.Open(hotLog, false)
			if err != nil {
				t.Errorf("worker %d open log: %v", w, err)
				return
			}
			payload := bytes.Repeat([]byte{byte(w + 1)}, span)
			base := uint64(1<<20) + uint64(w)*span
			buf := make([]byte, span)
			rec := bytes.Repeat([]byte{byte(0xB0 + w)}, 48)
			for i := 0; ; i++ {
				if _, err := cl.WriteAt(h, payload, base); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				n, err := cl.ReadAt(h, buf, base)
				if err != nil && err != io.EOF {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				for j := 0; j < n; j++ {
					if buf[j] != byte(w+1) {
						t.Errorf("worker %d read back byte %d = %#x", w, j, buf[j])
						return
					}
				}
				off, err := cl.Append(lh, rec)
				if err != nil {
					t.Errorf("worker %d append: %v", w, err)
					return
				}
				appendLog[w] = append(appendLog[w], landed{off, rec})
				once.Do(ready.Done)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Verify over a fresh connection.
	cl := pipeClient(t, srv)
	h, err := cl.Open(hot, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, span)
	for w := 0; w < workers; w++ {
		base := uint64(1<<20) + uint64(w)*span
		if _, err := cl.ReadAt(h, buf, base); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		for j, b := range buf {
			if b != byte(w+1) {
				t.Fatalf("worker %d range byte %d = %#x after settle", w, j, b)
			}
		}
	}
	lh, err := cl.Open(hotLog, false)
	if err != nil {
		t.Fatal(err)
	}
	for w, lands := range appendLog {
		for i, l := range lands {
			got := make([]byte, len(l.rec))
			if _, err := cl.ReadAt(lh, got, l.off); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, l.rec) {
				t.Fatalf("worker %d record %d at offset %d corrupted", w, i, l.off)
			}
		}
	}
}

// TestRebalance: skewed traffic, then Rebalance moves the hottest files
// off the overloaded shard and the placement follows.
func TestRebalance(t *testing.T) {
	srv, store := mapServer(t, 4)
	cl := pipeClient(t, srv)

	// Two hot files co-located on one shard (found by probing the hash
	// fallback) plus cold ones elsewhere: moving one hot file off the
	// shared shard is a strict improvement, so the rebalancer must act.
	hotA, hotB := colocatedPair(t, 4)
	names := []string{hotA, hotB, "reb-cold-0", "reb-cold-1"}
	handles := make([]uint32, len(names))
	for i := range names {
		h, err := cl.Open(names[i], true)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	one := []byte{1}
	for i := 0; i < 400; i++ {
		if _, err := cl.WriteAt(handles[0], one, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := cl.WriteAt(handles[1], one, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	migs, err := srv.Rebalance(2)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if len(migs) == 0 {
		t.Fatalf("no migrations for a %v tally", srv.ShardCounts())
	}
	if migs[0].Name != hotA {
		t.Fatalf("hottest file %q not moved first: %v", hotA, migs)
	}
	for _, m := range migs {
		if got := store.ShardIndex(m.Name); got != m.To {
			t.Fatalf("%v: placement says shard %d", m, got)
		}
		if _, err := store.Shard(m.To).Open(m.Name); err != nil {
			t.Fatalf("%v: not resident on destination: %v", m, err)
		}
	}
	// Traffic keeps working through the old handles.
	for i := range handles {
		if _, err := cl.WriteAt(handles[i], one, 0); err != nil {
			t.Fatalf("post-rebalance write %d: %v", i, err)
		}
	}

	// A static store refuses once a move is warranted.
	hashSrv := NewServerSharded(pfs.NewSharded(4, nil))
	defer hashSrv.Close()
	hcl := pipeClient(t, hashSrv)
	for i, name := range []string{hotA, hotB} {
		hh, err := hcl.Open(name, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 100*(2-i); j++ {
			if _, err := hcl.WriteAt(hh, one, uint64(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := hashSrv.Rebalance(1); !errors.Is(err, pfs.ErrStaticPlacement) {
		t.Fatalf("Rebalance on hash store = %v", err)
	}
}

// colocatedPair probes names until two land on the same shard under the
// FNV hash (the map placement's fallback for unpinned names).
func colocatedPair(t *testing.T, shards int) (string, string) {
	t.Helper()
	byShard := make(map[int]string)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("reb-hot-%02d", i)
		s := pfs.ShardOf(name, shards)
		if prev, ok := byShard[s]; ok {
			return prev, name
		}
		byShard[s] = name
	}
	t.Fatal("no colocated pair in 64 probes")
	return "", ""
}
