package rangestore

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LeaderRef is a shared, atomically updated leader address. The
// replica's dial closure reads it before every connection attempt and
// the elector rewrites it when a new leader is discovered or elected,
// so streams re-point without restarting the replica.
type LeaderRef struct{ p atomic.Value }

// NewLeaderRef returns a LeaderRef holding addr.
func NewLeaderRef(addr string) *LeaderRef {
	r := &LeaderRef{}
	r.p.Store(addr)
	return r
}

// Load returns the current leader address.
func (r *LeaderRef) Load() string { return r.p.Load().(string) }

// Store publishes a new leader address.
func (r *LeaderRef) Store(addr string) { r.p.Store(addr) }

// ElectorConfig parameterizes an Elector.
type ElectorConfig struct {
	// Self is this node's advertised address; it must appear in Peers.
	Self string
	// Peers is the full cluster membership, self included. Majority is
	// len(Peers)/2+1.
	Peers []string
	// Dial opens a connection to a peer address. The elector wraps the
	// conn in a Client for STATE/VOTE probes and hands raw conns to
	// Replica.Fetch for post-win catch-up.
	Dial func(addr string) (net.Conn, error)
	// Timeout is the leader-silence threshold: no frame from the
	// leader for this long starts an election round. The elector ticks
	// at roughly a third of it, jittered to break symmetric races.
	Timeout time.Duration
	// OpTimeout bounds each probe round trip; defaults to Timeout.
	OpTimeout time.Duration
	// Leader, when set, is rewritten whenever the elector learns of a
	// new leader (discovered or self).
	Leader *LeaderRef
	// Logger receives election logs; nil is silent.
	Logger *obs.Logger
}

// Elector watches the replica's leader stream and runs epoch-stamped
// elections when it goes silent. The protocol is vote-then-catch-up:
// a candidate that wins a majority of votes pulls any records its
// voters hold beyond its own frontier (per shard, from the voter with
// the highest durable LSN) before promoting, so every quorum-acked
// write survives the failover. Votes are granted at most once per
// epoch and epochs persist across crashes, so two leaders can never
// hold the same epoch; a deposed leader's stale acks are fenced by the
// epoch number they carry.
type Elector struct {
	srv    *Server
	cfg    ElectorConfig
	rng    *rand.Rand
	stopCh chan struct{}
	wg     sync.WaitGroup

	// loseStreak counts consecutive rounds where this node deferred to
	// a better-placed peer and still no leader appeared; after a few
	// such rounds it stands anyway so a crashed front-runner cannot
	// wedge the cluster.
	loseStreak int
}

// peerState is one probe result.
type peerState struct {
	addr string
	st   *StateInfo
}

// StartElector attaches an election loop to a follower server. The
// server must have been built WithFollower (it needs the replica to
// measure leader liveness and to catch up after a win) and WithJournal
// (epochs and durable frontiers live there).
func StartElector(srv *Server, cfg ElectorConfig) (*Elector, error) {
	if srv.replica == nil || srv.journal == nil {
		return nil, errors.New("rangestore: elector needs a follower with a journal")
	}
	if cfg.Dial == nil || cfg.Self == "" || len(cfg.Peers) == 0 {
		return nil, errors.New("rangestore: elector config incomplete")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = cfg.Timeout
	}
	seed := int64(0)
	for _, c := range cfg.Self {
		seed = seed*131 + int64(c)
	}
	e := &Elector{
		srv:    srv,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed ^ time.Now().UnixNano())),
		stopCh: make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Stop halts the election loop. It does not undo a promotion.
func (e *Elector) Stop() {
	close(e.stopCh)
	e.wg.Wait()
}

func (e *Elector) logger() *obs.Logger {
	return e.cfg.Logger
}

func (e *Elector) run() {
	defer e.wg.Done()
	for {
		base := e.cfg.Timeout / 3
		d := base + time.Duration(e.rng.Int63n(int64(base)+1))
		select {
		case <-e.stopCh:
			return
		case <-time.After(d):
		}
		if !e.srv.notLeader.Load() {
			e.loseStreak = 0
			continue // we are the leader
		}
		if time.Since(e.srv.replica.LastContact()) < e.cfg.Timeout {
			e.loseStreak = 0
			continue // leader stream is live
		}
		e.round()
	}
}

// round runs one election attempt: probe the cluster, re-point to a
// live leader if one exists, otherwise stand for election if this node
// is the best-placed fresh candidate.
func (e *Elector) round() {
	j := e.srv.journal
	states := e.probe()

	// A live leader at our epoch or later wins outright: adopt it.
	for _, ps := range states {
		if ps.st.Leader && ps.st.Epoch >= j.Epoch() {
			if ps.st.Epoch > j.Epoch() {
				if _, err := j.AdvanceEpoch(ps.st.Epoch); err != nil {
					e.logger().Warn("epoch adoption failed", "err", err)
				}
			}
			e.pointAt(ps.addr)
			e.loseStreak = 0
			e.logger().Info("re-pointed to live leader", "leader", ps.addr, "epoch", ps.st.Epoch)
			return
		}
	}

	if !e.srv.replica.Fresh() {
		// A stale replica (detached, mid-snapshot) must not lead; its
		// voters would have to backfill everything. Wait for the
		// streams to converge or for a fresh peer to stand.
		return
	}

	own, err := j.DurableLSNs()
	if err != nil {
		e.logger().Warn("election: durable frontier unavailable", "err", err)
		return
	}
	if !e.shouldStand(own, states) {
		e.loseStreak++
		return
	}

	maxEpoch := j.Epoch()
	for _, ps := range states {
		if ps.st.Epoch > maxEpoch {
			maxEpoch = ps.st.Epoch
		}
	}
	e.stand(maxEpoch+1, own, states)
}

// probe asks every peer (self excluded) for its STATE in parallel.
// Unreachable peers are simply absent from the result.
func (e *Elector) probe() []peerState {
	var mu sync.Mutex
	var out []peerState
	var wg sync.WaitGroup
	for _, addr := range e.cfg.Peers {
		if addr == e.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			st, err := e.stateOf(addr)
			if err != nil {
				return
			}
			mu.Lock()
			out = append(out, peerState{addr: addr, st: st})
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	return out
}

func (e *Elector) stateOf(addr string) (*StateInfo, error) {
	nc, err := e.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(nc)
	defer c.Close()
	c.SetOpTimeout(e.cfg.OpTimeout)
	return c.State()
}

// shouldStand decides whether this node is the cluster's best fresh
// candidate: highest durable LSN sum, lowest address on ties. After a
// few deferring rounds with still no leader it stands regardless — the
// front-runner may itself be dead.
func (e *Elector) shouldStand(own []uint64, states []peerState) bool {
	if e.loseStreak >= 3 {
		return true
	}
	mine := lsnSum(own)
	for _, ps := range states {
		if !ps.st.Fresh {
			continue
		}
		theirs := lsnSum(ps.st.LSNs)
		if theirs > mine || (theirs == mine && ps.addr < e.cfg.Self) {
			return false
		}
	}
	return true
}

// stand runs one candidacy at epoch: persist the epoch (the self-vote
// — a node that voted for itself can never grant the same epoch to
// another candidate, even across a crash), gather votes, and on a
// majority catch up from the voters and promote.
func (e *Elector) stand(epoch uint64, own []uint64, states []peerState) {
	j := e.srv.journal
	granted, err := j.AdvanceEpoch(epoch)
	if err != nil {
		e.logger().Warn("election: cannot persist epoch", "epoch", epoch, "err", err)
		return
	}
	if !granted {
		return // a concurrent round moved the epoch past ours
	}
	e.logger().Info("standing for election", "epoch", epoch)

	var mu sync.Mutex
	votes := []voteRes{}
	var wg sync.WaitGroup
	for _, addr := range e.cfg.Peers {
		if addr == e.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			v, err := e.voteOf(addr, epoch)
			if err != nil {
				return
			}
			mu.Lock()
			votes = append(votes, voteRes{addr: addr, v: v})
			mu.Unlock()
		}(addr)
	}
	wg.Wait()

	got := 1 // self-vote
	for _, vr := range votes {
		if vr.v.Granted {
			got++
		}
		if vr.v.Epoch > epoch {
			// Someone is running a later round; ours is already lost.
			if _, err := j.AdvanceEpoch(vr.v.Epoch); err != nil {
				e.logger().Warn("epoch adoption failed", "err", err)
			}
		}
	}
	need := len(e.cfg.Peers)/2 + 1
	if got < need {
		e.logger().Info("election lost", "epoch", epoch, "votes", got, "need", need)
		e.loseStreak = 0 // we stood; the streak tracks deferrals only
		return
	}
	if j.Epoch() > epoch {
		return // deposed between counting and promoting
	}
	e.logger().Info("election won", "epoch", epoch, "votes", got, "need", need)

	// Catch up before serving: a voter may hold quorum-acked records
	// past our frontier. Per shard, pull from the granting voter with
	// the highest durable LSN. Voter shard logs are gap-free prefixes
	// of the old leader's, so replaying a voter's tail lands exactly
	// on ours. halt() first — Fetch owns the connection slot the
	// stream loops would otherwise race for.
	e.srv.replica.halt()
	if !e.catchUp(epoch, own, votes) {
		// Without catch-up promotion would serve a truncated history.
		// The replica is halted; this node sits out until restarted.
		e.logger().Error("election: catch-up failed; refusing promotion", "epoch", epoch)
		return
	}
	if err := e.srv.promoteSelf(epoch, e.cfg.Self, len(e.cfg.Peers)); err != nil {
		e.logger().Error("election: promotion failed", "epoch", epoch, "err", err)
		return
	}
	if e.cfg.Leader != nil {
		e.cfg.Leader.Store(e.cfg.Self)
	}
	e.loseStreak = 0
}

// voteRes pairs a vote response with the voter it came from — the
// winner fetches missing records from granting voters.
type voteRes struct {
	addr string
	v    *VoteInfo
}

// catchUp pulls every shard where some granting voter's durable LSN
// exceeds ours, retrying across voters. Returns false if any lagging
// shard could not be filled.
func (e *Elector) catchUp(epoch uint64, own []uint64, votes []voteRes) bool {
	for shard := range own {
		// Voters sorted by how far ahead they are, best first.
		var srcs []voteRes
		for _, vr := range votes {
			if vr.v.Granted && shard < len(vr.v.LSNs) && vr.v.LSNs[shard] > own[shard] {
				srcs = append(srcs, voteRes{addr: vr.addr, v: vr.v})
			}
		}
		if len(srcs) == 0 {
			continue
		}
		for i := 1; i < len(srcs); i++ {
			for k := i; k > 0 && srcs[k].v.LSNs[shard] > srcs[k-1].v.LSNs[shard]; k-- {
				srcs[k], srcs[k-1] = srcs[k-1], srcs[k]
			}
		}
		ok := false
		for _, src := range srcs {
			if err := e.fetchFrom(src.addr, shard); err != nil {
				e.logger().Warn("election: catch-up fetch failed", "shard", shard, "from", src.addr, "err", err)
				continue
			}
			ok = true
			break
		}
		if !ok {
			return false
		}
	}
	return true
}

func (e *Elector) fetchFrom(addr string, shard int) error {
	nc, err := e.cfg.Dial(addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	return e.srv.replica.Fetch(shard, nc, e.cfg.OpTimeout)
}

func (e *Elector) voteOf(addr string, epoch uint64) (*VoteInfo, error) {
	nc, err := e.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(nc)
	defer c.Close()
	c.SetOpTimeout(e.cfg.OpTimeout)
	return c.RequestVote(epoch, e.cfg.Self)
}

// pointAt publishes addr as the leader for both the redirect path and
// the replica's dial loop.
func (e *Elector) pointAt(addr string) {
	e.srv.setLeaderAddr(addr)
	if e.cfg.Leader != nil {
		e.cfg.Leader.Store(addr)
	}
}

func lsnSum(ls []uint64) uint64 {
	var s uint64
	for _, l := range ls {
		s += l
	}
	return s
}
