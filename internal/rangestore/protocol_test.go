package rangestore

import (
	"bytes"
	"errors"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpOpen, Flags: OpenCreate, Name: "data/alpha"},
		{Op: OpOpen, Name: ""},
		{Op: OpRead, Seq: 7, Handle: 3, Off: 1 << 40, Length: 4096},
		{Op: OpWrite, Seq: 8, Handle: 0, Off: 12345, Data: []byte("payload")},
		{Op: OpAppend, Seq: 9, Handle: 2, Data: bytes.Repeat([]byte{0xEE}, 100)},
		{Op: OpTruncate, Seq: 10, Handle: 1, Size: 777},
		{Op: OpStat, Seq: 11, Handle: 4},
		{Op: OpMigrate, Seq: 12, Dst: 3, Name: "hot/file"},
		{Op: OpShards, Seq: 13},
		{Op: OpRecovered, Seq: 14},
		{Op: OpFollow, Seq: 15, Dst: 5, Off: 1 << 42, Flags: FollowReset},
		{Op: OpFollow, Seq: 16, Dst: 0, Off: 0},
		{Op: OpPromote, Seq: 17},
	}
	var buf []byte
	for i := range reqs {
		var err error
		buf, err = AppendRequest(buf, &reqs[i])
		if err != nil {
			t.Fatalf("encode %v: %v", reqs[i].Op, err)
		}
	}
	br := bytes.NewReader(buf)
	for i := range reqs {
		body, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Request
		if err := ParseRequest(body, &got); err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
		want := reqs[i]
		if got.Op != want.Op || got.Seq != want.Seq || got.Handle != want.Handle ||
			got.Off != want.Off || got.Length != want.Length || got.Size != want.Size ||
			got.Flags != want.Flags || got.Dst != want.Dst || got.Name != want.Name ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("request %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Op: OpOpen, Seq: 1, Handle: 9},
		{Op: OpRead, Seq: 2, EOF: true, Data: []byte("short tail")},
		{Op: OpRead, Seq: 3, Data: nil},
		{Op: OpWrite, Seq: 4, N: 512},
		{Op: OpAppend, Seq: 5, Off: 1 << 33},
		{Op: OpTruncate, Seq: 6},
		{Op: OpStat, Seq: 7, Size: 4096, Blocks: 2},
		{Op: OpOpen, Seq: 8, Status: StatusNotExist},
		{Op: OpWrite, Seq: 9, Status: StatusError, Msg: "disk on fire"},
		{Op: OpMigrate, Seq: 10},
		{Op: OpShards, Seq: 11, Shards: []int64{12, 0, 99, 1 << 40}},
		{Op: OpShards, Seq: 12, Shards: []int64{}},
		{Op: OpRecovered, Seq: 13, Recovered: RecoveredInfo{
			WAL: true, Shards: 8, Files: 1234, FromCkpt: 1000,
			Migrations: 3, Records: 1 << 33, TornBytes: 77, MaxLSN: 1 << 40,
		}},
		{Op: OpRecovered, Seq: 14},
		{Op: OpFollow, Seq: 15, EOF: true, Off: 1 << 41, N: 12},
		{Op: OpFollow, Seq: 16},
		{Op: OpPromote, Seq: 17},
		{Op: OpWrite, Seq: 18, Status: StatusNotLeader, Msg: "10.0.0.1:7420"},
	}
	var buf []byte
	for i := range resps {
		var err error
		buf, err = AppendResponse(buf, &resps[i])
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	br := bytes.NewReader(buf)
	for i := range resps {
		body, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Response
		if err := ParseResponse(body, &got); err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
		want := resps[i]
		if got.Op != want.Op || got.Seq != want.Seq || got.Status != want.Status ||
			got.Handle != want.Handle || got.N != want.N || got.Off != want.Off ||
			got.Size != want.Size || got.Blocks != want.Blocks || got.EOF != want.EOF ||
			got.Msg != want.Msg || !bytes.Equal(got.Data, want.Data) ||
			len(got.Shards) != len(want.Shards) || got.Recovered != want.Recovered {
			t.Fatalf("response %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Shards {
			if got.Shards[j] != want.Shards[j] {
				t.Fatalf("response %d shard %d: got %d want %d", i, j, got.Shards[j], want.Shards[j])
			}
		}
	}
}

func TestParseRejectsTruncatedFrames(t *testing.T) {
	full, err := AppendRequest(nil, &Request{Op: OpRead, Handle: 1, Off: 2, Length: 3})
	if err != nil {
		t.Fatal(err)
	}
	body := full[4:] // strip length prefix
	for cut := 0; cut < len(body); cut++ {
		var r Request
		if err := ParseRequest(body[:cut], &r); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	var r Request
	if err := ParseRequest([]byte{99, 0, 0, 0, 0}, &r); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestStatusErrMapping(t *testing.T) {
	cases := map[Status]error{
		StatusOK:         nil,
		StatusNotExist:   ErrNotExist,
		StatusExist:      ErrExist,
		StatusClosed:     ErrClosed,
		StatusBadHandle:  ErrBadHandle,
		StatusBadRequest: ErrBadRequest,
		StatusTooBig:     ErrTooBig,
	}
	for s, want := range cases {
		if got := s.Err("x"); got != want {
			t.Fatalf("status %d: got %v want %v", s, got, want)
		}
	}
	if err := StatusError.Err("boom"); err == nil || err.Error() != "rangestore: remote error: boom" {
		t.Fatalf("generic error = %v", StatusError.Err("boom"))
	}
	var nl *NotLeaderError
	err := StatusNotLeader.Err("lead:7420")
	if !errors.As(err, &nl) || nl.Leader != "lead:7420" {
		t.Fatalf("not-leader error = %#v", err)
	}
}
