package rangestore

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lockapi"
	"repro/internal/pfs"
)

// pipeClient plugs a fresh client straight into srv over the in-process
// buffered pipe transport.
func pipeClient(t testing.TB, srv *Server) *Client {
	t.Helper()
	c1, c2 := Pipe()
	go srv.ServeConn(c2)
	cl := NewClient(c1)
	t.Cleanup(func() { cl.Close() })
	return cl
}

func newTestServer(t testing.TB, mk pfs.LockFactory, opts ...ServerOption) *Server {
	t.Helper()
	srv := NewServer(pfs.New(mk), opts...)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestStoreRoundTrip(t *testing.T) {
	srv := newTestServer(t, nil)
	cl := pipeClient(t, srv)

	h, err := cl.Open("f", true)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := []byte("hello over the wire")
	if n, err := cl.WriteAt(h, msg, 100); n != len(msg) || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := cl.ReadAt(h, got, 100); n != len(msg) || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q want %q", got, msg)
	}
	// Short read + EOF across the end of file.
	long := make([]byte, 2*len(msg))
	n, err := cl.ReadAt(h, long, 100)
	if n != len(msg) || err != io.EOF {
		t.Fatalf("EOF-spanning read = %d, %v", n, err)
	}
	// Append lands at the watermark.
	off, err := cl.Append(h, []byte("tail"))
	if err != nil || off != 100+uint64(len(msg)) {
		t.Fatalf("Append = %d, %v", off, err)
	}
	size, _, err := cl.Stat(h)
	if err != nil || size != off+4 {
		t.Fatalf("Stat = %d, %v", size, err)
	}
	if err := cl.Truncate(h, 10); err != nil {
		t.Fatal(err)
	}
	if size, _, _ = cl.Stat(h); size != 10 {
		t.Fatalf("size after truncate = %d", size)
	}
	// Reopen without create sees the same file; open-or-create is
	// idempotent.
	if _, err := cl.Open("f", false); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := cl.Open("f", true); err != nil {
		t.Fatalf("open-or-create existing: %v", err)
	}
}

func TestStoreErrors(t *testing.T) {
	srv := newTestServer(t, nil)
	cl := pipeClient(t, srv)

	if _, err := cl.Open("missing", false); err != ErrNotExist {
		t.Fatalf("Open missing = %v", err)
	}
	buf := make([]byte, 8)
	if _, err := cl.ReadAt(99, buf, 0); err != ErrBadHandle {
		t.Fatalf("bad handle = %v", err)
	}
	// The connection survives error responses.
	if _, err := cl.Open("f", true); err != nil {
		t.Fatalf("Open after errors: %v", err)
	}
}

// TestPipelinedBatch keeps many requests in flight on one connection and
// checks responses come back in order with correct payloads.
func TestPipelinedBatch(t *testing.T) {
	srv := newTestServer(t, nil)
	cl := pipeClient(t, srv)

	h, err := cl.Open("p", true)
	if err != nil {
		t.Fatal(err)
	}
	const depth = 32
	seqs := make([]uint32, 0, depth)
	for i := 0; i < depth; i++ {
		seq, err := cl.Send(&Request{Op: OpAppend, Handle: h, Data: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	offs := map[uint64]bool{}
	for i := 0; i < depth; i++ {
		var resp Response
		if err := cl.Recv(&resp); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Seq != seqs[i] {
			t.Fatalf("response %d out of order: seq %d want %d", i, resp.Seq, seqs[i])
		}
		if resp.Err() != nil {
			t.Fatalf("append %d: %v", i, resp.Err())
		}
		if offs[resp.Off] {
			t.Fatalf("duplicate append offset %d", resp.Off)
		}
		offs[resp.Off] = true
	}
	size, _, err := cl.Stat(h)
	if err != nil || size != depth {
		t.Fatalf("size = %d, %v", size, err)
	}
	// Each appended byte is intact.
	got := make([]byte, depth)
	if _, err := cl.ReadAt(h, got, 0); err != nil {
		t.Fatal(err)
	}
	seen := map[byte]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("byte %d appended twice", b)
		}
		seen[b] = true
	}
}

// TestConcurrentClients drives disjoint stripes of one file from many
// connections under each lock variant the benchmarks compare.
func TestConcurrentClients(t *testing.T) {
	variants := []struct {
		name string
		mk   pfs.LockFactory
	}{
		{"list-rw", nil},
		{"kernel-rw", func() lockapi.Locker { return lockapi.NewKernelRW() }},
		{"pnova-rw", func() lockapi.Locker { return lockapi.NewPnovaRW(1<<30, 1024) }},
		{"rwsem", func() lockapi.Locker { return lockapi.NewRWSem() }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			srv := newTestServer(t, v.mk)
			const (
				workers = 6
				stripe  = 4096
				rounds  = 25
			)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl := pipeClient(t, srv)
					h, err := cl.Open("shared", true)
					if err != nil {
						errs <- err
						return
					}
					buf := make([]byte, stripe)
					for i := range buf {
						buf[i] = byte(w + 1)
					}
					for r := 0; r < rounds; r++ {
						if _, err := cl.WriteAt(h, buf, uint64(w*stripe)); err != nil {
							errs <- err
							return
						}
						got := make([]byte, stripe)
						if _, err := cl.ReadAt(h, got, uint64(w*stripe)); err != nil {
							errs <- err
							return
						}
						for i, b := range got {
							if b != byte(w+1) {
								t.Errorf("worker %d: stripe byte %d = %d", w, i, b)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestServeTCP exercises the real network path end to end.
func TestServeTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := newTestServer(t, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Open("tcp-file", true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 3*pfs.BlockSize)
	if _, err := cl.WriteAt(h, data, 11); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := cl.ReadAt(h, got, 11); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip corrupted data")
	}
	cl.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if srv.Counts()["WRITE"] != 1 {
		t.Fatalf("Counts = %v", srv.Counts())
	}
}

// TestOffsetOverflowRejected: offsets near the uint64 wrap point must
// come back as StatusBadRequest, not panic the server (the lock layer
// panics on inverted ranges, so this is the remote-crash guard).
func TestOffsetOverflowRejected(t *testing.T) {
	srv := newTestServer(t, nil)
	cl := pipeClient(t, srv)
	h, err := cl.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteAt(h, []byte("abcde"), ^uint64(0)-2); err != ErrBadRequest {
		t.Fatalf("overflowing WriteAt = %v, want ErrBadRequest", err)
	}
	if _, err := cl.ReadAt(h, make([]byte, 8), ^uint64(0)-2); err != ErrBadRequest {
		t.Fatalf("overflowing ReadAt = %v, want ErrBadRequest", err)
	}
	if err := cl.Truncate(h, ^uint64(0)); err != ErrBadRequest {
		t.Fatalf("overflowing Truncate = %v, want ErrBadRequest", err)
	}
	if err := cl.Truncate(h, MaxOffset+1); err != ErrBadRequest {
		t.Fatalf("Truncate beyond MaxOffset = %v, want ErrBadRequest", err)
	}
	// The connection and server survive and still serve valid traffic.
	if _, err := cl.WriteAt(h, []byte("ok"), 0); err != nil {
		t.Fatalf("write after rejected requests: %v", err)
	}
}

// TestOversizedBufferedFrameKillsConn: a frame whose length field exceeds
// the protocol maximum must terminate the connection even when it arrives
// as the second request of a batch (already buffered) — consuming only
// its header and continuing would desync the stream.
func TestOversizedBufferedFrameKillsConn(t *testing.T) {
	srv := newTestServer(t, nil)
	c1, c2 := Pipe()
	served := make(chan error, 1)
	go func() { served <- srv.ServeConn(c2) }()
	defer c1.Close()

	// One valid OPEN plus a garbage frame claiming 512 MiB, written
	// back-to-back so the server sees both in one batch.
	valid, err := AppendRequest(nil, &Request{Op: OpOpen, Flags: OpenCreate, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	huge := []byte{0, 0, 0, 32, 0, 0, 0, 0, 0} // length 1<<29, then junk
	if _, err := c1.Write(append(valid, huge...)); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c1)
	var resp Response
	if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
		t.Fatalf("valid request before the bad frame failed: %v / %v", err, resp.Err())
	}
	if err := cl.Recv(&resp); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
	select {
	case err := <-served:
		if !errors.Is(err, ErrTooBig) {
			t.Fatalf("ServeConn = %v, want ErrTooBig", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeConn did not terminate on the oversized frame")
	}
}

// TestCloseRefusesNewConns: a closed server refuses fresh connections
// and terminates registered ones.
func TestCloseRefusesNewConns(t *testing.T) {
	srv := NewServer(pfs.New(nil))
	srv.Close()
	c1, c2 := Pipe()
	defer c1.Close()
	if err := srv.ServeConn(c2); err != ErrClosed {
		t.Fatalf("ServeConn after Close = %v", err)
	}
}
