package ccache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

const bs = 1024 // test block size

func newCache(maxBytes int64) *Cache {
	return New(Config{MaxBytes: maxBytes, BlockSize: bs})
}

// fill returns deterministic bytes for a block.
func fill(tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag ^ byte(i)
	}
	return p
}

func TestGetPutRange(t *testing.T) {
	c := newCache(0)
	if _, _, ok := c.GetRange("f", 0, make([]byte, 10)); ok {
		t.Fatal("hit on empty cache")
	}
	data := fill(1, 3*bs)
	c.PutRange("f", c.Token("f"), 0, data, false)

	// Full-span hit.
	got := make([]byte, 3*bs)
	n, eof, ok := c.GetRange("f", 0, got)
	if !ok || eof || n != len(got) || !bytes.Equal(got, data) {
		t.Fatalf("full read: n=%d eof=%v ok=%v", n, eof, ok)
	}
	// Unaligned sub-range crossing a block boundary.
	got = make([]byte, bs)
	n, eof, ok = c.GetRange("f", bs/2, got)
	if !ok || eof || n != bs || !bytes.Equal(got, data[bs/2:bs/2+bs]) {
		t.Fatalf("sub-range read: n=%d eof=%v ok=%v", n, eof, ok)
	}
	// Read past the cached frontier misses.
	if _, _, ok = c.GetRange("f", 3*bs, make([]byte, 1)); ok {
		t.Fatal("hit past cached frontier without eof")
	}
	hits, misses, _, _, b := c.Stats()
	if hits != 2 || misses < 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if want := int64(3 * (bs + blockOverhead)); b != want {
		t.Fatalf("bytes=%d want %d", b, want)
	}
}

func TestEOFTail(t *testing.T) {
	c := newCache(0)
	// File ends mid-block-2: 2.5 blocks of data.
	data := fill(2, 2*bs+bs/2)
	c.PutRange("f", c.Token("f"), 0, data, true)

	// Read spanning EOF: short count plus eof.
	got := make([]byte, 3*bs)
	n, eof, ok := c.GetRange("f", 0, got)
	if !ok || !eof || n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("spanning read: n=%d eof=%v ok=%v", n, eof, ok)
	}
	// Read ending exactly at EOF: no eof.
	n, eof, ok = c.GetRange("f", 2*bs, make([]byte, bs/2))
	if !ok || eof || n != bs/2 {
		t.Fatalf("exact-end read: n=%d eof=%v ok=%v", n, eof, ok)
	}
	// Read starting at EOF: zero bytes, eof.
	n, eof, ok = c.GetRange("f", uint64(len(data)), make([]byte, 8))
	if !ok || !eof || n != 0 {
		t.Fatalf("at-end read: n=%d eof=%v ok=%v", n, eof, ok)
	}
	// Read starting past the tail block's aligned extent: miss (the
	// cache only knows the end within the tail block's slot).
	if _, _, ok := c.GetRange("f", 4*bs, make([]byte, 8)); ok {
		t.Fatal("hit far past EOF")
	}

	// Any invalidation drops tail-marked blocks, even outside its range:
	// a write moved the end.
	c.InvalidateRange("f", 0, 1)
	if _, _, ok := c.GetRange("f", 2*bs, make([]byte, 1)); ok {
		t.Fatal("tail block survived invalidation")
	}
}

func TestInvalidateRangeOverlap(t *testing.T) {
	c := newCache(0)
	c.PutRange("f", c.Token("f"), 0, fill(3, 3*bs), false)
	c.PutStat("f", c.Token("f"), 3*bs, 3)

	// Invalidate one byte inside block 1: blocks 0 and 2 survive, block
	// 1 and the stat entry drop.
	c.InvalidateRange("f", bs+10, bs+11)
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); !ok {
		t.Fatal("block 0 dropped by non-overlapping invalidation")
	}
	if _, _, ok := c.GetRange("f", 2*bs, make([]byte, bs)); !ok {
		t.Fatal("block 2 dropped by non-overlapping invalidation")
	}
	if _, _, ok := c.GetRange("f", bs, make([]byte, bs)); ok {
		t.Fatal("block 1 survived overlapping invalidation")
	}
	if _, _, ok := c.GetStat("f"); ok {
		t.Fatal("stat survived invalidation")
	}
	// Other names untouched.
	c.PutRange("g", c.Token("g"), 0, fill(4, bs), false)
	c.InvalidateRange("f", 0, ^uint64(0))
	if _, _, ok := c.GetRange("g", 0, make([]byte, bs)); !ok {
		t.Fatal("invalidation leaked across names")
	}
}

func TestFillTokenStaleAfterInvalidate(t *testing.T) {
	c := newCache(0)
	tok := c.Token("f")
	c.InvalidateRange("f", 0, ^uint64(0)) // no entries yet, but gen bumps
	c.PutRange("f", tok, 0, fill(5, bs), false)
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); ok {
		t.Fatal("stale-token fill entered the cache")
	}
	// A fresh token works.
	c.PutRange("f", c.Token("f"), 0, fill(5, bs), false)
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); !ok {
		t.Fatal("fresh-token fill rejected")
	}
	// Stat fills obey the same protocol.
	tok = c.Token("f")
	c.InvalidateRange("f", 0, 0)
	c.PutStat("f", tok, 123, 1)
	if _, _, ok := c.GetStat("f"); ok {
		t.Fatal("stale-token stat entered the cache")
	}
}

func TestLearnAndReset(t *testing.T) {
	c := newCache(0)
	tok := c.Token("f")
	c.PutRange("f", tok, 0, fill(6, bs), false)

	if c.Learn(0) {
		t.Fatal("Learn(0) dropped")
	}
	if !c.Learn(7) {
		t.Fatal("Learn(7) did not drop")
	}
	if c.Version() != 7 {
		t.Fatalf("Version=%d", c.Version())
	}
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); ok {
		t.Fatal("entry survived version bump")
	}
	if c.Learn(7) || c.Learn(3) {
		t.Fatal("stale Learn dropped")
	}
	// The bump staled every outstanding token.
	c.PutRange("f", tok, 0, fill(6, bs), false)
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); ok {
		t.Fatal("pre-bump token survived Learn")
	}

	tok = c.Token("f")
	c.PutRange("f", tok, 0, fill(6, bs), false)
	c.Reset()
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); ok {
		t.Fatal("entry survived Reset")
	}
	c.PutRange("f", tok, 0, fill(6, bs), false)
	if _, _, ok := c.GetRange("f", 0, make([]byte, bs)); ok {
		t.Fatal("pre-Reset token survived Reset")
	}
	_, _, inval, _, b := c.Stats()
	if inval != 2 || b != 0 {
		t.Fatalf("invalidations=%d bytes=%d", inval, b)
	}
}

func TestLRUEviction(t *testing.T) {
	const budget = 4 * (bs + blockOverhead)
	c := newCache(budget)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("f%d", i)
		c.PutRange(name, c.Token(name), 0, fill(byte(i), bs), false)
	}
	_, _, _, evict, b := c.Stats()
	if b > budget {
		t.Fatalf("bytes=%d over budget %d", b, budget)
	}
	if evict != 4 {
		t.Fatalf("evictions=%d want 4", evict)
	}
	// Oldest gone, newest resident.
	if _, _, ok := c.GetRange("f0", 0, make([]byte, bs)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, _, ok := c.GetRange("f7", 0, make([]byte, bs)); !ok {
		t.Fatal("newest entry evicted")
	}
	// A touch protects against the next insert.
	if _, _, ok := c.GetRange("f4", 0, make([]byte, bs)); !ok {
		t.Fatal("f4 missing")
	}
	c.PutRange("f8", c.Token("f8"), 0, fill(8, bs), false)
	if _, _, ok := c.GetRange("f4", 0, make([]byte, bs)); !ok {
		t.Fatal("recently-touched entry evicted before colder ones")
	}
	if _, _, ok := c.GetRange("f5", 0, make([]byte, bs)); ok {
		t.Fatal("coldest entry survived")
	}
}

func TestMetricsRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	c := newCache(0)
	c.SetMetrics(reg)
	c.PutRange("f", c.Token("f"), 0, fill(9, bs), false)
	c.GetRange("f", 0, make([]byte, bs))
	c.GetRange("g", 0, make([]byte, bs))
	c.InvalidateRange("f", 0, ^uint64(0))
	snap := reg.Snapshot()
	want := map[string]int64{
		"cc_hits_total":          1,
		"cc_misses_total":        1,
		"cc_invalidations_total": 1,
		"cc_bytes":               0,
	}
	got := map[string]int64{}
	for _, e := range snap.Entries {
		got[e.Name] = e.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("%s = %d, want %d (snapshot %v)", name, got[name], v, got)
		}
	}
}

// TestRacedReadInvalidate exercises the lock and token protocols under
// the race detector: concurrent fills, reads, invalidations, version
// bumps, and stats over a tight byte budget.
func TestRacedReadInvalidate(t *testing.T) {
	c := newCache(16 * (bs + blockOverhead))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			buf := make([]byte, bs)
			for i := 0; i < 2000; i++ {
				name := fmt.Sprintf("f%d", rng.Intn(4))
				off := uint64(rng.Intn(8)) * bs
				switch rng.Intn(10) {
				case 0:
					c.InvalidateRange(name, off, off+bs)
				case 1:
					c.Learn(uint64(i / 100))
				case 2:
					c.PutStat(name, c.Token(name), off, 1)
					c.GetStat(name)
				default:
					if _, _, ok := c.GetRange(name, off, buf); !ok {
						tok := c.Token(name)
						c.PutRange(name, tok, off, fill(byte(g), bs), rng.Intn(8) == 0)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, _, _, b := c.Stats(); b > 16*(bs+blockOverhead) {
		t.Fatalf("budget exceeded: %d", b)
	}
}
