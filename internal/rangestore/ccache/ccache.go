// Package ccache is the client-side read cache behind
// rangestore.CachingClient: READ results stored as aligned blocks and
// STAT results stored per name, validated by the placement version every
// protocol-v6 response carries, bounded by an LRU byte budget, and safe
// for concurrent use so many connections in one process can share a
// single cache (a write through any of them invalidates for all).
//
// Coherence contract. The cache never serves a range that a local write
// (through any sharing client) has overlapped, never serves anything
// filled before the latest placement-version bump it has learned of,
// and is dropped wholesale on failover reconnect. It does NOT observe
// writes issued by other processes: cross-client coherence is exactly
// the placement-version signal, no more. The server's migration path
// bumps the version on every move, so a client that keeps talking to
// the server (misses, writes, stats) converges within one response.
//
// The insert race. A fill is a two-step protocol — read the server,
// then Put — and an invalidation (local write, version bump, reconnect
// reset) can land between the steps. Every fill therefore captures a
// FillToken first; Put discards the data if the token went stale, so an
// in-flight read of pre-write bytes can never re-insert them after the
// write's invalidation ran. Readers that began before the invalidation
// may still return the old bytes to their caller — that read was
// concurrent with the write, and no ordering was promised — but nothing
// stale survives in the cache past the invalidation.
package ccache

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultBlockSize is the alignment unit when Config.BlockSize is 0.
// 64 KiB trades miss-time overfetch for spatial locality: under
// zipf-skewed offsets, one miss warms the neighbouring hot blocks.
const DefaultBlockSize = 64 << 10

// Per-entry bookkeeping charged against the byte budget on top of the
// payload, so a budget of N bytes cannot be turned into unbounded
// memory by millions of tiny blocks.
const (
	blockOverhead = 96
	statCost      = 128
)

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes is the LRU byte budget (payload + per-entry overhead).
	// <= 0 means an unbounded cache — tests only; real clients bound it.
	MaxBytes int64
	// BlockSize is the alignment unit for cached ranges (default
	// DefaultBlockSize). Reads are served only when every covering
	// block is resident; misses are filled with block-aligned fetches.
	BlockSize int
}

// FillToken is the freshness proof captured before a fill's server
// read. Put discards data whose token predates any invalidation that
// touched the name (or the whole cache) in between.
type FillToken struct {
	global uint64
	file   uint64
}

// block is one cached aligned range of a file and an LRU list node.
// len(data) < blockSize (or eof true at any length) marks the block as
// carrying the file's tail: the file is known to end at off+len(data).
type block struct {
	prev, next *block
	file       *fileEntry
	off        uint64
	data       []byte
	eof        bool
	stat       bool   // this node is the file's stat entry, not a data block
	size       uint64 // stat payload
	blocks     uint32 // stat payload
}

func (b *block) cost() int64 {
	if b.stat {
		return statCost
	}
	return int64(len(b.data)) + blockOverhead
}

// fileEntry groups one name's blocks and its fill generation.
type fileEntry struct {
	name   string
	gen    uint64
	blocks map[uint64]*block // keyed by aligned block start
	stat   *block
}

// Cache is a concurrency-safe LRU block cache. The zero value is not
// usable; construct with New.
type Cache struct {
	mu     sync.Mutex
	bs     uint64
	max    int64
	bytes  int64
	ver    uint64 // highest placement version learned
	global uint64 // bumped by whole-cache drops (reconnect, version bump)
	files  map[string]*fileEntry
	lru    block // sentinel: lru.next is most recent, lru.prev least

	// Counters are atomics so Stats() and the obs CounterFuncs read
	// them without the lock.
	hits   atomic.Int64
	misses atomic.Int64
	inval  atomic.Int64 // entries dropped by invalidation (not eviction)
	evict  atomic.Int64 // entries dropped by the byte budget
	gbytes atomic.Int64 // mirrors bytes for the lock-free gauge
}

// New builds a cache over cfg.
func New(cfg Config) *Cache {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	c := &Cache{
		bs:    uint64(cfg.BlockSize),
		max:   cfg.MaxBytes,
		files: make(map[string]*fileEntry),
	}
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	return c
}

// SetMetrics registers the cache's series in reg:
//
//	cc_hits_total          reads served entirely from cache
//	cc_misses_total        reads that went to the server
//	cc_invalidations_total entries dropped by writes, version bumps, resets
//	cc_evictions_total     entries dropped by the byte budget
//	cc_bytes               resident payload + overhead (gauge)
func (c *Cache) SetMetrics(reg *obs.Registry) {
	reg.CounterFunc("cc_hits_total", c.hits.Load)
	reg.CounterFunc("cc_misses_total", c.misses.Load)
	reg.CounterFunc("cc_invalidations_total", c.inval.Load)
	reg.CounterFunc("cc_evictions_total", c.evict.Load)
	reg.GaugeFunc("cc_bytes", c.gbytes.Load)
}

// BlockSize returns the alignment unit.
func (c *Cache) BlockSize() uint64 { return c.bs }

// Version returns the highest placement version the cache has learned.
func (c *Cache) Version() uint64 { return c.ver }

// Stats returns the counters: cache hits, misses, entries invalidated,
// entries evicted, and resident bytes.
func (c *Cache) Stats() (hits, misses, invalidations, evictions, bytes int64) {
	return c.hits.Load(), c.misses.Load(), c.inval.Load(), c.evict.Load(), c.gbytes.Load()
}

// Learn feeds a placement version learned from a response. A version
// above the highest seen drops every entry: the placement moved, and
// entries filled under the old generation are no longer trusted.
// Returns whether a drop happened.
func (c *Cache) Learn(ver uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ver <= c.ver {
		return false
	}
	c.ver = ver
	c.dropAllLocked()
	return true
}

// Reset drops every entry unconditionally — the failover-reconnect
// hook: the node now answering may hold writes this cache never saw.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropAllLocked()
}

// dropAllLocked empties the cache and bumps the global generation so
// every outstanding FillToken goes stale.
func (c *Cache) dropAllLocked() {
	n := int64(0)
	for _, fe := range c.files {
		n += int64(len(fe.blocks))
		if fe.stat != nil {
			n++
		}
	}
	c.inval.Add(n)
	c.files = make(map[string]*fileEntry)
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	c.bytes = 0
	c.gbytes.Store(0)
	c.global++
}

// Token captures the freshness proof for a fill of name. Any
// invalidation touching name (or the whole cache) after Token and
// before Put makes the token stale and the Put a no-op.
func (c *Cache) Token(name string) FillToken {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := FillToken{global: c.global}
	if fe := c.files[name]; fe != nil {
		t.file = fe.gen
	}
	return t
}

// GetRange serves a read of len(p) bytes at off from cache. ok reports
// a hit: every byte up to the file's known end was resident. n is the
// bytes copied into p and eof whether the read ran into the file's
// cached end (mirroring the wire semantics: a read spanning EOF returns
// the short count and EOF; one ending exactly at EOF does not).
func (c *Cache) GetRange(name string, off uint64, p []byte) (n int, eof bool, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fe := c.files[name]
	if fe == nil {
		c.misses.Add(1)
		return 0, false, false
	}
	pos := off
	for n < len(p) {
		b := fe.blocks[pos-pos%c.bs]
		if b == nil {
			c.misses.Add(1)
			return 0, false, false
		}
		c.touchLocked(b)
		i := pos - b.off
		if i >= uint64(len(b.data)) {
			// Start at or past this block's payload: only valid as a
			// read at/after the file's cached end.
			if b.eof {
				c.hits.Add(1)
				return n, true, true
			}
			c.misses.Add(1)
			return 0, false, false
		}
		m := copy(p[n:], b.data[i:])
		n += m
		pos += uint64(m)
		if n < len(p) && b.eof {
			// Tail block: the file ends here, the read spans it.
			c.hits.Add(1)
			return n, true, true
		}
	}
	c.hits.Add(1)
	return n, false, true
}

// PutRange inserts data read from the server at block-aligned offset
// off, filled under tok. eof marks that the read observed the file's
// end at off+len(data). Stale tokens (an invalidation ran since Token)
// discard the insert; the caller still serves its bytes, they just do
// not enter the cache.
func (c *Cache) PutRange(name string, tok FillToken, off uint64, data []byte, eof bool) {
	if off%c.bs != 0 {
		return // misaligned fills are a caller bug; drop, never corrupt
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tok.global != c.global {
		return
	}
	fe := c.files[name]
	if fe == nil {
		if tok.file != 0 {
			return
		}
		fe = &fileEntry{name: name, blocks: make(map[uint64]*block)}
		c.files[name] = fe
	} else if fe.gen != tok.file {
		return
	}
	for len(data) > 0 || eof {
		chunk := data
		if uint64(len(chunk)) > c.bs {
			chunk = chunk[:c.bs]
		}
		data = data[len(chunk):]
		last := len(data) == 0
		b := fe.blocks[off]
		if b == nil {
			b = &block{file: fe, off: off}
			fe.blocks[off] = b
			c.pushLocked(b)
		} else {
			c.bytes -= b.cost()
			c.touchLocked(b)
		}
		b.data = append(b.data[:0], chunk...)
		b.eof = last && eof
		c.bytes += b.cost()
		c.touchLocked(b)
		off += c.bs
		if last {
			break
		}
	}
	c.gbytes.Store(c.bytes)
	c.evictLocked()
}

// GetStat serves a cached STAT result for name.
func (c *Cache) GetStat(name string) (size uint64, blocks uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fe := c.files[name]
	if fe == nil || fe.stat == nil {
		c.misses.Add(1)
		return 0, 0, false
	}
	c.touchLocked(fe.stat)
	c.hits.Add(1)
	return fe.stat.size, fe.stat.blocks, true
}

// PutStat inserts a STAT result filled under tok.
func (c *Cache) PutStat(name string, tok FillToken, size uint64, blocks uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tok.global != c.global {
		return
	}
	fe := c.files[name]
	if fe == nil {
		if tok.file != 0 {
			return
		}
		fe = &fileEntry{name: name, blocks: make(map[uint64]*block)}
		c.files[name] = fe
	} else if fe.gen != tok.file {
		return
	}
	b := fe.stat
	if b == nil {
		b = &block{file: fe, stat: true}
		fe.stat = b
		c.bytes += b.cost()
		c.pushLocked(b)
	} else {
		c.touchLocked(b)
	}
	b.size, b.blocks = size, blocks
	c.gbytes.Store(c.bytes)
	c.evictLocked()
}

// InvalidateRange drops name's blocks overlapping [lo, hi), every
// tail-marked (eof) block — a write past the cached end moves the end,
// so cached EOF knowledge is void — and the name's stat entry, then
// bumps the name's fill generation so in-flight fills discard. hi may
// be ^uint64(0) to drop the whole name (truncate, append).
func (c *Cache) InvalidateRange(name string, lo, hi uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fe := c.files[name]
	if fe == nil {
		// Nothing cached, but a fill may be in flight: record the bump so
		// its token goes stale. (Entries like this are reclaimed whenever
		// the whole cache drops.)
		c.files[name] = &fileEntry{name: name, gen: 1, blocks: make(map[uint64]*block)}
		return
	}
	fe.gen++
	for off, b := range fe.blocks {
		// Overlap test uses the block's full aligned extent [off, off+bs),
		// not just its payload: the slot owns the whole alignment unit.
		// Tail-marked blocks drop regardless of range — a write past the
		// cached end moves the end, voiding cached EOF knowledge.
		if b.eof || (off < hi && off+c.bs > lo) {
			c.removeLocked(b)
			c.inval.Add(1)
		}
	}
	if fe.stat != nil {
		c.removeLocked(fe.stat)
		c.inval.Add(1)
	}
	// fe itself stays resident even when emptied: its gen must outlive
	// any FillToken that captured it, or a racing fill could re-insert
	// the bytes this invalidation just condemned.
	c.gbytes.Store(c.bytes)
}

// touchLocked moves b to the recent end of the LRU list (inserting it
// if detached).
func (c *Cache) touchLocked(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
		b.next.prev = b.prev
	}
	b.next = c.lru.next
	b.prev = &c.lru
	c.lru.next.prev = b
	c.lru.next = b
}

// pushLocked inserts a fresh node at the recent end. The node's cost
// is charged by the caller once its payload is in place.
func (c *Cache) pushLocked(b *block) {
	c.touchLocked(b)
}

// removeLocked detaches b from its file and the LRU list and refunds
// its cost.
func (c *Cache) removeLocked(b *block) {
	b.prev.next = b.next
	b.next.prev = b.prev
	b.prev, b.next = nil, nil
	c.bytes -= b.cost()
	if b.stat {
		b.file.stat = nil
	} else {
		delete(b.file.blocks, b.off)
	}
}

// evictLocked enforces the byte budget, dropping least-recently-used
// entries.
func (c *Cache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for c.bytes > c.max && c.lru.prev != &c.lru {
		c.removeLocked(c.lru.prev)
		c.evict.Add(1)
	}
	c.gbytes.Store(c.bytes)
}
