// Slow-batch tracing: a structured per-op breakdown of any pipelined
// batch whose total service time reaches the server's -trace-slow
// threshold.
//
// The batch is the unit because the batch is the unit of cost: one Op
// lease covers it, one journal group commit makes it durable, one
// bufio flush answers it. A slow batch logs one summary line —
//
//	slow-batch conn=7 ops=12 total=18ms journal=15ms flush=90µs
//
// followed by one line per op with its own stages:
//
//	slow-op conn=7 seq=41 op=write shard=3 status=OK decode=1µs lock=2ms apply=40µs encode=1µs
//
// decode is request parsing, lock is the wait to lease the owning
// shard's context (the paper's lock-wait, live), apply is execution
// against the store, encode is response marshalling into the write
// buffer; journal covers the batch's WAL group commit including any
// follower ack wait, and flush the response write-back. Stage
// timestamps are collected only while tracing is armed, so an unarmed
// server pays one nil check per request.
package rangestore

import "time"

// opTrace is one request's stage breakdown.
type opTrace struct {
	op     OpCode
	seq    uint32
	shard  int32 // -1: no shard involved
	status Status
	decode time.Duration
	lock   time.Duration
	apply  time.Duration
	encode time.Duration
}

// batchTrace accumulates one batch's breakdown; it lives on the conn
// and is reset per batch.
type batchTrace struct {
	start   time.Time
	ops     []opTrace
	cur     *opTrace // op being handled; exec fills lock/shard through it
	journal time.Duration
	flush   time.Duration
}

// trCur returns the op currently being traced, nil when tracing is off
// or no op is in flight — exec's lock-wait split keys on it.
func (cn *conn) trCur() *opTrace {
	if cn.tr == nil {
		return nil
	}
	return cn.tr.cur
}

// beginBatch resets the trace for a new batch.
func (tr *batchTrace) beginBatch() {
	tr.start = time.Now()
	tr.ops = tr.ops[:0]
	tr.cur = nil
	tr.journal = 0
	tr.flush = 0
}

// emit logs the batch breakdown when it crossed the threshold.
func (cn *conn) emitTrace(total time.Duration) {
	tr := cn.tr
	log := cn.srv.logger
	log.Info("slow-batch",
		"conn", cn.id,
		"ops", len(tr.ops),
		"total", total,
		"journal", tr.journal,
		"flush", tr.flush,
	)
	for i := range tr.ops {
		t := &tr.ops[i]
		log.Info("slow-op",
			"conn", cn.id,
			"seq", t.seq,
			"op", opLabel(t.op),
			"shard", t.shard,
			"status", t.status.String(),
			"decode", t.decode,
			"lock", t.lock,
			"apply", t.apply,
			"encode", t.encode,
		)
	}
}
