package rangestore

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/obs"
)

// Client speaks the rangestore protocol over one connection. A Client
// serves one goroutine at a time; concurrent load comes from many
// clients (the load generator opens one per worker).
//
// The synchronous methods (Open, ReadAt, ...) issue one request and wait
// for its response. The Send/Flush/Recv triple exposes the pipelined
// surface: responses arrive in request order, so callers keep any number
// of requests in flight and match them FIFO.
//
// Transport failures are sticky: once a send, flush or receive fails —
// a broken connection, an op-timeout expiry, a malformed frame, or a
// response whose seq does not match its request — the pipeline can no
// longer be trusted (a late or misordered response would be matched to
// the wrong request), so the connection is condemned and every
// subsequent call fails with ErrClosed until the caller redials.
// Semantic per-request errors (ErrNotExist, ErrTooBig, ...) are answers,
// not failures, and do not condemn the connection.
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	seq    uint32
	reqBuf []byte
	frame  []byte
	resp   Response // scratch for synchronous calls

	// fail is the sticky condemnation error: non-nil once the pipeline
	// desynchronized (transport error, timeout, seq mismatch). Every
	// later call short-circuits to ErrClosed.
	fail error

	// ver is the highest placement version learned from any response
	// (protocol v6 stamps); 0 until a stamped response arrives.
	ver uint64

	// opTimeout, when set, bounds each synchronous round trip with a
	// read deadline — a dead server fails the call instead of hanging
	// it forever. Zero (the default) means block indefinitely.
	opTimeout time.Duration
}

// NewClient wraps an established connection (TCP, net.Pipe, ...).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a rangestore server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a connect deadline — the failover path uses
// it so one dead address costs a bounded wait, not a kernel-default
// TCP timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// SetOpTimeout bounds every subsequent synchronous round trip (Open,
// ReadAt, ...) with a read deadline: if the server does not answer
// within d the call fails with a timeout error and the connection is
// condemned — the response may arrive later and desynchronize the
// pipeline, so every subsequent call fails with ErrClosed until the
// caller redials. Zero restores blocking behaviour.
func (c *Client) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Close closes the underlying connection. The client is condemned:
// later calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.fail == nil {
		c.fail = ErrClosed
	}
	return c.conn.Close()
}

// PlacementVersion returns the highest placement version any response
// on this connection has carried (protocol v6 stamps) — 0 until a
// stamped response arrives. Client-side caches compare it against the
// version their entries were filled under.
func (c *Client) PlacementVersion() uint64 { return c.ver }

// ConnGen is the connection generation — constant 0: a Client never
// redials, so its cache-relevant identity never changes. FailoverClient
// implements the same method with a real counter.
func (c *Client) ConnGen() uint64 { return 0 }

// condemn marks the pipeline unusable and returns err. Every later
// Send/Recv/do fails with ErrClosed.
func (c *Client) condemn(err error) error {
	if c.fail == nil {
		c.fail = err
	}
	return err
}

// Send encodes req into the connection buffer, assigning and returning
// its pipelining sequence number. Call Flush before waiting on Recv.
func (c *Client) Send(req *Request) (uint32, error) {
	if c.fail != nil {
		return 0, ErrClosed
	}
	req.Seq = c.seq
	c.seq++
	buf, err := AppendRequest(c.reqBuf[:0], req)
	if err != nil {
		// Nothing reached the wire; the pipeline is intact.
		return 0, err
	}
	c.reqBuf = buf[:0]
	if _, err = c.bw.Write(buf); err != nil {
		return 0, c.condemn(err)
	}
	return req.Seq, nil
}

// Flush pushes buffered requests to the server.
func (c *Client) Flush() error {
	if c.fail != nil {
		return ErrClosed
	}
	if err := c.bw.Flush(); err != nil {
		// A partial frame may have escaped: the server will misparse the
		// stream, so the connection is done.
		return c.condemn(err)
	}
	return nil
}

// Recv reads the next response in pipeline order. resp.Data and resp.Msg
// alias an internal buffer valid until the next Recv. A failed Recv —
// transport error, timeout, malformed frame — condemns the connection:
// the response it lost may still arrive and would be matched to the
// wrong request, so every later call fails with ErrClosed.
func (c *Client) Recv(resp *Response) error {
	if c.fail != nil {
		return ErrClosed
	}
	body, err := ReadFrame(c.br, c.frame)
	if err != nil {
		return c.condemn(err)
	}
	c.frame = body[:0]
	if err := ParseResponse(body, resp); err != nil {
		return c.condemn(err)
	}
	if resp.VerSet && resp.Ver > c.ver {
		c.ver = resp.Ver
	}
	return nil
}

// do is the synchronous round trip behind the convenience methods.
func (c *Client) do(req *Request) (*Response, error) {
	seq, err := c.Send(req)
	if err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	if c.opTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opTimeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	if err := c.Recv(&c.resp); err != nil {
		return nil, err
	}
	if c.resp.Seq != seq {
		// A response for another request: the stream is desynchronized
		// (a timed-out predecessor's answer arriving late, typically).
		// Reading on would hand this caller someone else's data.
		return nil, c.condemn(fmt.Errorf("rangestore: response seq %d for request %d", c.resp.Seq, seq))
	}
	return &c.resp, c.resp.Err()
}

// Open returns a handle for name; with create, the file is created if
// missing (open-or-create).
func (c *Client) Open(name string, create bool) (uint32, error) {
	var flags uint8
	if create {
		flags |= OpenCreate
	}
	resp, err := c.do(&Request{Op: OpOpen, Name: name, Flags: flags})
	if err != nil {
		return 0, err
	}
	return resp.Handle, nil
}

// ReadAt fills p from offset off of handle h. A read spanning EOF
// returns the short count and io.EOF, mirroring pfs semantics.
func (c *Client) ReadAt(h uint32, p []byte, off uint64) (int, error) {
	if len(p) > MaxData {
		return 0, ErrTooBig
	}
	// ReadWantVer asks v6 servers to stamp the response with the
	// placement version; older servers ignore the trailing flag byte.
	resp, err := c.do(&Request{Op: OpRead, Handle: h, Off: off, Length: uint32(len(p)), Flags: ReadWantVer})
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at offset off of handle h.
func (c *Client) WriteAt(h uint32, p []byte, off uint64) (int, error) {
	resp, err := c.do(&Request{Op: OpWrite, Handle: h, Off: off, Data: p})
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// Append appends p to handle h, returning the offset it landed at.
func (c *Client) Append(h uint32, p []byte) (uint64, error) {
	resp, err := c.do(&Request{Op: OpAppend, Handle: h, Data: p})
	if err != nil {
		return 0, err
	}
	return resp.Off, nil
}

// Truncate sets handle h's size to n.
func (c *Client) Truncate(h uint32, n uint64) error {
	_, err := c.do(&Request{Op: OpTruncate, Handle: h, Size: n})
	return err
}

// Stat returns handle h's current size and resident block count.
func (c *Client) Stat(h uint32) (size uint64, blocks uint32, err error) {
	resp, err := c.do(&Request{Op: OpStat, Handle: h})
	if err != nil {
		return 0, 0, err
	}
	return resp.Size, resp.Blocks, nil
}

// Migrate asks the server to re-home name onto shard dst (map placement
// only; handles — this client's and everyone else's — re-resolve on
// their next request).
func (c *Client) Migrate(name string, dst int) error {
	_, err := c.do(&Request{Op: OpMigrate, Name: name, Dst: uint32(dst)})
	return err
}

// Recovered returns what the server's boot-time WAL replay rebuilt
// (zero values, with WAL false, when the server runs without a
// journal). Servers predating protocol v2 answer ErrBadRequest.
func (c *Client) Recovered() (RecoveredInfo, error) {
	resp, err := c.do(&Request{Op: OpRecovered})
	if err != nil {
		return RecoveredInfo{}, err
	}
	return resp.Recovered, nil
}

// ShardCounts returns the server's per-shard request tally — the
// authoritative placement-skew view once placement is dynamic and
// client-side prediction no longer holds.
func (c *Client) ShardCounts() ([]int64, error) {
	resp, err := c.do(&Request{Op: OpShards})
	if err != nil {
		return nil, err
	}
	return resp.Shards, nil
}

// Promote asks a follower to become the leader: its replication
// streams drain and subsequent writes are accepted locally. A server
// that is not a follower answers ErrBadRequest.
func (c *Client) Promote() error {
	_, err := c.do(&Request{Op: OpPromote})
	return err
}

// Stats fetches the server's metrics snapshot (protocol v4's STATS op).
// A server running without metrics answers an empty snapshot; servers
// predating the op answer ErrBadRequest. The snapshot is a fresh copy —
// it stays valid across subsequent calls.
func (c *Client) Stats() (*obs.Snapshot, error) {
	resp, err := c.do(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return &obs.Snapshot{}, nil
	}
	return resp.Stats, nil
}

// State probes the server's election view (protocol v5): role, epoch,
// replica freshness, per-shard durable frontier, and the leader address
// it believes in. Cheap and read-only — elections and health checks
// poll it.
func (c *Client) State() (*StateInfo, error) {
	resp, err := c.do(&Request{Op: OpState})
	if err != nil {
		return nil, err
	}
	if resp.State == nil {
		return nil, fmt.Errorf("%w: STATE response missing payload", ErrBadRequest)
	}
	return resp.State, nil
}

// RequestVote asks the server to grant candidate the given epoch
// (protocol v5). The grant is durable on the voter before the response;
// the returned LSNs are the voter's committed frontier, the candidate's
// catch-up sources.
func (c *Client) RequestVote(epoch uint64, candidate string) (*VoteInfo, error) {
	resp, err := c.do(&Request{Op: OpVote, Epoch: epoch, Name: candidate})
	if err != nil {
		return nil, err
	}
	if resp.Vote == nil {
		return nil, fmt.Errorf("%w: VOTE response missing payload", ErrBadRequest)
	}
	return resp.Vote, nil
}
