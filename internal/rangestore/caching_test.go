package rangestore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rangestore/ccache"
)

// TestClientStickyAfterTimeout: an op-timeout expiry condemns the
// connection — the late response would desynchronize the pipeline — so
// every subsequent call fails with ErrClosed instead of reading
// someone else's answer.
func TestClientStickyAfterTimeout(t *testing.T) {
	c1, c2 := net.Pipe() // net.Pipe honors read deadlines, unlike Pipe
	defer c2.Close()
	go io.Copy(io.Discard, c2) // swallow requests, never answer
	cl := NewClient(c1)
	defer cl.Close()
	cl.SetOpTimeout(50 * time.Millisecond)

	_, err := cl.Open("f", true)
	if err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("first call: err = %v, want a timeout", err)
	}
	if _, err := cl.Open("f", true); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after timeout: err = %v, want ErrClosed", err)
	}
	if _, err := cl.ReadAt(0, make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after timeout: err = %v, want ErrClosed", err)
	}
}

// TestClientStickyAfterSeqMismatch: a response carrying the wrong
// sequence number proves the stream is desynchronized; the client must
// refuse to keep using it.
func TestClientStickyAfterSeqMismatch(t *testing.T) {
	c1, c2 := Pipe()
	go func() {
		br := bufio.NewReader(c2)
		body, err := ReadFrame(br, nil)
		if err != nil {
			return
		}
		var req Request
		if err := ParseRequest(body, &req); err != nil {
			return
		}
		out, err := AppendResponse(nil, &Response{Op: req.Op, Seq: req.Seq + 1, Status: StatusOK})
		if err != nil {
			return
		}
		c2.Write(out)
	}()
	cl := NewClient(c1)
	defer cl.Close()

	_, err := cl.Open("f", true)
	if err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("mismatched call: err = %v, want seq-mismatch error", err)
	}
	if _, err := cl.Open("f", true); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after seq mismatch: err = %v, want ErrClosed", err)
	}
}

// TestFailoverReopenSemanticFastFail: when reconnection lands on a
// healthy server that definitively refuses a handle's name, the error
// surfaces immediately instead of burning the whole MaxWait budget and
// masquerading as cluster unavailability.
func TestFailoverReopenSemanticFastFail(t *testing.T) {
	srv1 := NewServer(pfs.New(nil))
	defer srv1.Close()
	srv2 := NewServer(pfs.New(nil)) // never has the file
	defer srv2.Close()
	dial := func(addr string) (*Client, error) {
		srv := srv1
		if addr == "b" {
			srv = srv2
		}
		c1, c2 := Pipe()
		go srv.ServeConn(c2)
		return NewClient(c1), nil
	}
	cl1, _ := dial("a")
	if _, err := cl1.Open("only-on-a", true); err != nil {
		t.Fatal(err)
	}
	cl1.Close()

	fc, err := NewFailoverClient(FailoverConfig{Addrs: []string{"a", "b"}, Dial: dial, MaxWait: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	h, err := fc.Open("only-on-a", false)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	start := time.Now()
	_, err = fc.ReadAt(h, make([]byte, 8), 0)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("read after failover to empty server: err = %v, want ErrNotExist", err)
	}
	var cu *ClusterUnavailableError
	if errors.As(err, &cu) {
		t.Fatalf("semantic reopen failure reported as cluster unavailability: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("semantic reopen failure took %v — burned the retry budget", elapsed)
	}
}

// TestFailoverOpenDedupe: Open is idempotent per (name, create) — the
// handle table must not grow with repeated opens, or every reconnect
// replays the accumulated history.
func TestFailoverOpenDedupe(t *testing.T) {
	srv := NewServer(pfs.New(nil))
	defer srv.Close()
	fc, err := NewFailoverClient(FailoverConfig{
		Addrs: []string{"x"},
		Dial: func(string) (*Client, error) {
			c1, c2 := Pipe()
			go srv.ServeConn(c2)
			return NewClient(c1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	h1, err := fc.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h, err := fc.Open("f", true)
		if err != nil || h != h1 {
			t.Fatalf("repeat open %d: handle %d err %v, want %d", i, h, err, h1)
		}
	}
	if len(fc.handles) != 1 {
		t.Fatalf("handle table grew to %d entries", len(fc.handles))
	}
	// A different (name, create) tuple is a distinct entry.
	h2, err := fc.Open("f", false)
	if err != nil || h2 == h1 {
		t.Fatalf("open(create=false): handle %d err %v", h2, err)
	}
	h3, err := fc.Open("g", true)
	if err != nil || h3 == h1 || h3 == h2 {
		t.Fatalf("open g: handle %d err %v", h3, err)
	}
	if len(fc.handles) != 3 {
		t.Fatalf("handle table has %d entries, want 3", len(fc.handles))
	}
	// Writes through deduped handles land on the same file.
	if _, err := fc.WriteAt(h1, []byte("via-h1"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := fc.ReadAt(h2, got, 0); err != nil || string(got) != "via-h1" {
		t.Fatalf("read through deduped handle: %q, %v", got, err)
	}
}

const tbs = 512 // cache block size for the caching tests

// pattern returns deterministic bytes.
func pattern(tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag ^ byte(i*7)
	}
	return p
}

// TestCachingClientReadYourWrites: reads through the caching client
// always observe this client's completed writes — write-through
// invalidation across WriteAt, Truncate, Append, and Stat.
func TestCachingClientReadYourWrites(t *testing.T) {
	srv, _ := mapServer(t, 4)
	cache := ccache.New(ccache.Config{BlockSize: tbs})
	cc := NewCachingClient(pipeClient(t, srv), cache)
	h, err := cc.Open("ryw", true)
	if err != nil {
		t.Fatal(err)
	}

	a := pattern(1, 4*tbs)
	if _, err := cc.WriteAt(h, a, 0); err != nil {
		t.Fatal(err)
	}
	read := func(off uint64, n int) []byte {
		t.Helper()
		p := make([]byte, n)
		m, err := cc.ReadAt(h, p, off)
		if err != nil && err != io.EOF {
			t.Fatalf("read %d@%d: %v", n, off, err)
		}
		return p[:m]
	}
	// Miss-fill, then hit, both correct.
	if got := read(100, 700); !bytes.Equal(got, a[100:800]) {
		t.Fatal("miss read diverges")
	}
	h0, _, _, _, _ := cache.Stats()
	if got := read(100, 700); !bytes.Equal(got, a[100:800]) {
		t.Fatal("hit read diverges")
	}
	if h1, _, _, _, _ := cache.Stats(); h1 != h0+1 {
		t.Fatalf("second read was not a hit (hits %d -> %d)", h0, h1)
	}

	// Overwrite part of the cached range: the next read must see it.
	b := pattern(2, 64)
	if _, err := cc.WriteAt(h, b, 300); err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte{}, a[100:300]...), b...), a[364:800]...)
	if got := read(100, 700); !bytes.Equal(got, want) {
		t.Fatal("read after overlapping write returned stale bytes")
	}

	// Stat caches, truncate invalidates it.
	size, _, err := cc.Stat(h)
	if err != nil || size != uint64(len(a)) {
		t.Fatalf("stat: %d, %v", size, err)
	}
	if err := cc.Truncate(h, uint64(tbs)); err != nil {
		t.Fatal(err)
	}
	if size, _, err = cc.Stat(h); err != nil || size != uint64(tbs) {
		t.Fatalf("stat after truncate: %d, %v (stale stat served?)", size, err)
	}
	// Reads past the new end hit EOF, not stale cached data.
	p := make([]byte, 64)
	if n, err := cc.ReadAt(h, p, uint64(2*tbs)); err != io.EOF || n != 0 {
		t.Fatalf("read past truncated end: n=%d err=%v, want 0, EOF", n, err)
	}

	// Extending the file voids cached EOF knowledge.
	if _, err := cc.WriteAt(h, pattern(3, tbs), uint64(3*tbs)); err != nil {
		t.Fatal(err)
	}
	if n, err := cc.ReadAt(h, p, uint64(2*tbs)); err != nil || n != len(p) {
		t.Fatalf("hole read after extend: n=%d err=%v (stale EOF served?)", n, err)
	}
	for _, v := range p {
		if v != 0 {
			t.Fatal("hole read returned non-zero")
		}
	}

	// Append lands at the tail and reads back.
	tail := pattern(4, 100)
	off, err := cc.Append(h, tail)
	if err != nil || off != uint64(4*tbs) {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	if got := read(off, 100); !bytes.Equal(got, tail) {
		t.Fatal("appended bytes not visible")
	}
	if size, _, _ = cc.Stat(h); size != uint64(4*tbs+100) {
		t.Fatalf("stat after append: %d (stale stat served?)", size)
	}
}

// TestCachingClientInvalidateOnMigrate: a placement-version bump
// learned from any response drops the cache, so writes landed by other
// clients around a migration become visible.
func TestCachingClientInvalidateOnMigrate(t *testing.T) {
	srv, store := mapServer(t, 4)
	cache := ccache.New(ccache.Config{BlockSize: tbs})
	cc := NewCachingClient(pipeClient(t, srv), cache)
	admin := pipeClient(t, srv)

	h, err := cc.Open("mig", true)
	if err != nil {
		t.Fatal(err)
	}
	a := pattern(5, tbs)
	if _, err := cc.WriteAt(h, a, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, tbs)
	if _, err := cc.ReadAt(h, got, 0); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("prime read: %v", err)
	}
	v0 := cache.Version()

	// Another client overwrites, then the file migrates: version bumps.
	ha, err := admin.Open("mig", false)
	if err != nil {
		t.Fatal(err)
	}
	b := pattern(6, tbs)
	if _, err := admin.WriteAt(ha, b, 0); err != nil {
		t.Fatal(err)
	}
	dst := int(pfs.ShardOf("mig", 4)+1) % 4
	if err := admin.Migrate("mig", dst); err != nil {
		t.Fatal(err)
	}
	if store.PlacementVersion() <= v0 {
		t.Fatal("migration did not bump the placement version")
	}

	// The caching client learns the bump from its next server contact
	// (a stat miss here) and drops the cache...
	if _, _, err := cc.Stat(h); err != nil {
		t.Fatal(err)
	}
	if cache.Version() <= v0 {
		t.Fatalf("cache version still %d after stamped response", cache.Version())
	}
	// ...so the next read refetches and sees the other client's write.
	if _, err := cc.ReadAt(h, got, 0); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("read after version bump returned stale bytes (err %v)", err)
	}
}

// TestCachingClientReadYourWritesAcrossPromote: a caching client over a
// FailoverClient keeps read-your-writes across leader death and
// follower promotion — the reconnect bumps ConnGen, which drops the
// cache before any post-failover read.
func TestCachingClientReadYourWritesAcrossPromote(t *testing.T) {
	p := newReplPair(t, RecoverConfig{Sync: pfs.SyncBatch}, nil)
	fc, err := NewFailoverClient(FailoverConfig{
		Addrs: []string{"leader", "follower"}, Dial: p.pairDialer(), MaxWait: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := ccache.New(ccache.Config{BlockSize: tbs})
	cc := NewCachingClient(fc, cache)
	defer cc.Close()

	h, err := cc.Open("promote-rw", true)
	if err != nil {
		t.Fatal(err)
	}
	a := pattern(7, tbs)
	if _, err := cc.WriteAt(h, a, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, tbs)
	if _, err := cc.ReadAt(h, got, 0); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("pre-failover read: %v", err)
	}
	gen0 := cc.ConnGen()

	// Append through a FailoverClient base is refused, not silently
	// non-idempotent.
	if _, err := cc.Append(h, a); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("append over failover base: err = %v, want ErrBadRequest", err)
	}

	// Kill the leader, promote the follower.
	p.srvL.Close()
	if err := pipeClient(t, p.srvF).Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The next write retries onto the survivor; its ack plus the
	// write-through invalidation keep read-your-writes.
	b := pattern(8, tbs)
	if _, err := cc.WriteAt(h, b, 0); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if cc.ConnGen() <= gen0 {
		t.Fatal("ConnGen did not advance across failover")
	}
	if _, err := cc.ReadAt(h, got, 0); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("post-failover read returned stale bytes (err %v)", err)
	}
	// Pre-failover replicated data is still served.
	if _, err := cc.ReadAt(h, got[:0:0], 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
}

// TestCachingClientsSharedCacheRaced: several caching clients over one
// cache, concurrent reads and single-writer-per-block writes, with
// migrations bumping the placement version mid-run. Each worker must
// always read back its own last write. Run under -race in CI.
func TestCachingClientsSharedCacheRaced(t *testing.T) {
	srv, _ := mapServer(t, 2)
	cache := ccache.New(ccache.Config{MaxBytes: 64 << 10, BlockSize: tbs})
	const workers = 4
	const blocks = 8

	// Pre-create and pre-size the file.
	admin := pipeClient(t, srv)
	ha, err := admin.Open("raced", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.WriteAt(ha, []byte{0}, blocks*tbs-1); err != nil {
		t.Fatal(err)
	}

	ccs := make([]*CachingClient, workers)
	for w := range ccs {
		ccs[w] = NewCachingClient(pipeClient(t, srv), cache)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := ccs[w]
			h, err := cc.Open("raced", false)
			if err != nil {
				errs[w] = err
				return
			}
			own := uint64(w) * tbs // block w belongs to worker w alone
			buf := make([]byte, tbs)
			for i := 0; i < 400; i++ {
				mine := pattern(byte(w), tbs)
				mine[0] = byte(i)
				if _, err := cc.WriteAt(h, mine, own); err != nil {
					errs[w] = fmt.Errorf("worker %d write %d: %w", w, i, err)
					return
				}
				if _, err := cc.ReadAt(h, buf, own); err != nil {
					errs[w] = fmt.Errorf("worker %d readback %d: %w", w, i, err)
					return
				}
				if !bytes.Equal(buf, mine) {
					errs[w] = fmt.Errorf("worker %d iter %d: read-your-writes violated", w, i)
					return
				}
				// Cross-block read: no verification (another worker owns
				// it), just exercise shared-cache paths.
				if _, err := cc.ReadAt(h, buf, uint64(i%blocks)*tbs); err != nil && err != io.EOF {
					errs[w] = fmt.Errorf("worker %d cross read %d: %w", w, i, err)
					return
				}
				if w == 0 && i%50 == 25 {
					if err := admin.Migrate("raced", i/50%2); err != nil {
						errs[w] = fmt.Errorf("migrate: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses, _, _, _ := cache.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("degenerate cache traffic: hits=%d misses=%d", hits, misses)
	}
}
