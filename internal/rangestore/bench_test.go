package rangestore

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/lockapi"
	"repro/internal/pfs"
)

// benchExtent is the file span the store benchmark touches: 64 stripes
// of 16 KiB, matching the pfs shared-file benchmark so the two layers
// can be diffed (the gap is protocol + server runtime cost).
const (
	benchStripe = 16384
	benchExtent = 64 * benchStripe
)

// benchVariants are the end-to-end comparison set from the issue: the
// paper's reader-writer list lock, the kernel tree lock, pNOVA's segment
// lock and the range-oblivious semaphore baseline.
var benchVariants = []struct {
	name string
	mk   pfs.LockFactory
}{
	{"list-rw", nil},
	{"kernel-rw", func() lockapi.Locker { return lockapi.NewKernelRW() }},
	{"pnova-rw", func() lockapi.Locker { return lockapi.NewPnovaRW(benchExtent, 256) }},
	{"rwsem", func() lockapi.Locker { return lockapi.NewRWSem() }},
}

// BenchmarkStoreServer measures whole request round trips — encode,
// transport (Pipe), server batch loop, range lock, block copy — per
// lock variant, under the pNOVA-style shared-file mix: 50% writes into a
// per-worker stripe, 50% reads at random offsets.
func BenchmarkStoreServer(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			setup := pipeClient(b, srv)
			h, err := setup.Open("bench", true)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-extend so readers do not spend the run at EOF.
			if _, err := setup.WriteAt(h, make([]byte, benchStripe), benchExtent-benchStripe); err != nil {
				b.Fatal(err)
			}

			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open("bench", true)
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
				buf := make([]byte, 1024)
				base := uint64(me%64) * benchStripe
				for pb.Next() {
					if rng.Intn(100) < 50 {
						_, err = cl.WriteAt(h, buf, base+uint64(rng.Intn(benchStripe-1024)))
					} else {
						_, err = cl.ReadAt(h, buf, uint64(rng.Intn(benchExtent-1024)))
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreServerPipelined is the same mix driven at pipeline depth
// 16: the server's batch loop serves each burst under one leased Op, so
// this isolates what request batching buys over lockstep round trips.
func BenchmarkStoreServerPipelined(b *testing.B) {
	const depth = 16
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			setup := pipeClient(b, srv)
			h, err := setup.Open("bench", true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := setup.WriteAt(h, make([]byte, benchStripe), benchExtent-benchStripe); err != nil {
				b.Fatal(err)
			}

			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open("bench", true)
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
				buf := make([]byte, 1024)
				base := uint64(me%64) * benchStripe
				var resp Response
				inflight := 0
				for pb.Next() {
					req := Request{Op: OpWrite, Handle: h, Off: base + uint64(rng.Intn(benchStripe-1024)), Data: buf}
					if rng.Intn(100) >= 50 {
						req = Request{Op: OpRead, Handle: h, Off: uint64(rng.Intn(benchExtent - 1024)), Length: 1024}
					}
					if _, err := cl.Send(&req); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreAppendLog: concurrent appenders sharing one log file,
// the pattern where the list lock's disjoint tail reservations shine.
func BenchmarkStoreAppendLog(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			rec := make([]byte, 128)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				cl := pipeClient(b, srv)
				h, err := cl.Open("log", true)
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if _, err := cl.Append(h, rec); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
