package rangestore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lockapi"
	"repro/internal/pfs"
	"repro/internal/stats"
)

// benchExtent is the file span the store benchmark touches: 64 stripes
// of 16 KiB, matching the pfs shared-file benchmark so the two layers
// can be diffed (the gap is protocol + server runtime cost).
const (
	benchStripe = 16384
	benchExtent = 64 * benchStripe
)

// benchVariants are the end-to-end comparison set from the issue: the
// paper's reader-writer list lock, the kernel tree lock, pNOVA's segment
// lock and the range-oblivious semaphore baseline.
var benchVariants = []struct {
	name string
	mk   pfs.LockFactory
}{
	{"list-rw", nil},
	{"kernel-rw", func() lockapi.Locker { return lockapi.NewKernelRW() }},
	{"pnova-rw", func() lockapi.Locker { return lockapi.NewPnovaRW(benchExtent, 256) }},
	{"rwsem", func() lockapi.Locker { return lockapi.NewRWSem() }},
}

// BenchmarkStoreServer measures whole request round trips — encode,
// transport (Pipe), server batch loop, range lock, block copy — per
// lock variant, under the pNOVA-style shared-file mix: 50% writes into a
// per-worker stripe, 50% reads at random offsets.
func BenchmarkStoreServer(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			setup := pipeClient(b, srv)
			h, err := setup.Open("bench", true)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-extend so readers do not spend the run at EOF.
			if _, err := setup.WriteAt(h, make([]byte, benchStripe), benchExtent-benchStripe); err != nil {
				b.Fatal(err)
			}

			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open("bench", true)
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
				buf := make([]byte, 1024)
				base := uint64(me%64) * benchStripe
				for pb.Next() {
					if rng.Intn(100) < 50 {
						_, err = cl.WriteAt(h, buf, base+uint64(rng.Intn(benchStripe-1024)))
					} else {
						_, err = cl.ReadAt(h, buf, uint64(rng.Intn(benchExtent-1024)))
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreServerPipelined is the same mix driven at pipeline depth
// 16: the server's batch loop serves each burst under one leased Op, so
// this isolates what request batching buys over lockstep round trips.
func BenchmarkStoreServerPipelined(b *testing.B) {
	const depth = 16
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			setup := pipeClient(b, srv)
			h, err := setup.Open("bench", true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := setup.WriteAt(h, make([]byte, benchStripe), benchExtent-benchStripe); err != nil {
				b.Fatal(err)
			}

			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open("bench", true)
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
				buf := make([]byte, 1024)
				base := uint64(me%64) * benchStripe
				var resp Response
				inflight := 0
				for pb.Next() {
					req := Request{Op: OpWrite, Handle: h, Off: base + uint64(rng.Intn(benchStripe-1024)), Data: buf}
					if rng.Intn(100) >= 50 {
						req = Request{Op: OpRead, Handle: h, Off: uint64(rng.Intn(benchExtent - 1024)), Length: 1024}
					}
					if _, err := cl.Send(&req); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// shardVariants is benchVariants with domain-aware factories: the list
// lock places its slot table and arena in each shard's domain; the other
// variants have no domain state but still get per-shard namespaces and
// block tables.
var shardVariants = []struct {
	name string
	mk   pfs.DomainLockFactory
}{
	{"list-rw", nil},
	{"kernel-rw", func(*core.Domain) lockapi.Locker { return lockapi.NewKernelRW() }},
	{"pnova-rw", func(*core.Domain) lockapi.Locker { return lockapi.NewPnovaRW(shardFileExtent, 64) }},
	{"rwsem", func(*core.Domain) lockapi.Locker { return lockapi.NewRWSem() }},
}

// The sharded benchmark spreads traffic across many files so the store's
// name hash spreads it across shards; each file is small, keeping the
// per-request block work identical to BenchmarkStoreServer.
const (
	shardBenchFiles = 64
	shardFileExtent = 4 * benchStripe
)

func shardBenchFile(i int) string { return fmt.Sprintf("shard-bench-%02d", i) }

// BenchmarkStoreServerSharded measures multi-core server throughput as a
// function of the store's shard count: every worker drives its own file
// at pipeline depth 8, so with one shard the measurement is domain
// contention (one slot table, one arena, one namespace lock for all
// files) and with GOMAXPROCS shards the domains match the parallel
// hardware. The pipelining amortizes transport cost the way PR 2's
// batching bench does, so the domain's share of each request is what
// moves the number. Sweep with -cpu=8 to see the separation; shards=1
// is the old single-domain server.
func BenchmarkStoreServerSharded(b *testing.B) {
	const depth = 8
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, v := range shardVariants {
		seen := map[int]bool{}
		for _, ns := range shardCounts {
			if seen[ns] {
				continue
			}
			seen[ns] = true
			b.Run(fmt.Sprintf("%s/shards=%d", v.name, ns), func(b *testing.B) {
				store := pfs.NewSharded(ns, v.mk)
				srv := NewServerSharded(store)
				defer srv.Close()
				setup := pipeClient(b, srv)
				for i := 0; i < shardBenchFiles; i++ {
					h, err := setup.Open(shardBenchFile(i), true)
					if err != nil {
						b.Fatal(err)
					}
					// Pre-extend so readers do not spend the run at EOF.
					if _, err := setup.WriteAt(h, make([]byte, 1024), shardFileExtent-1024); err != nil {
						b.Fatal(err)
					}
				}

				var tid atomic.Int64
				// 4 connections per processor: a server is judged under
				// more connections than cores, and the oversubscription
				// multiplies the concurrent batches leasing from — and
				// the goroutines sweeping — the shared slot table when
				// there is only one.
				b.SetParallelism(4)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					me := int(tid.Add(1)) - 1
					cl := pipeClient(b, srv)
					h, err := cl.Open(shardBenchFile(me%shardBenchFiles), true)
					if err != nil {
						b.Error(err)
						return
					}
					rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
					buf := make([]byte, 1024)
					var resp Response
					inflight := 0
					for pb.Next() {
						off := uint64(rng.Intn(shardFileExtent - 1024))
						req := Request{Op: OpWrite, Handle: h, Off: off, Data: buf}
						if rng.Intn(100) >= 50 {
							req = Request{Op: OpRead, Handle: h, Off: off, Length: 1024}
						}
						if _, err := cl.Send(&req); err != nil {
							b.Error(err)
							return
						}
						inflight++
						if inflight == depth {
							if err := cl.Flush(); err != nil {
								b.Error(err)
								return
							}
							for ; inflight > 0; inflight-- {
								if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
									b.Errorf("recv: %v / %v", err, resp.Err())
									return
								}
							}
						}
					}
					if err := cl.Flush(); err != nil {
						b.Error(err)
						return
					}
					for ; inflight > 0; inflight-- {
						if err := cl.Recv(&resp); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkStoreServerMetricsOverhead is the acceptance gate for the
// obs layer: the same pipelined sharded-server loop as
// BenchmarkStoreServerSharded, with the default-on metrics against a
// WithoutMetrics baseline. The delta must stay within ~5%.
func BenchmarkStoreServerMetricsOverhead(b *testing.B) {
	const depth = 8
	for _, mode := range []struct {
		name string
		opts []ServerOption
	}{
		{"metrics", nil},
		{"baseline", []ServerOption{WithoutMetrics()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := pfs.NewSharded(4, nil)
			srv := NewServerSharded(store, mode.opts...)
			defer srv.Close()
			setup := pipeClient(b, srv)
			for i := 0; i < shardBenchFiles; i++ {
				h, err := setup.Open(shardBenchFile(i), true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := setup.WriteAt(h, make([]byte, 1024), shardFileExtent-1024); err != nil {
					b.Fatal(err)
				}
			}

			var tid atomic.Int64
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open(shardBenchFile(me%shardBenchFiles), true)
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
				buf := make([]byte, 1024)
				var resp Response
				inflight := 0
				for pb.Next() {
					off := uint64(rng.Intn(shardFileExtent - 1024))
					req := Request{Op: OpWrite, Handle: h, Off: off, Data: buf}
					if rng.Intn(100) >= 50 {
						req = Request{Op: OpRead, Handle: h, Off: off, Length: 1024}
					}
					if _, err := cl.Send(&req); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStorePlacement measures how the placement policy handles a
// zipf-hot namespace (s=2: the hottest of 32 files absorbs ~60% of the
// traffic). hash and rendezvous place statelessly — whatever shard the
// hot names land on stays hot. map-rebalance primes the same skewed
// traffic, lets the rebalancer migrate the hottest files apart
// (measure-then-move), and then measures steady state. Reported next to
// ns/op: the max/min per-shard request skew over the measured phase and
// the p99 burst latency — the numbers the placement layer exists to
// move. Sweep with -cpu=8; the interesting read is map-rebalance's
// skew-max-min against hash's.
func BenchmarkStorePlacement(b *testing.B) {
	const (
		depth      = 8
		placeFiles = 32
		nshards    = 8
		fileExtent = 16 * 4096
		primeOps   = 4096
	)
	placements := []struct {
		name      string
		make      func() pfs.Placement
		rebalance bool
	}{
		{"hash", func() pfs.Placement { return pfs.HashPlacement{} }, false},
		{"rendezvous", func() pfs.Placement { return pfs.NewRendezvous(nil) }, false},
		{"map-rebalance", func() pfs.Placement { return pfs.NewMapPlacement(nil) }, true},
	}
	placeFile := func(i int) string { return fmt.Sprintf("place-%02d", i) }
	for _, pl := range placements {
		b.Run("placement="+pl.name, func(b *testing.B) {
			store := pfs.NewShardedPlacement(nshards, nil, pl.make())
			srv := NewServerSharded(store)
			defer srv.Close()
			setup := pipeClient(b, srv)
			handles := make([]uint32, placeFiles)
			for i := range handles {
				h, err := setup.Open(placeFile(i), true)
				if err != nil {
					b.Fatal(err)
				}
				handles[i] = h
				if _, err := setup.WriteAt(h, make([]byte, 1024), fileExtent-1024); err != nil {
					b.Fatal(err)
				}
			}
			// Prime: the same zipf-skewed mix the measurement runs, so
			// the tally the rebalancer acts on matches the steady state.
			primeRng := rand.New(rand.NewSource(42))
			primeZipf := rand.NewZipf(primeRng, 2, 1, placeFiles-1)
			buf := make([]byte, 1024)
			var resp Response
			for sent, inflight := 0, 0; sent < primeOps || inflight > 0; {
				if sent < primeOps && inflight < 64 {
					h := handles[primeZipf.Uint64()]
					off := uint64(primeRng.Intn(fileExtent - 1024))
					req := Request{Op: OpWrite, Handle: h, Off: off, Data: buf}
					if primeRng.Intn(100) >= 50 {
						req = Request{Op: OpRead, Handle: h, Off: off, Length: 1024}
					}
					if _, err := setup.Send(&req); err != nil {
						b.Fatal(err)
					}
					sent++
					inflight++
					continue
				}
				if err := setup.Flush(); err != nil {
					b.Fatal(err)
				}
				if err := setup.Recv(&resp); err != nil || resp.Err() != nil {
					b.Fatalf("prime recv: %v / %v", err, resp.Err())
				}
				inflight--
			}
			if pl.rebalance {
				if _, err := srv.Rebalance(4); err != nil {
					b.Fatal(err)
				}
			}
			// Measure a clean phase: the skew metric must describe the
			// (possibly rebalanced) steady state, not the priming.
			srv.resetCounters()
			hist := stats.NewHistogram()

			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				handles := make([]uint32, placeFiles)
				for i := range handles {
					h, err := cl.Open(placeFile(i), false)
					if err != nil {
						b.Error(err)
						return
					}
					handles[i] = h
				}
				rng := rand.New(rand.NewSource(int64(me)*6364136223846793005 + 1442695040888963407))
				zipf := rand.NewZipf(rng, 2, 1, placeFiles-1)
				buf := make([]byte, 1024)
				var resp Response
				inflight := 0
				t0 := time.Now()
				for pb.Next() {
					h := handles[zipf.Uint64()]
					off := uint64(rng.Intn(fileExtent - 1024))
					req := Request{Op: OpWrite, Handle: h, Off: off, Data: buf}
					if rng.Intn(100) >= 50 {
						req = Request{Op: OpRead, Handle: h, Off: off, Length: 1024}
					}
					if inflight == 0 {
						t0 = time.Now()
					}
					if _, err := cl.Send(&req); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
						hist.Observe(time.Since(t0))
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			counts := srv.ShardCounts()
			minC, maxC := counts[0], counts[0]
			for _, n := range counts[1:] {
				if n < minC {
					minC = n
				}
				if n > maxC {
					maxC = n
				}
			}
			if minC < 1 {
				minC = 1
			}
			b.ReportMetric(float64(maxC)/float64(minC), "skew-max-min")
			if hist.Count() > 0 {
				b.ReportMetric(float64(hist.Quantile(0.99).Nanoseconds())/depth, "p99-ns/req")
			}
		})
	}
}

// BenchmarkStoreWAL prices durability per request: the append-log mix
// (per-worker files, pipelined appends at depth 8) against a RAM-only
// store and WAL-backed stores at each fsync policy. "off" isolates the
// journal's encode+write overhead, "batch" adds one group-commit fsync
// per pipelined batch (the production default: what a durable ack
// costs), "always" fsyncs every record — the upper bound batching is
// amortizing away. Runs on a real directory so the fsyncs are real.
func BenchmarkStoreWAL(b *testing.B) {
	const depth = 8
	for _, mode := range []string{"ram", "off", "batch", "always"} {
		b.Run("fsync="+mode, func(b *testing.B) {
			var srv *Server
			if mode == "ram" {
				srv = NewServerSharded(pfs.NewSharded(4, nil))
			} else {
				sm, err := pfs.ParseSyncMode(mode)
				if err != nil {
					b.Fatal(err)
				}
				dir, err := pfs.OpenOSDir(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				store, j, _, err := Recover(dir, RecoverConfig{Shards: 4, Sync: sm})
				if err != nil {
					b.Fatal(err)
				}
				defer j.Close()
				srv = NewServerSharded(store, WithJournal(j))
			}
			defer srv.Close()
			rec := make([]byte, 128)
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				h, err := cl.Open(fmt.Sprintf("wal-bench-%02d", me), true)
				if err != nil {
					b.Error(err)
					return
				}
				var resp Response
				inflight := 0
				for pb.Next() {
					if _, err := cl.Send(&Request{Op: OpAppend, Handle: h, Data: rec}); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreWALPipelined prices the two-phase commit pipeline at
// realistic disk latency: an append mix under fsync=batch against a
// SlowDir injecting 100µs per fsync — the regime where flush latency
// dwarfs write latency and overlapping matters. Unlike
// BenchmarkStoreWAL's one-file-per-worker mix, each worker here
// rotates its batch across eight files, so a batch dirties several
// shards — the common served shape. "serialized" is the
// pre-pipelining baseline (one combined write+fsync round at a time,
// -wal-pipeline 0): every shard commit convoys behind other batches'
// in-flight rounds. "pipeline=8" lets up to eight fsyncs overlap per
// shard, so a batch's shards and its neighbours' batches all ride
// concurrent flushes. MemDir underneath keeps the injected latency the
// only disk variable. Run with -cpu=8; snapshot
// `rangestore-wal-pipelined`.
func BenchmarkStoreWALPipelined(b *testing.B) {
	const depth = 8
	const files = 8
	for _, v := range []struct {
		name string
		pipe int
	}{
		{"serialized", -1},
		{"pipeline=8", 8},
	} {
		b.Run("slow=100µs/"+v.name, func(b *testing.B) {
			dir := &pfs.SlowDir{Dir: pfs.NewMemDir(), SyncDelay: 100 * time.Microsecond}
			store, j, _, err := Recover(dir, RecoverConfig{
				Shards:         4,
				Sync:           pfs.SyncBatch,
				CommitPipeline: v.pipe,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			srv := NewServerSharded(store, WithJournal(j))
			defer srv.Close()
			rec := make([]byte, 128)
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				me := int(tid.Add(1)) - 1
				cl := pipeClient(b, srv)
				var hs [files]uint32
				for k := range hs {
					h, err := cl.Open(fmt.Sprintf("wal-pipe-%02d-%d", me, k), true)
					if err != nil {
						b.Error(err)
						return
					}
					hs[k] = h
				}
				var resp Response
				inflight := 0
				n := 0
				for pb.Next() {
					h := hs[n%files]
					n++
					if _, err := cl.Send(&Request{Op: OpAppend, Handle: h, Data: rec}); err != nil {
						b.Error(err)
						return
					}
					inflight++
					if inflight == depth {
						if err := cl.Flush(); err != nil {
							b.Error(err)
							return
						}
						for ; inflight > 0; inflight-- {
							if err := cl.Recv(&resp); err != nil || resp.Err() != nil {
								b.Errorf("recv: %v / %v", err, resp.Err())
								return
							}
						}
					}
				}
				if err := cl.Flush(); err != nil {
					b.Error(err)
					return
				}
				for ; inflight > 0; inflight-- {
					if err := cl.Recv(&resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreAppendLog: concurrent appenders sharing one log file,
// the pattern where the list lock's disjoint tail reservations shine.
func BenchmarkStoreAppendLog(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			srv := NewServer(pfs.New(v.mk))
			defer srv.Close()
			rec := make([]byte, 128)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				cl := pipeClient(b, srv)
				h, err := cl.Open("log", true)
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if _, err := cl.Append(h, rec); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
