package rangestore

import (
	"io"

	"repro/internal/rangestore/ccache"
)

// BaseClient is the synchronous data-path surface CachingClient wraps:
// the method set Client and FailoverClient share. PlacementVersion and
// ConnGen are the cache-coherence signals — the highest protocol-v6
// placement stamp seen and the count of (re)connects.
type BaseClient interface {
	Open(name string, create bool) (uint32, error)
	ReadAt(h uint32, p []byte, off uint64) (int, error)
	WriteAt(h uint32, p []byte, off uint64) (int, error)
	Truncate(h uint32, size uint64) error
	Stat(h uint32) (size uint64, blocks uint32, err error)
	Close() error
	PlacementVersion() uint64
	ConnGen() uint64
}

// appender is the optional Append surface (Client has it,
// FailoverClient deliberately does not — appends are not idempotent
// across retries).
type appender interface {
	Append(h uint32, p []byte) (uint64, error)
}

// CachingClient layers a read cache over a BaseClient. READ and STAT
// results are served from the shared ccache.Cache when valid; writes
// through this client invalidate the ranges they overlap before
// returning, so a caller always reads its own writes. Placement-version
// bumps learned from any response drop the cache (the data moved), and
// a reconnect (ConnGen advance — failover happened) drops it too: the
// node now answering may hold writes this cache never observed.
//
// Like the clients it wraps, a CachingClient serves one goroutine at a
// time — but the Cache may be shared by many CachingClients in one
// process, and a write through any of them invalidates for all.
type CachingClient struct {
	base  BaseClient
	cache *ccache.Cache
	names map[uint32]string // handle → name, the cache key
	gen   uint64            // last ConnGen observed on base
}

// NewCachingClient wraps base with cache. The cache may be shared
// across clients; it must not be nil.
func NewCachingClient(base BaseClient, cache *ccache.Cache) *CachingClient {
	return &CachingClient{base: base, cache: cache, names: make(map[uint32]string)}
}

// Cache exposes the underlying cache (stats, metrics registration).
func (cc *CachingClient) Cache() *ccache.Cache { return cc.cache }

// Base exposes the wrapped client for operations outside the cached
// surface (Migrate, Promote, Stats, ...).
func (cc *CachingClient) Base() BaseClient { return cc.base }

// sync folds the base client's coherence signals into the cache: a
// reconnect drops everything, a placement-version bump drops
// everything. Called after every base-client round trip so a response
// carrying either signal takes effect before the next cache lookup —
// and, on the fill path, before the gen-checked Put, so data read
// under the old placement cannot enter the cache.
func (cc *CachingClient) sync() {
	if g := cc.base.ConnGen(); g != cc.gen {
		cc.gen = g
		cc.cache.Reset()
	}
	cc.cache.Learn(cc.base.PlacementVersion())
}

// Open opens name through the base client and registers the handle for
// cache keying.
func (cc *CachingClient) Open(name string, create bool) (uint32, error) {
	h, err := cc.base.Open(name, create)
	cc.sync()
	if err != nil {
		return 0, err
	}
	cc.names[h] = name
	return h, nil
}

// Close closes the wrapped client. The cache is left intact: other
// clients may share it.
func (cc *CachingClient) Close() error { return cc.base.Close() }

// ReadAt serves a read from cache when every covering block is
// resident and valid; otherwise it fetches the covering block-aligned
// span from the server, caches it, and serves the requested sub-range.
// EOF semantics mirror the wire: a read spanning EOF returns the short
// count and io.EOF.
func (cc *CachingClient) ReadAt(h uint32, p []byte, off uint64) (int, error) {
	name, tracked := cc.names[h]
	if !tracked || len(p) == 0 {
		n, err := cc.base.ReadAt(h, p, off)
		cc.sync()
		return n, err
	}
	if n, eof, ok := cc.cache.GetRange(name, off, p); ok {
		if eof {
			return n, io.EOF
		}
		return n, nil
	}
	bs := cc.cache.BlockSize()
	lo := off - off%bs
	hi := off + uint64(len(p))
	hi += (bs - hi%bs) % bs
	if hi-lo > MaxData {
		// The aligned span exceeds one request's payload cap: serve the
		// read directly rather than splitting the fill.
		n, err := cc.base.ReadAt(h, p, off)
		cc.sync()
		return n, err
	}
	tok := cc.cache.Token(name)
	buf := make([]byte, hi-lo)
	n, err := cc.base.ReadAt(h, buf, lo)
	cc.sync()
	eof := err == io.EOF
	if err != nil && !eof {
		return 0, err
	}
	cc.cache.PutRange(name, tok, lo, buf[:n], eof)
	if off >= lo+uint64(n) {
		// The requested offset lies at or past the end the fill
		// observed — only reachable when the fill hit EOF.
		return 0, io.EOF
	}
	m := copy(p, buf[off-lo:n])
	if eof && m < len(p) {
		return m, io.EOF
	}
	return m, nil
}

// WriteAt writes through to the server, then invalidates the cached
// blocks the write overlaps — for every client sharing the cache — so
// the next read observes the write. Invalidation runs even when the
// write errors: a failover retry may have applied it before the error
// surfaced.
func (cc *CachingClient) WriteAt(h uint32, p []byte, off uint64) (int, error) {
	n, err := cc.base.WriteAt(h, p, off)
	if name, ok := cc.names[h]; ok {
		cc.cache.InvalidateRange(name, off, off+uint64(len(p)))
	}
	cc.sync()
	return n, err
}

// Append appends through to the server (only when the base client
// supports it — FailoverClient does not) and invalidates the file's
// cached tail and stat: appended bytes land past the old EOF, so
// interior blocks stay valid but cached EOF knowledge is void.
func (cc *CachingClient) Append(h uint32, p []byte) (uint64, error) {
	a, ok := cc.base.(appender)
	if !ok {
		return 0, ErrBadRequest
	}
	off, err := a.Append(h, p)
	if name, ok := cc.names[h]; ok {
		// Empty range: drops only tail-marked blocks and the stat entry,
		// and stales in-flight fills.
		cc.cache.InvalidateRange(name, 0, 0)
	}
	cc.sync()
	return off, err
}

// Truncate truncates through to the server and drops every cached
// entry for the file: any block may now describe bytes past the end.
func (cc *CachingClient) Truncate(h uint32, size uint64) error {
	err := cc.base.Truncate(h, size)
	if name, ok := cc.names[h]; ok {
		cc.cache.InvalidateRange(name, 0, ^uint64(0))
	}
	cc.sync()
	return err
}

// Stat serves the file's size and block count from cache when
// resident, filling from the server otherwise.
func (cc *CachingClient) Stat(h uint32) (size uint64, blocks uint32, err error) {
	name, tracked := cc.names[h]
	if tracked {
		if size, blocks, ok := cc.cache.GetStat(name); ok {
			return size, blocks, nil
		}
	}
	tok := cc.cache.Token(name)
	size, blocks, err = cc.base.Stat(h)
	cc.sync()
	if err != nil {
		return 0, 0, err
	}
	if tracked {
		cc.cache.PutStat(name, tok, size, blocks)
	}
	return size, blocks, nil
}

// PlacementVersion forwards the base client's learned version.
func (cc *CachingClient) PlacementVersion() uint64 { return cc.base.PlacementVersion() }

// ConnGen forwards the base client's connection generation.
func (cc *CachingClient) ConnGen() uint64 { return cc.base.ConnGen() }
