// Write-ahead journaling for the served store: the durability layer
// between the server's request loop and pfs's per-shard WALs.
//
// Every mutation the server executes (WRITE, APPEND, TRUNCATE,
// MIGRATE, and OPEN when it creates) is journaled to the owning
// shard's log by pfs itself — the journal hooks wired by recovery run
// inside each operation while its range lock is held, so conflicting
// operations log in exactly the order they applied. The server's part
// is the acknowledgement gate: each connection marks the shards its
// batch touched and commits them — one group-commit fsync per
// pipelined batch under the default SyncBatch mode — before flushing
// responses, so an acknowledged request is durable and a response that
// cannot be made durable is never sent (the connection dies with the
// batch unflushed instead). Recovery (rangestore.Recover) replays the
// logs back into a store and returns a journal ready to serve — see
// pfs.RecoverSharded for the replay semantics.
package rangestore

import (
	"sync"
	"sync/atomic"

	"repro/internal/pfs"
)

// DefaultCheckpointBytes is the per-shard log size that triggers a
// checkpoint when RecoverConfig leaves it zero.
const DefaultCheckpointBytes = 64 << 20

// RecoverConfig configures Recover.
type RecoverConfig struct {
	Shards    int                   // lock domains (min 1)
	Lock      pfs.DomainLockFactory // nil: default list-rw
	Placement pfs.Placement         // nil: hash; must be map if the log holds migrations
	Sync      pfs.SyncMode          // fsync policy for the reopened journal
	// CheckpointBytes is the per-shard log size that triggers a
	// checkpoint/compaction (0: DefaultCheckpointBytes).
	CheckpointBytes int64
}

// Recover rebuilds the store from the WAL directory d (an empty
// directory boots an empty store), compacts it, and returns the store,
// a journal the server should be configured with (WithJournal), and
// what recovery found.
func Recover(d pfs.Dir, cfg RecoverConfig) (*pfs.Sharded, *Journal, pfs.RecoverStats, error) {
	store, wals, stats, err := pfs.RecoverSharded(d, cfg.Shards, cfg.Lock, cfg.Placement)
	if err != nil {
		return nil, nil, stats, err
	}
	ckptBytes := cfg.CheckpointBytes
	if ckptBytes <= 0 {
		ckptBytes = DefaultCheckpointBytes
	}
	j := &Journal{
		mode:      cfg.Sync,
		store:     store,
		wals:      wals,
		ckptBytes: ckptBytes,
		ckptMu:    make([]sync.Mutex, len(wals)),
	}
	return store, j, stats, nil
}

// Journal owns the store's per-shard WALs on behalf of one server.
type Journal struct {
	mode      pfs.SyncMode
	store     *pfs.Sharded
	wals      []*pfs.WAL
	ckptBytes int64
	ckptMu    []sync.Mutex // per-shard: one checkpoint at a time

	// ckptErr is the latest background checkpoint failure, surfaced by
	// every batch Commit until a later checkpoint succeeds and clears
	// it. An atomic pointer so the healthy path — every batch of every
	// connection — is one load, not a store-wide mutex.
	ckptErr atomic.Pointer[error]
}

// Mode returns the journal's fsync policy.
func (j *Journal) Mode() pfs.SyncMode { return j.mode }

// Begin returns a per-connection batch tracker. It serves one goroutine
// at a time (the connection's request loop) and is reused batch after
// batch.
func (j *Journal) Begin() *journalConn {
	return &journalConn{j: j, end: make([]int64, len(j.wals))}
}

// journalConn tracks which shards' WALs a connection's current batch
// appended to (the records themselves are appended by the pfs journal
// hooks, inside the operations) and up to which frontier, so Commit
// waits for exactly those records — committing to a frontier read at
// commit time would also wait out other connections' later appends, a
// convoy the per-batch snapshot avoids.
type journalConn struct {
	j    *Journal
	end  []int64 // per-shard commit frontier; 0 = clean this batch
	list []int   // dirty shards, in first-touch order
}

// touch marks shard's WAL as carrying records of the current batch,
// snapshotting its append frontier (the request's record is already
// appended, so the frontier covers it). Under SyncAlways the records
// logged so far are made durable immediately (one fsync per request
// instead of per batch).
func (jc *journalConn) touch(shard int) error {
	end := jc.j.wals[shard].AppendEnd()
	if jc.end[shard] == 0 {
		jc.list = append(jc.list, shard)
	}
	if end > jc.end[shard] {
		jc.end[shard] = end
	}
	if jc.j.mode == pfs.SyncAlways {
		return jc.j.wals[shard].Commit(end, true)
	}
	return nil
}

// Commit makes the batch's records durable (per the journal's sync
// mode) and triggers any size-triggered checkpoints — only the shards
// this batch dirtied are examined, so the per-batch cost does not grow
// with the store's shard count. The server calls it after every batch,
// before flushing responses; on error the responses must not be
// flushed — the mutations exist in memory but their durability cannot
// be promised.
func (jc *journalConn) Commit() error {
	first := jc.j.checkpointErr()
	for _, shard := range jc.list {
		end := jc.end[shard]
		jc.end[shard] = 0
		if err := jc.j.wals[shard].Commit(end, jc.j.mode != pfs.SyncOff); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if jc.j.wals[shard].SinceCheckpoint() >= jc.j.ckptBytes {
			jc.j.triggerCheckpoint(shard)
		}
	}
	jc.list = jc.list[:0]
	return first
}

// triggerCheckpoint starts shard's checkpoint on a background
// goroutine: a checkpoint snapshots the whole shard under the store's
// migration lock — far too long a stall to run inline on a serving
// connection's batch commit, where it would also hold every create and
// migration store-wide behind that connection's round-trip. At most
// one runs per shard (the TryLock is taken before the spawn, so a
// trigger observed by WaitCheckpoints is already holding it);
// concurrent triggers skip rather than queue. A failure is recorded
// and surfaced by every subsequent batch Commit, which kills those
// connections just as an inline failure would have — a journal that
// cannot bound its recovery work must not keep acknowledging quietly.
// The record is not permanent, though: the failed shard's log kept
// growing, so its next qualifying commit re-triggers, and a
// checkpoint that then succeeds clears the error — a transient disk
// hiccup costs the connections that observed it, never the process.
func (j *Journal) triggerCheckpoint(shard int) {
	if !j.ckptMu[shard].TryLock() {
		return // one already in flight
	}
	go func() {
		defer j.ckptMu[shard].Unlock()
		if j.wals[shard].SinceCheckpoint() < j.ckptBytes {
			return // a racing trigger's checkpoint already ran
		}
		if err := j.store.CheckpointShard(j.wals[shard], shard); err != nil {
			j.ckptErr.Store(&err)
		} else {
			// Clearing unconditionally can hide another shard's failure
			// stored a moment ago, but only until that shard's next
			// trigger re-records it; durability is never at stake —
			// checkpoints only bound recovery work.
			j.ckptErr.Store(nil)
		}
	}()
}

// checkpointErr returns the recorded background checkpoint failure,
// nil while checkpoints are healthy.
func (j *Journal) checkpointErr() error {
	if p := j.ckptErr.Load(); p != nil {
		return *p
	}
	return nil
}

// WaitCheckpoints blocks until no background checkpoint is in flight.
// Crash tests use it to take deterministic directory snapshots; any
// checkpoint triggered by a request acknowledged before the call is
// either finished or holds its shard's ckptMu, so locking through each
// mutex observes it.
func (j *Journal) WaitCheckpoints() {
	for i := range j.ckptMu {
		j.ckptMu[i].Lock()
		//lint:ignore SA2001 lock/unlock is the wait
		j.ckptMu[i].Unlock()
	}
}

// LogMigrate journals a MIGRATE record carrying f's full snapshot to
// the destination shard's log and makes it durable before returning.
// It is called from pfs.MigrateWith's emit hook, where f is frozen
// under its full-range lock: the record is on disk before the
// namespace flip publishes the move, so a crash at any point leaves
// the file recoverable on exactly one shard — the destination once
// this returns, the source before. The eager sync (skipped only under
// SyncOff) is what lets the source shard's next checkpoint forget the
// file: its entire state already lives in the destination's log.
func (j *Journal) LogMigrate(dst int, name string, f *pfs.File) error {
	end, err := j.appendMigrate(dst, name, f)
	if err != nil {
		return err
	}
	return j.wals[dst].Commit(end, j.mode != pfs.SyncOff)
}

// appendMigrate is LogMigrate without the commit — split out so crash
// tests can tear the journal between the append and its durability.
func (j *Journal) appendMigrate(dst int, name string, f *pfs.File) (int64, error) {
	rec := &pfs.Record{
		Kind: pfs.RecMigrate,
		Name: name,
		Dst:  uint32(dst),
		PVer: j.store.PlacementVersion(),
		Data: pfs.AppendFileSnapshot(nil, f),
	}
	return j.wals[dst].Append(rec)
}

// Close waits out any in-flight background checkpoint, then flushes,
// fsyncs and closes every shard's log. The WALs are left with a sticky
// closed error, so stragglers fail their commits instead of panicking
// on a closed file.
func (j *Journal) Close() error {
	j.WaitCheckpoints()
	var first error
	for _, w := range j.wals {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
