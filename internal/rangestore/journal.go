// Write-ahead journaling for the served store: the durability layer
// between the server's request loop and pfs's per-shard WALs.
//
// Every mutation the server executes (WRITE, APPEND, TRUNCATE,
// MIGRATE, and OPEN when it creates) is journaled to the owning
// shard's log by pfs itself — the journal hooks wired by recovery run
// inside each operation while its range lock is held, so conflicting
// operations log in exactly the order they applied. The server's part
// is the acknowledgement gate: each connection marks the shards its
// batch touched and commits them — one group-commit fsync per
// pipelined batch under the default SyncBatch mode — before flushing
// responses, so an acknowledged request is durable and a response that
// cannot be made durable is never sent (the connection dies with the
// batch unflushed instead). Recovery (rangestore.Recover) replays the
// logs back into a store and returns a journal ready to serve — see
// pfs.RecoverSharded for the replay semantics.
package rangestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// DefaultCheckpointBytes is the per-shard log size that triggers a
// checkpoint when RecoverConfig leaves it zero.
const DefaultCheckpointBytes = 64 << 20

// DefaultReplAckTimeout bounds how long a batch commit waits for a
// follower's acknowledgement when RecoverConfig leaves it zero.
const DefaultReplAckTimeout = 10 * time.Second

// RecoverConfig configures Recover.
type RecoverConfig struct {
	Shards    int                   // lock domains (min 1)
	Lock      pfs.DomainLockFactory // nil: default list-rw
	Placement pfs.Placement         // nil: hash; must be map if the log holds migrations
	Sync      pfs.SyncMode          // fsync policy for the reopened journal
	// CheckpointBytes is the per-shard log size that triggers a
	// checkpoint/compaction (0: DefaultCheckpointBytes).
	CheckpointBytes int64
	// ReplAckTimeout bounds how long a batch commit waits for a
	// follower acknowledgement once a follower has attached to the
	// shard (0: DefaultReplAckTimeout). On expiry the commit fails and
	// the connection dies unflushed — the semi-sync promise ("acked ⇒
	// on the follower") is kept by refusing the ack, not by dropping
	// the follower.
	ReplAckTimeout time.Duration
	// WALBufferBytes caps each shard WAL's buffered-but-unwritten
	// bytes; appenders that would exceed it block until the write stage
	// drains (0: pfs.DefaultWALBufferBytes, negative: unbounded). The
	// cap is backpressure, never an error — it bounds the memory and
	// replay exposure of a -fsync off firehose.
	WALBufferBytes int64
	// CommitPipeline caps each shard WAL's in-flight fsyncs — the
	// two-phase commit pipeline depth (0: pfs.DefaultCommitPipeline,
	// negative: serialized single-stage commits, the pre-pipelining
	// behaviour kept as the benchmark baseline).
	CommitPipeline int
}

// Recover rebuilds the store from the WAL directory d (an empty
// directory boots an empty store), compacts it, and returns the store,
// a journal the server should be configured with (WithJournal), and
// what recovery found.
func Recover(d pfs.Dir, cfg RecoverConfig) (*pfs.Sharded, *Journal, pfs.RecoverStats, error) {
	store, wals, stats, err := pfs.RecoverSharded(d, cfg.Shards, cfg.Lock, cfg.Placement)
	if err != nil {
		return nil, nil, stats, err
	}
	ckptBytes := cfg.CheckpointBytes
	if ckptBytes <= 0 {
		ckptBytes = DefaultCheckpointBytes
	}
	ackTimeout := cfg.ReplAckTimeout
	if ackTimeout <= 0 {
		ackTimeout = DefaultReplAckTimeout
	}
	for _, w := range wals {
		if cfg.WALBufferBytes != 0 {
			w.SetMaxBuffer(cfg.WALBufferBytes)
		}
		if cfg.CommitPipeline != 0 {
			w.SetCommitPipeline(cfg.CommitPipeline)
		}
	}
	j := &Journal{
		mode:       cfg.Sync,
		store:      store,
		dir:        d,
		wals:       wals,
		ckptBytes:  ckptBytes,
		ckptMu:     make([]sync.Mutex, len(wals)),
		gates:      make([]replGate, len(wals)),
		ackTimeout: ackTimeout,
	}
	for i := range j.gates {
		j.gates[i].cond.L = &j.gates[i].mu
	}
	epoch, err := readEpoch(d)
	if err != nil {
		return nil, nil, stats, err
	}
	j.epoch.Store(epoch)
	return store, j, stats, nil
}

// Journal owns the store's per-shard WALs on behalf of one server.
type Journal struct {
	mode      pfs.SyncMode
	store     *pfs.Sharded
	dir       pfs.Dir
	wals      []*pfs.WAL
	ckptBytes int64
	ckptMu    []sync.Mutex // per-shard: one checkpoint at a time

	// gates implement the replication commit contract: once followers
	// have registered on a shard (or a cluster size is configured), a
	// batch commit touching it also waits (bounded by ackTimeout) for a
	// strict majority of the cluster — leader included — to hold the
	// batch's highest LSN durably before responses flush.
	gates      []replGate
	ackTimeout time.Duration

	// cluster is the configured total node count (leader included), set
	// on leaders via SetClusterSize. Zero derives the cluster from
	// registered followers instead, which keeps the original two-node
	// semi-sync behaviour for a leader with a single -follow peer.
	cluster atomic.Int32

	// epoch is the node's election epoch: the highest epoch it has ever
	// acknowledged, voted for, or led under. Reads are lock-free (acks
	// stamp it per frame); advancement persists to the WAL directory
	// before publishing, so a restart cannot forget a vote.
	epoch   atomic.Uint64
	epochMu sync.Mutex // serializes epoch persistence

	// ckptErr is the latest background checkpoint failure, surfaced by
	// every batch Commit until a later checkpoint succeeds and clears
	// it. An atomic pointer so the healthy path — every batch of every
	// connection — is one load, not a store-wide mutex.
	ckptErr atomic.Pointer[error]

	// Observation hooks, wired by setMetrics (metrics.go); nil-safe.
	// ackWaitNs doubles as the "is this journal metered" switch for the
	// timing reads around replication waits.
	ackWaitNs   *obs.Histogram
	ackTimeouts *obs.Counter
}

// Mode returns the journal's fsync policy.
func (j *Journal) Mode() pfs.SyncMode { return j.mode }

// Begin returns a per-connection batch tracker. It serves one goroutine
// at a time (the connection's request loop) and is reused batch after
// batch.
func (j *Journal) Begin() *journalConn {
	return &journalConn{
		j:   j,
		end: make([]int64, len(j.wals)),
		lsn: make([]uint64, len(j.wals)),
	}
}

// replGate is one shard's replication acknowledgement gate. members
// maps each registered follower's node id to its acked applied-and-
// durable LSN frontier. Membership is sticky by design — a follower
// that detaches keeps its (stale) entry, so a leader cannot silently
// fall back to acking writes a majority will never see; the follower
// must reconnect (or the operator restart the leader without
// replication). Commits need acks from a strict majority of the
// effective cluster — max(configured size, 1 + registered followers) —
// counting the leader's own disk as one holder, so with one registered
// follower and no configured size this is exactly the original
// semi-sync gate.
type replGate struct {
	mu      sync.Mutex
	cond    sync.Cond
	members map[string]uint64
	// ackedEnd is the shard's log byte offset at the moment the quorum
	// last caught up completely (the quorum frontier reached the shard
	// frontier) — the baseline the repl_lag_bytes gauge subtracts from
	// the live append end. Between full drains it holds still, making
	// the gauge an upper bound that is exact at 0, matching
	// repl_lag_records' contract.
	ackedEnd int64
}

// need returns how many follower acks a commit requires (gate held):
// majority of the effective cluster, minus the leader's own copy.
// Zero means the gate is unarmed.
func (g *replGate) need(cluster int) int {
	size := 1 + len(g.members)
	if cluster > size {
		size = cluster
	}
	return size / 2
}

// ackCount returns how many registered followers hold lsn (gate held).
func (g *replGate) ackCount(lsn uint64) int {
	n := 0
	for _, l := range g.members {
		if l >= lsn {
			n++
		}
	}
	return n
}

// quorumAcked returns the highest LSN a majority of the cluster holds
// durably (gate held): the need-th largest follower frontier, or the
// shard's full frontier sentinel (^0) when the gate is unarmed.
func (g *replGate) quorumAcked(cluster int) uint64 {
	need := g.need(cluster)
	if need == 0 {
		return ^uint64(0)
	}
	if len(g.members) < need {
		return 0
	}
	// Selection over a handful of followers; no ordering index kept.
	var fr []uint64
	for _, l := range g.members {
		fr = append(fr, l)
	}
	for i := 1; i < len(fr); i++ {
		for k := i; k > 0 && fr[k] > fr[k-1]; k-- {
			fr[k], fr[k-1] = fr[k-1], fr[k]
		}
	}
	return fr[need-1]
}

// replRequire registers follower id on shard's gate and arms it:
// commits touching the shard now wait for majority acknowledgement.
func (j *Journal) replRequire(shard int, id string) {
	g := &j.gates[shard]
	g.mu.Lock()
	if g.members == nil {
		g.members = make(map[string]uint64)
	}
	if _, ok := g.members[id]; !ok {
		g.members[id] = 0
	}
	g.mu.Unlock()
}

// replAck records follower id's acknowledgement for shard and wakes any
// batch commits waiting on it. Acks carry the follower's applied-and-
// durable frontier, so they only move forward; a stale ack (reordered
// by the network) is ignored.
func (j *Journal) replAck(shard int, id string, lsn uint64) {
	g := &j.gates[shard]
	w := j.wals[shard]
	cluster := int(j.cluster.Load())
	g.mu.Lock()
	if g.members == nil {
		g.members = make(map[string]uint64)
	}
	if lsn > g.members[id] {
		g.members[id] = lsn
		if g.quorumAcked(cluster) >= w.LastLSN() {
			// Fully drained: re-baseline the byte-lag gauge at the live
			// append end. (The frontier reads are atomics; ordering with
			// a racing append only shifts when the gauge next reads 0.)
			g.ackedEnd = w.AppendEnd()
		}
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// replWait blocks until a majority of the cluster has acknowledged lsn
// on shard, the gate is unarmed (no follower registered and no cluster
// size configured), or the journal's ack timeout expires — the timeout
// is an error: the caller must not flush acknowledgements it cannot
// honor. A dead minority never delays the wait (the majority's acks
// release it); only a lost majority runs out the timeout.
func (j *Journal) replWait(shard int, lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	g := &j.gates[shard]
	cluster := int(j.cluster.Load())
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ackCount(lsn) >= g.need(cluster) {
		return nil
	}
	var start time.Time
	if j.ackWaitNs != nil {
		start = time.Now()
	}
	deadline := time.Now().Add(j.ackTimeout)
	timer := time.AfterFunc(j.ackTimeout, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer timer.Stop()
	for g.ackCount(lsn) < g.need(cluster) {
		if !time.Now().Before(deadline) {
			j.ackTimeouts.Add(1)
			return fmt.Errorf("rangestore: shard %d: no ack quorum for lsn %d within %v (%d/%d follower acks)",
				shard, lsn, j.ackTimeout, g.ackCount(lsn), g.need(cluster))
		}
		g.cond.Wait()
	}
	if j.ackWaitNs != nil {
		j.ackWaitNs.ObserveDuration(time.Since(start))
	}
	return nil
}

// SetClusterSize declares the replication cluster's total node count,
// leader included. With n ≥ 2, every batch commit must be held by a
// strict majority (n/2+1 nodes, counting the leader's own disk) before
// it is acknowledged — even while no follower is attached, so a leader
// that cannot reach a quorum refuses writes instead of quietly
// diverging. Zero (the default) derives the cluster from registered
// followers. Waiters are woken to re-evaluate against the new size.
func (j *Journal) SetClusterSize(n int) {
	if n < 0 {
		n = 0
	}
	j.cluster.Store(int32(n))
	for i := range j.gates {
		g := &j.gates[i]
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// ClusterSize returns the configured cluster size (0 when derived from
// registered followers).
func (j *Journal) ClusterSize() int { return int(j.cluster.Load()) }

// QuorumInfo reports the effective replication quorum for health
// surfaces: the effective cluster size, the majority threshold, and the
// number of distinct registered followers (union across shards — a
// follower attaches per shard under one node id).
func (j *Journal) QuorumInfo() (size, quorum, followers int) {
	ids := make(map[string]struct{})
	for i := range j.gates {
		g := &j.gates[i]
		g.mu.Lock()
		for id := range g.members {
			ids[id] = struct{}{}
		}
		g.mu.Unlock()
	}
	followers = len(ids)
	size = 1 + followers
	if c := int(j.cluster.Load()); c > size {
		size = c
	}
	return size, size/2 + 1, followers
}

// epochFileName is the WAL-directory file holding the node's persisted
// election epoch: 8 bytes little-endian plus a CRC32, written via a
// synced temp file and rename so it is either the old promise or the
// new one, never torn. The name carries no "shard-" prefix, so
// recovery's directory scan ignores it.
const epochFileName = "epoch"

func writeEpoch(d pfs.Dir, e uint64) error {
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], e)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[:8]))
	f, err := d.Create(epochFileName + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.Rename(epochFileName+".tmp", epochFileName); err != nil {
		return err
	}
	return d.Sync()
}

// readEpoch loads the persisted epoch; a directory that never held one
// starts at 0. A present-but-corrupt file is an error — a node that
// cannot prove what it promised must not vote.
func readEpoch(d pfs.Dir) (uint64, error) {
	names, err := d.List()
	if err != nil {
		return 0, err
	}
	found := false
	for _, n := range names {
		if n == epochFileName {
			found = true
			break
		}
	}
	if !found {
		return 0, nil
	}
	b, err := d.ReadFile(epochFileName)
	if err != nil {
		return 0, err
	}
	if len(b) != 12 || crc32.ChecksumIEEE(b[:8]) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, fmt.Errorf("rangestore: corrupt epoch file (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), nil
}

// Epoch returns the node's current election epoch.
func (j *Journal) Epoch() uint64 { return j.epoch.Load() }

// AdvanceEpoch durably raises the node's epoch to e, returning true
// only when e is strictly greater than every epoch the node has seen.
// The persist-then-publish order makes the promise crash-proof: once a
// node has granted (or adopted) epoch e, no restart lets it ack or vote
// under anything lower.
func (j *Journal) AdvanceEpoch(e uint64) (bool, error) {
	j.epochMu.Lock()
	defer j.epochMu.Unlock()
	if e <= j.epoch.Load() {
		return false, nil
	}
	if err := writeEpoch(j.dir, e); err != nil {
		return false, err
	}
	j.epoch.Store(e)
	return true, nil
}

// DurableLSNs commits every shard's log and returns the per-shard LSN
// frontier — the durable holdings a STATE probe or VOTE response
// reports. The commit first matters for votes: a granted LSN claim is a
// catch-up source contract, so it must be on disk before it is spoken.
func (j *Journal) DurableLSNs() ([]uint64, error) {
	lsns := make([]uint64, len(j.wals))
	var first error
	for i, w := range j.wals {
		if err := w.CommitAll(j.mode != pfs.SyncOff); err != nil && first == nil {
			first = err
		}
		lsns[i] = w.LastLSN()
	}
	return lsns, first
}

// journalConn tracks which shards' WALs a connection's current batch
// appended to (the records themselves are appended by the pfs journal
// hooks, inside the operations) and up to which frontier, so Commit
// waits for exactly those records — committing to a frontier read at
// commit time would also wait out other connections' later appends, a
// convoy the per-batch snapshot avoids.
type journalConn struct {
	j    *Journal
	end  []int64  // per-shard commit frontier; 0 = clean this batch
	lsn  []uint64 // per-shard highest LSN the batch may have appended
	list []int    // dirty shards, in first-touch order
}

// touch marks shard's WAL as carrying records of the current batch,
// snapshotting its append frontier (the request's record is already
// appended, so the frontier covers it). Under SyncAlways the records
// logged so far are made durable immediately (one fsync per request
// instead of per batch).
func (jc *journalConn) touch(shard int) error {
	end := jc.j.wals[shard].AppendEnd()
	if jc.end[shard] == 0 {
		jc.list = append(jc.list, shard)
	}
	if end > jc.end[shard] {
		jc.end[shard] = end
	}
	// The LSN frontier over-covers the same way the byte frontier does:
	// it may include other connections' records, which only makes the
	// replication wait stricter, never weaker.
	if lsn := jc.j.wals[shard].LastLSN(); lsn > jc.lsn[shard] {
		jc.lsn[shard] = lsn
	}
	if jc.j.mode == pfs.SyncAlways {
		return jc.j.wals[shard].Commit(end, true)
	}
	return nil
}

// Commit makes the batch's records durable (per the journal's sync
// mode) and triggers any size-triggered checkpoints — only the shards
// this batch dirtied are examined, so the per-batch cost does not grow
// with the store's shard count. A multi-shard batch commits its shards
// concurrently: each shard's fsync and replication ack wait are
// independent, and the pipelined WAL lets them overlap instead of
// paying one disk round-trip per dirty shard in sequence. The server
// calls Commit after every batch, before flushing responses; on error
// the responses must not be flushed — the mutations exist in memory
// but their durability cannot be promised.
func (jc *journalConn) Commit() error {
	first := jc.j.checkpointErr()
	switch len(jc.list) {
	case 0:
	case 1:
		if err := jc.commitOne(jc.list[0]); err != nil && first == nil {
			first = err
		}
	default:
		errs := make([]error, len(jc.list))
		var wg sync.WaitGroup
		for i, shard := range jc.list {
			wg.Add(1)
			go func(i, shard int) {
				defer wg.Done()
				errs[i] = jc.commitOne(shard)
			}(i, shard)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil && first == nil {
				first = err
			}
		}
	}
	jc.list = jc.list[:0]
	return first
}

// commitOne drives one dirty shard through the batch's durability
// chain: WAL commit to the batch's snapshotted frontier, then the
// replication ack gate, then the size-triggered checkpoint check.
// Safe to run concurrently across distinct shards — each call touches
// only its own shard's slots of the batch state.
func (jc *journalConn) commitOne(shard int) error {
	end := jc.end[shard]
	lsn := jc.lsn[shard]
	jc.end[shard] = 0
	jc.lsn[shard] = 0
	if err := jc.j.wals[shard].Commit(end, jc.j.mode != pfs.SyncOff); err != nil {
		return err
	}
	// Local durability first, then the follower's: the ack gate
	// waits only on records already on the leader's disk, so a
	// follower can never hold an LSN the leader would lose.
	if err := jc.j.replWait(shard, lsn); err != nil {
		return err
	}
	if jc.j.wals[shard].SinceCheckpoint() >= jc.j.ckptBytes {
		jc.j.triggerCheckpoint(shard)
	}
	return nil
}

// triggerCheckpoint starts shard's checkpoint on a background
// goroutine: a checkpoint snapshots the whole shard under the store's
// migration lock — far too long a stall to run inline on a serving
// connection's batch commit, where it would also hold every create and
// migration store-wide behind that connection's round-trip. At most
// one runs per shard (the TryLock is taken before the spawn, so a
// trigger observed by WaitCheckpoints is already holding it);
// concurrent triggers skip rather than queue. A failure is recorded
// and surfaced by every subsequent batch Commit, which kills those
// connections just as an inline failure would have — a journal that
// cannot bound its recovery work must not keep acknowledging quietly.
// The record is not permanent, though: the failed shard's log kept
// growing, so its next qualifying commit re-triggers, and a
// checkpoint that then succeeds clears the error — a transient disk
// hiccup costs the connections that observed it, never the process.
func (j *Journal) triggerCheckpoint(shard int) {
	if !j.ckptMu[shard].TryLock() {
		return // one already in flight
	}
	go func() {
		defer j.ckptMu[shard].Unlock()
		if j.wals[shard].SinceCheckpoint() < j.ckptBytes {
			return // a racing trigger's checkpoint already ran
		}
		if err := j.store.CheckpointShard(j.wals[shard], shard); err != nil {
			j.ckptErr.Store(&err)
		} else {
			// Clearing unconditionally can hide another shard's failure
			// stored a moment ago, but only until that shard's next
			// trigger re-records it; durability is never at stake —
			// checkpoints only bound recovery work.
			j.ckptErr.Store(nil)
		}
	}()
}

// checkpointErr returns the recorded background checkpoint failure,
// nil while checkpoints are healthy.
func (j *Journal) checkpointErr() error {
	if p := j.ckptErr.Load(); p != nil {
		return *p
	}
	return nil
}

// WaitCheckpoints blocks until no background checkpoint is in flight.
// Crash tests use it to take deterministic directory snapshots; any
// checkpoint triggered by a request acknowledged before the call is
// either finished or holds its shard's ckptMu, so locking through each
// mutex observes it.
func (j *Journal) WaitCheckpoints() {
	for i := range j.ckptMu {
		j.ckptMu[i].Lock()
		//lint:ignore SA2001 lock/unlock is the wait
		j.ckptMu[i].Unlock()
	}
}

// LogMigrate journals a MIGRATE record carrying f's full snapshot to
// the destination shard's log and makes it durable before returning.
// It is called from pfs.MigrateWith's emit hook, where f is frozen
// under its full-range lock: the record is on disk before the
// namespace flip publishes the move, so a crash at any point leaves
// the file recoverable on exactly one shard — the destination once
// this returns, the source before. The eager sync (skipped only under
// SyncOff) is what lets the source shard's next checkpoint forget the
// file: its entire state already lives in the destination's log. The
// returned LSN is the record's, so the server can gate the migration's
// acknowledgement on follower replication after the store lock drops.
func (j *Journal) LogMigrate(dst int, name string, f *pfs.File) (uint64, error) {
	end, lsn, err := j.appendMigrate(dst, name, f)
	if err != nil {
		return 0, err
	}
	if err := j.wals[dst].Commit(end, j.mode != pfs.SyncOff); err != nil {
		return 0, err
	}
	return lsn, nil
}

// appendMigrate is LogMigrate without the commit — split out so crash
// tests can tear the journal between the append and its durability.
func (j *Journal) appendMigrate(dst int, name string, f *pfs.File) (int64, uint64, error) {
	rec := &pfs.Record{
		Kind: pfs.RecMigrate,
		Name: name,
		Dst:  uint32(dst),
		PVer: j.store.PlacementVersion(),
		Data: pfs.AppendFileSnapshot(nil, f),
	}
	end, err := j.wals[dst].Append(rec)
	return end, rec.LSN, err
}

// commitShard makes shard's log durable up to end per the journal's
// sync mode — the follower's apply loop uses it to commit a replicated
// batch before acknowledging it.
func (j *Journal) commitShard(shard int, end int64) error {
	return j.wals[shard].Commit(end, j.mode != pfs.SyncOff)
}

// attachTap prepares shard for streaming to a follower: it flushes the
// log so disk and tap line up, attaches a live tap at the durable
// frontier, and reads the checkpoint and log the follower's bootstrap
// and backfill come from. The shard's checkpoint mutex serializes
// against compaction, so (checkpoint, log, tap) are one consistent cut:
// every committed record is in exactly the checkpoint or the log, and
// every later one reaches the tap. Records flushed between the tap
// attach and the log read can appear in both — the streaming layer
// dedups by LSN. The caller owns the returned tap and must Close it.
func (j *Journal) attachTap(shard, tapMax int) (tap *pfs.WALTap, files []pfs.CheckpointFile, floor uint64, recs []pfs.Record, err error) {
	j.ckptMu[shard].Lock()
	defer j.ckptMu[shard].Unlock()
	w := j.wals[shard]
	if err := w.CommitAll(j.mode != pfs.SyncOff); err != nil {
		return nil, nil, 0, nil, err
	}
	tap, err = w.Tap(tapMax, j.mode != pfs.SyncOff)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	files, floor, err = pfs.ReadCheckpoint(j.dir, shard)
	if err == nil {
		recs, err = pfs.ReadLogRecords(j.dir, shard)
	}
	if err != nil {
		tap.Close()
		return nil, nil, 0, nil, err
	}
	return tap, files, floor, recs, nil
}

// resetShard re-floors shard after a follower bootstrap: the snapshot
// installed everything up to floor, so the WAL's high-water mark moves
// there and a fresh checkpoint makes the bootstrap durable — without
// it, a follower crash right after bootstrap would recover from a log
// that never held the snapshotted records.
func (j *Journal) resetShard(shard int, floor uint64) error {
	j.ckptMu[shard].Lock()
	defer j.ckptMu[shard].Unlock()
	j.wals[shard].SetLastLSN(floor)
	return j.store.CheckpointShard(j.wals[shard], shard)
}

// Close waits out any in-flight background checkpoint, then flushes,
// fsyncs and closes every shard's log. The WALs are left with a sticky
// closed error, so stragglers fail their commits instead of panicking
// on a closed file.
func (j *Journal) Close() error {
	j.WaitCheckpoints()
	var first error
	for _, w := range j.wals {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
