package core

// MaxEnd is the exclusive upper bound used for full-range acquisitions
// (the paper's special "entire range" call, [0 .. 2^64-1]).
const MaxEnd = ^uint64(0)

// Guard represents one held range (the paper's RangeLock handle). The zero
// Guard is invalid. Guards are values; copy them freely but Unlock exactly
// once.
type Guard struct {
	l    *list
	id   uint64
	fast bool
}

// Held reports whether the guard refers to an acquired range.
func (g Guard) Held() bool { return g.l != nil }

// Range returns the guarded [start, end) interval.
func (g Guard) Range() (start, end uint64) {
	n := g.l.dom.arena.node(g.id)
	return n.start, n.end
}

// Unlock releases the range (MutexRangeRelease / RWRangeRelease). On the
// regular path this is a single fetch-and-add — wait-free; traversing
// threads unlink and recycle the node lazily. A fast-path acquisition
// tries the eager empty-list release first (§4.5), which needs a
// reclamation context: the slot is leased non-blockingly, so Unlock stays
// safe even when the caller's own held Ops have exhausted the domain's
// slots — it simply degrades to the lazy release, which the next
// acquisition cleans up. Use UnlockOp to reuse an already leased context.
func (g Guard) Unlock() {
	if g.l == nil {
		panic("core: Unlock of zero Guard")
	}
	if g.fast {
		if c, ok := g.l.dom.tryAcquireCtx(); ok {
			if g.l.head.CompareAndSwap(refMark(refOf(g.id)), refNil) {
				// Eagerly removed. Other goroutines may still hold the ref
				// (loaded from head before the CAS), so the node still goes
				// through a grace period.
				c.retire(g.id)
				c.release()
				return
			}
			// Another thread converted the fast-path node into a regular
			// one; fall through to the regular release.
			c.release()
		}
	}
	deleteNode(g.l.dom.arena.node(g.id))
}

// UnlockOp is Unlock threading an operation context leased from the lock's
// domain, sparing the fast-path release its internal slot lease.
func (g Guard) UnlockOp(op Op) {
	if g.l == nil {
		panic("core: Unlock of zero Guard")
	}
	c := op.ctx(g.l.dom)
	if g.fast {
		if g.l.head.CompareAndSwap(refMark(refOf(g.id)), refNil) {
			c.retire(g.id)
			return
		}
	}
	deleteNode(g.l.dom.arena.node(g.id))
}

// acquire implements MutexRangeAcquire / RWRangeAcquire, including the
// fast path (§4.5) and the fairness slow path (§4.3). The caller owns c
// and releases it afterwards.
func (l *list) acquire(c opCtx, start, end uint64, rw, reader bool) Guard {
	checkRange(start, end)

	var haveID bool
	var id uint64

	// Fast path: empty list — CAS the head straight to a marked ref.
	if l.opts.fastPath {
		l.drainDeadHead(c)
		if l.head.Load() == refNil {
			id = c.alloc()
			haveID = true
			l.initNode(id, start, end, rw && reader)
			if l.head.CompareAndSwap(refNil, refMark(refOf(id))) {
				return Guard{l: l, id: id, fast: true}
			}
		}
	}

	// Fairness gate: while some thread is impatient, regular acquisitions
	// serialize behind it through the auxiliary lock's read side.
	fairHeld := false
	if l.opts.fairness && l.impatient.Load() > 0 {
		l.fair.RLock()
		fairHeld = true
	}

	budget := 0
	if l.opts.fairness {
		budget = l.opts.starveBudget
	}

	attempts := 0
	for {
		if !haveID {
			id = c.alloc()
			l.initNode(id, start, end, rw && reader)
		}
		haveID = false
		c.slot.Pin()
		res := l.insert(c, id, rw, budget)
		c.slot.Unpin()
		switch res {
		case insertOK:
			if fairHeld {
				l.fair.RUnlock()
			}
			return Guard{l: l, id: id}
		case insertRace:
			// Validation failed; the node already deleted itself. Retry
			// with a fresh node. Repeated races count toward impatience.
			attempts++
			if budget > 0 && attempts >= budget {
				break
			}
			continue
		}
		// insertStarved (or too many writer races): escalate. Block new
		// acquisitions via the auxiliary lock's write side, then insert
		// with an unlimited budget while the list drains.
		if res == insertStarved {
			// The starved node was never published; recycle it directly.
			c.give(id)
		}
		if fairHeld {
			l.fair.RUnlock()
			fairHeld = false
		}
		l.impatient.Add(1)
		l.fair.Lock()
		for {
			id = c.alloc()
			l.initNode(id, start, end, rw && reader)
			c.slot.Pin()
			res := l.insert(c, id, rw, 0)
			c.slot.Unpin()
			if res == insertOK {
				break
			}
		}
		l.fair.Unlock()
		l.impatient.Add(-1)
		return Guard{l: l, id: id}
	}
}

// tryAcquire attempts a non-blocking acquisition (extension beyond the
// paper): it fails instead of waiting whenever a conflicting range is
// found, but retries internal CAS failures, which indicate contention on
// the list structure rather than on the range. The caller owns c and
// releases it afterwards.
func (l *list) tryAcquire(c opCtx, start, end uint64, rw, reader bool) (Guard, bool) {
	checkRange(start, end)
	id := c.alloc()
	l.initNode(id, start, end, rw && reader)

	if l.opts.fastPath {
		l.drainDeadHead(c)
		if l.head.Load() == refNil &&
			l.head.CompareAndSwap(refNil, refMark(refOf(id))) {
			return Guard{l: l, id: id, fast: true}, true
		}
	}

	c.slot.Pin()
	ok, shared := l.tryInsert(c, id, rw)
	c.slot.Unpin()
	if ok {
		return Guard{l: l, id: id}, true
	}
	if !shared {
		// The node never became visible: recycle it directly.
		c.give(id)
	}
	return Guard{}, false
}

// tryInsert mirrors insert but fails on any conflict instead of waiting.
// It reports (inserted, everShared): everShared tells the caller whether
// the node was published to the list (and thus must go through the
// marked-deletion path) or can be reused immediately.
func (l *list) tryInsert(c opCtx, id uint64, rw bool) (inserted, everShared bool) {
	lockN := l.dom.arena.node(id)
	lockRef := refOf(id)
	for {
		prevAddr := &l.head
		atHead := true
		cur := prevAddr.Load()
	walk:
		for {
			if refMarked(cur) {
				if atHead {
					prevAddr.CompareAndSwap(cur, refUnmark(cur))
					cur = prevAddr.Load()
					continue
				}
				break walk
			}
			if !refIsNil(cur) {
				curN := l.dom.arena.node(refID(cur))
				nxt := curN.next.Load()
				if refMarked(nxt) {
					if prevAddr.CompareAndSwap(cur, refUnmark(nxt)) {
						c.retire(refID(cur))
					}
					cur = refUnmark(nxt)
					continue
				}
				switch compare(curN, lockN, rw) {
				case -1:
					prevAddr = &curN.next
					atHead = false
					cur = prevAddr.Load()
					continue
				case 0:
					return false, false // conflict: give up instead of waiting
				}
			}
			lockN.next.Store(cur)
			if prevAddr.CompareAndSwap(cur, lockRef) {
				if !rw {
					return true, true
				}
				if lockN.reader == 1 {
					if l.tryRValidate(c, lockN) {
						return true, true
					}
					return false, true // self-deleted after publishing
				}
				if l.wValidate(c, lockN, lockRef) {
					return true, true
				}
				return false, true
			}
			cur = prevAddr.Load()
		}
	}
}

// tryRValidate is the non-blocking reader validation: on meeting an
// overlapping writer it deletes the reader's node and fails instead of
// waiting the writer out.
func (l *list) tryRValidate(c opCtx, lockN *lnode) bool {
	prevAddr := &lockN.next
	cur := refUnmark(prevAddr.Load())
	for {
		if refIsNil(cur) {
			return true
		}
		curN := l.dom.arena.node(refID(cur))
		if curN.start >= lockN.end {
			return true
		}
		nxt := curN.next.Load()
		if refMarked(nxt) {
			if prevAddr.CompareAndSwap(cur, refUnmark(nxt)) {
				c.retire(refID(cur))
			}
			cur = refUnmark(nxt)
			continue
		}
		if curN.reader == 1 {
			prevAddr = &curN.next
			cur = refUnmark(prevAddr.Load())
			continue
		}
		deleteNode(lockN)
		return false
	}
}

// drainDeadHead eagerly unlinks the head node when it is the only node
// left and is logically deleted, restoring the empty-list state the fast
// path depends on. Without this, a single marked straggler would keep
// single-threaded traffic off the fast path forever (the lazy unlink in
// insert removes it, but only after the regular path was already chosen).
func (l *list) drainDeadHead(c opCtx) {
	h := l.head.Load()
	if h == refNil || refMarked(h) {
		return
	}
	c.slot.Pin()
	nxt := l.dom.arena.node(refID(h)).next.Load()
	if refMarked(nxt) && refIsNil(nxt) {
		if l.head.CompareAndSwap(h, refNil) {
			c.retire(refID(h))
		}
	}
	c.slot.Unpin()
}

func (l *list) initNode(id, start, end uint64, reader bool) {
	n := l.dom.arena.node(id)
	n.start = start
	n.end = end
	if reader {
		n.reader = 1
	} else {
		n.reader = 0
	}
	n.next.Store(refNil)
}

func checkRange(start, end uint64) {
	if start >= end {
		panic("core: range lock requires start < end")
	}
}
