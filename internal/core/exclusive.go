package core

// Exclusive is the mutual-exclusion range lock of §4.1 (Listing 1):
// concurrent holders must have pairwise-disjoint ranges; acquisitions of
// overlapping ranges wait for the conflicting holder to release.
type Exclusive struct {
	noCopy noCopy
	l      list
}

// NewExclusive creates an exclusive range lock in the given domain (nil
// selects the process-wide default domain).
func NewExclusive(dom *Domain, opts ...Option) *Exclusive {
	if dom == nil {
		dom = DefaultDomain()
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	e := &Exclusive{}
	e.l.dom = dom
	e.l.opts = o
	return e
}

// Lock acquires exclusive ownership of [start, end), blocking while any
// overlapping range is held. start must be less than end.
func (e *Exclusive) Lock(start, end uint64) Guard {
	c := e.l.dom.acquireCtx()
	defer c.release()
	return e.l.acquire(c, start, end, false, false)
}

// LockFull acquires the entire range (the special full-range call).
func (e *Exclusive) LockFull() Guard {
	c := e.l.dom.acquireCtx()
	defer c.release()
	return e.l.acquire(c, 0, MaxEnd, false, false)
}

// TryLock attempts to acquire [start, end) without blocking on range
// conflicts. It reports whether the range was acquired.
func (e *Exclusive) TryLock(start, end uint64) (Guard, bool) {
	c := e.l.dom.acquireCtx()
	defer c.release()
	return e.l.tryAcquire(c, start, end, false, false)
}

// Domain returns the domain the lock allocates from.
func (e *Exclusive) Domain() *Domain { return e.l.dom }

// LockOp is Lock threading an operation context leased with BeginOp from
// the lock's domain.
func (e *Exclusive) LockOp(op Op, start, end uint64) Guard {
	return e.l.acquire(op.ctx(e.l.dom), start, end, false, false)
}

// LockFullOp is LockFull threading an operation context.
func (e *Exclusive) LockFullOp(op Op) Guard {
	return e.l.acquire(op.ctx(e.l.dom), 0, MaxEnd, false, false)
}

// TryLockOp is TryLock threading an operation context.
func (e *Exclusive) TryLockOp(op Op, start, end uint64) (Guard, bool) {
	return e.l.tryAcquire(op.ctx(e.l.dom), start, end, false, false)
}

// noCopy triggers `go vet -copylocks` on accidental copies.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}
