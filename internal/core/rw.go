package core

// RW is the reader-writer range lock of §4.2 (Listings 2–3): ranges
// acquired in shared mode may overlap each other; a range acquired in
// exclusive mode conflicts with every overlapping range. The insert race
// between readers and writers that enter at different list positions
// (Figure 1) is resolved by post-insert validation: readers wait out
// overlapping writers ahead of them, writers that discover an overlapping
// reader behind them self-delete and retry (reader preference).
type RW struct {
	noCopy noCopy
	l      list
}

// NewRW creates a reader-writer range lock in the given domain (nil
// selects the process-wide default domain).
func NewRW(dom *Domain, opts ...Option) *RW {
	if dom == nil {
		dom = DefaultDomain()
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	r := &RW{}
	r.l.dom = dom
	r.l.opts = o
	return r
}

// Lock acquires [start, end) in exclusive (writer) mode.
func (r *RW) Lock(start, end uint64) Guard {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.acquire(c, start, end, true, false)
}

// RLock acquires [start, end) in shared (reader) mode.
func (r *RW) RLock(start, end uint64) Guard {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.acquire(c, start, end, true, true)
}

// LockFull acquires the entire range in exclusive mode.
func (r *RW) LockFull() Guard {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.acquire(c, 0, MaxEnd, true, false)
}

// RLockFull acquires the entire range in shared mode.
func (r *RW) RLockFull() Guard {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.acquire(c, 0, MaxEnd, true, true)
}

// TryLock attempts a non-blocking exclusive acquisition.
func (r *RW) TryLock(start, end uint64) (Guard, bool) {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.tryAcquire(c, start, end, true, false)
}

// TryRLock attempts a non-blocking shared acquisition.
func (r *RW) TryRLock(start, end uint64) (Guard, bool) {
	c := r.l.dom.acquireCtx()
	defer c.release()
	return r.l.tryAcquire(c, start, end, true, true)
}

// Domain returns the domain the lock allocates from.
func (r *RW) Domain() *Domain { return r.l.dom }

// LockOp is Lock threading an operation context leased with BeginOp from
// the lock's domain.
func (r *RW) LockOp(op Op, start, end uint64) Guard {
	return r.l.acquire(op.ctx(r.l.dom), start, end, true, false)
}

// RLockOp is RLock threading an operation context.
func (r *RW) RLockOp(op Op, start, end uint64) Guard {
	return r.l.acquire(op.ctx(r.l.dom), start, end, true, true)
}

// LockFullOp is LockFull threading an operation context.
func (r *RW) LockFullOp(op Op) Guard {
	return r.l.acquire(op.ctx(r.l.dom), 0, MaxEnd, true, false)
}

// RLockFullOp is RLockFull threading an operation context.
func (r *RW) RLockFullOp(op Op) Guard {
	return r.l.acquire(op.ctx(r.l.dom), 0, MaxEnd, true, true)
}

// TryLockOp is TryLock threading an operation context.
func (r *RW) TryLockOp(op Op, start, end uint64) (Guard, bool) {
	return r.l.tryAcquire(op.ctx(r.l.dom), start, end, true, false)
}

// TryRLockOp is TryRLock threading an operation context.
func (r *RW) TryRLockOp(op Op, start, end uint64) (Guard, bool) {
	return r.l.tryAcquire(op.ctx(r.l.dom), start, end, true, true)
}
