package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWriterPrefBasics: semantics are unchanged — only the conflict-
// resolution policy differs.
func TestWriterPrefBasics(t *testing.T) {
	lk := NewRW(NewDomain(16), WithWriterPreference(true))
	r := lk.RLock(0, 10)
	r2 := lk.RLock(5, 15) // readers still share
	acquired := make(chan Guard, 1)
	go func() { acquired <- lk.Lock(8, 12) }()
	select {
	case <-acquired:
		t.Fatal("writer overlapped held readers")
	case <-time.After(20 * time.Millisecond):
	}
	r.Unlock()
	r2.Unlock()
	w := <-acquired
	// With the writer holding, overlapping readers must wait.
	racq := make(chan Guard, 1)
	go func() { racq <- lk.RLock(10, 11) }()
	select {
	case <-racq:
		t.Fatal("reader overlapped held writer")
	case <-time.After(20 * time.Millisecond):
	}
	w.Unlock()
	(<-racq).Unlock()
}

// TestWriterPrefExclusionStress is the reader-writer exclusion stress
// under the reversed preference scheme.
func TestWriterPrefExclusionStress(t *testing.T) {
	const (
		units      = 48
		goroutines = 8
		iters      = 1500
	)
	lk := NewRW(NewDomain(64), WithWriterPreference(true))
	var writers [units]atomic.Int32
	var readers [units]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(me int32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(me) * 6151))
			for i := 0; i < iters; i++ {
				s := uint64(rng.Intn(units))
				e := s + 1 + uint64(rng.Intn(units-int(s)))
				if rng.Intn(100) < 50 {
					guard := lk.Lock(s, e)
					for u := s; u < e; u++ {
						if old := writers[u].Swap(me + 1); old != 0 {
							t.Errorf("two writers on unit %d", u)
						}
						if readers[u].Load() != 0 {
							t.Errorf("writer overlaps readers on unit %d", u)
						}
					}
					for u := s; u < e; u++ {
						writers[u].Store(0)
					}
					guard.Unlock()
				} else {
					guard := lk.RLock(s, e)
					for u := s; u < e; u++ {
						readers[u].Add(1)
						if writers[u].Load() != 0 {
							t.Errorf("reader overlaps writer on unit %d", u)
						}
					}
					for u := s; u < e; u++ {
						readers[u].Add(-1)
					}
					guard.Unlock()
				}
			}
		}(int32(g))
	}
	wg.Wait()
}

// TestWriterPrefWriterNotStarvedByReaders: under a constant reader storm
// on an overlapping range, a writer must still get in (with reader
// preference the writer restarts as long as readers keep arriving; writer
// preference exists precisely for this pattern).
func TestWriterPrefWriterNotStarvedByReaders(t *testing.T) {
	lk := NewRW(NewDomain(64), WithWriterPreference(true))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := lk.RLock(0, 100)
				r.Unlock()
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() {
		w := lk.Lock(40, 60)
		w.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("writer starved under reader storm despite writer preference")
	}
	close(stop)
	wg.Wait()
}
