// Package core implements the paper's contribution: scalable list-based
// range locks (§4). Acquired ranges live in a linked list sorted by range
// start; inserting a node with a single CAS acquires the range, and a
// single fetch-and-add marks it logically deleted on release (wait-free).
// Traversals unlink marked nodes lazily, Harris-style.
//
// Two variants are provided, mirroring the paper:
//
//   - Exclusive (§4.1, Listing 1): only disjoint ranges may be held.
//   - RW (§4.2, Listings 2–3): readers may overlap readers; writers
//     conflict with everyone. After insertion, readers and writers run a
//     validation pass that resolves the insert race of Figure 1.
//
// Optional features: the empty-list fast path (§4.5), the impatient-
// counter fairness mechanism (§4.3), and TryLock (an extension).
//
// Instead of tagging real pointers, list nodes live in a grow-only arena
// and are addressed by 64-bit refs encoding (id+1)<<1 | markBit. This
// preserves the exact CAS/FAA semantics of the pseudo-code in safe Go and
// doubles as the node-pool allocator of §4.4; recycling is deferred
// through an epoch-based reclamation domain (internal/ebr).
package core

// ref addresses a list node: 0 is nil, otherwise (id+1)<<1 with the least
// significant bit as the logical-deletion mark. Because the mark occupies
// the LSB, "FAA(&next, 1)" marks a node exactly as in Listing 1 line 52.
type ref = uint64

// refNil is the null reference (an empty list head).
const refNil ref = 0

func refOf(id uint64) ref  { return (id + 1) << 1 }
func refMarked(r ref) bool { return r&1 == 1 }
func refUnmark(r ref) ref  { return r &^ 1 }
func refMark(r ref) ref    { return r | 1 }
func refID(r ref) uint64   { return (r >> 1) - 1 }
func refIsNil(r ref) bool  { return refUnmark(r) == refNil }
