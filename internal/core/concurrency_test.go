package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNoFIFOBlocking reproduces the §3 example in the list lock's favour:
// exclusive requests A=[1,3), B=[2,7), C=[4,5) arrive in order. While A
// holds and B waits, C — which overlaps only B's *requested* (not held)
// range — must proceed: the waiting B has no node in the list, so it
// cannot block C. (treelock's FIFO test shows the tree lock blocking C.)
func TestNoFIFOBlocking(t *testing.T) {
	lk := NewExclusive(NewDomain(16))
	a := lk.Lock(1, 3)

	bAcq := make(chan Guard, 1)
	go func() { bAcq <- lk.Lock(2, 7) }()
	// Let B start waiting on A (B spins before inserting, so there is no
	// externally visible state; a short delay suffices for the schedule
	// this test wants, and a false-early C would pass anyway).
	time.Sleep(10 * time.Millisecond)

	cAcq := make(chan Guard, 1)
	go func() { cAcq <- lk.Lock(4, 5) }()
	select {
	case c := <-cAcq:
		c.Unlock() // C proceeded while B waited — the paper's claim
	case <-time.After(5 * time.Second):
		t.Fatal("C=[4,5) blocked behind waiting B=[2,7) — FIFO behaviour in the list lock")
	}

	a.Unlock()
	b := <-bAcq
	b.Unlock()
}

// TestReadersProceedUnderWaitingWriter: with reader preference (default),
// readers arriving while a writer waits for an earlier reader may still
// proceed if they overlap only the waiting writer.
func TestReadersProceedUnderWaitingWriter(t *testing.T) {
	lk := NewRW(NewDomain(16))
	r0 := lk.RLock(0, 10) // holds

	wAcq := make(chan Guard, 1)
	go func() { wAcq <- lk.Lock(5, 20) }() // waits on r0
	time.Sleep(10 * time.Millisecond)

	// A reader overlapping only the *waiting* writer's range.
	r1 := make(chan Guard, 1)
	go func() { r1 <- lk.RLock(15, 18) }()
	select {
	case g := <-r1:
		g.Unlock()
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked behind a merely waiting writer")
	}

	r0.Unlock()
	w := <-wAcq
	w.Unlock()
}

// TestManyGoroutinesManyLocks drives several locks from one shared domain
// concurrently, validating that the per-slot pools and the shared arena
// keep isolated locks correct.
func TestManyGoroutinesManyLocks(t *testing.T) {
	dom := NewDomain(128)
	const nLocks = 5
	locksArr := make([]*RW, nLocks)
	counters := make([][]atomic.Int32, nLocks)
	for i := range locksArr {
		locksArr[i] = NewRW(dom)
		counters[i] = make([]atomic.Int32, 32)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(me int32) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				li := (int(me) + i) % nLocks
				s := uint64(i % 28)
				guard := locksArr[li].Lock(s, s+4)
				for u := s; u < s+4; u++ {
					if old := counters[li][u].Swap(me + 1); old != 0 {
						t.Errorf("lock %d unit %d: writers %d and %d overlap", li, u, old-1, me)
					}
				}
				for u := s; u < s+4; u++ {
					counters[li][u].Store(0)
				}
				guard.Unlock()
			}
		}(int32(g))
	}
	wg.Wait()
}

// TestAdjacentRangesNeverConflict: half-open semantics make [a,b) and
// [b,c) compatible in every mode combination.
func TestAdjacentRangesNeverConflict(t *testing.T) {
	lk := NewRW(NewDomain(16))
	combos := []struct{ w1, w2 bool }{{true, true}, {true, false}, {false, true}, {false, false}}
	for _, c := range combos {
		var g1, g2 Guard
		if c.w1 {
			g1 = lk.Lock(100, 200)
		} else {
			g1 = lk.RLock(100, 200)
		}
		done := make(chan Guard, 1)
		go func() {
			if c.w2 {
				done <- lk.Lock(200, 300)
			} else {
				done <- lk.RLock(200, 300)
			}
		}()
		select {
		case g2 = <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("adjacent ranges conflicted (w1=%v w2=%v)", c.w1, c.w2)
		}
		g1.Unlock()
		g2.Unlock()
	}
}

// TestSlotChurnAcrossDomains exercises slot exhaustion: a domain with very
// few slots serving more goroutines than slots must still complete (slot
// leases are per-operation, not per-held-range).
func TestSlotChurnAcrossDomains(t *testing.T) {
	dom := NewDomain(2)
	lk := NewExclusive(dom)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				guard := lk.Lock(g*10, g*10+5)
				guard.Unlock()
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("slot starvation deadlock")
	}
}

// TestHoldManyRangesOneGoroutine: one goroutine may hold many disjoint
// ranges simultaneously (guards are independent of slots).
func TestHoldManyRangesOneGoroutine(t *testing.T) {
	lk := NewExclusive(NewDomain(4))
	guards := make([]Guard, 64)
	for i := range guards {
		guards[i] = lk.Lock(uint64(i*10), uint64(i*10+5))
	}
	if got := len(lk.Snapshot()); got != 64 {
		t.Fatalf("snapshot has %d ranges, want 64", got)
	}
	for _, g := range guards {
		g.Unlock()
	}
}
